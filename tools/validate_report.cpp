// validate_report — CI gate for bench harness reports.
//
//   validate_report schemas/bench_report.schema.json BENCH_foo.json [more...]
//
// Interprets the subset of JSON Schema the checked-in schema uses (root
// "required" + per-property "type") and enforces the two invariants the
// schema text documents but draft-07 alone cannot: no null anywhere inside
// metrics / tables / telemetry (the obs serializer writes NaN/Inf as null,
// so a null here IS a NaN metric), and the exact {sum,count,min,max,mean}
// stat shape for telemetry entries. Exit 0 only if every report passes.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "axnn/obs/json.hpp"

namespace {

using axnn::obs::Json;

int g_errors = 0;

void fail(const std::string& file, const std::string& where, const std::string& what) {
  std::fprintf(stderr, "%s: %s: %s\n", file.c_str(), where.c_str(), what.c_str());
  ++g_errors;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

const char* type_name(Json::Type t) {
  switch (t) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "boolean";
    case Json::Type::kNumber: return "number";
    case Json::Type::kString: return "string";
    case Json::Type::kArray: return "array";
    case Json::Type::kObject: return "object";
  }
  return "?";
}

bool matches_type(const Json& v, const std::string& want) {
  if (want == "object") return v.is_object();
  if (want == "array") return v.is_array();
  if (want == "string") return v.is_string();
  if (want == "number") return v.is_number();
  if (want == "integer")
    return v.is_number() && std::nearbyint(v.number()) == v.number();
  if (want == "boolean") return v.type() == Json::Type::kBool;
  if (want == "null") return v.is_null();
  return true;  // unknown type keyword: don't reject
}

/// No null may appear anywhere under `v`: the serializer turns NaN/Inf into
/// null, so a null in a data section means a computation went non-finite.
void reject_nulls(const std::string& file, const std::string& where, const Json& v) {
  if (v.is_null()) {
    fail(file, where, "null value (a NaN/Inf metric serializes as null)");
    return;
  }
  if (v.is_array()) {
    for (size_t i = 0; i < v.items().size(); ++i)
      reject_nulls(file, where + "[" + std::to_string(i) + "]", v.items()[i]);
  } else if (v.is_object()) {
    for (const auto& [k, child] : v.members()) reject_nulls(file, where + "." + k, child);
  }
}

void check_telemetry(const std::string& file, const Json& tel) {
  static const char* kStatKeys[] = {"sum", "count", "min", "max", "mean"};
  for (const auto& [path, metrics] : tel.members()) {
    if (!metrics.is_object()) {
      fail(file, "telemetry." + path, "expected object of metric stats");
      continue;
    }
    for (const auto& [metric, stat] : metrics.members()) {
      const std::string where = "telemetry." + path + "." + metric;
      if (!stat.is_object()) {
        fail(file, where, "expected {sum,count,min,max,mean} object");
        continue;
      }
      for (const char* key : kStatKeys) {
        const Json* s = stat.find(key);
        if (s == nullptr)
          fail(file, where, std::string("missing stat key '") + key + "'");
        else if (!s->is_number())
          fail(file, where + "." + key, std::string("expected number, got ") +
                                            type_name(s->type()));
      }
    }
  }
}

void check_tables(const std::string& file, const Json& tables) {
  for (const auto& [name, table] : tables.members()) {
    const std::string where = "tables." + name;
    const Json* headers = table.find("headers");
    const Json* rows = table.find("rows");
    if (!table.is_object() || headers == nullptr || rows == nullptr) {
      fail(file, where, "expected {headers, rows} object");
      continue;
    }
    if (!headers->is_array()) fail(file, where + ".headers", "expected array");
    if (!rows->is_array()) {
      fail(file, where + ".rows", "expected array");
      continue;
    }
    for (size_t i = 0; i < rows->items().size(); ++i) {
      const Json& row = rows->items()[i];
      const std::string rw = where + ".rows[" + std::to_string(i) + "]";
      if (!row.is_array()) {
        fail(file, rw, "expected array of cells");
        continue;
      }
      if (headers->is_array() && row.size() != headers->size())
        fail(file, rw, "row width " + std::to_string(row.size()) + " != headers width " +
                           std::to_string(headers->size()));
    }
  }
}

void check_serving(const std::string& file, const Json& serving) {
  static const char* kNumericKeys[] = {"requests",   "served",         "shed",
                                       "rejected",   "batches",        "mean_batch",
                                       "wall_s",     "throughput_rps", "p50_ms",
                                       "p95_ms",     "p99_ms",         "max_ms",
                                       "mean_ms",    "deadline_misses", "queue_full_waits"};
  for (size_t i = 0; i < serving.items().size(); ++i) {
    const Json& entry = serving.items()[i];
    const std::string where = "serving[" + std::to_string(i) + "]";
    if (!entry.is_object()) {
      fail(file, where, "expected a servingReport object");
      continue;
    }
    const Json* scenario = entry.find("scenario");
    if (scenario == nullptr || !scenario->is_string())
      fail(file, where + ".scenario", "expected string");
    for (const char* key : kNumericKeys) {
      const Json* v = entry.find(key);
      if (v == nullptr)
        fail(file, where, std::string("missing key '") + key + "'");
      else if (!v->is_number())
        fail(file, where + "." + key,
             std::string("expected number, got ") + type_name(v->type()));
    }
  }
}

void check_chaos(const std::string& file, const Json& chaos) {
  static const char* kNumericKeys[] = {
      "seed",         "lanes",        "budget_ms",    "stall_ms",
      "submitted",    "served",       "shed",         "rejected",
      "lost",         "stalls_fired", "faults_fired", "quarantines",
      "readmissions", "requeued_batches", "discarded_batches",
      "probes",       "reloads",      "failed_requests"};
  static const char* kPhaseNumeric[] = {"requests",     "served",
                                        "shed",         "rejected",
                                        "p99_ms",       "quarantines",
                                        "readmissions", "requeued_batches",
                                        "failed_requests"};
  for (const char* key : kNumericKeys) {
    const Json* v = chaos.find(key);
    if (v == nullptr)
      fail(file, "chaos", std::string("missing key '") + key + "'");
    else if (!v->is_number())
      fail(file, std::string("chaos.") + key,
           std::string("expected number, got ") + type_name(v->type()));
  }
  // The harness's core invariant: every submitted ticket resolved.
  if (const Json* lost = chaos.find("lost"); lost != nullptr && lost->is_number() &&
      lost->number() != 0.0)
    fail(file, "chaos.lost", "tickets lost (submitted != served + shed + rejected)");
  const Json* phases = chaos.find("phases");
  if (phases == nullptr || !phases->is_array() || phases->items().empty()) {
    fail(file, "chaos.phases", "expected non-empty array of phase rows");
    return;
  }
  for (size_t i = 0; i < phases->items().size(); ++i) {
    const Json& p = phases->items()[i];
    const std::string where = "chaos.phases[" + std::to_string(i) + "]";
    if (!p.is_object()) {
      fail(file, where, "expected a phase object");
      continue;
    }
    const Json* name = p.find("phase");
    if (name == nullptr || !name->is_string() || name->str().empty())
      fail(file, where + ".phase", "expected non-empty string");
    for (const char* key : kPhaseNumeric) {
      const Json* v = p.find(key);
      if (v == nullptr)
        fail(file, where, std::string("missing key '") + key + "'");
      else if (!v->is_number())
        fail(file, where + "." + key,
             std::string("expected number, got ") + type_name(v->type()));
    }
  }
}

void check_qos(const std::string& file, const Json& qos) {
  static const char* kPointNumeric[] = {"holdout_acc", "energy_per_req", "energy_savings_pct",
                                        "latency_est_ms"};
  const Json* points = qos.find("points");
  const Json* sessions = qos.find("sessions");
  if (points == nullptr || !points->is_array() || points->items().empty()) {
    fail(file, "qos.points", "expected non-empty array of operating points");
  } else {
    for (size_t i = 0; i < points->items().size(); ++i) {
      const Json& p = points->items()[i];
      const std::string where = "qos.points[" + std::to_string(i) + "]";
      if (!p.is_object()) {
        fail(file, where, "expected an operating-point object");
        continue;
      }
      for (const char* key : {"name", "plan"}) {
        const Json* v = p.find(key);
        if (v == nullptr || !v->is_string() || v->str().empty())
          fail(file, where + "." + key, "expected non-empty string");
      }
      for (const char* key : kPointNumeric) {
        const Json* v = p.find(key);
        if (v == nullptr)
          fail(file, where, std::string("missing key '") + key + "'");
        else if (!v->is_number())
          fail(file, where + "." + key,
               std::string("expected number, got ") + type_name(v->type()));
      }
    }
  }
  if (sessions == nullptr || !sessions->is_array()) {
    fail(file, "qos.sessions", "expected array of governed sessions");
    return;
  }
  for (size_t i = 0; i < sessions->items().size(); ++i) {
    const Json& s = sessions->items()[i];
    const std::string where = "qos.sessions[" + std::to_string(i) + "]";
    if (!s.is_object()) {
      fail(file, where, "expected a session object");
      continue;
    }
    const Json* name = s.find("session");
    if (name == nullptr || !name->is_string()) fail(file, where + ".session", "expected string");
    for (const char* key : {"active", "transitions_total"}) {
      const Json* v = s.find(key);
      if (v == nullptr || !v->is_number())
        fail(file, where + "." + key, "expected number");
    }
    for (const char* key : {"requests_per_point", "time_in_point_ms"}) {
      const Json* v = s.find(key);
      if (v == nullptr || !v->is_array()) {
        fail(file, where + "." + key, "expected array");
        continue;
      }
      for (size_t k = 0; k < v->items().size(); ++k)
        if (!v->items()[k].is_number())
          fail(file, where + "." + key + "[" + std::to_string(k) + "]", "expected number");
    }
    const Json* trs = s.find("transitions");
    if (trs == nullptr || !trs->is_array()) {
      fail(file, where + ".transitions", "expected array");
      continue;
    }
    for (size_t k = 0; k < trs->items().size(); ++k) {
      const Json& t = trs->items()[k];
      const std::string tw = where + ".transitions[" + std::to_string(k) + "]";
      if (!t.is_object()) {
        fail(file, tw, "expected a transition object");
        continue;
      }
      for (const char* key : {"t_ms", "from", "to"}) {
        const Json* v = t.find(key);
        if (v == nullptr || !v->is_number()) fail(file, tw + "." + key, "expected number");
      }
      const Json* cause = t.find("cause");
      if (cause == nullptr || !cause->is_string())
        fail(file, tw + ".cause", "expected string");
    }
  }
}

void check_search(const std::string& file, const Json& search) {
  static const char* kPointNumeric[] = {"holdout_acc", "energy_per_sample",
                                        "energy_savings_pct"};
  for (const char* key : {"baseline_acc", "exact_energy", "evals_used", "front_size"}) {
    const Json* v = search.find(key);
    if (v == nullptr || !v->is_number())
      fail(file, std::string("search.") + key, "expected number");
  }
  const Json* sens = search.find("sensitivity");
  if (sens == nullptr || !sens->is_array() || sens->items().empty()) {
    fail(file, "search.sensitivity", "expected non-empty array of layer profiles");
  } else {
    for (size_t i = 0; i < sens->items().size(); ++i) {
      const Json& s = sens->items()[i];
      const std::string where = "search.sensitivity[" + std::to_string(i) + "]";
      if (!s.is_object()) {
        fail(file, where, "expected a layer-sensitivity object");
        continue;
      }
      const Json* path = s.find("path");
      if (path == nullptr || !path->is_string() || path->str().empty())
        fail(file, where + ".path", "expected non-empty string");
      for (const char* key : {"dot_length", "macs", "mac_share", "clip_rate", "max_proxy"}) {
        const Json* v = s.find(key);
        if (v == nullptr || !v->is_number()) fail(file, where + "." + key, "expected number");
      }
    }
  }
  for (const char* list : {"front", "uniform_baselines"}) {
    const Json* pts = search.find(list);
    if (pts == nullptr || !pts->is_array() ||
        (std::string(list) == "front" && pts->items().empty())) {
      fail(file, std::string("search.") + list, "expected non-empty array of search points");
      continue;
    }
    for (size_t i = 0; i < pts->items().size(); ++i) {
      const Json& p = pts->items()[i];
      const std::string where =
          std::string("search.") + list + "[" + std::to_string(i) + "]";
      if (!p.is_object()) {
        fail(file, where, "expected a search-point object");
        continue;
      }
      for (const char* key : {"name", "plan"}) {
        const Json* v = p.find(key);
        if (v == nullptr || !v->is_string() || v->str().empty())
          fail(file, where + "." + key, "expected non-empty string");
      }
      for (const char* key : kPointNumeric) {
        const Json* v = p.find(key);
        if (v == nullptr)
          fail(file, where, std::string("missing key '") + key + "'");
        else if (!v->is_number())
          fail(file, where + "." + key,
               std::string("expected number, got ") + type_name(v->type()));
      }
      const Json* uniform = p.find("uniform");
      if (uniform == nullptr || uniform->type() != Json::Type::kBool)
        fail(file, where + ".uniform", "expected boolean");
    }
  }
}

void validate(const std::string& file, const Json& schema, const Json& report) {
  if (!report.is_object()) {
    fail(file, "$", "report root must be an object");
    return;
  }
  if (const Json* required = schema.find("required"); required != nullptr) {
    for (const Json& key : required->items())
      if (report.find(key.str()) == nullptr) fail(file, "$", "missing key '" + key.str() + "'");
  }
  if (const Json* props = schema.find("properties"); props != nullptr) {
    for (const auto& [key, spec] : props->members()) {
      const Json* value = report.find(key);
      const Json* want = spec.find("type");
      if (value == nullptr || want == nullptr) continue;
      if (!matches_type(*value, want->str()))
        fail(file, key, "expected " + want->str() + ", got " + type_name(value->type()));
    }
  }
  for (const char* section :
       {"metrics", "tables", "telemetry", "serving", "qos", "search", "chaos"})
    if (const Json* v = report.find(section)) reject_nulls(file, section, *v);
  if (const Json* tel = report.find("telemetry"); tel != nullptr && tel->is_object())
    check_telemetry(file, *tel);
  if (const Json* tables = report.find("tables"); tables != nullptr && tables->is_object())
    check_tables(file, *tables);
  if (const Json* serving = report.find("serving"); serving != nullptr && serving->is_array())
    check_serving(file, *serving);
  if (const Json* qos = report.find("qos"); qos != nullptr && qos->is_object())
    check_qos(file, *qos);
  if (const Json* chaos = report.find("chaos"); chaos != nullptr && chaos->is_object())
    check_chaos(file, *chaos);
  if (const Json* search = report.find("search"); search != nullptr && search->is_object())
    check_search(file, *search);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: validate_report <schema.json> <report.json> [more...]\n");
    return 2;
  }
  try {
    const Json schema = Json::parse(read_file(argv[1]));
    for (int i = 2; i < argc; ++i) {
      const int before = g_errors;
      try {
        validate(argv[i], schema, Json::parse(read_file(argv[i])));
      } catch (const std::exception& e) {
        fail(argv[i], "$", e.what());
      }
      std::printf("%s: %s\n", argv[i], g_errors == before ? "OK" : "FAILED");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "schema error: %s\n", e.what());
    return 2;
  }
  return g_errors == 0 ? 0 : 1;
}
