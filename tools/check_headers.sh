#!/usr/bin/env bash
# Header self-containment check: every public axnn header must compile on its
# own (all of its dependencies reachable through its own #includes). Run from
# the repository root; used by the CI 'headers' job.
set -u

cd "$(dirname "$0")/.."

INCLUDES=()
for dir in src/include src/*/include; do
  INCLUDES+=("-I" "$dir")
done

CXX="${CXX:-g++}"
fails=0
checked=0
# Compile a one-line TU per header ("#pragma once in main file" would trip
# -Werror if the header itself were the main file).
tu=$(mktemp --suffix=.cpp)
trap 'rm -f "$tu" /tmp/header_err.$$' EXIT
for hpp in src/include/axnn/*.hpp src/*/include/axnn/*.hpp src/*/include/axnn/*/*.hpp; do
  [ -f "$hpp" ] || continue
  checked=$((checked + 1))
  printf '#include "%s"\n' "${hpp#*include/}" > "$tu"
  if ! "$CXX" -std=c++20 -fsyntax-only -Wall -Wextra -Werror \
       "${INCLUDES[@]}" "$tu" 2>/tmp/header_err.$$; then
    echo "NOT self-contained: $hpp"
    sed 's/^/    /' /tmp/header_err.$$
    fails=$((fails + 1))
  fi
done

echo "checked $checked headers, $fails failed"
[ "$fails" -eq 0 ]
