// axnn — fuzz harness for the unified plan-spec parser (core::plan_io).
//
// plan_io::parse auto-detects the grammar (plan document vs 'point' ladder),
// must reject malformed input with std::invalid_argument, and guarantees
// parse(to_text(doc)) == doc for every accepted input — ladder entries keep
// their raw trimmed plan text, plan documents canonicalise to one "; "-joined
// entry. A round trip that throws or drifts means the text form and the
// parser disagree on the grammar.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "axnn/core/plan_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const axnn::core::plan_io::PlanDocument doc = axnn::core::plan_io::parse(text);
    // Accepted input: the canonical form must survive a second parse
    // identically and serialize back to itself.
    const std::string canon = axnn::core::plan_io::to_text(doc);
    const axnn::core::plan_io::PlanDocument again = axnn::core::plan_io::parse(canon);
    if (!(again == doc)) __builtin_trap();
    if (axnn::core::plan_io::to_text(again) != canon) __builtin_trap();
    // Every accepted entry's plan text must be a valid single-entry plan.
    for (const auto& e : doc.entries)
      (void)axnn::core::plan_io::parse_plan(e.plan_text);
  } catch (const std::invalid_argument&) {
    // expected rejection path
  }
  return 0;
}
