// axnn — standalone driver for fuzz harnesses on toolchains without
// libFuzzer (GCC). Replays each file argument through
// LLVMFuzzerTestOneInput once; with no arguments, reads one input from
// stdin. Exit 0 means every input was handled.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int run_one(const std::string& bytes, const std::string& label) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  std::fprintf(stderr, "ok: %s (%zu bytes)\n", label.c_str(), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    const std::string bytes((std::istreambuf_iterator<char>(std::cin)),
                            std::istreambuf_iterator<char>());
    return run_one(bytes, "<stdin>");
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream f(argv[i], std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    const std::string bytes((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
    if (run_one(bytes, argv[i]) != 0) return 1;
  }
  return 0;
}
