// axnn — fuzz harness for the AXNP checkpoint loader.
//
// Feeds arbitrary bytes through load_params_from_memory against a small
// fixed model. The loader must reject every malformed input with a typed
// exception (std::runtime_error / std::invalid_argument) — any other
// escape (OOB read, unhandled throw, abort) is a finding.
#include <cstdint>
#include <cstddef>
#include <exception>
#include <stdexcept>

#include "axnn/nn/linear.hpp"
#include "axnn/nn/sequential.hpp"
#include "axnn/nn/serialize.hpp"
#include "axnn/tensor/rng.hpp"

namespace {

axnn::nn::Sequential& model() {
  static axnn::nn::Sequential* m = [] {
    axnn::Rng rng(7);
    auto* seq = new axnn::nn::Sequential();
    seq->emplace<axnn::nn::Linear>(4, 3, rng);
    seq->emplace<axnn::nn::Linear>(3, 2, rng);
    return seq;
  }();
  return *m;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  try {
    axnn::nn::load_params_from_memory(model(), data, size, "<fuzz>");
  } catch (const std::runtime_error&) {
    // expected rejection path
  } catch (const std::invalid_argument&) {
    // expected rejection path
  }
  return 0;
}
