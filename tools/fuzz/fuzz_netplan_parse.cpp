// axnn — fuzz harness for the NetPlan text-form parser.
//
// NetPlan::parse must reject malformed plan strings with
// std::invalid_argument and, for every accepted input, round-trip through
// to_string() + parse() without throwing — a parse of its own serialization
// failing means the two forms disagree on the grammar.
#include <cstdint>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "axnn/nn/plan.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const axnn::nn::NetPlan plan = axnn::nn::NetPlan::parse(text);
    // Accepted input: the canonical form must survive a second parse.
    const std::string canon = plan.to_string();
    const axnn::nn::NetPlan again = axnn::nn::NetPlan::parse(canon);
    if (again.to_string() != canon) __builtin_trap();
  } catch (const std::invalid_argument&) {
    // expected rejection path
  }
  return 0;
}
