// axnn — fuzz harness for the operating-point-set parser (qos::parse_points).
//
// parse_points must reject malformed ladders with std::invalid_argument and,
// for every accepted input, round-trip through to_text() + parse_points()
// without throwing — a parse of its own serialization failing means the text
// form and the parser disagree on the grammar. Names, order, and plan texts
// must all survive the round trip.
#include <cstdint>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "axnn/qos/operating_point.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const std::vector<axnn::qos::OperatingPointSpec> pts =
        axnn::qos::parse_points(text);
    // Accepted input: the canonical form must survive a second parse and
    // serialize back to itself.
    const std::string canon = axnn::qos::to_text(pts);
    const std::vector<axnn::qos::OperatingPointSpec> again =
        axnn::qos::parse_points(canon);
    if (again.size() != pts.size()) __builtin_trap();
    for (size_t i = 0; i < pts.size(); ++i) {
      if (again[i].name != pts[i].name) __builtin_trap();
      if (again[i].plan_text != pts[i].plan_text) __builtin_trap();
    }
    if (axnn::qos::to_text(again) != canon) __builtin_trap();
  } catch (const std::invalid_argument&) {
    // expected rejection path
  }
  return 0;
}
