// axnn_cli — command-line driver for the Algorithm-1 pipeline.
//
// Verb subcommands over one shared flag vocabulary:
//
//   axnn_cli train       [--model resnet20] [--full]        FP pre-training only
//   axnn_cli quantize    [--no-kd-stage1] ...               + 8A4W stage 1
//   axnn_cli approximate --multiplier trunc5 --method approxkd+ge --t2 5 ...
//   axnn_cli sweep       --method approxkd+ge               every paper multiplier
//   axnn_cli serve       --arrival poisson --rate 500 ...   batched serving runtime
//   axnn_cli search      --budget-evals 32 --emit out.plan  per-layer plan search
//   axnn_cli inspect     --multiplier trunc5                model + multiplier stats
//   axnn_cli list-multipliers [--json]                      registry at a glance
//
// Old spellings stay valid: `run` is an alias for `approximate`, a missing
// verb defaults to `approximate`, and `--list-multipliers` still works as a
// flag. Any verb accepts `--report out.json` (machine-readable RunReport,
// same schema as the bench harness) and `--timing` (attach a telemetry
// collector; per-layer timings land in the report or on stdout).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <chrono>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "axnn/axnn.hpp"

namespace {

using namespace axnn;

struct CliOptions {
  std::string verb = "approximate";
  core::ModelKind model = core::ModelKind::kResNet20;
  std::string multiplier = "trunc5";
  train::Method method = train::Method::kApproxKD_GE;
  std::optional<float> t2;
  std::optional<int> epochs;
  std::optional<float> lr;
  std::optional<int64_t> batch;
  std::optional<double> fault_rate;  ///< fault smoke sweep after run
  std::string fault_surface = "weights";  ///< weights | lut | activations
  bool sentinel = false;             ///< run the fault sweep under the sentinel
  std::optional<int> degrade_policy; ///< violations per leaf before degradation
  std::vector<std::string> plan_entries;  ///< repeated --plan key=spec overrides
  // serve verb
  std::vector<std::string> tenants;  ///< repeated --tenant name=plantext
  std::string arrival = "closed";    ///< closed | poisson | burst
  int requests = 128;
  int clients = 4;
  double rate_rps = 200.0;
  int burst = 16;
  std::optional<int> max_batch;
  std::optional<int64_t> batch_delay_us;
  std::optional<int64_t> deadline_us;
  std::optional<int> lanes;
  std::optional<uint64_t> seed;      ///< --seed: load-generator arrival/sample seed
  std::string qos_file;              ///< --qos: operating-point ladder file
  std::optional<double> energy_cap;  ///< --energy-cap-j: estimated units/s cap
  std::vector<std::string> governor_kv;  ///< --governor key=val,... entries
  bool serve_finetune = false;  ///< --finetune: approximation stage before serving
  std::string admission_policy;  ///< --admission: block | shed-newest | shed-deadline
  bool reject_infeasible = false;  ///< --reject-infeasible: deadline feasibility gate
  std::string checkpoint_dir;    ///< --checkpoint-dir: crash-safe weight rotation
  bool hot_reload = false;       ///< --reload: exercise the mid-traffic epoch flip
  // search verb
  std::vector<std::string> search_multipliers;  ///< --multipliers a,b,c
  std::vector<std::pair<int, int>> search_widths;  ///< --widths 3x8,2x8
  std::optional<double> accuracy_floor;  ///< --accuracy-floor: holdout floor, [0,1]
  std::optional<int> budget_evals;       ///< --budget-evals: holdout-eval budget
  std::optional<int> holdout;            ///< --holdout: holdout sample count
  std::optional<int> evolve;             ///< --evolve: evolutionary generations
  std::string emit_path;                 ///< --emit: write the ladder file here
  bool json = false;        ///< --json: machine-readable list-multipliers
  std::string report_path;  ///< --report: write a RunReport JSON here
  bool timing = false;      ///< --timing: attach a telemetry collector
  bool no_simd = false;     ///< --no-simd: pin the scalar kernels (bit-identity checks)
  bool kd_stage1 = true;
  bool full = false;
  bool verbose = false;
};

void print_usage() {
  std::printf(
      "usage: axnn_cli [train|quantize|approximate|sweep|serve|qos|search|inspect|list-multipliers] [options]\n"
      "  (no verb or 'run' = approximate; the stages nest: quantize runs train's\n"
      "   stage first, approximate runs both)\n"
      "  --model resnet20|resnet32|mobilenetv2   (default resnet20)\n"
      "  --multiplier <id>        registry id, e.g. trunc5, evoa228 (default trunc5)\n"
      "  --method normal|ge|alpha|approxkd|approxkd+ge   (default approxkd+ge)\n"
      "  --t2 <temp>              distillation temperature (default: by MRE)\n"
      "  --epochs <n>             fine-tuning epochs (default: profile)\n"
      "  --lr <f>                 fine-tuning learning rate\n"
      "  --batch <n>              fine-tuning batch size\n"
      "  --fault-rate <p>         after 'approximate': re-evaluate under bit flips at\n"
      "                           per-element rate p in [0, 1] (fault smoke check)\n"
      "  --fault-surface <s>      what --fault-rate corrupts: weights (default), lut\n"
      "                           (stuck-at faults in the multiplier table), or\n"
      "                           activations (transient inter-layer flips)\n"
      "  --sentinel               run the fault sweep under the runtime sentinel\n"
      "                           (ABFT checksums, range guards, degradation) and\n"
      "                           report detected violations + recovered accuracy\n"
      "  --degrade-policy <n>     checksum violations at one layer before the\n"
      "                           sentinel degrades it to golden re-execution (default 3)\n"
      "  --plan <key>=<spec>      per-layer plan override, repeatable; key is a layer\n"
      "                           path prefix (see 'inspect' for paths) or 'default',\n"
      "                           spec is <mul>[:wN][:aN][:add=<adder>][:noge]\n"
      "                           [:mode=float|exact|approx]. --multiplier stays the\n"
      "                           default for unmatched layers.\n"
      "serve options (batched multi-tenant runtime, DESIGN.md §5g):\n"
      "  --arrival closed|poisson|burst   traffic shape (default closed)\n"
      "  --requests <n>           total requests per session (default 128)\n"
      "  --clients <n>            closed-loop concurrency (default 4)\n"
      "  --rate <rps>             poisson offered load in req/s (default 200)\n"
      "  --burst <n>              burst wave size (default 16)\n"
      "  --deadline-us <n>        per-request deadline; 0 = none (default 0)\n"
      "  --max-batch <n>          micro-batcher coalescing limit (default 8)\n"
      "  --batch-delay-us <n>     micro-batcher max hold time (default 2000)\n"
      "  --lanes <n>              model replicas for parallel batches (default 1)\n"
      "  --tenant <name>=<plan>   extra session on its own plan, repeatable,\n"
      "                           e.g. --tenant premium=default=exact_8x4\n"
      "  --seed <n>               load-generator seed (arrival schedule + sample\n"
      "                           selection) for reproducible load runs\n"
      "  --finetune               run the approximation stage before serving\n"
      "  --admission <policy>     full-pool admission: block (default, backpressure),\n"
      "                           shed-newest (drop the incoming request), or\n"
      "                           shed-deadline (evict the least-viable queued one)\n"
      "  --reject-infeasible      reject submits whose deadline sits below the\n"
      "                           calibrated service floor instead of serving late\n"
      "  --checkpoint-dir <dir>   keep crash-safe AXNP generations of the served\n"
      "                           weights here (CRC-verified, keep-N rotation)\n"
      "  --reload                 mid-traffic, save a checkpoint and atomically\n"
      "                           reload from it (hot-reload smoke; defaults\n"
      "                           --checkpoint-dir to <cache-dir>/serve_ckpt)\n"
      "qos options (adaptive operating points, DESIGN.md §5h; also the 'qos' verb,\n"
      "which loads the engine and prints the calibrated ladder without traffic):\n"
      "  --qos <file>             operating-point ladder ('point <name> = <plan>'\n"
      "                           per line); sessions with no --tenant plan serve it\n"
      "                           under the governor\n"
      "  --energy-cap-j <x>       energy budget in estimated units/s (1 unit = one\n"
      "                           exact MAC); the governor sheds down-ladder when the\n"
      "                           rolling estimate exceeds it\n"
      "  --governor <k=v,...>     governor knobs: tick-ms, dwell-ms, recover-ms,\n"
      "                           p95-ms (step down when observed p95 exceeds it),\n"
      "                           queue-high, violation-rate\n"
      "search options (automated per-layer plan search, DESIGN.md §5j; emits a\n"
      "Pareto front of accuracy-vs-energy plans as a --qos ladder):\n"
      "  --multipliers <a,b,..>   candidate registry ids (default trunc2..trunc5)\n"
      "  --widths <WxA,..>        extra weight-x-activation bit widths per layer,\n"
      "                           e.g. 3x8,2x8 (default: calibrated widths only;\n"
      "                           heterogeneous-width plans are not servable)\n"
      "  --accuracy-floor <p>     drop points below this holdout accuracy in [0,1]\n"
      "  --energy-cap-j <x>       (reused) drop points above this energy/sample\n"
      "  --budget-evals <n>       total holdout-evaluation budget (default 32)\n"
      "  --holdout <n>            holdout samples from the test tail (default 96)\n"
      "  --evolve <gens>          evolutionary generations per budget (default 0)\n"
      "  --emit <file>            write the searched ladder here; serve it with\n"
      "                           axnn_cli serve --qos <file>\n"
      "  --json                   list-multipliers: machine-readable JSON to stdout\n"
      "  --report <out.json>      write a machine-readable run report (bench-harness\n"
      "                           schema; events also land in <out>.jsonl)\n"
      "  --timing                 collect per-layer telemetry; merged into --report\n"
      "                           or summarised on stdout\n"
      "  --no-simd                force the scalar GEMM kernels (same as AXNN_SIMD=\n"
      "                           scalar); the escape hatch for verifying SIMD\n"
      "                           bit-identity and for debugging vector kernels\n"
      "  --list-multipliers       alias for the list-multipliers verb\n"
      "  --no-kd-stage1           plain fine-tuning in the quantization stage\n"
      "  --full                   paper-scale profile (same as AXNN_REPRO_FULL=1)\n"
      "  --verbose                per-epoch progress\n");
}

bool parse_method(const std::string& s, train::Method& out) {
  if (s == "normal") out = train::Method::kNormal;
  else if (s == "ge") out = train::Method::kGE;
  else if (s == "alpha") out = train::Method::kAlpha;
  else if (s == "approxkd") out = train::Method::kApproxKD;
  else if (s == "approxkd+ge") out = train::Method::kApproxKD_GE;
  else return false;
  return true;
}

bool parse_model(const std::string& s, core::ModelKind& out) {
  if (s == "resnet20") out = core::ModelKind::kResNet20;
  else if (s == "resnet32") out = core::ModelKind::kResNet32;
  else if (s == "mobilenetv2") out = core::ModelKind::kMobileNetV2;
  else return false;
  return true;
}

bool parse_verb(const std::string& s, std::string& out) {
  if (s == "train" || s == "quantize" || s == "approximate" || s == "sweep" ||
      s == "serve" || s == "qos" || s == "search" || s == "inspect" ||
      s == "list-multipliers") {
    out = s;
    return true;
  }
  if (s == "run") {  // pre-verb spelling
    out = "approximate";
    return true;
  }
  return false;
}

std::optional<CliOptions> parse(int argc, char** argv) {
  CliOptions opt;
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    if (!parse_verb(argv[i], opt.verb)) {
      std::fprintf(stderr, "unknown command '%s'\n", argv[i]);
      print_usage();
      return std::nullopt;
    }
    ++i;
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--model") {
      const char* v = next();
      if (v == nullptr || !parse_model(v, opt.model)) return std::nullopt;
    } else if (arg == "--multiplier") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.multiplier = v;
    } else if (arg == "--method") {
      const char* v = next();
      if (v == nullptr || !parse_method(v, opt.method)) return std::nullopt;
    } else if (arg == "--t2") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.t2 = static_cast<float>(std::atof(v));
    } else if (arg == "--epochs") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.epochs = std::atoi(v);
    } else if (arg == "--lr") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.lr = static_cast<float>(std::atof(v));
    } else if (arg == "--batch") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.batch = std::atoll(v);
    } else if (arg == "--fault-rate") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      char* end = nullptr;
      const double rate = std::strtod(v, &end);
      if (end == v || *end != '\0' || !std::isfinite(rate) || rate < 0.0 || rate > 1.0) {
        std::fprintf(stderr, "invalid --fault-rate '%s': expected a probability in [0, 1]\n", v);
        return std::nullopt;
      }
      opt.fault_rate = rate;
    } else if (arg == "--fault-surface") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      const std::string s = v;
      if (s != "weights" && s != "lut" && s != "activations") {
        std::fprintf(stderr, "invalid --fault-surface '%s': expected weights|lut|activations\n",
                     v);
        return std::nullopt;
      }
      opt.fault_surface = s;
    } else if (arg == "--sentinel") {
      opt.sentinel = true;
    } else if (arg == "--degrade-policy") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < 0 || n > 1000000) {
        std::fprintf(stderr, "invalid --degrade-policy '%s': expected a non-negative count\n", v);
        return std::nullopt;
      }
      opt.degrade_policy = static_cast<int>(n);
    } else if (arg == "--plan") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.plan_entries.emplace_back(v);
    } else if (arg == "--arrival") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      const std::string s = v;
      if (s != "closed" && s != "poisson" && s != "burst") {
        std::fprintf(stderr, "invalid --arrival '%s': expected closed|poisson|burst\n", v);
        return std::nullopt;
      }
      opt.arrival = s;
    } else if (arg == "--requests") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.requests = std::atoi(v);
      if (opt.requests <= 0) {
        std::fprintf(stderr, "invalid --requests '%s': expected a positive count\n", v);
        return std::nullopt;
      }
    } else if (arg == "--clients") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.clients = std::atoi(v);
      if (opt.clients <= 0) {
        std::fprintf(stderr, "invalid --clients '%s': expected a positive count\n", v);
        return std::nullopt;
      }
    } else if (arg == "--rate") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.rate_rps = std::atof(v);
      if (!(opt.rate_rps > 0.0)) {
        std::fprintf(stderr, "invalid --rate '%s': expected req/s > 0\n", v);
        return std::nullopt;
      }
    } else if (arg == "--burst") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.burst = std::atoi(v);
      if (opt.burst <= 0) {
        std::fprintf(stderr, "invalid --burst '%s': expected a positive count\n", v);
        return std::nullopt;
      }
    } else if (arg == "--deadline-us") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.deadline_us = std::atoll(v);
    } else if (arg == "--max-batch") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.max_batch = std::atoi(v);
    } else if (arg == "--batch-delay-us") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.batch_delay_us = std::atoll(v);
    } else if (arg == "--lanes") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.lanes = std::atoi(v);
    } else if (arg == "--tenant") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      if (std::strchr(v, '=') == nullptr) {
        std::fprintf(stderr, "invalid --tenant '%s': expected <name>=<plan text>\n", v);
        return std::nullopt;
      }
      opt.tenants.emplace_back(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      char* end = nullptr;
      const unsigned long long s = std::strtoull(v, &end, 0);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "invalid --seed '%s': expected an unsigned integer\n", v);
        return std::nullopt;
      }
      opt.seed = static_cast<uint64_t>(s);
    } else if (arg == "--qos") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.qos_file = v;
    } else if (arg == "--energy-cap-j") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      char* end = nullptr;
      const double cap = std::strtod(v, &end);
      if (end == v || *end != '\0' || !std::isfinite(cap) || cap <= 0.0) {
        std::fprintf(stderr, "invalid --energy-cap-j '%s': expected units/s > 0\n", v);
        return std::nullopt;
      }
      opt.energy_cap = cap;
    } else if (arg == "--governor") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      std::string entry;
      std::istringstream items(v);
      while (std::getline(items, entry, ',')) {
        if (entry.find('=') == std::string::npos) {
          std::fprintf(stderr, "invalid --governor entry '%s': expected key=value\n",
                       entry.c_str());
          return std::nullopt;
        }
        opt.governor_kv.push_back(entry);
      }
    } else if (arg == "--finetune") {
      opt.serve_finetune = true;
    } else if (arg == "--admission") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      serve::AdmissionPolicy p;
      if (!serve::parse_admission_policy(v, p)) {
        std::fprintf(stderr,
                     "invalid --admission '%s': expected block|shed-newest|shed-deadline\n", v);
        return std::nullopt;
      }
      opt.admission_policy = v;
    } else if (arg == "--reject-infeasible") {
      opt.reject_infeasible = true;
    } else if (arg == "--checkpoint-dir") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.checkpoint_dir = v;
    } else if (arg == "--reload") {
      opt.hot_reload = true;
    } else if (arg == "--multipliers") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      std::string id;
      std::istringstream items(v);
      while (std::getline(items, id, ','))
        if (!id.empty()) opt.search_multipliers.push_back(id);
      if (opt.search_multipliers.empty()) {
        std::fprintf(stderr, "invalid --multipliers '%s': expected id[,id...]\n", v);
        return std::nullopt;
      }
    } else if (arg == "--widths") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      std::string pair;
      std::istringstream items(v);
      while (std::getline(items, pair, ',')) {
        int w = 0, a = 0;
        char tail = '\0';
        if (std::sscanf(pair.c_str(), "%dx%d%c", &w, &a, &tail) != 2) {
          std::fprintf(stderr, "invalid --widths entry '%s': expected WxA, e.g. 3x8\n",
                       pair.c_str());
          return std::nullopt;
        }
        opt.search_widths.emplace_back(w, a);
      }
    } else if (arg == "--accuracy-floor") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      char* end = nullptr;
      const double floor = std::strtod(v, &end);
      if (end == v || *end != '\0' || !std::isfinite(floor) || floor < 0.0 || floor > 1.0) {
        std::fprintf(stderr, "invalid --accuracy-floor '%s': expected a fraction in [0, 1]\n",
                     v);
        return std::nullopt;
      }
      opt.accuracy_floor = floor;
    } else if (arg == "--budget-evals") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n <= 0 || n > 100000) {
        std::fprintf(stderr, "invalid --budget-evals '%s': expected a positive count\n", v);
        return std::nullopt;
      }
      opt.budget_evals = static_cast<int>(n);
    } else if (arg == "--holdout") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n <= 0) {
        std::fprintf(stderr, "invalid --holdout '%s': expected a positive count\n", v);
        return std::nullopt;
      }
      opt.holdout = static_cast<int>(n);
    } else if (arg == "--evolve") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < 0 || n > 10000) {
        std::fprintf(stderr, "invalid --evolve '%s': expected a generation count\n", v);
        return std::nullopt;
      }
      opt.evolve = static_cast<int>(n);
    } else if (arg == "--emit") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.emit_path = v;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--report") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.report_path = v;
    } else if (arg == "--timing") {
      opt.timing = true;
    } else if (arg == "--no-simd") {
      opt.no_simd = true;
    } else if (arg == "--list-multipliers") {
      opt.verb = "list-multipliers";
    } else if (arg == "--no-kd-stage1") {
      opt.kd_stage1 = false;
    } else if (arg == "--full") {
      opt.full = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return std::nullopt;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  return opt;
}

core::Workbench make_workbench(const CliOptions& opt) {
  core::WorkbenchConfig cfg;
  cfg.model = opt.model;
  if (opt.full) setenv("AXNN_REPRO_FULL", "1", 1);
  cfg.profile = core::BenchProfile::from_env();
  cfg.profile.apply();
  cfg.verbose = opt.verbose;
  return core::Workbench(cfg);
}

float pick_t2(const CliOptions& opt, const axmul::MultiplierSpec& spec) {
  if (opt.t2) return *opt.t2;
  if (spec.paper_mre < 0.03) return 2.0f;
  if (spec.paper_mre < 0.13) return 5.0f;
  return 10.0f;
}

train::FineTuneConfig make_ft(const CliOptions& opt, const core::Workbench& wb) {
  train::FineTuneConfig fc = wb.default_ft_config();
  if (opt.epochs) fc.epochs = *opt.epochs;
  if (opt.lr) fc.lr = *opt.lr;
  if (opt.batch) fc.batch_size = *opt.batch;
  fc.verbose = opt.verbose;
  return fc;
}

// Compose the effective plan text from --multiplier (the default) and the
// repeated --plan overrides. A later `--plan default=...` wins over
// --multiplier because NetPlan::parse keeps the last default entry.
std::string compose_plan_text(const CliOptions& opt) {
  std::string text = "default=" + opt.multiplier;
  for (const auto& e : opt.plan_entries) text += "; " + e;
  return text;
}

void report_table(obs::RunReport* report, const std::string& key, const core::Table& t) {
  if (report != nullptr) report->add_table(key, t.headers(), t.rows());
}

// The multiplier registry at a glance: measured MRE (Eq. 14 over the full
// signed 4x8-bit operand grid), whether the GE fit classifies the error as
// biased (a non-constant fit => GE has something to compensate) and the
// per-MAC energy savings. Needs no Workbench, so it runs instantly. With
// --json the same facts go to stdout as one machine-readable document
// (plus the bit widths each id supports in plan specs).
int cmd_list_multipliers(const CliOptions& opt, obs::RunReport* report) {
  const auto kind_name = [](axmul::MultiplierKind k) {
    switch (k) {
      case axmul::MultiplierKind::kExact: return "exact";
      case axmul::MultiplierKind::kTruncated: return "trunc";
      case axmul::MultiplierKind::kEvoApproxLike: return "evoapprox";
    }
    return "?";
  };
  core::Table table({"id", "kind", "MRE[%]", "paper[%]", "bias", "savings[%]"});
  obs::Json list = obs::Json::array();
  for (const auto& spec : axmul::paper_multipliers()) {
    obs::Json j = obs::Json::object();
    j["id"] = spec.id;
    j["kind"] = kind_name(spec.kind);
    j["paper_mre"] = spec.paper_mre;
    j["energy_savings_pct"] = spec.energy_savings_pct;
    // Widths a plan spec may pin with :wN/:aN (search space bounds) and
    // the calibrated defaults a bare spec means.
    obs::Json widths = obs::Json::object();
    widths["weight_bits"] = static_cast<int64_t>(quant::kWeightBits);
    widths["activation_bits"] = static_cast<int64_t>(quant::kActivationBits);
    widths["min_bits"] = static_cast<int64_t>(2);
    widths["max_bits"] = static_cast<int64_t>(8);
    j["supported_widths"] = std::move(widths);
    if (spec.kind == axmul::MultiplierKind::kExact) {
      table.add_row({spec.id, kind_name(spec.kind), "0.00", "0.0", "unbiased", "0"});
      j["mre"] = 0.0;
      j["bias"] = "unbiased";
      list.push_back(std::move(j));
      continue;
    }
    const auto stats = axmul::compute_error_stats(*axmul::make_multiplier(spec));
    const approx::SignedMulTable tab(axmul::make_lut(spec.id));
    const ge::ErrorFit fit = ge::fit_multiplier_error(tab, {});
    char mre[32], paper[32], savings[32];
    std::snprintf(mre, sizeof mre, "%.2f", 100.0 * stats.mre);
    std::snprintf(paper, sizeof paper, "%.1f", 100.0 * spec.paper_mre);
    std::snprintf(savings, sizeof savings, "%.0f", spec.energy_savings_pct);
    table.add_row({spec.id, kind_name(spec.kind), mre, paper,
                   fit.is_constant() ? "unbiased" : "biased", savings});
    j["mre"] = stats.mre;
    j["bias"] = fit.is_constant() ? "unbiased" : "biased";
    list.push_back(std::move(j));
  }
  if (opt.json) {
    obs::Json doc = obs::Json::object();
    doc["multipliers"] = std::move(list);
    std::printf("%s\n", doc.dump(2).c_str());
  } else {
    table.print();
  }
  report_table(report, "multipliers", table);
  return 0;
}

int cmd_inspect(const CliOptions& opt, obs::RunReport* report) {
  core::Workbench wb = make_workbench(opt);
  const auto info = wb.info();
  // Kernel execution environment: which vector ISA the startup probe
  // selected (and whether it was clamped by AXNN_SIMD / --no-simd), which
  // GEMM backend unqualified calls resolve to, and the plan cache geometry.
  std::printf("kernels: isa %s (detected %s), backend %s, plan cache capacity %lld\n",
              kernels::isa_name(kernels::active_isa()),
              kernels::isa_name(kernels::detected_isa()),
              kernels::backend_name(kernels::default_backend()),
              static_cast<long long>(kernels::PlanCache::global().stats().capacity));
  std::printf("model %s: %lld params, %lld MACs/sample, FP acc %.2f%%\n", info.name.c_str(),
              static_cast<long long>(info.parameters),
              static_cast<long long>(info.macs_per_sample), 100.0 * wb.fp_accuracy());
  const auto spec = axmul::find_spec(opt.multiplier);
  if (!spec) {
    std::fprintf(stderr, "unknown multiplier '%s'\n", opt.multiplier.c_str());
    return 1;
  }
  const auto stats = axmul::compute_error_stats(*axmul::make_multiplier(*spec));
  const auto fit = wb.fit_error(opt.multiplier);
  const auto energy = energy::estimate(info.macs_per_sample, *spec);
  std::printf("multiplier %s: MRE %.2f%% (paper %.1f%%), bias %.2f, savings %.0f%%\n",
              spec->id.c_str(), 100.0 * stats.mre, 100.0 * spec->paper_mre, stats.mean_error,
              spec->energy_savings_pct);
  std::printf("GE fit: %s\n", fit.to_string().c_str());
  std::printf("network energy: %.0f -> %.0f units (%.0f%% savings)\n", energy.exact_energy,
              energy.approx_energy, energy.savings_pct);
  // One warm-up forward (float path, batch of 1) so every GEMM leaf resolves
  // its prepared plans into its per-leaf memo; the keys printed below are
  // exactly what the serving engine pre-warms at load.
  {
    auto [images, labels] = wb.data().test.slice(0, 1);
    (void)labels;
    (void)wb.model().forward(images, nn::ExecContext{});
  }
  std::printf("plan-addressable layers (use these paths with --plan):\n");
  core::Table leaves({"path", "kind", "dot_length", "plan"});
  for (const auto& leaf : nn::enumerate_gemm_leaves(wb.model())) {
    std::string plans;
    if (const kernels::PlanMemo* memo = leaf.layer->plan_memo()) {
      for (const auto& key : memo->keys()) {
        if (!plans.empty()) plans += ", ";
        plans += key.to_string();
      }
    }
    if (plans.empty()) plans = "-";
    std::printf("  %-52s %s dot=%-6lld %s\n", leaf.path.c_str(), leaf.is_conv ? "conv" : "fc  ",
                static_cast<long long>(leaf.dot_length), plans.c_str());
    leaves.add_row({leaf.path, leaf.is_conv ? "conv" : "fc",
                    std::to_string(leaf.dot_length), plans});
  }
  const kernels::PlanCacheStats pstats = kernels::PlanCache::global().stats();
  std::printf("plan cache: %lld plans, %lld hits / %lld misses (%.0f%% hit rate)\n",
              static_cast<long long>(pstats.size), static_cast<long long>(pstats.hits),
              static_cast<long long>(pstats.misses), 100.0 * pstats.hit_rate());
  if (report != nullptr) {
    report->metric("fp_acc", wb.fp_accuracy());
    report->metric("parameters", info.parameters);
    report->metric("macs_per_sample", info.macs_per_sample);
    report->metric("multiplier_mre", stats.mre);
    report->metric("isa", std::string(kernels::isa_name(kernels::active_isa())));
    report->metric("backend",
                   std::string(kernels::backend_name(kernels::default_backend())));
    report->metric("plan_cache_size", pstats.size);
    report->metric("plan_cache_hit_rate", pstats.hit_rate());
    report->set("ge_fit", core::to_json(fit));
    report->set("energy", core::to_json(energy));
    report_table(report, "layers", leaves);
  }
  return 0;
}

int cmd_train(const CliOptions& opt, obs::RunReport* report) {
  core::Workbench wb = make_workbench(opt);
  const auto info = wb.info();
  std::printf("model %s: %lld params, %lld MACs/sample\n", info.name.c_str(),
              static_cast<long long>(info.parameters),
              static_cast<long long>(info.macs_per_sample));
  std::printf("FP pre-training done: %.2f%% test accuracy\n", 100.0 * wb.fp_accuracy());
  if (report != nullptr) {
    report->metric("fp_acc", wb.fp_accuracy());
    report->metric("parameters", info.parameters);
    report->metric("macs_per_sample", info.macs_per_sample);
  }
  return 0;
}

// Run the quantization stage (after FP pre-training) and report the 8A4W
// accuracies around it. Returns the workbench so 'approximate' can continue.
train::FineTuneResult run_stage1(const CliOptions& opt, core::Workbench& wb,
                                 obs::RunReport* report) {
  const auto s1 = wb.run_quantization_stage(opt.kd_stage1);
  std::printf("FP %.2f%% | 8A4W %.2f%% -> %.2f%% (%s stage 1)\n", 100.0 * wb.fp_accuracy(),
              100.0 * wb.quant_acc_before_ft(), 100.0 * s1.final_acc,
              opt.kd_stage1 ? "KD" : "normal");
  if (report != nullptr) {
    report->metric("fp_acc", wb.fp_accuracy());
    report->metric("quant_acc_before_ft", wb.quant_acc_before_ft());
    report->metric("stage1_acc", s1.final_acc);
    report->set("stage1", core::to_json(s1));
  }
  return s1;
}

int cmd_quantize(const CliOptions& opt, obs::RunReport* report) {
  core::Workbench wb = make_workbench(opt);
  (void)run_stage1(opt, wb, report);
  return 0;
}

int cmd_approximate(const CliOptions& opt, obs::RunReport* report) {
  const auto spec = axmul::find_spec(opt.multiplier);
  if (!spec) {
    std::fprintf(stderr, "unknown multiplier '%s'\n", opt.multiplier.c_str());
    return 1;
  }
  core::Workbench wb = make_workbench(opt);
  (void)run_stage1(opt, wb, report);

  const float t2 = pick_t2(opt, *spec);
  const bool use_plan = !opt.plan_entries.empty();
  const std::string label = use_plan ? compose_plan_text(opt) : opt.multiplier;
  auto setup = use_plan
                   ? core::ApproxStageSetup::with_plan(nn::NetPlan::parse(label), opt.method, t2)
                   : core::ApproxStageSetup::uniform(opt.multiplier, opt.method, t2);
  setup.finetune = make_ft(opt, wb);
  const auto run = wb.run_approximation_stage(setup);
  if (use_plan && run.plan_fits > 0)
    std::printf("plan: %zu per-layer GE fits\n", run.plan_fits);
  std::printf("%s + %s (T2=%.0f): %.2f%% -> %.2f%% (best %.2f%%) in %.1fs\n",
              label.c_str(), train::to_string(opt.method).c_str(), t2,
              100.0 * run.initial_acc, 100.0 * run.result.final_acc,
              100.0 * run.result.best_acc, run.result.seconds);
  if (!run.result.health.clean())
    std::printf("health: %s\n", run.result.health.summary().c_str());
  if (report != nullptr) report->set("run", core::to_json(run));

  if (opt.fault_rate) {
    // Fault-sweep smoke check: corrupt a copy of the fine-tuned model on the
    // selected surface and re-evaluate; with --sentinel, evaluate a second
    // time under the runtime monitor and report what it detected/recovered
    // (see bench_fault_sweep / bench_sentinel_coverage for full tables).
    resilience::FaultSpec fs;
    fs.rate = *opt.fault_rate;
    fs.seed = 0xFA17;
    if (opt.fault_surface == "lut") {
      fs.kind = resilience::FaultKind::kStuckAt;
      fs.bit_hi = 12;  // within the 4x8-bit product range
    } else if (opt.fault_surface == "activations") {
      fs.bit_hi = 27;  // spare the top exponent bits: corrupt, don't nuke
    }
    const resilience::FaultInjector inj(fs);
    auto faulty = wb.clone();
    approx::SignedMulTable tab(axmul::make_lut(opt.multiplier));
    nn::PlanResolution res;  // must outlive the evaluations below

    // Calibrate the sentinel against the *clean* clone and table — golden
    // checksums and tolerances must describe the fault-free state.
    sentinel::SentinelConfig sc;
    if (opt.degrade_policy) sc.policy.degrade_after = *opt.degrade_policy;
    sentinel::Sentinel sent(sc);
    if (opt.sentinel) {
      if (use_plan) {
        res = nn::NetPlan::parse(label).resolve(*faulty);
        sent.calibrate_plan(*faulty, res);
      } else {
        sent.calibrate_uniform(*faulty, tab, opt.multiplier);
      }
    } else if (use_plan) {
      res = nn::NetPlan::parse(label).resolve(*faulty);
    }

    if (opt.fault_surface == "weights") {
      std::vector<Tensor*> values;
      for (nn::Param* p : nn::collect_params(*faulty)) values.push_back(&p->value);
      resilience::corrupt_tensors(values, inj);
    } else if (opt.fault_surface == "lut") {
      resilience::corrupt_lut(tab, inj);
    }

    nn::ExecContext eval_ctx = nn::ExecContext::quant_approx(tab);
    if (use_plan) eval_ctx = eval_ctx.with_plan(res);
    if (opt.fault_surface == "activations") eval_ctx = eval_ctx.with_faults(inj);

    const double acc = train::evaluate_accuracy(*faulty, wb.data().test, eval_ctx);
    std::printf("fault sweep: %s flip rate %g -> %.2f%% (clean %.2f%%, %lld bits flipped)\n",
                opt.fault_surface.c_str(), *opt.fault_rate, 100.0 * acc,
                100.0 * run.result.final_acc, static_cast<long long>(inj.flips()));
    if (report != nullptr) {
      report->metric("fault_rate", *opt.fault_rate);
      report->metric("fault_surface", opt.fault_surface);
      report->metric("fault_acc", acc);
      report->metric("fault_bits_flipped", inj.flips());
    }

    if (opt.sentinel) {
      const double guarded =
          train::evaluate_accuracy(*faulty, wb.data().test, eval_ctx.with_monitor(sent));
      const auto rep = sent.report();
      std::printf("sentinel: %.2f%% under faults (unguarded %.2f%%) | %s\n", 100.0 * guarded,
                  100.0 * acc, rep.summary().c_str());
      if (report != nullptr) {
        report->metric("sentinel_acc", guarded);
        report->set("sentinel", core::to_json(rep));
      }
    }
  }
  return 0;
}

int cmd_sweep(const CliOptions& opt, obs::RunReport* report) {
  core::Workbench wb = make_workbench(opt);
  const auto s1 = run_stage1(opt, wb, report);
  core::Table table({"multiplier", "initial[%]", "final[%]"});
  for (const auto& spec : axmul::paper_multipliers()) {
    if (spec.kind == axmul::MultiplierKind::kExact) continue;
    const double initial = wb.approx_initial_accuracy(spec.id);
    if (s1.final_acc - initial <= 0.01) {
      table.add_row({spec.id, core::Table::pct(initial), "-"});
      continue;
    }
    auto setup = core::ApproxStageSetup::uniform(spec.id, opt.method, pick_t2(opt, spec));
    setup.finetune = make_ft(opt, wb);
    const auto run = wb.run_approximation_stage(setup);
    table.add_row({spec.id, core::Table::pct(initial),
                   core::Table::pct(run.result.final_acc)});
    std::printf("  %s done\n", spec.id.c_str());
  }
  table.print();
  report_table(report, "sweep", table);
  return 0;
}

// Governor knob spellings shared by `serve` and `qos`.
bool apply_governor_flags(const CliOptions& opt, qos::GovernorConfig& g) {
  for (const auto& entry : opt.governor_kv) {
    const size_t eq = entry.find('=');
    const std::string key = entry.substr(0, eq);
    const std::string val = entry.substr(eq + 1);
    if (key == "tick-ms") g.tick_interval_ms = std::atoll(val.c_str());
    else if (key == "dwell-ms") g.dwell_ms = std::atoll(val.c_str());
    else if (key == "recover-ms") g.recover_ms = std::atoll(val.c_str());
    else if (key == "p95-ms") g.p95_high_ms = std::atof(val.c_str());
    else if (key == "queue-high") g.queue_high = std::atoi(val.c_str());
    else if (key == "violation-rate") g.violation_rate_high = std::atof(val.c_str());
    else {
      std::fprintf(stderr,
                   "unknown --governor key '%s' (want tick-ms|dwell-ms|recover-ms|p95-ms|"
                   "queue-high|violation-rate)\n",
                   key.c_str());
      return false;
    }
  }
  return true;
}

// Fill the qos-related ModelSpec fields from --qos/--energy-cap-j/--governor.
// Returns false (with a message) on an unreadable file or bad knob.
bool apply_qos_flags(const CliOptions& opt, serve::ModelSpec& spec) {
  if (!opt.qos_file.empty()) {
    std::ifstream in(opt.qos_file);
    if (!in) {
      std::fprintf(stderr, "cannot read --qos file '%s'\n", opt.qos_file.c_str());
      return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    spec.qos_points = ss.str();
  }
  if (opt.energy_cap) spec.governor.energy_cap_per_s = *opt.energy_cap;
  if (!apply_governor_flags(opt, spec.governor)) return false;
  // Operator ergonomics: with a request deadline but no explicit p95
  // threshold, govern against the deadline itself.
  if (spec.governor.p95_high_ms == 0.0 && opt.deadline_us && *opt.deadline_us > 0)
    spec.governor.p95_high_ms = static_cast<double>(*opt.deadline_us) / 1000.0;
  return true;
}

void print_qos_points(const serve::Engine& engine, obs::RunReport* report) {
  core::Table t({"#", "point", "holdout acc[%]", "energy/req", "savings[%]", "lat est[ms]",
                 "plan"});
  int idx = 0;
  for (const auto& p : engine.operating_points()) {
    t.add_row({std::to_string(idx++), p.name, core::Table::pct(p.holdout_acc),
               core::Table::num(p.energy_per_req, 0), core::Table::num(p.energy_savings_pct, 1),
               core::Table::num(p.latency_est_ms, 2),
               p.plan_text.size() > 48 ? p.plan_text.substr(0, 45) + "..." : p.plan_text});
  }
  std::printf("\n-- operating points (ladder order: 0 = best effort) --\n");
  t.print();
  if (report != nullptr) {
    report->set("qos", engine.qos_report().to_json());
    report->add_table("qos_points", t.headers(), t.rows());
  }
}

// Bring up the serving engine (DESIGN.md §5g) and drive it with the
// requested traffic shape. The default session serves the composed
// --multiplier/--plan text — or, with --qos, the governed operating-point
// ladder; each --tenant name=plan opens another session over the same
// weights and gets its own load run, so one invocation exercises true
// multi-tenant batching. Reports land under "serving" in the --report JSON
// (definitions.servingReport, same rows as bench_serving_load), plus "qos"
// (definitions.qosReport) when a ladder is active.
int cmd_serve(const CliOptions& opt, obs::RunReport* report) {
  serve::ModelSpec spec;
  spec.model = opt.model;
  if (opt.full) setenv("AXNN_REPRO_FULL", "1", 1);
  spec.profile = core::BenchProfile::from_env();
  spec.verbose = opt.verbose;
  spec.plan = compose_plan_text(opt);
  spec.kd_stage1 = opt.kd_stage1;
  spec.finetune = opt.serve_finetune;
  spec.method = opt.method;
  if (const auto mul = axmul::find_spec(opt.multiplier)) spec.t2 = pick_t2(opt, *mul);
  spec.sentinel = opt.sentinel;
  if (opt.degrade_policy) spec.sentinel_config.policy.degrade_after = *opt.degrade_policy;
  if (opt.max_batch) spec.batching.max_batch = *opt.max_batch;
  if (opt.batch_delay_us) spec.batching.max_delay_us = *opt.batch_delay_us;
  if (opt.lanes) spec.lanes = *opt.lanes;
  spec.batching.queue_capacity =
      std::max(spec.batching.queue_capacity, spec.batching.max_batch);
  if (!opt.admission_policy.empty())
    serve::parse_admission_policy(opt.admission_policy, spec.admission.policy);
  spec.admission.reject_infeasible = opt.reject_infeasible;
  spec.checkpoint_dir = opt.checkpoint_dir;
  if (opt.hot_reload && spec.checkpoint_dir.empty())
    spec.checkpoint_dir = spec.profile.cache_dir + "/serve_ckpt";
  if (!apply_qos_flags(opt, spec)) return 1;

  auto engine = serve::Engine::load(spec);
  std::printf("engine up: %d lane(s), max_batch %d, max_delay %lldus\n", engine->lanes(),
              spec.batching.max_batch, static_cast<long long>(spec.batching.max_delay_us));

  std::vector<serve::Session*> sessions{&engine->session()};
  for (const auto& t : opt.tenants) {
    const size_t eq = t.find('=');
    sessions.push_back(&engine->open_session(t.substr(0, eq), t.substr(eq + 1)));
  }

  serve::LoadSpec load;
  if (opt.arrival == "poisson") load.arrival = serve::Arrival::kPoisson;
  else if (opt.arrival == "burst") load.arrival = serve::Arrival::kBurst;
  load.requests = opt.requests;
  load.clients = opt.clients;
  load.rate_rps = opt.rate_rps;
  load.burst = opt.burst;
  if (opt.deadline_us) load.deadline_us = *opt.deadline_us;
  if (opt.seed) load.seed = *opt.seed;

  obs::Json serving = obs::Json::array();
  core::Table table({"session", "plan", "scenario", "req", "mean batch", "thr [req/s]",
                     "p50 [ms]", "p99 [ms]", "misses"});
  for (serve::Session* s : sessions) {
    // --reload: while the first session's traffic is live, save a checkpoint
    // and atomically restore from it — the epoch flip may not lose a request
    // (the served/shed/rejected tallies below account for every submit).
    std::thread reloader;
    if (opt.hot_reload && s == sessions.front()) {
      reloader = std::thread([&engine] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        try {
          const std::string saved = engine->save_checkpoint();
          serve::ReloadSpec rs;
          rs.from_checkpoint = true;
          engine->reload(rs);
          std::printf("hot reload: restored %s under live traffic\n", saved.c_str());
        } catch (const std::exception& e) {
          std::fprintf(stderr, "hot reload failed: %s\n", e.what());
        }
      });
    }
    const serve::LoadReport r = serve::run_load(*engine, *s, engine->data().test, load);
    if (reloader.joinable()) reloader.join();
    std::printf("%s (%s): %.1f req/s, p50 %.2fms p95 %.2fms p99 %.2fms, mean batch %.2f\n",
                s->name().c_str(), r.scenario.c_str(), r.throughput_rps, r.latency.p50,
                r.latency.p95, r.latency.p99, r.mean_batch);
    obs::Json row = r.to_json();
    row["session"] = s->name();
    serving.push_back(std::move(row));
    // A governed session's plan text is the whole multi-line ladder —
    // summarize it instead of wrecking the table layout.
    const std::string plan_cell =
        s->governed() ? "qos ladder (" + std::to_string(s->num_points()) +
                            " points, active=" + s->point_name(s->active_point()) + ")"
                      : s->plan_text();
    table.add_row({s->name(), plan_cell, r.scenario,
                   core::Table::num(static_cast<double>(r.requests), 0),
                   core::Table::num(r.mean_batch, 2), core::Table::num(r.throughput_rps, 1),
                   core::Table::num(r.latency.p50, 2), core::Table::num(r.latency.p99, 2),
                   core::Table::num(static_cast<double>(r.deadline_misses), 0)});
    if (opt.sentinel) {
      const auto rep = s->sentinel_report();
      std::printf("  sentinel[%s]: %s\n", s->name().c_str(), rep.summary().c_str());
    }
  }
  table.print();
  report_table(report, "serve", table);

  const serve::EngineStats stats = engine->stats();
  std::printf("engine totals: %lld requests in %lld batches (mean %.2f, max %lld), "
              "%lld timer flushes\n",
              static_cast<long long>(stats.requests), static_cast<long long>(stats.batches),
              stats.mean_batch, static_cast<long long>(stats.max_batch),
              static_cast<long long>(stats.flush_timer));
  if (stats.shed + stats.rejected + stats.reloads > 0)
    std::printf("lifecycle: %lld shed, %lld rejected, %lld reload(s)\n",
                static_cast<long long>(stats.shed), static_cast<long long>(stats.rejected),
                static_cast<long long>(stats.reloads));
  if (report != nullptr) {
    report->set("serving", std::move(serving));
    report->metric("requests", stats.requests);
    report->metric("batches", stats.batches);
    report->metric("mean_batch", stats.mean_batch);
    report->metric("deadline_misses", stats.deadline_misses);
    report->metric("shed", stats.shed);
    report->metric("rejected", stats.rejected);
    report->metric("reloads", stats.reloads);
  }
  if (engine->qos_enabled()) {
    const qos::QosReport qr = engine->qos_report();
    std::printf("%s\n", qr.summary().c_str());
    print_qos_points(*engine, report);
    if (report != nullptr) report->metric("qos_transitions", stats.qos_transitions);
  }
  return 0;
}

// `qos` verb: load the engine with an operating-point ladder and print the
// calibrated metadata (holdout accuracy, energy, latency estimate) without
// driving traffic — the offline half of the governor story.
int cmd_qos(const CliOptions& opt, obs::RunReport* report) {
  if (opt.qos_file.empty()) {
    std::fprintf(stderr, "the qos command requires --qos <points.plan>\n");
    return 1;
  }
  serve::ModelSpec spec;
  spec.model = opt.model;
  if (opt.full) setenv("AXNN_REPRO_FULL", "1", 1);
  spec.profile = core::BenchProfile::from_env();
  spec.verbose = opt.verbose;
  spec.kd_stage1 = opt.kd_stage1;
  spec.finetune = opt.serve_finetune;
  spec.method = opt.method;
  if (const auto mul = axmul::find_spec(opt.multiplier)) spec.t2 = pick_t2(opt, *mul);
  spec.sentinel = opt.sentinel;
  if (opt.lanes) spec.lanes = *opt.lanes;
  if (!apply_qos_flags(opt, spec)) return 1;

  auto engine = serve::Engine::load(spec);
  std::printf("engine up: %d lane(s), %zu operating point(s)\n", engine->lanes(),
              engine->operating_points().size());
  print_qos_points(*engine, report);
  return 0;
}

// Automated per-layer plan search (DESIGN.md §5j): stage-1 workbench ->
// search::run_search under a SearchSpec built from the flags -> Pareto
// front on stdout (+ report), optionally emitted as a --qos ladder file.
int cmd_search(const CliOptions& opt, obs::RunReport* report) {
  core::Workbench wb = make_workbench(opt);
  const auto stage1 = wb.run_quantization_stage(opt.kd_stage1);
  std::printf("FP %.2f%% | stage-1 %.2f%%\n", 100.0 * wb.fp_accuracy(),
              100.0 * stage1.final_acc);

  search::SearchSpec spec;
  if (!opt.search_multipliers.empty()) spec.multipliers = opt.search_multipliers;
  spec.widths = opt.search_widths;
  if (opt.accuracy_floor) spec.accuracy_floor = *opt.accuracy_floor;
  if (opt.energy_cap) spec.energy_cap = *opt.energy_cap;
  if (opt.budget_evals) spec.budget_evals = *opt.budget_evals;
  if (opt.holdout) spec.holdout = *opt.holdout;
  if (opt.seed) spec.seed = *opt.seed;
  if (opt.evolve) spec.evolution_generations = *opt.evolve;
  spec.verbose = opt.verbose;

  const search::SearchResult result = search::run_search(wb, spec);
  std::printf("search: %d holdout evals, exact baseline %.2f%% at %.0f units/sample\n",
              result.evals_used, 100.0 * result.baseline_acc, result.exact_energy);

  core::Table front({"point", "holdout[%]", "energy[units]", "savings[%]", "plan"});
  for (const auto& p : result.front)
    front.add_row({p.name, core::Table::num(100.0 * p.holdout_acc, 2),
                   core::Table::num(p.energy_per_sample, 0),
                   core::Table::num(p.energy_savings_pct, 1), p.plan_text});
  front.print();
  report_table(report, "search_front", front);

  core::Table uniforms({"baseline", "holdout[%]", "energy[units]", "savings[%]"});
  for (const auto& p : result.uniform_baselines)
    uniforms.add_row({p.name, core::Table::num(100.0 * p.holdout_acc, 2),
                      core::Table::num(p.energy_per_sample, 0),
                      core::Table::num(p.energy_savings_pct, 1)});
  std::printf("\n-- uniform baselines (all weakly dominated by the front) --\n");
  uniforms.print();
  report_table(report, "search_uniforms", uniforms);
  if (report != nullptr) report->metric("search", result.to_json());

  if (!opt.emit_path.empty()) {
    std::ofstream out(opt.emit_path);
    if (!out) {
      std::fprintf(stderr, "cannot write --emit file '%s'\n", opt.emit_path.c_str());
      return 1;
    }
    out << result.to_ladder_text();
    std::printf("\nladder: %s (serve it: axnn_cli serve --qos %s)\n", opt.emit_path.c_str(),
                opt.emit_path.c_str());
  }
  return 0;
}

int dispatch(const CliOptions& opt, obs::RunReport* report) {
  if (opt.verb == "list-multipliers") return cmd_list_multipliers(opt, report);
  if (opt.verb == "inspect") return cmd_inspect(opt, report);
  if (opt.verb == "train") return cmd_train(opt, report);
  if (opt.verb == "quantize") return cmd_quantize(opt, report);
  if (opt.verb == "approximate") return cmd_approximate(opt, report);
  if (opt.verb == "sweep") return cmd_sweep(opt, report);
  if (opt.verb == "serve") return cmd_serve(opt, report);
  if (opt.verb == "qos") return cmd_qos(opt, report);
  if (opt.verb == "search") return cmd_search(opt, report);
  std::fprintf(stderr, "unknown command '%s'\n", opt.verb.c_str());
  print_usage();
  return 1;
}

// --timing without --report: summarise the per-path wall-clock totals on
// stdout so the flag is useful interactively.
void print_timing_summary(const obs::Collector& collector) {
  core::Table table({"path", "metric", "calls", "total[ms]", "mean[us]"});
  for (const auto& [path, metrics] : collector.metrics()) {
    for (const auto& [metric, stat] : metrics) {
      if (metric.size() < 3 || metric.compare(metric.size() - 3, 3, ".ns") != 0) continue;
      table.add_row({path, metric, std::to_string(stat.count),
                     core::Table::num(stat.sum / 1e6, 1),
                     core::Table::num(stat.mean() / 1e3, 1)});
    }
  }
  std::printf("\n-- telemetry timings --\n");
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  // Every failure path exits with a one-line error and nonzero status; an
  // unhandled-exception abort from a CLI tool is never acceptable.
  try {
    const auto opt = parse(argc, argv);
    if (!opt) return 1;
    if (opt->no_simd) axnn::kernels::set_isa(axnn::kernels::Isa::kScalar);

    std::optional<obs::RunReport> report;
    if (!opt->report_path.empty())
      report.emplace("cli_" + opt->verb, "axnn_cli " + opt->verb);

    obs::Collector collector({.timing = true});
    std::optional<obs::ScopedCollector> attach;
    if (opt->timing) attach.emplace(collector);

    const int rc = dispatch(*opt, report ? &*report : nullptr);

    attach.reset();
    if (opt->timing && !report) print_timing_summary(collector);
    if (report) {
      if (opt->timing) report->merge_telemetry(collector);
      report->metric("exit_code", rc);
      report->write(opt->report_path);
      if (!report->events().empty()) {
        std::string jsonl = opt->report_path;
        if (jsonl.size() > 5 && jsonl.compare(jsonl.size() - 5, 5, ".json") == 0)
          jsonl.resize(jsonl.size() - 5);
        report->write_jsonl(jsonl + ".jsonl");
      }
      std::printf("report: %s\n", opt->report_path.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
  } catch (...) {
    std::fprintf(stderr, "error: unknown exception\n");
  }
  return 1;
}
