// axnn_cli — command-line driver for the Algorithm-1 pipeline.
//
// Runs any single experiment configuration without writing code:
//
//   axnn_cli --model resnet20 --multiplier trunc5 --method approxkd+ge
//            --t2 5 --epochs 10 --lr 2e-4 [--no-kd-stage1] [--full]
//
// Subcommands:
//   run        (default) full pipeline for one multiplier/method
//   inspect    print model parameters/MACs and multiplier statistics
//   sweep      run every paper multiplier with one method
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "axnn/axnn.hpp"

namespace {

using namespace axnn;

struct CliOptions {
  std::string command = "run";
  core::ModelKind model = core::ModelKind::kResNet20;
  std::string multiplier = "trunc5";
  train::Method method = train::Method::kApproxKD_GE;
  std::optional<float> t2;
  std::optional<int> epochs;
  std::optional<float> lr;
  std::optional<int64_t> batch;
  std::optional<double> fault_rate;  ///< weight bit-flip smoke sweep after run
  std::vector<std::string> plan_entries;  ///< repeated --plan key=spec overrides
  bool list_multipliers = false;
  bool kd_stage1 = true;
  bool full = false;
  bool verbose = false;
};

void print_usage() {
  std::printf(
      "usage: axnn_cli [run|inspect|sweep] [options]\n"
      "  --model resnet20|resnet32|mobilenetv2   (default resnet20)\n"
      "  --multiplier <id>        registry id, e.g. trunc5, evoa228 (default trunc5)\n"
      "  --method normal|ge|alpha|approxkd|approxkd+ge   (default approxkd+ge)\n"
      "  --t2 <temp>              distillation temperature (default: by MRE)\n"
      "  --epochs <n>             fine-tuning epochs (default: profile)\n"
      "  --lr <f>                 fine-tuning learning rate\n"
      "  --batch <n>              fine-tuning batch size\n"
      "  --fault-rate <p>         after 'run': re-evaluate under weight bit flips at\n"
      "                           per-element rate p (fault-sweep smoke check)\n"
      "  --plan <key>=<spec>      per-layer plan override, repeatable; key is a layer\n"
      "                           path prefix (see 'inspect' for paths) or 'default',\n"
      "                           spec is <mul>[:wN][:aN][:add=<adder>][:noge]\n"
      "                           [:mode=float|exact|approx]. --multiplier stays the\n"
      "                           default for unmatched layers.\n"
      "  --list-multipliers       print the registry (measured MRE, bias class,\n"
      "                           energy savings) and exit\n"
      "  --no-kd-stage1           plain fine-tuning in the quantization stage\n"
      "  --full                   paper-scale profile (same as AXNN_REPRO_FULL=1)\n"
      "  --verbose                per-epoch progress\n");
}

bool parse_method(const std::string& s, train::Method& out) {
  if (s == "normal") out = train::Method::kNormal;
  else if (s == "ge") out = train::Method::kGE;
  else if (s == "alpha") out = train::Method::kAlpha;
  else if (s == "approxkd") out = train::Method::kApproxKD;
  else if (s == "approxkd+ge") out = train::Method::kApproxKD_GE;
  else return false;
  return true;
}

bool parse_model(const std::string& s, core::ModelKind& out) {
  if (s == "resnet20") out = core::ModelKind::kResNet20;
  else if (s == "resnet32") out = core::ModelKind::kResNet32;
  else if (s == "mobilenetv2") out = core::ModelKind::kMobileNetV2;
  else return false;
  return true;
}

std::optional<CliOptions> parse(int argc, char** argv) {
  CliOptions opt;
  int i = 1;
  if (i < argc && argv[i][0] != '-') opt.command = argv[i++];
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--model") {
      const char* v = next();
      if (v == nullptr || !parse_model(v, opt.model)) return std::nullopt;
    } else if (arg == "--multiplier") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.multiplier = v;
    } else if (arg == "--method") {
      const char* v = next();
      if (v == nullptr || !parse_method(v, opt.method)) return std::nullopt;
    } else if (arg == "--t2") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.t2 = static_cast<float>(std::atof(v));
    } else if (arg == "--epochs") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.epochs = std::atoi(v);
    } else if (arg == "--lr") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.lr = static_cast<float>(std::atof(v));
    } else if (arg == "--batch") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.batch = std::atoll(v);
    } else if (arg == "--fault-rate") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.fault_rate = std::atof(v);
    } else if (arg == "--plan") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.plan_entries.emplace_back(v);
    } else if (arg == "--list-multipliers") {
      opt.list_multipliers = true;
    } else if (arg == "--no-kd-stage1") {
      opt.kd_stage1 = false;
    } else if (arg == "--full") {
      opt.full = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return std::nullopt;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  return opt;
}

core::Workbench make_workbench(const CliOptions& opt) {
  core::WorkbenchConfig cfg;
  cfg.model = opt.model;
  cfg.profile = core::BenchProfile::from_env();
  if (opt.full) {
    setenv("AXNN_REPRO_FULL", "1", 1);
    cfg.profile = core::BenchProfile::from_env();
  }
  cfg.verbose = opt.verbose;
  return core::Workbench(cfg);
}

float pick_t2(const CliOptions& opt, const axmul::MultiplierSpec& spec) {
  if (opt.t2) return *opt.t2;
  if (spec.paper_mre < 0.03) return 2.0f;
  if (spec.paper_mre < 0.13) return 5.0f;
  return 10.0f;
}

// The multiplier registry at a glance: measured MRE (Eq. 14 over the full
// signed 4x8-bit operand grid), whether the GE fit classifies the error as
// biased (a non-constant fit => GE has something to compensate) and the
// per-MAC energy savings. Needs no Workbench, so it runs instantly.
int cmd_list_multipliers() {
  const auto kind_name = [](axmul::MultiplierKind k) {
    switch (k) {
      case axmul::MultiplierKind::kExact: return "exact";
      case axmul::MultiplierKind::kTruncated: return "trunc";
      case axmul::MultiplierKind::kEvoApproxLike: return "evoapprox";
    }
    return "?";
  };
  core::Table table({"id", "kind", "MRE[%]", "paper[%]", "bias", "savings[%]"});
  for (const auto& spec : axmul::paper_multipliers()) {
    if (spec.kind == axmul::MultiplierKind::kExact) {
      table.add_row({spec.id, kind_name(spec.kind), "0.00", "0.0", "unbiased", "0"});
      continue;
    }
    const auto stats = axmul::compute_error_stats(*axmul::make_multiplier(spec));
    const approx::SignedMulTable tab(axmul::make_lut(spec.id));
    const ge::ErrorFit fit = ge::fit_multiplier_error(tab, {});
    char mre[32], paper[32], savings[32];
    std::snprintf(mre, sizeof mre, "%.2f", 100.0 * stats.mre);
    std::snprintf(paper, sizeof paper, "%.1f", 100.0 * spec.paper_mre);
    std::snprintf(savings, sizeof savings, "%.0f", spec.energy_savings_pct);
    table.add_row({spec.id, kind_name(spec.kind), mre, paper,
                   fit.is_constant() ? "unbiased" : "biased", savings});
  }
  table.print();
  return 0;
}

// Compose the effective plan text from --multiplier (the default) and the
// repeated --plan overrides. A later `--plan default=...` wins over
// --multiplier because NetPlan::parse keeps the last default entry.
std::string compose_plan_text(const CliOptions& opt) {
  std::string text = "default=" + opt.multiplier;
  for (const auto& e : opt.plan_entries) text += "; " + e;
  return text;
}

int cmd_inspect(const CliOptions& opt) {
  core::Workbench wb = make_workbench(opt);
  const auto info = wb.info();
  std::printf("model %s: %lld params, %lld MACs/sample, FP acc %.2f%%\n", info.name.c_str(),
              static_cast<long long>(info.parameters),
              static_cast<long long>(info.macs_per_sample), 100.0 * wb.fp_accuracy());
  const auto spec = axmul::find_spec(opt.multiplier);
  if (!spec) {
    std::fprintf(stderr, "unknown multiplier '%s'\n", opt.multiplier.c_str());
    return 1;
  }
  const auto stats = axmul::compute_error_stats(*axmul::make_multiplier(*spec));
  const auto fit = wb.fit_error(opt.multiplier);
  const auto energy = energy::estimate(info.macs_per_sample, *spec);
  std::printf("multiplier %s: MRE %.2f%% (paper %.1f%%), bias %.2f, savings %.0f%%\n",
              spec->id.c_str(), 100.0 * stats.mre, 100.0 * spec->paper_mre, stats.mean_error,
              spec->energy_savings_pct);
  std::printf("GE fit: %s\n", fit.to_string().c_str());
  std::printf("network energy: %.0f -> %.0f units (%.0f%% savings)\n", energy.exact_energy,
              energy.approx_energy, energy.savings_pct);
  std::printf("plan-addressable layers (use these paths with --plan):\n");
  for (const auto& leaf : nn::enumerate_gemm_leaves(wb.model()))
    std::printf("  %-52s %s dot=%lld\n", leaf.path.c_str(), leaf.is_conv ? "conv" : "fc  ",
                static_cast<long long>(leaf.dot_length));
  return 0;
}

train::FineTuneConfig make_ft(const CliOptions& opt, const core::Workbench& wb) {
  train::FineTuneConfig fc = wb.default_ft_config();
  if (opt.epochs) fc.epochs = *opt.epochs;
  if (opt.lr) fc.lr = *opt.lr;
  if (opt.batch) fc.batch_size = *opt.batch;
  fc.verbose = opt.verbose;
  return fc;
}

int cmd_run(const CliOptions& opt) {
  const auto spec = axmul::find_spec(opt.multiplier);
  if (!spec) {
    std::fprintf(stderr, "unknown multiplier '%s'\n", opt.multiplier.c_str());
    return 1;
  }
  core::Workbench wb = make_workbench(opt);
  const auto s1 = wb.run_quantization_stage(opt.kd_stage1);
  std::printf("FP %.2f%% | 8A4W %.2f%% -> %.2f%% (%s stage 1)\n", 100.0 * wb.fp_accuracy(),
              100.0 * wb.quant_acc_before_ft(), 100.0 * s1.final_acc,
              opt.kd_stage1 ? "KD" : "normal");

  const float t2 = pick_t2(opt, *spec);
  const bool use_plan = !opt.plan_entries.empty();
  const std::string label = use_plan ? compose_plan_text(opt) : opt.multiplier;
  core::Workbench::ApproxRun run;
  if (use_plan) {
    const nn::NetPlan plan = nn::NetPlan::parse(label);
    run = wb.run_approximation_stage(plan, opt.method, t2, make_ft(opt, wb));
    if (run.plan_fits > 0)
      std::printf("plan: %zu per-layer GE fits\n", run.plan_fits);
  } else {
    run = wb.run_approximation_stage(opt.multiplier, opt.method, t2, make_ft(opt, wb));
  }
  std::printf("%s + %s (T2=%.0f): %.2f%% -> %.2f%% (best %.2f%%) in %.1fs\n",
              label.c_str(), train::to_string(opt.method).c_str(), t2,
              100.0 * run.initial_acc, 100.0 * run.result.final_acc,
              100.0 * run.result.best_acc, run.result.seconds);
  if (!run.result.health.clean())
    std::printf("health: %s\n", run.result.health.summary().c_str());

  if (opt.fault_rate) {
    // Fault-sweep smoke check: corrupt a copy of the fine-tuned weights with
    // transient bit flips and re-evaluate (see bench_fault_sweep for the
    // full accuracy-vs-rate table).
    resilience::FaultSpec fs;
    fs.rate = *opt.fault_rate;
    fs.seed = 0xFA17;
    const resilience::FaultInjector inj(fs);
    auto faulty = wb.clone();
    std::vector<Tensor*> values;
    for (nn::Param* p : nn::collect_params(*faulty)) values.push_back(&p->value);
    resilience::corrupt_tensors(values, inj);
    const approx::SignedMulTable tab(axmul::make_lut(opt.multiplier));
    nn::ExecContext eval_ctx = nn::ExecContext::quant_approx(tab);
    nn::PlanResolution res;  // must outlive the evaluation below
    if (use_plan) {
      res = nn::NetPlan::parse(label).resolve(*faulty);
      eval_ctx = eval_ctx.with_plan(res);
    }
    const double acc = train::evaluate_accuracy(*faulty, wb.data().test, eval_ctx);
    std::printf("fault sweep: weight flip rate %g -> %.2f%% (clean %.2f%%, %lld bits flipped)\n",
                *opt.fault_rate, 100.0 * acc, 100.0 * run.result.final_acc,
                static_cast<long long>(inj.flips()));
  }
  return 0;
}

int cmd_sweep(const CliOptions& opt) {
  core::Workbench wb = make_workbench(opt);
  const auto s1 = wb.run_quantization_stage(opt.kd_stage1);
  core::Table table({"multiplier", "initial[%]", "final[%]"});
  for (const auto& spec : axmul::paper_multipliers()) {
    if (spec.kind == axmul::MultiplierKind::kExact) continue;
    const double initial = wb.approx_initial_accuracy(spec.id);
    if (s1.final_acc - initial <= 0.01) {
      table.add_row({spec.id, core::Table::pct(initial), "-"});
      continue;
    }
    const auto run = wb.run_approximation_stage(spec.id, opt.method, pick_t2(opt, spec),
                                                make_ft(opt, wb));
    table.add_row({spec.id, core::Table::pct(initial),
                   core::Table::pct(run.result.final_acc)});
    std::printf("  %s done\n", spec.id.c_str());
  }
  table.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Every failure path exits with a one-line error and nonzero status; an
  // unhandled-exception abort from a CLI tool is never acceptable.
  try {
    const auto opt = parse(argc, argv);
    if (!opt) return 1;
    if (opt->list_multipliers) return cmd_list_multipliers();
    if (opt->command == "run") return cmd_run(*opt);
    if (opt->command == "inspect") return cmd_inspect(*opt);
    if (opt->command == "sweep") return cmd_sweep(*opt);
    std::fprintf(stderr, "unknown command '%s'\n", opt->command.c_str());
    print_usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
  } catch (...) {
    std::fprintf(stderr, "error: unknown exception\n");
  }
  return 1;
}
