#include "axnn/obs/bench.hpp"

namespace axnn::obs::bench {
namespace {

std::vector<BenchCase>& registry() {
  static std::vector<BenchCase> cases;
  return cases;
}

}  // namespace

void register_case(BenchCase c) { registry().push_back(std::move(c)); }

const std::vector<BenchCase>& cases() { return registry(); }

}  // namespace axnn::obs::bench
