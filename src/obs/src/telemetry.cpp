#include "axnn/obs/telemetry.hpp"

#include <chrono>

namespace axnn::obs {

namespace detail {
std::atomic<Collector*> g_collector{nullptr};
}

namespace {
thread_local std::string t_path;
}

void Collector::add(const std::string& path, const std::string& metric, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_[path][metric].add(value);
}

void Collector::add_samples(const std::string& path, const std::string& metric, double sum,
                            int64_t count, double min, double max) {
  if (count <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  MetricStat& st = metrics_[path][metric];
  st.merge(MetricStat{sum, count, min, max});
}

void Collector::event(Json ev) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

MetricStat Collector::stat(const std::string& path, const std::string& metric) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto p = metrics_.find(path);
  if (p == metrics_.end()) return {};
  const auto m = p->second.find(metric);
  return m == p->second.end() ? MetricStat{} : m->second;
}

std::map<std::string, std::map<std::string, MetricStat>> Collector::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

std::vector<Json> Collector::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void Collector::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.clear();
  events_.clear();
}

void set_collector(Collector* c) {
  detail::g_collector.store(c, std::memory_order_release);
}

ScopedCollector::ScopedCollector(Collector& c) {
  prev_ = detail::g_collector.load(std::memory_order_acquire);
  set_collector(&c);
}

ScopedCollector::~ScopedCollector() { set_collector(prev_); }

std::string current_path() { return t_path; }

void ScopedPath::push(std::string_view segment) {
  active_ = true;
  restore_len_ = t_path.size();
  if (!t_path.empty()) t_path += '/';
  t_path += segment;
}

void ScopedPath::pop() { t_path.resize(restore_len_); }

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ScopedTimer::start(const char* metric, std::string_view fallback_path) {
  Collector* c = collector();
  if (c == nullptr || !c->config().timing) return;
  active_ = true;
  metric_ = metric;
  path_ = t_path.empty() ? std::string(fallback_path) : t_path;
  t0_ns_ = now_ns();
}

void ScopedTimer::stop() {
  Collector* c = collector();
  if (c == nullptr) return;
  c->add(path_, metric_, static_cast<double>(now_ns() - t0_ns_));
}

void record_gemm(const char* kernel, int64_t macs, int64_t ns) {
  Collector* c = collector();
  if (c == nullptr) return;
  const std::string path = t_path.empty() ? "kernels" : t_path;
  const std::string name(kernel);
  c->add(path, name + ".calls", 1.0);
  c->add(path, name + ".macs", static_cast<double>(macs));
  if (ns >= 0 && c->config().timing) c->add(path, name + ".ns", static_cast<double>(ns));
}

}  // namespace axnn::obs
