#include "axnn/obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace axnn::obs {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf; null makes the validator fail loudly
    return;
  }
  char buf[32];
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<size_t>(indent) * depth, ' ');
}

class Parser {
public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("Json::parse: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  std::string string_body() {
    expect('"');
    std::string s;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return s;
      if (c != '\\') {
        s += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'n': s += '\n'; break;
        case 'r': s += '\r'; break;
        case 't': s += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (our serializer only emits
          // \u00xx control characters, so this covers round-trips).
          if (code < 0x80) {
            s += static_cast<char>(code);
          } else if (code < 0x800) {
            s += static_cast<char>(0xC0 | (code >> 6));
            s += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            s += static_cast<char>(0xE0 | (code >> 12));
            s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  Json number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-')
        ++pos_;
      else
        break;
    }
    if (pos_ == start) fail("expected a number");
    size_t used = 0;
    double v = 0.0;
    const std::string token = text_.substr(start, pos_ - start);
    try {
      v = std::stod(token, &used);
    } catch (const std::exception&) {
      fail("malformed number '" + token + "'");
    }
    if (used != token.size()) fail("malformed number '" + token + "'");
    return Json(v);
  }

  Json value() {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos_;
      Json obj = Json::object();
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return obj;
      }
      while (true) {
        skip_ws();
        std::string key = string_body();
        skip_ws();
        expect(':');
        obj[key] = value();
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return obj;
      }
    }
    if (c == '[') {
      ++pos_;
      Json arr = Json::array();
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return arr;
      }
      while (true) {
        arr.push_back(value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return arr;
      }
    }
    if (c == '"') return Json(string_body());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json();
    return number();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray)
    throw std::logic_error("Json::push_back on a non-array value");
  items_.push_back(std::move(v));
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject)
    throw std::logic_error("Json::operator[] on a non-object value");
  for (auto& [k, v] : members_)
    if (k == key) return v;
  members_.emplace_back(key, Json());
  return members_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, num_); break;
    case Type::kString: append_escaped(out, str_); break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) { return Parser(text).run(); }

}  // namespace axnn::obs
