#include "axnn/obs/report.hpp"

#include <cstdio>
#include <stdexcept>

namespace axnn::obs {
namespace {

void write_text(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("RunReport: cannot open '" + path + "' for writing");
  const size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  if (n != text.size() || rc != 0)
    throw std::runtime_error("RunReport: short write to '" + path + "'");
}

}  // namespace

RunReport::RunReport(std::string name, std::string title) : name_(std::move(name)) {
  root_["schema_version"] = kReportSchemaVersion;
  root_["name"] = name_;
  root_["title"] = std::move(title);
  root_["metrics"] = Json::object();
  root_["tables"] = Json::object();
  root_["telemetry"] = Json::object();
}

void RunReport::add_table(const std::string& key, const std::vector<std::string>& headers,
                          const std::vector<std::vector<std::string>>& rows) {
  Json t = Json::object();
  Json h = Json::array();
  for (const auto& s : headers) h.push_back(s);
  t["headers"] = std::move(h);
  Json rs = Json::array();
  for (const auto& row : rows) {
    Json r = Json::array();
    for (const auto& cell : row) r.push_back(cell);
    rs.push_back(std::move(r));
  }
  t["rows"] = std::move(rs);
  root_["tables"][key] = std::move(t);
}

void RunReport::merge_telemetry(const Collector& c) {
  Json& tel = root_["telemetry"];
  for (const auto& [path, by_metric] : c.metrics()) {
    Json& node = tel[path];
    for (const auto& [metric, st] : by_metric) {
      Json s = Json::object();
      s["mean"] = st.mean();
      s["sum"] = st.sum;
      s["count"] = st.count;
      s["min"] = st.min;
      s["max"] = st.max;
      node[metric] = std::move(s);
    }
  }
  for (auto& ev : c.events()) events_.push_back(ev);
}

void RunReport::write(const std::string& path) const { write_text(path, to_string()); }

void RunReport::write_jsonl(const std::string& path) const {
  std::string text;
  for (const auto& ev : events_) {
    text += ev.dump(0);
    text += '\n';
  }
  write_text(path, text);
}

}  // namespace axnn::obs
