#include "axnn/obs/stats.hpp"

#include <algorithm>

namespace axnn::obs {

namespace {

/// Nearest-rank percentile of a sorted sample: the smallest value with at
/// least p% of the sample at or below it.
double nearest_rank(const std::vector<double>& sorted, double p) {
  const auto n = static_cast<int64_t>(sorted.size());
  int64_t rank = static_cast<int64_t>(p / 100.0 * static_cast<double>(n) + 0.999999);
  rank = std::clamp<int64_t>(rank, 1, n);
  return sorted[static_cast<size_t>(rank - 1)];
}

}  // namespace

LatencySummary summarize_latencies(std::vector<double> samples) {
  LatencySummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = static_cast<int64_t>(samples.size());
  s.p50 = nearest_rank(samples, 50.0);
  s.p95 = nearest_rank(samples, 95.0);
  s.p99 = nearest_rank(samples, 99.0);
  s.max = samples.back();
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  return s;
}

}  // namespace axnn::obs
