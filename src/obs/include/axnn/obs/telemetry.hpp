// axnn — zero-overhead-when-disabled runtime telemetry.
//
// A Collector aggregates named metrics per *layer path* — the same stable
// '/'-joined paths NetPlan uses to address layers — plus an ordered event
// stream (epoch curves, divergence rollbacks). Nothing is collected unless
// a collector is attached to the process-wide slot; every instrumentation
// site guards on enabled(), a single relaxed atomic load, so the
// instrumented forward/backward paths are bit-identical and effectively
// free when telemetry is off.
//
// Paths are built by the containers: Sequential (and the residual blocks)
// push one ScopedPath segment per child while running it, using the same
// "#k" sibling-disambiguation rule as plan paths (child_path_segments), so
// a metric recorded inside Conv2d::forward lands under exactly the path
// enumerate_gemm_leaves would report for that leaf. The stack is
// thread-local; the collector itself is mutex-guarded and shared.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "axnn/obs/json.hpp"

namespace axnn::obs {

/// Streaming aggregate of one metric: sum/count/min/max (mean derived).
struct MetricStat {
  double sum = 0.0;
  int64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void add(double v) {
    sum += v;
    ++count;
    if (v < min) min = v;
    if (v > max) max = v;
  }
  void merge(const MetricStat& o) {
    sum += o.sum;
    count += o.count;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

struct CollectorConfig {
  /// Record scoped wall-clock timers (*.ns metrics).
  bool timing = true;
  /// Re-run each approximate GEMM exactly to measure the observed
  /// accumulated error ε(y) and its residual against the GE fit f(y)
  /// (ge.eps_abs / ge.fit_residual). Roughly doubles approximate-forward
  /// cost — diagnostics only.
  bool ge_residual = false;
};

/// Thread-safe metric/event sink. Metrics live in a two-level map:
/// layer path ("stack#0/conv3x3_16->16#1", or a coarse bucket like
/// "kernels", "train/approx") → metric name → MetricStat.
class Collector {
public:
  explicit Collector(CollectorConfig cfg = {}) : cfg_(cfg) {}

  const CollectorConfig& config() const { return cfg_; }

  void add(const std::string& path, const std::string& metric, double value);
  /// Fold a pre-aggregated batch of samples in one lock acquisition.
  void add_samples(const std::string& path, const std::string& metric, double sum,
                   int64_t count, double min, double max);
  void event(Json ev);

  /// Snapshot of one metric (zero-count stat when absent).
  MetricStat stat(const std::string& path, const std::string& metric) const;
  std::map<std::string, std::map<std::string, MetricStat>> metrics() const;
  std::vector<Json> events() const;
  void clear();

private:
  CollectorConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::string, std::map<std::string, MetricStat>> metrics_;
  std::vector<Json> events_;
};

namespace detail {
extern std::atomic<Collector*> g_collector;
}

/// True when a collector is attached. One relaxed load — this is the guard
/// every hot-path instrumentation site uses.
inline bool enabled() {
  return detail::g_collector.load(std::memory_order_relaxed) != nullptr;
}

/// The attached collector (nullptr when disabled).
inline Collector* collector() {
  return detail::g_collector.load(std::memory_order_acquire);
}

/// Attach/detach the process-wide collector (nullptr detaches). Not
/// thread-safe against concurrent forwards — attach before running work.
void set_collector(Collector* c);

/// RAII attach: restores the previously attached collector on destruction.
class ScopedCollector {
public:
  explicit ScopedCollector(Collector& c);
  ~ScopedCollector();
  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;

private:
  Collector* prev_ = nullptr;
};

/// The calling thread's current '/'-joined layer path ("" at top level).
std::string current_path();

/// Push one path segment for the current scope. No-op (and no allocation)
/// when telemetry is disabled.
class ScopedPath {
public:
  explicit ScopedPath(std::string_view segment) {
    if (enabled()) push(segment);
  }
  ~ScopedPath() {
    if (active_) pop();
  }
  ScopedPath(const ScopedPath&) = delete;
  ScopedPath& operator=(const ScopedPath&) = delete;

private:
  void push(std::string_view segment);
  void pop();

  bool active_ = false;
  size_t restore_len_ = 0;
};

/// Wall-clock timer recording `metric` (nanoseconds) at the path current
/// when the timer started. No-op when disabled or when the collector's
/// timing flag is off.
class ScopedTimer {
public:
  explicit ScopedTimer(const char* metric, std::string_view fallback_path = {}) {
    if (enabled()) start(metric, fallback_path);
  }
  ~ScopedTimer() {
    if (active_) stop();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
  void start(const char* metric, std::string_view fallback_path);
  void stop();

  bool active_ = false;
  const char* metric_ = nullptr;
  int64_t t0_ns_ = 0;
  std::string path_;
};

/// Monotonic nanoseconds (for call sites that time a region by hand).
int64_t now_ns();

/// Record one GEMM dispatch under the current layer path (bucket "kernels"
/// when called outside any layer scope): <kernel>.calls / <kernel>.macs and,
/// when timing is on, <kernel>.ns. `ns < 0` skips the timing metric.
void record_gemm(const char* kernel, int64_t macs, int64_t ns);

}  // namespace axnn::obs
