// axnn — latency distribution summaries for serving/bench reports.
#pragma once

#include <cstdint>
#include <vector>

namespace axnn::obs {

/// Nearest-rank percentiles of a latency sample, in the sample's unit
/// (serving uses milliseconds). Zero-count summaries are all-zero.
struct LatencySummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  int64_t count = 0;
};

/// Summarize `samples` (sorted internally; the argument is consumed).
LatencySummary summarize_latencies(std::vector<double> samples);

}  // namespace axnn::obs
