// axnn — minimal JSON value type for telemetry reports.
//
// The obs layer serializes run reports without external dependencies, so
// this is a small DOM: null / bool / number / string / array / object with
// insertion-ordered members. The serializer emits non-finite numbers as
// null (a report must never contain a bare NaN token — the CI schema
// validator rejects nulls where numbers are required, which is how NaN
// metrics fail loudly). The parser is complete enough for round-trip tests
// and the bench-report validator: full JSON minus \uXXXX surrogate pairs
// (escaped as-is by our own serializer, so round-trips are unaffected).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace axnn::obs {

class Json {
public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(int64_t v) : Json(static_cast<double>(v)) {}
  Json(uint64_t v) : Json(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Json array() { return with_type(Type::kArray); }
  static Json object() { return with_type(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool boolean(bool fallback = false) const { return type_ == Type::kBool ? bool_ : fallback; }
  double number(double fallback = 0.0) const { return type_ == Type::kNumber ? num_ : fallback; }
  const std::string& str() const { return str_; }  ///< empty unless kString

  /// Array element count / object member count; 0 for scalars.
  size_t size() const { return is_object() ? members_.size() : items_.size(); }

  /// Append to an array (a null value silently becomes an empty array
  /// first, so `Json j; j.push_back(...)` works).
  void push_back(Json v);
  const std::vector<Json>& items() const { return items_; }

  /// Object member access; inserts (null) on a missing key. A null value
  /// silently becomes an empty object first.
  Json& operator[](const std::string& key);
  /// Lookup without insertion; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const { return members_; }

  /// Serialize. indent == 0 gives the compact one-line form (used for
  /// JSON-lines events); indent > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

  /// Parse a complete JSON document; throws std::invalid_argument with a
  /// byte offset on malformed input or trailing garbage.
  static Json parse(const std::string& text);

private:
  static Json with_type(Type t) {
    Json j;
    j.type_ = t;
    return j;
  }
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace axnn::obs
