// axnn — registered bench cases.
//
// Bench binaries used to be ~18 copy-pasted mains, each printing an ad-hoc
// table. Under the harness a bench is one function registered with
// AXNN_BENCH_CASE; the shared runner (bench/bench_runner.cpp) owns main():
// it applies the bench profile, runs every registered case, and writes a
// uniform BENCH_<name>.json (plus BENCH_<name>.jsonl when the case emitted
// events) next to the human-readable stdout tables.
//
//   AXNN_BENCH_CASE(table5, "Table 5: ResNet-20 accuracy per multiplier") {
//     core::Table t = ...;
//     ctx.table("table5", t_headers, t_rows);   // or via report_adapters
//     ctx.metric("best_acc", best);
//     return 0;
//   }
//
// The registry lives in axnn_obs (dependency-free); the runner, which needs
// axnn::core for profiles and workbenches, is compiled into each bench
// target by the bench/ CMake function.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "axnn/obs/report.hpp"

namespace axnn::obs::bench {

/// What a running case sees: the profile scale, whether a telemetry
/// collector is attached, and the report it fills in.
struct BenchContext {
  bool full = false;    ///< paper-scale profile (AXNN_REPRO_FULL / --full)
  bool timing = false;  ///< --timing: collector attached for the whole case
  RunReport& report;
  Collector* collector = nullptr;  ///< non-null iff timing

  void metric(const std::string& key, Json v) { report.metric(key, std::move(v)); }
  void table(const std::string& key, const std::vector<std::string>& headers,
             const std::vector<std::vector<std::string>>& rows) {
    report.add_table(key, headers, rows);
  }
};

struct BenchCase {
  std::string name;   ///< report file stem: BENCH_<name>.json
  std::string title;  ///< human header line
  std::function<int(BenchContext&)> fn;
};

/// Registry (insertion order == static-init order within a TU).
void register_case(BenchCase c);
const std::vector<BenchCase>& cases();

struct Registrar {
  explicit Registrar(BenchCase c) { register_case(std::move(c)); }
};

}  // namespace axnn::obs::bench

/// Define and register one bench case; the body is the case function,
/// receiving `::axnn::obs::bench::BenchContext& ctx` and returning an exit
/// code (0 = success).
#define AXNN_BENCH_CASE(id, title_str)                                              \
  static int axnn_bench_fn_##id(::axnn::obs::bench::BenchContext& ctx);             \
  static const ::axnn::obs::bench::Registrar axnn_bench_reg_##id{                   \
      {#id, title_str, &axnn_bench_fn_##id}};                                       \
  static int axnn_bench_fn_##id([[maybe_unused]] ::axnn::obs::bench::BenchContext& ctx)
