// axnn — structured run reports.
//
// A RunReport is the sink the bench harness and the CLI write into: a JSON
// document with a fixed top-level shape (schema_version / name / title /
// metrics / tables / telemetry) plus an ordered event stream emitted as
// JSON-lines. schemas/bench_report.schema.json pins the shape the CI
// validator checks.
#pragma once

#include <string>
#include <vector>

#include "axnn/obs/json.hpp"
#include "axnn/obs/telemetry.hpp"

namespace axnn::obs {

inline constexpr int kReportSchemaVersion = 1;

class RunReport {
public:
  explicit RunReport(std::string name, std::string title = {});

  const std::string& name() const { return name_; }

  /// The whole document, for ad-hoc additions beyond the helpers below.
  Json& root() { return root_; }
  const Json& root() const { return root_; }

  /// Set a top-level key.
  void set(const std::string& key, Json v) { root_[key] = std::move(v); }

  /// Record one scalar/string result under "metrics".
  void metric(const std::string& key, Json v) { root_["metrics"][key] = std::move(v); }

  /// Record a table under "tables" as {headers: [...], rows: [[...], ...]}.
  void add_table(const std::string& key, const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows);

  /// Fold a collector snapshot into "telemetry" (path → metric →
  /// {mean,sum,count,min,max}) and append its events to the event stream.
  void merge_telemetry(const Collector& c);

  void add_event(Json ev) { events_.push_back(std::move(ev)); }
  const std::vector<Json>& events() const { return events_; }

  /// Pretty-printed summary document.
  std::string to_string() const { return root_.dump(2) + "\n"; }

  /// Write the summary document / the events as JSON-lines. Throws
  /// std::runtime_error when the file cannot be written.
  void write(const std::string& path) const;
  void write_jsonl(const std::string& path) const;

private:
  std::string name_;
  Json root_;
  std::vector<Json> events_;
};

}  // namespace axnn::obs
