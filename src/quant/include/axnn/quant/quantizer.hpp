// axnn — symmetric linear quantization with power-of-two step sizes.
//
// Paper constraints (Sec. III):
//  * layer-wise quantization of parameters and activations;
//  * symmetric, no zero-point (eliminates GEMM cross-terms);
//  * step sizes rounded to the next power of two (shift-only rescaling);
//  * 8-bit activations, 4-bit weights ("8A4W").
#pragma once

#include <cstdint>

#include "axnn/tensor/tensor.hpp"

namespace axnn::quant {

inline constexpr int kActivationBits = 8;
inline constexpr int kWeightBits = 4;

/// Parameters of one symmetric linear quantizer q(x) = clamp(round(x/step)).
struct QuantParams {
  float step = 1.0f;  ///< quantization step (always a power of two here)
  int bits = 8;       ///< total bit-width including sign

  /// Symmetric integer bound: +-(2^(bits-1) - 1).
  int32_t qmax() const { return (1 << (bits - 1)) - 1; }
  int32_t qmin() const { return -qmax(); }

  /// Largest representable magnitude in real units.
  float range() const { return step * static_cast<float>(qmax()); }

  bool operator==(const QuantParams&) const = default;
};

/// Round a positive step size to the nearest power of two (in log2 space).
float round_to_pow2(float step);

/// Smallest power-of-two step covering max_abs with the given bit-width
/// (i.e. the next power of two >= max_abs / qmax).
QuantParams params_for_max_abs(float max_abs, int bits);

/// Integer quantization: q = clamp(round(x / step), qmin, qmax).
TensorI32 quantize(const Tensor& x, const QuantParams& p);

/// Dequantization: x~ = q * step.
Tensor dequantize(const TensorI32& q, const QuantParams& p);

/// Fake quantization (quantize-dequantize in float), the forward op of
/// quantization-aware fine-tuning. The backward is the straight-through
/// estimator, implemented in the layers via `ste_mask`.
Tensor fake_quantize(const Tensor& x, const QuantParams& p);

/// STE clipping mask: 1 where x falls inside the representable range
/// (gradient passes), 0 where it saturates (gradient blocked). Matches the
/// clipped STE of Bengio et al. [18].
Tensor ste_mask(const Tensor& x, const QuantParams& p);

/// Mean squared quantization error of x under p.
double quantization_mse(const Tensor& x, const QuantParams& p);

}  // namespace axnn::quant
