// axnn — quantization-step calibration.
//
// Three calibrators are provided; the paper uses MinPropQE [1] (Minimization
// of the Propagated Quantization Error): pick the step that minimises the
// error of the *layer output*, not of the tensor itself. Max-abs and min-MSE
// are included as ablation baselines (see bench_ablation_calibration).
#pragma once

#include <functional>
#include <vector>

#include "axnn/quant/quantizer.hpp"
#include "axnn/tensor/tensor.hpp"

namespace axnn::quant {

enum class Calibration { kMaxAbs, kMinMse, kMinPropQE };

/// Candidate power-of-two steps around the max-abs step: the max-abs step
/// itself plus `below` halvings and `above` doublings. MinPropQE/min-MSE
/// search this ladder.
std::vector<QuantParams> candidate_steps(float max_abs, int bits, int below = 4, int above = 1);

/// Max-abs calibration: smallest pow2 step whose range covers the tensor.
QuantParams calibrate_max_abs(const Tensor& x, int bits);

/// Min-MSE calibration: candidate step minimising the tensor's own
/// quantization MSE (allows saturating outliers).
QuantParams calibrate_min_mse(const Tensor& x, int bits);

/// MinPropQE: candidate step minimising a caller-supplied propagated-error
/// functional. `propagated_error(p)` must return the error of the layer
/// output when `x` is quantized with params `p` (e.g. MSE between the FP
/// layer output and the output computed with fake-quantized weights).
QuantParams calibrate_min_prop_qe(const Tensor& x, int bits,
                                  const std::function<double(const QuantParams&)>& propagated_error);

/// Running activation-range tracker for calibration over minibatches.
/// Keeps the max-abs plus a deterministic value reservoir so the final step
/// can be chosen by minimising quantization MSE over the observed
/// distribution (saturating rare outliers) rather than by covering the
/// worst-case value — this matters a lot under aggressive approximation,
/// where wasting activation bits pushes products into the truncated LSBs.
class RangeObserver {
public:
  explicit RangeObserver(size_t reservoir_capacity = 8192);

  void observe(const Tensor& x);
  void observe_value(float v);
  float max_abs() const { return max_abs_; }
  bool seen() const { return seen_; }
  void reset();

  /// Max-abs (worst-case coverage) step.
  QuantParams params(int bits) const;

  /// Distribution-aware step: candidate pow2 step minimising the MSE over
  /// the reservoir. Falls back to params() when the reservoir is empty.
  QuantParams params_min_mse(int bits) const;

  /// Fraction of observed values that saturate (|v| > range) under `p` —
  /// the calibrated clip statistic the sentinel's range guard compares
  /// against at runtime. Estimated over the reservoir; 0 when unseen.
  double clip_fraction(const QuantParams& p) const;

private:
  float max_abs_ = 0.0f;
  bool seen_ = false;
  size_t capacity_;
  size_t stride_ = 1;      ///< keep every stride-th value once full
  size_t counter_ = 0;
  std::vector<float> reservoir_;
};

}  // namespace axnn::quant
