#include "axnn/quant/quantizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "axnn/obs/telemetry.hpp"

namespace axnn::quant {

namespace {

/// Telemetry: fraction of elements clipped to the representable range
/// (|x·inv| rounding outside [qmin, qmax]). Runs a second pass over x, but
/// only when a collector is attached — the quantize loops stay untouched.
void record_clip_rate(const char* metric, const Tensor& x, const QuantParams& p) {
  obs::Collector* c = obs::collector();
  if (c == nullptr || x.numel() == 0) return;
  const float inv = 1.0f / p.step;
  const float lo = static_cast<float>(p.qmin()), hi = static_cast<float>(p.qmax());
  int64_t clipped = 0;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float v = std::nearbyintf(x[i] * inv);
    if (v < lo || v > hi) ++clipped;
  }
  std::string path = obs::current_path();
  if (path.empty()) path = "quant";
  c->add(path, metric, static_cast<double>(clipped) / static_cast<double>(x.numel()));
}

}  // namespace

float round_to_pow2(float step) {
  if (!(step > 0.0f)) throw std::invalid_argument("round_to_pow2: step must be positive");
  return std::exp2f(std::round(std::log2f(step)));
}

QuantParams params_for_max_abs(float max_abs, int bits) {
  if (bits < 2 || bits > 16) throw std::invalid_argument("params_for_max_abs: bits out of range");
  QuantParams p;
  p.bits = bits;
  if (max_abs <= 0.0f) {
    p.step = 1.0f;  // degenerate all-zero tensor; any step works
    return p;
  }
  const float ideal = max_abs / static_cast<float>(p.qmax());
  // Round *up* in log2 space so the range always covers max_abs.
  p.step = std::exp2f(std::ceil(std::log2f(ideal)));
  return p;
}

TensorI32 quantize(const Tensor& x, const QuantParams& p) {
  TensorI32 q(x.shape());
  const float inv = 1.0f / p.step;
  const int32_t lo = p.qmin(), hi = p.qmax();
  for (int64_t i = 0; i < x.numel(); ++i) {
    const int32_t v = static_cast<int32_t>(std::lrintf(x[i] * inv));
    q[i] = std::clamp(v, lo, hi);
  }
  if (obs::enabled()) record_clip_rate("quantize.clip_rate", x, p);
  return q;
}

Tensor dequantize(const TensorI32& q, const QuantParams& p) {
  Tensor x(q.shape());
  for (int64_t i = 0; i < q.numel(); ++i) x[i] = static_cast<float>(q[i]) * p.step;
  return x;
}

Tensor fake_quantize(const Tensor& x, const QuantParams& p) {
  Tensor out(x.shape());
  const float inv = 1.0f / p.step;
  const float lo = static_cast<float>(p.qmin()), hi = static_cast<float>(p.qmax());
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float v = std::clamp(std::nearbyintf(x[i] * inv), lo, hi);
    out[i] = v * p.step;
  }
  if (obs::enabled()) record_clip_rate("fake_quantize.clip_rate", x, p);
  return out;
}

Tensor ste_mask(const Tensor& x, const QuantParams& p) {
  Tensor m(x.shape());
  const float r = p.range();
  for (int64_t i = 0; i < x.numel(); ++i) m[i] = (std::fabs(x[i]) <= r) ? 1.0f : 0.0f;
  return m;
}

double quantization_mse(const Tensor& x, const QuantParams& p) {
  double acc = 0.0;
  const float inv = 1.0f / p.step;
  const float lo = static_cast<float>(p.qmin()), hi = static_cast<float>(p.qmax());
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float v = std::clamp(std::nearbyintf(x[i] * inv), lo, hi) * p.step;
    const double d = static_cast<double>(x[i]) - v;
    acc += d * d;
  }
  return x.numel() ? acc / static_cast<double>(x.numel()) : 0.0;
}

}  // namespace axnn::quant
