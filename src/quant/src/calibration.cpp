#include "axnn/quant/calibration.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "axnn/tensor/ops.hpp"

namespace axnn::quant {

std::vector<QuantParams> candidate_steps(float max_abs, int bits, int below, int above) {
  const QuantParams base = params_for_max_abs(max_abs, bits);
  std::vector<QuantParams> out;
  out.reserve(static_cast<size_t>(below + above + 1));
  for (int k = -below; k <= above; ++k) {
    QuantParams p = base;
    p.step = base.step * std::exp2f(static_cast<float>(k));
    out.push_back(p);
  }
  return out;
}

QuantParams calibrate_max_abs(const Tensor& x, int bits) {
  return params_for_max_abs(ops::max_abs(x), bits);
}

QuantParams calibrate_min_mse(const Tensor& x, int bits) {
  const float ma = ops::max_abs(x);
  if (ma == 0.0f) return params_for_max_abs(0.0f, bits);
  QuantParams best;
  double best_err = std::numeric_limits<double>::infinity();
  for (const auto& p : candidate_steps(ma, bits)) {
    const double err = quantization_mse(x, p);
    if (err < best_err) {
      best_err = err;
      best = p;
    }
  }
  return best;
}

QuantParams calibrate_min_prop_qe(
    const Tensor& x, int bits,
    const std::function<double(const QuantParams&)>& propagated_error) {
  if (!propagated_error)
    throw std::invalid_argument("calibrate_min_prop_qe: missing error functional");
  const float ma = ops::max_abs(x);
  if (ma == 0.0f) return params_for_max_abs(0.0f, bits);
  QuantParams best;
  double best_err = std::numeric_limits<double>::infinity();
  for (const auto& p : candidate_steps(ma, bits)) {
    const double err = propagated_error(p);
    if (err < best_err) {
      best_err = err;
      best = p;
    }
  }
  return best;
}

RangeObserver::RangeObserver(size_t reservoir_capacity) : capacity_(reservoir_capacity) {
  reservoir_.reserve(capacity_);
}

void RangeObserver::observe(const Tensor& x) {
  for (int64_t i = 0; i < x.numel(); ++i) observe_value(x[i]);
}

void RangeObserver::observe_value(float v) {
  max_abs_ = std::max(max_abs_, std::fabs(v));
  seen_ = true;
  // Deterministic decimation: once the reservoir fills, keep every
  // stride-th incoming value and thin the stored set.
  if (counter_++ % stride_ == 0) {
    if (reservoir_.size() >= capacity_) {
      // Halve the reservoir (keep even positions) and double the stride.
      size_t w = 0;
      for (size_t r = 0; r < reservoir_.size(); r += 2) reservoir_[w++] = reservoir_[r];
      reservoir_.resize(w);
      stride_ *= 2;
    }
    reservoir_.push_back(v);
  }
}

void RangeObserver::reset() {
  max_abs_ = 0.0f;
  seen_ = false;
  stride_ = 1;
  counter_ = 0;
  reservoir_.clear();
}

QuantParams RangeObserver::params(int bits) const { return params_for_max_abs(max_abs_, bits); }

double RangeObserver::clip_fraction(const QuantParams& p) const {
  if (reservoir_.empty()) return 0.0;
  const float range = p.range();
  size_t clipped = 0;
  for (const float v : reservoir_)
    if (std::fabs(v) > range) ++clipped;
  return static_cast<double>(clipped) / static_cast<double>(reservoir_.size());
}

QuantParams RangeObserver::params_min_mse(int bits) const {
  if (reservoir_.empty() || max_abs_ == 0.0f) return params(bits);
  Tensor sample(Shape{static_cast<int64_t>(reservoir_.size())});
  for (size_t i = 0; i < reservoir_.size(); ++i) sample[static_cast<int64_t>(i)] = reservoir_[i];
  QuantParams best = params(bits);
  double best_err = quantization_mse(sample, best);
  for (const auto& p : candidate_steps(max_abs_, bits, /*below=*/4, /*above=*/0)) {
    const double err = quantization_mse(sample, p);
    if (err < best_err) {
      best_err = err;
      best = p;
    }
  }
  return best;
}

}  // namespace axnn::quant
