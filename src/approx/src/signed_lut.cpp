#include "axnn/approx/signed_lut.hpp"

#include <cstdlib>

namespace axnn::approx {

SignedMulTable::SignedMulTable() : SignedMulTable(axmul::MultiplierLut{}) {}

SignedMulTable::SignedMulTable(const axmul::MultiplierLut& lut) : name_(lut.name()) {
  for (int qa = -128; qa <= 127; ++qa) {
    for (int qw = -8; qw <= 7; ++qw) {
      // Sign-magnitude wrapping. |qa|=128 and |qw|=8 exceed the unsigned
      // operand domain; symmetric quantization never produces them (ranges
      // are [-127,127] / [-7,7]), but the table stays total by saturating
      // the magnitude.
      const uint32_t ua = static_cast<uint32_t>(std::min(std::abs(qa), 255));
      const uint32_t uw = static_cast<uint32_t>(std::min(std::abs(qw), 15));
      const int32_t p = lut(static_cast<uint8_t>(ua), static_cast<uint8_t>(uw));
      tab_[index(qa, qw)] = ((qa < 0) != (qw < 0)) ? -p : p;
    }
  }
}

}  // namespace axnn::approx
