#include "axnn/approx/approx_gemm.hpp"

#include <cstring>
#include <stdexcept>

#include "axnn/tensor/threadpool.hpp"

namespace axnn::approx {

void gemm_approx_i32(const int8_t* w, const int8_t* x, int32_t* c, int64_t m, int64_t k,
                     int64_t n, const SignedMulTable& tab) {
  const int32_t* t = tab.data();
  parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          int32_t* crow = c + i * n;
          std::memset(crow, 0, static_cast<size_t>(n) * sizeof(int32_t));
          const int8_t* wrow = w + i * k;
          for (int64_t kk = 0; kk < k; ++kk) {
            const int8_t qw = wrow[kk];
            if (qw == 0) continue;  // zero weight contributes exactly 0 in all models
            // Slice of the table for this weight nibble: index by activation byte.
            const int32_t* tw = t + (static_cast<size_t>(qw) & 0xF);
            const int8_t* xrow = x + kk * n;
            for (int64_t j = 0; j < n; ++j)
              crow[j] += tw[static_cast<size_t>(static_cast<uint8_t>(xrow[j])) << 4];
          }
        }
      },
      4);
}

TensorI32 matmul_approx(const TensorI8& w, const TensorI8& x, const SignedMulTable& tab) {
  if (w.shape().rank() != 2 || x.shape().rank() != 2)
    throw std::invalid_argument("matmul_approx: expected 2-D tensors");
  const int64_t m = w.shape()[0], k = w.shape()[1];
  if (x.shape()[0] != k) throw std::invalid_argument("matmul_approx: inner dim mismatch");
  const int64_t n = x.shape()[1];
  TensorI32 out(Shape{m, n});
  gemm_approx_i32(w.data(), x.data(), out.data(), m, k, n, tab);
  return out;
}

void gemm_approx_accum_i32(const int8_t* w, const int8_t* x, int32_t* c, int64_t m,
                           int64_t k, int64_t n, const SignedMulTable& tab,
                           const axmul::Adder& adder) {
  const int32_t* t = tab.data();
  parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          int32_t* crow = c + i * n;
          const int8_t* wrow = w + i * k;
          // Accumulate column-wise per output element so the adder sees the
          // same reduction order as the hardware MAC chain.
          for (int64_t j = 0; j < n; ++j) {
            int32_t acc = 0;
            for (int64_t kk = 0; kk < k; ++kk) {
              const int8_t qw = wrow[kk];
              if (qw == 0) continue;
              const int32_t p =
                  t[(static_cast<size_t>(static_cast<uint8_t>(x[kk * n + j])) << 4) |
                    (static_cast<size_t>(qw) & 0xF)];
              acc = adder.add(acc, p);
            }
            crow[j] = acc;
          }
        }
      },
      4);
}

void gemm_exact_i32(const int8_t* w, const int8_t* x, int32_t* c, int64_t m, int64_t k,
                    int64_t n) {
  parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          int32_t* crow = c + i * n;
          std::memset(crow, 0, static_cast<size_t>(n) * sizeof(int32_t));
          const int8_t* wrow = w + i * k;
          for (int64_t kk = 0; kk < k; ++kk) {
            const int32_t qw = wrow[kk];
            if (qw == 0) continue;
            const int8_t* xrow = x + kk * n;
            for (int64_t j = 0; j < n; ++j) crow[j] += qw * xrow[j];
          }
        }
      },
      4);
}

}  // namespace axnn::approx
