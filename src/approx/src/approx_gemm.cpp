#include "axnn/approx/approx_gemm.hpp"

#include <stdexcept>

#include "axnn/approx/kernels.hpp"

namespace axnn::approx {

TensorI32 matmul_approx(const TensorI8& w, const TensorI8& x, const SignedMulTable& tab) {
  if (w.shape().rank() != 2 || x.shape().rank() != 2)
    throw std::invalid_argument("matmul_approx: expected 2-D tensors");
  const int64_t m = w.shape()[0], k = w.shape()[1];
  if (x.shape()[0] != k) throw std::invalid_argument("matmul_approx: inner dim mismatch");
  const int64_t n = x.shape()[1];
  TensorI32 out(Shape{m, n});
  kernels::gemm_approx({}, w.data(), x.data(), out.data(), m, k, n, tab);
  return out;
}

}  // namespace axnn::approx
