// axnn — approximate integer GEMM (Eq. 4 of the paper).
//
// Computes y~[i,j] = sum_k g~(X[k,j], W[i,k]) where g~ is an approximate
// multiplication realised as a SignedMulTable lookup. This is the single
// choke point through which every approximated conv / FC layer executes.
//
// The kernels live behind the unified dispatch API in
// axnn/approx/kernels.hpp (axnn::kernels::gemm_approx / gemm_exact /
// gemm_approx_accum); all callers use that dispatch directly. This header
// keeps only the tensor-level convenience used by tests.
#pragma once

#include "axnn/approx/signed_lut.hpp"
#include "axnn/tensor/tensor.hpp"

namespace axnn::approx {

/// Tensor-level convenience for tests: C[M,N] = W[M,K] ·~ X[K,N], returning
/// int32 accumulators. W holds int4-range weights (the 4-bit operand), X
/// holds int8-range activations (the 8-bit operand).
TensorI32 matmul_approx(const TensorI8& w, const TensorI8& x, const SignedMulTable& tab);

}  // namespace axnn::approx
