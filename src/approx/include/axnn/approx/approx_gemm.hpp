// axnn — approximate integer GEMM (Eq. 4 of the paper).
//
// Computes y~[i,j] = sum_k g~(X[k,j], W[i,k]) where g~ is an approximate
// multiplication realised as a SignedMulTable lookup. This is the single
// choke point through which every approximated conv / FC layer executes.
//
// The kernels live behind the unified dispatch API in
// axnn/approx/kernels.hpp (axnn::kernels::gemm_approx / gemm_exact /
// gemm_approx_accum). The free functions below are thin deprecated wrappers
// kept so out-of-tree code still compiles; in-tree code uses axnn::kernels.
#pragma once

#include <cstdint>

#include "axnn/approx/kernels.hpp"
#include "axnn/approx/signed_lut.hpp"
#include "axnn/axmul/adder.hpp"
#include "axnn/tensor/tensor.hpp"

namespace axnn::approx {

/// C[M,N] = W[M,K] ·~ X[K,N] with int8 operands and int32 accumulators.
/// W holds int4-range weights (the 4-bit operand), X holds int8-range
/// activations (the 8-bit operand). C is overwritten.
[[deprecated("use axnn::kernels::gemm_approx")]]
inline void gemm_approx_i32(const int8_t* w, const int8_t* x, int32_t* c, int64_t m,
                            int64_t k, int64_t n, const SignedMulTable& tab) {
  kernels::gemm_approx({}, w, x, c, m, k, n, tab);
}

/// Tensor-level convenience for tests: returns int32 accumulators.
TensorI32 matmul_approx(const TensorI8& w, const TensorI8& x, const SignedMulTable& tab);

/// Reference exact int GEMM (for error measurements in tests/benches).
[[deprecated("use axnn::kernels::gemm_exact")]]
inline void gemm_exact_i32(const int8_t* w, const int8_t* x, int32_t* c, int64_t m,
                           int64_t k, int64_t n) {
  kernels::gemm_exact({}, w, x, c, m, k, n);
}

/// Approximate GEMM with an approximate *accumulator* as well: partial sums
/// are combined through the given adder model (paper outlook — multiple
/// approximation techniques in one computation). Slower than the plain
/// approximate GEMM (one virtual call per MAC); intended for evaluation
/// passes rather than the fine-tuning hot loop.
[[deprecated("use axnn::kernels::gemm_approx_accum")]]
inline void gemm_approx_accum_i32(const int8_t* w, const int8_t* x, int32_t* c, int64_t m,
                                  int64_t k, int64_t n, const SignedMulTable& tab,
                                  const axmul::Adder& adder) {
  kernels::gemm_approx_accum({}, w, x, c, m, k, n, tab, adder);
}

}  // namespace axnn::approx
