// axnn — approximate integer GEMM (Eq. 4 of the paper).
//
// Computes y~[i,j] = sum_k g~(X[k,j], W[i,k]) where g~ is an approximate
// multiplication realised as a SignedMulTable lookup. This is the single
// choke point through which every approximated conv / FC layer executes.
#pragma once

#include <cstdint>

#include "axnn/approx/signed_lut.hpp"
#include "axnn/axmul/adder.hpp"
#include "axnn/tensor/tensor.hpp"

namespace axnn::approx {

/// C[M,N] = W[M,K] ·~ X[K,N] with int8 operands and int32 accumulators.
/// W holds int4-range weights (the 4-bit operand), X holds int8-range
/// activations (the 8-bit operand). C is overwritten.
void gemm_approx_i32(const int8_t* w, const int8_t* x, int32_t* c, int64_t m, int64_t k,
                     int64_t n, const SignedMulTable& tab);

/// Tensor-level convenience for tests: returns int32 accumulators.
TensorI32 matmul_approx(const TensorI8& w, const TensorI8& x, const SignedMulTable& tab);

/// Reference exact int GEMM (for error measurements in tests/benches).
void gemm_exact_i32(const int8_t* w, const int8_t* x, int32_t* c, int64_t m, int64_t k,
                    int64_t n);

/// Approximate GEMM with an approximate *accumulator* as well: partial sums
/// are combined through the given adder model (paper outlook — multiple
/// approximation techniques in one computation). Slower than
/// gemm_approx_i32 (one virtual call per MAC); intended for evaluation
/// passes rather than the fine-tuning hot loop.
void gemm_approx_accum_i32(const int8_t* w, const int8_t* x, int32_t* c, int64_t m,
                           int64_t k, int64_t n, const SignedMulTable& tab,
                           const axmul::Adder& adder);

}  // namespace axnn::approx
