// axnn — integer GEMM kernels behind the unified axnn::kernels dispatch.
//
// Shares GemmDesc/Backend with the float API (axnn/tensor/kernels.hpp).
// Operand layout is fixed for the int path — W:[M,K] int8 (int4-range
// weights), X:[K,N] int8 activations, C:[M,N] int32 accumulators — so the
// transpose flags of GemmDesc must be false (std::invalid_argument
// otherwise); `accumulate` is honoured.
//
// The kBlocked approximate kernel packs the 256×16 SignedMulTable into
// per-weight-nibble contiguous 256-entry slices once per call: the naive
// kernel's stride-16 lookups touch the whole 16 KiB table per activation
// byte, the packed slices keep the hot lookups inside a few cache lines.
// Integer addition is exact, so both backends are bit-identical.
#pragma once

#include <cstdint>

#include "axnn/approx/signed_lut.hpp"
#include "axnn/axmul/adder.hpp"
#include "axnn/tensor/kernels.hpp"

namespace axnn::kernels {

/// C[M,N] (=|+=) W ·~ X through the multiplier LUT (paper Eq. 4).
void gemm_approx(const GemmDesc& desc, const int8_t* w, const int8_t* x, int32_t* c,
                 int64_t m, int64_t k, int64_t n, const approx::SignedMulTable& tab,
                 Backend backend, ThreadPool* pool = nullptr);
inline void gemm_approx(const GemmDesc& desc, const int8_t* w, const int8_t* x,
                        int32_t* c, int64_t m, int64_t k, int64_t n,
                        const approx::SignedMulTable& tab) {
  gemm_approx(desc, w, x, c, m, k, n, tab, auto_backend(m, k, n), nullptr);
}

/// C[M,N] (=|+=) W · X with exact int arithmetic (error-measurement baseline).
void gemm_exact(const GemmDesc& desc, const int8_t* w, const int8_t* x, int32_t* c,
                int64_t m, int64_t k, int64_t n, Backend backend,
                ThreadPool* pool = nullptr);
inline void gemm_exact(const GemmDesc& desc, const int8_t* w, const int8_t* x, int32_t* c,
                       int64_t m, int64_t k, int64_t n) {
  gemm_exact(desc, w, x, c, m, k, n, auto_backend(m, k, n), nullptr);
}

/// Approximate GEMM whose partial sums are combined through an adder model
/// (paper outlook: multiple approximation techniques). The adder chain fixes
/// the per-element reduction order, so both backends run the same
/// column-ordered loop; the backend argument only exists for dispatch
/// uniformity. One virtual call per MAC — evaluation passes only.
void gemm_approx_accum(const GemmDesc& desc, const int8_t* w, const int8_t* x,
                       int32_t* c, int64_t m, int64_t k, int64_t n,
                       const approx::SignedMulTable& tab, const axmul::Adder& adder,
                       Backend backend, ThreadPool* pool = nullptr);
inline void gemm_approx_accum(const GemmDesc& desc, const int8_t* w, const int8_t* x,
                              int32_t* c, int64_t m, int64_t k, int64_t n,
                              const approx::SignedMulTable& tab,
                              const axmul::Adder& adder) {
  gemm_approx_accum(desc, w, x, c, m, k, n, tab, adder, default_backend(), nullptr);
}

/// ABFT column-sum probes over an already-computed int GEMM C[M,N] = W · X
/// (sentinel subsystem, DESIGN.md §5f). Writes, per output column n:
///
///   actual[n]    = Σ_m C[m,n]                       (what the kernel produced)
///   predicted[n] = Σ_k (Σ_m W[m,k]) · X[k,n]        (what exact math implies)
///
/// For the exact kernel the two are equal; for the LUT kernel they differ by
/// the accumulated approximation error of the column, which the caller
/// bounds with a calibrated tolerance. `wsum` (optional, length K) receives
/// the weight column sums Σ_m W[m,k] — the caller compares them against a
/// golden copy to detect corrupted weight operands, which a checksum over
/// self-consistent corrupted operands cannot see. int64 accumulation: with
/// int8×int4 operands the probes cannot overflow for any realistic shape.
void abft_column_sums(const int8_t* w, const int8_t* x, const int32_t* c, int64_t m,
                      int64_t k, int64_t n, int64_t* actual, int64_t* predicted,
                      int64_t* wsum = nullptr);

}  // namespace axnn::kernels
