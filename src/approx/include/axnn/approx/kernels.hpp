// axnn — forwarding header. The integer GEMM dispatch API moved to the
// kernels module: axnn/kernels/int_gemm.hpp (target axnn::kernels, linked
// PUBLIC by axnn::approx). API and namespace are unchanged.
#pragma once

#include "axnn/kernels/int_gemm.hpp"
