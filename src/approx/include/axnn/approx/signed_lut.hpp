// axnn — forwarding header. SignedMulTable moved to the kernels module
// (axnn/kernels/signed_lut.hpp) so prepared GEMM plans can bake re-laid-out
// copies of the table; the class stays in namespace axnn::approx.
#pragma once

#include "axnn/kernels/signed_lut.hpp"
