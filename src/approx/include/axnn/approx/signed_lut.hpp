// axnn — signed multiplication table.
//
// The hardware models in axnn::axmul are unsigned 8x4 units; symmetric
// quantization produces signed operands (int8 activations in [-127,127],
// int4 weights in [-7,7]). SignedMulTable folds the sign-magnitude wrapper
// into a single 256x16 table indexed directly by the two's-complement
// operand bit patterns, so the inner GEMM loop is one load and one add.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "axnn/axmul/multiplier.hpp"

namespace axnn::approx {

class SignedMulTable {
public:
  /// Exact products.
  SignedMulTable();
  /// Products of the given hardware model with sign-magnitude wrapping.
  explicit SignedMulTable(const axmul::MultiplierLut& lut);
  explicit SignedMulTable(const axmul::Multiplier& m)
      : SignedMulTable(axmul::MultiplierLut(m)) {}

  const std::string& name() const { return name_; }

  /// Signed product; qa in [-128,127], qw in [-8,7].
  int32_t operator()(int32_t qa, int32_t qw) const {
    return tab_[index(qa, qw)];
  }

  static size_t index(int32_t qa, int32_t qw) {
    return (static_cast<size_t>(static_cast<uint8_t>(qa)) << 4) |
           (static_cast<size_t>(qw) & 0xF);
  }

  const int32_t* data() const { return tab_.data(); }

  /// Mutable entry access for fault-injection experiments (resilience
  /// module): lets a copy of the table model stuck-at/transient defects in
  /// the hardware's product LUT.
  int32_t* mutable_data() { return tab_.data(); }

private:
  std::array<int32_t, axmul::kLutSize> tab_{};
  std::string name_;
};

}  // namespace axnn::approx
