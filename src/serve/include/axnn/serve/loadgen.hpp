// axnn — serving load generator (bench_serving_load, CLI `serve` verb).
//
// Drives an Engine session with three canonical traffic shapes and reports
// the latency distribution and throughput:
//
//   * closed  — N client threads in a submit→await loop: concurrency is
//               fixed, arrival rate follows service rate.
//   * poisson — open-loop Poisson arrivals at `rate_rps`: requests are
//               launched on an exponential schedule regardless of
//               completions. Latency is measured from the *intended*
//               arrival time, so a stalled server accrues queueing delay
//               instead of silently thinning the arrivals (the coordinated
//               omission trap).
//   * burst   — `burst` back-to-back submissions, await all, repeat: the
//               best case for the micro-batcher, worst case for p99.
#pragma once

#include <cstdint>
#include <string>

#include "axnn/data/dataset.hpp"
#include "axnn/obs/json.hpp"
#include "axnn/obs/stats.hpp"
#include "axnn/serve/engine.hpp"

namespace axnn::serve {

enum class Arrival { kClosed, kPoisson, kBurst };

std::string to_string(Arrival a);

struct LoadSpec {
  Arrival arrival = Arrival::kClosed;
  int requests = 256;
  /// Concurrent clients (closed loop only).
  int clients = 4;
  /// Mean arrival rate (poisson only).
  double rate_rps = 200.0;
  /// Requests per burst (burst only).
  int burst = 16;
  /// Per-request deadline passed to submit (0 = none).
  int64_t deadline_us = 0;
  /// Sample-selection / arrival-schedule seed.
  uint64_t seed = 0xC1AE27;
};

/// One load run's results. Latencies are milliseconds (served requests
/// only); batching counters are deltas of the engine stats over the run.
/// requests = served + shed + rejected — every submit resolves somewhere.
struct LoadReport {
  std::string scenario;
  int64_t requests = 0;
  int64_t served = 0;
  int64_t shed = 0;      ///< admission-policy drops (Outcome::kShed)
  int64_t rejected = 0;  ///< expired/infeasible deadlines (Outcome::kRejected)
  int64_t batches = 0;
  double mean_batch = 0.0;
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  obs::LatencySummary latency;
  int64_t deadline_misses = 0;
  int64_t queue_full_waits = 0;

  /// Flat object matching definitions.servingReport in
  /// schemas/bench_report.schema.json.
  obs::Json to_json() const;
};

/// Run `spec` against `session`, drawing inputs from `pool`.
LoadReport run_load(Engine& engine, Session& session, const data::Dataset& pool,
                    const LoadSpec& spec);

}  // namespace axnn::serve
