// axnn — batched multi-tenant serving runtime (DESIGN.md §5g).
//
// The serving engine is the one supported way to run inference with this
// library. Everything the lower layers expose piecemeal — Workbench training
// and calibration, NetPlan resolution, FitRegistry, sentinel calibration,
// obs telemetry — is sequenced behind a single entry point:
//
//   auto engine  = serve::Engine::load(spec);          // train/calibrate once
//   auto& tenant = engine->open_session("t1", plan);   // per-tenant plan
//   auto ticket  = tenant.submit(image);               // enqueue one request
//   auto result  = tenant.await(ticket);               // logits + latency
//
// Architecture:
//
//   * One Engine owns the trained model and N execution *lanes* — clone()d
//     model replicas. Conv/FC forward caches are member state, so a model
//     instance is single-flight; lanes are how the engine runs batches
//     concurrently without racing those caches. Lane count follows
//     ThreadPool::plan_split: `lanes` inter-op batches, each fanning conv
//     kernels over the remaining intra-op threads.
//   * A Session is one tenant: a NetPlan resolved against every lane
//     (multipliers, adders, bit-width checks, optional sentinel) over the
//     *shared* weights. Tenants differ only in plans — loading the model
//     once serves any number of approximation contracts.
//   * Requests from all sessions share one preallocated slot pool. submit()
//     copies the image into a free slot and links it into the session's
//     ring; after warmup the submit path performs no heap allocation
//     (asserted by test_serve). A dedicated dispatcher thread coalesces
//     pending slots into batches of up to `max_batch`, flushing early when
//     the oldest request's delay budget (`max_delay_us`) or explicit
//     deadline expires — deadline-aware micro-batching.
//
// Batching is bit-transparent: a request's logits are identical to a
// single-sample forward of the same image under the session's context, on
// both the exact and approximate paths (per-sample im2col columns and
// eval-mode BatchNorm make batch composition invisible).
// QoS (DESIGN.md §5h): when ModelSpec::qos_points names an operating-point
// ladder, every session opened with an empty plan serves the whole ladder —
// one resolved plan per (point, lane) over the same weights — and a
// qos::Governor moves the session's *active point* under load, energy or
// sentinel-health pressure. The swap is an epoch flip: the dispatcher stamps
// the active point into each batch when it gathers it, so a batch executes
// entirely under one point and every Result reports the point it ran under.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "axnn/core/pipeline.hpp"
#include "axnn/nn/plan.hpp"
#include "axnn/qos/governor.hpp"
#include "axnn/sentinel/sentinel.hpp"
#include "axnn/tensor/threadpool.hpp"

namespace axnn::serve {

/// Micro-batcher knobs.
struct BatchingConfig {
  /// Largest batch one dispatch executes; a full queue flushes immediately.
  int max_batch = 8;
  /// Delay budget of a partial batch: the dispatcher flushes whatever is
  /// pending once the oldest request has waited this long.
  int64_t max_delay_us = 2000;
  /// Slots in the shared request pool. submit() blocks (backpressure) when
  /// every slot is in flight. Must be >= max_batch.
  int queue_capacity = 64;
};

/// Everything Engine::load needs: which model to bring up, how to train /
/// restore it, and how to serve it.
struct ModelSpec {
  core::ModelKind model = core::ModelKind::kResNet20;
  core::BenchProfile profile;
  uint64_t data_seed = 0x51CA7;
  uint64_t model_seed = 42;
  bool use_cache = true;
  bool verbose = false;

  /// Default-session plan (NetPlan grammar, e.g. "default=trunc5").
  std::string plan = "default=trunc5";
  /// Run the approximation-stage fine-tuning for `plan` before serving
  /// (method/t2 below). Off = serve the stage-1 quantized weights directly.
  bool finetune = false;
  train::Method method = train::Method::kApproxKD_GE;
  float t2 = 5.0f;
  /// Distill stage 1 from the FP teacher (Workbench use_kd).
  bool kd_stage1 = true;

  /// Calibrate a sentinel per (lane, session) and attach it to every
  /// forward, so served traffic runs under fault detection.
  bool sentinel = false;
  sentinel::SentinelConfig sentinel_config;

  /// QoS operating-point ladder (qos::parse_points format). Non-empty turns
  /// the engine into a multi-point deployment: sessions opened with an empty
  /// plan serve the ladder under a governor, `plan` is ignored for them, and
  /// finetune (if on) tunes for point 0's plan. Empty = single-plan serving.
  std::string qos_points;
  qos::GovernorConfig governor;
  /// Holdout samples per point for the measured-accuracy metadata (taken
  /// from the tail of the test split; clamped to its size; 0 = skip).
  int64_t qos_holdout = 96;
  /// Timed single-sample forwards per point for the latency estimate.
  int qos_latency_probes = 4;

  BatchingConfig batching;
  /// Inter-op lanes (concurrent batches). Clamped by plan_split to the
  /// hardware; each lane is one model replica.
  int lanes = 1;

  /// Pre-warm the kernel plan cache at load: forward one zero batch of every
  /// size in [1, max_batch] through each (lane, operating point) before the
  /// dispatcher starts, so every GEMM shape served traffic can produce has
  /// its prepared plan resolved into the per-leaf memos. Steady-state
  /// forwards then never take the plan-cache mutex, never build a plan, and
  /// never allocate. Off = plans build lazily on first use.
  bool prewarm = true;
};

/// Handle for one submitted request. Move-free POD; await()ing it twice
/// throws (the slot is recycled on the first await).
struct Ticket {
  int slot = -1;
  uint64_t seq = 0;
};

/// Completed request.
struct Result {
  Tensor logits;          ///< [num_classes]
  int top1 = -1;
  double latency_ms = 0;  ///< slot acquisition -> batch completion
  int batch_size = 0;     ///< size of the batch this request rode in
  bool deadline_met = true;
  /// Operating point the request's batch executed under (0 for single-plan
  /// sessions) — the reference for per-response bit-identity checks.
  int point = 0;
  std::string point_name;
};

/// Aggregate dispatcher counters (monotonic since load).
struct EngineStats {
  int64_t requests = 0;       ///< completed requests
  int64_t batches = 0;        ///< forward dispatches
  int64_t flush_full = 0;     ///< batches flushed because max_batch was hit
  int64_t flush_timer = 0;    ///< batches flushed by delay budget / deadline
  int64_t max_batch = 0;      ///< largest batch executed
  double mean_batch = 0.0;
  int64_t deadline_misses = 0;
  int64_t queue_full_waits = 0;  ///< submits that blocked on a full pool
  int64_t qos_transitions = 0;   ///< governor + manual point moves, all sessions
};

class Engine;

/// One tenant of an Engine: a resolved plan (and optional sentinel) per
/// lane over the shared weights. Sessions are created by open_session and
/// owned by the engine; handles stay valid for the engine's lifetime.
/// submit/await are thread-safe and may be called from any thread.
class Session {
public:
  const std::string& name() const { return name_; }
  const std::string& plan_text() const { return plan_text_; }

  /// Enqueue one [C,H,W] (or [1,C,H,W]) image. Blocks while the slot pool
  /// is exhausted. `deadline_us` (0 = none) bounds how long the request may
  /// wait for batch-mates: the dispatcher flushes a partial batch rather
  /// than let it expire in the queue. Allocation-free after warmup.
  Ticket submit(const Tensor& chw, int64_t deadline_us = 0);

  /// Block until the request completes, return its result and recycle the
  /// slot. A stale/duplicate ticket throws std::logic_error.
  Result await(const Ticket& t);

  /// The exec context lane `lane` serves this session with under the
  /// *currently active* point — the reference for bit-identity checks
  /// against direct model forwards. The two-argument form addresses a
  /// specific ladder point (a Result's `point` field).
  const nn::ExecContext& exec_context(int lane = 0) const;
  const nn::ExecContext& exec_context(int lane, int point) const;

  /// Operating-point surface. Single-plan sessions have exactly one point
  /// (index 0, named after the session); ladder sessions mirror the
  /// engine's operating-point set and are driven by the governor.
  int num_points() const { return static_cast<int>(points_.size()); }
  const std::string& point_name(int point) const;
  int active_point() const;
  /// Manual epoch flip (CLI / tests): in-flight batches finish under the
  /// point they were gathered with; later batches use `point`. Recorded as
  /// a kManual transition. Throws std::out_of_range on a bad index and
  /// std::logic_error on ungoverned (single-point) sessions.
  void set_active_point(int point);
  bool governed() const { return governor_ != nullptr; }
  /// Snapshot of this session's transitions (governor + manual).
  std::vector<qos::Transition> transitions() const;

  /// Merged sentinel report across lanes and points (empty when the engine
  /// was loaded without sentinel).
  sentinel::SentinelReport sentinel_report() const;

private:
  friend class Engine;
  Session() = default;

  /// Per-(point, lane) serving state; PlanResolution/Sentinel are
  /// unique_ptr-held for address stability (contexts and sentinels point
  /// into them).
  struct Lane {
    std::unique_ptr<nn::PlanResolution> resolution;
    std::unique_ptr<sentinel::Sentinel> sentinel;
    nn::ExecContext ctx;
  };

  Engine* engine_ = nullptr;
  std::string name_;
  std::string plan_text_;
  bool ladder_ = false;  ///< serves the engine's qos ladder
  std::vector<std::string> point_names_;
  std::vector<std::vector<Lane>> points_;  ///< [point][lane]
  std::unique_ptr<qos::Governor> governor_;
  /// Pending slot indices, fixed ring of queue_capacity entries (guarded by
  /// the engine mutex).
  std::vector<int> ring_;
  int ring_head_ = 0;
  int ring_count_ = 0;

  // --- QoS state, all guarded by the engine mutex ---
  int active_point_ = 0;
  std::vector<int64_t> requests_per_point_;
  /// Completed-request latency window the governor computes p95 over.
  std::array<double, 128> lat_win_{};
  int lat_count_ = 0;
  int lat_idx_ = 0;
  double energy_accum_ = 0.0;       ///< estimated units served so far
  double last_energy_accum_ = 0.0;  ///< snapshot at the previous tick
  int64_t last_queue_full_waits_ = 0;
  int64_t last_sent_checks_ = 0;
  int64_t last_sent_violations_ = 0;
  int64_t last_sent_degraded_ = 0;
};

/// The serving runtime. load() is the only way to construct one.
class Engine {
public:
  static std::unique_ptr<Engine> load(ModelSpec spec);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const ModelSpec& spec() const { return spec_; }
  int lanes() const { return static_cast<int>(lanes_.size()); }
  int num_classes() const { return num_classes_; }

  /// The session created from spec.plan at load time.
  Session& session() { return *sessions_.front(); }

  /// Create a tenant serving `plan_text`. Resolves the plan against every
  /// lane (throws on unknown multipliers, unmatched paths, bit-width
  /// mismatches or non-approximable leaves; errors name the failing lane,
  /// point and stage) and, when the engine runs with sentinel, calibrates a
  /// per-lane sentinel for it. Duplicate names throw. An empty `plan_text`
  /// serves the engine default: the governed qos ladder when
  /// spec.qos_points is set, spec.plan otherwise.
  Session& open_session(const std::string& name, const std::string& plan_text);

  /// True when the engine serves a qos operating-point ladder.
  bool qos_enabled() const { return !qos_specs_.empty(); }
  /// The calibrated ladder (empty without qos): measured holdout accuracy,
  /// estimated energy per request, single-sample latency per point.
  const std::vector<qos::OperatingPoint>& operating_points() const { return points_meta_; }
  /// The "qos" report section: ladder metadata + per-session activity.
  qos::QosReport qos_report() const;

  /// Block until every submitted request has completed (results may still
  /// be waiting for await()).
  void drain();

  EngineStats stats() const;

  /// Training-side handles, exposed for reference checks and tooling: the
  /// lane model and the dataset the engine was trained on.
  nn::Sequential& model(int lane = 0);
  const data::SyntheticCifar& data() const;

  /// Top-1 accuracy over the test set (up to `max_samples`, 0 = all),
  /// routed through submit/await — i.e. through the real batched serving
  /// path. Matches train::evaluate_accuracy under the session's context.
  double evaluate_accuracy(Session& s, int64_t max_samples = 0);

private:
  friend class Session;

  /// One request slot. input/logits are preallocated at load; submit only
  /// copies into them.
  struct Slot {
    Tensor input;   ///< [C,H,W]
    Tensor logits;  ///< [num_classes]
    Session* session = nullptr;
    int64_t submit_ns = 0;
    int64_t deadline_ns = 0;  ///< absolute; 0 = none
    int64_t flush_ns = 0;     ///< when the dispatcher must flush this slot
    uint64_t seq = 0;         ///< 0 = free/recycled
    bool done = false;
    bool failed = false;
    int batch_size = 0;
    int top1 = -1;
    double latency_ms = 0;
    bool deadline_met = true;
    int point = 0;  ///< operating point the batch executed under
  };

  /// One ready batch handed to a lane.
  struct BatchWork {
    Session* session = nullptr;
    int lane = -1;
    int count = 0;
    bool timer_flush = false;
    /// Active point at gather time — the epoch flip: the batch executes
    /// entirely under this point even if the governor moves mid-flight.
    int point = 0;
    std::vector<int> slots;  ///< slot indices, preallocated to max_batch
  };

  Engine() = default;

  void dispatcher_loop();
  /// Gather up to max_batch pending slots of `s` into `work` (engine mutex
  /// held).
  void gather_batch(Session& s, BatchWork& work, int64_t now);
  /// Execute one gathered batch on its lane (no engine mutex held).
  void execute_batch(BatchWork& work);
  void finish_batch(BatchWork& work, const Tensor* logits, std::exception_ptr error);
  /// Sample every governed session's signals and tick its governor (engine
  /// mutex held; called by the dispatcher every governor.tick_interval_ms).
  void governor_tick(int64_t now);
  /// Measure holdout accuracy / energy / latency metadata for every ladder
  /// point on lane 0 (at load, before the dispatcher starts).
  void measure_point_metadata(Session& def);
  void record_transition(Session& s, const qos::Transition& t);

  ModelSpec spec_;
  std::unique_ptr<core::Workbench> wb_;
  std::vector<std::unique_ptr<nn::Sequential>> lanes_;  ///< model replicas
  std::unique_ptr<ThreadPool> inter_pool_;              ///< lanes > 1 only
  std::vector<std::unique_ptr<Session>> sessions_;
  int num_classes_ = 0;
  int64_t chw_ = 0;  ///< input numel per sample

  // QoS ladder (empty without spec.qos_points).
  std::vector<qos::OperatingPointSpec> qos_specs_;
  std::vector<qos::OperatingPoint> points_meta_;
  int64_t t0_ns_ = 0;            ///< load time; report times are relative
  int64_t last_gov_tick_ns_ = 0;  ///< guarded by mu_

  mutable std::mutex mu_;
  std::condition_variable cv_dispatch_;  ///< dispatcher wake-up
  std::condition_variable cv_done_;      ///< request completion
  std::condition_variable cv_free_;      ///< slot freed
  std::vector<Slot> slots_;
  std::vector<int> free_ring_;
  int free_head_ = 0;
  int free_count_ = 0;
  uint64_t next_seq_ = 1;
  int pending_total_ = 0;
  int inflight_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;

  // Stats (guarded by mu_).
  int64_t stat_requests_ = 0;
  int64_t stat_batches_ = 0;
  int64_t stat_flush_full_ = 0;
  int64_t stat_flush_timer_ = 0;
  int64_t stat_sum_batch_ = 0;
  int64_t stat_max_batch_ = 0;
  int64_t stat_deadline_misses_ = 0;
  int64_t stat_queue_full_waits_ = 0;
  int64_t stat_qos_transitions_ = 0;

  std::vector<BatchWork> works_;  ///< one per lane, reused across dispatches
  std::thread dispatcher_;
};

}  // namespace axnn::serve
