// axnn — batched multi-tenant serving runtime (DESIGN.md §5g, §5k).
//
// The serving engine is the one supported way to run inference with this
// library. Everything the lower layers expose piecemeal — Workbench training
// and calibration, NetPlan resolution, FitRegistry, sentinel calibration,
// obs telemetry — is sequenced behind a single entry point:
//
//   auto engine  = serve::Engine::load(spec);          // train/calibrate once
//   auto& tenant = engine->open_session("t1", plan);   // per-tenant plan
//   auto ticket  = tenant.submit(image);               // enqueue one request
//   auto result  = tenant.await(ticket);               // logits + latency
//
// Architecture:
//
//   * One Engine owns the trained model and N execution *lanes* — clone()d
//     model replicas, each driven by its own worker thread. Conv/FC forward
//     caches are member state, so a model instance is single-flight; lanes
//     are how the engine runs batches concurrently without racing those
//     caches. ThreadPool::plan_split still sizes the intra-op pool, but the
//     requested lane count is honored even beyond the core count: lane
//     workers mostly wait, and lifecycle robustness (quarantine with
//     re-dispatch) needs real spare lanes more than it needs perfect
//     core-to-lane packing.
//   * A Session is one tenant: a NetPlan resolved against every lane
//     (multipliers, adders, bit-width checks, optional sentinel) over the
//     *shared* weights. Tenants differ only in plans — loading the model
//     once serves any number of approximation contracts.
//   * Requests from all sessions share one preallocated slot pool. submit()
//     copies the image into a free slot and links it into the session's
//     ring; after warmup the submit path performs no heap allocation
//     (asserted by test_serve). The dispatcher thread coalesces pending
//     slots into batches of up to `max_batch`, flushing early when the
//     oldest request's delay budget (`max_delay_us`) or explicit deadline
//     expires, and hands each batch to an idle healthy lane.
//
// Batching is bit-transparent: a request's logits are identical to a
// single-sample forward of the same image under the session's context, on
// both the exact and approximate paths (per-sample im2col columns and
// eval-mode BatchNorm make batch composition invisible).
//
// QoS (DESIGN.md §5h): when ModelSpec::qos_points names an operating-point
// ladder, every session opened with an empty plan serves the whole ladder —
// one resolved plan per (point, lane) over the same weights — and a
// qos::Governor moves the session's *active point* under load, energy,
// sentinel-health or lane-quarantine pressure. The swap is an epoch flip:
// the dispatcher stamps the active point into each batch when it gathers
// it, so a batch executes entirely under one point and every Result reports
// the point it ran under.
//
// Lifecycle robustness (DESIGN.md §5k): every submit resolves — to
// Outcome::kServed, kShed (admission policy under a full pool), kRejected
// (expired or infeasible deadline), or a per-request failure rethrown by
// await — never an engine-wide poisoning. A Watchdog quarantines lanes that
// blow their batch budget, fault, or accumulate sentinel-violation strikes;
// their in-flight batch is re-queued (bounded retries) and re-run on a
// healthy lane while golden-input probation probes decide readmission.
// reload() swaps weights / plans / the QoS ladder behind a dispatch pause
// with zero failed in-flight requests, and a CheckpointSet rotation
// (ModelSpec::checkpoint_dir) keeps crash-safe AXNP generations to reload
// from.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "axnn/core/pipeline.hpp"
#include "axnn/nn/plan.hpp"
#include "axnn/qos/governor.hpp"
#include "axnn/resilience/checkpoint.hpp"
#include "axnn/sentinel/sentinel.hpp"
#include "axnn/serve/admission.hpp"
#include "axnn/serve/watchdog.hpp"
#include "axnn/tensor/threadpool.hpp"

namespace axnn::serve {

/// Micro-batcher knobs.
struct BatchingConfig {
  /// Largest batch one dispatch executes; a full queue flushes immediately.
  int max_batch = 8;
  /// Delay budget of a partial batch: the dispatcher flushes whatever is
  /// pending once the oldest request has waited this long.
  int64_t max_delay_us = 2000;
  /// Slots in the shared request pool. What happens when every slot is in
  /// flight is the admission policy's call (block / shed). Must be
  /// >= max_batch.
  int queue_capacity = 64;
};

/// Everything Engine::load needs: which model to bring up, how to train /
/// restore it, and how to serve it.
struct ModelSpec {
  core::ModelKind model = core::ModelKind::kResNet20;
  core::BenchProfile profile;
  uint64_t data_seed = 0x51CA7;
  uint64_t model_seed = 42;
  bool use_cache = true;
  bool verbose = false;

  /// Default-session plan (NetPlan grammar, e.g. "default=trunc5").
  std::string plan = "default=trunc5";
  /// Run the approximation-stage fine-tuning for `plan` before serving
  /// (method/t2 below). Off = serve the stage-1 quantized weights directly.
  bool finetune = false;
  train::Method method = train::Method::kApproxKD_GE;
  float t2 = 5.0f;
  /// Distill stage 1 from the FP teacher (Workbench use_kd).
  bool kd_stage1 = true;

  /// Calibrate a sentinel per (lane, session) and attach it to every
  /// forward, so served traffic runs under fault detection.
  bool sentinel = false;
  sentinel::SentinelConfig sentinel_config;

  /// QoS operating-point ladder (qos::parse_points format). Non-empty turns
  /// the engine into a multi-point deployment: sessions opened with an empty
  /// plan serve the ladder under a governor, `plan` is ignored for them, and
  /// finetune (if on) tunes for point 0's plan. Empty = single-plan serving.
  std::string qos_points;
  qos::GovernorConfig governor;
  /// Holdout samples per point for the measured-accuracy metadata (taken
  /// from the tail of the test split; clamped to its size; 0 = skip).
  int64_t qos_holdout = 96;
  /// Timed single-sample forwards per point for the latency estimate (also
  /// the source of the admission service floor and the watchdog budget).
  int qos_latency_probes = 4;

  BatchingConfig batching;
  /// Concurrent batch lanes — each is one model replica with its own worker
  /// thread. Honored as requested (lanes beyond the core count timeshare);
  /// plan_split still sizes the intra-op conv pool from this hint.
  int lanes = 1;

  /// Pool-full / infeasible-deadline behavior (runtime-mutable via
  /// Engine::set_admission).
  AdmissionConfig admission;
  /// Straggler / fault quarantine and probation (runtime-mutable via
  /// Engine::set_watchdog).
  WatchdogConfig watchdog;

  /// Non-empty = keep crash-safe AXNP checkpoint generations of the served
  /// weights in this directory (rotation: checkpoint_keep newest, CRC
  /// verified on load with fallback to older generations). Engine::load
  /// writes the first generation; reload({.from_checkpoint = true}) restores
  /// the newest loadable one.
  std::string checkpoint_dir;
  int checkpoint_keep = 3;

  /// Pre-warm the kernel plan cache at load: forward one zero batch of every
  /// size in [1, max_batch] through each (lane, operating point) before the
  /// dispatcher starts, so every GEMM shape served traffic can produce has
  /// its prepared plan resolved into the per-leaf memos. Steady-state
  /// forwards then never take the plan-cache mutex, never build a plan, and
  /// never allocate. Off = plans build lazily on first use.
  bool prewarm = true;
};

/// What Engine::reload swaps. Empty/false fields keep the current value;
/// everything is validated and staged *before* the dispatch pause, so a bad
/// reload throws without disturbing serving.
struct ReloadSpec {
  /// AXNP file to load into every lane ("" = keep current weights).
  std::string weights;
  /// Restore weights from the newest loadable checkpoint generation
  /// (requires ModelSpec::checkpoint_dir; mutually exclusive with
  /// `weights`).
  bool from_checkpoint = false;
  /// Replacement operating-point ladder (qos::parse_points format; "" =
  /// keep). Only legal on engines loaded with a ladder.
  std::string qos_points;
  /// Replacement plan for the single-plan default session ("" = keep).
  /// Ignored for ladder-serving default sessions.
  std::string plan;
  /// Re-measure ladder point metadata (holdout accuracy / energy / latency)
  /// after the swap. Automatic whenever weights or the ladder changed.
  bool remeasure = false;
};

/// How a request resolved. Shed and rejected are *outcomes*, not failures:
/// await() returns normally with an empty-logits Result so callers can tell
/// load shedding from a crashed batch (which rethrows).
enum class Outcome : int8_t {
  kServed = 0,   ///< executed; logits/top1/latency are real
  kShed = 1,     ///< dropped by admission policy under a full pool
  kRejected = 2, ///< refused at submit: expired or infeasible deadline
};

const char* to_string(Outcome o);

/// Handle for one submitted request. Move-free POD; await()ing a pooled
/// ticket twice throws (the slot is recycled on the first await). Shed /
/// rejected submits resolve instantly: their outcome rides in the ticket
/// itself and never consumes a slot.
struct Ticket {
  int slot = -1;
  uint64_t seq = 0;
  /// Instant resolution: -1 = pooled request, otherwise the Outcome the
  /// request resolved to at submit time.
  int8_t instant = -1;
};

/// Completed request.
struct Result {
  Outcome outcome = Outcome::kServed;
  Tensor logits;          ///< [num_classes]; empty unless kServed
  int top1 = -1;
  double latency_ms = 0;  ///< slot acquisition -> batch completion
  int batch_size = 0;     ///< size of the batch this request rode in
  bool deadline_met = true;
  /// Operating point the request's batch executed under (0 for single-plan
  /// sessions) — the reference for per-response bit-identity checks.
  int point = 0;
  std::string point_name;
};

/// Aggregate dispatcher counters (monotonic since load; every counter is an
/// atomic, so stats() is safe against the dispatcher and lane workers
/// without taking the dispatch lock).
struct EngineStats {
  int64_t requests = 0;       ///< completed (served) requests
  int64_t batches = 0;        ///< forward dispatches
  int64_t flush_full = 0;     ///< batches flushed because max_batch was hit
  int64_t flush_timer = 0;    ///< batches flushed by delay budget / deadline
  int64_t max_batch = 0;      ///< largest batch executed
  double mean_batch = 0.0;
  int64_t deadline_misses = 0;
  int64_t queue_full_waits = 0;  ///< submits that blocked on a full pool
  int64_t qos_transitions = 0;   ///< governor + manual point moves, all sessions
  // Lifecycle (DESIGN.md §5k):
  int64_t shed = 0;               ///< requests shed by admission policy
  int64_t rejected = 0;           ///< submits rejected (expired/infeasible deadline)
  int64_t failed_requests = 0;    ///< requests failed back to await() after retries
  int64_t quarantines = 0;        ///< lane quarantine events
  int64_t readmissions = 0;       ///< lanes readmitted after probation
  int64_t lanes_quarantined = 0;  ///< current gauge
  int64_t requeued_batches = 0;   ///< abandoned/faulted batches re-dispatched
  int64_t discarded_batches = 0;  ///< straggler results thrown away post-abandon
  int64_t probes = 0;             ///< probation probes executed
  int64_t reloads = 0;            ///< completed reload() calls
};

class Engine;

/// One tenant of an Engine: a resolved plan (and optional sentinel) per
/// lane over the shared weights. Sessions are created by open_session and
/// owned by the engine; handles stay valid until the engine is destroyed or
/// the session is close_session()ed. submit/await are thread-safe and may
/// be called from any thread.
class Session {
public:
  const std::string& name() const { return name_; }
  const std::string& plan_text() const { return plan_text_; }

  /// Enqueue one [C,H,W] (or [1,C,H,W]) image. `deadline_us` bounds how
  /// long the request may wait for batch-mates (0 = none): the dispatcher
  /// flushes a partial batch rather than let it expire in the queue. A
  /// *negative* deadline is already expired and resolves instantly as a
  /// rejected deadline miss without consuming a slot; an infeasible one is
  /// rejected when the admission config says so. Under a full pool the
  /// admission policy decides between blocking and shedding. Allocation-free
  /// after warmup.
  Ticket submit(const Tensor& chw, int64_t deadline_us = 0);

  /// Block until the request completes, return its result and recycle the
  /// slot. Shed/rejected tickets return instantly with the matching
  /// Outcome; a request whose batch kept failing past the retry budget
  /// rethrows that batch's error. A stale/duplicate pooled ticket throws
  /// std::logic_error.
  Result await(const Ticket& t);

  /// The exec context lane `lane` serves this session with under the
  /// *currently active* point — the reference for bit-identity checks
  /// against direct model forwards. The two-argument form addresses a
  /// specific ladder point (a Result's `point` field). Do not call
  /// concurrently with Engine::reload (the contexts are rebuilt).
  const nn::ExecContext& exec_context(int lane = 0) const;
  const nn::ExecContext& exec_context(int lane, int point) const;

  /// Operating-point surface. Single-plan sessions have exactly one point
  /// (index 0, named after the session); ladder sessions mirror the
  /// engine's operating-point set and are driven by the governor.
  int num_points() const { return static_cast<int>(points_.size()); }
  const std::string& point_name(int point) const;
  int active_point() const;
  /// Manual epoch flip (CLI / tests): in-flight batches finish under the
  /// point they were gathered with; later batches use `point`. Recorded as
  /// a kManual transition. Throws std::out_of_range on a bad index and
  /// std::logic_error on ungoverned (single-point) sessions.
  void set_active_point(int point);
  bool governed() const { return governor_ != nullptr; }
  /// Snapshot of this session's transitions (governor + manual).
  std::vector<qos::Transition> transitions() const;

  /// Merged sentinel report across lanes and points (empty when the engine
  /// was loaded without sentinel).
  sentinel::SentinelReport sentinel_report() const;

private:
  friend class Engine;
  Session() = default;

  /// Per-(point, lane) serving state; PlanResolution/Sentinel are
  /// unique_ptr-held for address stability (contexts and sentinels point
  /// into them).
  struct Lane {
    std::unique_ptr<nn::PlanResolution> resolution;
    std::unique_ptr<sentinel::Sentinel> sentinel;
    nn::ExecContext ctx;
    /// Sentinel violation total at the last batch finish on this (point,
    /// lane) — the watchdog's strike detector works on deltas.
    int64_t last_violations = 0;
  };

  Engine* engine_ = nullptr;
  std::string name_;
  std::string plan_text_;
  bool ladder_ = false;  ///< serves the engine's qos ladder
  std::vector<std::string> point_names_;
  std::vector<std::vector<Lane>> points_;  ///< [point][lane]
  std::unique_ptr<qos::Governor> governor_;
  /// Pending slot indices, fixed ring of queue_capacity entries (guarded by
  /// the engine mutex).
  std::vector<int> ring_;
  int ring_head_ = 0;
  int ring_count_ = 0;
  /// Slots currently owned by this session (pending + in flight + done but
  /// unawaited); close_session waits for it to reach zero.
  int live_slots_ = 0;
  bool closing_ = false;  ///< close_session in progress: submits throw

  // --- QoS state, all guarded by the engine mutex ---
  int active_point_ = 0;
  std::vector<int64_t> requests_per_point_;
  /// Completed-request latency window the governor computes p95 over.
  std::array<double, 128> lat_win_{};
  int lat_count_ = 0;
  int lat_idx_ = 0;
  double energy_accum_ = 0.0;       ///< estimated units served so far
  double last_energy_accum_ = 0.0;  ///< snapshot at the previous tick
  int64_t last_queue_full_waits_ = 0;
  int64_t last_sent_checks_ = 0;
  int64_t last_sent_violations_ = 0;
  int64_t last_sent_degraded_ = 0;
};

/// The serving runtime. load() is the only way to construct one.
class Engine {
public:
  static std::unique_ptr<Engine> load(ModelSpec spec);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const ModelSpec& spec() const { return spec_; }
  int lanes() const { return static_cast<int>(lanes_.size()); }
  int num_classes() const { return num_classes_; }

  /// The session created from spec.plan at load time.
  Session& session() { return *sessions_.front(); }

  /// Create a tenant serving `plan_text`. Resolves the plan against every
  /// lane (throws on unknown multipliers, unmatched paths, bit-width
  /// mismatches or non-approximable leaves; errors name the failing lane,
  /// point and stage) and, when the engine runs with sentinel, calibrates a
  /// per-lane sentinel for it. Duplicate names throw. An empty `plan_text`
  /// serves the engine default: the governed qos ladder when
  /// spec.qos_points is set, spec.plan otherwise.
  Session& open_session(const std::string& name, const std::string& plan_text);

  /// Gracefully close a tenant: new submits throw, every already-accepted
  /// request still executes (or sheds) and must be await()ed, then the
  /// session is destroyed and its name becomes reusable. Blocks until the
  /// session owns no slots — callers holding unawaited tickets must await
  /// them or close blocks forever. The "default" session cannot be closed.
  void close_session(const std::string& name);

  /// True when the engine serves a qos operating-point ladder.
  bool qos_enabled() const { return !qos_specs_.empty(); }
  /// The calibrated ladder (empty without qos): measured holdout accuracy,
  /// estimated energy per request, single-sample latency per point.
  const std::vector<qos::OperatingPoint>& operating_points() const { return points_meta_; }
  /// The "qos" report section: ladder metadata + per-session activity.
  qos::QosReport qos_report() const;

  // --- Lifecycle (DESIGN.md §5k) ---

  /// Swap weights / default plan / qos ladder without restarting: stages and
  /// validates everything first (a throw here leaves serving untouched),
  /// then pauses dispatch, waits for in-flight batches to finish under the
  /// old configuration (zero failed in-flight requests), rebuilds every
  /// session's per-point lanes — recalibrating sentinels and re-warming
  /// plans — and resumes. Requests pending in the queue across the pause
  /// execute under the *new* configuration (the same epoch-flip contract as
  /// governor point swaps). Concurrent reloads serialize.
  void reload(const ReloadSpec& r);

  /// Write a new checkpoint generation of the served weights (requires
  /// spec.checkpoint_dir). Returns the path written.
  std::string save_checkpoint();

  /// Runtime admission-policy flip (validated; takes effect on the next
  /// submit).
  void set_admission(const AdmissionConfig& cfg);
  AdmissionConfig admission() const;
  /// Runtime watchdog re-configuration (validated; keeps lane health).
  void set_watchdog(const WatchdogConfig& cfg);
  /// Current health of one lane / healthy-lane count (watchdog view).
  LaneHealth lane_health(int lane) const;
  int healthy_lanes() const;
  /// Calibrated admission service floor (fastest point's probe, ns).
  int64_t service_floor_ns() const;

  /// Install a chaos hook, called by every lane worker as `hook(lane,
  /// lane_batch_index)` right before the batch forward (a throw fails the
  /// batch, a sleep makes the lane a straggler; see chaos.hpp). Install
  /// while no traffic is in flight; pass nullptr to remove.
  void set_chaos(std::function<void(int lane, int64_t lane_batch)> hook);

  /// Block until every submitted request has completed (results may still
  /// be waiting for await()).
  void drain();

  EngineStats stats() const;

  /// Training-side handles, exposed for reference checks and tooling: the
  /// lane model and the dataset the engine was trained on.
  nn::Sequential& model(int lane = 0);
  const data::SyntheticCifar& data() const;

  /// Top-1 accuracy over the test set (up to `max_samples`, 0 = all),
  /// routed through submit/await — i.e. through the real batched serving
  /// path. Matches train::evaluate_accuracy under the session's context.
  double evaluate_accuracy(Session& s, int64_t max_samples = 0);

private:
  friend class Session;

  /// One request slot. input/logits are preallocated at load; submit only
  /// copies into them.
  struct Slot {
    Tensor input;   ///< [C,H,W]
    Tensor logits;  ///< [num_classes]
    Session* session = nullptr;
    int64_t submit_ns = 0;
    int64_t deadline_ns = 0;  ///< absolute; 0 = none
    int64_t flush_ns = 0;     ///< when the dispatcher must flush this slot
    uint64_t seq = 0;         ///< 0 = free/recycled
    bool done = false;
    bool failed = false;
    std::exception_ptr error;  ///< set when failed (rethrown by await)
    Outcome outcome = Outcome::kServed;
    int retries = 0;  ///< abandoned/faulted re-dispatches so far
    /// Abandoned stragglers may still read this slot's input; recycling is
    /// deferred until every pin is released (free_pending).
    int pinned = 0;
    bool free_pending = false;
    int batch_size = 0;
    int top1 = -1;
    double latency_ms = 0;
    bool deadline_met = true;
    int point = 0;  ///< operating point the batch executed under
  };

  /// One ready batch handed to a lane.
  struct BatchWork {
    Session* session = nullptr;
    int lane = -1;
    int count = 0;
    bool timer_flush = false;
    /// The watchdog abandoned this work (budget overrun): its slots were
    /// re-queued elsewhere and its eventual result must be discarded.
    bool abandoned = false;
    /// Active point at gather time — the epoch flip: the batch executes
    /// entirely under this point even if the governor moves mid-flight.
    int point = 0;
    /// Per-lane executed-batch index (the chaos schedule key).
    int64_t lane_batch = 0;
    std::vector<int> slots;  ///< slot indices, preallocated to max_batch
  };

  /// Per-lane execution state (worker thread + assignment mailbox). All
  /// fields except the thread handle are guarded by mu_.
  struct LaneState {
    std::thread worker;
    bool busy = false;            ///< executing a batch or a probe
    bool probe = false;           ///< current assignment is a probation probe
    int64_t busy_since_ns = 0;
    int64_t exec_batches = 0;     ///< batches started (chaos schedule index)
  };

  Engine() = default;

  void dispatcher_loop();
  void lane_loop(int lane);
  /// Gather up to max_batch pending slots of `s` into `work` (engine mutex
  /// held).
  void gather_batch(Session& s, BatchWork& work, int64_t now);
  /// Execute one gathered batch on its lane (no engine mutex held).
  void execute_batch(BatchWork& work);
  void finish_batch(BatchWork& work, const Tensor* logits, std::exception_ptr error);
  /// Watchdog sweep (mutex held): abandon overdue batches, requeue their
  /// slots, schedule probation probes on idle quarantined lanes.
  void watchdog_tick(int64_t now);
  /// Quarantine bookkeeping around watchdog_.quarantine (mutex held).
  void quarantine_lane(int lane, int64_t now, const std::string& reason);
  /// Re-queue `work`'s slots at the *front* of their session ring (mutex
  /// held); slots past the retry budget are failed instead. `pin` defers
  /// slot recycling until the abandoned straggler stops touching them.
  void requeue_work(BatchWork& work, std::exception_ptr error, bool pin, int64_t now);
  void resolve_slot_failed(Slot& slot, std::exception_ptr error, int64_t now);
  /// Shed one *queued* slot (mutex held): removed from its session ring and
  /// resolved done with Outcome::kShed.
  void shed_queued_slot(int idx, int64_t now);
  /// Run one golden-input probation probe on `lane` (no mutex held).
  bool run_probe(int lane);
  /// Release one straggler pin; completes the deferred recycle (mutex held).
  void unpin_slot(int idx);
  /// Recycle an awaited slot into the free ring, honoring pins (mutex held).
  void recycle_slot(int idx);
  /// Sample every governed session's signals and tick its governor (engine
  /// mutex held; called by the dispatcher every governor.tick_interval_ms).
  void governor_tick(int64_t now);
  /// Measure holdout accuracy / energy / latency metadata for every ladder
  /// point on lane 0 (dispatcher paused or not yet started).
  void measure_point_metadata(Session& def);
  /// Derive the admission service floor and watchdog budget from the
  /// calibrated metadata (or a direct probe when ungoverned).
  void calibrate_service_estimates(Session& def);
  /// Capture the golden probe reference (input + per-lane expected logits)
  /// from the current weights.
  void capture_golden(Session& def);
  /// Build per-(point, lane) serving state for `pts` (shared by
  /// open_session and reload; throws with session/point/lane/stage context).
  std::vector<std::vector<Session::Lane>> build_points(
      const std::string& name, const std::vector<qos::OperatingPointSpec>& pts);
  void prewarm_points(const std::vector<std::vector<Session::Lane>>& points);
  void record_transition(Session& s, const qos::Transition& t);
  void emit_lifecycle_event(const char* type, int lane, const std::string& detail);

  ModelSpec spec_;
  std::unique_ptr<core::Workbench> wb_;
  std::vector<std::unique_ptr<nn::Sequential>> lanes_;  ///< model replicas
  std::vector<std::unique_ptr<Session>> sessions_;
  int num_classes_ = 0;
  int64_t chw_ = 0;  ///< input numel per sample

  // QoS ladder (empty without spec.qos_points).
  std::vector<qos::OperatingPointSpec> qos_specs_;
  std::vector<qos::OperatingPoint> points_meta_;
  int64_t t0_ns_ = 0;             ///< load time; report times are relative
  int64_t last_gov_tick_ns_ = 0;  ///< guarded by mu_

  // Lifecycle state.
  AdmissionConfig admission_;            ///< guarded by mu_
  std::unique_ptr<Watchdog> watchdog_;   ///< guarded by mu_
  int64_t service_floor_ns_ = 0;         ///< guarded by mu_
  std::function<void(int, int64_t)> chaos_;  ///< set while idle
  std::unique_ptr<resilience::CheckpointSet> checkpoints_;
  std::mutex reload_mu_;   ///< serializes reload/open_session/close_session
  bool reload_pending_ = false;  ///< dispatch paused for a reload (mu_)
  Tensor golden_input_;    ///< probation probe input (immutable after load)
  Tensor golden_logits_;   ///< expected probe logits (rebuilt by reload)

  mutable std::mutex mu_;
  std::condition_variable cv_dispatch_;  ///< dispatcher wake-up
  std::condition_variable cv_lane_;      ///< lane-worker assignment
  std::condition_variable cv_done_;      ///< request completion
  std::condition_variable cv_free_;      ///< slot freed
  std::vector<Slot> slots_;
  std::vector<int> free_ring_;
  int free_head_ = 0;
  int free_count_ = 0;
  uint64_t next_seq_ = 1;
  int pending_total_ = 0;
  int inflight_ = 0;  ///< batches gathered and not yet finished/abandoned
  bool stop_ = false;

  // Stats: atomics so stats() never races the dispatcher or lane workers
  // (TSan-clean without snapshotting under mu_).
  std::atomic<int64_t> stat_requests_{0};
  std::atomic<int64_t> stat_batches_{0};
  std::atomic<int64_t> stat_flush_full_{0};
  std::atomic<int64_t> stat_flush_timer_{0};
  std::atomic<int64_t> stat_sum_batch_{0};
  std::atomic<int64_t> stat_max_batch_{0};
  std::atomic<int64_t> stat_deadline_misses_{0};
  std::atomic<int64_t> stat_queue_full_waits_{0};
  std::atomic<int64_t> stat_qos_transitions_{0};
  std::atomic<int64_t> stat_shed_{0};
  std::atomic<int64_t> stat_rejected_{0};
  std::atomic<int64_t> stat_failed_requests_{0};
  std::atomic<int64_t> stat_quarantines_{0};
  std::atomic<int64_t> stat_readmissions_{0};
  std::atomic<int64_t> stat_lanes_quarantined_{0};
  std::atomic<int64_t> stat_requeued_batches_{0};
  std::atomic<int64_t> stat_discarded_batches_{0};
  std::atomic<int64_t> stat_probes_{0};
  std::atomic<int64_t> stat_reloads_{0};

  std::vector<BatchWork> works_;       ///< one per lane, reused across dispatches
  std::vector<LaneState> lane_state_;  ///< one per lane
  std::thread dispatcher_;
};

}  // namespace axnn::serve
