// axnn — serving admission control and load shedding (DESIGN.md §5k).
//
// The slot pool bounds how much work the engine accepts; AdmissionConfig
// decides what happens at the bound. kBlock is classic backpressure (the
// PR 6 behavior): submit() parks the caller until a slot frees. Under real
// overload that turns every client into a queue, so the shedding policies
// resolve the conflict immediately instead:
//
//   * kShedNewest    — the incoming request is shed: submit() returns an
//                      instant ticket whose await() yields Outcome::kShed.
//                      No slot is consumed, the caller never blocks.
//   * kShedByDeadline — EDF-flavored: the *queued* request with the least
//                      deadline slack (the one most likely to miss anyway)
//                      is shed to make room, and the incoming submit waits
//                      for the freed slot. A queued request without a
//                      deadline is never the victim; when the incoming
//                      request is itself the least viable (or nothing is
//                      pending), it is shed instead, as under kShedNewest.
//
// Orthogonally, reject_infeasible refuses deadlines the engine already
// knows it cannot meet: if `deadline_us` is below the calibrated service
// floor (the fastest operating point's latency probe) times service_margin,
// submit() resolves the request instantly as Outcome::kRejected — a distinct
// outcome so clients can tell "you asked the impossible" from "we were too
// busy" from "the batch failed".
//
// decide() is a pure function of plain numbers so admission policy is unit
// testable without an engine; the engine calls it under its mutex.
#pragma once

#include <cstdint>
#include <string>

namespace axnn::serve {

/// What submit() does when the slot pool is exhausted.
enum class AdmissionPolicy { kBlock, kShedNewest, kShedByDeadline };

const char* to_string(AdmissionPolicy p);
/// Parse "block" | "shed-newest" | "shed-deadline" (CLI --admission values).
/// Returns false on unknown text.
bool parse_admission_policy(const std::string& text, AdmissionPolicy& out);

struct AdmissionConfig {
  AdmissionPolicy policy = AdmissionPolicy::kBlock;
  /// Reject submits whose deadline is below the calibrated service floor
  /// (they cannot be met even by the fastest operating point). Off by
  /// default: tight-deadline best-effort submission stays legal.
  bool reject_infeasible = false;
  /// Feasibility margin: reject when deadline < service_floor * margin.
  /// > 1 rejects earlier (headroom for queueing), < 1 is optimistic.
  double service_margin = 1.0;

  void validate() const;  ///< throws std::invalid_argument on nonsense
};

/// What submit() should do with one request (pure admission decision).
enum class AdmissionAction {
  kAdmit,        ///< take a free slot and enqueue
  kBlock,        ///< pool full: wait for a slot, then admit
  kShedIncoming, ///< resolve the incoming request instantly as kShed
  kEvictQueued,  ///< shed the least-viable queued request, then block briefly
  kReject,       ///< resolve instantly as kRejected (infeasible deadline)
};

/// Decide admission for one submit. All times are nanoseconds on the same
/// monotonic clock. `deadline_ns` is the request's absolute deadline (0 =
/// none); `victim_deadline_ns` is the earliest deadline among queued
/// requests that have one (0 = no such victim); `service_floor_ns` is the
/// calibrated single-request service estimate (0 = uncalibrated, feasibility
/// is not checked).
AdmissionAction decide(const AdmissionConfig& cfg, int free_slots, int64_t now_ns,
                       int64_t deadline_ns, int64_t victim_deadline_ns,
                       int64_t service_floor_ns);

}  // namespace axnn::serve
