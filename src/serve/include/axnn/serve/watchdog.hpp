// axnn — lane watchdog: straggler detection, quarantine, probation
// (DESIGN.md §5k).
//
// Each serving lane is one model replica driven by its own worker thread. A
// lane can go bad two ways: it *hangs* (a batch blows through its execution
// budget — scheduler pathology, a stuck kernel, injected chaos) or it keeps
// *faulting* (forward throws, or its sentinel reports violations batch after
// batch — corrupted weights or LUTs on that replica). The Watchdog is the
// dispatcher-side state machine that tracks this per lane:
//
//   kHealthy ──(budget overrun / fault / violation strikes)──▶ kQuarantined
//   kQuarantined ──(probation_passes consecutive golden probes)──▶ kHealthy
//
// A quarantined lane takes no traffic (capacity shrinks; the governor sees
// `lanes_quarantined` as health pressure). Its abandoned in-flight batch is
// re-queued and re-run on a healthy lane. While quarantined, the dispatcher
// schedules *probation probes* — golden-input forwards on the lane's own
// worker, compared bit-exact against the reference captured at load — every
// probation_interval_ms; `probation_passes` consecutive passes readmit it.
// A lane whose replica is genuinely corrupted keeps failing the probe and
// stays out.
//
// Like qos::Governor, this is a pure state machine: no threads, no clocks,
// no engine types. The engine samples and drives it under its dispatch
// mutex; unit tests drive it with a synthetic clock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace axnn::serve {

struct WatchdogConfig {
  /// Master switch: off = no budget checks, no quarantine, no probes.
  bool enabled = true;
  /// Per-batch execution budget = budget_factor * calibrated single-request
  /// latency * max_batch, floored at min_budget_ms. The generous default
  /// absorbs scheduler noise and sanitizer overhead; only a genuinely stuck
  /// lane trips it.
  double budget_factor = 16.0;
  int64_t min_budget_ms = 50;
  /// Explicit budget override in ms (0 = use the calibrated formula). The
  /// chaos harness pins this for determinism.
  int64_t budget_ms = 0;
  /// Quarantine a lane after this many *consecutive* batches with sentinel
  /// violations (0 = never quarantine on violations).
  int violation_strikes = 3;
  /// Probation probe cadence for quarantined lanes.
  int64_t probation_interval_ms = 50;
  /// Consecutive golden-probe passes required for readmission.
  int probation_passes = 2;
  /// Times one request may be re-dispatched after its batch was abandoned
  /// (stall) or faulted before it is failed back to the client.
  int max_retries = 2;

  void validate() const;  ///< throws std::invalid_argument on nonsense
};

enum class LaneHealth { kHealthy, kQuarantined };

const char* to_string(LaneHealth h);

/// Per-lane watchdog state (snapshot for reports/tests).
struct LaneStatus {
  LaneHealth health = LaneHealth::kHealthy;
  int64_t quarantines = 0;      ///< times this lane was quarantined
  int strikes = 0;              ///< consecutive violation batches so far
  int probe_passes = 0;         ///< consecutive probation passes so far
  int64_t last_probe_ns = 0;
  int64_t quarantined_at_ns = 0;
  std::string reason;           ///< last quarantine trigger (human-readable)
};

class Watchdog {
public:
  Watchdog(WatchdogConfig cfg, int lanes);

  const WatchdogConfig& config() const { return cfg_; }
  void set_config(const WatchdogConfig& cfg);  ///< validates; keeps lane state

  /// Install the calibrated per-batch budget (cfg.budget_ms overrides it).
  void set_calibrated_budget_ns(int64_t budget_ns);
  int64_t budget_ns() const;

  int lanes() const { return static_cast<int>(lanes_.size()); }
  int healthy() const;
  int quarantined() const { return lanes() - healthy(); }
  const LaneStatus& lane(int i) const { return lanes_.at(static_cast<size_t>(i)); }
  LaneHealth health(int i) const { return lane(i).health; }

  /// Has the batch running on `lane` since `busy_since_ns` overrun its
  /// budget? Always false when disabled.
  bool overdue(int64_t busy_since_ns, int64_t now_ns) const;

  /// Quarantine `lane` (no-op when already quarantined or disabled).
  /// Returns true when the lane transitioned kHealthy -> kQuarantined.
  bool quarantine(int lane, int64_t now_ns, std::string reason);

  /// A batch finished on `lane` with `violations` new sentinel violations.
  /// Tracks consecutive-violation strikes; returns true when the strike
  /// budget tripped and the lane was quarantined.
  bool on_batch_violations(int lane, int64_t violations, int64_t now_ns);

  /// Should the dispatcher schedule a probation probe on `lane` now?
  bool probe_due(int lane, int64_t now_ns) const;
  void probe_started(int lane, int64_t now_ns);
  /// Fold one probe result; returns true when the lane was readmitted.
  bool on_probe_result(int lane, bool pass, int64_t now_ns);

  int64_t quarantines_total() const { return quarantines_total_; }
  int64_t readmissions_total() const { return readmissions_total_; }

private:
  WatchdogConfig cfg_;
  std::vector<LaneStatus> lanes_;
  int64_t calibrated_budget_ns_ = 0;
  int64_t quarantines_total_ = 0;
  int64_t readmissions_total_ = 0;
};

}  // namespace axnn::serve
