// axnn — deterministic chaos injection for the serving engine
// (DESIGN.md §5k, bench_serving_chaos).
//
// A ChaosSpec is a *schedule*, not a random process: windows of per-lane
// batch indices during which the injector stalls the lane (sleeps before
// the forward) or faults it (throws ChaosFault in place of the forward).
// Batch indices count batches *executed by that lane*, so the schedule is
// independent of wall-clock speed — the same spec trips the same failures
// under ASan, on a loaded CI box, or at -O3. The seed is carried for
// report provenance and for harnesses that derive their traffic schedules
// from it; the injector itself is a pure function of the spec.
//
// Wiring: Engine::set_chaos(std::ref(injector)) installs the injector as
// the engine's chaos hook; the lane worker calls it right before each batch
// forward. A stall makes the lane a straggler (the watchdog's budget check
// fires, the batch is abandoned and re-run elsewhere, the lane is
// quarantined); a fault exercises the batch-failure path (requeue with
// bounded retries, lane quarantine). Probation probes bypass the hook —
// chaos models a sick *lane*, and a stalled lane that has drained its
// schedule really is healthy again.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace axnn::serve {

/// Thrown by the injector inside a fault window; the engine treats it like
/// any other forward failure (this is the point).
struct ChaosFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ChaosSpec {
  /// Provenance / harness-side schedule seed (the injector is deterministic
  /// given the windows below; harnesses seed their load generators with it).
  uint64_t seed = 0;

  /// Stall `lane` for `stall_ms` before executing its batches in
  /// [from_batch, to_batch] (inclusive, counted per lane from 0).
  struct Stall {
    int lane = 0;
    int64_t from_batch = 0;
    int64_t to_batch = 0;
    int64_t stall_ms = 0;
  };
  /// Throw ChaosFault in place of `lane`'s batches in [from_batch, to_batch].
  struct Fault {
    int lane = 0;
    int64_t from_batch = 0;
    int64_t to_batch = 0;
  };

  std::vector<Stall> stalls;
  std::vector<Fault> faults;
};

/// Callable chaos hook: sleeps through matching stall windows, throws
/// ChaosFault in matching fault windows, does nothing otherwise. Safe to
/// invoke concurrently from multiple lane workers.
class ChaosInjector {
public:
  explicit ChaosInjector(ChaosSpec spec);

  const ChaosSpec& spec() const { return spec_; }

  /// The engine's chaos hook: `lane_batch` is the count of batches this
  /// lane has started (0-based).
  void operator()(int lane, int64_t lane_batch);

  int64_t stalls_fired() const { return stalls_fired_.load(std::memory_order_relaxed); }
  int64_t faults_fired() const { return faults_fired_.load(std::memory_order_relaxed); }

private:
  ChaosSpec spec_;
  std::atomic<int64_t> stalls_fired_{0};
  std::atomic<int64_t> faults_fired_{0};
};

}  // namespace axnn::serve
