#include "axnn/serve/loadgen.hpp"

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "axnn/obs/telemetry.hpp"
#include "axnn/tensor/rng.hpp"

namespace axnn::serve {

std::string to_string(Arrival a) {
  switch (a) {
    case Arrival::kClosed: return "closed";
    case Arrival::kPoisson: return "poisson";
    case Arrival::kBurst: return "burst";
  }
  return "?";
}

namespace {

/// Per-run accumulator: latencies of *served* requests plus the outcome
/// tallies (shed / rejected requests resolve without a latency worth
/// summarizing — they never executed).
struct Tally {
  std::vector<double> latencies_ms;
  int64_t served = 0;
  int64_t shed = 0;
  int64_t rejected = 0;

  void fold(const Result& r) {
    switch (r.outcome) {
      case Outcome::kServed:
        ++served;
        latencies_ms.push_back(r.latency_ms);
        break;
      case Outcome::kShed: ++shed; break;
      case Outcome::kRejected: ++rejected; break;
    }
  }
  void merge(const Tally& o) {
    latencies_ms.insert(latencies_ms.end(), o.latencies_ms.begin(), o.latencies_ms.end());
    served += o.served;
    shed += o.shed;
    rejected += o.rejected;
  }
};

/// Closed loop: each client thread owns an equal share of the request count
/// and cycles submit→await, so in-flight concurrency == clients.
void run_closed(Session& s, const data::Dataset& pool, const LoadSpec& spec, Tally& tally) {
  std::mutex mu;
  std::vector<std::thread> clients;
  const int nclients = std::max(1, spec.clients);
  for (int c = 0; c < nclients; ++c) {
    const int share = spec.requests / nclients + (c < spec.requests % nclients ? 1 : 0);
    clients.emplace_back([&, c, share] {
      Rng rng(spec.seed + static_cast<uint64_t>(c) * 0x9E37u);
      Tally local;
      local.latencies_ms.reserve(static_cast<size_t>(share));
      for (int i = 0; i < share; ++i) {
        const int64_t idx = rng.uniform_int(pool.size());
        const Ticket t = s.submit(pool.slice(idx, 1).first, spec.deadline_us);
        local.fold(s.await(t));
      }
      std::lock_guard<std::mutex> lk(mu);
      tally.merge(local);
    });
  }
  for (auto& t : clients) t.join();
}

/// Open loop: a submitter launches requests on the Poisson schedule and a
/// collector awaits them in order. Latency = intended arrival → completion.
void run_poisson(Session& s, const data::Dataset& pool, const LoadSpec& spec, Tally& tally) {
  struct Launched {
    Ticket ticket;
    double queue_ms;  ///< intended arrival -> slot acquisition
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Launched> launched;
  bool submit_done = false;

  std::thread collector([&] {
    tally.latencies_ms.reserve(static_cast<size_t>(spec.requests));
    for (int i = 0; i < spec.requests; ++i) {
      Launched l;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return !launched.empty() || submit_done; });
        if (launched.empty()) break;
        l = launched.front();
        launched.pop_front();
      }
      const Result r = s.await(l.ticket);
      tally.fold(r);
      // Queueing delay ahead of slot acquisition is part of a served
      // request's latency (coordinated omission), not of a shed one's.
      if (r.outcome == Outcome::kServed) tally.latencies_ms.back() += l.queue_ms;
    }
  });

  Rng rng(spec.seed);
  const double rate = std::max(1e-6, spec.rate_rps);
  int64_t intended_ns = obs::now_ns();
  for (int i = 0; i < spec.requests; ++i) {
    // Exponential inter-arrival gap; 1-u keeps the log argument in (0, 1].
    intended_ns += static_cast<int64_t>(-std::log(1.0 - rng.uniform()) / rate * 1e9);
    while (obs::now_ns() < intended_ns)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    const int64_t idx = rng.uniform_int(pool.size());
    const Ticket t = s.submit(pool.slice(idx, 1).first, spec.deadline_us);
    // submit() just returned, so "now" is when the slot was acquired; any
    // backpressure block is charged to the request, not dropped.
    const double queue_ms = static_cast<double>(obs::now_ns() - intended_ns) / 1e6;
    {
      std::lock_guard<std::mutex> lk(mu);
      launched.push_back({t, std::max(0.0, queue_ms)});
    }
    cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lk(mu);
    submit_done = true;
  }
  cv.notify_one();
  collector.join();
}

/// Bursts: submit `burst` requests back-to-back, then await the whole wave.
void run_burst(Session& s, const data::Dataset& pool, const LoadSpec& spec, Tally& tally) {
  Rng rng(spec.seed);
  const int burst = std::max(1, spec.burst);
  std::vector<Ticket> wave(static_cast<size_t>(burst));
  tally.latencies_ms.reserve(static_cast<size_t>(spec.requests));
  int remaining = spec.requests;
  while (remaining > 0) {
    const int n = std::min(burst, remaining);
    for (int i = 0; i < n; ++i) {
      const int64_t idx = rng.uniform_int(pool.size());
      wave[static_cast<size_t>(i)] = s.submit(pool.slice(idx, 1).first, spec.deadline_us);
    }
    for (int i = 0; i < n; ++i) tally.fold(s.await(wave[static_cast<size_t>(i)]));
    remaining -= n;
  }
}

}  // namespace

LoadReport run_load(Engine& engine, Session& session, const data::Dataset& pool,
                    const LoadSpec& spec) {
  if (spec.requests < 1) throw std::invalid_argument("run_load: requests must be >= 1");
  if (pool.size() < 1) throw std::invalid_argument("run_load: empty sample pool");

  const EngineStats before = engine.stats();
  Tally tally;
  const int64_t t0 = obs::now_ns();
  switch (spec.arrival) {
    case Arrival::kClosed: run_closed(session, pool, spec, tally); break;
    case Arrival::kPoisson: run_poisson(session, pool, spec, tally); break;
    case Arrival::kBurst: run_burst(session, pool, spec, tally); break;
  }
  engine.drain();
  const double wall_s = static_cast<double>(obs::now_ns() - t0) / 1e9;
  const EngineStats after = engine.stats();

  LoadReport r;
  r.scenario = to_string(spec.arrival);
  r.requests = tally.served + tally.shed + tally.rejected;
  r.served = tally.served;
  r.shed = tally.shed;
  r.rejected = tally.rejected;
  r.batches = after.batches - before.batches;
  r.mean_batch =
      r.batches > 0 ? static_cast<double>(after.requests - before.requests) /
                          static_cast<double>(r.batches)
                    : 0.0;
  r.wall_s = wall_s;
  r.throughput_rps = wall_s > 0 ? static_cast<double>(r.served) / wall_s : 0.0;
  r.latency = obs::summarize_latencies(std::move(tally.latencies_ms));
  r.deadline_misses = after.deadline_misses - before.deadline_misses;
  r.queue_full_waits = after.queue_full_waits - before.queue_full_waits;
  return r;
}

obs::Json LoadReport::to_json() const {
  obs::Json j;
  j["scenario"] = scenario;
  j["requests"] = requests;
  j["served"] = served;
  j["shed"] = shed;
  j["rejected"] = rejected;
  j["batches"] = batches;
  j["mean_batch"] = mean_batch;
  j["wall_s"] = wall_s;
  j["throughput_rps"] = throughput_rps;
  j["p50_ms"] = latency.p50;
  j["p95_ms"] = latency.p95;
  j["p99_ms"] = latency.p99;
  j["max_ms"] = latency.max;
  j["mean_ms"] = latency.mean;
  j["deadline_misses"] = deadline_misses;
  j["queue_full_waits"] = queue_full_waits;
  return j;
}

}  // namespace axnn::serve
