#include "axnn/serve/chaos.hpp"

#include <chrono>
#include <string>
#include <thread>
#include <utility>

namespace axnn::serve {

ChaosInjector::ChaosInjector(ChaosSpec spec) : spec_(std::move(spec)) {
  for (const auto& s : spec_.stalls)
    if (s.lane < 0 || s.from_batch > s.to_batch || s.stall_ms < 0)
      throw std::invalid_argument("ChaosSpec: malformed stall window");
  for (const auto& f : spec_.faults)
    if (f.lane < 0 || f.from_batch > f.to_batch)
      throw std::invalid_argument("ChaosSpec: malformed fault window");
}

void ChaosInjector::operator()(int lane, int64_t lane_batch) {
  for (const auto& s : spec_.stalls) {
    if (s.lane == lane && lane_batch >= s.from_batch && lane_batch <= s.to_batch) {
      stalls_fired_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(s.stall_ms));
      break;  // one stall per batch is enough chaos
    }
  }
  for (const auto& f : spec_.faults) {
    if (f.lane == lane && lane_batch >= f.from_batch && lane_batch <= f.to_batch) {
      faults_fired_.fetch_add(1, std::memory_order_relaxed);
      throw ChaosFault("chaos: injected fault on lane " + std::to_string(lane) +
                       " batch " + std::to_string(lane_batch));
    }
  }
}

}  // namespace axnn::serve
