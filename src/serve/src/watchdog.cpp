#include "axnn/serve/watchdog.hpp"

#include <stdexcept>
#include <utility>

namespace axnn::serve {

const char* to_string(LaneHealth h) {
  switch (h) {
    case LaneHealth::kHealthy: return "healthy";
    case LaneHealth::kQuarantined: return "quarantined";
  }
  return "?";
}

void WatchdogConfig::validate() const {
  if (budget_factor <= 0)
    throw std::invalid_argument("WatchdogConfig: budget_factor must be > 0");
  if (min_budget_ms < 1)
    throw std::invalid_argument("WatchdogConfig: min_budget_ms must be >= 1");
  if (budget_ms < 0)
    throw std::invalid_argument("WatchdogConfig: budget_ms must be >= 0");
  if (violation_strikes < 0)
    throw std::invalid_argument("WatchdogConfig: violation_strikes must be >= 0");
  if (probation_interval_ms < 1)
    throw std::invalid_argument("WatchdogConfig: probation_interval_ms must be >= 1");
  if (probation_passes < 1)
    throw std::invalid_argument("WatchdogConfig: probation_passes must be >= 1");
  if (max_retries < 0)
    throw std::invalid_argument("WatchdogConfig: max_retries must be >= 0");
}

Watchdog::Watchdog(WatchdogConfig cfg, int lanes) : cfg_(cfg) {
  cfg_.validate();
  if (lanes < 1) throw std::invalid_argument("Watchdog: lanes must be >= 1");
  lanes_.resize(static_cast<size_t>(lanes));
}

void Watchdog::set_config(const WatchdogConfig& cfg) {
  cfg.validate();
  cfg_ = cfg;
}

void Watchdog::set_calibrated_budget_ns(int64_t budget_ns) {
  calibrated_budget_ns_ = budget_ns;
}

int64_t Watchdog::budget_ns() const {
  if (cfg_.budget_ms > 0) return cfg_.budget_ms * 1'000'000;
  const int64_t floor_ns = cfg_.min_budget_ms * 1'000'000;
  return calibrated_budget_ns_ > floor_ns ? calibrated_budget_ns_ : floor_ns;
}

int Watchdog::healthy() const {
  int n = 0;
  for (const auto& l : lanes_)
    if (l.health == LaneHealth::kHealthy) ++n;
  return n;
}

bool Watchdog::overdue(int64_t busy_since_ns, int64_t now_ns) const {
  if (!cfg_.enabled) return false;
  return now_ns - busy_since_ns > budget_ns();
}

bool Watchdog::quarantine(int lane, int64_t now_ns, std::string reason) {
  if (!cfg_.enabled) return false;
  LaneStatus& l = lanes_.at(static_cast<size_t>(lane));
  if (l.health == LaneHealth::kQuarantined) return false;
  l.health = LaneHealth::kQuarantined;
  l.quarantined_at_ns = now_ns;
  l.last_probe_ns = now_ns;  // first probe waits a full probation interval
  l.probe_passes = 0;
  l.strikes = 0;
  l.reason = std::move(reason);
  ++l.quarantines;
  ++quarantines_total_;
  return true;
}

bool Watchdog::on_batch_violations(int lane, int64_t violations, int64_t now_ns) {
  if (!cfg_.enabled || cfg_.violation_strikes <= 0) return false;
  LaneStatus& l = lanes_.at(static_cast<size_t>(lane));
  if (l.health == LaneHealth::kQuarantined) return false;
  if (violations <= 0) {
    l.strikes = 0;  // strikes are consecutive: one clean batch resets them
    return false;
  }
  if (++l.strikes < cfg_.violation_strikes) return false;
  return quarantine(lane, now_ns,
                    "sentinel violations on " + std::to_string(l.strikes) +
                        " consecutive batches");
}

bool Watchdog::probe_due(int lane, int64_t now_ns) const {
  const LaneStatus& l = lanes_.at(static_cast<size_t>(lane));
  if (!cfg_.enabled || l.health != LaneHealth::kQuarantined) return false;
  return now_ns - l.last_probe_ns >= cfg_.probation_interval_ms * 1'000'000;
}

void Watchdog::probe_started(int lane, int64_t now_ns) {
  lanes_.at(static_cast<size_t>(lane)).last_probe_ns = now_ns;
}

bool Watchdog::on_probe_result(int lane, bool pass, int64_t now_ns) {
  LaneStatus& l = lanes_.at(static_cast<size_t>(lane));
  if (l.health != LaneHealth::kQuarantined) return false;
  if (!pass) {
    l.probe_passes = 0;
    return false;
  }
  if (++l.probe_passes < cfg_.probation_passes) return false;
  l.health = LaneHealth::kHealthy;
  l.probe_passes = 0;
  l.strikes = 0;
  l.quarantined_at_ns = 0;
  (void)now_ns;
  ++readmissions_total_;
  return true;
}

}  // namespace axnn::serve
