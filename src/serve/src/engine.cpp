#include "axnn/serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "axnn/energy/energy.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/train/evaluate.hpp"

namespace axnn::serve {

namespace {

int argmax_row(const float* row, int n) {
  int best = 0;
  for (int j = 1; j < n; ++j)
    if (row[j] > row[best]) best = j;
  return best;
}

}  // namespace

// ---------------------------------------------------------------------------
// Session

Ticket Session::submit(const Tensor& chw, int64_t deadline_us) {
  Engine& e = *engine_;
  if (chw.numel() != e.chw_)
    throw std::invalid_argument("Session::submit: expected " + std::to_string(e.chw_) +
                                " input elements, got " + std::to_string(chw.numel()));
  const int64_t now = obs::now_ns();
  std::unique_lock<std::mutex> lk(e.mu_);
  if (e.error_) std::rethrow_exception(e.error_);
  if (e.free_count_ == 0) {
    ++e.stat_queue_full_waits_;
    e.cv_free_.wait(lk, [&] { return e.free_count_ > 0 || e.error_; });
    if (e.error_) std::rethrow_exception(e.error_);
  }
  const int idx = e.free_ring_[static_cast<size_t>(e.free_head_)];
  e.free_head_ = (e.free_head_ + 1) % static_cast<int>(e.free_ring_.size());
  --e.free_count_;

  Engine::Slot& slot = e.slots_[static_cast<size_t>(idx)];
  slot.session = this;
  slot.seq = e.next_seq_++;
  slot.done = false;
  slot.failed = false;
  slot.submit_ns = now;
  slot.deadline_ns = deadline_us > 0 ? now + deadline_us * 1000 : 0;
  slot.flush_ns = now + e.spec_.batching.max_delay_us * 1000;
  if (slot.deadline_ns != 0 && slot.deadline_ns < slot.flush_ns)
    slot.flush_ns = slot.deadline_ns;
  std::copy(chw.data(), chw.data() + chw.numel(), slot.input.data());

  ring_[static_cast<size_t>((ring_head_ + ring_count_) % static_cast<int>(ring_.size()))] = idx;
  ++ring_count_;
  ++e.pending_total_;
  e.cv_dispatch_.notify_one();
  return Ticket{idx, slot.seq};
}

Result Session::await(const Ticket& t) {
  Engine& e = *engine_;
  if (t.slot < 0 || t.slot >= static_cast<int>(e.slots_.size()) || t.seq == 0)
    throw std::logic_error("Session::await: invalid ticket");
  std::unique_lock<std::mutex> lk(e.mu_);
  Engine::Slot& slot = e.slots_[static_cast<size_t>(t.slot)];
  if (slot.seq != t.seq)
    throw std::logic_error("Session::await: stale ticket (already awaited?)");
  e.cv_done_.wait(lk, [&] { return slot.done; });
  if (slot.failed) {
    slot.seq = 0;  // recycle even on failure
    e.free_ring_[static_cast<size_t>((e.free_head_ + e.free_count_) %
                                     static_cast<int>(e.free_ring_.size()))] = t.slot;
    ++e.free_count_;
    e.cv_free_.notify_one();
    std::rethrow_exception(e.error_);
  }
  Result r;
  r.logits = slot.logits;
  r.top1 = slot.top1;
  r.latency_ms = slot.latency_ms;
  r.batch_size = slot.batch_size;
  r.deadline_met = slot.deadline_met;
  r.point = slot.point;
  r.point_name = point_names_[static_cast<size_t>(slot.point)];

  slot.seq = 0;
  slot.done = false;
  slot.session = nullptr;
  e.free_ring_[static_cast<size_t>((e.free_head_ + e.free_count_) %
                                   static_cast<int>(e.free_ring_.size()))] = t.slot;
  ++e.free_count_;
  e.cv_free_.notify_one();
  return r;
}

const nn::ExecContext& Session::exec_context(int lane) const {
  return exec_context(lane, active_point());
}

const nn::ExecContext& Session::exec_context(int lane, int point) const {
  return points_.at(static_cast<size_t>(point)).at(static_cast<size_t>(lane)).ctx;
}

const std::string& Session::point_name(int point) const {
  return point_names_.at(static_cast<size_t>(point));
}

int Session::active_point() const {
  std::lock_guard<std::mutex> lk(engine_->mu_);
  return active_point_;
}

void Session::set_active_point(int point) {
  Engine& e = *engine_;
  std::lock_guard<std::mutex> lk(e.mu_);
  if (!governor_)
    throw std::logic_error("Session::set_active_point: session '" + name_ +
                           "' serves a single fixed plan");
  if (point < 0 || point >= num_points())
    throw std::out_of_range("Session::set_active_point: point " + std::to_string(point) +
                            " out of range [0, " + std::to_string(num_points()) + ")");
  if (point == active_point_) return;
  const qos::Transition t = governor_->force(point, obs::now_ns());
  active_point_ = point;
  e.record_transition(*this, t);
}

std::vector<qos::Transition> Session::transitions() const {
  std::lock_guard<std::mutex> lk(engine_->mu_);
  return governor_ ? governor_->transitions() : std::vector<qos::Transition>{};
}

sentinel::SentinelReport Session::sentinel_report() const {
  sentinel::SentinelReport merged;
  for (const auto& point : points_)
    for (const auto& lane : point)
      if (lane.sentinel) merged.merge(lane.sentinel->report());
  return merged;
}

// ---------------------------------------------------------------------------
// Engine lifecycle

std::unique_ptr<Engine> Engine::load(ModelSpec spec) {
  if (spec.batching.max_batch < 1 || spec.batching.queue_capacity < spec.batching.max_batch)
    throw std::invalid_argument("Engine::load: need 1 <= max_batch <= queue_capacity");
  if (spec.lanes < 1) throw std::invalid_argument("Engine::load: lanes must be >= 1");
  // Validate the QoS ladder before any training happens — a bad points file
  // must fail in milliseconds, not after the quantization stage.
  std::vector<qos::OperatingPointSpec> qspecs;
  if (!spec.qos_points.empty()) {
    qspecs = qos::parse_points(spec.qos_points);
    spec.governor.validate();
    if (spec.qos_holdout < 0)
      throw std::invalid_argument("Engine::load: qos_holdout must be >= 0");
    if (spec.qos_latency_probes < 1)
      throw std::invalid_argument("Engine::load: qos_latency_probes must be >= 1");
  }

  // Partition the machine: `lanes` concurrent batches, conv kernels get the
  // rest. The global pool size is immutable once created, so the intra hint
  // is best-effort when kernels already ran in this process.
  const ThreadPool::Split split = ThreadPool::plan_split(spec.lanes);
  spec.lanes = split.inter;
  if (split.inter > 1) {
    try {
      ThreadPool::set_global_threads(split.intra);
    } catch (const std::logic_error&) {
      // Global pool already pinned; lanes still work, kernels keep its size.
    }
  }

  std::unique_ptr<Engine> e(new Engine());
  e->spec_ = spec;
  e->qos_specs_ = std::move(qspecs);
  e->t0_ns_ = obs::now_ns();

  core::WorkbenchConfig wcfg;
  wcfg.model = spec.model;
  wcfg.profile = spec.profile;
  wcfg.data_seed = spec.data_seed;
  wcfg.model_seed = spec.model_seed;
  wcfg.use_cache = spec.use_cache;
  wcfg.verbose = spec.verbose;
  e->wb_ = std::make_unique<core::Workbench>(wcfg);
  (void)e->wb_->run_quantization_stage(spec.kd_stage1);
  if (spec.finetune) {
    // With a qos ladder the fine-tune targets the best-effort point — the
    // one the deployment serves whenever it can afford to.
    const std::string& tune_plan =
        e->qos_specs_.empty() ? spec.plan : e->qos_specs_.front().plan_text;
    (void)e->wb_->run_approximation_stage(
        core::ApproxStageSetup::with_plan(nn::NetPlan::parse(tune_plan), spec.method, spec.t2));
  }

  // Lane construction is all-or-nothing: a throw here unwinds the partially
  // built engine (unique_ptr-owned lanes) and names the lane that failed.
  for (int i = 0; i < spec.lanes; ++i) {
    try {
      e->lanes_.push_back(e->wb_->clone());
    } catch (const std::exception& ex) {
      throw std::runtime_error("Engine::load: lane " + std::to_string(i) +
                               " (clone): " + ex.what());
    }
  }
  if (spec.lanes > 1) e->inter_pool_ = std::make_unique<ThreadPool>(split.inter);

  const data::Dataset& test = e->wb_->data().test;
  e->chw_ = test.channels() * test.height() * test.width();

  Session& def = e->open_session("default", "");

  // Probe once through lane 0: pins num_classes and warms the conv geometry
  // caches for the single-sample shape.
  const Tensor probe =
      e->lanes_[0]->forward(test.slice(0, 1).first, def.exec_context(0));
  e->num_classes_ = static_cast<int>(probe.shape()[probe.shape().rank() - 1]);

  if (e->qos_enabled()) {
    // Calibrate per-point metadata on lane 0, then rebuild the default
    // session's governor over the measured ladder (no ticks have run yet;
    // sessions opened later get the measured metadata directly).
    e->measure_point_metadata(def);
    def.governor_ = std::make_unique<qos::Governor>(spec.governor, e->points_meta_);
  }

  if (spec.prewarm) {
    // Resolve every plan served traffic can need — each (point, lane, batch
    // size) combination maps to a fixed set of GEMM shapes — so the
    // dispatcher's steady state is pure plan execution: no cache mutex, no
    // plan construction, no heap allocation. Zero inputs: plans are keyed by
    // shape and multiplier, never by operand values. The warm-up context
    // drops the sentinel monitor so calibrated check counters stay clean.
    for (size_t pt = 0; pt < def.points_.size(); ++pt) {
      for (int lane = 0; lane < spec.lanes; ++lane) {
        nn::ExecContext warm_ctx = def.points_[pt][static_cast<size_t>(lane)].ctx;
        warm_ctx.monitor = nullptr;
        for (int b = 1; b <= spec.batching.max_batch; ++b) {
          const Tensor warm(Shape{b, test.channels(), test.height(), test.width()}, 0.0f);
          (void)e->lanes_[static_cast<size_t>(lane)]->forward(warm, warm_ctx);
        }
      }
    }
  }

  const int cap = spec.batching.queue_capacity;
  e->slots_.resize(static_cast<size_t>(cap));
  e->free_ring_.resize(static_cast<size_t>(cap));
  for (int i = 0; i < cap; ++i) {
    e->slots_[static_cast<size_t>(i)].input = Tensor(Shape{e->chw_});
    e->slots_[static_cast<size_t>(i)].logits = Tensor(Shape{e->num_classes_});
    e->free_ring_[static_cast<size_t>(i)] = i;
  }
  e->free_count_ = cap;

  e->works_.resize(static_cast<size_t>(spec.lanes));
  for (auto& w : e->works_) w.slots.resize(static_cast<size_t>(spec.batching.max_batch));

  e->dispatcher_ = std::thread([raw = e.get()] { raw->dispatcher_loop(); });
  return e;
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_dispatch_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

Session& Engine::open_session(const std::string& name, const std::string& plan_text) {
  for (const auto& s : sessions_)
    if (s->name() == name)
      throw std::invalid_argument("Engine::open_session: duplicate session '" + name + "'");

  // An empty plan serves the engine default: the qos ladder when one is
  // configured, spec.plan otherwise. A non-empty plan pins the session to
  // that single point (no governor), qos or not.
  const bool ladder = qos_enabled() && plan_text.empty();
  std::vector<qos::OperatingPointSpec> pts;
  if (ladder)
    pts = qos_specs_;
  else
    pts.push_back(qos::OperatingPointSpec{name, plan_text.empty() ? spec_.plan : plan_text});

  auto session = std::unique_ptr<Session>(new Session());
  session->engine_ = this;
  session->name_ = name;
  session->ladder_ = ladder;
  session->plan_text_ = ladder ? qos::to_text(qos_specs_) : pts.front().plan_text;
  session->ring_.resize(static_cast<size_t>(spec_.batching.queue_capacity));
  session->requests_per_point_.assign(pts.size(), 0);
  for (const auto& p : pts) session->point_names_.push_back(p.name);

  for (size_t pi = 0; pi < pts.size(); ++pi) {
    // A failure anywhere below leaks nothing (the half-built session is
    // unique_ptr-owned and never registered) and names the point, lane and
    // stage that failed. Validation errors stay std::invalid_argument.
    const auto context = [&](size_t lane, const char* stage) {
      return "Engine::open_session('" + name + "'): point '" + pts[pi].name + "' lane " +
             std::to_string(lane) + " (" + stage + "): ";
    };
    const nn::NetPlan plan = [&] {
      try {
        return nn::NetPlan::parse(pts[pi].plan_text);
      } catch (const std::exception& ex) {
        throw std::invalid_argument(context(0, "parse") + ex.what());
      }
    }();
    std::vector<Session::Lane> lanes;
    for (size_t i = 0; i < lanes_.size(); ++i) {
      const char* stage = "resolve";
      try {
        Session::Lane lane;
        // Serving never fits GE (default ResolveOptions: fits are
        // training-only and plan_leaf_exec ignores them in eval contexts) —
        // resolution cost stays table-building only.
        lane.resolution = std::make_unique<nn::PlanResolution>(plan.resolve(*lanes_[i]));
        stage = "validate";
        lane.resolution->require_approximable();
        lane.resolution->require_bit_widths();
        lane.ctx =
            nn::ExecContext{.mode = nn::ExecMode::kQuantApprox}.with_plan(*lane.resolution);
        if (spec_.sentinel) {
          stage = "sentinel-calibrate";
          lane.sentinel = std::make_unique<sentinel::Sentinel>(spec_.sentinel_config);
          lane.sentinel->calibrate_plan(*lanes_[i], *lane.resolution);
          lane.ctx = lane.ctx.with_monitor(*lane.sentinel);
        }
        lanes.push_back(std::move(lane));
      } catch (const std::invalid_argument& ex) {
        throw std::invalid_argument(context(i, stage) + ex.what());
      } catch (const std::exception& ex) {
        throw std::runtime_error(context(i, stage) + ex.what());
      }
    }
    session->points_.push_back(std::move(lanes));
  }

  if (ladder) {
    // The ladder metadata may not be measured yet (the default session is
    // opened before measure_point_metadata runs; load() rebuilds its
    // governor afterwards). Fall back to name-only metadata.
    std::vector<qos::OperatingPoint> meta = points_meta_;
    if (meta.empty())
      for (const auto& p : pts) meta.push_back(qos::OperatingPoint{p.name, p.plan_text});
    session->governor_ = std::make_unique<qos::Governor>(spec_.governor, std::move(meta));
  }

  std::lock_guard<std::mutex> lk(mu_);
  sessions_.push_back(std::move(session));
  return *sessions_.back();
}

void Engine::measure_point_metadata(Session& def) {
  const data::Dataset& test = wb_->data().test;
  const Tensor probe_img = test.slice(0, 1).first;
  const axmul::MultiplierSpec exact_spec = axmul::find_spec("exact").value();

  // Holdout split: the tail of the test set, disjoint from the head that
  // accuracy benches/evaluate_accuracy conventionally sample first.
  const int64_t h = std::min<int64_t>(spec_.qos_holdout, test.size());
  data::Dataset holdout;
  if (h > 0) {
    auto sl = test.slice(test.size() - h, h);
    holdout.images = sl.first;
    holdout.labels = std::move(sl.second);
  }

  points_meta_.clear();
  for (size_t p = 0; p < qos_specs_.size(); ++p) {
    const nn::PlanResolution& res = *def.points_[p][0].resolution;
    // Metadata forwards run without the sentinel monitor so calibration
    // passes never pollute serving-side violation counters.
    const nn::ExecContext ctx =
        nn::ExecContext{.mode = nn::ExecMode::kQuantApprox}.with_plan(res);

    qos::OperatingPoint op{qos_specs_[p].name, qos_specs_[p].plan_text};

    // Latency: mean of single-sample forwards on lane 0 (also refreshes
    // each leaf's last_mac_count for the energy estimate below).
    const int64_t t0 = obs::now_ns();
    for (int r = 0; r < spec_.qos_latency_probes; ++r) (void)lanes_[0]->forward(probe_img, ctx);
    op.latency_est_ms = static_cast<double>(obs::now_ns() - t0) / 1e6 /
                        static_cast<double>(spec_.qos_latency_probes);

    std::vector<std::pair<int64_t, axmul::MultiplierSpec>> shares;
    for (const auto& en : res.entries()) {
      const bool exact_mode = en.plan.mode.has_value() && *en.plan.mode != nn::ExecMode::kQuantApprox;
      shares.emplace_back(en.layer->last_mac_count(),
                          (exact_mode || en.plan.multiplier.empty())
                              ? exact_spec
                              : axmul::find_spec(en.plan.multiplier).value());
    }
    const energy::EnergyEstimate est = energy::estimate_mixed(shares);
    op.energy_per_req = est.approx_energy;
    op.energy_savings_pct = est.savings_pct;

    if (h > 0) op.holdout_acc = train::evaluate_accuracy(*lanes_[0], holdout, ctx, 32);
    points_meta_.push_back(std::move(op));
  }
}

nn::Sequential& Engine::model(int lane) { return *lanes_.at(static_cast<size_t>(lane)); }

const data::SyntheticCifar& Engine::data() const { return wb_->data(); }

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  EngineStats s;
  s.requests = stat_requests_;
  s.batches = stat_batches_;
  s.flush_full = stat_flush_full_;
  s.flush_timer = stat_flush_timer_;
  s.max_batch = stat_max_batch_;
  s.mean_batch =
      stat_batches_ > 0 ? static_cast<double>(stat_sum_batch_) / static_cast<double>(stat_batches_)
                        : 0.0;
  s.deadline_misses = stat_deadline_misses_;
  s.queue_full_waits = stat_queue_full_waits_;
  s.qos_transitions = stat_qos_transitions_;
  return s;
}

qos::QosReport Engine::qos_report() const {
  std::lock_guard<std::mutex> lk(mu_);
  qos::QosReport r;
  r.points = points_meta_;
  r.t0_ns = t0_ns_;
  const int64_t now = obs::now_ns();
  for (const auto& sp : sessions_) {
    const Session& s = *sp;
    if (!s.governor_) continue;
    qos::SessionQos q;
    q.session = s.name_;
    q.active = s.active_point_;
    q.requests_per_point = s.requests_per_point_;
    q.time_in_point_ms = s.governor_->time_in_point_ms(now);
    q.transitions = s.governor_->transitions();
    r.sessions.push_back(std::move(q));
  }
  return r;
}

void Engine::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return (pending_total_ == 0 && inflight_ == 0) || error_; });
  if (error_) std::rethrow_exception(error_);
}

// ---------------------------------------------------------------------------
// Dispatcher

void Engine::gather_batch(Session& s, BatchWork& work, int64_t now) {
  const int take = std::min(s.ring_count_, spec_.batching.max_batch);
  work.session = &s;
  work.count = take;
  work.timer_flush = s.ring_count_ < spec_.batching.max_batch;
  // Epoch flip: stamp the active point now, under the mutex. The batch
  // executes entirely under this point even if the governor (or a manual
  // set_active_point) moves the session before it finishes.
  work.point = s.active_point_;
  for (int i = 0; i < take; ++i) {
    const int idx = s.ring_[static_cast<size_t>(s.ring_head_)];
    s.ring_head_ = (s.ring_head_ + 1) % static_cast<int>(s.ring_.size());
    work.slots[static_cast<size_t>(i)] = idx;
  }
  s.ring_count_ -= take;
  pending_total_ -= take;
  ++inflight_;
  (void)now;
}

void Engine::execute_batch(BatchWork& work) {
  Session& s = *work.session;
  const int b = work.count;
  Tensor batch(Shape{b, wb_->data().test.channels(), wb_->data().test.height(),
                     wb_->data().test.width()});
  for (int i = 0; i < b; ++i) {
    const Slot& slot = slots_[static_cast<size_t>(work.slots[static_cast<size_t>(i)])];
    std::copy(slot.input.data(), slot.input.data() + chw_, batch.data() + i * chw_);
  }
  Tensor out;
  std::exception_ptr error;
  const int64_t t0 = obs::enabled() ? obs::now_ns() : 0;
  try {
    out = lanes_[static_cast<size_t>(work.lane)]->forward(batch,
                                                          s.exec_context(work.lane, work.point));
    if (out.numel() != static_cast<int64_t>(b) * num_classes_)
      throw std::logic_error("serve: unexpected logits shape from lane forward");
  } catch (...) {
    error = std::current_exception();
  }
  if (obs::enabled() && !error) {
    obs::Collector* c = obs::collector();
    c->add("serve/" + s.name(), "batch.size", static_cast<double>(b));
    c->add("serve/" + s.name(), "batch.ns", static_cast<double>(obs::now_ns() - t0));
  }
  finish_batch(work, error ? nullptr : &out, error);
}

void Engine::finish_batch(BatchWork& work, const Tensor* logits, std::exception_ptr error) {
  const int64_t now = obs::now_ns();
  std::lock_guard<std::mutex> lk(mu_);
  Session& sess = *work.session;
  for (int i = 0; i < work.count; ++i) {
    Slot& slot = slots_[static_cast<size_t>(work.slots[static_cast<size_t>(i)])];
    if (logits) {
      const float* row = logits->data() + static_cast<int64_t>(i) * num_classes_;
      std::copy(row, row + num_classes_, slot.logits.data());
      slot.top1 = argmax_row(row, num_classes_);
    } else {
      slot.failed = true;
    }
    slot.batch_size = work.count;
    slot.point = work.point;
    slot.latency_ms = static_cast<double>(now - slot.submit_ns) / 1e6;
    slot.deadline_met = slot.deadline_ns == 0 || now <= slot.deadline_ns;
    if (!slot.deadline_met) ++stat_deadline_misses_;
    slot.done = true;
    // Feed the governor's latency window (fixed ring, no allocation).
    sess.lat_win_[static_cast<size_t>(sess.lat_idx_)] = slot.latency_ms;
    sess.lat_idx_ = (sess.lat_idx_ + 1) % static_cast<int>(sess.lat_win_.size());
    sess.lat_count_ = std::min(sess.lat_count_ + 1, static_cast<int>(sess.lat_win_.size()));
  }
  sess.requests_per_point_[static_cast<size_t>(work.point)] += work.count;
  if (sess.ladder_ && !points_meta_.empty())
    sess.energy_accum_ +=
        points_meta_[static_cast<size_t>(work.point)].energy_per_req * work.count;
  --inflight_;
  ++stat_batches_;
  stat_requests_ += work.count;
  stat_sum_batch_ += work.count;
  stat_max_batch_ = std::max<int64_t>(stat_max_batch_, work.count);
  if (work.timer_flush)
    ++stat_flush_timer_;
  else
    ++stat_flush_full_;
  if (error && !error_) error_ = error;
  cv_done_.notify_all();
  if (error) cv_free_.notify_all();
}

void Engine::record_transition(Session& s, const qos::Transition& t) {
  ++stat_qos_transitions_;
  // Start the latency window fresh: samples measured under the old point
  // would otherwise keep re-triggering (or masking) pressure on the new one
  // for a full window.
  s.lat_count_ = 0;
  s.lat_idx_ = 0;
  if (obs::enabled()) {
    obs::Json ev = obs::Json::object();
    ev["type"] = "qos_transition";
    ev["session"] = s.name_;
    ev["from"] = s.point_names_[static_cast<size_t>(t.from)];
    ev["to"] = s.point_names_[static_cast<size_t>(t.to)];
    ev["cause"] = qos::to_string(t.cause);
    ev["detail"] = t.detail;
    ev["t_ms"] = static_cast<double>(t.t_ns - t0_ns_) / 1e6;
    obs::collector()->event(std::move(ev));
  }
}

void Engine::governor_tick(int64_t now) {
  const double dt_s =
      last_gov_tick_ns_ > 0 ? static_cast<double>(now - last_gov_tick_ns_) / 1e9 : 0.0;
  for (auto& sp : sessions_) {
    Session& s = *sp;
    if (!s.governor_) continue;
    qos::GovernorSignals sig;
    sig.now_ns = now;
    if (s.lat_count_ > 0) {
      // p95 of the completed-request window; fixed-size scratch, no heap.
      std::array<double, 128> tmp;
      const int n = s.lat_count_;
      std::copy(s.lat_win_.begin(), s.lat_win_.begin() + n, tmp.begin());
      const int k = std::min(n - 1, static_cast<int>(std::ceil(0.95 * n)) - 1);
      std::nth_element(tmp.begin(), tmp.begin() + std::max(0, k), tmp.begin() + n);
      sig.p95_ms = tmp[static_cast<size_t>(std::max(0, k))];
    }
    sig.queue_depth = s.ring_count_;
    // queue_full_waits is pool-global (slots are shared), so every governed
    // session sees the engine-wide backpressure — shedding anywhere helps.
    sig.queue_full_waits = stat_queue_full_waits_ - s.last_queue_full_waits_;
    s.last_queue_full_waits_ = stat_queue_full_waits_;
    if (dt_s > 0)
      sig.energy_rate = (s.energy_accum_ - s.last_energy_accum_) / dt_s;
    s.last_energy_accum_ = s.energy_accum_;
    if (spec_.sentinel) {
      const sentinel::SentinelReport rep = s.sentinel_report();
      const int64_t checks = rep.total_checks();
      const int64_t violations = rep.total_violations();
      const int64_t degraded = rep.degraded_leaves();
      const int64_t dc = checks - s.last_sent_checks_;
      const int64_t dv = violations - s.last_sent_violations_;
      sig.violation_rate = dc > 0 ? static_cast<double>(dv) / static_cast<double>(dc) : 0.0;
      sig.new_degraded = degraded - s.last_sent_degraded_;
      s.last_sent_checks_ = checks;
      s.last_sent_violations_ = violations;
      s.last_sent_degraded_ = degraded;
    }
    if (const auto t = s.governor_->update(sig)) {
      s.active_point_ = t->to;
      record_transition(s, *t);
    }
  }
  last_gov_tick_ns_ = now;
}

void Engine::dispatcher_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (stop_) return;
    const int64_t now = obs::now_ns();
    if (qos_enabled() &&
        now - last_gov_tick_ns_ >= spec_.governor.tick_interval_ms * 1'000'000)
      governor_tick(now);
    // Pick ready sessions (full batch, or the oldest slot's flush time has
    // passed), one batch per free lane.
    int nwork = 0;
    const int max_work = static_cast<int>(lanes_.size());
    int64_t earliest_flush = 0;
    for (auto& sp : sessions_) {
      Session& s = *sp;
      if (s.ring_count_ == 0) continue;
      const Slot& oldest = slots_[static_cast<size_t>(s.ring_[static_cast<size_t>(s.ring_head_)])];
      const bool full = s.ring_count_ >= spec_.batching.max_batch;
      const bool expired = now >= oldest.flush_ns;
      if ((full || expired) && nwork < max_work) {
        works_[static_cast<size_t>(nwork)].lane = nwork;
        gather_batch(s, works_[static_cast<size_t>(nwork)], now);
        ++nwork;
        if (s.ring_count_ > 0) {
          const Slot& next = slots_[static_cast<size_t>(s.ring_[static_cast<size_t>(s.ring_head_)])];
          if (earliest_flush == 0 || next.flush_ns < earliest_flush)
            earliest_flush = next.flush_ns;
        }
      } else if (!full) {
        if (earliest_flush == 0 || oldest.flush_ns < earliest_flush)
          earliest_flush = oldest.flush_ns;
      }
    }
    if (nwork > 0) {
      lk.unlock();
      if (nwork == 1) {
        execute_batch(works_[0]);
      } else {
        // Inter-op fan-out: each ready batch runs on its own lane; conv
        // kernels inside still parallel_for over the (cross-pool) global
        // pool — the plan_split contract.
        inter_pool_->parallel_for(
            nwork, [&](int64_t b0, int64_t b1) {
              for (int64_t w = b0; w < b1; ++w) execute_batch(works_[static_cast<size_t>(w)]);
            },
            1);
      }
      lk.lock();
      continue;
    }
    if (pending_total_ > 0 && earliest_flush > 0) {
      int64_t wait_ns = std::max<int64_t>(1000, earliest_flush - obs::now_ns());
      if (qos_enabled())
        wait_ns = std::min(wait_ns, spec_.governor.tick_interval_ms * 1'000'000);
      cv_dispatch_.wait_for(lk, std::chrono::nanoseconds(wait_ns));
    } else if (qos_enabled()) {
      // Governed engines keep ticking while idle so recovery (stepping back
      // up the ladder) does not need traffic to make progress.
      cv_dispatch_.wait_for(lk,
                            std::chrono::milliseconds(spec_.governor.tick_interval_ms));
    } else {
      cv_dispatch_.wait(lk, [&] { return stop_ || pending_total_ > 0; });
    }
  }
}

// ---------------------------------------------------------------------------
// Evaluation through the serving path

double Engine::evaluate_accuracy(Session& s, int64_t max_samples) {
  const data::Dataset& ds = wb_->data().test;
  int64_t n = ds.size();
  if (max_samples > 0) n = std::min(n, max_samples);
  const int64_t window = spec_.batching.queue_capacity;
  std::vector<Ticket> tickets(static_cast<size_t>(window));
  int64_t correct = 0;
  for (int64_t base = 0; base < n; base += window) {
    const int64_t count = std::min(window, n - base);
    for (int64_t i = 0; i < count; ++i)
      tickets[static_cast<size_t>(i)] = s.submit(ds.slice(base + i, 1).first);
    for (int64_t i = 0; i < count; ++i) {
      const Result r = s.await(tickets[static_cast<size_t>(i)]);
      if (r.top1 == ds.labels[static_cast<size_t>(base + i)]) ++correct;
    }
  }
  return n > 0 ? static_cast<double>(correct) / static_cast<double>(n) : 0.0;
}

}  // namespace axnn::serve
