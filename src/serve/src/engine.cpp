#include "axnn/serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "axnn/energy/energy.hpp"
#include "axnn/nn/serialize.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/train/evaluate.hpp"

namespace axnn::serve {

namespace {

int argmax_row(const float* row, int n) {
  int best = 0;
  for (int j = 1; j < n; ++j)
    if (row[j] > row[best]) best = j;
  return best;
}

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kServed: return "served";
    case Outcome::kShed: return "shed";
    case Outcome::kRejected: return "rejected";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Session

Ticket Session::submit(const Tensor& chw, int64_t deadline_us) {
  Engine& e = *engine_;
  if (chw.numel() != e.chw_)
    throw std::invalid_argument("Session::submit: expected " + std::to_string(e.chw_) +
                                " input elements, got " + std::to_string(chw.numel()));
  // An already-expired deadline resolves right here: it is a deadline miss
  // by definition, and burning a batch slot on work nobody can use would
  // only delay feasible requests behind it.
  if (deadline_us < 0) {
    e.stat_rejected_.fetch_add(1, kRelaxed);
    e.stat_deadline_misses_.fetch_add(1, kRelaxed);
    return Ticket{-1, 0, static_cast<int8_t>(Outcome::kRejected)};
  }
  const int64_t now = obs::now_ns();
  const int64_t deadline_ns = deadline_us > 0 ? now + deadline_us * 1000 : 0;

  std::unique_lock<std::mutex> lk(e.mu_);
  for (;;) {
    if (closing_)
      throw std::logic_error("Session::submit: session '" + name_ + "' is closing");
    if (e.stop_) throw std::runtime_error("Session::submit: engine is shutting down");
    // kShedByDeadline victim: the queued request with the earliest deadline
    // (least slack — the one most likely to miss anyway). Requests without
    // deadlines are never evicted.
    int victim_idx = -1;
    int64_t victim_deadline = 0;
    if (e.free_count_ == 0 && e.admission_.policy == AdmissionPolicy::kShedByDeadline) {
      for (const auto& sp : e.sessions_) {
        const Session& s = *sp;
        for (int i = 0; i < s.ring_count_; ++i) {
          const int idx = s.ring_[static_cast<size_t>(
              (s.ring_head_ + i) % static_cast<int>(s.ring_.size()))];
          const int64_t d = e.slots_[static_cast<size_t>(idx)].deadline_ns;
          if (d != 0 && (victim_deadline == 0 || d < victim_deadline)) {
            victim_deadline = d;
            victim_idx = idx;
          }
        }
      }
    }
    const AdmissionAction action = decide(e.admission_, e.free_count_, obs::now_ns(),
                                          deadline_ns, victim_deadline, e.service_floor_ns_);
    if (action == AdmissionAction::kAdmit) break;
    switch (action) {
      case AdmissionAction::kReject:
        e.stat_rejected_.fetch_add(1, kRelaxed);
        e.stat_deadline_misses_.fetch_add(1, kRelaxed);
        return Ticket{-1, 0, static_cast<int8_t>(Outcome::kRejected)};
      case AdmissionAction::kShedIncoming:
        e.stat_shed_.fetch_add(1, kRelaxed);
        return Ticket{-1, 0, static_cast<int8_t>(Outcome::kShed)};
      case AdmissionAction::kEvictQueued:
        e.shed_queued_slot(victim_idx, obs::now_ns());
        [[fallthrough]];  // the evicted slot frees once its owner awaits
      case AdmissionAction::kBlock:
        e.stat_queue_full_waits_.fetch_add(1, kRelaxed);
        e.cv_free_.wait(lk, [&] { return e.free_count_ > 0 || e.stop_ || closing_; });
        break;
      case AdmissionAction::kAdmit:
        break;  // unreachable
    }
  }

  const int idx = e.free_ring_[static_cast<size_t>(e.free_head_)];
  e.free_head_ = (e.free_head_ + 1) % static_cast<int>(e.free_ring_.size());
  --e.free_count_;

  Engine::Slot& slot = e.slots_[static_cast<size_t>(idx)];
  slot.session = this;
  slot.seq = e.next_seq_++;
  slot.done = false;
  slot.failed = false;
  slot.error = nullptr;
  slot.outcome = Outcome::kServed;
  slot.retries = 0;
  slot.submit_ns = now;
  slot.deadline_ns = deadline_ns;
  slot.flush_ns = now + e.spec_.batching.max_delay_us * 1000;
  if (slot.deadline_ns != 0 && slot.deadline_ns < slot.flush_ns)
    slot.flush_ns = slot.deadline_ns;
  std::copy(chw.data(), chw.data() + chw.numel(), slot.input.data());

  ring_[static_cast<size_t>((ring_head_ + ring_count_) % static_cast<int>(ring_.size()))] = idx;
  ++ring_count_;
  ++live_slots_;
  ++e.pending_total_;
  e.cv_dispatch_.notify_one();
  return Ticket{idx, slot.seq, -1};
}

Result Session::await(const Ticket& t) {
  // Instantly-resolved tickets (shed / rejected) carry their outcome and
  // never touched a slot; synthesizing the Result here keeps them stateless
  // (awaiting one twice returns the same answer).
  if (t.instant >= 0) {
    Result r;
    r.outcome = static_cast<Outcome>(t.instant);
    r.deadline_met = false;
    r.point_name = point_names_.empty() ? name_ : point_names_.front();
    return r;
  }
  Engine& e = *engine_;
  if (t.slot < 0 || t.slot >= static_cast<int>(e.slots_.size()) || t.seq == 0)
    throw std::logic_error("Session::await: invalid ticket");
  std::unique_lock<std::mutex> lk(e.mu_);
  Engine::Slot& slot = e.slots_[static_cast<size_t>(t.slot)];
  if (slot.seq != t.seq)
    throw std::logic_error("Session::await: stale ticket (already awaited?)");
  e.cv_done_.wait(lk, [&] { return slot.done; });

  const auto release = [&] {
    slot.seq = 0;
    slot.done = false;
    slot.failed = false;
    slot.session = nullptr;
    --live_slots_;
    if (closing_ && live_slots_ == 0) e.cv_done_.notify_all();
    e.recycle_slot(t.slot);
  };

  if (slot.failed) {
    const std::exception_ptr err = slot.error;
    slot.error = nullptr;
    release();
    std::rethrow_exception(err);
  }
  Result r;
  r.outcome = slot.outcome;
  if (slot.outcome == Outcome::kServed) {
    r.logits = slot.logits;
    r.top1 = slot.top1;
  }
  r.latency_ms = slot.latency_ms;
  r.batch_size = slot.batch_size;
  r.deadline_met = slot.deadline_met;
  r.point = slot.point;
  r.point_name = point_names_[static_cast<size_t>(slot.point)];
  release();
  return r;
}

const nn::ExecContext& Session::exec_context(int lane) const {
  return exec_context(lane, active_point());
}

const nn::ExecContext& Session::exec_context(int lane, int point) const {
  return points_.at(static_cast<size_t>(point)).at(static_cast<size_t>(lane)).ctx;
}

const std::string& Session::point_name(int point) const {
  return point_names_.at(static_cast<size_t>(point));
}

int Session::active_point() const {
  std::lock_guard<std::mutex> lk(engine_->mu_);
  return active_point_;
}

void Session::set_active_point(int point) {
  Engine& e = *engine_;
  std::lock_guard<std::mutex> lk(e.mu_);
  if (!governor_)
    throw std::logic_error("Session::set_active_point: session '" + name_ +
                           "' serves a single fixed plan");
  if (point < 0 || point >= num_points())
    throw std::out_of_range("Session::set_active_point: point " + std::to_string(point) +
                            " out of range [0, " + std::to_string(num_points()) + ")");
  if (point == active_point_) return;
  const qos::Transition t = governor_->force(point, obs::now_ns());
  active_point_ = point;
  e.record_transition(*this, t);
}

std::vector<qos::Transition> Session::transitions() const {
  std::lock_guard<std::mutex> lk(engine_->mu_);
  return governor_ ? governor_->transitions() : std::vector<qos::Transition>{};
}

sentinel::SentinelReport Session::sentinel_report() const {
  // points_ is swapped by Engine::reload; hold the engine mutex so the walk
  // never observes a half-swapped layout.
  std::lock_guard<std::mutex> lk(engine_->mu_);
  sentinel::SentinelReport merged;
  for (const auto& point : points_)
    for (const auto& lane : point)
      if (lane.sentinel) merged.merge(lane.sentinel->report());
  return merged;
}

// ---------------------------------------------------------------------------
// Engine lifecycle

std::unique_ptr<Engine> Engine::load(ModelSpec spec) {
  if (spec.batching.max_batch < 1 || spec.batching.queue_capacity < spec.batching.max_batch)
    throw std::invalid_argument("Engine::load: need 1 <= max_batch <= queue_capacity");
  if (spec.lanes < 1) throw std::invalid_argument("Engine::load: lanes must be >= 1");
  spec.admission.validate();
  spec.watchdog.validate();
  if (spec.checkpoint_keep < 1)
    throw std::invalid_argument("Engine::load: checkpoint_keep must be >= 1");
  // Validate the QoS ladder before any training happens — a bad points file
  // must fail in milliseconds, not after the quantization stage.
  std::vector<qos::OperatingPointSpec> qspecs;
  if (!spec.qos_points.empty()) {
    qspecs = qos::parse_points(spec.qos_points);
    spec.governor.validate();
    if (spec.qos_holdout < 0)
      throw std::invalid_argument("Engine::load: qos_holdout must be >= 0");
    if (spec.qos_latency_probes < 1)
      throw std::invalid_argument("Engine::load: qos_latency_probes must be >= 1");
  }

  // The lane count is honored as requested: lifecycle robustness needs real
  // spare lanes (a quarantined lane's batch re-runs on another replica) even
  // on a machine with fewer cores — lane workers mostly block, so
  // oversubscription just timeshares. plan_split still sizes the intra-op
  // conv pool around the lanes that can actually run concurrently.
  const ThreadPool::Split split = ThreadPool::plan_split(spec.lanes);
  if (split.inter > 1) {
    try {
      ThreadPool::set_global_threads(split.intra);
    } catch (const std::logic_error&) {
      // Global pool already pinned; lanes still work, kernels keep its size.
    }
  }

  std::unique_ptr<Engine> e(new Engine());
  e->spec_ = spec;
  e->qos_specs_ = std::move(qspecs);
  e->t0_ns_ = obs::now_ns();
  e->admission_ = spec.admission;
  e->watchdog_ = std::make_unique<Watchdog>(spec.watchdog, spec.lanes);
  if (!spec.checkpoint_dir.empty())
    e->checkpoints_ = std::make_unique<resilience::CheckpointSet>(
        resilience::CheckpointConfig{spec.checkpoint_dir, "model", spec.checkpoint_keep});

  core::WorkbenchConfig wcfg;
  wcfg.model = spec.model;
  wcfg.profile = spec.profile;
  wcfg.data_seed = spec.data_seed;
  wcfg.model_seed = spec.model_seed;
  wcfg.use_cache = spec.use_cache;
  wcfg.verbose = spec.verbose;
  e->wb_ = std::make_unique<core::Workbench>(wcfg);
  (void)e->wb_->run_quantization_stage(spec.kd_stage1);
  if (spec.finetune) {
    // With a qos ladder the fine-tune targets the best-effort point — the
    // one the deployment serves whenever it can afford to.
    const std::string& tune_plan =
        e->qos_specs_.empty() ? spec.plan : e->qos_specs_.front().plan_text;
    (void)e->wb_->run_approximation_stage(
        core::ApproxStageSetup::with_plan(nn::NetPlan::parse(tune_plan), spec.method, spec.t2));
  }

  // Lane construction is all-or-nothing: a throw here unwinds the partially
  // built engine (unique_ptr-owned lanes) and names the lane that failed.
  for (int i = 0; i < spec.lanes; ++i) {
    try {
      e->lanes_.push_back(e->wb_->clone());
    } catch (const std::exception& ex) {
      throw std::runtime_error("Engine::load: lane " + std::to_string(i) +
                               " (clone): " + ex.what());
    }
  }

  const data::Dataset& test = e->wb_->data().test;
  e->chw_ = test.channels() * test.height() * test.width();

  Session& def = e->open_session("default", "");

  // Probe once through lane 0: pins num_classes and warms the conv geometry
  // caches for the single-sample shape.
  const Tensor probe =
      e->lanes_[0]->forward(test.slice(0, 1).first, def.exec_context(0));
  e->num_classes_ = static_cast<int>(probe.shape()[probe.shape().rank() - 1]);

  if (e->qos_enabled()) {
    // Calibrate per-point metadata on lane 0, then rebuild the default
    // session's governor over the measured ladder (no ticks have run yet;
    // sessions opened later get the measured metadata directly).
    e->measure_point_metadata(def);
    def.governor_ = std::make_unique<qos::Governor>(spec.governor, e->points_meta_);
  }
  e->calibrate_service_estimates(def);
  e->capture_golden(def);
  if (e->checkpoints_) (void)e->save_checkpoint();

  if (spec.prewarm) e->prewarm_points(def.points_);

  const int cap = spec.batching.queue_capacity;
  e->slots_.resize(static_cast<size_t>(cap));
  e->free_ring_.resize(static_cast<size_t>(cap));
  for (int i = 0; i < cap; ++i) {
    e->slots_[static_cast<size_t>(i)].input = Tensor(Shape{e->chw_});
    e->slots_[static_cast<size_t>(i)].logits = Tensor(Shape{e->num_classes_});
    e->free_ring_[static_cast<size_t>(i)] = i;
  }
  e->free_count_ = cap;

  e->works_.resize(static_cast<size_t>(spec.lanes));
  for (auto& w : e->works_) w.slots.resize(static_cast<size_t>(spec.batching.max_batch));

  e->lane_state_ = std::vector<LaneState>(static_cast<size_t>(spec.lanes));
  for (int i = 0; i < spec.lanes; ++i)
    e->lane_state_[static_cast<size_t>(i)].worker =
        std::thread([raw = e.get(), i] { raw->lane_loop(i); });
  e->dispatcher_ = std::thread([raw = e.get()] { raw->dispatcher_loop(); });
  return e;
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_dispatch_.notify_all();
  cv_lane_.notify_all();
  cv_free_.notify_all();
  cv_done_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  for (auto& ls : lane_state_)
    if (ls.worker.joinable()) ls.worker.join();
}

std::vector<std::vector<Session::Lane>> Engine::build_points(
    const std::string& name, const std::vector<qos::OperatingPointSpec>& pts) {
  std::vector<std::vector<Session::Lane>> points;
  for (size_t pi = 0; pi < pts.size(); ++pi) {
    // A failure anywhere below leaks nothing (the half-built state is
    // value-owned and never installed) and names the point, lane and stage
    // that failed. Validation errors stay std::invalid_argument.
    const auto context = [&](size_t lane, const char* stage) {
      return "serve: session '" + name + "' point '" + pts[pi].name + "' lane " +
             std::to_string(lane) + " (" + stage + "): ";
    };
    const nn::NetPlan plan = [&] {
      try {
        return nn::NetPlan::parse(pts[pi].plan_text);
      } catch (const std::exception& ex) {
        throw std::invalid_argument(context(0, "parse") + ex.what());
      }
    }();
    std::vector<Session::Lane> lanes;
    for (size_t i = 0; i < lanes_.size(); ++i) {
      const char* stage = "resolve";
      try {
        Session::Lane lane;
        // Serving never fits GE (default ResolveOptions: fits are
        // training-only and plan_leaf_exec ignores them in eval contexts) —
        // resolution cost stays table-building only.
        lane.resolution = std::make_unique<nn::PlanResolution>(plan.resolve(*lanes_[i]));
        stage = "validate";
        lane.resolution->require_approximable();
        lane.resolution->require_bit_widths();
        lane.ctx =
            nn::ExecContext{.mode = nn::ExecMode::kQuantApprox}.with_plan(*lane.resolution);
        if (spec_.sentinel) {
          stage = "sentinel-calibrate";
          lane.sentinel = std::make_unique<sentinel::Sentinel>(spec_.sentinel_config);
          lane.sentinel->calibrate_plan(*lanes_[i], *lane.resolution);
          lane.ctx = lane.ctx.with_monitor(*lane.sentinel);
        }
        lanes.push_back(std::move(lane));
      } catch (const std::invalid_argument& ex) {
        throw std::invalid_argument(context(i, stage) + ex.what());
      } catch (const std::exception& ex) {
        throw std::runtime_error(context(i, stage) + ex.what());
      }
    }
    points.push_back(std::move(lanes));
  }
  return points;
}

Session& Engine::open_session(const std::string& name, const std::string& plan_text) {
  std::lock_guard<std::mutex> rlk(reload_mu_);
  for (const auto& s : sessions_)
    if (s->name() == name)
      throw std::invalid_argument("Engine::open_session: duplicate session '" + name + "'");

  // An empty plan serves the engine default: the qos ladder when one is
  // configured, spec.plan otherwise. A non-empty plan pins the session to
  // that single point (no governor), qos or not.
  const bool ladder = qos_enabled() && plan_text.empty();
  std::vector<qos::OperatingPointSpec> pts;
  if (ladder)
    pts = qos_specs_;
  else
    pts.push_back(qos::OperatingPointSpec{name, plan_text.empty() ? spec_.plan : plan_text});

  auto session = std::unique_ptr<Session>(new Session());
  session->engine_ = this;
  session->name_ = name;
  session->ladder_ = ladder;
  session->plan_text_ = ladder ? qos::to_text(qos_specs_) : pts.front().plan_text;
  session->ring_.resize(static_cast<size_t>(spec_.batching.queue_capacity));
  session->requests_per_point_.assign(pts.size(), 0);
  for (const auto& p : pts) session->point_names_.push_back(p.name);
  session->points_ = build_points(name, pts);

  if (ladder) {
    // The ladder metadata may not be measured yet (the default session is
    // opened before measure_point_metadata runs; load() rebuilds its
    // governor afterwards). Fall back to name-only metadata.
    std::vector<qos::OperatingPoint> meta = points_meta_;
    if (meta.empty())
      for (const auto& p : pts) meta.push_back(qos::OperatingPoint{p.name, p.plan_text});
    session->governor_ = std::make_unique<qos::Governor>(spec_.governor, std::move(meta));
  }

  std::lock_guard<std::mutex> lk(mu_);
  sessions_.push_back(std::move(session));
  return *sessions_.back();
}

void Engine::close_session(const std::string& name) {
  if (name == "default")
    throw std::invalid_argument("Engine::close_session: the default session cannot be closed");
  std::lock_guard<std::mutex> rlk(reload_mu_);
  std::unique_lock<std::mutex> lk(mu_);
  Session* target = nullptr;
  for (const auto& sp : sessions_)
    if (sp->name() == name) target = sp.get();
  if (!target)
    throw std::invalid_argument("Engine::close_session: no session '" + name + "'");
  if (target->closing_)
    throw std::logic_error("Engine::close_session: session '" + name + "' already closing");
  // Flip closing_ first so racing submits start throwing, then wait for
  // every slot the session still owns (queued, in flight, or done but not
  // yet awaited) to come home. Queued work still executes — close is a
  // drain, not an abort.
  target->closing_ = true;
  cv_free_.notify_all();  // wake submits blocked on backpressure
  cv_done_.wait(lk, [&] { return target->live_slots_ == 0 || stop_; });
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->get() == target) {
      sessions_.erase(it);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Calibration

void Engine::measure_point_metadata(Session& def) {
  const data::Dataset& test = wb_->data().test;
  const Tensor probe_img = test.slice(0, 1).first;
  const axmul::MultiplierSpec exact_spec = axmul::find_spec("exact").value();

  // Holdout split: the tail of the test set, disjoint from the head that
  // accuracy benches/evaluate_accuracy conventionally sample first.
  const int64_t h = std::min<int64_t>(spec_.qos_holdout, test.size());
  data::Dataset holdout;
  if (h > 0) {
    auto sl = test.slice(test.size() - h, h);
    holdout.images = sl.first;
    holdout.labels = std::move(sl.second);
  }

  points_meta_.clear();
  for (size_t p = 0; p < qos_specs_.size(); ++p) {
    const nn::PlanResolution& res = *def.points_[p][0].resolution;
    // Metadata forwards run without the sentinel monitor so calibration
    // passes never pollute serving-side violation counters.
    const nn::ExecContext ctx =
        nn::ExecContext{.mode = nn::ExecMode::kQuantApprox}.with_plan(res);

    qos::OperatingPoint op{qos_specs_[p].name, qos_specs_[p].plan_text};

    // Latency: mean of single-sample forwards on lane 0 (also refreshes
    // each leaf's last_mac_count for the energy estimate below).
    const int64_t t0 = obs::now_ns();
    for (int r = 0; r < spec_.qos_latency_probes; ++r) (void)lanes_[0]->forward(probe_img, ctx);
    op.latency_est_ms = static_cast<double>(obs::now_ns() - t0) / 1e6 /
                        static_cast<double>(spec_.qos_latency_probes);

    std::vector<std::pair<int64_t, axmul::MultiplierSpec>> shares;
    for (const auto& en : res.entries()) {
      const bool exact_mode = en.plan.mode.has_value() && *en.plan.mode != nn::ExecMode::kQuantApprox;
      shares.emplace_back(en.layer->last_mac_count(),
                          (exact_mode || en.plan.multiplier.empty())
                              ? exact_spec
                              : axmul::find_spec(en.plan.multiplier).value());
    }
    const energy::EnergyEstimate est = energy::estimate_mixed(shares);
    op.energy_per_req = est.approx_energy;
    op.energy_savings_pct = est.savings_pct;

    if (h > 0) op.holdout_acc = train::evaluate_accuracy(*lanes_[0], holdout, ctx, 32);
    points_meta_.push_back(std::move(op));
  }
}

void Engine::calibrate_service_estimates(Session& def) {
  // Admission floor: the fastest point's single-request estimate — a
  // deadline is infeasible only when *no* point can meet it. Watchdog
  // budget: the slowest point's estimate scaled to a full batch.
  double fastest_ms = 0.0, slowest_ms = 0.0;
  if (!points_meta_.empty()) {
    for (const auto& op : points_meta_) {
      if (fastest_ms == 0.0 || op.latency_est_ms < fastest_ms) fastest_ms = op.latency_est_ms;
      slowest_ms = std::max(slowest_ms, op.latency_est_ms);
    }
  } else {
    // Single-plan engine: probe the default plan directly on lane 0 (the
    // monitor is stripped so calibrated sentinel counters stay clean).
    const Tensor probe_img = wb_->data().test.slice(0, 1).first;
    nn::ExecContext ctx = def.points_[0][0].ctx;
    ctx.monitor = nullptr;
    const int probes = std::max(1, spec_.qos_latency_probes);
    const int64_t t0 = obs::now_ns();
    for (int r = 0; r < probes; ++r) (void)lanes_[0]->forward(probe_img, ctx);
    fastest_ms = slowest_ms =
        static_cast<double>(obs::now_ns() - t0) / 1e6 / static_cast<double>(probes);
  }
  service_floor_ns_ = static_cast<int64_t>(fastest_ms * 1e6);
  watchdog_->set_calibrated_budget_ns(static_cast<int64_t>(
      spec_.watchdog.budget_factor * slowest_ms * 1e6 * spec_.batching.max_batch));
}

void Engine::capture_golden(Session& def) {
  // The probation reference: one test image and its exact logits under the
  // default session's point 0 on lane 0. Every lane replica is a clone of
  // the same weights running the same deterministic kernels, so a healthy
  // lane reproduces these logits bit-exactly; a corrupted replica cannot.
  golden_input_ = wb_->data().test.slice(0, 1).first;
  nn::ExecContext ctx = def.points_[0][0].ctx;
  ctx.monitor = nullptr;
  golden_logits_ = lanes_[0]->forward(golden_input_, ctx);
}

void Engine::prewarm_points(const std::vector<std::vector<Session::Lane>>& points) {
  // Resolve every plan served traffic can need — each (point, lane, batch
  // size) combination maps to a fixed set of GEMM shapes — so the
  // dispatcher's steady state is pure plan execution: no cache mutex, no
  // plan construction, no heap allocation. Zero inputs: plans are keyed by
  // shape and multiplier, never by operand values. The warm-up context
  // drops the sentinel monitor so calibrated check counters stay clean.
  const data::Dataset& test = wb_->data().test;
  for (const auto& point : points) {
    for (size_t lane = 0; lane < lanes_.size(); ++lane) {
      nn::ExecContext warm_ctx = point[lane].ctx;
      warm_ctx.monitor = nullptr;
      for (int b = 1; b <= spec_.batching.max_batch; ++b) {
        const Tensor warm(Shape{b, test.channels(), test.height(), test.width()}, 0.0f);
        (void)lanes_[lane]->forward(warm, warm_ctx);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Reload & checkpoints

void Engine::reload(const ReloadSpec& r) {
  // One lifecycle mutation at a time; open_session/close_session also hold
  // reload_mu_, so the session list is frozen for the whole reload.
  std::lock_guard<std::mutex> rlk(reload_mu_);

  // --- Stage & validate: everything that can fail, fails here, before
  // serving is disturbed in any way. ---
  if (r.from_checkpoint && !r.weights.empty())
    throw std::invalid_argument("Engine::reload: weights and from_checkpoint are exclusive");
  if (r.from_checkpoint && !checkpoints_)
    throw std::logic_error("Engine::reload: engine was loaded without checkpoint_dir");
  if (!r.qos_points.empty() && qos_specs_.empty())
    throw std::logic_error("Engine::reload: engine was loaded without a qos ladder");
  std::vector<qos::OperatingPointSpec> new_specs;
  if (!r.qos_points.empty()) new_specs = qos::parse_points(r.qos_points);
  if (!r.plan.empty()) (void)nn::NetPlan::parse(r.plan);

  // Weights are validated into a scratch clone first: the AXNP CRC and
  // shape checks (and, for checkpoints, the generation fallback walk) all
  // happen against throwaway state.
  std::string weights_path;
  if (r.from_checkpoint) {
    auto scratch = wb_->clone();
    weights_path =
        checkpoints_->load_latest([&](const std::string& p) { nn::load_params(*scratch, p); });
  } else if (!r.weights.empty()) {
    auto scratch = wb_->clone();
    nn::load_params(*scratch, r.weights);
    weights_path = r.weights;
  }
  const bool weights_changed = !weights_path.empty();
  const bool ladder_changed = !new_specs.empty();

  // --- Pause dispatch and wait out the in-flight epoch. Queued requests
  // stay queued (they will execute under the new configuration); in-flight
  // batches finish normally under the old one — nothing fails. ---
  std::unique_lock<std::mutex> lk(mu_);
  reload_pending_ = true;
  cv_dispatch_.notify_all();
  cv_dispatch_.wait(lk, [&] {
    if (inflight_ != 0) return false;
    for (const auto& ls : lane_state_)
      if (ls.busy) return false;
    return true;
  });

  try {
    // --- Heavy rebuild, off the dispatch mutex (submits keep queueing).
    // No forward can run: dispatch is paused, probes are gated on
    // !reload_pending_, and every lane is idle. ---
    lk.unlock();
    if (weights_changed)
      for (auto& lane : lanes_) nn::load_params(*lane, weights_path);
    if (ladder_changed) qos_specs_ = new_specs;
    if (!r.plan.empty()) spec_.plan = r.plan;

    struct Staged {
      Session* session;
      std::vector<std::string> names;
      std::vector<std::vector<Session::Lane>> points;
    };
    std::vector<Staged> staged;
    for (const auto& sp : sessions_) {
      Session& s = *sp;
      std::vector<qos::OperatingPointSpec> pts;
      if (s.ladder_)
        pts = qos_specs_;
      else if (s.name_ == "default")
        pts.push_back(qos::OperatingPointSpec{s.name_, spec_.plan});
      else
        pts.push_back(qos::OperatingPointSpec{s.name_, s.plan_text_});
      Staged st;
      st.session = &s;
      for (const auto& p : pts) st.names.push_back(p.name);
      // Rebuilds resolutions AND recalibrates sentinels: new weights mean
      // new golden checksums, so the old calibration is void.
      st.points = build_points(s.name_, pts);
      staged.push_back(std::move(st));
    }

    // --- Swap: the epoch flip. Every session's serving state changes in
    // one critical section; the first post-reload batch is gathered against
    // the new points. ---
    lk.lock();
    for (auto& st : staged) {
      Session& s = *st.session;
      std::swap(s.points_, st.points);
      s.point_names_ = std::move(st.names);
      if (s.ladder_) s.plan_text_ = qos::to_text(qos_specs_);
      else if (s.name_ == "default") s.plan_text_ = spec_.plan;
      s.active_point_ = 0;
      s.requests_per_point_.assign(s.point_names_.size(), 0);
      s.lat_count_ = 0;
      s.lat_idx_ = 0;
      s.last_sent_checks_ = 0;
      s.last_sent_violations_ = 0;
      s.last_sent_degraded_ = 0;
    }
    lk.unlock();

    // --- Recalibrate the derived state against the new epoch (dispatch is
    // still paused, so lane 0 is free for metadata forwards). ---
    Session& def = *sessions_.front();
    if (qos_enabled() && (weights_changed || ladder_changed || r.remeasure))
      measure_point_metadata(def);
    for (const auto& sp : sessions_)
      if (sp->ladder_)
        sp->governor_ = std::make_unique<qos::Governor>(spec_.governor, points_meta_);
    calibrate_service_estimates(def);
    capture_golden(def);
    if (spec_.prewarm) prewarm_points(def.points_);

    lk.lock();
  } catch (...) {
    // Staging already validated everything that can reasonably fail; if the
    // rebuild still threw, resuming dispatch on half-swapped state would
    // serve garbage. Fail loudly instead.
    if (!lk.owns_lock()) lk.lock();
    reload_pending_ = false;
    cv_dispatch_.notify_all();
    throw;
  }
  stat_reloads_.fetch_add(1, kRelaxed);
  reload_pending_ = false;
  cv_dispatch_.notify_all();
  lk.unlock();
  emit_lifecycle_event("reload", -1,
                       weights_changed ? ("weights=" + weights_path) : "plans");
}

std::string Engine::save_checkpoint() {
  if (!checkpoints_)
    throw std::logic_error("Engine::save_checkpoint: engine was loaded without checkpoint_dir");
  // reload_mu_ keeps a concurrent reload from swapping weights mid-save;
  // forwards never mutate parameters, so serving can continue.
  std::lock_guard<std::mutex> rlk(reload_mu_);
  return checkpoints_->save(
      [&](const std::string& path) { nn::save_params(*lanes_[0], path); });
}

// ---------------------------------------------------------------------------
// Runtime configuration & introspection

void Engine::set_admission(const AdmissionConfig& cfg) {
  cfg.validate();
  std::lock_guard<std::mutex> lk(mu_);
  admission_ = cfg;
  // A policy flip away from kBlock should release currently-parked submits
  // so they re-decide under the new policy.
  cv_free_.notify_all();
}

AdmissionConfig Engine::admission() const {
  std::lock_guard<std::mutex> lk(mu_);
  return admission_;
}

void Engine::set_watchdog(const WatchdogConfig& cfg) {
  cfg.validate();
  std::lock_guard<std::mutex> lk(mu_);
  watchdog_->set_config(cfg);
  cv_dispatch_.notify_all();
}

LaneHealth Engine::lane_health(int lane) const {
  std::lock_guard<std::mutex> lk(mu_);
  return watchdog_->health(lane);
}

int Engine::healthy_lanes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return watchdog_->healthy();
}

int64_t Engine::service_floor_ns() const {
  std::lock_guard<std::mutex> lk(mu_);
  return service_floor_ns_;
}

void Engine::set_chaos(std::function<void(int lane, int64_t lane_batch)> hook) {
  std::lock_guard<std::mutex> lk(mu_);
  chaos_ = std::move(hook);
}

nn::Sequential& Engine::model(int lane) { return *lanes_.at(static_cast<size_t>(lane)); }

const data::SyntheticCifar& Engine::data() const { return wb_->data(); }

EngineStats Engine::stats() const {
  EngineStats s;
  s.requests = stat_requests_.load(kRelaxed);
  s.batches = stat_batches_.load(kRelaxed);
  s.flush_full = stat_flush_full_.load(kRelaxed);
  s.flush_timer = stat_flush_timer_.load(kRelaxed);
  s.max_batch = stat_max_batch_.load(kRelaxed);
  s.mean_batch = s.batches > 0
                     ? static_cast<double>(stat_sum_batch_.load(kRelaxed)) /
                           static_cast<double>(s.batches)
                     : 0.0;
  s.deadline_misses = stat_deadline_misses_.load(kRelaxed);
  s.queue_full_waits = stat_queue_full_waits_.load(kRelaxed);
  s.qos_transitions = stat_qos_transitions_.load(kRelaxed);
  s.shed = stat_shed_.load(kRelaxed);
  s.rejected = stat_rejected_.load(kRelaxed);
  s.failed_requests = stat_failed_requests_.load(kRelaxed);
  s.quarantines = stat_quarantines_.load(kRelaxed);
  s.readmissions = stat_readmissions_.load(kRelaxed);
  s.lanes_quarantined = stat_lanes_quarantined_.load(kRelaxed);
  s.requeued_batches = stat_requeued_batches_.load(kRelaxed);
  s.discarded_batches = stat_discarded_batches_.load(kRelaxed);
  s.probes = stat_probes_.load(kRelaxed);
  s.reloads = stat_reloads_.load(kRelaxed);
  return s;
}

qos::QosReport Engine::qos_report() const {
  std::lock_guard<std::mutex> lk(mu_);
  qos::QosReport r;
  r.points = points_meta_;
  r.t0_ns = t0_ns_;
  const int64_t now = obs::now_ns();
  for (const auto& sp : sessions_) {
    const Session& s = *sp;
    if (!s.governor_) continue;
    qos::SessionQos q;
    q.session = s.name_;
    q.active = s.active_point_;
    q.requests_per_point = s.requests_per_point_;
    q.time_in_point_ms = s.governor_->time_in_point_ms(now);
    q.transitions = s.governor_->transitions();
    r.sessions.push_back(std::move(q));
  }
  return r;
}

void Engine::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return (pending_total_ == 0 && inflight_ == 0) || stop_; });
}

// ---------------------------------------------------------------------------
// Slot bookkeeping (engine mutex held)

void Engine::recycle_slot(int idx) {
  Slot& slot = slots_[static_cast<size_t>(idx)];
  if (slot.pinned > 0) {
    // An abandoned straggler may still read this slot's input; hand it back
    // to the pool only when the last pin drops (unpin_slot).
    slot.free_pending = true;
    return;
  }
  free_ring_[static_cast<size_t>((free_head_ + free_count_) %
                                 static_cast<int>(free_ring_.size()))] = idx;
  ++free_count_;
  cv_free_.notify_one();
}

void Engine::unpin_slot(int idx) {
  Slot& slot = slots_[static_cast<size_t>(idx)];
  if (--slot.pinned > 0) return;
  if (slot.free_pending) {
    slot.free_pending = false;
    free_ring_[static_cast<size_t>((free_head_ + free_count_) %
                                   static_cast<int>(free_ring_.size()))] = idx;
    ++free_count_;
    cv_free_.notify_one();
  }
}

void Engine::resolve_slot_failed(Slot& slot, std::exception_ptr error, int64_t now) {
  slot.failed = true;
  slot.error = error ? error
                     : std::make_exception_ptr(std::runtime_error(
                           "serve: request abandoned after " + std::to_string(slot.retries) +
                           " re-dispatches (lane budget overruns)"));
  slot.done = true;
  slot.latency_ms = static_cast<double>(now - slot.submit_ns) / 1e6;
  stat_failed_requests_.fetch_add(1, kRelaxed);
}

void Engine::shed_queued_slot(int idx, int64_t now) {
  Slot& slot = slots_[static_cast<size_t>(idx)];
  Session& s = *slot.session;
  // Unlink from the session's pending ring, preserving order of the rest.
  const int size = static_cast<int>(s.ring_.size());
  int pos = -1;
  for (int i = 0; i < s.ring_count_; ++i)
    if (s.ring_[static_cast<size_t>((s.ring_head_ + i) % size)] == idx) {
      pos = i;
      break;
    }
  if (pos < 0) return;  // raced off the ring; caller re-decides
  for (int i = pos; i + 1 < s.ring_count_; ++i)
    s.ring_[static_cast<size_t>((s.ring_head_ + i) % size)] =
        s.ring_[static_cast<size_t>((s.ring_head_ + i + 1) % size)];
  --s.ring_count_;
  --pending_total_;
  slot.outcome = Outcome::kShed;
  slot.done = true;
  slot.deadline_met = false;
  slot.batch_size = 0;
  slot.top1 = -1;
  slot.point = s.active_point_;
  slot.latency_ms = static_cast<double>(now - slot.submit_ns) / 1e6;
  stat_shed_.fetch_add(1, kRelaxed);
  cv_done_.notify_all();
}

void Engine::requeue_work(BatchWork& work, std::exception_ptr error, bool pin, int64_t now) {
  // Re-insert at the ring *front*, reverse order, so the batch's requests
  // keep their original FIFO position for the re-dispatch.
  for (int i = work.count - 1; i >= 0; --i) {
    const int idx = work.slots[static_cast<size_t>(i)];
    Slot& slot = slots_[static_cast<size_t>(idx)];
    if (pin) ++slot.pinned;
    if (++slot.retries > watchdog_->config().max_retries) {
      resolve_slot_failed(slot, error, now);
      continue;
    }
    Session& s = *slot.session;
    const int size = static_cast<int>(s.ring_.size());
    s.ring_head_ = (s.ring_head_ - 1 + size) % size;
    s.ring_[static_cast<size_t>(s.ring_head_)] = idx;
    ++s.ring_count_;
    ++pending_total_;
  }
  --inflight_;
  stat_requeued_batches_.fetch_add(1, kRelaxed);
  cv_done_.notify_all();
  cv_dispatch_.notify_one();
}

void Engine::quarantine_lane(int lane, int64_t now, const std::string& reason) {
  if (!watchdog_->quarantine(lane, now, reason)) return;
  stat_quarantines_.fetch_add(1, kRelaxed);
  stat_lanes_quarantined_.fetch_add(1, kRelaxed);
  emit_lifecycle_event("lane_quarantined", lane, reason);
}

void Engine::emit_lifecycle_event(const char* type, int lane, const std::string& detail) {
  if (!obs::enabled()) return;
  obs::Json ev = obs::Json::object();
  ev["type"] = type;
  if (lane >= 0) ev["lane"] = lane;
  ev["detail"] = detail;
  ev["t_ms"] = static_cast<double>(obs::now_ns() - t0_ns_) / 1e6;
  obs::collector()->event(std::move(ev));
}

// ---------------------------------------------------------------------------
// Dispatcher & lane workers

void Engine::gather_batch(Session& s, BatchWork& work, int64_t now) {
  const int take = std::min(s.ring_count_, spec_.batching.max_batch);
  work.session = &s;
  work.count = take;
  work.timer_flush = s.ring_count_ < spec_.batching.max_batch;
  work.abandoned = false;
  // Epoch flip: stamp the active point now, under the mutex. The batch
  // executes entirely under this point even if the governor (or a manual
  // set_active_point) moves the session before it finishes.
  work.point = s.active_point_;
  for (int i = 0; i < take; ++i) {
    const int idx = s.ring_[static_cast<size_t>(s.ring_head_)];
    s.ring_head_ = (s.ring_head_ + 1) % static_cast<int>(s.ring_.size());
    work.slots[static_cast<size_t>(i)] = idx;
  }
  s.ring_count_ -= take;
  pending_total_ -= take;
  ++inflight_;
  (void)now;
}

void Engine::execute_batch(BatchWork& work) {
  Session& s = *work.session;
  const int b = work.count;
  Tensor batch(Shape{b, wb_->data().test.channels(), wb_->data().test.height(),
                     wb_->data().test.width()});
  for (int i = 0; i < b; ++i) {
    const Slot& slot = slots_[static_cast<size_t>(work.slots[static_cast<size_t>(i)])];
    std::copy(slot.input.data(), slot.input.data() + chw_, batch.data() + i * chw_);
  }
  Tensor out;
  std::exception_ptr error;
  const int64_t t0 = obs::enabled() ? obs::now_ns() : 0;
  try {
    if (chaos_) chaos_(work.lane, work.lane_batch);
    out = lanes_[static_cast<size_t>(work.lane)]->forward(batch,
                                                          s.exec_context(work.lane, work.point));
    if (out.numel() != static_cast<int64_t>(b) * num_classes_)
      throw std::logic_error("serve: unexpected logits shape from lane forward");
  } catch (...) {
    error = std::current_exception();
  }
  if (obs::enabled() && !error) {
    obs::Collector* c = obs::collector();
    c->add("serve/" + s.name(), "batch.size", static_cast<double>(b));
    c->add("serve/" + s.name(), "batch.ns", static_cast<double>(obs::now_ns() - t0));
  }
  finish_batch(work, error ? nullptr : &out, error);
}

void Engine::finish_batch(BatchWork& work, const Tensor* logits, std::exception_ptr error) {
  const int64_t now = obs::now_ns();
  std::lock_guard<std::mutex> lk(mu_);
  LaneState& ls = lane_state_[static_cast<size_t>(work.lane)];

  if (work.abandoned) {
    // The watchdog already re-queued this batch on a healthy lane; whatever
    // the straggler computed is stale. Drop the pins so the slots can
    // recycle, discard the result, free the lane (it stays quarantined
    // until probation clears it).
    for (int i = 0; i < work.count; ++i) unpin_slot(work.slots[static_cast<size_t>(i)]);
    stat_discarded_batches_.fetch_add(1, kRelaxed);
    ls.busy = false;
    cv_dispatch_.notify_all();
    return;
  }

  Session& sess = *work.session;
  if (error) {
    // A faulting lane is a sick lane: quarantine it and give the batch's
    // requests another chance on a healthy replica (bounded by the per-slot
    // retry budget — requests from a poisoned *input* would otherwise
    // bounce forever).
    std::string what = "execution fault";
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& ex) {
      what = std::string("execution fault: ") + ex.what();
    } catch (...) {
    }
    quarantine_lane(work.lane, now, what);
    requeue_work(work, error, /*pin=*/false, now);
    ls.busy = false;
    cv_dispatch_.notify_all();
    return;
  }

  for (int i = 0; i < work.count; ++i) {
    Slot& slot = slots_[static_cast<size_t>(work.slots[static_cast<size_t>(i)])];
    const float* row = logits->data() + static_cast<int64_t>(i) * num_classes_;
    std::copy(row, row + num_classes_, slot.logits.data());
    slot.top1 = argmax_row(row, num_classes_);
    slot.outcome = Outcome::kServed;
    slot.batch_size = work.count;
    slot.point = work.point;
    slot.latency_ms = static_cast<double>(now - slot.submit_ns) / 1e6;
    slot.deadline_met = slot.deadline_ns == 0 || now <= slot.deadline_ns;
    if (!slot.deadline_met) stat_deadline_misses_.fetch_add(1, kRelaxed);
    slot.done = true;
    // Feed the governor's latency window (fixed ring, no allocation).
    sess.lat_win_[static_cast<size_t>(sess.lat_idx_)] = slot.latency_ms;
    sess.lat_idx_ = (sess.lat_idx_ + 1) % static_cast<int>(sess.lat_win_.size());
    sess.lat_count_ = std::min(sess.lat_count_ + 1, static_cast<int>(sess.lat_win_.size()));
  }
  sess.requests_per_point_[static_cast<size_t>(work.point)] += work.count;
  if (sess.ladder_ && !points_meta_.empty())
    sess.energy_accum_ +=
        points_meta_[static_cast<size_t>(work.point)].energy_per_req * work.count;

  // Sentinel strike detection: a lane whose batches keep tripping the
  // sentinel has a replica-local problem (the other lanes run the same
  // plan over the same weights without violations) — strike it out.
  Session::Lane& lane_ctx =
      sess.points_[static_cast<size_t>(work.point)][static_cast<size_t>(work.lane)];
  if (lane_ctx.sentinel) {
    const int64_t total = lane_ctx.sentinel->report().total_violations();
    const int64_t delta = total - lane_ctx.last_violations;
    lane_ctx.last_violations = total;
    if (watchdog_->on_batch_violations(work.lane, delta, now)) {
      stat_quarantines_.fetch_add(1, kRelaxed);
      stat_lanes_quarantined_.fetch_add(1, kRelaxed);
      emit_lifecycle_event("lane_quarantined", work.lane, watchdog_->lane(work.lane).reason);
    }
  }

  --inflight_;
  stat_batches_.fetch_add(1, kRelaxed);
  stat_requests_.fetch_add(work.count, kRelaxed);
  stat_sum_batch_.fetch_add(work.count, kRelaxed);
  int64_t prev_max = stat_max_batch_.load(kRelaxed);
  while (prev_max < work.count &&
         !stat_max_batch_.compare_exchange_weak(prev_max, work.count, kRelaxed)) {
  }
  if (work.timer_flush)
    stat_flush_timer_.fetch_add(1, kRelaxed);
  else
    stat_flush_full_.fetch_add(1, kRelaxed);
  ls.busy = false;
  cv_done_.notify_all();
  cv_dispatch_.notify_all();
}

bool Engine::run_probe(int lane) {
  // The default session's point 0 context on this lane, monitor stripped
  // (a probe must not disturb sentinel counters). The copy happens under
  // mu_ (open_session may grow sessions_ concurrently); reload cannot swap
  // the contexts mid-probe — the lane is busy, and reload waits for idle.
  nn::ExecContext ctx;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ctx = sessions_.front()->points_[0][static_cast<size_t>(lane)].ctx;
    ctx.monitor = nullptr;
  }
  bool pass = false;
  try {
    const Tensor out = lanes_[static_cast<size_t>(lane)]->forward(golden_input_, ctx);
    pass = out.numel() == golden_logits_.numel() &&
           std::equal(out.data(), out.data() + out.numel(), golden_logits_.data());
  } catch (...) {
    pass = false;
  }

  const int64_t now = obs::now_ns();
  std::lock_guard<std::mutex> lk(mu_);
  stat_probes_.fetch_add(1, kRelaxed);
  if (watchdog_->on_probe_result(lane, pass, now)) {
    stat_readmissions_.fetch_add(1, kRelaxed);
    stat_lanes_quarantined_.fetch_sub(1, kRelaxed);
    emit_lifecycle_event("lane_readmitted", lane, "probation passed");
  }
  LaneState& ls = lane_state_[static_cast<size_t>(lane)];
  ls.busy = false;
  ls.probe = false;
  cv_dispatch_.notify_all();
  return pass;
}

void Engine::lane_loop(int lane) {
  LaneState& ls = lane_state_[static_cast<size_t>(lane)];
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    cv_lane_.wait(lk, [&] { return stop_ || ls.busy; });
    if (stop_) return;
    const bool probe = ls.probe;
    lk.unlock();
    if (probe)
      (void)run_probe(lane);
    else
      execute_batch(works_[static_cast<size_t>(lane)]);
    lk.lock();
  }
}

void Engine::watchdog_tick(int64_t now) {
  const WatchdogConfig& cfg = watchdog_->config();
  for (int i = 0; i < static_cast<int>(lane_state_.size()); ++i) {
    LaneState& ls = lane_state_[static_cast<size_t>(i)];
    BatchWork& work = works_[static_cast<size_t>(i)];
    if (cfg.enabled && ls.busy && !ls.probe && !work.abandoned &&
        watchdog_->overdue(ls.busy_since_ns, now)) {
      // Straggler: the lane blew its batch budget. Abandon the batch — the
      // slots go back to the front of their queue (pinned: the straggler
      // may still be reading their inputs) and re-run on a healthy lane;
      // the straggler's eventual result is discarded in finish_batch.
      work.abandoned = true;
      quarantine_lane(i, now,
                      "batch budget overrun (> " +
                          std::to_string(watchdog_->budget_ns() / 1'000'000) + "ms)");
      requeue_work(work, nullptr, /*pin=*/true, now);
    }
    if (!ls.busy && !reload_pending_ && watchdog_->health(i) == LaneHealth::kQuarantined &&
        watchdog_->probe_due(i, now)) {
      ls.busy = true;
      ls.probe = true;
      ls.busy_since_ns = now;
      watchdog_->probe_started(i, now);
      cv_lane_.notify_all();
    }
  }
}

void Engine::governor_tick(int64_t now) {
  const double dt_s =
      last_gov_tick_ns_ > 0 ? static_cast<double>(now - last_gov_tick_ns_) / 1e9 : 0.0;
  for (auto& sp : sessions_) {
    Session& s = *sp;
    if (!s.governor_) continue;
    qos::GovernorSignals sig;
    sig.now_ns = now;
    if (s.lat_count_ > 0) {
      // p95 of the completed-request window; fixed-size scratch, no heap.
      std::array<double, 128> tmp;
      const int n = s.lat_count_;
      std::copy(s.lat_win_.begin(), s.lat_win_.begin() + n, tmp.begin());
      const int k = std::min(n - 1, static_cast<int>(std::ceil(0.95 * n)) - 1);
      std::nth_element(tmp.begin(), tmp.begin() + std::max(0, k), tmp.begin() + n);
      sig.p95_ms = tmp[static_cast<size_t>(std::max(0, k))];
    }
    sig.queue_depth = s.ring_count_;
    // queue_full_waits is pool-global (slots are shared), so every governed
    // session sees the engine-wide backpressure — shedding anywhere helps.
    const int64_t waits = stat_queue_full_waits_.load(kRelaxed);
    sig.queue_full_waits = waits - s.last_queue_full_waits_;
    s.last_queue_full_waits_ = waits;
    if (dt_s > 0)
      sig.energy_rate = (s.energy_accum_ - s.last_energy_accum_) / dt_s;
    s.last_energy_accum_ = s.energy_accum_;
    if (spec_.sentinel) {
      sentinel::SentinelReport rep;
      for (const auto& point : s.points_)
        for (const auto& lane : point)
          if (lane.sentinel) rep.merge(lane.sentinel->report());
      const int64_t checks = rep.total_checks();
      const int64_t violations = rep.total_violations();
      const int64_t degraded = rep.degraded_leaves();
      const int64_t dc = checks - s.last_sent_checks_;
      const int64_t dv = violations - s.last_sent_violations_;
      sig.violation_rate = dc > 0 ? static_cast<double>(dv) / static_cast<double>(dc) : 0.0;
      sig.new_degraded = degraded - s.last_sent_degraded_;
      s.last_sent_checks_ = checks;
      s.last_sent_violations_ = violations;
      s.last_sent_degraded_ = degraded;
    }
    // Quarantined lanes are shrunk capacity: sustained health pressure
    // until probation readmits them.
    sig.lanes_quarantined = watchdog_->quarantined();
    if (const auto t = s.governor_->update(sig)) {
      s.active_point_ = t->to;
      record_transition(s, *t);
    }
  }
  last_gov_tick_ns_ = now;
}

void Engine::record_transition(Session& s, const qos::Transition& t) {
  stat_qos_transitions_.fetch_add(1, kRelaxed);
  // Start the latency window fresh: samples measured under the old point
  // would otherwise keep re-triggering (or masking) pressure on the new one
  // for a full window.
  s.lat_count_ = 0;
  s.lat_idx_ = 0;
  if (obs::enabled()) {
    obs::Json ev = obs::Json::object();
    ev["type"] = "qos_transition";
    ev["session"] = s.name_;
    ev["from"] = s.point_names_[static_cast<size_t>(t.from)];
    ev["to"] = s.point_names_[static_cast<size_t>(t.to)];
    ev["cause"] = qos::to_string(t.cause);
    ev["detail"] = t.detail;
    ev["t_ms"] = static_cast<double>(t.t_ns - t0_ns_) / 1e6;
    obs::collector()->event(std::move(ev));
  }
}

void Engine::dispatcher_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (stop_) return;
    const int64_t now = obs::now_ns();
    if (qos_enabled() &&
        now - last_gov_tick_ns_ >= spec_.governor.tick_interval_ms * 1'000'000)
      governor_tick(now);
    watchdog_tick(now);

    // Assign ready sessions (full batch, or the oldest slot's flush time
    // has passed) to idle lanes. Quarantined lanes take no traffic — unless
    // *every* lane is quarantined, where availability beats purity: serving
    // on a suspect replica is better than serving nothing, and probation
    // keeps running either way.
    int assigned = 0;
    int64_t earliest_flush = 0;
    if (!reload_pending_) {
      const bool any_healthy = watchdog_->healthy() > 0;
      int next_lane = 0;
      const int nlanes = static_cast<int>(lane_state_.size());
      const auto claim_lane = [&]() -> int {
        for (; next_lane < nlanes; ++next_lane) {
          const LaneState& ls = lane_state_[static_cast<size_t>(next_lane)];
          if (ls.busy) continue;
          if (any_healthy && watchdog_->health(next_lane) == LaneHealth::kQuarantined)
            continue;
          return next_lane++;
        }
        return -1;
      };
      for (auto& sp : sessions_) {
        Session& s = *sp;
        if (s.ring_count_ == 0) continue;
        const Slot& oldest =
            slots_[static_cast<size_t>(s.ring_[static_cast<size_t>(s.ring_head_)])];
        const bool full = s.ring_count_ >= spec_.batching.max_batch;
        const bool expired = now >= oldest.flush_ns;
        int lane = -1;
        if ((full || expired) && (lane = claim_lane()) >= 0) {
          BatchWork& work = works_[static_cast<size_t>(lane)];
          work.lane = lane;
          gather_batch(s, work, now);
          LaneState& ls = lane_state_[static_cast<size_t>(lane)];
          work.lane_batch = ls.exec_batches++;
          ls.busy = true;
          ls.probe = false;
          ls.busy_since_ns = now;
          ++assigned;
          if (s.ring_count_ > 0) {
            const Slot& next =
                slots_[static_cast<size_t>(s.ring_[static_cast<size_t>(s.ring_head_)])];
            if (earliest_flush == 0 || next.flush_ns < earliest_flush)
              earliest_flush = next.flush_ns;
          }
        } else if (!full || lane < 0) {
          if (earliest_flush == 0 || oldest.flush_ns < earliest_flush)
            earliest_flush = oldest.flush_ns;
        }
      }
    }
    if (assigned > 0) {
      cv_lane_.notify_all();
      continue;  // more sessions may be ready; re-scan before sleeping
    }

    // Sleep until the next actionable moment: a pending slot's flush, the
    // governor tick, a busy lane's budget expiry, or a quarantined lane's
    // next probation probe.
    int64_t next_ns = 0;
    const auto fold = [&](int64_t t) {
      if (t > 0 && (next_ns == 0 || t < next_ns)) next_ns = t;
    };
    if (pending_total_ > 0 && !reload_pending_) fold(earliest_flush);
    if (qos_enabled()) fold(last_gov_tick_ns_ + spec_.governor.tick_interval_ms * 1'000'000);
    if (watchdog_->config().enabled) {
      for (int i = 0; i < static_cast<int>(lane_state_.size()); ++i) {
        const LaneState& ls = lane_state_[static_cast<size_t>(i)];
        if (ls.busy && !ls.probe && !works_[static_cast<size_t>(i)].abandoned)
          fold(ls.busy_since_ns + watchdog_->budget_ns());
        if (!ls.busy && !reload_pending_ &&
            watchdog_->health(i) == LaneHealth::kQuarantined)
          fold(watchdog_->lane(i).last_probe_ns +
               watchdog_->config().probation_interval_ms * 1'000'000);
      }
    }
    if (next_ns > 0) {
      const int64_t wait_ns = std::max<int64_t>(100'000, next_ns - obs::now_ns());
      cv_dispatch_.wait_for(lk, std::chrono::nanoseconds(wait_ns));
    } else {
      // Note: during a reload pause, pending work is not actionable — stay
      // asleep until the reload completes and notifies. An idle quarantined
      // lane is actionable (its probation probe must be timed): without it a
      // straggler that finishes *after* the queue drained would leave its
      // lane quarantined forever — nothing else ever wakes the dispatcher.
      cv_dispatch_.wait(lk, [&] {
        if (stop_) return true;
        if (reload_pending_) return false;
        if (pending_total_ > 0) return true;
        if (watchdog_->config().enabled)
          for (int i = 0; i < static_cast<int>(lane_state_.size()); ++i)
            if (!lane_state_[static_cast<size_t>(i)].busy &&
                watchdog_->health(i) == LaneHealth::kQuarantined)
              return true;
        return false;
      });
    }
  }
}

// ---------------------------------------------------------------------------
// Evaluation through the serving path

double Engine::evaluate_accuracy(Session& s, int64_t max_samples) {
  const data::Dataset& ds = wb_->data().test;
  int64_t n = ds.size();
  if (max_samples > 0) n = std::min(n, max_samples);
  const int64_t window = spec_.batching.queue_capacity;
  std::vector<Ticket> tickets(static_cast<size_t>(window));
  int64_t correct = 0;
  for (int64_t base = 0; base < n; base += window) {
    const int64_t count = std::min(window, n - base);
    for (int64_t i = 0; i < count; ++i)
      tickets[static_cast<size_t>(i)] = s.submit(ds.slice(base + i, 1).first);
    for (int64_t i = 0; i < count; ++i) {
      const Result r = s.await(tickets[static_cast<size_t>(i)]);
      if (r.top1 == ds.labels[static_cast<size_t>(base + i)]) ++correct;
    }
  }
  return n > 0 ? static_cast<double>(correct) / static_cast<double>(n) : 0.0;
}

}  // namespace axnn::serve
