#include "axnn/serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "axnn/obs/telemetry.hpp"
#include "axnn/train/evaluate.hpp"

namespace axnn::serve {

namespace {

int argmax_row(const float* row, int n) {
  int best = 0;
  for (int j = 1; j < n; ++j)
    if (row[j] > row[best]) best = j;
  return best;
}

}  // namespace

// ---------------------------------------------------------------------------
// Session

Ticket Session::submit(const Tensor& chw, int64_t deadline_us) {
  Engine& e = *engine_;
  if (chw.numel() != e.chw_)
    throw std::invalid_argument("Session::submit: expected " + std::to_string(e.chw_) +
                                " input elements, got " + std::to_string(chw.numel()));
  const int64_t now = obs::now_ns();
  std::unique_lock<std::mutex> lk(e.mu_);
  if (e.error_) std::rethrow_exception(e.error_);
  if (e.free_count_ == 0) {
    ++e.stat_queue_full_waits_;
    e.cv_free_.wait(lk, [&] { return e.free_count_ > 0 || e.error_; });
    if (e.error_) std::rethrow_exception(e.error_);
  }
  const int idx = e.free_ring_[static_cast<size_t>(e.free_head_)];
  e.free_head_ = (e.free_head_ + 1) % static_cast<int>(e.free_ring_.size());
  --e.free_count_;

  Engine::Slot& slot = e.slots_[static_cast<size_t>(idx)];
  slot.session = this;
  slot.seq = e.next_seq_++;
  slot.done = false;
  slot.failed = false;
  slot.submit_ns = now;
  slot.deadline_ns = deadline_us > 0 ? now + deadline_us * 1000 : 0;
  slot.flush_ns = now + e.spec_.batching.max_delay_us * 1000;
  if (slot.deadline_ns != 0 && slot.deadline_ns < slot.flush_ns)
    slot.flush_ns = slot.deadline_ns;
  std::copy(chw.data(), chw.data() + chw.numel(), slot.input.data());

  ring_[static_cast<size_t>((ring_head_ + ring_count_) % static_cast<int>(ring_.size()))] = idx;
  ++ring_count_;
  ++e.pending_total_;
  e.cv_dispatch_.notify_one();
  return Ticket{idx, slot.seq};
}

Result Session::await(const Ticket& t) {
  Engine& e = *engine_;
  if (t.slot < 0 || t.slot >= static_cast<int>(e.slots_.size()) || t.seq == 0)
    throw std::logic_error("Session::await: invalid ticket");
  std::unique_lock<std::mutex> lk(e.mu_);
  Engine::Slot& slot = e.slots_[static_cast<size_t>(t.slot)];
  if (slot.seq != t.seq)
    throw std::logic_error("Session::await: stale ticket (already awaited?)");
  e.cv_done_.wait(lk, [&] { return slot.done; });
  if (slot.failed) {
    slot.seq = 0;  // recycle even on failure
    e.free_ring_[static_cast<size_t>((e.free_head_ + e.free_count_) %
                                     static_cast<int>(e.free_ring_.size()))] = t.slot;
    ++e.free_count_;
    e.cv_free_.notify_one();
    std::rethrow_exception(e.error_);
  }
  Result r;
  r.logits = slot.logits;
  r.top1 = slot.top1;
  r.latency_ms = slot.latency_ms;
  r.batch_size = slot.batch_size;
  r.deadline_met = slot.deadline_met;

  slot.seq = 0;
  slot.done = false;
  slot.session = nullptr;
  e.free_ring_[static_cast<size_t>((e.free_head_ + e.free_count_) %
                                   static_cast<int>(e.free_ring_.size()))] = t.slot;
  ++e.free_count_;
  e.cv_free_.notify_one();
  return r;
}

const nn::ExecContext& Session::exec_context(int lane) const {
  return lanes_.at(static_cast<size_t>(lane)).ctx;
}

sentinel::SentinelReport Session::sentinel_report() const {
  sentinel::SentinelReport merged;
  for (const auto& lane : lanes_)
    if (lane.sentinel) merged.merge(lane.sentinel->report());
  return merged;
}

// ---------------------------------------------------------------------------
// Engine lifecycle

std::unique_ptr<Engine> Engine::load(ModelSpec spec) {
  if (spec.batching.max_batch < 1 || spec.batching.queue_capacity < spec.batching.max_batch)
    throw std::invalid_argument("Engine::load: need 1 <= max_batch <= queue_capacity");
  if (spec.lanes < 1) throw std::invalid_argument("Engine::load: lanes must be >= 1");

  // Partition the machine: `lanes` concurrent batches, conv kernels get the
  // rest. The global pool size is immutable once created, so the intra hint
  // is best-effort when kernels already ran in this process.
  const ThreadPool::Split split = ThreadPool::plan_split(spec.lanes);
  spec.lanes = split.inter;
  if (split.inter > 1) {
    try {
      ThreadPool::set_global_threads(split.intra);
    } catch (const std::logic_error&) {
      // Global pool already pinned; lanes still work, kernels keep its size.
    }
  }

  std::unique_ptr<Engine> e(new Engine());
  e->spec_ = spec;

  core::WorkbenchConfig wcfg;
  wcfg.model = spec.model;
  wcfg.profile = spec.profile;
  wcfg.data_seed = spec.data_seed;
  wcfg.model_seed = spec.model_seed;
  wcfg.use_cache = spec.use_cache;
  wcfg.verbose = spec.verbose;
  e->wb_ = std::make_unique<core::Workbench>(wcfg);
  (void)e->wb_->run_quantization_stage(spec.kd_stage1);
  if (spec.finetune) {
    (void)e->wb_->run_approximation_stage(
        core::ApproxStageSetup::with_plan(nn::NetPlan::parse(spec.plan), spec.method, spec.t2));
  }

  for (int i = 0; i < spec.lanes; ++i) e->lanes_.push_back(e->wb_->clone());
  if (spec.lanes > 1) e->inter_pool_ = std::make_unique<ThreadPool>(split.inter);

  const data::Dataset& test = e->wb_->data().test;
  e->chw_ = test.channels() * test.height() * test.width();

  Session& def = e->open_session("default", spec.plan);

  // Probe once through lane 0: pins num_classes and warms the conv geometry
  // caches for the single-sample shape.
  const Tensor probe =
      e->lanes_[0]->forward(test.slice(0, 1).first, def.exec_context(0));
  e->num_classes_ = static_cast<int>(probe.shape()[probe.shape().rank() - 1]);

  const int cap = spec.batching.queue_capacity;
  e->slots_.resize(static_cast<size_t>(cap));
  e->free_ring_.resize(static_cast<size_t>(cap));
  for (int i = 0; i < cap; ++i) {
    e->slots_[static_cast<size_t>(i)].input = Tensor(Shape{e->chw_});
    e->slots_[static_cast<size_t>(i)].logits = Tensor(Shape{e->num_classes_});
    e->free_ring_[static_cast<size_t>(i)] = i;
  }
  e->free_count_ = cap;

  e->works_.resize(static_cast<size_t>(spec.lanes));
  for (auto& w : e->works_) w.slots.resize(static_cast<size_t>(spec.batching.max_batch));

  e->dispatcher_ = std::thread([raw = e.get()] { raw->dispatcher_loop(); });
  return e;
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_dispatch_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

Session& Engine::open_session(const std::string& name, const std::string& plan_text) {
  for (const auto& s : sessions_)
    if (s->name() == name)
      throw std::invalid_argument("Engine::open_session: duplicate session '" + name + "'");
  const nn::NetPlan plan = nn::NetPlan::parse(plan_text);

  auto session = std::unique_ptr<Session>(new Session());
  session->engine_ = this;
  session->name_ = name;
  session->plan_text_ = plan_text;
  session->ring_.resize(static_cast<size_t>(spec_.batching.queue_capacity));
  for (size_t i = 0; i < lanes_.size(); ++i) {
    Session::Lane lane;
    // Serving never fits GE (default ResolveOptions: fits are training-only
    // and plan_leaf_exec ignores them in eval contexts) — resolution cost
    // stays table-building only.
    lane.resolution = std::make_unique<nn::PlanResolution>(plan.resolve(*lanes_[i]));
    lane.resolution->require_approximable();
    lane.resolution->require_bit_widths();
    lane.ctx = nn::ExecContext{.mode = nn::ExecMode::kQuantApprox}.with_plan(*lane.resolution);
    if (spec_.sentinel) {
      lane.sentinel = std::make_unique<sentinel::Sentinel>(spec_.sentinel_config);
      lane.sentinel->calibrate_plan(*lanes_[i], *lane.resolution);
      lane.ctx = lane.ctx.with_monitor(*lane.sentinel);
    }
    session->lanes_.push_back(std::move(lane));
  }
  std::lock_guard<std::mutex> lk(mu_);
  sessions_.push_back(std::move(session));
  return *sessions_.back();
}

nn::Sequential& Engine::model(int lane) { return *lanes_.at(static_cast<size_t>(lane)); }

const data::SyntheticCifar& Engine::data() const { return wb_->data(); }

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  EngineStats s;
  s.requests = stat_requests_;
  s.batches = stat_batches_;
  s.flush_full = stat_flush_full_;
  s.flush_timer = stat_flush_timer_;
  s.max_batch = stat_max_batch_;
  s.mean_batch =
      stat_batches_ > 0 ? static_cast<double>(stat_sum_batch_) / static_cast<double>(stat_batches_)
                        : 0.0;
  s.deadline_misses = stat_deadline_misses_;
  s.queue_full_waits = stat_queue_full_waits_;
  return s;
}

void Engine::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return (pending_total_ == 0 && inflight_ == 0) || error_; });
  if (error_) std::rethrow_exception(error_);
}

// ---------------------------------------------------------------------------
// Dispatcher

void Engine::gather_batch(Session& s, BatchWork& work, int64_t now) {
  const int take = std::min(s.ring_count_, spec_.batching.max_batch);
  work.session = &s;
  work.count = take;
  work.timer_flush = s.ring_count_ < spec_.batching.max_batch;
  for (int i = 0; i < take; ++i) {
    const int idx = s.ring_[static_cast<size_t>(s.ring_head_)];
    s.ring_head_ = (s.ring_head_ + 1) % static_cast<int>(s.ring_.size());
    work.slots[static_cast<size_t>(i)] = idx;
  }
  s.ring_count_ -= take;
  pending_total_ -= take;
  ++inflight_;
  (void)now;
}

void Engine::execute_batch(BatchWork& work) {
  Session& s = *work.session;
  const int b = work.count;
  Tensor batch(Shape{b, wb_->data().test.channels(), wb_->data().test.height(),
                     wb_->data().test.width()});
  for (int i = 0; i < b; ++i) {
    const Slot& slot = slots_[static_cast<size_t>(work.slots[static_cast<size_t>(i)])];
    std::copy(slot.input.data(), slot.input.data() + chw_, batch.data() + i * chw_);
  }
  Tensor out;
  std::exception_ptr error;
  const int64_t t0 = obs::enabled() ? obs::now_ns() : 0;
  try {
    out = lanes_[static_cast<size_t>(work.lane)]->forward(batch,
                                                          s.exec_context(work.lane));
    if (out.numel() != static_cast<int64_t>(b) * num_classes_)
      throw std::logic_error("serve: unexpected logits shape from lane forward");
  } catch (...) {
    error = std::current_exception();
  }
  if (obs::enabled() && !error) {
    obs::Collector* c = obs::collector();
    c->add("serve/" + s.name(), "batch.size", static_cast<double>(b));
    c->add("serve/" + s.name(), "batch.ns", static_cast<double>(obs::now_ns() - t0));
  }
  finish_batch(work, error ? nullptr : &out, error);
}

void Engine::finish_batch(BatchWork& work, const Tensor* logits, std::exception_ptr error) {
  const int64_t now = obs::now_ns();
  std::lock_guard<std::mutex> lk(mu_);
  for (int i = 0; i < work.count; ++i) {
    Slot& slot = slots_[static_cast<size_t>(work.slots[static_cast<size_t>(i)])];
    if (logits) {
      const float* row = logits->data() + static_cast<int64_t>(i) * num_classes_;
      std::copy(row, row + num_classes_, slot.logits.data());
      slot.top1 = argmax_row(row, num_classes_);
    } else {
      slot.failed = true;
    }
    slot.batch_size = work.count;
    slot.latency_ms = static_cast<double>(now - slot.submit_ns) / 1e6;
    slot.deadline_met = slot.deadline_ns == 0 || now <= slot.deadline_ns;
    if (!slot.deadline_met) ++stat_deadline_misses_;
    slot.done = true;
  }
  --inflight_;
  ++stat_batches_;
  stat_requests_ += work.count;
  stat_sum_batch_ += work.count;
  stat_max_batch_ = std::max<int64_t>(stat_max_batch_, work.count);
  if (work.timer_flush)
    ++stat_flush_timer_;
  else
    ++stat_flush_full_;
  if (error && !error_) error_ = error;
  cv_done_.notify_all();
  if (error) cv_free_.notify_all();
}

void Engine::dispatcher_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (stop_) return;
    const int64_t now = obs::now_ns();
    // Pick ready sessions (full batch, or the oldest slot's flush time has
    // passed), one batch per free lane.
    int nwork = 0;
    const int max_work = static_cast<int>(lanes_.size());
    int64_t earliest_flush = 0;
    for (auto& sp : sessions_) {
      Session& s = *sp;
      if (s.ring_count_ == 0) continue;
      const Slot& oldest = slots_[static_cast<size_t>(s.ring_[static_cast<size_t>(s.ring_head_)])];
      const bool full = s.ring_count_ >= spec_.batching.max_batch;
      const bool expired = now >= oldest.flush_ns;
      if ((full || expired) && nwork < max_work) {
        works_[static_cast<size_t>(nwork)].lane = nwork;
        gather_batch(s, works_[static_cast<size_t>(nwork)], now);
        ++nwork;
        if (s.ring_count_ > 0) {
          const Slot& next = slots_[static_cast<size_t>(s.ring_[static_cast<size_t>(s.ring_head_)])];
          if (earliest_flush == 0 || next.flush_ns < earliest_flush)
            earliest_flush = next.flush_ns;
        }
      } else if (!full) {
        if (earliest_flush == 0 || oldest.flush_ns < earliest_flush)
          earliest_flush = oldest.flush_ns;
      }
    }
    if (nwork > 0) {
      lk.unlock();
      if (nwork == 1) {
        execute_batch(works_[0]);
      } else {
        // Inter-op fan-out: each ready batch runs on its own lane; conv
        // kernels inside still parallel_for over the (cross-pool) global
        // pool — the plan_split contract.
        inter_pool_->parallel_for(
            nwork, [&](int64_t b0, int64_t b1) {
              for (int64_t w = b0; w < b1; ++w) execute_batch(works_[static_cast<size_t>(w)]);
            },
            1);
      }
      lk.lock();
      continue;
    }
    if (pending_total_ > 0 && earliest_flush > 0) {
      cv_dispatch_.wait_for(lk, std::chrono::nanoseconds(std::max<int64_t>(
                                    1000, earliest_flush - obs::now_ns())));
    } else {
      cv_dispatch_.wait(lk, [&] { return stop_ || pending_total_ > 0; });
    }
  }
}

// ---------------------------------------------------------------------------
// Evaluation through the serving path

double Engine::evaluate_accuracy(Session& s, int64_t max_samples) {
  const data::Dataset& ds = wb_->data().test;
  int64_t n = ds.size();
  if (max_samples > 0) n = std::min(n, max_samples);
  const int64_t window = spec_.batching.queue_capacity;
  std::vector<Ticket> tickets(static_cast<size_t>(window));
  int64_t correct = 0;
  for (int64_t base = 0; base < n; base += window) {
    const int64_t count = std::min(window, n - base);
    for (int64_t i = 0; i < count; ++i)
      tickets[static_cast<size_t>(i)] = s.submit(ds.slice(base + i, 1).first);
    for (int64_t i = 0; i < count; ++i) {
      const Result r = s.await(tickets[static_cast<size_t>(i)]);
      if (r.top1 == ds.labels[static_cast<size_t>(base + i)]) ++correct;
    }
  }
  return n > 0 ? static_cast<double>(correct) / static_cast<double>(n) : 0.0;
}

}  // namespace axnn::serve
