#include "axnn/serve/admission.hpp"

#include <stdexcept>

namespace axnn::serve {

const char* to_string(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kBlock: return "block";
    case AdmissionPolicy::kShedNewest: return "shed-newest";
    case AdmissionPolicy::kShedByDeadline: return "shed-deadline";
  }
  return "?";
}

bool parse_admission_policy(const std::string& text, AdmissionPolicy& out) {
  if (text == "block") {
    out = AdmissionPolicy::kBlock;
  } else if (text == "shed-newest") {
    out = AdmissionPolicy::kShedNewest;
  } else if (text == "shed-deadline") {
    out = AdmissionPolicy::kShedByDeadline;
  } else {
    return false;
  }
  return true;
}

void AdmissionConfig::validate() const {
  if (service_margin <= 0)
    throw std::invalid_argument("AdmissionConfig: service_margin must be > 0");
}

AdmissionAction decide(const AdmissionConfig& cfg, int free_slots, int64_t now_ns,
                       int64_t deadline_ns, int64_t victim_deadline_ns,
                       int64_t service_floor_ns) {
  // Feasibility first: an impossible deadline is rejected whether or not the
  // pool has room — executing it would only burn a batch slot on a certain
  // miss.
  if (cfg.reject_infeasible && deadline_ns > 0 && service_floor_ns > 0) {
    const double slack = static_cast<double>(deadline_ns - now_ns);
    if (slack < static_cast<double>(service_floor_ns) * cfg.service_margin)
      return AdmissionAction::kReject;
  }
  if (free_slots > 0) return AdmissionAction::kAdmit;
  switch (cfg.policy) {
    case AdmissionPolicy::kBlock: return AdmissionAction::kBlock;
    case AdmissionPolicy::kShedNewest: return AdmissionAction::kShedIncoming;
    case AdmissionPolicy::kShedByDeadline:
      // Evict the queued request with the least slack — but only when it is
      // no more viable than the incoming one. Deadline-free queued requests
      // are never victims (they asked for best-effort, they get it).
      if (victim_deadline_ns != 0 && (deadline_ns == 0 || victim_deadline_ns <= deadline_ns))
        return AdmissionAction::kEvictQueued;
      return AdmissionAction::kShedIncoming;
  }
  return AdmissionAction::kBlock;
}

}  // namespace axnn::serve
