// axnn — in-memory labelled image dataset and minibatch iteration.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "axnn/tensor/rng.hpp"
#include "axnn/tensor/tensor.hpp"

namespace axnn::data {

struct Dataset {
  Tensor images;            ///< [N, C, H, W]
  std::vector<int> labels;  ///< N entries in [0, num_classes)

  int64_t size() const { return static_cast<int64_t>(labels.size()); }
  int64_t channels() const { return images.shape()[1]; }
  int64_t height() const { return images.shape()[2]; }
  int64_t width() const { return images.shape()[3]; }

  /// Gather the samples at `indices[begin, begin+count)` into a contiguous
  /// minibatch.
  std::pair<Tensor, std::vector<int>> gather(const std::vector<int64_t>& indices, int64_t begin,
                                             int64_t count) const;

  /// Contiguous slice [begin, begin+count).
  std::pair<Tensor, std::vector<int>> slice(int64_t begin, int64_t count) const;
};

/// Epoch-shuffled minibatch iterator.
class BatchIterator {
public:
  BatchIterator(const Dataset& ds, int64_t batch_size, Rng& rng, bool shuffle = true);

  /// Next minibatch, or false at epoch end. Call reset() to start the next
  /// epoch (reshuffles).
  bool next(Tensor& images, std::vector<int>& labels);
  void reset();

  int64_t batches_per_epoch() const;

private:
  const Dataset& ds_;
  int64_t batch_size_;
  Rng& rng_;
  bool shuffle_;
  std::vector<int64_t> order_;
  int64_t pos_ = 0;
};

}  // namespace axnn::data
