// axnn — deterministic synthetic CIFAR10-like dataset.
//
// CIFAR10 is not available offline, so experiments run on a procedurally
// generated 10-class image task with the same tensor interface (3-channel
// images, integer labels). Each class owns a prototype built from oriented
// sinusoidal textures plus signed Gaussian blobs; samples apply per-sample
// phase shifts, blob jitter, brightness variation, cross-class texture
// bleed-through and additive noise. The knobs below are calibrated so that
// FP models reach paper-like accuracy (~90%+) while quantization and
// approximation degrade it — the regime the paper's fine-tuning methods
// operate in (see DESIGN.md §2).
#pragma once

#include <cstdint>

#include "axnn/data/dataset.hpp"

namespace axnn::data {

struct SyntheticConfig {
  int64_t image_size = 16;
  int64_t channels = 3;
  int num_classes = 10;
  int64_t train_size = 4096;
  int64_t test_size = 1024;
  float noise_sigma = 0.6f;      ///< additive Gaussian pixel noise
  float texture_amp = 0.6f;      ///< amplitude of class textures
  float blob_amp = 0.8f;         ///< amplitude of class blobs
  float bleed_prob = 0.5f;       ///< prob. of mixing in a second class texture
  float bleed_amp = 0.4f;        ///< amplitude of the confuser texture
  float freq_jitter = 0.25f;     ///< per-sample texture frequency jitter
  float brightness_sigma = 0.25f;
  uint64_t seed = 0x51CA7;       ///< controls prototypes AND samples
};

struct SyntheticCifar {
  Dataset train;
  Dataset test;
  SyntheticConfig config;
};

/// Generate the dataset. Same config -> bit-identical data.
SyntheticCifar make_synthetic_cifar(const SyntheticConfig& cfg = {});

}  // namespace axnn::data
