#include "axnn/data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace axnn::data {

namespace {

struct BlobProto {
  float cx, cy, sigma, amp;  // centre (fractional), spread, signed amplitude
  int channel;
};

struct TextureProto {
  float fx, fy, phase, amp;  // spatial frequency (cycles/image), phase, amp
  int channel;
};

struct ClassProto {
  std::vector<TextureProto> textures;
  std::vector<BlobProto> blobs;
};

std::vector<ClassProto> make_prototypes(const SyntheticConfig& cfg, Rng& rng) {
  std::vector<ClassProto> protos(static_cast<size_t>(cfg.num_classes));
  for (auto& p : protos) {
    // Two textures and two blobs per class, on random channels.
    for (int t = 0; t < 2; ++t) {
      TextureProto tx;
      tx.fx = static_cast<float>(rng.uniform(0.5, 3.5));
      tx.fy = static_cast<float>(rng.uniform(0.5, 3.5));
      tx.phase = static_cast<float>(rng.uniform(0.0, 2.0 * M_PI));
      tx.amp = cfg.texture_amp * static_cast<float>(rng.uniform(0.7, 1.3));
      tx.channel = static_cast<int>(rng.uniform_int(cfg.channels));
      p.textures.push_back(tx);
    }
    for (int b = 0; b < 2; ++b) {
      BlobProto bl;
      bl.cx = static_cast<float>(rng.uniform(0.2, 0.8));
      bl.cy = static_cast<float>(rng.uniform(0.2, 0.8));
      bl.sigma = static_cast<float>(rng.uniform(0.08, 0.2));
      bl.amp = cfg.blob_amp * static_cast<float>(rng.uniform(0.0, 1.0) < 0.5 ? -1.0 : 1.0) *
               static_cast<float>(rng.uniform(0.7, 1.3));
      bl.channel = static_cast<int>(rng.uniform_int(cfg.channels));
      p.blobs.push_back(bl);
    }
  }
  return protos;
}

void render_texture(float* img, const SyntheticConfig& cfg, const TextureProto& tx,
                    float phase_shift_x, float phase_shift_y, float gain) {
  const int64_t s = cfg.image_size;
  float* plane = img + tx.channel * s * s;
  const float kx = 2.0f * static_cast<float>(M_PI) * tx.fx / static_cast<float>(s);
  const float ky = 2.0f * static_cast<float>(M_PI) * tx.fy / static_cast<float>(s);
  for (int64_t y = 0; y < s; ++y)
    for (int64_t x = 0; x < s; ++x)
      plane[y * s + x] += gain * tx.amp *
                          std::sin(kx * (static_cast<float>(x) + phase_shift_x) +
                                   ky * (static_cast<float>(y) + phase_shift_y) + tx.phase);
}

void render_blob(float* img, const SyntheticConfig& cfg, const BlobProto& bl, float jx,
                 float jy) {
  const int64_t s = cfg.image_size;
  float* plane = img + bl.channel * s * s;
  const float cx = (bl.cx + jx) * static_cast<float>(s);
  const float cy = (bl.cy + jy) * static_cast<float>(s);
  const float inv2s2 = 1.0f / (2.0f * bl.sigma * bl.sigma * static_cast<float>(s * s));
  for (int64_t y = 0; y < s; ++y)
    for (int64_t x = 0; x < s; ++x) {
      const float dx = static_cast<float>(x) - cx;
      const float dy = static_cast<float>(y) - cy;
      plane[y * s + x] += bl.amp * std::exp(-(dx * dx + dy * dy) * inv2s2);
    }
}

void render_sample(float* img, const SyntheticConfig& cfg,
                   const std::vector<ClassProto>& protos, int label, Rng& rng) {
  const int64_t s = cfg.image_size;
  const int64_t total = cfg.channels * s * s;
  std::fill(img, img + total, 0.0f);

  const ClassProto& p = protos[static_cast<size_t>(label)];
  const float shift_x = static_cast<float>(rng.uniform(0.0, static_cast<double>(s)));
  const float shift_y = static_cast<float>(rng.uniform(0.0, static_cast<double>(s)));
  for (auto tx : p.textures) {
    // Per-sample frequency jitter blurs class boundaries (intra-class
    // variation the model has to generalise over).
    tx.fx *= 1.0f + cfg.freq_jitter * static_cast<float>(rng.normal(0.0, 1.0)) * 0.3f;
    tx.fy *= 1.0f + cfg.freq_jitter * static_cast<float>(rng.normal(0.0, 1.0)) * 0.3f;
    render_texture(img, cfg, tx, shift_x, shift_y, 1.0f);
  }
  for (const auto& bl : p.blobs)
    render_blob(img, cfg, bl, static_cast<float>(rng.uniform(-0.08, 0.08)),
                static_cast<float>(rng.uniform(-0.08, 0.08)));

  // Cross-class bleed-through: a weak copy of another class's texture makes
  // classes overlap, keeping the task non-trivial.
  if (rng.uniform() < cfg.bleed_prob) {
    const int other =
        static_cast<int>(rng.uniform_int(cfg.num_classes - 1));
    const int confuser = other >= label ? other + 1 : other;
    const auto& q = protos[static_cast<size_t>(confuser)];
    for (const auto& tx : q.textures)
      render_texture(img, cfg, tx, shift_x, shift_y, cfg.bleed_amp / cfg.texture_amp * 0.5f);
  }

  const float brightness = 1.0f + static_cast<float>(rng.normal(0.0, cfg.brightness_sigma));
  for (int64_t i = 0; i < total; ++i) {
    img[i] = img[i] * brightness + static_cast<float>(rng.normal(0.0, cfg.noise_sigma));
    img[i] = std::clamp(img[i], -2.0f, 2.0f);
  }
}

Dataset make_split(const SyntheticConfig& cfg, const std::vector<ClassProto>& protos,
                   int64_t count, Rng& rng) {
  Dataset ds;
  ds.images = Tensor(Shape{count, cfg.channels, cfg.image_size, cfg.image_size});
  ds.labels.resize(static_cast<size_t>(count));
  const int64_t stride = cfg.channels * cfg.image_size * cfg.image_size;
  for (int64_t i = 0; i < count; ++i) {
    const int label = static_cast<int>(i % cfg.num_classes);  // balanced classes
    ds.labels[static_cast<size_t>(i)] = label;
    render_sample(ds.images.data() + i * stride, cfg, protos, label, rng);
  }
  return ds;
}

}  // namespace

SyntheticCifar make_synthetic_cifar(const SyntheticConfig& cfg) {
  Rng proto_rng(cfg.seed);
  const auto protos = make_prototypes(cfg, proto_rng);
  Rng train_rng(cfg.seed ^ 0x7221A1Full);
  Rng test_rng(cfg.seed ^ 0x7E57DA7Aull);
  SyntheticCifar out;
  out.config = cfg;
  out.train = make_split(cfg, protos, cfg.train_size, train_rng);
  out.test = make_split(cfg, protos, cfg.test_size, test_rng);
  return out;
}

}  // namespace axnn::data
