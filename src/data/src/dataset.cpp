#include "axnn/data/dataset.hpp"

#include <cstring>
#include <numeric>
#include <stdexcept>

namespace axnn::data {

std::pair<Tensor, std::vector<int>> Dataset::gather(const std::vector<int64_t>& indices,
                                                    int64_t begin, int64_t count) const {
  if (begin < 0 || begin + count > static_cast<int64_t>(indices.size()))
    throw std::out_of_range("Dataset::gather: range out of bounds");
  const int64_t c = channels(), h = height(), w = width();
  const int64_t stride = c * h * w;
  Tensor out(Shape{count, c, h, w});
  std::vector<int> lab(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    const int64_t src = indices[static_cast<size_t>(begin + i)];
    if (src < 0 || src >= size()) throw std::out_of_range("Dataset::gather: bad index");
    std::memcpy(out.data() + i * stride, images.data() + src * stride,
                static_cast<size_t>(stride) * sizeof(float));
    lab[static_cast<size_t>(i)] = labels[static_cast<size_t>(src)];
  }
  return {std::move(out), std::move(lab)};
}

std::pair<Tensor, std::vector<int>> Dataset::slice(int64_t begin, int64_t count) const {
  std::vector<int64_t> idx(static_cast<size_t>(count));
  std::iota(idx.begin(), idx.end(), begin);
  return gather(idx, 0, count);
}

BatchIterator::BatchIterator(const Dataset& ds, int64_t batch_size, Rng& rng, bool shuffle)
    : ds_(ds), batch_size_(batch_size), rng_(rng), shuffle_(shuffle) {
  if (batch_size_ <= 0) throw std::invalid_argument("BatchIterator: batch_size must be > 0");
  order_.resize(static_cast<size_t>(ds.size()));
  std::iota(order_.begin(), order_.end(), 0);
  reset();
}

void BatchIterator::reset() {
  pos_ = 0;
  if (shuffle_) rng_.shuffle(order_);
}

int64_t BatchIterator::batches_per_epoch() const {
  return (ds_.size() + batch_size_ - 1) / batch_size_;
}

bool BatchIterator::next(Tensor& images, std::vector<int>& labels) {
  if (pos_ >= ds_.size()) return false;
  const int64_t count = std::min(batch_size_, ds_.size() - pos_);
  auto [imgs, labs] = ds_.gather(order_, pos_, count);
  images = std::move(imgs);
  labels = std::move(labs);
  pos_ += count;
  return true;
}

}  // namespace axnn::data
