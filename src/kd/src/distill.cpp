#include "axnn/kd/distill.hpp"

#include <stdexcept>

#include "axnn/tensor/ops.hpp"

namespace axnn::kd {

nn::LossResult soft_cross_entropy(const Tensor& student_logits, const Tensor& teacher_logits,
                                  float temperature) {
  if (!student_logits.same_shape(teacher_logits))
    throw std::invalid_argument("soft_cross_entropy: logits shape mismatch");
  if (student_logits.shape().rank() != 2)
    throw std::invalid_argument("soft_cross_entropy: expected [N, C]");
  if (temperature <= 0.0f)
    throw std::invalid_argument("soft_cross_entropy: temperature must be > 0");

  const int64_t n = student_logits.shape()[0];
  const Tensor pt = ops::softmax(teacher_logits, temperature);
  const Tensor ps = ops::softmax(student_logits, temperature);
  const Tensor log_ps = ops::log_softmax(student_logits, temperature);

  nn::LossResult r;
  const double t2 = static_cast<double>(temperature) * temperature;
  double loss = 0.0;
  for (int64_t i = 0; i < pt.numel(); ++i) loss -= static_cast<double>(pt[i]) * log_ps[i];
  r.value = t2 * loss / static_cast<double>(n);

  // d/ds of T^2 * CE(pt, softmax(s/T)) = T * (ps - pt); mean over batch.
  r.grad = Tensor(student_logits.shape());
  const float scale = temperature / static_cast<float>(n);
  for (int64_t i = 0; i < r.grad.numel(); ++i) r.grad[i] = scale * (ps[i] - pt[i]);
  return r;
}

nn::LossResult distillation_loss(const Tensor& student_logits, const Tensor& teacher_logits,
                                 const std::vector<int>& labels, float temperature) {
  nn::LossResult hard = nn::cross_entropy(student_logits, labels);
  const nn::LossResult soft = soft_cross_entropy(student_logits, teacher_logits, temperature);
  hard.value += soft.value;
  ops::add_inplace(hard.grad, soft.grad);
  return hard;
}

}  // namespace axnn::kd
