// axnn — knowledge-distillation losses (paper Sec. III-A, Eqs. 1-3).
//
// ApproxKD is a two-stage distillation:
//   stage 1 (quantization): teacher = FP model, student = 8A4W model,
//       C_s1(y_q) = C_hard(y_q) + C_soft(y_q | y, T1);
//   stage 2 (approximation): teacher = quantized model, student =
//       approximate model, with a higher temperature T2 > T1,
//       C_s2(y_approx) = C_hard(y_approx) + C_soft(y_approx | y_q, T2).
//
// The soft loss is scaled by T^2 so its gradient magnitude stays comparable
// to the hard loss across temperatures (Hinton et al. [3]).
#pragma once

#include <vector>

#include "axnn/nn/loss.hpp"
#include "axnn/tensor/tensor.hpp"

namespace axnn::kd {

/// Soft cross-entropy between student and (fixed) teacher logits at
/// temperature T (Eq. 2):
///   C_soft = -T^2 * mean_i sum_k softmax(t_i/T)_k * log softmax(s_i/T)_k
/// Gradient w.r.t. student logits: T * (softmax(s/T) - softmax(t/T)) / N.
nn::LossResult soft_cross_entropy(const Tensor& student_logits, const Tensor& teacher_logits,
                                  float temperature);

/// Combined distillation loss C = C_hard(student, labels) + C_soft(student |
/// teacher, T) — the per-stage cost function of ApproxKD (Eqs. C_s1 / C_s2).
nn::LossResult distillation_loss(const Tensor& student_logits, const Tensor& teacher_logits,
                                 const std::vector<int>& labels, float temperature);

}  // namespace axnn::kd
