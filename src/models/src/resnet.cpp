#include "axnn/models/resnet.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "axnn/models/blocks.hpp"
#include "axnn/nn/batchnorm.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/nn/linear.hpp"
#include "axnn/nn/pooling.hpp"

namespace axnn::models {

std::unique_ptr<nn::Sequential> make_resnet(const ResNetConfig& cfg) {
  if (cfg.blocks_per_stage <= 0) throw std::invalid_argument("make_resnet: blocks_per_stage");
  Rng rng(cfg.seed);
  const auto width = [&](int64_t base) {
    return std::max<int64_t>(4, static_cast<int64_t>(std::lround(
                                    static_cast<double>(base) * cfg.width_mult)));
  };
  const int64_t w1 = width(16), w2 = width(32), w3 = width(64);

  const int depth = 6 * cfg.blocks_per_stage + 2;
  auto net = std::make_unique<nn::Sequential>("resnet" + std::to_string(depth));
  net->emplace<nn::Conv2d>(nn::Conv2dConfig{3, w1, 3, 1, 1, 1, false}, rng);
  net->emplace<nn::BatchNorm2d>(w1);
  net->emplace<nn::ReLU>();

  const int64_t widths[3] = {w1, w2, w3};
  int64_t in_ch = w1;
  for (int stage = 0; stage < 3; ++stage) {
    const int64_t out_ch = widths[stage];
    for (int b = 0; b < cfg.blocks_per_stage; ++b) {
      const int64_t stride = (b == 0 && stage > 0) ? 2 : 1;
      net->emplace<BasicBlock>(in_ch, out_ch, stride, rng);
      in_ch = out_ch;
    }
  }

  net->emplace<nn::GlobalAvgPool>();
  net->emplace<nn::Linear>(w3, cfg.num_classes, rng);
  return net;
}

}  // namespace axnn::models
