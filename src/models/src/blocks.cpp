#include "axnn/models/blocks.hpp"

#include <stdexcept>

#include "axnn/nn/batchnorm.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/tensor/ops.hpp"

namespace axnn::models {

using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Conv2dConfig;
using nn::ExecContext;
using nn::ReLU;
using nn::ReLU6;

BasicBlock::BasicBlock(int64_t in_channels, int64_t out_channels, int64_t stride, Rng& rng)
    : main_("basic_block_main") {
  main_.emplace<Conv2d>(
      Conv2dConfig{in_channels, out_channels, 3, stride, 1, 1, /*bias=*/false}, rng);
  main_.emplace<BatchNorm2d>(out_channels);
  main_.emplace<ReLU>();
  main_.emplace<Conv2d>(Conv2dConfig{out_channels, out_channels, 3, 1, 1, 1, false}, rng);
  main_.emplace<BatchNorm2d>(out_channels);

  if (stride != 1 || in_channels != out_channels) {
    shortcut_ = std::make_unique<nn::Sequential>("basic_block_shortcut");
    shortcut_->emplace<Conv2d>(
        Conv2dConfig{in_channels, out_channels, 1, stride, 0, 1, false}, rng);
    shortcut_->emplace<BatchNorm2d>(out_channels);
  }
}

Tensor BasicBlock::forward(const Tensor& x, const ExecContext& ctx) {
  // Telemetry path segments match children() order (plan paths; the names
  // are unique siblings, so no "#k" suffix is ever needed here).
  Tensor a;
  {
    obs::ScopedPath scope("basic_block_main");
    a = main_.forward(x, ctx);
  }
  Tensor b;
  if (shortcut_) {
    obs::ScopedPath scope("basic_block_shortcut");
    b = shortcut_->forward(x, ctx);
  } else {
    b = x;
  }
  Tensor y = ops::add(a, b);
  relu_mask_ = Tensor(y.shape());
  for (int64_t i = 0; i < y.numel(); ++i) {
    const bool pos = y[i] > 0.0f;
    relu_mask_[i] = pos ? 1.0f : 0.0f;
    if (!pos) y[i] = 0.0f;
  }
  return y;
}

Tensor BasicBlock::backward(const Tensor& dy) {
  if (dy.shape() != relu_mask_.shape())
    throw std::invalid_argument("BasicBlock::backward: dy shape mismatch");
  Tensor dz = ops::mul(dy, relu_mask_);
  Tensor da = main_.backward(dz);
  Tensor db = shortcut_ ? shortcut_->backward(dz) : dz;
  return ops::add(da, db);
}

std::vector<nn::Layer*> BasicBlock::children() {
  std::vector<nn::Layer*> c{&main_};
  if (shortcut_) c.push_back(shortcut_.get());
  return c;
}

InvertedResidual::InvertedResidual(int64_t in_channels, int64_t out_channels, int64_t stride,
                                   int64_t expand_ratio, Rng& rng)
    : path_("inverted_residual_path") {
  if (expand_ratio < 1) throw std::invalid_argument("InvertedResidual: expand_ratio >= 1");
  const int64_t hidden = in_channels * expand_ratio;
  use_skip_ = (stride == 1 && in_channels == out_channels);

  if (expand_ratio != 1) {
    path_.emplace<Conv2d>(Conv2dConfig{in_channels, hidden, 1, 1, 0, 1, false}, rng);
    path_.emplace<BatchNorm2d>(hidden);
    path_.emplace<ReLU6>();
  }
  // Depthwise 3x3.
  path_.emplace<Conv2d>(Conv2dConfig{hidden, hidden, 3, stride, 1, hidden, false}, rng);
  path_.emplace<BatchNorm2d>(hidden);
  path_.emplace<ReLU6>();
  // Linear bottleneck projection.
  path_.emplace<Conv2d>(Conv2dConfig{hidden, out_channels, 1, 1, 0, 1, false}, rng);
  path_.emplace<BatchNorm2d>(out_channels);
}

Tensor InvertedResidual::forward(const Tensor& x, const ExecContext& ctx) {
  Tensor y;
  {
    obs::ScopedPath scope("inverted_residual_path");
    y = path_.forward(x, ctx);
  }
  if (use_skip_) ops::add_inplace(y, x);
  return y;
}

Tensor InvertedResidual::backward(const Tensor& dy) {
  Tensor dx = path_.backward(dy);
  if (use_skip_) ops::add_inplace(dx, dy);
  return dx;
}

}  // namespace axnn::models
