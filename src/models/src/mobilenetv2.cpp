#include "axnn/models/mobilenetv2.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "axnn/models/blocks.hpp"
#include "axnn/nn/batchnorm.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/nn/linear.hpp"
#include "axnn/nn/pooling.hpp"

namespace axnn::models {

namespace {
struct BottleneckSpec {
  int64_t expand, channels, repeats, stride;
};
}  // namespace

std::unique_ptr<nn::Sequential> make_mobilenet_v2(const MobileNetV2Config& cfg) {
  Rng rng(cfg.seed);
  const auto width = [&](int64_t base) {
    return std::max<int64_t>(4, static_cast<int64_t>(std::lround(
                                    static_cast<double>(base) * cfg.width_mult)));
  };

  // (t, c, n, s) — CIFAR variant: first strides kept at 1.
  const std::vector<BottleneckSpec> full = {
      {1, 16, 1, 1}, {6, 24, 2, 1}, {6, 32, 3, 2}, {6, 64, 4, 2},
      {6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
  };
  const std::vector<BottleneckSpec> small = {
      {1, 16, 1, 1}, {6, 24, 2, 1}, {6, 32, 2, 2}, {6, 64, 2, 2}, {6, 96, 1, 1},
  };
  const auto& specs = cfg.small_preset ? small : full;
  const int64_t head = cfg.small_preset ? width(256) : width(1280);

  auto net = std::make_unique<nn::Sequential>("mobilenetv2");
  const int64_t stem = width(32);
  net->emplace<nn::Conv2d>(nn::Conv2dConfig{3, stem, 3, 1, 1, 1, false}, rng);
  net->emplace<nn::BatchNorm2d>(stem);
  net->emplace<nn::ReLU6>();

  int64_t in_ch = stem;
  for (const auto& s : specs) {
    const int64_t out_ch = width(s.channels);
    for (int64_t r = 0; r < s.repeats; ++r) {
      const int64_t stride = (r == 0) ? s.stride : 1;
      net->emplace<InvertedResidual>(in_ch, out_ch, stride, s.expand, rng);
      in_ch = out_ch;
    }
  }

  net->emplace<nn::Conv2d>(nn::Conv2dConfig{in_ch, head, 1, 1, 0, 1, false}, rng);
  net->emplace<nn::BatchNorm2d>(head);
  net->emplace<nn::ReLU6>();
  net->emplace<nn::GlobalAvgPool>();
  net->emplace<nn::Linear>(head, cfg.num_classes, rng);
  return net;
}

}  // namespace axnn::models
