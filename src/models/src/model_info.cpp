#include "axnn/models/model_info.hpp"

namespace axnn::models {

ModelInfo inspect_model(nn::Layer& model, int64_t channels, int64_t height, int64_t width) {
  ModelInfo info;
  info.name = model.name();
  info.parameters = nn::count_parameters(model);
  Tensor dummy(Shape{1, channels, height, width}, 0.0f);
  (void)model.forward(dummy, nn::ExecContext::fp());
  info.macs_per_sample = nn::collect_mac_count(model);
  return info;
}

}  // namespace axnn::models
