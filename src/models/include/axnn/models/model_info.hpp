// axnn — parameter and MAC accounting (Table I of the paper).
#pragma once

#include <cstdint>
#include <string>

#include "axnn/nn/layer.hpp"

namespace axnn::models {

struct ModelInfo {
  std::string name;
  int64_t parameters = 0;
  int64_t macs_per_sample = 0;
};

/// Run a single dummy forward (batch of one) to measure per-sample MACs and
/// count trainable parameters.
ModelInfo inspect_model(nn::Layer& model, int64_t channels, int64_t height, int64_t width);

}  // namespace axnn::models
