// axnn — composite residual blocks (ResNet basic block, MobileNetV2
// inverted residual).
#pragma once

#include <memory>
#include <optional>

#include "axnn/nn/activations.hpp"
#include "axnn/nn/sequential.hpp"

namespace axnn::models {

/// ResNet basic block: relu(main(x) + shortcut(x)), with
/// main = conv3x3(s)-bn-relu-conv3x3(1)-bn and shortcut = identity or
/// conv1x1(s)-bn when the shape changes.
class BasicBlock final : public nn::Layer {
public:
  BasicBlock(int64_t in_channels, int64_t out_channels, int64_t stride, Rng& rng);

  std::string name() const override { return "basic_block"; }
  Tensor forward(const Tensor& x, const nn::ExecContext& ctx) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<nn::Layer*> children() override;

private:
  nn::Sequential main_;
  std::unique_ptr<nn::Sequential> shortcut_;  ///< null = identity
  Tensor relu_mask_;
};

/// MobileNetV2 inverted residual: optional skip over
/// [1x1 expand - bn - relu6] (omitted when expand == 1), 3x3 depthwise(s) -
/// bn - relu6, 1x1 project - bn (linear bottleneck).
class InvertedResidual final : public nn::Layer {
public:
  InvertedResidual(int64_t in_channels, int64_t out_channels, int64_t stride,
                   int64_t expand_ratio, Rng& rng);

  std::string name() const override { return "inverted_residual"; }
  Tensor forward(const Tensor& x, const nn::ExecContext& ctx) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<nn::Layer*> children() override { return {&path_}; }

  bool has_skip() const { return use_skip_; }

private:
  nn::Sequential path_;
  bool use_skip_ = false;
};

}  // namespace axnn::models
