// axnn — CIFAR-style ResNets (He et al. [6]): ResNet20 and ResNet32.
//
// Topology: conv3x3(3->w) - bn - relu, three stages of n basic blocks with
// widths {w, 2w, 4w} (stride 2 at stage transitions), global average pool,
// fully-connected classifier. ResNet20: n = 3; ResNet32: n = 5.
//
// `width_mult` scales the base width w = 16 to fit the CPU compute budget
// of this reproduction (DESIGN.md §2); the topology is unchanged.
#pragma once

#include <memory>

#include "axnn/nn/sequential.hpp"

namespace axnn::models {

struct ResNetConfig {
  int blocks_per_stage = 3;  ///< 3 -> ResNet20, 5 -> ResNet32
  float width_mult = 1.0f;
  int num_classes = 10;
  uint64_t seed = 42;
};

std::unique_ptr<nn::Sequential> make_resnet(const ResNetConfig& cfg);

inline std::unique_ptr<nn::Sequential> make_resnet20(float width_mult = 1.0f,
                                                     uint64_t seed = 42) {
  return make_resnet({3, width_mult, 10, seed});
}

inline std::unique_ptr<nn::Sequential> make_resnet32(float width_mult = 1.0f,
                                                     uint64_t seed = 42) {
  return make_resnet({5, width_mult, 10, seed});
}

}  // namespace axnn::models
