// axnn — MobileNetV2 (Sandler et al. [7]), CIFAR-style variant.
//
// Inverted residual bottleneck network. The CIFAR variant keeps stride 1 in
// the stem and first two bottleneck groups (32x32-class inputs are too small
// for the ImageNet downsampling schedule). A reduced preset (fewer
// bottleneck repeats, narrower head) is provided to fit this reproduction's
// CPU budget; set `small_preset = false` for the full (t,c,n,s) table.
#pragma once

#include <memory>

#include "axnn/nn/sequential.hpp"

namespace axnn::models {

struct MobileNetV2Config {
  float width_mult = 1.0f;
  int num_classes = 10;
  bool small_preset = true;
  uint64_t seed = 42;
};

std::unique_ptr<nn::Sequential> make_mobilenet_v2(const MobileNetV2Config& cfg = {});

}  // namespace axnn::models
