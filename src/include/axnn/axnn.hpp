// axnn — umbrella header (the library's one public include).
//
// Reproduction of "Knowledge Distillation and Gradient Estimation for Active
// Error Compensation in Approximate Neural Networks" (DATE 2021).
//
// Experimentation quickstart (training-side API):
//   axnn::core::Workbench wb({.model = axnn::core::ModelKind::kResNet20,
//                             .profile = axnn::core::BenchProfile::from_env()});
//   wb.run_quantization_stage(/*use_kd=*/true);
//   auto run = wb.run_approximation_stage(axnn::core::ApproxStageSetup::uniform(
//       "trunc5", axnn::train::Method::kApproxKD_GE, /*t2=*/5.0f));
//
// Inference quickstart (serving-side API, DESIGN.md §5g):
//   auto engine = axnn::serve::Engine::load({.plan = "default=trunc5"});
//   auto& s = engine->session();
//   auto r = s.await(s.submit(image));
//
// Link axnn::axnn; tools/check_headers.sh verifies this header compiles
// standalone.
#pragma once

#include "axnn/approx/approx_gemm.hpp"
#include "axnn/approx/signed_lut.hpp"
#include "axnn/axmul/adder.hpp"
#include "axnn/axmul/evoapprox_like.hpp"
#include "axnn/axmul/multiplier.hpp"
#include "axnn/axmul/registry.hpp"
#include "axnn/axmul/stats.hpp"
#include "axnn/axmul/truncated.hpp"
#include "axnn/core/pipeline.hpp"
#include "axnn/core/plan_io.hpp"
#include "axnn/core/profile.hpp"
#include "axnn/core/report_adapters.hpp"
#include "axnn/core/table.hpp"
#include "axnn/data/dataset.hpp"
#include "axnn/data/synthetic.hpp"
#include "axnn/energy/energy.hpp"
#include "axnn/ge/error_fit.hpp"
#include "axnn/ge/fit_registry.hpp"
#include "axnn/ge/monte_carlo.hpp"
#include "axnn/kd/distill.hpp"
#include "axnn/kernels/gemm.hpp"
#include "axnn/kernels/int_gemm.hpp"
#include "axnn/kernels/isa.hpp"
#include "axnn/kernels/plan.hpp"
#include "axnn/kernels/scratch.hpp"
#include "axnn/kernels/signed_lut.hpp"
#include "axnn/models/blocks.hpp"
#include "axnn/models/mobilenetv2.hpp"
#include "axnn/models/model_info.hpp"
#include "axnn/models/resnet.hpp"
#include "axnn/nn/activations.hpp"
#include "axnn/nn/batchnorm.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/nn/layer.hpp"
#include "axnn/nn/linear.hpp"
#include "axnn/nn/loss.hpp"
#include "axnn/nn/monitor.hpp"
#include "axnn/nn/plan.hpp"
#include "axnn/nn/pooling.hpp"
#include "axnn/nn/sequential.hpp"
#include "axnn/nn/serialize.hpp"
#include "axnn/nn/sgd.hpp"
#include "axnn/obs/bench.hpp"
#include "axnn/obs/json.hpp"
#include "axnn/obs/report.hpp"
#include "axnn/obs/stats.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/qos/governor.hpp"
#include "axnn/qos/operating_point.hpp"
#include "axnn/quant/calibration.hpp"
#include "axnn/quant/quantizer.hpp"
#include "axnn/resilience/checkpoint.hpp"
#include "axnn/resilience/crc32.hpp"
#include "axnn/resilience/fault.hpp"
#include "axnn/resilience/guard.hpp"
#include "axnn/search/pareto.hpp"
#include "axnn/search/search.hpp"
#include "axnn/sentinel/sentinel.hpp"
#include "axnn/serve/admission.hpp"
#include "axnn/serve/chaos.hpp"
#include "axnn/serve/engine.hpp"
#include "axnn/serve/loadgen.hpp"
#include "axnn/serve/watchdog.hpp"
#include "axnn/tensor/gemm.hpp"
#include "axnn/tensor/ops.hpp"
#include "axnn/tensor/rng.hpp"
#include "axnn/tensor/shape.hpp"
#include "axnn/tensor/tensor.hpp"
#include "axnn/tensor/threadpool.hpp"
#include "axnn/train/evaluate.hpp"
#include "axnn/train/finetune.hpp"
#include "axnn/train/trainer.hpp"
