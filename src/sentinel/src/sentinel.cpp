#include "axnn/sentinel/sentinel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "axnn/approx/kernels.hpp"
#include "axnn/axmul/registry.hpp"
#include "axnn/kernels/plan.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/nn/linear.hpp"
#include "axnn/nn/qutils.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/tensor/buffer_pool.hpp"

namespace axnn::sentinel {
namespace {

/// Violation events recorded per leaf before the event stream is muted for
/// that leaf (metrics keep counting) — a stuck-at LUT fault fires on every
/// batch and would otherwise flood the report.
constexpr int kEventCap = 32;

}  // namespace

int64_t SentinelReport::total_checks() const {
  int64_t s = 0;
  for (const auto& l : leaves) s += l.gemm_checks + l.range_checks;
  return s;
}

int64_t SentinelReport::total_violations() const {
  int64_t s = 0;
  for (const auto& l : leaves) s += l.abft_violations + l.weight_violations + l.range_violations;
  return s;
}

int64_t SentinelReport::total_reexecs() const {
  int64_t s = 0;
  for (const auto& l : leaves) s += l.reexecs;
  return s;
}

int64_t SentinelReport::degraded_leaves() const {
  int64_t s = 0;
  for (const auto& l : leaves) s += l.degraded ? 1 : 0;
  return s;
}

double SentinelReport::violation_rate() const {
  const int64_t checks = total_checks();
  return checks > 0 ? static_cast<double>(total_violations()) / static_cast<double>(checks) : 0.0;
}

std::string SentinelReport::summary() const {
  int64_t abft = 0, weight = 0, range = 0;
  for (const auto& l : leaves) {
    abft += l.abft_violations;
    weight += l.weight_violations;
    range += l.range_violations;
  }
  std::ostringstream os;
  os << leaves.size() << " leaves, " << (abft + weight + range) << " violations (" << abft
     << " abft/" << weight << " weight/" << range << " range), " << total_reexecs()
     << " re-execs, " << degraded_leaves() << " degraded";
  return os.str();
}

namespace {

// Counter folding saturates instead of wrapping: reports merged in a loop
// (long-lived serving engines fold per-lane/per-point reports every tick)
// must never turn a huge count into a negative one.
int64_t sat_add(int64_t a, int64_t b) {
  int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) return std::numeric_limits<int64_t>::max();
  return r;
}

}  // namespace

void SentinelReport::merge(const SentinelReport& other) {
  for (const auto& o : other.leaves) {
    LeafStats* mine = nullptr;
    for (auto& l : leaves)
      if (l.path == o.path) {
        mine = &l;
        break;
      }
    if (!mine) {
      leaves.push_back(o);
      continue;
    }
    mine->gemm_checks = sat_add(mine->gemm_checks, o.gemm_checks);
    mine->range_checks = sat_add(mine->range_checks, o.range_checks);
    mine->abft_violations = sat_add(mine->abft_violations, o.abft_violations);
    mine->weight_violations = sat_add(mine->weight_violations, o.weight_violations);
    mine->range_violations = sat_add(mine->range_violations, o.range_violations);
    mine->reexecs = sat_add(mine->reexecs, o.reexecs);
    mine->degraded = mine->degraded || o.degraded;
    mine->max_rel_dev = std::max(mine->max_rel_dev, o.max_rel_dev);
  }
}

Sentinel::Sentinel(SentinelConfig cfg) : cfg_(cfg) {}

void Sentinel::calibrate_leaf(const nn::GemmLeaf& leaf, const approx::SignedMulTable* tab,
                              const std::string& mul_id, bool runs_approx) {
  LeafState st;
  st.path = leaf.path;
  st.index = static_cast<int64_t>(leaves_.size());
  st.stats.path = leaf.path;

  int64_t groups = 0, rows = 0, cols = 0;
  if (auto* cv = dynamic_cast<nn::Conv2d*>(leaf.layer)) {
    if (!cv->calibrated())
      throw std::logic_error("Sentinel: leaf '" + leaf.path +
                             "' is not calibrated; run the quantization stage first");
    groups = cv->config().groups;
    rows = cv->config().out_channels / groups;
    cols = leaf.dot_length;
    st.golden_w = nn::quantize_i8(cv->weight().value, cv->weight_qparams());
    st.qrange = static_cast<double>(cv->act_qparams().range());
    const quant::RangeObserver& ob = cv->act_observer();
    st.range_bound = ob.seen() ? std::max(static_cast<double>(ob.max_abs()), st.qrange) : st.qrange;
    const double clip = ob.seen() ? ob.clip_fraction(cv->act_qparams()) : 0.0;
    st.clip_limit = std::min(0.5, cfg_.clip_scale * clip + cfg_.clip_floor);
  } else if (auto* fc = dynamic_cast<nn::Linear*>(leaf.layer)) {
    if (!fc->calibrated())
      throw std::logic_error("Sentinel: leaf '" + leaf.path +
                             "' is not calibrated; run the quantization stage first");
    groups = 1;
    rows = fc->out_features();
    cols = fc->in_features();
    st.golden_w = nn::quantize_i8(fc->weight().value, fc->weight_qparams());
    st.qrange = static_cast<double>(fc->act_qparams().range());
    const quant::RangeObserver& ob = fc->act_observer();
    st.range_bound = ob.seen() ? std::max(static_cast<double>(ob.max_abs()), st.qrange) : st.qrange;
    const double clip = ob.seen() ? ob.clip_fraction(fc->act_qparams()) : 0.0;
    st.clip_limit = std::min(0.5, cfg_.clip_scale * clip + cfg_.clip_floor);
  } else {
    throw std::logic_error("Sentinel: leaf '" + leaf.path + "' is neither Conv2d nor Linear");
  }

  st.rows_per_group = rows;
  st.golden_wsum.assign(static_cast<size_t>(groups * cols), 0);
  for (int64_t g = 0; g < groups; ++g) {
    const int8_t* wg = st.golden_w.data() + g * rows * cols;
    int64_t* sums = st.golden_wsum.data() + g * cols;
    for (int64_t kk = 0; kk < cols; ++kk) {
      int64_t s = 0;
      for (int64_t i = 0; i < rows; ++i) s += wg[i * cols + kk];
      sums[kk] = s;
    }
  }

  if (runs_approx && tab != nullptr) {
    st.fit = &fits_.fit_for_shape(*tab, mul_id, leaf.dot_length, cfg_.mc);
    st.elem_dev = (st.fit->a - st.fit->b) / 2.0;
    st.golden_tab = golden_table_for(mul_id);
  }

  leaves_.emplace(leaf.layer, std::move(st));
}

const approx::SignedMulTable* Sentinel::golden_table_for(const std::string& mul_id) {
  auto it = golden_tabs_.find(mul_id);
  if (it == golden_tabs_.end())
    // Rebuild from the registry, not from the runtime table — pristine by
    // construction even if the caller's table is already corrupted.
    it = golden_tabs_.emplace(mul_id, approx::SignedMulTable(axmul::make_lut(mul_id))).first;
  return &it->second;
}

void Sentinel::calibrate_uniform(nn::Layer& root, const approx::SignedMulTable& tab,
                                 const std::string& mul_id) {
  std::lock_guard<std::mutex> lk(mu_);
  leaves_.clear();
  resolution_ = nullptr;
  for (const nn::GemmLeaf& leaf : nn::enumerate_gemm_leaves(root))
    calibrate_leaf(leaf, &tab, mul_id, /*runs_approx=*/true);
}

void Sentinel::calibrate_plan(nn::Layer& root, nn::PlanResolution& resolution) {
  std::lock_guard<std::mutex> lk(mu_);
  (void)root;
  leaves_.clear();
  resolution_ = &resolution;
  for (const nn::ResolvedLayerPlan& e : resolution.entries()) {
    nn::GemmLeaf leaf;
    leaf.path = e.path;
    leaf.layer = e.layer;
    leaf.dot_length = e.dot_length;
    const bool exact_override =
        e.plan.mode.has_value() && *e.plan.mode != nn::ExecMode::kQuantApprox;
    if (exact_override) {
      calibrate_leaf(leaf, nullptr, "", /*runs_approx=*/false);
    } else if (e.mul != nullptr) {
      calibrate_leaf(leaf, e.mul, e.plan.multiplier, /*runs_approx=*/true);
    } else {
      // The leaf would run through the context-wide fallback table, whose
      // identity the resolution does not know — no tolerance can be fitted.
      throw std::logic_error("Sentinel::calibrate_plan: leaf '" + e.path +
                             "' has no plan multiplier and no exact/float mode override; "
                             "use calibrate_uniform for context-fallback runs");
    }
  }
}

bool Sentinel::force_exact(const nn::Layer& leaf) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = leaves_.find(&leaf);
  return it != leaves_.end() && it->second.stats.degraded &&
         cfg_.policy.repair == DegradationPolicy::RepairMode::kExact;
}

void Sentinel::record_violation(LeafState& st, const char* kind, double deviation,
                                double tolerance) {
  if (!obs::enabled()) return;
  obs::Collector* c = obs::collector();
  c->add(st.path, std::string("sentinel.") + kind + "_violations", 1.0);
  if (st.events_emitted >= kEventCap) return;
  ++st.events_emitted;
  obs::Json ev = obs::Json::object();
  ev["type"] = "sentinel.violation";
  ev["kind"] = kind;
  ev["path"] = st.path;
  ev["deviation"] = deviation;
  ev["tolerance"] = tolerance;
  c->event(std::move(ev));
}

void Sentinel::maybe_degrade(LeafState& st, const nn::Layer& leaf) {
  if (st.stats.degraded) return;
  const int64_t checksum = st.stats.abft_violations + st.stats.weight_violations;
  const int64_t threshold = std::max<int64_t>(1, cfg_.policy.degrade_after);
  if (checksum < threshold) return;
  st.stats.degraded = true;
  bool rewrote = false;
  if (resolution_ != nullptr && cfg_.policy.rewrite_plan &&
      cfg_.policy.repair == DegradationPolicy::RepairMode::kExact)
    rewrote = resolution_->override_mode(leaf, nn::ExecMode::kQuantExact);
  if (obs::enabled()) {
    obs::Collector* c = obs::collector();
    c->add(st.path, "sentinel.degraded", 1.0);
    obs::Json ev = obs::Json::object();
    ev["type"] = "sentinel.degraded";
    ev["path"] = st.path;
    ev["violations"] = static_cast<double>(checksum);
    ev["plan_rewritten"] = rewrote;
    c->event(std::move(ev));
  }
}

void Sentinel::on_leaf_input(const nn::Layer& leaf, const Tensor& x) {
  if (!cfg_.range_guard) return;
  auto it = leaves_.find(&leaf);  // read-only after calibrate; no lock needed
  if (it == leaves_.end()) return;
  LeafState& st = it->second;

  const int64_t numel = x.numel();
  double mx = 0.0;
  int64_t clipped = 0;
  for (int64_t i = 0; i < numel; ++i) {
    const double a = std::fabs(static_cast<double>(x[i]));
    if (a > mx) mx = a;
    if (a > st.qrange) ++clipped;
  }
  const double clip_rate =
      numel > 0 ? static_cast<double>(clipped) / static_cast<double>(numel) : 0.0;
  const double bound = cfg_.range_scale * st.range_bound;
  const bool bad = !std::isfinite(mx) || mx > bound || clip_rate > st.clip_limit;

  std::lock_guard<std::mutex> lk(mu_);
  ++st.stats.range_checks;
  if (bad) {
    ++st.stats.range_violations;
    record_violation(st, "range", mx > bound || !std::isfinite(mx) ? mx : clip_rate,
                     mx > bound || !std::isfinite(mx) ? bound : st.clip_limit);
  }
}

bool Sentinel::on_leaf_gemm(const nn::Layer& leaf, int64_t group, bool approx, const int8_t* w,
                            const int8_t* x, int32_t* c, int64_t m, int64_t k, int64_t n,
                            const approx::SignedMulTable* tab) {
  if (!cfg_.abft) return false;
  auto it = leaves_.find(&leaf);  // read-only after calibrate; no lock needed
  if (it == leaves_.end()) return false;
  LeafState& st = it->second;
  const bool golden_mode = cfg_.policy.repair == DegradationPolicy::RepairMode::kGoldenTable;

  // A degraded leaf under kGoldenTable stops verifying: the runtime table
  // is no longer trusted, so every pass recomputes from the golden weights
  // and the registry-pristine table — this also catches faults too small
  // for the calibrated tolerance.
  if (st.stats.degraded && golden_mode && cfg_.policy.reexec) {
    const int8_t* rw = (group + 1) * m * k <= static_cast<int64_t>(st.golden_w.numel())
                           ? st.golden_w.data() + group * m * k
                           : w;
    if (approx && st.golden_tab != nullptr)
      kernels::gemm_approx({}, rw, x, c, m, k, n, *st.golden_tab);
    else
      kernels::gemm_exact({}, rw, x, c, m, k, n);
    std::lock_guard<std::mutex> lk(mu_);
    ++st.stats.gemm_checks;
    ++st.stats.reexecs;
    return true;
  }

  // Pooled: a monitored forward runs this per leaf, and the serving steady
  // state must stay allocation-free (test_serve's instrumented operator new).
  std::vector<int64_t, PoolAllocator<int64_t>> actual(static_cast<size_t>(n));
  std::vector<int64_t, PoolAllocator<int64_t>> predicted(static_cast<size_t>(n));
  std::vector<int64_t, PoolAllocator<int64_t>> wsum(static_cast<size_t>(k));
  // Probe through the prepared plan when the leaf just executed one — the
  // weight column sums then walk the plan's column-major nibble panel at
  // unit stride instead of striding the row-major operand. The key below
  // matches the one the leaf's GEMM built, so the acquire is a cache hit.
  const kernels::Backend abft_be = kernels::auto_backend(m, k, n);
  if (abft_be == kernels::Backend::kBlocked && (!approx || tab != nullptr)) {
    const kernels::PlanKey key = kernels::make_int_key(
        approx ? kernels::OpKind::kApprox : kernels::OpKind::kExactInt, {}, m, k, n,
        abft_be, approx ? tab : nullptr);
    const kernels::PlanHandle plan = kernels::PlanCache::global().acquire(key, tab);
    kernels::abft_column_sums(*plan, w, x, c, m, k, n, actual.data(), predicted.data(),
                              wsum.data());
  } else {
    kernels::abft_column_sums(w, x, c, m, k, n, actual.data(), predicted.data(), wsum.data());
  }

  // Golden weight checksum: a corrupted weight operand is self-consistent
  // under ABFT, but its column sums no longer match the calibration capture.
  bool weight_bad = false;
  double weight_dev = 0.0;
  const int64_t* gold = nullptr;
  if ((group + 1) * k <= static_cast<int64_t>(st.golden_wsum.size())) {
    gold = st.golden_wsum.data() + group * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const double d = std::fabs(static_cast<double>(wsum[kk] - gold[kk]));
      if (d > 0.0) weight_bad = true;
      if (d > weight_dev) weight_dev = d;
    }
  }

  // ABFT column checksums against the calibrated tolerance. The prediction
  // is corrected by the expected accumulated approximation error
  // Σ_m f(c_mn) (the GE fit, evaluated at the approximate accumulators, the
  // same convention record_ge_residual uses); what remains is the fit
  // residual, bounded by tolerance_scale·M·elem_dev + tolerance_floor. The
  // exact path admits zero deviation.
  bool abft_bad = false;
  double worst_dev = 0.0;
  double tol = 0.0;
  if (!weight_bad) {
    tol = approx ? cfg_.tolerance_scale * static_cast<double>(m) * st.elem_dev +
                       cfg_.tolerance_floor
                 : 0.0;
    std::vector<double> corr;
    if (approx && st.fit != nullptr && !st.fit->is_constant()) {
      corr.assign(static_cast<size_t>(n), 0.0);
      for (int64_t i = 0; i < m; ++i) {
        const int32_t* row = c + i * n;
        for (int64_t j = 0; j < n; ++j)
          corr[static_cast<size_t>(j)] += st.fit->eval(static_cast<double>(row[j]));
      }
    } else if (approx && st.fit != nullptr) {
      // Constant fit: f is flat, the correction is column-independent only
      // through eval(anything) = clamp(c) — still evaluate once per element.
      corr.assign(static_cast<size_t>(n), st.fit->eval(0.0) * static_cast<double>(m));
    }
    for (int64_t j = 0; j < n; ++j) {
      double dev = static_cast<double>(actual[static_cast<size_t>(j)] -
                                       predicted[static_cast<size_t>(j)]);
      if (!corr.empty()) dev -= corr[static_cast<size_t>(j)];
      const double adev = std::fabs(dev);
      if (adev > worst_dev) worst_dev = adev;
      if (adev > tol) abft_bad = true;
    }
  }

  // Repair the current pass. kGoldenTable restores the clean approximate
  // result (golden weights + registry-pristine table); kExact — or any
  // leaf without a golden table — re-executes with the exact kernel.
  bool repaired = false;
  if ((weight_bad || abft_bad) && cfg_.policy.reexec) {
    const int8_t* rw = w;
    if (weight_bad &&
        (group + 1) * m * k <= static_cast<int64_t>(st.golden_w.numel()))
      rw = st.golden_w.data() + group * m * k;
    if (approx && golden_mode && st.golden_tab != nullptr)
      kernels::gemm_approx({}, rw, x, c, m, k, n, *st.golden_tab);
    else
      kernels::gemm_exact({}, rw, x, c, m, k, n);
    repaired = true;
  }

  std::lock_guard<std::mutex> lk(mu_);
  ++st.stats.gemm_checks;
  if (weight_bad) {
    ++st.stats.weight_violations;
    record_violation(st, "weight", weight_dev, 0.0);
  } else if (abft_bad) {
    ++st.stats.abft_violations;
    record_violation(st, "abft", worst_dev, tol);
  } else {
    const double rel = worst_dev / std::max(tol, 1.0);
    if (rel > st.stats.max_rel_dev) st.stats.max_rel_dev = rel;
  }
  if (repaired) ++st.stats.reexecs;
  if (weight_bad || abft_bad) maybe_degrade(st, leaf);
  return repaired;
}

SentinelReport Sentinel::report() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<const LeafState*> ordered;
  ordered.reserve(leaves_.size());
  for (const auto& [layer, st] : leaves_) ordered.push_back(&st);
  std::sort(ordered.begin(), ordered.end(),
            [](const LeafState* a, const LeafState* b) { return a->index < b->index; });
  SentinelReport rep;
  rep.leaves.reserve(ordered.size());
  for (const LeafState* st : ordered) rep.leaves.push_back(st->stats);
  return rep;
}

void Sentinel::reset_counters() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [layer, st] : leaves_) {
    LeafStats fresh;
    fresh.path = st.stats.path;
    st.stats = fresh;
    st.events_emitted = 0;
  }
}

}  // namespace axnn::sentinel
