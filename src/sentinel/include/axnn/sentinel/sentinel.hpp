// axnn — runtime fault detection and graceful degradation (DESIGN.md §5f).
//
// The sentinel is a nn::ForwardMonitor that watches every quantized GEMM
// leaf for silent data corruption — the faults the resilience subsystem can
// plant (stuck-at LUT entries, weight bit flips, corrupted inter-layer
// activations) and real deployments fear. Three detectors:
//
//   * ABFT column checksums. For C[M,N] = W · X the column sums of C must
//     equal Σ_k (Σ_m W[m,k])·X[k,n]. On the approximate path the two differ
//     by the accumulated approximation error, so the check compares against
//     a *calibrated* tolerance: the per-(multiplier, shape) GE error fit
//     f(y) predicts the expected column deviation (Σ_m f(c_mn)), and the
//     residual beyond it is bounded by the fit's percentile clamps. The
//     exact integer path uses tolerance zero.
//   * Golden weight checksums. A corrupted weight operand yields a GEMM
//     that is checksum-consistent with itself, so ABFT alone cannot see it;
//     the weight column sums captured at calibration time can.
//   * Activation range guards (Ranger-style). Each leaf's pre-quantization
//     inputs are checked against the bound and clip statistics the
//     quantizer's RangeObserver gathered during calibration.
//
// Reaction is the DegradationPolicy: a violated GEMM is re-executed — by
// default with golden weights and a pristine multiplier table rebuilt from
// the registry, restoring the clean *approximate* result the fine-tuned
// model expects (see DegradationPolicy::RepairMode for why exact arithmetic
// is the wrong repair target there). A leaf that keeps violating is
// degraded: under kGoldenTable every later pass recomputes from golden
// state; under kExact force_exact() starts returning true and, when a
// PlanResolution is attached, the leaf's plan entry is rewritten to
// exact/safe mode so the self-healing persists in the plan itself. Every
// detection lands in obs events/metrics and in the structured
// SentinelReport.
//
// Thread safety: calibrate once, then concurrent forward passes may share
// one sentinel (counters are mutex-guarded; calibration state is read-only
// after calibrate). Calibrate against the weights the model will serve —
// fine-tuning invalidates the golden checksums.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "axnn/approx/signed_lut.hpp"
#include "axnn/ge/fit_registry.hpp"
#include "axnn/nn/monitor.hpp"
#include "axnn/nn/plan.hpp"

namespace axnn::sentinel {

/// What to do about detected violations.
struct DegradationPolicy {
  /// What a repair re-executes with.
  ///
  ///   * kGoldenTable (default): golden weights + a pristine copy of the
  ///     leaf's multiplier table rebuilt from the registry — restores the
  ///     *clean approximate* result bit-for-bit. This is the right target
  ///     for a model fine-tuned under the approximate multiplier: its
  ///     weights have adapted to the multiplier's systematic bias, and
  ///     exact arithmetic would re-introduce that bias with the opposite
  ///     sign (bench_sentinel_coverage measures a trunc5-fine-tuned
  ///     ResNet20 at ~25% accuracy under the exact multiplier vs ~88%
  ///     under clean trunc5).
  ///   * kExact: the exact integer kernel; on degradation the leaf is
  ///     forced to exact execution and its plan entry rewritten. Right for
  ///     models that were never fine-tuned under the approximate
  ///     multiplier, where exact execution is the gold standard.
  enum class RepairMode { kGoldenTable, kExact };
  RepairMode repair = RepairMode::kGoldenTable;
  /// Re-execute a violated GEMM (per `repair`, with golden weights when the
  /// weight checksum failed) — repairs the current pass.
  bool reexec = true;
  /// Checksum violations at one leaf before it is degraded permanently:
  /// kGoldenTable then recomputes every pass from golden state (catching
  /// even sub-tolerance faults); kExact forces exact execution.
  /// <= 0 degrades on the first violation.
  int degrade_after = 3;
  /// On degradation under kExact, also rewrite the leaf's entry in the
  /// attached PlanResolution to exact mode (no-op without an attached
  /// resolution or under kGoldenTable, where the monitor keeps serving the
  /// golden semantics itself).
  bool rewrite_plan = true;
};

struct SentinelConfig {
  /// ABFT + golden-weight checksum verification of every integer GEMM.
  bool abft = true;
  /// Column tolerance = tolerance_scale * M * elem_dev + tolerance_floor,
  /// where elem_dev is the per-output-element residual half-spread of the
  /// calibrated error fit ((a - b) / 2, the 95% band around the fitted
  /// line). M elements per column sum coherently in the worst case.
  double tolerance_scale = 2.0;
  /// Absolute slack in integer accumulator units (rounding of the fit
  /// correction, clamp-region residuals).
  double tolerance_floor = 512.0;

  /// Ranger-style activation range guards at each leaf input.
  bool range_guard = true;
  /// Flag inputs whose max |x| exceeds range_scale * calibrated bound.
  double range_scale = 4.0;
  /// Flag inputs whose clip rate exceeds
  /// min(0.5, clip_scale * calibrated clip rate + clip_floor).
  double clip_scale = 8.0;
  double clip_floor = 0.02;

  DegradationPolicy policy;

  /// Monte-Carlo knobs for the tolerance fits (dot_length is overridden per
  /// leaf shape, exactly as NetPlan::resolve fits GE).
  ge::McConfig mc;
};

/// Per-leaf detection statistics (one row of the SentinelReport).
struct LeafStats {
  std::string path;
  int64_t gemm_checks = 0;        ///< integer GEMM groups verified
  int64_t range_checks = 0;       ///< leaf inputs scanned
  int64_t abft_violations = 0;    ///< column checksum beyond tolerance
  int64_t weight_violations = 0;  ///< golden weight-checksum mismatches
  int64_t range_violations = 0;   ///< inputs beyond range/clip bounds
  int64_t reexecs = 0;            ///< GEMMs repaired by re-execution
  bool degraded = false;          ///< permanently repaired / forced exact
  /// Worst |column deviation| / tolerance seen on checksum-clean GEMMs —
  /// the safety margin of the calibrated tolerance (FP headroom).
  double max_rel_dev = 0.0;
};

struct SentinelReport {
  std::vector<LeafStats> leaves;

  int64_t total_checks() const;
  int64_t total_violations() const;  ///< abft + weight + range
  int64_t total_reexecs() const;
  int64_t degraded_leaves() const;
  /// Violations per check over both detector families — the false-positive
  /// rate when the run is known fault-free.
  double violation_rate() const;
  /// One line: "3 leaves, 12 violations (8 abft/0 weight/4 range), 8
  /// re-execs, 1 degraded".
  std::string summary() const;

  /// Fold another report in: counters add per path (matched by path, order
  /// preserved; unknown paths append), degraded flags OR, max_rel_dev takes
  /// the max. The serving engine merges its per-lane sentinels with this.
  void merge(const SentinelReport& other);
};

class Sentinel final : public nn::ForwardMonitor {
public:
  explicit Sentinel(SentinelConfig cfg = {});

  const SentinelConfig& config() const { return cfg_; }

  /// Calibrate for a uniform run: every leaf executes `mul_id` through
  /// `tab` (pass the *clean* table — tolerances model approximation error,
  /// not faults). Captures golden weight checksums, activation bounds and
  /// per-(multiplier, shape) tolerances for every calibrated conv/FC leaf
  /// of `root`. Throws std::logic_error on uncalibrated leaves.
  void calibrate_uniform(nn::Layer& root, const approx::SignedMulTable& tab,
                         const std::string& mul_id);

  /// Calibrate for a heterogeneous run: per-leaf multipliers come from the
  /// resolution (leaves with exact/float mode overrides get zero-tolerance
  /// state). The resolution is retained for DegradationPolicy::rewrite_plan
  /// and must outlive the sentinel's use.
  void calibrate_plan(nn::Layer& root, nn::PlanResolution& resolution);

  // nn::ForwardMonitor:
  bool force_exact(const nn::Layer& leaf) override;
  void on_leaf_input(const nn::Layer& leaf, const Tensor& x) override;
  bool on_leaf_gemm(const nn::Layer& leaf, int64_t group, bool approx, const int8_t* w,
                    const int8_t* x, int32_t* c, int64_t m, int64_t k, int64_t n,
                    const approx::SignedMulTable* tab) override;

  /// Snapshot of the per-leaf statistics (depth-first model order).
  SentinelReport report() const;

  /// Zero every counter and degradation flag, keeping the calibration.
  /// (Measure false positives on a clean run, then reuse the sentinel.)
  void reset_counters();

private:
  struct LeafState {
    std::string path;
    int64_t index = 0;          ///< depth-first position (report order)
    double elem_dev = 0.0;      ///< per-element residual half-spread
    const ge::ErrorFit* fit = nullptr;  ///< column-deviation predictor
    double range_bound = 0.0;   ///< calibrated max |x|
    double qrange = 0.0;        ///< activation quantization range
    double clip_limit = 0.0;    ///< tolerated clip rate
    TensorI8 golden_w;          ///< quantized weights at calibration
    std::vector<int64_t> golden_wsum;  ///< per group: K column sums
    int64_t rows_per_group = 0;        ///< M of one group's GEMM
    /// Pristine multiplier table rebuilt from the registry at calibration
    /// (kGoldenTable repairs); null for exact-mode leaves.
    const approx::SignedMulTable* golden_tab = nullptr;
    LeafStats stats;
    int events_emitted = 0;     ///< obs event cap per leaf
  };

  void calibrate_leaf(const nn::GemmLeaf& leaf, const approx::SignedMulTable* tab,
                      const std::string& mul_id, bool runs_approx);
  void record_violation(LeafState& st, const char* kind, double deviation, double tolerance);
  void maybe_degrade(LeafState& st, const nn::Layer& leaf);
  const approx::SignedMulTable* golden_table_for(const std::string& mul_id);

  SentinelConfig cfg_;
  ge::FitRegistry fits_;
  std::unordered_map<const nn::Layer*, LeafState> leaves_;
  /// Registry-pristine tables shared by leaves, keyed by multiplier id.
  std::map<std::string, approx::SignedMulTable> golden_tabs_;
  nn::PlanResolution* resolution_ = nullptr;
  mutable std::mutex mu_;
};

}  // namespace axnn::sentinel
