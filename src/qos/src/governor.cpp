#include "axnn/qos/governor.hpp"

#include <cstdio>
#include <stdexcept>

namespace axnn::qos {

const char* to_string(Cause c) {
  switch (c) {
    case Cause::kLoad: return "load";
    case Cause::kEnergy: return "energy";
    case Cause::kHealth: return "health";
    case Cause::kRecovery: return "recovery";
    case Cause::kManual: return "manual";
  }
  return "?";
}

void GovernorConfig::validate() const {
  if (tick_interval_ms < 1)
    throw std::invalid_argument("GovernorConfig: tick_interval_ms must be >= 1");
  if (dwell_ms < 0 || recover_ms < 0)
    throw std::invalid_argument("GovernorConfig: dwell_ms/recover_ms must be >= 0");
  if (p95_high_ms < 0 || energy_cap_per_s < 0 || violation_rate_high < 0 || queue_high < 0)
    throw std::invalid_argument("GovernorConfig: thresholds must be >= 0");
  if (p95_recover_frac <= 0 || p95_recover_frac > 1 || energy_recover_frac <= 0 ||
      energy_recover_frac > 1)
    throw std::invalid_argument("GovernorConfig: recover fractions must be in (0, 1]");
}

obs::Json Transition::to_json(int64_t t0_ns) const {
  obs::Json j = obs::Json::object();
  j["t_ms"] = static_cast<double>(t_ns - t0_ns) / 1e6;
  j["from"] = from;
  j["to"] = to;
  j["cause"] = to_string(cause);
  j["detail"] = detail;
  return j;
}

Governor::Governor(GovernorConfig cfg, std::vector<OperatingPoint> points, int initial)
    : cfg_(cfg), points_(std::move(points)), active_(initial) {
  cfg_.validate();
  if (points_.empty()) throw std::invalid_argument("Governor: empty operating-point ladder");
  if (initial < 0 || initial >= num_points())
    throw std::invalid_argument("Governor: initial point out of range");
  time_in_point_ms_.resize(points_.size(), 0.0);
}

Transition Governor::move(int to, Cause cause, std::string detail, int64_t now_ns) {
  time_in_point_ms_[static_cast<size_t>(active_)] +=
      static_cast<double>(now_ns - enter_ns_) / 1e6;
  Transition t{now_ns, active_, to, cause, std::move(detail)};
  active_ = to;
  enter_ns_ = now_ns;
  last_move_ns_ = now_ns;
  moved_ = true;
  // Every move — either direction — restarts the calm window, so each
  // subsequent step up waits a full recover_ms again.
  calm_ = false;
  transitions_.push_back(t);
  return t;
}

std::optional<Transition> Governor::update(const GovernorSignals& s) {
  if (!started_) {
    started_ = true;
    first_tick_ns_ = s.now_ns;
    enter_ns_ = s.now_ns;
  }
  const int n = num_points();
  char buf[160];
  bool pressure = false;
  Cause cause = Cause::kLoad;
  std::string detail;

  // Pressure detection, health > load > energy.
  if (cfg_.step_down_on_degraded && s.new_degraded > 0) {
    pressure = true;
    cause = Cause::kHealth;
    std::snprintf(buf, sizeof buf, "%lld leaves newly degraded",
                  static_cast<long long>(s.new_degraded));
    detail = buf;
  } else if (cfg_.step_down_on_quarantine && s.lanes_quarantined > 0) {
    pressure = true;
    cause = Cause::kHealth;
    std::snprintf(buf, sizeof buf, "%d lanes quarantined", s.lanes_quarantined);
    detail = buf;
  } else if (cfg_.violation_rate_high > 0 && s.violation_rate > cfg_.violation_rate_high) {
    pressure = true;
    cause = Cause::kHealth;
    std::snprintf(buf, sizeof buf, "sentinel violation rate %.4f > %.4f", s.violation_rate,
                  cfg_.violation_rate_high);
    detail = buf;
  } else if (cfg_.p95_high_ms > 0 && s.p95_ms > cfg_.p95_high_ms) {
    pressure = true;
    cause = Cause::kLoad;
    std::snprintf(buf, sizeof buf, "p95 %.2fms > %.2fms", s.p95_ms, cfg_.p95_high_ms);
    detail = buf;
  } else if (cfg_.queue_high > 0 && s.queue_depth >= cfg_.queue_high) {
    pressure = true;
    cause = Cause::kLoad;
    std::snprintf(buf, sizeof buf, "queue depth %d >= %d", s.queue_depth, cfg_.queue_high);
    detail = buf;
  } else if (cfg_.react_to_backpressure && s.queue_full_waits > 0) {
    pressure = true;
    cause = Cause::kLoad;
    std::snprintf(buf, sizeof buf, "%lld submits hit backpressure",
                  static_cast<long long>(s.queue_full_waits));
    detail = buf;
  } else if (cfg_.energy_cap_per_s > 0 && s.energy_rate > cfg_.energy_cap_per_s) {
    // Energy pressure is only actionable when descending actually helps —
    // a latency-oriented ladder may get *more* expensive down-ladder.
    if (active_ + 1 < n && points_[static_cast<size_t>(active_ + 1)].energy_per_req <
                               points_[static_cast<size_t>(active_)].energy_per_req) {
      pressure = true;
      cause = Cause::kEnergy;
      std::snprintf(buf, sizeof buf, "energy rate %.0f/s > cap %.0f/s", s.energy_rate,
                    cfg_.energy_cap_per_s);
      detail = buf;
    }
  }

  const int64_t move_ref = moved_ ? last_move_ns_ : first_tick_ns_;
  if (pressure) {
    calm_ = false;
    if (active_ + 1 >= n) return std::nullopt;  // already at the ladder floor
    if (s.now_ns - move_ref < cfg_.dwell_ms * 1'000'000) return std::nullopt;
    return move(active_ + 1, cause, std::move(detail), s.now_ns);
  }

  // Calm tick: arm / advance the recovery window.
  if (!calm_) {
    calm_ = true;
    calm_since_ns_ = s.now_ns;
  }
  if (active_ == 0) return std::nullopt;
  if (s.now_ns - calm_since_ns_ < cfg_.recover_ms * 1'000'000) return std::nullopt;
  if (s.now_ns - move_ref < cfg_.dwell_ms * 1'000'000) return std::nullopt;
  // Recovery margins: stepping up must not immediately re-trigger pressure.
  if (cfg_.p95_high_ms > 0 && s.p95_ms > cfg_.p95_recover_frac * cfg_.p95_high_ms)
    return std::nullopt;
  if (cfg_.energy_cap_per_s > 0) {
    const double cur = points_[static_cast<size_t>(active_)].energy_per_req;
    const double up = points_[static_cast<size_t>(active_ - 1)].energy_per_req;
    const double projected = cur > 0 ? s.energy_rate * (up / cur) : s.energy_rate;
    if (projected > cfg_.energy_recover_frac * cfg_.energy_cap_per_s) return std::nullopt;
  }
  return move(active_ - 1, Cause::kRecovery, "pressure-free for recover window", s.now_ns);
}

Transition Governor::force(int to, int64_t now_ns) {
  if (to < 0 || to >= num_points())
    throw std::invalid_argument("Governor::force: point " + std::to_string(to) +
                                " out of range [0, " + std::to_string(num_points()) + ")");
  if (!started_) {
    started_ = true;
    first_tick_ns_ = now_ns;
    enter_ns_ = now_ns;
  }
  if (to == active_) return Transition{now_ns, active_, active_, Cause::kManual, "no-op"};
  return move(to, Cause::kManual, "forced", now_ns);
}

std::vector<double> Governor::time_in_point_ms(int64_t now_ns) const {
  std::vector<double> out = time_in_point_ms_;
  if (started_ && now_ns > enter_ns_)
    out[static_cast<size_t>(active_)] += static_cast<double>(now_ns - enter_ns_) / 1e6;
  return out;
}

obs::Json QosReport::to_json() const {
  obs::Json j = obs::Json::object();
  obs::Json pts = obs::Json::array();
  for (const auto& p : points) pts.push_back(p.to_json());
  j["points"] = std::move(pts);
  obs::Json ss = obs::Json::array();
  for (const auto& s : sessions) {
    obs::Json e = obs::Json::object();
    e["session"] = s.session;
    e["active"] = s.active;
    e["transitions_total"] = static_cast<int64_t>(s.transitions.size());
    obs::Json req = obs::Json::array();
    for (int64_t r : s.requests_per_point) req.push_back(r);
    e["requests_per_point"] = std::move(req);
    obs::Json tm = obs::Json::array();
    for (double t : s.time_in_point_ms) tm.push_back(t);
    e["time_in_point_ms"] = std::move(tm);
    obs::Json trs = obs::Json::array();
    for (const auto& t : s.transitions) trs.push_back(t.to_json(t0_ns));
    e["transitions"] = std::move(trs);
    ss.push_back(std::move(e));
  }
  j["sessions"] = std::move(ss);
  return j;
}

std::string QosReport::summary() const {
  char buf[160];
  std::string out;
  for (const auto& s : sessions) {
    const std::string& active = points[static_cast<size_t>(s.active)].name;
    std::snprintf(buf, sizeof buf, "%s%s: active=%s transitions=%zu", out.empty() ? "" : "; ",
                  s.session.c_str(), active.c_str(), s.transitions.size());
    out += buf;
  }
  return "qos[" + std::to_string(points.size()) + " points] " + out;
}

}  // namespace axnn::qos
