#include "axnn/qos/operating_point.hpp"

#include <stdexcept>

#include "axnn/nn/plan.hpp"

namespace axnn::qos {

namespace {

std::string trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool valid_name(const std::string& n) {
  if (n.empty() || n.size() > 64) return false;
  for (char c : n) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::invalid_argument("qos::parse_points: line " + std::to_string(line) + ": " + what);
}

}  // namespace

std::vector<OperatingPointSpec> parse_points(const std::string& text) {
  std::vector<OperatingPointSpec> out;
  size_t pos = 0;
  int lineno = 0;
  while (pos <= text.size()) {
    const size_t nl = text.find('\n', pos);
    const std::string raw =
        text.substr(pos, nl == std::string::npos ? std::string::npos : nl - pos);
    pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++lineno;

    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("point", 0) != 0 || line.size() < 6 || (line[5] != ' ' && line[5] != '\t'))
      fail(lineno, "expected 'point <name> = <plan>'");
    const size_t eq = line.find('=', 6);
    if (eq == std::string::npos) fail(lineno, "missing '=' after point name");
    const std::string name = trim(line.substr(6, eq - 6));
    const std::string plan = trim(line.substr(eq + 1));
    if (!valid_name(name))
      fail(lineno, "invalid point name '" + name + "' (want [A-Za-z0-9_.-]{1,64})");
    for (const auto& p : out)
      if (p.name == name) fail(lineno, "duplicate point name '" + name + "'");
    if (plan.empty()) fail(lineno, "empty plan for point '" + name + "'");
    try {
      (void)nn::NetPlan::parse(plan);
    } catch (const std::exception& e) {
      fail(lineno, "point '" + name + "': " + e.what());
    }
    if (static_cast<int>(out.size()) == kMaxOperatingPoints)
      fail(lineno, "more than " + std::to_string(kMaxOperatingPoints) + " points");
    out.push_back(OperatingPointSpec{name, plan});
  }
  if (out.empty())
    throw std::invalid_argument("qos::parse_points: no operating points defined");
  return out;
}

std::string to_text(const std::vector<OperatingPointSpec>& points) {
  std::string out;
  for (const auto& p : points) {
    out += "point ";
    out += p.name;
    out += " = ";
    out += p.plan_text;
    out += '\n';
  }
  return out;
}

obs::Json OperatingPoint::to_json() const {
  obs::Json j = obs::Json::object();
  j["name"] = name;
  j["plan"] = plan_text;
  j["holdout_acc"] = holdout_acc;
  j["energy_per_req"] = energy_per_req;
  j["energy_savings_pct"] = energy_savings_pct;
  j["latency_est_ms"] = latency_est_ms;
  return j;
}

}  // namespace axnn::qos
