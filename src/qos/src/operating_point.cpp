#include "axnn/qos/operating_point.hpp"

#include "axnn/core/plan_io.hpp"

namespace axnn::qos {

static_assert(kMaxOperatingPoints == core::plan_io::kMaxLadderPoints,
              "qos ladder cap must match the shared plan_io document cap");

// Thin delegating wrappers: the ladder grammar (line splitting, names,
// limits, line-numbered errors) lives in core::plan_io, shared with the
// plan-search emitter and the CLI. The `who` argument keeps the historical
// "qos::parse_points: line N: ..." error prefix stable.

std::vector<OperatingPointSpec> parse_points(const std::string& text) {
  std::vector<OperatingPointSpec> out;
  for (auto& p : core::plan_io::parse_ladder(text, "qos::parse_points"))
    out.push_back(OperatingPointSpec{std::move(p.name), std::move(p.plan_text)});
  return out;
}

std::string to_text(const std::vector<OperatingPointSpec>& points) {
  std::vector<core::plan_io::NamedPlan> named;
  named.reserve(points.size());
  for (const auto& p : points) named.push_back({p.name, p.plan_text});
  return core::plan_io::to_text(named);
}

obs::Json OperatingPoint::to_json() const {
  obs::Json j = obs::Json::object();
  j["name"] = name;
  j["plan"] = plan_text;
  j["holdout_acc"] = holdout_acc;
  j["energy_per_req"] = energy_per_req;
  j["energy_savings_pct"] = energy_savings_pct;
  j["latency_est_ms"] = latency_est_ms;
  return j;
}

}  // namespace axnn::qos
