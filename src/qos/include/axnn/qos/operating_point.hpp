// axnn — QoS operating-point ladders (DESIGN.md §5h).
//
// An operating-point set is an ordered ladder of named NetPlans over one
// shared weight set — e.g. high-accuracy / balanced / low-energy — written
// in a line-oriented text format:
//
//   # comments and blank lines are ignored
//   point high-accuracy = default=trunc5
//   point balanced      = default=trunc5:mode=exact; stack2=trunc5
//   point low-latency   = default=trunc5:mode=exact
//
// Order is the ladder: index 0 is the best-effort point, higher indices are
// progressively cheaper (whatever "cheaper" means for the deployment —
// faster, lower estimated energy, or more fault-tolerant; the governor only
// assumes *down the ladder sheds quality under pressure*). Every plan is
// validated with NetPlan::parse at parse time; resolution against the model
// happens at Engine::load, which also measures per-point metadata (holdout
// accuracy, estimated energy per request, single-sample latency).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "axnn/obs/json.hpp"

namespace axnn::qos {

/// One parsed ladder entry: a name and the NetPlan text it serves.
struct OperatingPointSpec {
  std::string name;       ///< [A-Za-z0-9_.-]+, unique within the set
  std::string plan_text;  ///< NetPlan grammar (validated at parse)
};

/// Ladders larger than this are rejected at parse time — a governor
/// stepping one point per dwell cannot usefully exploit more.
inline constexpr int kMaxOperatingPoints = 32;

/// Parse an operating-point-set file. Throws std::invalid_argument (with a
/// line number) on syntax errors, duplicate/invalid names, invalid plans,
/// an empty set, or more than kMaxOperatingPoints entries. Thin wrapper
/// over core::plan_io::parse_ladder — the unified plan-spec parser the
/// search emitter writes through, so searched ladders load unmodified.
std::vector<OperatingPointSpec> parse_points(const std::string& text);

/// Canonical text form; parse_points(to_text(p)) == p (round-trip, fuzzed
/// by tools/fuzz/fuzz_qos_points).
std::string to_text(const std::vector<OperatingPointSpec>& points);

/// One calibrated ladder entry: the spec plus the metadata Engine::load
/// measures once per point on lane 0.
struct OperatingPoint {
  std::string name;
  std::string plan_text;
  double holdout_acc = 0.0;       ///< top-1 on the holdout split, [0,1]
  double energy_per_req = 0.0;    ///< estimate_mixed units (1.0 = exact MAC)
  double energy_savings_pct = 0;  ///< vs all-exact, network level
  double latency_est_ms = 0.0;    ///< mean single-sample forward, lane 0

  obs::Json to_json() const;
};

}  // namespace axnn::qos
