// axnn — QoS governor: hysteretic operating-point switching (DESIGN.md §5h).
//
// The Governor decides, once per tick, which ladder point a session should
// serve. It is deliberately a pure state machine — no threads, no clocks,
// no engine types: the serving engine samples its signals under the engine
// mutex and calls update(); unit tests drive it with synthetic signals and
// a synthetic clock. Three signal families produce *pressure*:
//
//   health  — sentinel violation rate / newly degraded leaves (a faulty
//             deployment moves to a safer point before accuracy collapses),
//   load    — observed p95 vs the deadline, queue depth, submit-side
//             backpressure (queue_full_waits),
//   energy  — rolling estimated energy rate vs a configured cap (only
//             actionable when the next point down is actually cheaper).
//
// Priority is health > load > energy. Under pressure the governor steps
// DOWN the ladder one point at a time, at most once per dwell_ms. With no
// pressure for recover_ms (and the recovery margins satisfied) it steps
// back UP, again one point per dwell. Dwell + step-at-a-time + the recovery
// margin are what prevent flapping under an oscillating signal (test_qos).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "axnn/obs/json.hpp"
#include "axnn/qos/operating_point.hpp"

namespace axnn::qos {

/// Why a transition happened.
enum class Cause { kLoad, kEnergy, kHealth, kRecovery, kManual };

const char* to_string(Cause c);

/// Governor thresholds. A threshold of 0 disables that trigger.
struct GovernorConfig {
  /// How often the engine samples signals and ticks the governor.
  int64_t tick_interval_ms = 20;
  /// Minimum time between two ladder moves (either direction).
  int64_t dwell_ms = 250;
  /// Continuous pressure-free time required before stepping back up.
  int64_t recover_ms = 1500;

  /// Load: step down when observed p95 exceeds this (ms). Recovery
  /// additionally requires p95 <= p95_recover_frac * p95_high_ms.
  double p95_high_ms = 0.0;
  double p95_recover_frac = 0.5;
  /// Load: step down when the session's queue depth reaches this.
  int queue_high = 0;
  /// Load: step down when submits blocked on a full slot pool this tick.
  bool react_to_backpressure = true;

  /// Energy: step down when the session's estimated energy rate (units/s,
  /// 1.0 = one exact MAC) exceeds this — only when the next point down is
  /// strictly cheaper per request. Recovery projects the rate at the upper
  /// point and requires it under energy_recover_frac * cap.
  double energy_cap_per_s = 0.0;
  double energy_recover_frac = 0.8;

  /// Health: step down when the sentinel violation rate (violations/checks
  /// over the tick window) exceeds this.
  double violation_rate_high = 0.0;
  /// Health: step down whenever the tick window saw newly degraded leaves.
  bool step_down_on_degraded = true;
  /// Health: treat quarantined serving lanes (watchdog, DESIGN.md §5k) as
  /// sustained pressure — capacity has shrunk, so the session sheds
  /// accuracy for headroom until every lane is readmitted.
  bool step_down_on_quarantine = true;

  void validate() const;  ///< throws std::invalid_argument on nonsense
};

/// One tick's observations. Rates/deltas are over the window since the
/// previous tick; now_ns is any monotonic clock (tests use a synthetic one).
struct GovernorSignals {
  int64_t now_ns = 0;
  double p95_ms = 0.0;            ///< completed-request p95, current window
  int queue_depth = 0;            ///< session pending ring occupancy
  int64_t queue_full_waits = 0;   ///< pool-exhausted submits since last tick
  double energy_rate = 0.0;       ///< estimated units/s since last tick
  double violation_rate = 0.0;    ///< sentinel violations/checks since last tick
  int64_t new_degraded = 0;       ///< leaves degraded since last tick
  int lanes_quarantined = 0;      ///< serving lanes currently quarantined
};

/// One ladder move.
struct Transition {
  int64_t t_ns = 0;  ///< signal clock at the move
  int from = 0;
  int to = 0;
  Cause cause = Cause::kManual;
  std::string detail;  ///< human-readable trigger, e.g. "p95 41.2ms > 25ms"

  obs::Json to_json(int64_t t0_ns = 0) const;
};

class Governor {
public:
  /// `points` is the calibrated ladder (metadata drives the energy guard);
  /// must be non-empty. `initial` is the starting point index.
  Governor(GovernorConfig cfg, std::vector<OperatingPoint> points, int initial = 0);

  const GovernorConfig& config() const { return cfg_; }
  const std::vector<OperatingPoint>& points() const { return points_; }
  int active() const { return active_; }
  int num_points() const { return static_cast<int>(points_.size()); }

  /// One tick: fold the observations, maybe move one ladder step. Returns
  /// the transition when a move happened.
  std::optional<Transition> update(const GovernorSignals& s);

  /// Unconditional move (CLI / tests); bypasses hysteresis but resets the
  /// dwell and calm clocks so the next automatic move still waits.
  Transition force(int to, int64_t now_ns);

  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Wall-clock spent in each point so far (signal-clock based; the open
  /// interval of the current point extends to now_ns).
  std::vector<double> time_in_point_ms(int64_t now_ns) const;

private:
  Transition move(int to, Cause cause, std::string detail, int64_t now_ns);

  GovernorConfig cfg_;
  std::vector<OperatingPoint> points_;
  int active_ = 0;
  bool started_ = false;       ///< first tick seen (arms dwell/time accounting)
  bool moved_ = false;         ///< any move yet (dwell runs from first tick until then)
  bool calm_ = false;          ///< calm window armed (false = under pressure)
  int64_t last_move_ns_ = 0;
  int64_t first_tick_ns_ = 0;
  int64_t calm_since_ns_ = 0;
  int64_t enter_ns_ = 0;       ///< when the active point was entered
  std::vector<double> time_in_point_ms_;
  std::vector<Transition> transitions_;
};

/// Per-session QoS summary (Engine::qos_report()).
struct SessionQos {
  std::string session;
  int active = 0;
  std::vector<int64_t> requests_per_point;
  std::vector<double> time_in_point_ms;
  std::vector<Transition> transitions;
};

/// The "qos" section of a run report: the calibrated ladder plus every
/// governed session's activity (schema: definitions.qosReport).
struct QosReport {
  std::vector<OperatingPoint> points;
  std::vector<SessionQos> sessions;
  int64_t t0_ns = 0;  ///< engine load time; transition times are relative

  obs::Json to_json() const;
  std::string summary() const;  ///< one line for CLI output
};

}  // namespace axnn::qos
