// axnn — MAC-level energy model.
//
// The paper carries per-multiplier energy-savings estimates from the
// EvoApprox8b library [20] and Kidambi et al. [21] and reports network-level
// savings equal to the multiplier savings (all conv/FC MACs are uniformly
// approximated). This module reproduces that accounting and optionally
// splits the MAC into multiplier + adder shares for sensitivity analysis.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "axnn/axmul/registry.hpp"

namespace axnn::energy {

struct EnergyModel {
  /// Fraction of a MAC's energy spent in the multiplier (the paper's
  /// accounting implicitly uses 1.0; the accumulator share is untouched by
  /// approximate multipliers).
  double multiplier_fraction = 1.0;
};

struct EnergyEstimate {
  int64_t macs = 0;
  double exact_energy = 0.0;   ///< relative units (1.0 per exact MAC)
  double approx_energy = 0.0;
  double savings_pct = 0.0;    ///< (1 - approx/exact) * 100
};

/// Energy of running `macs` multiply-accumulates through the multiplier
/// described by `spec`.
EnergyEstimate estimate(int64_t macs, const axmul::MultiplierSpec& spec,
                        const EnergyModel& model = {});

/// Energy of a heterogeneous network: each share is (MAC count, multiplier)
/// for one group of layers — e.g. one entry per plan leaf. The exact and
/// approximate energies sum over shares; savings_pct is the network-level
/// figure the mixed-multiplier bench reports.
EnergyEstimate estimate_mixed(
    const std::vector<std::pair<int64_t, axmul::MultiplierSpec>>& shares,
    const EnergyModel& model = {});

}  // namespace axnn::energy
