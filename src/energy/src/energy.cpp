#include "axnn/energy/energy.hpp"

#include <stdexcept>

namespace axnn::energy {

EnergyEstimate estimate(int64_t macs, const axmul::MultiplierSpec& spec,
                        const EnergyModel& model) {
  if (macs < 0) throw std::invalid_argument("energy::estimate: negative MAC count");
  if (model.multiplier_fraction < 0.0 || model.multiplier_fraction > 1.0)
    throw std::invalid_argument("energy::estimate: multiplier_fraction out of [0,1]");
  EnergyEstimate e;
  e.macs = macs;
  e.exact_energy = static_cast<double>(macs);
  const double mult_savings = spec.energy_savings_pct / 100.0;
  const double per_mac = 1.0 - model.multiplier_fraction * mult_savings;
  e.approx_energy = static_cast<double>(macs) * per_mac;
  e.savings_pct = e.exact_energy > 0.0
                      ? (1.0 - e.approx_energy / e.exact_energy) * 100.0
                      : 0.0;
  return e;
}

}  // namespace axnn::energy
