#include "axnn/energy/energy.hpp"

#include <stdexcept>

namespace axnn::energy {

EnergyEstimate estimate(int64_t macs, const axmul::MultiplierSpec& spec,
                        const EnergyModel& model) {
  if (macs < 0) throw std::invalid_argument("energy::estimate: negative MAC count");
  if (model.multiplier_fraction < 0.0 || model.multiplier_fraction > 1.0)
    throw std::invalid_argument("energy::estimate: multiplier_fraction out of [0,1]");
  EnergyEstimate e;
  e.macs = macs;
  e.exact_energy = static_cast<double>(macs);
  const double mult_savings = spec.energy_savings_pct / 100.0;
  const double per_mac = 1.0 - model.multiplier_fraction * mult_savings;
  e.approx_energy = static_cast<double>(macs) * per_mac;
  e.savings_pct = e.exact_energy > 0.0
                      ? (1.0 - e.approx_energy / e.exact_energy) * 100.0
                      : 0.0;
  return e;
}

EnergyEstimate estimate_mixed(
    const std::vector<std::pair<int64_t, axmul::MultiplierSpec>>& shares,
    const EnergyModel& model) {
  EnergyEstimate total;
  for (const auto& [macs, spec] : shares) {
    const EnergyEstimate e = estimate(macs, spec, model);
    total.macs += e.macs;
    total.exact_energy += e.exact_energy;
    total.approx_energy += e.approx_energy;
  }
  total.savings_pct = total.exact_energy > 0.0
                          ? (1.0 - total.approx_energy / total.exact_energy) * 100.0
                          : 0.0;
  return total;
}

}  // namespace axnn::energy
