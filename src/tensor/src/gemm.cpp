#include "axnn/tensor/gemm.hpp"

#include <cstring>
#include <stdexcept>

#include "axnn/tensor/threadpool.hpp"

namespace axnn {

namespace {
// Rows-per-task granularity: keep tasks chunky enough to amortise pool
// overhead on the small matrices common in reduced-width models.
constexpr int64_t kRowGrain = 8;
}  // namespace

void gemm_f32(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n) {
  std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
  gemm_f32_acc(a, b, c, m, k, n);
}

void gemm_f32_acc(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n) {
  parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* arow = a + i * k;
          float* crow = c + i * n;
          for (int64_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f) continue;
            const float* brow = b + kk * n;
            for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      kRowGrain);
}

void gemm_nt_f32(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n) {
  parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* arow = a + i * k;
          float* crow = c + i * n;
          for (int64_t j = 0; j < n; ++j) {
            const float* brow = b + j * k;
            double acc = 0.0;
            for (int64_t kk = 0; kk < k; ++kk) acc += static_cast<double>(arow[kk]) * brow[kk];
            crow[j] = static_cast<float>(acc);
          }
        }
      },
      kRowGrain);
}

void gemm_tn_f32_acc(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n) {
  // C[M,N] += Aᵀ·B with A:[K,M], B:[K,N]. Parallelise over output rows (M);
  // each output row i gathers column i of A.
  parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float* crow = c + i * n;
          for (int64_t kk = 0; kk < k; ++kk) {
            const float av = a[kk * m + i];
            if (av == 0.0f) continue;
            const float* brow = b + kk * n;
            for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      kRowGrain);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2)
    throw std::invalid_argument("matmul: expected 2-D tensors");
  const int64_t m = a.shape()[0], k = a.shape()[1];
  if (b.shape()[0] != k) throw std::invalid_argument("matmul: inner dimension mismatch");
  const int64_t n = b.shape()[1];
  Tensor c(Shape{m, n});
  gemm_f32(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor transpose(const Tensor& a) {
  if (a.shape().rank() != 2) throw std::invalid_argument("transpose: expected 2-D tensor");
  const int64_t m = a.shape()[0], n = a.shape()[1];
  Tensor t(Shape{n, m});
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) t(j, i) = a(i, j);
  return t;
}

}  // namespace axnn
