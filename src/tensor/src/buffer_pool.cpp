#include "axnn/tensor/buffer_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>

namespace axnn {
namespace {

// Size classes: powers of two from 64 B (a cache line; also comfortably
// holds the intrusive link) up to 1 GiB. Larger blocks bypass the pool.
constexpr std::size_t kMinShift = 6;
constexpr std::size_t kMaxShift = 30;
constexpr std::size_t kNumClasses = kMaxShift - kMinShift + 1;

std::size_t class_bytes(std::size_t idx) { return std::size_t{1} << (idx + kMinShift); }

/// Size-class index for `bytes`, or kNumClasses when it exceeds the largest
/// class (bypass).
std::size_t class_index(std::size_t bytes) {
  std::size_t idx = 0;
  while (idx < kNumClasses && class_bytes(idx) < bytes) ++idx;
  return idx;
}

std::size_t cap_from_env() {
  if (const char* env = std::getenv("AXNN_POOL_MAX_MB")) {
    char* end = nullptr;
    const long mb = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && mb >= 0) return static_cast<std::size_t>(mb) << 20;
  }
  return std::size_t{256} << 20;
}

struct Pool {
  /// Freed block: first sizeof(void*) bytes hold the next-pointer.
  struct FreeList {
    std::mutex mu;
    void* head = nullptr;
  };

  FreeList classes[kNumClasses];
  const std::size_t cap = cap_from_env();
  std::atomic<std::size_t> cached_bytes{0};
  std::atomic<int64_t> hits{0}, misses{0}, returned{0};

  void* alloc(std::size_t bytes) {
    const std::size_t idx = class_index(bytes);
    if (idx < kNumClasses && cap > 0) {
      FreeList& fl = classes[idx];
      std::lock_guard<std::mutex> lk(fl.mu);
      if (fl.head != nullptr) {
        void* p = fl.head;
        fl.head = *static_cast<void**>(p);
        cached_bytes.fetch_sub(class_bytes(idx), std::memory_order_relaxed);
        hits.fetch_add(1, std::memory_order_relaxed);
        return p;
      }
    }
    misses.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(idx < kNumClasses ? class_bytes(idx) : bytes);
  }

  void free(void* p, std::size_t bytes) noexcept {
    const std::size_t idx = class_index(bytes);
    if (idx < kNumClasses) {
      const std::size_t sz = class_bytes(idx);
      if (cached_bytes.load(std::memory_order_relaxed) + sz <= cap) {
        FreeList& fl = classes[idx];
        std::lock_guard<std::mutex> lk(fl.mu);
        *static_cast<void**>(p) = fl.head;
        fl.head = p;
        cached_bytes.fetch_add(sz, std::memory_order_relaxed);
        returned.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    ::operator delete(p);
  }

  void trim() {
    for (std::size_t idx = 0; idx < kNumClasses; ++idx) {
      FreeList& fl = classes[idx];
      std::lock_guard<std::mutex> lk(fl.mu);
      while (fl.head != nullptr) {
        void* p = fl.head;
        fl.head = *static_cast<void**>(p);
        cached_bytes.fetch_sub(class_bytes(idx), std::memory_order_relaxed);
        ::operator delete(p);
      }
    }
  }
};

/// Intentionally leaked: tensors with static storage duration destruct after
/// any function-local static would, and their blocks must still have a pool
/// to land in.
Pool& pool() {
  static Pool* p = new Pool();
  return *p;
}

}  // namespace

namespace detail {

void* pool_alloc(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  return pool().alloc(bytes);
}

void pool_free(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  pool().free(p, bytes == 0 ? 1 : bytes);
}

}  // namespace detail

BufferPoolStats buffer_pool_stats() {
  Pool& p = pool();
  BufferPoolStats s;
  s.hits = p.hits.load(std::memory_order_relaxed);
  s.misses = p.misses.load(std::memory_order_relaxed);
  s.returned = p.returned.load(std::memory_order_relaxed);
  s.cached_bytes = static_cast<int64_t>(p.cached_bytes.load(std::memory_order_relaxed));
  s.cap_bytes = static_cast<int64_t>(p.cap);
  return s;
}

void buffer_pool_reset_stats() {
  Pool& p = pool();
  p.hits.store(0, std::memory_order_relaxed);
  p.misses.store(0, std::memory_order_relaxed);
  p.returned.store(0, std::memory_order_relaxed);
}

void buffer_pool_trim() { pool().trim(); }

}  // namespace axnn
