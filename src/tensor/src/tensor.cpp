#include "axnn/tensor/tensor.hpp"

#include <cmath>

namespace axnn {

Tensor randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(shape);
  for (int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(shape);
  for (int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor kaiming_normal(Shape shape, int64_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in > 0 ? fan_in : 1));
  return randn(shape, rng, 0.0f, stddev);
}

}  // namespace axnn
