#include "axnn/tensor/rng.hpp"

#include <cmath>

namespace axnn {

namespace {
inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t hash_mix(uint64_t a, uint64_t b) {
  // Two SplitMix64 rounds over a combined word; avalanches both inputs.
  uint64_t s = a * 0x9E3779B97F4A7C15ull + b + 0xD1B54A32D192ED03ull;
  uint64_t z = splitmix64(s);
  return splitmix64(z);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int64_t Rng::uniform_int(int64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return static_cast<int64_t>(x % un);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

void Rng::shuffle(std::vector<int64_t>& v) {
  for (int64_t i = static_cast<int64_t>(v.size()) - 1; i > 0; --i) {
    const int64_t j = uniform_int(i + 1);
    std::swap(v[static_cast<size_t>(i)], v[static_cast<size_t>(j)]);
  }
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace axnn
