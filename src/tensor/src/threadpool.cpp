#include "axnn/tensor/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace axnn {

namespace {
std::atomic<int> g_requested_threads{0};
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(g_requested_threads.load());
  return pool;
}

void ThreadPool::set_global_threads(int threads) { g_requested_threads.store(threads); }

void ThreadPool::parallel_for(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                              int64_t grain) {
  if (n <= 0) return;
  const int workers = size();
  if (workers <= 1 || n <= grain) {
    fn(0, n);
    return;
  }
  const int64_t max_chunks = (n + grain - 1) / grain;
  const int64_t chunks = std::min<int64_t>(workers, max_chunks);
  const int64_t chunk = (n + chunks - 1) / chunks;

  std::atomic<int64_t> remaining{chunks};
  std::mutex done_mu;
  std::condition_variable done_cv;

  {
    std::lock_guard<std::mutex> lk(mu_);
    for (int64_t c = 1; c < chunks; ++c) {
      const int64_t b = c * chunk;
      const int64_t e = std::min<int64_t>(n, b + chunk);
      tasks_.push([&, b, e] {
        fn(b, e);
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> dlk(done_mu);
          done_cv.notify_one();
        }
      });
    }
  }
  cv_.notify_all();

  // The calling thread takes the first chunk.
  fn(0, std::min<int64_t>(n, chunk));
  if (remaining.fetch_sub(1) != 1) {
    std::unique_lock<std::mutex> lk(done_mu);
    done_cv.wait(lk, [&] { return remaining.load() == 0; });
  }
}

}  // namespace axnn
