#include "axnn/tensor/threadpool.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace axnn {

namespace {

std::atomic<int> g_requested_threads{0};
std::atomic<bool> g_global_created{false};

/// Set for the lifetime of worker_loop; read by ThreadPool::current().
thread_local ThreadPool* t_worker_pool = nullptr;

int resolve_thread_count(int threads) {
  if (threads > 0) return threads;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  threads = resolve_thread_count(threads);
  // One dispatch enqueues at most threads-1 tasks; ring capacity for a few
  // overlapping outside dispatchers avoids even the first-growth realloc in
  // the common case.
  ring_.resize(static_cast<size_t>(threads) * 4 + 4);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool* ThreadPool::current() { return t_worker_pool; }

void ThreadPool::push_locked(const Task& t) {
  if (task_count_ == ring_.size()) {
    // Grow by relinearising into a fresh buffer (rare: only when overlapping
    // dispatches exceed the pre-sized capacity, and never twice for the same
    // peak load).
    std::vector<Task> grown(ring_.size() * 2);
    for (size_t i = 0; i < task_count_; ++i) grown[i] = ring_[(ring_head_ + i) % ring_.size()];
    ring_ = std::move(grown);
    ring_head_ = 0;
  }
  ring_[(ring_head_ + task_count_) % ring_.size()] = t;
  ++task_count_;
}

ThreadPool::Task ThreadPool::pop_locked() {
  Task t = ring_[ring_head_];
  ring_head_ = (ring_head_ + 1) % ring_.size();
  --task_count_;
  return t;
}

ThreadPool::Split ThreadPool::plan_split(int inter_hint, int hw) {
  hw = resolve_thread_count(hw);
  Split s;
  s.inter = std::clamp(inter_hint, 1, hw);
  s.intra = std::max(1, hw / s.inter);
  return s;
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_empty(); });
      if (stop_ && queue_empty()) return;
      task = pop_locked();
    }
    try {
      task.job->invoke(task.job->ctx, task.begin, task.end);
    } catch (...) {
      // Keep the first exception; the submitting thread rethrows it after
      // the whole invocation drains (the Job lives on its stack).
      std::lock_guard<std::mutex> elk(task.job->mu);
      if (!task.job->error) task.job->error = std::current_exception();
    }
    if (task.job->remaining.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> dlk(task.job->mu);
      task.job->cv.notify_one();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(g_requested_threads.load());
  g_global_created.store(true);
  return pool;
}

void ThreadPool::set_global_threads(int threads) {
  const int resolved = resolve_thread_count(threads);
  if (g_global_created.load()) {
    if (resolved == global().size()) return;  // already what the caller wants
    throw std::logic_error(
        "ThreadPool::set_global_threads(" + std::to_string(threads) +
        "): global pool already created with " + std::to_string(global().size()) +
        " threads; pin the size before the first kernel runs, or pass an explicit "
        "ThreadPool to the kernel");
  }
  g_requested_threads.store(threads);
}

void ThreadPool::run_chunks(int64_t n, int64_t chunk, int64_t chunks, ChunkFn invoke,
                            const void* ctx) {
  Job job{invoke, ctx, {chunks}, {}, {}, nullptr};
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (int64_t c = 1; c < chunks; ++c) {
      const int64_t b = c * chunk;
      const int64_t e = std::min<int64_t>(n, b + chunk);
      push_locked(Task{&job, b, e});
    }
  }
  cv_.notify_all();

  // The calling thread takes the first chunk. Its exception is captured too
  // so the wait below always happens — queued tasks point at this frame.
  try {
    invoke(ctx, 0, std::min<int64_t>(n, chunk));
  } catch (...) {
    std::lock_guard<std::mutex> elk(job.mu);
    if (!job.error) job.error = std::current_exception();
  }
  if (job.remaining.fetch_sub(1) != 1) {
    std::unique_lock<std::mutex> lk(job.mu);
    job.cv.wait(lk, [&] { return job.remaining.load() == 0; });
  }
  // All chunks are done; rethrow the first failure on the submitting thread.
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace axnn
