#include "axnn/tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace axnn::ops {

namespace {
void check_same(const Tensor& a, const Tensor& b, const char* what) {
  if (!a.same_shape(b))
    throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                a.shape().to_string() + " vs " + b.shape().to_string());
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same(a, b, "add");
  Tensor out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] + b[i];
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same(a, b, "sub");
  Tensor out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] - b[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same(a, b, "mul");
  Tensor out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] * b[i];
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] * s;
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same(a, b, "add_inplace");
  for (int64_t i = 0; i < a.numel(); ++i) a[i] += b[i];
}

void axpy_inplace(Tensor& a, float s, const Tensor& b) {
  check_same(a, b, "axpy_inplace");
  for (int64_t i = 0; i < a.numel(); ++i) a[i] += s * b[i];
}

void scale_inplace(Tensor& a, float s) {
  for (int64_t i = 0; i < a.numel(); ++i) a[i] *= s;
}

double sum(const Tensor& a) {
  double s = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) s += a[i];
  return s;
}

double mean(const Tensor& a) { return a.numel() ? sum(a) / static_cast<double>(a.numel()) : 0.0; }

float max_abs(const Tensor& a) {
  float m = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}

double sum_sq(const Tensor& a) {
  double s = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) s += static_cast<double>(a[i]) * a[i];
  return s;
}

double mse(const Tensor& a, const Tensor& b) {
  check_same(a, b, "mse");
  if (a.numel() == 0) return 0.0;
  double s = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return s / static_cast<double>(a.numel());
}

Tensor softmax(const Tensor& logits, float temperature) {
  if (logits.shape().rank() != 2) throw std::invalid_argument("softmax: expected [N, C]");
  if (temperature <= 0.0f) throw std::invalid_argument("softmax: temperature must be > 0");
  const int64_t n = logits.shape()[0], c = logits.shape()[1];
  Tensor out(logits.shape());
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float* orow = out.data() + i * c;
    float mx = row[0];
    for (int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      orow[j] = std::exp((row[j] - mx) / temperature);
      denom += orow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < c; ++j) orow[j] *= inv;
  }
  return out;
}

Tensor log_softmax(const Tensor& logits, float temperature) {
  if (logits.shape().rank() != 2) throw std::invalid_argument("log_softmax: expected [N, C]");
  if (temperature <= 0.0f) throw std::invalid_argument("log_softmax: temperature must be > 0");
  const int64_t n = logits.shape()[0], c = logits.shape()[1];
  Tensor out(logits.shape());
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float* orow = out.data() + i * c;
    float mx = row[0];
    for (int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < c; ++j) denom += std::exp((row[j] - mx) / temperature);
    const float logden = static_cast<float>(std::log(denom));
    for (int64_t j = 0; j < c; ++j) orow[j] = (row[j] - mx) / temperature - logden;
  }
  return out;
}

std::vector<int> argmax_rows(const Tensor& logits) {
  if (logits.shape().rank() != 2) throw std::invalid_argument("argmax_rows: expected [N, C]");
  const int64_t n = logits.shape()[0], c = logits.shape()[1];
  std::vector<int> out(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    int best = 0;
    for (int64_t j = 1; j < c; ++j)
      if (row[j] > row[best]) best = static_cast<int>(j);
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  const auto pred = argmax_rows(logits);
  if (pred.size() != labels.size())
    throw std::invalid_argument("accuracy: label count mismatch");
  if (pred.empty()) return 0.0;
  int64_t ok = 0;
  for (size_t i = 0; i < pred.size(); ++i) ok += (pred[i] == labels[i]);
  return static_cast<double>(ok) / static_cast<double>(pred.size());
}

}  // namespace axnn::ops
