// axnn — forwarding header. The GEMM dispatch API moved to its own module:
// axnn/kernels/gemm.hpp (target axnn::kernels). This header remains so code
// written against the original location keeps compiling; the API and the
// axnn::kernels namespace are unchanged.
#pragma once

#include "axnn/kernels/gemm.hpp"
