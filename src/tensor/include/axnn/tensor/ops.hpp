// axnn — elementwise operations, reductions and classification helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "axnn/tensor/tensor.hpp"

namespace axnn::ops {

/// out = a + b (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);

/// out = a - b.
Tensor sub(const Tensor& a, const Tensor& b);

/// out = a * b (elementwise).
Tensor mul(const Tensor& a, const Tensor& b);

/// out = a * s.
Tensor scale(const Tensor& a, float s);

/// a += b in place.
void add_inplace(Tensor& a, const Tensor& b);

/// a += s * b in place (axpy).
void axpy_inplace(Tensor& a, float s, const Tensor& b);

/// a *= s in place.
void scale_inplace(Tensor& a, float s);

/// Sum of all elements.
double sum(const Tensor& a);

/// Mean of all elements.
double mean(const Tensor& a);

/// Maximum absolute value (0 for empty tensors).
float max_abs(const Tensor& a);

/// Sum of squared elements.
double sum_sq(const Tensor& a);

/// Mean squared difference between two same-shape tensors.
double mse(const Tensor& a, const Tensor& b);

/// Row-wise softmax over the last dimension of a [N, C] tensor; `temperature`
/// divides the logits (KD-style). Numerically stabilised by row-max shift.
Tensor softmax(const Tensor& logits, float temperature = 1.0f);

/// Row-wise log-softmax over [N, C] with temperature.
Tensor log_softmax(const Tensor& logits, float temperature = 1.0f);

/// Row-wise argmax of a [N, C] tensor.
std::vector<int> argmax_rows(const Tensor& logits);

/// Fraction of rows whose argmax equals labels[i]; labels.size() must equal
/// the number of rows.
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace axnn::ops
