// axnn — dense row-major tensor with value semantics.
//
// Design notes:
//  * BasicTensor<T> owns its storage in a pool-allocated vector
//    (axnn/tensor/buffer_pool.hpp): copies are deep, moves are cheap, and
//    repeated construction of the same shapes — the serving steady state —
//    recycles blocks from the pool's freelists instead of hitting the heap.
//    No views/strides — the kernels this library needs (im2col GEMM,
//    elementwise, reductions) all operate on contiguous data, and value
//    semantics keeps the autograd caches trivially correct.
//  * Indexing is bounds-checked in debug builds only (operator() uses
//    unchecked math; at() always checks).
#pragma once

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "axnn/tensor/buffer_pool.hpp"
#include "axnn/tensor/rng.hpp"
#include "axnn/tensor/shape.hpp"

namespace axnn {

template <typename T>
class BasicTensor {
public:
  using value_type = T;
  using storage_type = std::vector<T, PoolAllocator<T>>;

  BasicTensor() = default;

  explicit BasicTensor(Shape shape, T fill = T{})
      : shape_(shape), data_(static_cast<size_t>(shape.numel()), fill) {}

  BasicTensor(Shape shape, storage_type data) : shape_(shape), data_(std::move(data)) {
    if (static_cast<int64_t>(data_.size()) != shape_.numel())
      throw std::invalid_argument("BasicTensor: data size does not match shape");
  }

  /// Compatibility overload: copies a plain vector into pooled storage.
  BasicTensor(Shape shape, const std::vector<T>& data)
      : shape_(shape), data_(data.begin(), data.end()) {
    if (static_cast<int64_t>(data_.size()) != shape_.numel())
      throw std::invalid_argument("BasicTensor: data size does not match shape");
  }

  const Shape& shape() const { return shape_; }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  storage_type& vec() { return data_; }
  const storage_type& vec() const { return data_; }

  T& operator[](int64_t i) {
    assert(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }
  T operator[](int64_t i) const {
    assert(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }

  /// 2-D accessors (GEMM views).
  T& operator()(int64_t i, int64_t j) {
    assert(shape_.rank() == 2);
    return data_[static_cast<size_t>(i * shape_[1] + j)];
  }
  T operator()(int64_t i, int64_t j) const {
    assert(shape_.rank() == 2);
    return data_[static_cast<size_t>(i * shape_[1] + j)];
  }

  /// 4-D accessors (NCHW feature maps / OIHW weights).
  T& operator()(int64_t n, int64_t c, int64_t h, int64_t w) {
    assert(shape_.rank() == 4);
    return data_[static_cast<size_t>(((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }
  T operator()(int64_t n, int64_t c, int64_t h, int64_t w) const {
    assert(shape_.rank() == 4);
    return data_[static_cast<size_t>(((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }

  /// Bounds-checked linear access.
  T& at(int64_t i) {
    if (i < 0 || i >= numel()) throw std::out_of_range("BasicTensor::at");
    return data_[static_cast<size_t>(i)];
  }
  T at(int64_t i) const {
    if (i < 0 || i >= numel()) throw std::out_of_range("BasicTensor::at");
    return data_[static_cast<size_t>(i)];
  }

  void fill(T v) {
    for (auto& x : data_) x = v;
  }

  /// Reinterpret under a new shape with the same element count.
  BasicTensor reshaped(Shape s) const {
    if (s.numel() != numel()) throw std::invalid_argument("reshaped: element count mismatch");
    BasicTensor out = *this;
    out.shape_ = s;
    return out;
  }

  /// In-place reshape.
  void reshape(Shape s) {
    if (s.numel() != numel()) throw std::invalid_argument("reshape: element count mismatch");
    shape_ = s;
  }

  bool same_shape(const BasicTensor& o) const { return shape_ == o.shape_; }

private:
  Shape shape_;
  storage_type data_;
};

using Tensor = BasicTensor<float>;
using TensorI32 = BasicTensor<int32_t>;
using TensorI8 = BasicTensor<int8_t>;

/// Tensor filled with N(mean, stddev) draws from rng.
Tensor randn(Shape shape, Rng& rng, float mean = 0.0f, float stddev = 1.0f);

/// Tensor filled with U[lo, hi) draws from rng.
Tensor rand_uniform(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);

/// Kaiming/He-normal initialisation for conv/linear weights with the given
/// fan-in (stddev = sqrt(2 / fan_in)).
Tensor kaiming_normal(Shape shape, int64_t fan_in, Rng& rng);

}  // namespace axnn
