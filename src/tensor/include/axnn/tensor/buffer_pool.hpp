// axnn — pooled tensor storage (zero-allocation steady state).
//
// Every BasicTensor allocation routes through this pool: a process-global
// set of power-of-two size-class freelists. A freed block parks on its
// class's intrusive list (the link pointer lives in the block itself, so the
// pool needs no metadata allocations); the next tensor of a similar size
// pops it back without touching ::operator new. Serving forwards construct
// the same tensor shapes batch after batch, so after one warm-up pass the
// pool satisfies every request from the freelists — the steady-state heap
// allocation count is zero, which test_serve asserts with an instrumented
// operator new.
//
// Retained bytes are capped (AXNN_POOL_MAX_MB, default 256; 0 disables
// pooling entirely); blocks freed beyond the cap, and blocks larger than the
// largest size class, go straight back to the heap. The pool is thread-safe
// (one tiny mutex per size class) and intentionally leaked at shutdown so
// tensors with static storage duration can always return their blocks.
#pragma once

#include <cstddef>
#include <cstdint>

namespace axnn {

namespace detail {
/// Raw block allocation/release backing PoolAllocator. `bytes` may be any
/// size; the pool rounds it up to its size class internally, so free must
/// receive the same `bytes` the matching alloc did (the std::allocator
/// contract already guarantees this).
void* pool_alloc(std::size_t bytes);
void pool_free(void* p, std::size_t bytes) noexcept;
}  // namespace detail

struct BufferPoolStats {
  int64_t hits = 0;          ///< allocations served from a freelist
  int64_t misses = 0;        ///< allocations that reached ::operator new
  int64_t returned = 0;      ///< frees parked on a freelist
  int64_t cached_bytes = 0;  ///< bytes currently parked
  int64_t cap_bytes = 0;     ///< retention cap (AXNN_POOL_MAX_MB)
  double hit_rate() const {
    const int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

BufferPoolStats buffer_pool_stats();
/// Zero the hit/miss/returned counters (warm-up boundaries in tests/benches).
void buffer_pool_reset_stats();
/// Release every parked block back to the heap (memory-pressure hook;
/// in-flight tensors are unaffected).
void buffer_pool_trim();

/// Minimal std::allocator replacement routing through the pool. Stateless:
/// all instances are interchangeable, so vectors move across threads freely.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) { return static_cast<T*>(detail::pool_alloc(n * sizeof(T))); }
  void deallocate(T* p, std::size_t n) noexcept { detail::pool_free(p, n * sizeof(T)); }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>&) const noexcept {
    return false;
  }
};

}  // namespace axnn
