// axnn — shared thread pool and parallel_for helper.
//
// All compute kernels (float GEMM, approximate integer GEMM, im2col) split
// work through ThreadPool::global(). Parallelism is deterministic with
// respect to results: work items never race on output ranges.
//
// parallel_for is templated on the callable: chunks are enqueued as small
// POD tasks pointing at the caller's stack frame, so dispatch costs no
// per-chunk heap allocation or std::function indirection.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace axnn {

class ThreadPool {
public:
  /// Pool with `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// The pool the calling thread is a worker of, or nullptr when called from
  /// a thread no pool owns (the main thread, a std::thread, another pool's
  /// caller). parallel_for uses this to detect same-pool nesting.
  static ThreadPool* current();

  /// An explicit inter-op / intra-op partition of the machine: `inter`
  /// concurrent coarse tasks (batched forwards, independent requests), each
  /// fanning its kernels out over `intra` threads. inter * intra never
  /// exceeds the hardware concurrency it was planned against.
  struct Split {
    int inter = 1;  ///< concurrent coarse tasks
    int intra = 1;  ///< kernel threads available to each task
  };

  /// Plan a Split for `inter_hint` concurrent coarse tasks over `hw` threads
  /// (0 = hardware_concurrency). The hint is clamped to [1, hw] and intra
  /// takes the remaining parallelism (hw / inter, min 1), so a serving
  /// engine batching over an inter-op pool while conv leaves call
  /// parallel_for cannot oversubscribe the machine.
  static Split plan_split(int inter_hint, int hw = 0);

  /// Process-wide pool, created on first use. Size can be pinned beforehand
  /// with set_global_threads(); defaults to hardware concurrency.
  static ThreadPool& global();

  /// Pin the size of the global pool. Contract: must be called before the
  /// first global() call (i.e. before any kernel runs). Once the global pool
  /// exists its size is immutable — calling with a different size then
  /// throws std::logic_error instead of silently doing nothing. Re-requesting
  /// the current size is a no-op. Kernels that must run on a specific thread
  /// count should construct their own ThreadPool and pass it explicitly.
  static void set_global_threads(int threads);

  /// Run fn(begin, end) over [0, n) split into roughly even chunks of at
  /// least `grain` items across the pool (plus the calling thread). Blocks
  /// until every chunk completes. Falls back to inline execution for small n
  /// or single-worker pools.
  ///
  /// Exception safety: the first exception thrown by any chunk (on a worker
  /// or the calling thread) is captured and rethrown here on the submitting
  /// thread after all chunks of this invocation finish — a throwing task
  /// surfaces as a normal catchable exception instead of std::terminate.
  /// Remaining chunks still run (no cancellation); later exceptions of the
  /// same invocation are dropped. The pool stays usable afterwards.
  ///
  /// Nested use: a call from one of this pool's own workers runs inline on
  /// the calling thread. Re-enqueueing would both oversubscribe (the outer
  /// invocation already split the work across every worker) and deadlock
  /// when all workers block waiting on chunks only they could run. Calls
  /// from another pool's workers still fan out normally — that is the
  /// supported inter-op (this pool) / intra-op (other pool) split.
  template <typename Fn>
  void parallel_for(int64_t n, Fn&& fn, int64_t grain = 1) {
    if (n <= 0) return;
    if (grain < 1) grain = 1;
    const int workers = size();
    if (workers <= 1 || n <= grain || current() == this) {
      fn(0, n);
      return;
    }
    const int64_t max_chunks = (n + grain - 1) / grain;
    const int64_t chunks = std::min<int64_t>(workers, max_chunks);
    if (chunks <= 1) {
      fn(0, n);
      return;
    }
    const int64_t chunk = (n + chunks - 1) / chunks;
    run_chunks(n, chunk, chunks, &invoke_thunk<std::remove_reference_t<Fn>>, &fn);
  }

private:
  using ChunkFn = void (*)(const void*, int64_t, int64_t);

  /// One parallel_for invocation; lives on the caller's stack for its
  /// duration, so queued tasks only carry {job, begin, end}.
  struct Job {
    ChunkFn invoke;
    const void* ctx;
    std::atomic<int64_t> remaining;
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;  ///< first chunk exception (guarded by mu)
  };
  struct Task {
    Job* job;
    int64_t begin, end;
  };

  template <typename Fn>
  static void invoke_thunk(const void* fn, int64_t begin, int64_t end) {
    (*static_cast<const Fn*>(fn))(begin, end);
  }

  void run_chunks(int64_t n, int64_t chunk, int64_t chunks, ChunkFn invoke, const void* ctx);
  void worker_loop();

  // Pending tasks live in a grow-once ring buffer (guarded by mu_). A single
  // dispatch enqueues at most size()-1 tasks, so the ring — pre-sized at
  // construction — only reallocates if dispatches from several outside
  // threads overlap, and never again after the peak burst: steady-state
  // dispatch performs zero heap allocations (std::queue would allocate a
  // deque node per push).
  void push_locked(const Task& t);
  Task pop_locked();
  bool queue_empty() const { return task_count_ == 0; }

  std::vector<std::thread> workers_;
  std::vector<Task> ring_;
  size_t ring_head_ = 0;
  size_t task_count_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience wrapper over ThreadPool::global().parallel_for.
template <typename Fn>
inline void parallel_for(int64_t n, Fn&& fn, int64_t grain = 1) {
  ThreadPool::global().parallel_for(n, static_cast<Fn&&>(fn), grain);
}

}  // namespace axnn
