// axnn — shared thread pool and parallel_for helper.
//
// All compute kernels (float GEMM, approximate integer GEMM, im2col) split
// work through ThreadPool::global(). Parallelism is deterministic with
// respect to results: work items never race on output ranges.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace axnn {

class ThreadPool {
public:
  /// Pool with `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Process-wide pool. Size can be pinned before first use with
  /// set_global_threads(); defaults to hardware concurrency.
  static ThreadPool& global();

  /// Must be called before the first global() call to take effect.
  static void set_global_threads(int threads);

  /// Run fn(begin, end) over [0, n) split into roughly even chunks across the
  /// pool (plus the calling thread). Blocks until every chunk completes.
  /// Falls back to inline execution for small n or single-worker pools.
  void parallel_for(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                    int64_t grain = 1);

private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience wrapper over ThreadPool::global().parallel_for.
inline void parallel_for(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                         int64_t grain = 1) {
  ThreadPool::global().parallel_for(n, fn, grain);
}

}  // namespace axnn
