// axnn — Shape: dimension vector for dense row-major tensors.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace axnn {

/// Shape of a dense, row-major tensor. Dimensions are non-negative; rank is
/// bounded by kMaxRank (covers NCHW + GEMM views used in this project).
class Shape {
public:
  static constexpr int kMaxRank = 6;

  Shape() = default;

  Shape(std::initializer_list<int64_t> dims) { assign(dims.begin(), dims.end()); }

  explicit Shape(const std::vector<int64_t>& dims) { assign(dims.begin(), dims.end()); }

  /// Rank (number of dimensions). A default-constructed Shape has rank 0 and
  /// represents a scalar with one element.
  int rank() const { return rank_; }

  int64_t operator[](int i) const { return dims_[static_cast<size_t>(check_axis(i))]; }
  int64_t& operator[](int i) { return dims_[static_cast<size_t>(check_axis(i))]; }

  /// Dimension with Python-style negative indexing (-1 = last).
  int64_t dim(int i) const {
    if (i < 0) i += rank_;
    return (*this)[i];
  }

  /// Total number of elements (product of dimensions; 1 for rank 0).
  int64_t numel() const {
    int64_t n = 1;
    for (int i = 0; i < rank_; ++i) n *= dims_[static_cast<size_t>(i)];
    return n;
  }

  bool operator==(const Shape& o) const {
    if (rank_ != o.rank_) return false;
    for (int i = 0; i < rank_; ++i)
      if (dims_[static_cast<size_t>(i)] != o.dims_[static_cast<size_t>(i)]) return false;
    return true;
  }
  bool operator!=(const Shape& o) const { return !(*this == o); }

  std::string to_string() const {
    std::string s = "[";
    for (int i = 0; i < rank_; ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[static_cast<size_t>(i)]);
    }
    return s + "]";
  }

  std::vector<int64_t> dims() const {
    return std::vector<int64_t>(dims_.begin(), dims_.begin() + rank_);
  }

private:
  template <typename It>
  void assign(It first, It last) {
    rank_ = 0;
    for (It it = first; it != last; ++it) {
      if (rank_ >= kMaxRank) throw std::invalid_argument("Shape: rank exceeds kMaxRank");
      if (*it < 0) throw std::invalid_argument("Shape: negative dimension");
      dims_[static_cast<size_t>(rank_++)] = *it;
    }
  }

  int check_axis(int i) const {
    if (i < 0 || i >= rank_) throw std::out_of_range("Shape: axis out of range");
    return i;
  }

  std::array<int64_t, kMaxRank> dims_{};
  int rank_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, const Shape& s) { return os << s.to_string(); }

}  // namespace axnn
