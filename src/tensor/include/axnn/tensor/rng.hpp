// axnn — deterministic, seedable pseudo-random number generation.
//
// All stochastic behaviour in the library (dataset synthesis, weight init,
// Monte-Carlo error fitting, minibatch shuffling) flows through Rng so that
// every experiment is reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace axnn {

/// SplitMix64 — used to expand a single user seed into generator state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA'14).
inline uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of two values; used for deterministic per-element
/// perturbations (e.g. EvoApprox-like multiplier error surfaces).
uint64_t hash_mix(uint64_t a, uint64_t b);

/// Xoshiro256** generator. Small, fast, and good enough statistical quality
/// for ML workloads; fully deterministic across platforms.
class Rng {
public:
  explicit Rng(uint64_t seed = 0x5EED5EED5EEDull);

  /// Uniform 64-bit integer.
  uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  int64_t uniform_int(int64_t n);

  /// Standard normal via Box-Muller (cached second sample).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<int64_t>& v);

  /// Derive an independent child generator (stable given call order).
  Rng split();

private:
  uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace axnn
