// axnn — float GEMM kernels used by the exact (FP and quantized-exact)
// forward/backward paths.
//
// Conventions: row-major matrices; C is fully overwritten unless the _acc
// variant is used. Parallelised over output rows via the global thread pool.
#pragma once

#include <cstdint>

#include "axnn/tensor/tensor.hpp"

namespace axnn {

/// C[M,N] = A[M,K] · B[K,N]
void gemm_f32(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n);

/// C[M,N] += A[M,K] · B[K,N]
void gemm_f32_acc(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n);

/// C[M,N] = A[M,K] · B[N,K]ᵀ  (B stored row-major as [N,K])
void gemm_nt_f32(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n);

/// C[M,N] += A[K,M]ᵀ · B[K,N] (A stored row-major as [K,M])
void gemm_tn_f32_acc(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n);

/// Tensor-level convenience: returns A·B for 2-D tensors.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Out-of-place transpose of a [M,N] tensor into [N,M].
Tensor transpose(const Tensor& a);

}  // namespace axnn
