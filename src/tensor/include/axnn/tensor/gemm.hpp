// axnn — float GEMM entry points.
//
// The kernels themselves live behind the unified dispatch API in
// axnn/tensor/kernels.hpp (axnn::kernels::gemm with a GemmDesc + Backend).
// The free functions below are thin deprecated wrappers kept so out-of-tree
// code written against the original API still compiles; in-tree code uses
// axnn::kernels directly.
//
// Conventions: row-major matrices; C is fully overwritten unless the _acc
// variant is used. Parallelised over output rows via the global thread pool.
#pragma once

#include <cstdint>

#include "axnn/tensor/kernels.hpp"
#include "axnn/tensor/tensor.hpp"

namespace axnn {

/// C[M,N] = A[M,K] · B[K,N]
[[deprecated("use axnn::kernels::gemm with GemmDesc{}")]]
inline void gemm_f32(const float* a, const float* b, float* c, int64_t m, int64_t k,
                     int64_t n) {
  kernels::gemm({}, a, b, c, m, k, n);
}

/// C[M,N] += A[M,K] · B[K,N]
[[deprecated("use axnn::kernels::gemm with GemmDesc{.accumulate = true}")]]
inline void gemm_f32_acc(const float* a, const float* b, float* c, int64_t m, int64_t k,
                         int64_t n) {
  kernels::gemm({.accumulate = true}, a, b, c, m, k, n);
}

/// C[M,N] = A[M,K] · B[N,K]ᵀ  (B stored row-major as [N,K])
[[deprecated("use axnn::kernels::gemm with GemmDesc{.trans_b = true}")]]
inline void gemm_nt_f32(const float* a, const float* b, float* c, int64_t m, int64_t k,
                        int64_t n) {
  kernels::gemm({.trans_b = true}, a, b, c, m, k, n);
}

/// C[M,N] += A[K,M]ᵀ · B[K,N] (A stored row-major as [K,M])
[[deprecated("use axnn::kernels::gemm with GemmDesc{.trans_a = true, .accumulate = true}")]]
inline void gemm_tn_f32_acc(const float* a, const float* b, float* c, int64_t m,
                            int64_t k, int64_t n) {
  kernels::gemm({.trans_a = true, .accumulate = true}, a, b, c, m, k, n);
}

/// Tensor-level convenience: returns A·B for 2-D tensors.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Out-of-place transpose of a [M,N] tensor into [N,M].
Tensor transpose(const Tensor& a);

}  // namespace axnn
