// axnn — layer interface and parameter container.
//
// Autograd model: an explicit layer graph. Each layer caches what its own
// backward needs during forward; Network/Sequential calls backward in
// reverse order. Composite blocks (residual, inverted-residual) are layers
// themselves and wire their internal data flow explicitly. This mirrors the
// structure of approximate-DNN simulators (ProxSim): one conv/FC GEMM choke
// point per layer where quantization and approximation attach.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "axnn/nn/exec.hpp"
#include "axnn/quant/quantizer.hpp"
#include "axnn/tensor/tensor.hpp"

namespace axnn::kernels {
class PlanMemo;
}

namespace axnn::nn {

/// A trainable tensor with its gradient accumulator.
struct Param {
  Tensor value;
  Tensor grad;

  Param() = default;
  explicit Param(Tensor v) : value(std::move(v)), grad(value.shape(), 0.0f) {}

  void zero_grad() { grad.fill(0.0f); }
};

class Layer {
public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;

  /// Forward pass; caches whatever backward needs (valid until next forward).
  virtual Tensor forward(const Tensor& x, const ExecContext& ctx) = 0;

  /// Backward pass: consumes dL/d(output), returns dL/d(input) and
  /// accumulates parameter gradients. Must follow a forward with the same
  /// batch.
  virtual Tensor backward(const Tensor& dy) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Non-trainable state tensors (e.g. BatchNorm running statistics) that
  /// must be included when copying or serializing a model.
  virtual std::vector<Tensor*> buffers() { return {}; }

  /// Child layers (for recursive traversal; empty for leaf layers).
  virtual std::vector<Layer*> children() { return {}; }

  /// Finish quantization calibration: convert observed ranges / cached
  /// calibration inputs into quantization parameters. Called once after one
  /// or more kCalibrate forwards.
  virtual void finalize_calibration(quant::Calibration /*method*/) {}

  /// Multiply-accumulate operations executed by the last forward (whole
  /// batch; 0 for non-GEMM layers).
  virtual int64_t last_mac_count() const { return 0; }

  /// The per-leaf plan memo (GEMM leaves only; nullptr elsewhere). After a
  /// forward, its keys() name the prepared plans this leaf executes —
  /// `axnn_cli inspect` prints them.
  virtual const kernels::PlanMemo* plan_memo() const { return nullptr; }

  /// Fold BatchNorm layers into their preceding convolutions wherever the
  /// graph allows (the paper folds BN in the ResNets before quantization).
  /// Default implementation recurses into children; Sequential additionally
  /// merges adjacent conv+BN pairs in its own list.
  virtual void fold_batchnorms() {
    for (Layer* c : children()) c->fold_batchnorms();
  }

  void zero_grad() {
    for (Param* p : params()) p->zero_grad();
    for (Layer* c : children()) c->zero_grad();
  }
};

/// Depth-first collection of all parameters in a layer tree.
std::vector<Param*> collect_params(Layer& root);

/// Depth-first collection of all non-trainable buffers in a layer tree.
std::vector<Tensor*> collect_buffers(Layer& root);

/// Depth-first sum of last-forward MAC counts.
int64_t collect_mac_count(Layer& root);

/// Total number of trainable scalar parameters.
int64_t count_parameters(Layer& root);

/// Copy parameter values and buffers from one layer tree to a structurally
/// identical one (teacher snapshots in the KD flow). Throws on mismatch.
void copy_state(Layer& src, Layer& dst);

}  // namespace axnn::nn
