// axnn — forward-pass monitor interface (runtime fault detection hooks).
//
// A ForwardMonitor observes the quantized GEMM leaves (Conv2d / Linear)
// while a network executes: it sees the pre-quantization activations of
// every leaf, every integer GEMM the leaf dispatches (operands and
// accumulators), and may rewrite an accumulator block in place (repair) or
// demand the exact integer kernel for a leaf (degradation). The interface
// lives in nn so the layers need no knowledge of who is watching; the
// concrete implementation is axnn::sentinel::Sentinel (ABFT checksums +
// activation range guards, see DESIGN.md §5f).
//
// Contract with the leaves:
//   * Hooks fire only in quantized passes (kQuantExact / kQuantApprox); the
//     float and calibration paths never see the monitor.
//   * on_leaf_gemm is called once per GEMM group of the integer path, after
//     the kernel wrote `c`, and never for the adder-accumulation path
//     (gemm_approx_accum fixes its own reduction order; checksums over it
//     would re-derive the adder model).
//   * A monitor must not change any tensor it is handed except `c`, and a
//     repair must leave `c` a valid [m, n] int32 accumulator block.
#pragma once

#include <cstdint>

#include "axnn/tensor/tensor.hpp"

namespace axnn::approx {
class SignedMulTable;
}

namespace axnn::nn {

class Layer;

class ForwardMonitor {
public:
  virtual ~ForwardMonitor() = default;

  /// Quantized passes ask this before dispatching the leaf's GEMM: true
  /// forces the exact integer kernel for this pass (a degraded leaf keeps
  /// running, just without the approximate multiplier).
  virtual bool force_exact(const Layer& leaf) = 0;

  /// Pre-quantization activations of one leaf (range guard). `x` is the
  /// tensor the leaf is about to quantize — corrupted inter-layer
  /// activations are visible here before the quantizer clamps them.
  virtual void on_leaf_input(const Layer& leaf, const Tensor& x) = 0;

  /// One integer GEMM group C[m,n] = W[m,k] · X[k,n] just executed.
  /// `approx` tells whether the LUT kernel ran (false = exact integer
  /// kernel, e.g. after force_exact); `tab` is the LUT used (null when
  /// exact); `group` is the conv group index (0 for Linear). The monitor
  /// may rewrite `c` in place; return true when it did.
  virtual bool on_leaf_gemm(const Layer& leaf, int64_t group, bool approx,
                            const int8_t* w, const int8_t* x, int32_t* c, int64_t m,
                            int64_t k, int64_t n, const approx::SignedMulTable* tab) = 0;
};

}  // namespace axnn::nn
