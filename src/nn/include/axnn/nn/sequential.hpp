// axnn — sequential layer container (the Network type).
#pragma once

#include <memory>
#include <utility>

#include "axnn/nn/layer.hpp"

namespace axnn::nn {

class Sequential : public Layer {
public:
  Sequential() = default;
  explicit Sequential(std::string name) : name_(std::move(name)) {}

  /// Construct and append a layer; returns a reference to it.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void append(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  size_t size() const { return layers_.size(); }
  Layer& operator[](size_t i) { return *layers_[i]; }
  std::vector<std::unique_ptr<Layer>>& layers() { return layers_; }

  std::string name() const override { return name_.empty() ? "sequential" : name_; }

  /// Forward through the children in order. When the context carries a fault
  /// injector and this is the outermost Sequential of the pass (the
  /// context's fault_pass_begun flag is still clear), begins a new injector
  /// pass first — nested containers see the flag set and never advance the
  /// pass counter, so drivers don't call begin_pass() themselves.
  Tensor forward(const Tensor& x, const ExecContext& ctx) override;

  Tensor backward(const Tensor& dy) override {
    Tensor g = dy;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
    return g;
  }

  void fold_batchnorms() override;

  std::vector<Layer*> children() override {
    std::vector<Layer*> out;
    out.reserve(layers_.size());
    for (auto& l : layers_) out.push_back(l.get());
    return out;
  }

private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Walk a layer tree depth-first and finalize quantization calibration on
/// every node (leaves implement the actual work).
void finalize_calibration_recursive(Layer& root, quant::Calibration method);

/// Set the quantization bit-widths of every conv/FC layer in the tree
/// (invalidates their calibration; recalibrate afterwards). Equivalent to
/// applying a uniform NetPlan with these widths (axnn/nn/plan.hpp), which is
/// exactly how it is implemented; use a NetPlan with overrides for per-layer
/// widths.
void set_bit_widths_recursive(Layer& root, int weight_bits, int activation_bits);

}  // namespace axnn::nn
