// axnn — parameter (de)serialization for model caching between runs.
//
// Binary format: magic "AXNP", u32 version, u64 param count, then per
// parameter: u32 rank, i64 dims, f32 payload. Loading validates shapes
// against the target network.
#pragma once

#include <string>

#include "axnn/nn/layer.hpp"

namespace axnn::nn {

/// Write every trainable parameter of the layer tree to `path`.
void save_params(Layer& root, const std::string& path);

/// Load parameters saved by save_params into the (structurally identical)
/// layer tree. Throws std::runtime_error on format/shape mismatch.
void load_params(Layer& root, const std::string& path);

/// True if `path` exists and carries the expected magic.
bool is_param_file(const std::string& path);

}  // namespace axnn::nn
