// axnn — parameter (de)serialization for model caching between runs.
//
// Binary format AXNP:
//   magic "AXNP", u32 version, u64 param count, u64 buffer count, then per
//   tensor: u32 rank, i64 dims, f32 payload.
//   v3 appends a CRC32 footer (u32, IEEE 802.3) over every preceding byte,
//   so truncation and bit flips are detected at load time. v2 files (no
//   footer) remain loadable.
//
// Writes are atomic: the file is assembled in memory, written to
// `path + ".tmp"` and renamed into place, so a crash mid-save never leaves
// a half-written cache behind.
#pragma once

#include <string>

#include "axnn/nn/layer.hpp"

namespace axnn::nn {

/// Current AXNP version written by save_params.
inline constexpr uint32_t kParamFormatVersion = 3;

/// Write every trainable parameter and buffer of the layer tree to `path`
/// (atomically, via temp file + rename). `version` selects the on-disk
/// format: 3 (default, CRC-protected) or 2 (legacy, for compat tests).
void save_params(Layer& root, const std::string& path, uint32_t version = kParamFormatVersion);

/// Load parameters saved by save_params into the (structurally identical)
/// layer tree. Throws std::runtime_error on bad magic, unsupported version,
/// checksum mismatch, truncation, or count/shape mismatch; messages name
/// the offending parameter index and expected-vs-actual shape.
void load_params(Layer& root, const std::string& path);

/// load_params from an in-memory file image instead of a path — the same
/// decode and validation path, exercised directly by the AXNP fuzz harness.
/// `name` labels error messages in place of the file path.
void load_params_from_memory(Layer& root, const void* data, size_t size,
                             const std::string& name = "<memory>");

/// True if `path` exists, is at least header-sized, and carries the
/// expected magic and a supported version. Safe on short/empty files.
bool is_param_file(const std::string& path);

}  // namespace axnn::nn
