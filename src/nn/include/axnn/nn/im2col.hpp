// axnn — im2col / col2im lowering for GEMM-based convolution.
#pragma once

#include <cstdint>

#include "axnn/tensor/tensor.hpp"

namespace axnn::nn {

struct ConvGeom {
  int64_t n, c, h, w;        ///< input [N, C, H, W]
  int64_t kernel, stride, padding;
  int64_t oh, ow;            ///< output spatial dims

  static ConvGeom of(const Shape& x, int64_t kernel, int64_t stride, int64_t padding);
  int64_t patch_rows() const { return c * kernel * kernel; }  ///< K dimension
  int64_t out_cols() const { return n * oh * ow; }            ///< P dimension
};

/// x [N,C,H,W] -> cols [C*k*k, N*oh*ow]; out-of-image taps are zero.
/// Row index = (c*k + kh)*k + kw; column index = (n*oh + i)*ow + j.
Tensor im2col(const Tensor& x, const ConvGeom& g);

/// int8 variant used by the approximate integer path.
TensorI8 im2col_i8(const TensorI8& x, const ConvGeom& g);

/// Scatter-add of cols gradients back to the input layout (adjoint of
/// im2col).
Tensor col2im(const Tensor& cols, const ConvGeom& g);

}  // namespace axnn::nn
