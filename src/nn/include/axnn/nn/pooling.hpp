// axnn — pooling layers.
#pragma once

#include "axnn/nn/layer.hpp"

namespace axnn::nn {

/// Global average pooling over spatial dimensions, producing [N, C]
/// (pool + flatten, the classifier head used by all evaluated CNNs).
class GlobalAvgPool final : public Layer {
public:
  std::string name() const override { return "global_avg_pool"; }
  Tensor forward(const Tensor& x, const ExecContext& ctx) override;
  Tensor backward(const Tensor& dy) override;

private:
  Shape in_shape_;
};

/// Non-overlapping 2x2 average pooling (utility layer for examples/tests).
class AvgPool2x2 final : public Layer {
public:
  std::string name() const override { return "avg_pool_2x2"; }
  Tensor forward(const Tensor& x, const ExecContext& ctx) override;
  Tensor backward(const Tensor& dy) override;

private:
  Shape in_shape_;
};

}  // namespace axnn::nn
