// axnn — activation layers (ReLU, ReLU6).
#pragma once

#include "axnn/nn/layer.hpp"

namespace axnn::nn {

/// y = max(x, 0).
class ReLU final : public Layer {
public:
  std::string name() const override { return "relu"; }
  Tensor forward(const Tensor& x, const ExecContext& ctx) override;
  Tensor backward(const Tensor& dy) override;

private:
  Tensor mask_;
};

/// y = min(max(x, 0), 6) — MobileNetV2's bounded activation; the bound keeps
/// 8-bit activation ranges tight.
class ReLU6 final : public Layer {
public:
  std::string name() const override { return "relu6"; }
  Tensor forward(const Tensor& x, const ExecContext& ctx) override;
  Tensor backward(const Tensor& dy) override;

private:
  Tensor mask_;
};

}  // namespace axnn::nn
