// axnn — SGD optimizer with momentum, weight decay and step-decay schedule
// (the paper's fine-tuning optimizer: lr in {1e-4, 1e-5}, decay 0.1 every
// 15 epochs).
#pragma once

#include <vector>

#include "axnn/nn/layer.hpp"

namespace axnn::nn {

struct SgdConfig {
  float lr = 1e-2f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  /// Multiply lr by `decay_factor` every `decay_every_epochs` epochs
  /// (applied by on_epoch_end; 0 disables).
  float decay_factor = 0.1f;
  int decay_every_epochs = 0;
};

class Sgd {
public:
  Sgd(std::vector<Param*> params, SgdConfig cfg);

  /// Apply one update from accumulated gradients, then leave gradients
  /// untouched (call Layer::zero_grad separately).
  void step();

  /// Advance the step-decay schedule; call once per finished epoch.
  void on_epoch_end();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  const SgdConfig& config() const { return cfg_; }

  /// Mutable momentum buffers (parallel to the param list). Exposed so the
  /// divergence guard can snapshot/restore the full optimizer state — a
  /// rollback that kept stale velocity would immediately re-diverge.
  std::vector<Tensor>& velocity() { return velocity_; }

private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;
  SgdConfig cfg_;
  float lr_;
  int epochs_done_ = 0;
};

}  // namespace axnn::nn
