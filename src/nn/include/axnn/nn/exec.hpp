// axnn — per-pass execution context.
//
// The same network object executes in four modes, reproducing the paper's
// cross-layer flow:
//   kFloat      : full-precision forward/backward (pre-training, teacher).
//   kCalibrate  : FP forward that additionally observes activation ranges
//                 and caches calibration inputs for MinPropQE.
//   kQuantExact : 8A4W fake-quantized forward with exact arithmetic
//                 (quantization stage).
//   kQuantApprox: 8A4W forward where every conv/FC GEMM multiplies through
//                 an approximate-multiplier table (approximation stage).
#pragma once

#include "axnn/approx/signed_lut.hpp"
#include "axnn/axmul/adder.hpp"
#include "axnn/ge/error_fit.hpp"
#include "axnn/quant/calibration.hpp"
#include "axnn/resilience/fault.hpp"

namespace axnn::nn {

class PlanResolution;  // axnn/nn/plan.hpp
class ForwardMonitor;  // axnn/nn/monitor.hpp

enum class ExecMode { kFloat, kCalibrate, kQuantExact, kQuantApprox };

struct ExecContext {
  ExecMode mode = ExecMode::kFloat;
  /// Multiplier table for kQuantApprox; ignored otherwise.
  const approx::SignedMulTable* mul = nullptr;
  /// Optional gradient-estimation fit (paper Sec. III-B). When set and the
  /// fit has a non-zero slope, conv/FC weight gradients are scaled by
  /// (1 + K); when null or constant, the backward pass is the plain STE.
  const ge::ErrorFit* ge_fit = nullptr;
  /// True during training passes (controls BatchNorm statistics).
  bool training = false;
  /// Optional approximate accumulator (paper outlook: multiple
  /// approximation techniques): when set, conv/FC partial sums are combined
  /// through this adder model instead of exact addition. Evaluation-oriented
  /// (one virtual call per MAC).
  const axmul::Adder* adder = nullptr;
  /// Optional fault injector (resilience subsystem): when set, Sequential
  /// containers corrupt the activations flowing between their children, so
  /// any forward pass can run under seeded bit flips. The root Sequential
  /// calls faults->begin_pass() once per forward (see fault_pass_begun);
  /// drivers never call it themselves.
  const resilience::FaultInjector* faults = nullptr;
  /// Optional per-layer execution plan (axnn/nn/plan.hpp): when set, conv/FC
  /// leaves look up their resolved plan entry and let it override mul /
  /// ge_fit / adder / mode in quantized passes. The resolution must outlive
  /// the context. Null reproduces the pre-plan uniform behavior exactly.
  const PlanResolution* plan = nullptr;
  /// Optional forward monitor (axnn/nn/monitor.hpp): when set, quantized
  /// conv/FC leaves report their pre-quantization activations and integer
  /// GEMMs to it, and let it repair accumulators or force the exact integer
  /// kernel. Non-const: monitors accumulate detection state across passes.
  /// The monitor must outlive the context. Null costs nothing.
  ForwardMonitor* monitor = nullptr;
  /// Set by the outermost Sequential after it calls faults->begin_pass(), so
  /// nested containers sharing the context do not advance the pass counter
  /// again. Not meant to be set by drivers.
  bool fault_pass_begun = false;

  bool quantized() const {
    return mode == ExecMode::kQuantExact || mode == ExecMode::kQuantApprox;
  }

  // Factories name every field they set (designated initializers), so adding
  // a member to this struct can never silently shift a positional argument
  // into the wrong slot or default-initialize a trailing field by accident.
  static ExecContext fp(bool training = false) {
    return {.mode = ExecMode::kFloat, .training = training};
  }
  static ExecContext calibrate() { return {.mode = ExecMode::kCalibrate}; }
  static ExecContext quant_exact(bool training = false) {
    return {.mode = ExecMode::kQuantExact, .training = training};
  }
  static ExecContext quant_approx(const approx::SignedMulTable& mul,
                                  const ge::ErrorFit* fit = nullptr, bool training = false) {
    return {.mode = ExecMode::kQuantApprox, .mul = &mul, .ge_fit = fit, .training = training};
  }

  /// Chainable setter routing conv/FC partial sums through an adder model
  /// (the gemm_approx_accum path). The adder must outlive the context.
  ExecContext with_adder(const axmul::Adder& a) const {
    ExecContext c = *this;
    c.adder = &a;
    return c;
  }

  /// Chainable setter running the forward pass under fault injection
  /// (activation bit flips between layers). The injector must outlive the
  /// context.
  ExecContext with_faults(const resilience::FaultInjector& f) const {
    ExecContext c = *this;
    c.faults = &f;
    return c;
  }

  /// Chainable setter attaching a resolved per-layer plan. The resolution
  /// must outlive the context.
  ExecContext with_plan(const PlanResolution& p) const {
    ExecContext c = *this;
    c.plan = &p;
    return c;
  }

  /// Chainable setter attaching a forward monitor (sentinel). The monitor
  /// must outlive the context.
  ExecContext with_monitor(ForwardMonitor& m) const {
    ExecContext c = *this;
    c.monitor = &m;
    return c;
  }
};

}  // namespace axnn::nn
