// axnn — per-layer execution plans (heterogeneous approximation).
//
// The paper evaluates *uniform* approximation: one multiplier, one GE fit
// and one bit-width pair for the whole network, all carried by ExecContext.
// This module generalizes that to a declarative plan:
//
//   LayerPlan  — what one conv/FC leaf should run: multiplier and adder by
//                registry id (so plans serialize), bit-widths, GE
//                eligibility, and an optional exec-mode override.
//   NetPlan    — a uniform default LayerPlan plus path-keyed overrides,
//                matched by longest '/'-boundary prefix. Parses from and
//                serializes to a one-line text form.
//   PlanResolution — a NetPlan materialized against a concrete model:
//                multiplier tables and adders built from the registry, GE
//                fits fitted per layer shape (FitRegistry), and a
//                leaf-pointer lookup used by Conv2d/Linear during forward.
//
// Layer paths are '/'-joined layer names from the root, with a "#k" suffix
// (0-based occurrence index) appended when a name repeats among siblings:
//
//   basic_block#2/basic_block_main/conv3x3_4->4#1
//
// BatchNorm folding removes BN children without renaming the convolutions
// around them, so paths are stable across fold_batchnorms().
//
// Equivalence guarantee: a uniform NetPlan (no overrides) resolved and
// attached to an ExecContext produces bit-identical logits to the plain
// ExecContext path in all four exec modes — the GE fit never enters the
// forward computation, and a table materialized from a registry id equals a
// caller-constructed table for the same id entry by entry.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "axnn/axmul/adder.hpp"
#include "axnn/ge/fit_registry.hpp"
#include "axnn/nn/layer.hpp"

namespace axnn::nn {

/// Declarative execution parameters for one conv/FC leaf. An override
/// REPLACES the uniform plan for the layers it matches (no field-wise
/// merging): unset fields mean their defaults, not "inherit".
struct LayerPlan {
  /// Multiplier registry id ("trunc5", "evoa228", ...). Empty = no plan
  /// table; the leaf falls back to the context-wide ExecContext::mul.
  std::string multiplier{};
  /// Adder registry id ("exact_add", "truncadd8", "loa8"). Empty = use the
  /// context adder (usually none => exact accumulation).
  std::string adder{};
  int weight_bits = quant::kWeightBits;
  int activation_bits = quant::kActivationBits;
  /// Eligible for a per-layer GE fit (only takes effect when the plan is
  /// resolved with ResolveOptions::fit_ge and a multiplier id is set).
  bool use_ge = true;
  /// Exec-mode override for quantized passes: kFloat / kQuantExact /
  /// kQuantApprox keep this leaf exact (or full-precision) while the rest of
  /// the network approximates, or vice versa. Ignored in kFloat/kCalibrate
  /// passes; kCalibrate is not a valid override.
  std::optional<ExecMode> mode = std::nullopt;
};

/// One conv/FC leaf discovered by walking a layer tree.
struct GemmLeaf {
  std::string path;
  Layer* layer = nullptr;
  bool is_conv = false;
  /// Accumulation length of one output element ((C/groups)*k*k for conv,
  /// in_features for FC) — the Monte-Carlo dot length for this layer's fit.
  int64_t dot_length = 0;
};

/// Depth-first enumeration of every Conv2d/Linear leaf with its path.
std::vector<GemmLeaf> enumerate_gemm_leaves(Layer& root);

/// Path segments of `node`'s direct children, exactly as plan paths build
/// them ("#k" occurrence suffix when a name repeats among siblings). The
/// containers use this to label telemetry scopes (obs::ScopedPath) so
/// collected metrics land under the same paths enumerate_gemm_leaves
/// reports.
std::vector<std::string> child_path_segments(Layer& node);

/// A LayerPlan bound to a concrete leaf, with registry objects materialized.
struct ResolvedLayerPlan {
  std::string path;
  LayerPlan plan;
  Layer* layer = nullptr;
  int64_t dot_length = 0;
  const approx::SignedMulTable* mul = nullptr;  ///< null = context fallback
  const axmul::Adder* adder = nullptr;          ///< null = context fallback
  const ge::ErrorFit* fit = nullptr;            ///< null = no per-layer fit
};

struct ResolveOptions {
  /// Fit a per-layer GE error function for every GE-eligible leaf that has
  /// a plan multiplier. Off by default so non-GE flows never pay the
  /// Monte-Carlo cost (and never silently enable GE).
  bool fit_ge = false;
  /// Monte-Carlo knobs for the fits; dot_length is overridden per layer.
  ge::McConfig mc;
};

/// A NetPlan materialized against one model instance. Owns the multiplier
/// tables, adders and GE fits its entries point to; move-only (entries hold
/// pointers into the owned storage). Valid for the model's lifetime — the
/// lookup is keyed by leaf addresses.
class PlanResolution {
public:
  PlanResolution() = default;
  PlanResolution(const PlanResolution&) = delete;
  PlanResolution& operator=(const PlanResolution&) = delete;
  PlanResolution(PlanResolution&&) = default;
  PlanResolution& operator=(PlanResolution&&) = default;

  /// Entry for a leaf of the resolved model; nullptr for unknown layers.
  const ResolvedLayerPlan* find(const Layer& leaf) const;

  /// All entries in depth-first model order.
  const std::vector<ResolvedLayerPlan>& entries() const { return entries_; }

  /// True when at least one entry carries a per-layer GE fit.
  bool has_fits() const { return fits_.num_paths() > 0; }

  /// The per-layer fits (inspection / reporting).
  const ge::FitRegistry& fits() const { return fits_; }

  /// Throw unless every leaf can execute a kQuantApprox pass without a
  /// context-wide fallback table: each entry needs a plan multiplier or an
  /// exact/float mode override. Call before running a plan-only context.
  void require_approximable() const;

  /// Throw unless every entry's plan bit-widths match the widths its leaf is
  /// currently quantized with. A plan asking for other widths would silently
  /// run with steps calibrated for the current widths, so a mismatch is an
  /// error, not a degradation: apply_bit_widths + recalibrate first. Both
  /// the Workbench (which calibrates once) and the serving engine (which
  /// admits tenant plans against already-calibrated weights) gate on this.
  void require_bit_widths() const;

  /// Rewrite the resolved exec mode of one leaf in place — the sentinel's
  /// degradation path: a leaf with repeated checksum violations is demoted
  /// to exact/safe mode for every later pass through this resolution.
  /// Returns false when the leaf has no entry; throws on kCalibrate.
  bool override_mode(const Layer& leaf, ExecMode mode);

private:
  friend class NetPlan;

  std::vector<ResolvedLayerPlan> entries_;
  std::unordered_map<const Layer*, const ResolvedLayerPlan*> by_layer_;
  std::map<std::string, approx::SignedMulTable> tables_;  ///< by multiplier id
  std::map<std::string, std::unique_ptr<axmul::Adder>> adders_;  ///< by adder id
  ge::FitRegistry fits_;
};

/// A uniform default plan plus path-keyed overrides.
class NetPlan {
public:
  NetPlan() = default;
  explicit NetPlan(LayerPlan uniform) : uniform_(std::move(uniform)) {}

  LayerPlan& uniform() { return uniform_; }
  const LayerPlan& uniform() const { return uniform_; }

  /// Override the plan for every leaf whose path equals `path` or starts
  /// with `path` + "/". The longest matching override wins; keys that match
  /// no leaf make resolve()/apply_bit_widths() throw (typo protection).
  NetPlan& set(std::string path, LayerPlan plan);

  const std::map<std::string, LayerPlan>& overrides() const { return overrides_; }

  /// The plan entry a leaf path resolves to (uniform when no override
  /// matches).
  const LayerPlan& match(const std::string& path) const;

  /// Text form: "default=<spec>; <path>=<spec>; ..." where <spec> is
  /// <multiplier>[:wN][:aN][:add=<adder>][:noge][:mode=float|exact|approx].
  /// parse(to_string()) round-trips.
  static NetPlan parse(const std::string& text);
  std::string to_string() const;

  /// Apply each leaf's plan bit-widths via set_bit_widths (invalidates the
  /// leaves' calibration; recalibrate afterwards). Throws on unmatched
  /// override keys.
  void apply_bit_widths(Layer& root) const;

  /// Materialize this plan against `root`: build tables/adders from the
  /// registry, optionally fit per-layer GE error functions, and index every
  /// leaf. Throws on unknown registry ids, unmatched override keys, or a
  /// kCalibrate mode override.
  PlanResolution resolve(Layer& root, const ResolveOptions& opt = {}) const;

private:
  LayerPlan uniform_;
  std::map<std::string, LayerPlan> overrides_;
};

/// Effective execution parameters of one conv/FC leaf under a context.
struct LeafExec {
  ExecMode mode = ExecMode::kFloat;
  const approx::SignedMulTable* mul = nullptr;
  const ge::ErrorFit* fit = nullptr;
  const axmul::Adder* adder = nullptr;
};

/// Resolve what a leaf should execute: the context fields, overridden by the
/// leaf's plan entry when ctx.plan is set and knows the leaf. Plan mode
/// overrides apply only in quantized passes (FP/calibrate passes ignore
/// plans entirely); per-layer GE fits apply only to training contexts,
/// mirroring the uniform flow where only the student context carries a fit.
LeafExec plan_leaf_exec(const ExecContext& ctx, const Layer& leaf);

}  // namespace axnn::nn
