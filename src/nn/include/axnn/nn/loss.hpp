// axnn — classification losses (forward value + logit gradient).
#pragma once

#include <vector>

#include "axnn/tensor/tensor.hpp"

namespace axnn::nn {

struct LossResult {
  double value = 0.0;  ///< mean loss over the batch
  Tensor grad;         ///< dL/dlogits, already divided by batch size
};

/// Hard cross-entropy against integer class labels (Eq. 1 with one-hot p):
/// C(y) = -mean_i log softmax(y_i)[label_i].
LossResult cross_entropy(const Tensor& logits, const std::vector<int>& labels);

/// Mean-squared-error loss between two same-shape tensors: mean((a-b)^2),
/// gradient w.r.t. `a`. Utility for regression-style tests and alpha-reg.
LossResult mse_loss(const Tensor& a, const Tensor& b);

}  // namespace axnn::nn
