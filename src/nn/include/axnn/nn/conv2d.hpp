// axnn — 2-D convolution with quantized-exact and quantized-approximate
// execution paths.
//
// Forward lowers to GEMM via im2col: out[O, P] = W[O, K] · cols[K, P] per
// group. In kQuantApprox mode the GEMM multiplies through an approximate-
// multiplier table (Eq. 4); the backward pass uses the straight-through
// estimator of the exact GEMM (Eq. 5), optionally refined by the
// gradient-estimation scale (1 + K) on the weight gradient (Eq. 12).
//
// Per-layer heterogeneity (mixed multipliers, adders, mode overrides, GE
// fits) comes from the execution plan: the forward resolves its effective
// parameters through plan_leaf_exec (axnn/nn/plan.hpp), which returns the
// plain context fields when no plan is attached.
#pragma once

#include <optional>

#include "axnn/kernels/plan.hpp"
#include "axnn/nn/im2col.hpp"
#include "axnn/nn/layer.hpp"
#include "axnn/quant/calibration.hpp"

namespace axnn::nn {

struct Conv2dConfig {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel = 3;
  int64_t stride = 1;
  int64_t padding = 1;
  int64_t groups = 1;   ///< in/out channels must be divisible; groups == in
                        ///< channels gives a depthwise convolution
  bool bias = true;
};

class Conv2d final : public Layer {
public:
  Conv2d(Conv2dConfig cfg, Rng& rng);

  std::string name() const override;
  Tensor forward(const Tensor& x, const ExecContext& ctx) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Param*> params() override;
  void finalize_calibration(quant::Calibration method) override;
  int64_t last_mac_count() const override { return last_macs_; }
  const kernels::PlanMemo* plan_memo() const override { return &plan_memo_; }

  const Conv2dConfig& config() const { return cfg_; }
  Param& weight() { return weight_; }
  Param& bias_param() { return bias_; }
  bool has_bias() const { return cfg_.bias; }

  bool calibrated() const { return calibrated_; }
  const quant::QuantParams& weight_qparams() const { return wgt_qp_; }
  const quant::QuantParams& act_qparams() const { return act_qp_; }
  void set_qparams(const quant::QuantParams& wgt, const quant::QuantParams& act);

  /// The activation range statistics gathered during kCalibrate passes
  /// (sentinel range-guard calibration). Unseen on cloned models, whose
  /// quantization state is copied without the observer reservoir.
  const quant::RangeObserver& act_observer() const { return act_obs_; }

  /// Override the quantization bit-widths before calibration (paper outlook:
  /// "extended for lower bitwidth quantization"). The approximate path
  /// requires weight_bits <= 4 (the LUT's 4-bit operand); quantized-exact
  /// execution accepts any width in [2, 8].
  void set_bit_widths(int weight_bits, int activation_bits);
  int weight_bits() const { return wgt_bits_; }
  int activation_bits() const { return act_bits_; }

  /// Per-output-channel affine fold (BatchNorm folding):
  /// W[o,...] *= scale[o]; b[o] = b[o]*scale[o] + shift[o].
  /// Enables the bias term if it was disabled.
  void fold_scale_shift(const std::vector<float>& scale, const std::vector<float>& shift);

  /// Analytic MACs for one sample with the given input spatial dims.
  int64_t macs_per_sample(int64_t h, int64_t w) const;

private:
  Tensor run_gemm_float(const Tensor& w_mat, const Tensor& cols) const;
  Tensor output_from_mat(const Tensor& out_mat, const ConvGeom& g) const;

  Conv2dConfig cfg_;
  Param weight_;  ///< [O, C/groups, k, k]
  Param bias_;    ///< [O] (zero-sized if disabled)

  // Quantization state.
  int wgt_bits_ = quant::kWeightBits;
  int act_bits_ = quant::kActivationBits;
  quant::QuantParams wgt_qp_{1.0f, quant::kWeightBits};
  quant::QuantParams act_qp_{1.0f, quant::kActivationBits};
  bool calibrated_ = false;
  quant::RangeObserver act_obs_;
  std::optional<Tensor> calib_cols_;    ///< cached cols for MinPropQE
  std::optional<Tensor> calib_out_fp_;  ///< cached FP out_mat for MinPropQE

  // Forward caches for backward.
  ConvGeom geom_{};
  Tensor cached_cols_;     ///< effective (possibly fake-quantized) cols [K, P]
  Tensor cached_w_mat_;    ///< effective weight matrix [O, K/groups-block]
  Tensor cached_act_mask_; ///< STE clip mask in input layout (quant modes)
  Tensor cached_acc_;      ///< integer accumulators [O, P] (GE only)
  const ge::ErrorFit* cached_fit_ = nullptr;
  ExecMode cached_mode_ = ExecMode::kFloat;
  int64_t last_macs_ = 0;
  std::string obs_path_;  ///< telemetry path captured at forward (backward reuses it)

  /// Per-leaf plan memo: the forward/backward GEMMs of this layer resolve
  /// their prepared plans here without touching the global cache's mutex.
  /// mutable because run_gemm_float is const; layers are single-threaded at
  /// a time (the serving lanes each own a model replica).
  mutable kernels::PlanMemo plan_memo_;
};

}  // namespace axnn::nn
