// axnn — small quantization helpers shared by the GEMM layers.
#pragma once

#include <algorithm>
#include <cmath>

#include "axnn/quant/quantizer.hpp"
#include "axnn/tensor/tensor.hpp"

namespace axnn::nn {

/// Quantize a float tensor directly into int8 storage (values are clamped to
/// the symmetric range of `p`, which always fits int8 for bits <= 8).
inline TensorI8 quantize_i8(const Tensor& x, const quant::QuantParams& p) {
  TensorI8 q(x.shape());
  const float inv = 1.0f / p.step;
  const int32_t lo = p.qmin(), hi = p.qmax();
  for (int64_t i = 0; i < x.numel(); ++i) {
    const int32_t v = static_cast<int32_t>(std::lrintf(x[i] * inv));
    q[i] = static_cast<int8_t>(std::clamp(v, lo, hi));
  }
  return q;
}

/// Dequantize int8 values back to float: x~ = q * step.
inline Tensor dequantize_i8(const TensorI8& q, const quant::QuantParams& p) {
  Tensor x(q.shape());
  for (int64_t i = 0; i < q.numel(); ++i) x[i] = static_cast<float>(q[i]) * p.step;
  return x;
}

}  // namespace axnn::nn
