// axnn — 2-D batch normalization.
//
// Kept as an explicit float layer (MobileNetV2 path in the paper); for the
// ResNets the paper folds BN into the preceding convolution before
// quantization — see fold_into() and models::fold_batchnorms().
#pragma once

#include "axnn/nn/conv2d.hpp"
#include "axnn/nn/layer.hpp"

namespace axnn::nn {

class BatchNorm2d final : public Layer {
public:
  explicit BatchNorm2d(int64_t channels, float eps = 1e-5f, float momentum = 0.1f);

  std::string name() const override;
  Tensor forward(const Tensor& x, const ExecContext& ctx) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> buffers() override { return {&running_mean_, &running_var_}; }

  int64_t channels() const { return channels_; }
  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }
  float eps() const { return eps_; }

  /// Fold this layer's affine transform into the preceding convolution
  /// (y = gamma*(conv(x)-mean)/sqrt(var+eps) + beta). Uses running
  /// statistics; the BN layer must be removed from the graph afterwards.
  void fold_into(Conv2d& conv) const;

private:
  int64_t channels_;
  float eps_;
  float momentum_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;

  // Backward caches.
  bool cached_training_ = false;
  Tensor cached_x_;
  Tensor cached_xhat_;
  Tensor cached_mean_, cached_invstd_;
};

}  // namespace axnn::nn
