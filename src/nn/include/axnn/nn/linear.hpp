// axnn — fully-connected layer with quantized-exact and approximate paths.
//
// Same execution model as Conv2d: y[N, O] = x[N, F] · W[O, F]ᵀ + b, lowered
// to the shared approximate GEMM in kQuantApprox mode. Per-layer multiplier
// / adder / mode / GE-fit heterogeneity resolves through plan_leaf_exec
// (axnn/nn/plan.hpp), exactly as in Conv2d.
#pragma once

#include <optional>

#include "axnn/kernels/plan.hpp"
#include "axnn/nn/layer.hpp"
#include "axnn/quant/calibration.hpp"

namespace axnn::nn {

class Linear final : public Layer {
public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias = true);

  std::string name() const override;
  Tensor forward(const Tensor& x, const ExecContext& ctx) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Param*> params() override;
  void finalize_calibration(quant::Calibration method) override;
  int64_t last_mac_count() const override { return last_macs_; }
  const kernels::PlanMemo* plan_memo() const override { return &plan_memo_; }

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }
  Param& weight() { return weight_; }
  Param& bias_param() { return bias_; }

  bool calibrated() const { return calibrated_; }
  const quant::QuantParams& weight_qparams() const { return wgt_qp_; }
  const quant::QuantParams& act_qparams() const { return act_qp_; }
  void set_qparams(const quant::QuantParams& wgt, const quant::QuantParams& act);

  /// See Conv2d::act_observer (sentinel range-guard calibration).
  const quant::RangeObserver& act_observer() const { return act_obs_; }

  /// See Conv2d::set_bit_widths — approximate execution needs weight_bits
  /// <= 4; quantized-exact accepts [2, 8].
  void set_bit_widths(int weight_bits, int activation_bits);
  int weight_bits() const { return wgt_bits_; }
  int activation_bits() const { return act_bits_; }

private:
  int64_t in_ = 0, out_ = 0;
  bool has_bias_ = true;
  Param weight_;  ///< [O, F]
  Param bias_;    ///< [O]

  int wgt_bits_ = quant::kWeightBits;
  int act_bits_ = quant::kActivationBits;
  quant::QuantParams wgt_qp_{1.0f, quant::kWeightBits};
  quant::QuantParams act_qp_{1.0f, quant::kActivationBits};
  bool calibrated_ = false;
  quant::RangeObserver act_obs_;
  std::optional<Tensor> calib_x_;
  std::optional<Tensor> calib_out_fp_;

  Tensor cached_x_;        ///< effective input [N, F]
  Tensor cached_w_;        ///< effective weights [O, F]
  Tensor cached_act_mask_;
  Tensor cached_acc_;      ///< integer accumulators [N, O] (GE only)
  const ge::ErrorFit* cached_fit_ = nullptr;
  int64_t last_macs_ = 0;
  std::string obs_path_;  ///< telemetry path captured at forward (backward reuses it)

  /// See Conv2d::plan_memo_ — per-leaf prepared-plan memo.
  mutable kernels::PlanMemo plan_memo_;
};

}  // namespace axnn::nn
