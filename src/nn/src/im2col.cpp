#include "axnn/nn/im2col.hpp"

#include <stdexcept>

#include "axnn/tensor/threadpool.hpp"

namespace axnn::nn {

ConvGeom ConvGeom::of(const Shape& x, int64_t kernel, int64_t stride, int64_t padding) {
  if (x.rank() != 4) throw std::invalid_argument("ConvGeom: expected NCHW input");
  ConvGeom g;
  g.n = x[0];
  g.c = x[1];
  g.h = x[2];
  g.w = x[3];
  g.kernel = kernel;
  g.stride = stride;
  g.padding = padding;
  g.oh = (g.h + 2 * padding - kernel) / stride + 1;
  g.ow = (g.w + 2 * padding - kernel) / stride + 1;
  if (g.oh <= 0 || g.ow <= 0) throw std::invalid_argument("ConvGeom: non-positive output dims");
  return g;
}

namespace {

template <typename T>
BasicTensor<T> im2col_impl(const BasicTensor<T>& x, const ConvGeom& g) {
  const int64_t rows = g.patch_rows();
  const int64_t cols_n = g.out_cols();
  BasicTensor<T> cols(Shape{rows, cols_n});
  const T* xd = x.data();
  T* cd = cols.data();

  parallel_for(rows, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t kw = r % g.kernel;
      const int64_t kh = (r / g.kernel) % g.kernel;
      const int64_t c = r / (g.kernel * g.kernel);
      T* crow = cd + r * cols_n;
      for (int64_t n = 0; n < g.n; ++n) {
        const T* xplane = xd + (n * g.c + c) * g.h * g.w;
        for (int64_t i = 0; i < g.oh; ++i) {
          const int64_t ih = i * g.stride - g.padding + kh;
          T* cpos = crow + (n * g.oh + i) * g.ow;
          if (ih < 0 || ih >= g.h) {
            for (int64_t j = 0; j < g.ow; ++j) cpos[j] = T{};
            continue;
          }
          const T* xrow = xplane + ih * g.w;
          for (int64_t j = 0; j < g.ow; ++j) {
            const int64_t iw = j * g.stride - g.padding + kw;
            cpos[j] = (iw >= 0 && iw < g.w) ? xrow[iw] : T{};
          }
        }
      }
    }
  });
  return cols;
}

}  // namespace

Tensor im2col(const Tensor& x, const ConvGeom& g) { return im2col_impl(x, g); }

TensorI8 im2col_i8(const TensorI8& x, const ConvGeom& g) { return im2col_impl(x, g); }

Tensor col2im(const Tensor& cols, const ConvGeom& g) {
  Tensor dx(Shape{g.n, g.c, g.h, g.w}, 0.0f);
  const int64_t rows = g.patch_rows();
  const int64_t cols_n = g.out_cols();
  if (cols.shape() != Shape{rows, cols_n})
    throw std::invalid_argument("col2im: cols shape mismatch");
  const float* cd = cols.data();
  float* xd = dx.data();

  // Parallelise over input channels: every cols row with the same channel c
  // scatters only into that channel's planes, so channels are independent.
  parallel_for(g.c, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      for (int64_t kh = 0; kh < g.kernel; ++kh) {
        for (int64_t kw = 0; kw < g.kernel; ++kw) {
          const int64_t r = (c * g.kernel + kh) * g.kernel + kw;
          const float* crow = cd + r * cols_n;
          for (int64_t n = 0; n < g.n; ++n) {
            float* xplane = xd + (n * g.c + c) * g.h * g.w;
            for (int64_t i = 0; i < g.oh; ++i) {
              const int64_t ih = i * g.stride - g.padding + kh;
              if (ih < 0 || ih >= g.h) continue;
              const float* cpos = crow + (n * g.oh + i) * g.ow;
              float* xrow = xplane + ih * g.w;
              for (int64_t j = 0; j < g.ow; ++j) {
                const int64_t iw = j * g.stride - g.padding + kw;
                if (iw >= 0 && iw < g.w) xrow[iw] += cpos[j];
              }
            }
          }
        }
      }
    }
  });
  return dx;
}

}  // namespace axnn::nn
