#include "axnn/nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "axnn/tensor/ops.hpp"

namespace axnn::nn {

LossResult cross_entropy(const Tensor& logits, const std::vector<int>& labels) {
  if (logits.shape().rank() != 2) throw std::invalid_argument("cross_entropy: expected [N, C]");
  const int64_t n = logits.shape()[0], c = logits.shape()[1];
  if (static_cast<int64_t>(labels.size()) != n)
    throw std::invalid_argument("cross_entropy: label count mismatch");

  const Tensor logp = ops::log_softmax(logits);
  const Tensor p = ops::softmax(logits);

  LossResult r;
  r.grad = p;  // grad = (softmax - onehot) / N
  double loss = 0.0;
  const float invn = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const int y = labels[static_cast<size_t>(i)];
    if (y < 0 || y >= c) throw std::invalid_argument("cross_entropy: label out of range");
    loss -= logp(i, y);
    r.grad(i, y) -= 1.0f;
  }
  for (int64_t i = 0; i < r.grad.numel(); ++i) r.grad[i] *= invn;
  r.value = loss / static_cast<double>(n);
  return r;
}

LossResult mse_loss(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("mse_loss: shape mismatch");
  LossResult r;
  r.grad = Tensor(a.shape());
  double acc = 0.0;
  const double inv = a.numel() ? 1.0 / static_cast<double>(a.numel()) : 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
    r.grad[i] = static_cast<float>(2.0 * d * inv);
  }
  r.value = acc * inv;
  return r;
}

}  // namespace axnn::nn
