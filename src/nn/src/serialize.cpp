#include "axnn/nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace axnn::nn {

namespace {

constexpr char kMagic[4] = {'A', 'X', 'N', 'P'};
constexpr uint32_t kVersion = 2;  // v2: parameters followed by buffers

void write_tensor(std::ofstream& f, const Tensor& t) {
  const uint32_t rank = static_cast<uint32_t>(t.shape().rank());
  f.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  for (int d = 0; d < static_cast<int>(rank); ++d) {
    const int64_t dim = t.shape()[d];
    f.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  }
  f.write(reinterpret_cast<const char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

void read_tensor_into(std::ifstream& f, Tensor& t, const std::string& path) {
  uint32_t rank = 0;
  f.read(reinterpret_cast<char*>(&rank), sizeof(rank));
  if (rank != static_cast<uint32_t>(t.shape().rank()))
    throw std::runtime_error("load_params: rank mismatch in " + path);
  for (int d = 0; d < static_cast<int>(rank); ++d) {
    int64_t dim = 0;
    f.read(reinterpret_cast<char*>(&dim), sizeof(dim));
    if (dim != t.shape()[d]) throw std::runtime_error("load_params: shape mismatch in " + path);
  }
  f.read(reinterpret_cast<char*>(t.data()),
         static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!f) throw std::runtime_error("load_params: truncated file " + path);
}

}  // namespace

void save_params(Layer& root, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("save_params: cannot open " + path);
  const auto params = collect_params(root);
  const auto buffers = collect_buffers(root);
  f.write(kMagic, 4);
  const uint32_t ver = kVersion;
  f.write(reinterpret_cast<const char*>(&ver), sizeof(ver));
  const uint64_t np = params.size(), nb = buffers.size();
  f.write(reinterpret_cast<const char*>(&np), sizeof(np));
  f.write(reinterpret_cast<const char*>(&nb), sizeof(nb));
  for (const Param* p : params) write_tensor(f, p->value);
  for (const Tensor* b : buffers) write_tensor(f, *b);
  if (!f) throw std::runtime_error("save_params: write failed for " + path);
}

void load_params(Layer& root, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_params: cannot open " + path);
  char magic[4];
  f.read(magic, 4);
  if (!f || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("load_params: bad magic in " + path);
  uint32_t ver = 0;
  f.read(reinterpret_cast<char*>(&ver), sizeof(ver));
  if (ver != kVersion) throw std::runtime_error("load_params: unsupported version");
  uint64_t np = 0, nb = 0;
  f.read(reinterpret_cast<char*>(&np), sizeof(np));
  f.read(reinterpret_cast<char*>(&nb), sizeof(nb));

  const auto params = collect_params(root);
  const auto buffers = collect_buffers(root);
  if (np != params.size() || nb != buffers.size())
    throw std::runtime_error("load_params: state count mismatch in " + path);
  for (Param* p : params) read_tensor_into(f, p->value, path);
  for (Tensor* b : buffers) read_tensor_into(f, *b, path);
}

bool is_param_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  char magic[4];
  f.read(magic, 4);
  return f && std::memcmp(magic, kMagic, 4) == 0;
}

}  // namespace axnn::nn
