#include "axnn/nn/serialize.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "axnn/resilience/crc32.hpp"

namespace axnn::nn {

namespace {

constexpr char kMagic[4] = {'A', 'X', 'N', 'P'};
constexpr uint32_t kMinVersion = 2;  // v2: parameters followed by buffers
constexpr size_t kFooterBytes = sizeof(uint32_t);

void append(std::string& buf, const void* data, size_t n) {
  buf.append(static_cast<const char*>(data), n);
}

void append_tensor(std::string& buf, const Tensor& t) {
  const uint32_t rank = static_cast<uint32_t>(t.shape().rank());
  append(buf, &rank, sizeof(rank));
  for (int d = 0; d < static_cast<int>(rank); ++d) {
    const int64_t dim = t.shape()[d];
    append(buf, &dim, sizeof(dim));
  }
  append(buf, t.data(), static_cast<size_t>(t.numel()) * sizeof(float));
}

/// Bounds-checked cursor over the in-memory file image. Every read failure
/// carries the file path and the reader's current context string.
struct Reader {
  const std::string& buf;
  const std::string& path;
  size_t pos = 0;

  void read(void* out, size_t n, const std::string& what) {
    if (pos + n > buf.size())
      throw std::runtime_error("load_params: truncated file " + path + " (reading " + what +
                               " at offset " + std::to_string(pos) + ")");
    std::memcpy(out, buf.data() + pos, n);
    pos += n;
  }

  void read_tensor_into(Tensor& t, const std::string& what) {
    uint32_t rank = 0;
    read(&rank, sizeof(rank), what + " rank");
    if (rank != static_cast<uint32_t>(t.shape().rank()))
      throw std::runtime_error("load_params: rank mismatch for " + what + " in " + path +
                               ": expected " + std::to_string(t.shape().rank()) + ", got " +
                               std::to_string(rank));
    Shape stored;
    std::vector<int64_t> dims(rank);
    for (uint32_t d = 0; d < rank; ++d) read(&dims[d], sizeof(int64_t), what + " dims");
    stored = Shape(dims);
    if (stored != t.shape())
      throw std::runtime_error("load_params: shape mismatch for " + what + " in " + path +
                               ": expected " + t.shape().to_string() + ", got " +
                               stored.to_string());
    read(t.data(), static_cast<size_t>(t.numel()) * sizeof(float), what + " payload");
  }
};

}  // namespace

void save_params(Layer& root, const std::string& path, uint32_t version) {
  if (version < kMinVersion || version > kParamFormatVersion)
    throw std::invalid_argument("save_params: unsupported version " + std::to_string(version));
  const auto params = collect_params(root);
  const auto buffers = collect_buffers(root);

  std::string buf;
  append(buf, kMagic, 4);
  append(buf, &version, sizeof(version));
  const uint64_t np = params.size(), nb = buffers.size();
  append(buf, &np, sizeof(np));
  append(buf, &nb, sizeof(nb));
  for (const Param* p : params) append_tensor(buf, p->value);
  for (const Tensor* b : buffers) append_tensor(buf, *b);
  if (version >= 3) {
    const uint32_t crc = resilience::crc32(buf.data(), buf.size());
    append(buf, &crc, sizeof(crc));
  }

  // Atomic write: assemble in a sibling temp file, then rename into place,
  // so an interrupted save can never leave a half-written cache at `path`.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw std::runtime_error("save_params: cannot open " + tmp);
    f.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!f) throw std::runtime_error("save_params: write failed for " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("save_params: cannot rename " + tmp + " to " + path);
  }
}

namespace {

/// Shared decode path: `buf` is the complete file image; `path` only labels
/// error messages. Mutates buf (strips the v3 CRC footer after verifying).
void load_params_from_buffer(Layer& root, std::string& buf, const std::string& path) {
  Reader r{buf, path};
  char magic[4];
  r.read(magic, 4, "magic");
  if (std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("load_params: bad magic in " + path);
  uint32_t ver = 0;
  r.read(&ver, sizeof(ver), "version");
  if (ver < kMinVersion || ver > kParamFormatVersion)
    throw std::runtime_error("load_params: unsupported version " + std::to_string(ver) +
                             " in " + path);

  if (ver >= 3) {
    // Verify the CRC32 footer before trusting any payload bytes.
    if (buf.size() < r.pos + kFooterBytes)
      throw std::runtime_error("load_params: truncated file " + path + " (missing CRC footer)");
    uint32_t stored = 0;
    std::memcpy(&stored, buf.data() + buf.size() - kFooterBytes, kFooterBytes);
    const uint32_t actual = resilience::crc32(buf.data(), buf.size() - kFooterBytes);
    if (stored != actual)
      throw std::runtime_error("load_params: checksum mismatch in " + path +
                               " (file is corrupt or truncated)");
    buf.resize(buf.size() - kFooterBytes);  // hide the footer from the reader
  }

  uint64_t np = 0, nb = 0;
  r.read(&np, sizeof(np), "param count");
  r.read(&nb, sizeof(nb), "buffer count");

  const auto params = collect_params(root);
  const auto buffers = collect_buffers(root);
  if (np != params.size() || nb != buffers.size())
    throw std::runtime_error("load_params: state count mismatch in " + path + ": expected " +
                             std::to_string(params.size()) + " params / " +
                             std::to_string(buffers.size()) + " buffers, got " +
                             std::to_string(np) + " / " + std::to_string(nb));
  for (size_t i = 0; i < params.size(); ++i)
    r.read_tensor_into(params[i]->value, "param " + std::to_string(i));
  for (size_t i = 0; i < buffers.size(); ++i)
    r.read_tensor_into(*buffers[i], "buffer " + std::to_string(i));
}

}  // namespace

void load_params(Layer& root, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_params: cannot open " + path);
  std::string buf((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  load_params_from_buffer(root, buf, path);
}

void load_params_from_memory(Layer& root, const void* data, size_t size, const std::string& name) {
  std::string buf(static_cast<const char*>(data), size);
  load_params_from_buffer(root, buf, name);
}

bool is_param_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  char magic[4];
  f.read(magic, 4);
  if (!f || std::memcmp(magic, kMagic, 4) != 0) return false;
  uint32_t ver = 0;
  f.read(reinterpret_cast<char*>(&ver), sizeof(ver));
  return f && ver >= kMinVersion && ver <= kParamFormatVersion;
}

}  // namespace axnn::nn
