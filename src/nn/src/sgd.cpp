#include "axnn/nn/sgd.hpp"

namespace axnn::nn {

Sgd::Sgd(std::vector<Param*> params, SgdConfig cfg)
    : params_(std::move(params)), cfg_(cfg), lr_(cfg.lr) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.emplace_back(p->value.shape(), 0.0f);
}

void Sgd::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& v = velocity_[i];
    for (int64_t j = 0; j < p.value.numel(); ++j) {
      float g = p.grad[j];
      if (cfg_.weight_decay != 0.0f) g += cfg_.weight_decay * p.value[j];
      v[j] = cfg_.momentum * v[j] + g;
      p.value[j] -= lr_ * v[j];
    }
  }
}

void Sgd::on_epoch_end() {
  ++epochs_done_;
  if (cfg_.decay_every_epochs > 0 && epochs_done_ % cfg_.decay_every_epochs == 0)
    lr_ *= cfg_.decay_factor;
}

}  // namespace axnn::nn
