// axnn — internal telemetry helpers shared by the GEMM leaves (Conv2d /
// Linear). Every function here is called behind an obs::enabled() guard;
// none of them touch the computation, only the attached collector.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "axnn/ge/error_fit.hpp"
#include "axnn/nn/layer.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/tensor/tensor.hpp"

namespace axnn::nn::detail {

/// Metric path for a leaf: the thread-local container path when the leaf
/// runs inside an instrumented model, its own name when run bare.
inline std::string leaf_obs_path(const Layer& leaf) {
  std::string p = obs::current_path();
  return p.empty() ? leaf.name() : p;
}

inline const char* mode_metric(ExecMode m) {
  switch (m) {
    case ExecMode::kFloat: return "mode.float";
    case ExecMode::kCalibrate: return "mode.calibrate";
    case ExecMode::kQuantExact: return "mode.exact";
    case ExecMode::kQuantApprox: return "mode.approx";
  }
  return "mode.unknown";
}

/// Per-forward basics: call count, analytic MACs, exec-mode histogram and —
/// when the quantized path produced an STE mask — the activation clip rate
/// (fraction of inputs saturating the activation range; the mask is 1
/// inside the range).
inline void record_leaf_forward(const std::string& path, ExecMode mode, int64_t macs,
                                const Tensor& act_mask) {
  obs::Collector* c = obs::collector();
  if (c == nullptr) return;
  c->add(path, "forward.calls", 1.0);
  c->add(path, "forward.macs", static_cast<double>(macs));
  c->add(path, mode_metric(mode), 1.0);
  if (!act_mask.empty()) {
    double inside = 0.0;
    for (int64_t i = 0; i < act_mask.numel(); ++i) inside += act_mask[i];
    c->add(path, "act_clip_rate", 1.0 - inside / static_cast<double>(act_mask.numel()));
  }
}

/// GE backward: distribution of |K| = |f'(y)| over this pass's accumulator
/// values (Eq. 12-13) — how much correction GE is actually applying.
inline void record_ge_backward(const std::string& path, const ge::ErrorFit& fit,
                               const Tensor& acc) {
  obs::Collector* c = obs::collector();
  if (c == nullptr || acc.empty()) return;
  double sum = 0.0;
  double mn = std::numeric_limits<double>::infinity(), mx = -mn;
  for (int64_t i = 0; i < acc.numel(); ++i) {
    const double k = std::fabs(fit.derivative(acc[i]));
    sum += k;
    if (k < mn) mn = k;
    if (k > mx) mx = k;
  }
  c->add_samples(path, "ge.abs_k", sum, acc.numel(), mn, mx);
}

/// GE diagnostics (CollectorConfig::ge_residual): the observed accumulated
/// error eps = y~ - y per output element against the fit's prediction
/// f(y~). `approx` and `exact` are the approximate and exact int32
/// accumulators of the same quantized operands; an exact multiplier gives
/// eps == 0 and (with its constant-zero fit) a ~0 residual — the golden
/// telemetry check.
inline void record_ge_residual(const std::string& path, const ge::ErrorFit* fit,
                               const int32_t* approx, const int32_t* exact, int64_t n) {
  obs::Collector* c = obs::collector();
  if (c == nullptr || n <= 0) return;
  double eps_sum = 0.0, res_sum = 0.0;
  double eps_mn = std::numeric_limits<double>::infinity(), eps_mx = -eps_mn;
  double res_mn = eps_mn, res_mx = -eps_mn;
  for (int64_t i = 0; i < n; ++i) {
    const double eps = static_cast<double>(approx[i]) - static_cast<double>(exact[i]);
    const double ae = std::fabs(eps);
    eps_sum += ae;
    if (ae < eps_mn) eps_mn = ae;
    if (ae > eps_mx) eps_mx = ae;
    if (fit != nullptr) {
      const double r = std::fabs(fit->eval(static_cast<double>(approx[i])) - eps);
      res_sum += r;
      if (r < res_mn) res_mn = r;
      if (r > res_mx) res_mx = r;
    }
  }
  c->add_samples(path, "ge.eps_abs", eps_sum, n, eps_mn, eps_mx);
  if (fit != nullptr) c->add_samples(path, "ge.fit_residual", res_sum, n, res_mn, res_mx);
}

}  // namespace axnn::nn::detail
