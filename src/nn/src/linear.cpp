#include "axnn/nn/linear.hpp"

#include <stdexcept>

#include "axnn/approx/kernels.hpp"
#include "axnn/nn/monitor.hpp"
#include "axnn/nn/plan.hpp"
#include "axnn/nn/qutils.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/tensor/gemm.hpp"
#include "axnn/tensor/kernels.hpp"
#include "axnn/tensor/ops.hpp"
#include "obs_hooks.hpp"

namespace axnn::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_(in_features), out_(out_features), has_bias_(bias) {
  if (in_ <= 0 || out_ <= 0) throw std::invalid_argument("Linear: features must be positive");
  weight_ = Param(kaiming_normal(Shape{out_, in_}, in_, rng));
  if (has_bias_) bias_ = Param(Tensor(Shape{out_}, 0.0f));
}

std::string Linear::name() const {
  return "linear_" + std::to_string(in_) + "->" + std::to_string(out_);
}

std::vector<Param*> Linear::params() {
  std::vector<Param*> p{&weight_};
  if (has_bias_) p.push_back(&bias_);
  return p;
}

void Linear::set_qparams(const quant::QuantParams& wgt, const quant::QuantParams& act) {
  wgt_qp_ = wgt;
  act_qp_ = act;
  wgt_bits_ = wgt.bits;
  act_bits_ = act.bits;
  calibrated_ = true;
}

void Linear::set_bit_widths(int weight_bits, int activation_bits) {
  if (weight_bits < 2 || weight_bits > 8 || activation_bits < 2 || activation_bits > 8)
    throw std::invalid_argument("Linear::set_bit_widths: widths must be in [2, 8]");
  wgt_bits_ = weight_bits;
  act_bits_ = activation_bits;
  calibrated_ = false;
}

namespace {
Tensor linear_forward_float(const Tensor& x, const Tensor& w, const Tensor* bias,
                            kernels::PlanMemo* memo) {
  const int64_t n = x.shape()[0], f = x.shape()[1], o = w.shape()[0];
  Tensor y(Shape{n, o});
  kernels::gemm({.trans_b = true}, x.data(), w.data(), y.data(), n, f, o,
                kernels::auto_backend(n, f, o), nullptr, memo);
  if (bias != nullptr)
    for (int64_t i = 0; i < n; ++i)
      for (int64_t j = 0; j < o; ++j) y(i, j) += (*bias)[j];
  return y;
}
}  // namespace

Tensor Linear::forward(const Tensor& x, const ExecContext& ctx) {
  if (x.shape().rank() != 2 || x.shape()[1] != in_)
    throw std::invalid_argument("Linear::forward: bad input shape " + x.shape().to_string());
  const int64_t n = x.shape()[0];
  last_macs_ = n * in_ * out_;
  cached_fit_ = nullptr;
  cached_acc_ = Tensor{};
  cached_act_mask_ = Tensor{};
  const Tensor* bias = has_bias_ ? &bias_.value : nullptr;
  const LeafExec ex = plan_leaf_exec(ctx, *this);

  // Telemetry (zero-overhead when disabled); see Conv2d::forward.
  const bool obs_on = obs::enabled();
  if (obs_on) obs_path_ = detail::leaf_obs_path(*this);
  obs::ScopedTimer timer("forward.ns", obs_path_);

  switch (ex.mode) {
    case ExecMode::kFloat:
    case ExecMode::kCalibrate: {
      Tensor y = linear_forward_float(x, weight_.value, bias, &plan_memo_);
      if (ex.mode == ExecMode::kCalibrate) {
        act_obs_.observe(x);
        calib_x_ = x;
        calib_out_fp_ = linear_forward_float(x, weight_.value, nullptr, &plan_memo_);
      }
      cached_x_ = x;
      cached_w_ = weight_.value;
      if (obs_on) detail::record_leaf_forward(obs_path_, ex.mode, last_macs_, Tensor{});
      return y;
    }

    case ExecMode::kQuantExact: {
      if (!calibrated_) throw std::logic_error("Linear: quantized forward before calibration");
      if (ctx.monitor != nullptr) ctx.monitor->on_leaf_input(*this, x);
      Tensor xq = quant::fake_quantize(x, act_qp_);
      cached_act_mask_ = quant::ste_mask(x, act_qp_);
      Tensor wq = quant::fake_quantize(weight_.value, wgt_qp_);
      Tensor y = linear_forward_float(xq, wq, bias, &plan_memo_);
      cached_x_ = std::move(xq);
      cached_w_ = std::move(wq);
      if (obs_on) detail::record_leaf_forward(obs_path_, ex.mode, last_macs_, cached_act_mask_);
      return y;
    }

    case ExecMode::kQuantApprox: {
      if (!calibrated_) throw std::logic_error("Linear: approx forward before calibration");
      const approx::SignedMulTable* mul = ex.mul;
      if (mul == nullptr)
        throw std::logic_error("Linear: kQuantApprox requires a multiplier table");
      if (wgt_qp_.bits > 4)
        throw std::logic_error(
            "Linear: approximate execution requires weight_bits <= 4 (LUT operand)");
      if (ctx.monitor != nullptr) ctx.monitor->on_leaf_input(*this, x);
      const TensorI8 qx = quantize_i8(x, act_qp_);
      cached_act_mask_ = quant::ste_mask(x, act_qp_);
      const TensorI8 qw = quantize_i8(weight_.value, wgt_qp_);
      // gemm_approx computes W[O,F] ·~ X[F,N]: transpose the activations so
      // they take the 8-bit operand role.
      TensorI8 qxt(Shape{in_, n});
      for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < in_; ++j) qxt(j, i) = qx(i, j);
      const bool forced_exact = ctx.monitor != nullptr && ex.adder == nullptr &&
                                ctx.monitor->force_exact(*this);
      TensorI32 acc(Shape{out_, n});
      if (ex.adder != nullptr)
        kernels::gemm_approx_accum({}, qw.data(), qxt.data(), acc.data(), out_, in_, n,
                                   *mul, *ex.adder);
      else if (forced_exact)
        kernels::gemm_exact({}, qw.data(), qxt.data(), acc.data(), out_, in_, n,
                            kernels::auto_backend(out_, in_, n), nullptr, &plan_memo_);
      else
        kernels::gemm_approx({}, qw.data(), qxt.data(), acc.data(), out_, in_, n, *mul,
                             kernels::auto_backend(out_, in_, n), nullptr, &plan_memo_);
      if (ctx.monitor != nullptr && ex.adder == nullptr)
        ctx.monitor->on_leaf_gemm(*this, 0, !forced_exact, qw.data(), qxt.data(), acc.data(),
                                  out_, in_, n, forced_exact ? nullptr : mul);

      const float s = act_qp_.step * wgt_qp_.step;
      Tensor y(Shape{n, out_});
      for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < out_; ++j)
          y(i, j) = static_cast<float>(acc(j, i)) * s + (has_bias_ ? bias_.value[j] : 0.0f);

      cached_x_ = dequantize_i8(qx, act_qp_);
      cached_w_ = dequantize_i8(qw, wgt_qp_);
      if (ex.fit != nullptr && !ex.fit->is_constant()) {
        cached_fit_ = ex.fit;
        Tensor acc_f(Shape{n, out_});
        for (int64_t i = 0; i < n; ++i)
          for (int64_t j = 0; j < out_; ++j) acc_f(i, j) = static_cast<float>(acc(j, i));
        cached_acc_ = std::move(acc_f);
      }
      if (obs_on) {
        detail::record_leaf_forward(obs_path_, ex.mode, last_macs_, cached_act_mask_);
        obs::Collector* c = obs::collector();
        if (c != nullptr && c->config().ge_residual) {
          TensorI32 exact(Shape{out_, n});
          kernels::gemm_exact({}, qw.data(), qxt.data(), exact.data(), out_, in_, n,
                              kernels::auto_backend(out_, in_, n), nullptr, &plan_memo_);
          detail::record_ge_residual(obs_path_, ex.fit, acc.data(), exact.data(), acc.numel());
        }
      }
      return y;
    }
  }
  throw std::logic_error("Linear::forward: unknown mode");
}

Tensor Linear::backward(const Tensor& dy) {
  const int64_t n = cached_x_.shape()[0];
  if (dy.shape() != Shape{n, out_})
    throw std::invalid_argument("Linear::backward: dy shape mismatch");

  if (has_bias_) {
    for (int64_t j = 0; j < out_; ++j) {
      double s = 0.0;
      for (int64_t i = 0; i < n; ++i) s += dy(i, j);
      bias_.grad[j] += static_cast<float>(s);
    }
  }

  const Tensor* dyw = &dy;
  Tensor dy_scaled;
  if (cached_fit_ != nullptr) {
    dy_scaled = dy;
    for (int64_t i = 0; i < dy_scaled.numel(); ++i)
      dy_scaled[i] *= static_cast<float>(1.0 + cached_fit_->derivative(cached_acc_[i]));
    dyw = &dy_scaled;
    if (obs::enabled()) detail::record_ge_backward(obs_path_, *cached_fit_, cached_acc_);
  }

  // dW[O,F] += dyᵀ · x
  kernels::gemm({.trans_a = true, .accumulate = true}, dyw->data(), cached_x_.data(),
                weight_.grad.data(), out_, n, in_,
                kernels::auto_backend(out_, n, in_), nullptr, &plan_memo_);

  // dx[N,F] = dy · W
  Tensor dx(Shape{n, in_});
  kernels::gemm({}, dy.data(), cached_w_.data(), dx.data(), n, out_, in_,
                kernels::auto_backend(n, out_, in_), nullptr, &plan_memo_);
  if (!cached_act_mask_.empty())
    for (int64_t i = 0; i < dx.numel(); ++i) dx[i] *= cached_act_mask_[i];
  return dx;
}

void Linear::finalize_calibration(quant::Calibration method) {
  if (!act_obs_.seen())
    throw std::logic_error("Linear: finalize_calibration without calibration passes");
  act_qp_ = act_obs_.params_min_mse(act_bits_);

  switch (method) {
    case quant::Calibration::kMaxAbs:
      wgt_qp_ = quant::calibrate_max_abs(weight_.value, wgt_bits_);
      break;
    case quant::Calibration::kMinMse:
      wgt_qp_ = quant::calibrate_min_mse(weight_.value, wgt_bits_);
      break;
    case quant::Calibration::kMinPropQE: {
      if (!calib_x_ || !calib_out_fp_) {
        wgt_qp_ = quant::calibrate_min_mse(weight_.value, wgt_bits_);
        break;
      }
      wgt_qp_ = quant::calibrate_min_prop_qe(
          weight_.value, wgt_bits_, [&](const quant::QuantParams& p) {
            const Tensor wq = quant::fake_quantize(weight_.value, p);
            const Tensor out = linear_forward_float(*calib_x_, wq, nullptr, &plan_memo_);
            return ops::mse(out, *calib_out_fp_);
          });
      break;
    }
  }
  calibrated_ = true;
  calib_x_.reset();
  calib_out_fp_.reset();
}

}  // namespace axnn::nn
