#include "axnn/nn/conv2d.hpp"

#include <cmath>
#include <stdexcept>

#include "axnn/approx/kernels.hpp"
#include "axnn/nn/monitor.hpp"
#include "axnn/nn/plan.hpp"
#include "axnn/nn/qutils.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/tensor/gemm.hpp"
#include "axnn/tensor/kernels.hpp"
#include "axnn/tensor/ops.hpp"
#include "obs_hooks.hpp"

namespace axnn::nn {

namespace {

/// [N,O,oh,ow] feature map -> [O, N*oh*ow] GEMM layout.
Tensor to_mat(const Tensor& fmap) {
  const int64_t n = fmap.shape()[0], o = fmap.shape()[1];
  const int64_t hw = fmap.shape()[2] * fmap.shape()[3];
  Tensor mat(Shape{o, n * hw});
  for (int64_t b = 0; b < n; ++b)
    for (int64_t ch = 0; ch < o; ++ch) {
      const float* src = fmap.data() + (b * o + ch) * hw;
      float* dst = mat.data() + ch * (n * hw) + b * hw;
      for (int64_t p = 0; p < hw; ++p) dst[p] = src[p];
    }
  return mat;
}

}  // namespace

Conv2d::Conv2d(Conv2dConfig cfg, Rng& rng) : cfg_(cfg) {
  if (cfg_.in_channels <= 0 || cfg_.out_channels <= 0)
    throw std::invalid_argument("Conv2d: channels must be positive");
  if (cfg_.groups <= 0 || cfg_.in_channels % cfg_.groups || cfg_.out_channels % cfg_.groups)
    throw std::invalid_argument("Conv2d: channels must be divisible by groups");
  const int64_t cg = cfg_.in_channels / cfg_.groups;
  const int64_t fan_in = cg * cfg_.kernel * cfg_.kernel;
  weight_ = Param(kaiming_normal(Shape{cfg_.out_channels, cg, cfg_.kernel, cfg_.kernel},
                                 fan_in, rng));
  if (cfg_.bias) bias_ = Param(Tensor(Shape{cfg_.out_channels}, 0.0f));
}

std::string Conv2d::name() const {
  return "conv" + std::to_string(cfg_.kernel) + "x" + std::to_string(cfg_.kernel) + "_" +
         std::to_string(cfg_.in_channels) + "->" + std::to_string(cfg_.out_channels) +
         (cfg_.groups > 1 ? "_g" + std::to_string(cfg_.groups) : "");
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> p{&weight_};
  if (cfg_.bias) p.push_back(&bias_);
  return p;
}

void Conv2d::set_qparams(const quant::QuantParams& wgt, const quant::QuantParams& act) {
  wgt_qp_ = wgt;
  act_qp_ = act;
  wgt_bits_ = wgt.bits;
  act_bits_ = act.bits;
  calibrated_ = true;
}

void Conv2d::set_bit_widths(int weight_bits, int activation_bits) {
  if (weight_bits < 2 || weight_bits > 8 || activation_bits < 2 || activation_bits > 8)
    throw std::invalid_argument("Conv2d::set_bit_widths: widths must be in [2, 8]");
  wgt_bits_ = weight_bits;
  act_bits_ = activation_bits;
  calibrated_ = false;  // existing steps were chosen for the old widths
}

int64_t Conv2d::macs_per_sample(int64_t h, int64_t w) const {
  const int64_t oh = (h + 2 * cfg_.padding - cfg_.kernel) / cfg_.stride + 1;
  const int64_t ow = (w + 2 * cfg_.padding - cfg_.kernel) / cfg_.stride + 1;
  const int64_t cg = cfg_.in_channels / cfg_.groups;
  return cfg_.out_channels * cg * cfg_.kernel * cfg_.kernel * oh * ow;
}

Tensor Conv2d::run_gemm_float(const Tensor& w_mat, const Tensor& cols) const {
  const int64_t o = cfg_.out_channels, grp = cfg_.groups;
  const int64_t og = o / grp;
  const int64_t kg = w_mat.numel() / o;
  const int64_t p = cols.shape()[1];
  Tensor out(Shape{o, p});
  for (int64_t g = 0; g < grp; ++g)
    kernels::gemm({}, w_mat.data() + g * og * kg, cols.data() + g * kg * p,
                  out.data() + g * og * p, og, kg, p,
                  kernels::auto_backend(og, kg, p), nullptr, &plan_memo_);
  return out;
}

Tensor Conv2d::output_from_mat(const Tensor& out_mat, const ConvGeom& g) const {
  Tensor out(Shape{g.n, cfg_.out_channels, g.oh, g.ow});
  const int64_t hw = g.oh * g.ow;
  const int64_t p_total = g.n * hw;
  for (int64_t b = 0; b < g.n; ++b)
    for (int64_t ch = 0; ch < cfg_.out_channels; ++ch) {
      const float bias_v = cfg_.bias ? bias_.value[ch] : 0.0f;
      const float* src = out_mat.data() + ch * p_total + b * hw;
      float* dst = out.data() + (b * cfg_.out_channels + ch) * hw;
      for (int64_t p = 0; p < hw; ++p) dst[p] = src[p] + bias_v;
    }
  return out;
}

Tensor Conv2d::forward(const Tensor& x, const ExecContext& ctx) {
  if (x.shape().rank() != 4 || x.shape()[1] != cfg_.in_channels)
    throw std::invalid_argument("Conv2d::forward: bad input shape " + x.shape().to_string());
  geom_ = ConvGeom::of(x.shape(), cfg_.kernel, cfg_.stride, cfg_.padding);
  const LeafExec ex = plan_leaf_exec(ctx, *this);
  cached_mode_ = ex.mode;
  cached_fit_ = nullptr;
  cached_acc_ = Tensor{};
  cached_act_mask_ = Tensor{};

  const int64_t o = cfg_.out_channels, grp = cfg_.groups;
  const int64_t og = o / grp;
  const int64_t cg = cfg_.in_channels / grp;
  const int64_t kg = cg * cfg_.kernel * cfg_.kernel;
  const int64_t p = geom_.out_cols();
  last_macs_ = og * kg * p * grp;

  const Shape wmat_shape{o, kg};

  // Telemetry (zero-overhead when disabled): capture the metric path once —
  // the backward pass runs outside the container scopes and reuses it.
  const bool obs_on = obs::enabled();
  if (obs_on) obs_path_ = detail::leaf_obs_path(*this);
  obs::ScopedTimer timer("forward.ns", obs_path_);

  switch (ex.mode) {
    case ExecMode::kFloat:
    case ExecMode::kCalibrate: {
      Tensor cols = im2col(x, geom_);
      Tensor w_mat = weight_.value.reshaped(wmat_shape);
      Tensor out_mat = run_gemm_float(w_mat, cols);
      if (ex.mode == ExecMode::kCalibrate) {
        act_obs_.observe(x);
        calib_cols_ = cols;
        calib_out_fp_ = out_mat;
      }
      cached_cols_ = std::move(cols);
      cached_w_mat_ = std::move(w_mat);
      if (obs_on) detail::record_leaf_forward(obs_path_, ex.mode, last_macs_, Tensor{});
      return output_from_mat(out_mat, geom_);
    }

    case ExecMode::kQuantExact: {
      if (!calibrated_) throw std::logic_error("Conv2d: quantized forward before calibration");
      if (ctx.monitor != nullptr) ctx.monitor->on_leaf_input(*this, x);
      const Tensor xq = quant::fake_quantize(x, act_qp_);
      cached_act_mask_ = quant::ste_mask(x, act_qp_);
      Tensor cols = im2col(xq, geom_);
      Tensor wq = quant::fake_quantize(weight_.value, wgt_qp_).reshaped(wmat_shape);
      Tensor out_mat = run_gemm_float(wq, cols);
      cached_cols_ = std::move(cols);
      cached_w_mat_ = std::move(wq);
      if (obs_on) detail::record_leaf_forward(obs_path_, ex.mode, last_macs_, cached_act_mask_);
      return output_from_mat(out_mat, geom_);
    }

    case ExecMode::kQuantApprox: {
      if (!calibrated_) throw std::logic_error("Conv2d: approx forward before calibration");
      const approx::SignedMulTable* mul = ex.mul;
      if (mul == nullptr)
        throw std::logic_error("Conv2d: kQuantApprox requires a multiplier table");
      if (wgt_qp_.bits > 4)
        throw std::logic_error(
            "Conv2d: approximate execution requires weight_bits <= 4 (LUT operand)");
      if (ctx.monitor != nullptr) ctx.monitor->on_leaf_input(*this, x);
      const TensorI8 qx = quantize_i8(x, act_qp_);
      cached_act_mask_ = quant::ste_mask(x, act_qp_);
      const TensorI8 qcols = im2col_i8(qx, geom_);
      const TensorI8 qw = quantize_i8(weight_.value, wgt_qp_);
      const bool forced_exact = ctx.monitor != nullptr && ex.adder == nullptr &&
                                ctx.monitor->force_exact(*this);
      TensorI32 acc(Shape{o, p});
      for (int64_t g = 0; g < grp; ++g) {
        const int8_t* wg = qw.data() + g * og * kg;
        const int8_t* xg = qcols.data() + g * kg * p;
        int32_t* cg = acc.data() + g * og * p;
        if (ex.adder != nullptr)
          kernels::gemm_approx_accum({}, wg, xg, cg, og, kg, p, *mul, *ex.adder);
        else if (forced_exact)
          kernels::gemm_exact({}, wg, xg, cg, og, kg, p,
                              kernels::auto_backend(og, kg, p), nullptr, &plan_memo_);
        else
          kernels::gemm_approx({}, wg, xg, cg, og, kg, p, *mul,
                               kernels::auto_backend(og, kg, p), nullptr, &plan_memo_);
        if (ctx.monitor != nullptr && ex.adder == nullptr)
          ctx.monitor->on_leaf_gemm(*this, g, !forced_exact, wg, xg, cg, og, kg, p,
                                    forced_exact ? nullptr : mul);
      }
      // Dequantize accumulators; also materialise the float caches the STE
      // backward needs (Eq. 5 uses the *exact* GEMM of the quantized values).
      const float sx = act_qp_.step, sw = wgt_qp_.step;
      Tensor out_mat(Shape{o, p});
      for (int64_t i = 0; i < acc.numel(); ++i)
        out_mat[i] = static_cast<float>(acc[i]) * sx * sw;
      cached_cols_ = dequantize_i8(qcols, act_qp_);
      cached_w_mat_ = dequantize_i8(qw, wgt_qp_).reshaped(wmat_shape);
      if (ex.fit != nullptr && !ex.fit->is_constant()) {
        cached_fit_ = ex.fit;
        Tensor acc_f(acc.shape());
        for (int64_t i = 0; i < acc.numel(); ++i) acc_f[i] = static_cast<float>(acc[i]);
        cached_acc_ = std::move(acc_f);
      }
      if (obs_on) {
        detail::record_leaf_forward(obs_path_, ex.mode, last_macs_, cached_act_mask_);
        obs::Collector* c = obs::collector();
        if (c != nullptr && c->config().ge_residual) {
          // Diagnostics: re-run the GEMM exactly to observe eps = y~ - y and
          // its residual against the GE fit (roughly doubles forward cost).
          TensorI32 exact(Shape{o, p});
          for (int64_t g = 0; g < grp; ++g)
            kernels::gemm_exact({}, qw.data() + g * og * kg, qcols.data() + g * kg * p,
                                exact.data() + g * og * p, og, kg, p,
                                kernels::auto_backend(og, kg, p), nullptr, &plan_memo_);
          detail::record_ge_residual(obs_path_, ex.fit, acc.data(), exact.data(), acc.numel());
        }
      }
      return output_from_mat(out_mat, geom_);
    }
  }
  throw std::logic_error("Conv2d::forward: unknown mode");
}

Tensor Conv2d::backward(const Tensor& dy) {
  if (dy.shape() != Shape{geom_.n, cfg_.out_channels, geom_.oh, geom_.ow})
    throw std::invalid_argument("Conv2d::backward: dy shape mismatch");
  const int64_t o = cfg_.out_channels, grp = cfg_.groups;
  const int64_t og = o / grp;
  const int64_t kg = cached_w_mat_.numel() / o;
  const int64_t p = geom_.out_cols();

  Tensor dy_mat = to_mat(dy);

  if (cfg_.bias) {
    for (int64_t ch = 0; ch < o; ++ch) {
      double s = 0.0;
      const float* row = dy_mat.data() + ch * p;
      for (int64_t j = 0; j < p; ++j) s += row[j];
      bias_.grad[ch] += static_cast<float>(s);
    }
  }

  // Gradient estimation (Eq. 12): scale the weight-gradient path by (1 + K),
  // where K is the derivative of the fitted error function evaluated at the
  // integer accumulator value of each output element.
  const Tensor* dyw = &dy_mat;
  Tensor dy_scaled;
  if (cached_fit_ != nullptr) {
    dy_scaled = dy_mat;
    for (int64_t i = 0; i < dy_scaled.numel(); ++i)
      dy_scaled[i] *= static_cast<float>(1.0 + cached_fit_->derivative(cached_acc_[i]));
    dyw = &dy_scaled;
    if (obs::enabled()) detail::record_ge_backward(obs_path_, *cached_fit_, cached_acc_);
  }

  Tensor dw_mat(Shape{o, kg});
  for (int64_t g = 0; g < grp; ++g)
    kernels::gemm({.trans_b = true}, dyw->data() + g * og * p,
                  cached_cols_.data() + g * kg * p, dw_mat.data() + g * og * kg, og, p, kg,
                  kernels::auto_backend(og, p, kg), nullptr, &plan_memo_);
  ops::add_inplace(weight_.grad, dw_mat.reshaped(weight_.grad.shape()));

  Tensor dcols(Shape{grp * kg, p}, 0.0f);
  for (int64_t g = 0; g < grp; ++g)
    kernels::gemm({.trans_a = true, .accumulate = true},
                  cached_w_mat_.data() + g * og * kg, dy_mat.data() + g * og * p,
                  dcols.data() + g * kg * p, kg, og, p,
                  kernels::auto_backend(kg, og, p), nullptr, &plan_memo_);
  Tensor dx = col2im(dcols, geom_);

  // Clipped STE on activations: gradients are blocked where the input
  // saturated the 8-bit range.
  if (!cached_act_mask_.empty()) {
    for (int64_t i = 0; i < dx.numel(); ++i) dx[i] *= cached_act_mask_[i];
  }
  return dx;
}

void Conv2d::finalize_calibration(quant::Calibration method) {
  if (!act_obs_.seen())
    throw std::logic_error("Conv2d: finalize_calibration without calibration passes");
  act_qp_ = act_obs_.params_min_mse(act_bits_);

  switch (method) {
    case quant::Calibration::kMaxAbs:
      wgt_qp_ = quant::calibrate_max_abs(weight_.value, wgt_bits_);
      break;
    case quant::Calibration::kMinMse:
      wgt_qp_ = quant::calibrate_min_mse(weight_.value, wgt_bits_);
      break;
    case quant::Calibration::kMinPropQE: {
      if (!calib_cols_ || !calib_out_fp_) {
        wgt_qp_ = quant::calibrate_min_mse(weight_.value, wgt_bits_);
        break;
      }
      const Shape wmat_shape{cfg_.out_channels, calib_cols_->shape()[0] / cfg_.groups};
      wgt_qp_ = quant::calibrate_min_prop_qe(
          weight_.value, wgt_bits_, [&](const quant::QuantParams& p) {
            const Tensor wq = quant::fake_quantize(weight_.value, p).reshaped(wmat_shape);
            const Tensor out = run_gemm_float(wq, *calib_cols_);
            return ops::mse(out, *calib_out_fp_);
          });
      break;
    }
  }
  calibrated_ = true;
  calib_cols_.reset();
  calib_out_fp_.reset();
}

void Conv2d::fold_scale_shift(const std::vector<float>& scale, const std::vector<float>& shift) {
  if (static_cast<int64_t>(scale.size()) != cfg_.out_channels ||
      static_cast<int64_t>(shift.size()) != cfg_.out_channels)
    throw std::invalid_argument("fold_scale_shift: size mismatch");
  const int64_t per_ch = weight_.value.numel() / cfg_.out_channels;
  for (int64_t ch = 0; ch < cfg_.out_channels; ++ch) {
    float* w = weight_.value.data() + ch * per_ch;
    for (int64_t i = 0; i < per_ch; ++i) w[i] *= scale[static_cast<size_t>(ch)];
  }
  if (!cfg_.bias) {
    bias_ = Param(Tensor(Shape{cfg_.out_channels}, 0.0f));
    cfg_.bias = true;
  }
  for (int64_t ch = 0; ch < cfg_.out_channels; ++ch)
    bias_.value[ch] = bias_.value[ch] * scale[static_cast<size_t>(ch)] +
                      shift[static_cast<size_t>(ch)];
  calibrated_ = false;  // folded weights need recalibration
}

}  // namespace axnn::nn
