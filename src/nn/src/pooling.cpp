#include "axnn/nn/pooling.hpp"

#include <stdexcept>

namespace axnn::nn {

Tensor GlobalAvgPool::forward(const Tensor& x, const ExecContext&) {
  if (x.shape().rank() != 4) throw std::invalid_argument("GlobalAvgPool: expected NCHW");
  in_shape_ = x.shape();
  const int64_t n = x.shape()[0], c = x.shape()[1], hw = x.shape()[2] * x.shape()[3];
  Tensor y(Shape{n, c});
  const float inv = 1.0f / static_cast<float>(hw);
  for (int64_t b = 0; b < n; ++b)
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* p = x.data() + (b * c + ch) * hw;
      double s = 0.0;
      for (int64_t i = 0; i < hw; ++i) s += p[i];
      y(b, ch) = static_cast<float>(s) * inv;
    }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& dy) {
  const int64_t n = in_shape_[0], c = in_shape_[1], hw = in_shape_[2] * in_shape_[3];
  if (dy.shape() != Shape{n, c})
    throw std::invalid_argument("GlobalAvgPool::backward: dy shape mismatch");
  Tensor dx(in_shape_);
  const float inv = 1.0f / static_cast<float>(hw);
  for (int64_t b = 0; b < n; ++b)
    for (int64_t ch = 0; ch < c; ++ch) {
      const float g = dy(b, ch) * inv;
      float* p = dx.data() + (b * c + ch) * hw;
      for (int64_t i = 0; i < hw; ++i) p[i] = g;
    }
  return dx;
}

Tensor AvgPool2x2::forward(const Tensor& x, const ExecContext&) {
  if (x.shape().rank() != 4) throw std::invalid_argument("AvgPool2x2: expected NCHW");
  if (x.shape()[2] % 2 || x.shape()[3] % 2)
    throw std::invalid_argument("AvgPool2x2: spatial dims must be even");
  in_shape_ = x.shape();
  const int64_t n = x.shape()[0], c = x.shape()[1], h = x.shape()[2], w = x.shape()[3];
  Tensor y(Shape{n, c, h / 2, w / 2});
  for (int64_t b = 0; b < n; ++b)
    for (int64_t ch = 0; ch < c; ++ch)
      for (int64_t i = 0; i < h / 2; ++i)
        for (int64_t j = 0; j < w / 2; ++j)
          y(b, ch, i, j) = 0.25f * (x(b, ch, 2 * i, 2 * j) + x(b, ch, 2 * i, 2 * j + 1) +
                                    x(b, ch, 2 * i + 1, 2 * j) + x(b, ch, 2 * i + 1, 2 * j + 1));
  return y;
}

Tensor AvgPool2x2::backward(const Tensor& dy) {
  const int64_t n = in_shape_[0], c = in_shape_[1], h = in_shape_[2], w = in_shape_[3];
  if (dy.shape() != Shape{n, c, h / 2, w / 2})
    throw std::invalid_argument("AvgPool2x2::backward: dy shape mismatch");
  Tensor dx(in_shape_);
  for (int64_t b = 0; b < n; ++b)
    for (int64_t ch = 0; ch < c; ++ch)
      for (int64_t i = 0; i < h / 2; ++i)
        for (int64_t j = 0; j < w / 2; ++j) {
          const float g = 0.25f * dy(b, ch, i, j);
          dx(b, ch, 2 * i, 2 * j) = g;
          dx(b, ch, 2 * i, 2 * j + 1) = g;
          dx(b, ch, 2 * i + 1, 2 * j) = g;
          dx(b, ch, 2 * i + 1, 2 * j + 1) = g;
        }
  return dx;
}

}  // namespace axnn::nn
