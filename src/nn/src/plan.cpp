#include "axnn/nn/plan.hpp"

#include <sstream>
#include <stdexcept>

#include "axnn/axmul/registry.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/nn/linear.hpp"

namespace axnn::nn {

std::vector<std::string> child_path_segments(Layer& node) {
  const auto children = node.children();
  // Occurrence-disambiguate repeated sibling names ("#k", 0-based) so every
  // path is unique; unique names stay suffix-free, which keeps common paths
  // short and stable when unrelated siblings (e.g. BatchNorms) disappear.
  std::map<std::string, int> total, seen;
  for (Layer* c : children) ++total[c->name()];
  std::vector<std::string> segs;
  segs.reserve(children.size());
  for (Layer* c : children) {
    std::string seg = c->name();
    if (total[seg] > 1) {
      seg += '#';
      seg += std::to_string(seen[c->name()]++);
    }
    segs.push_back(std::move(seg));
  }
  return segs;
}

namespace {

void walk_leaves(Layer& node, const std::string& prefix, std::vector<GemmLeaf>& out) {
  const auto children = node.children();
  const auto segs = child_path_segments(node);
  for (size_t ci = 0; ci < children.size(); ++ci) {
    Layer* c = children[ci];
    const std::string path = prefix.empty() ? segs[ci] : prefix + "/" + segs[ci];
    if (auto* conv = dynamic_cast<Conv2d*>(c)) {
      const auto& cfg = conv->config();
      out.push_back({path, c, true, (cfg.in_channels / cfg.groups) * cfg.kernel * cfg.kernel});
    } else if (auto* lin = dynamic_cast<Linear*>(c)) {
      out.push_back({path, c, false, lin->in_features()});
    } else {
      walk_leaves(*c, path, out);
    }
  }
}

/// True when `key` names `path` itself or a container above it.
bool path_matches(const std::string& key, const std::string& path) {
  if (key == path) return true;
  return path.size() > key.size() && path.compare(0, key.size(), key) == 0 &&
         path[key.size()] == '/';
}

void check_overrides_matched(const std::map<std::string, LayerPlan>& overrides,
                             const std::vector<GemmLeaf>& leaves, const char* what) {
  for (const auto& [key, plan] : overrides) {
    (void)plan;
    bool hit = false;
    for (const auto& leaf : leaves)
      if (path_matches(key, leaf.path)) {
        hit = true;
        break;
      }
    if (!hit) {
      std::ostringstream os;
      os << what << ": plan override '" << key << "' matches no conv/FC leaf; leaves are:";
      for (const auto& leaf : leaves) os << "\n  " << leaf.path;
      throw std::invalid_argument(os.str());
    }
  }
}

std::string mode_name(ExecMode m) {
  switch (m) {
    case ExecMode::kFloat: return "float";
    case ExecMode::kQuantExact: return "exact";
    case ExecMode::kQuantApprox: return "approx";
    case ExecMode::kCalibrate: break;
  }
  throw std::invalid_argument("LayerPlan: kCalibrate is not a valid mode override");
}

ExecMode mode_from_name(const std::string& s) {
  if (s == "float") return ExecMode::kFloat;
  if (s == "exact") return ExecMode::kQuantExact;
  if (s == "approx") return ExecMode::kQuantApprox;
  throw std::invalid_argument("NetPlan::parse: unknown mode '" + s +
                              "' (expected float|exact|approx)");
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\n");
  return s.substr(b, e - b + 1);
}

int parse_bits(const std::string& tok) {
  try {
    size_t pos = 0;
    const int v = std::stoi(tok, &pos);
    if (pos != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("NetPlan::parse: bad bit-width in '" + tok + "'");
  }
}

LayerPlan parse_spec(const std::string& spec) {
  LayerPlan p;
  std::string rest = spec;
  const auto colon = rest.find(':');
  p.multiplier = trim(rest.substr(0, colon));
  if (!p.multiplier.empty() && !axmul::find_spec(p.multiplier))
    throw std::invalid_argument("NetPlan::parse: unknown multiplier '" + p.multiplier + "'");
  rest = colon == std::string::npos ? "" : rest.substr(colon + 1);
  while (!rest.empty()) {
    const auto next = rest.find(':');
    const std::string tok = trim(rest.substr(0, next));
    rest = next == std::string::npos ? "" : rest.substr(next + 1);
    if (tok.empty()) continue;
    if (tok == "noge") {
      p.use_ge = false;
    } else if (tok.rfind("mode=", 0) == 0) {
      p.mode = mode_from_name(tok.substr(5));
    } else if (tok.rfind("add=", 0) == 0) {
      p.adder = tok.substr(4);
      (void)axmul::make_adder(p.adder);  // validate the id eagerly
    } else if (tok[0] == 'w') {
      p.weight_bits = parse_bits(tok.substr(1));
    } else if (tok[0] == 'a') {
      p.activation_bits = parse_bits(tok.substr(1));
    } else {
      throw std::invalid_argument("NetPlan::parse: unknown attribute '" + tok + "'");
    }
  }
  return p;
}

std::string spec_to_string(const LayerPlan& p) {
  std::string s = p.multiplier;
  if (p.weight_bits != quant::kWeightBits) s += ":w" + std::to_string(p.weight_bits);
  if (p.activation_bits != quant::kActivationBits) s += ":a" + std::to_string(p.activation_bits);
  if (!p.adder.empty()) s += ":add=" + p.adder;
  if (!p.use_ge) s += ":noge";
  if (p.mode) s += ":mode=" + mode_name(*p.mode);
  return s;
}

}  // namespace

std::vector<GemmLeaf> enumerate_gemm_leaves(Layer& root) {
  std::vector<GemmLeaf> out;
  // A bare conv/FC root is its own single leaf (path = its name).
  if (auto* conv = dynamic_cast<Conv2d*>(&root)) {
    const auto& cfg = conv->config();
    out.push_back({conv->name(), &root, true,
                   (cfg.in_channels / cfg.groups) * cfg.kernel * cfg.kernel});
  } else if (auto* lin = dynamic_cast<Linear*>(&root)) {
    out.push_back({lin->name(), &root, false, lin->in_features()});
  } else {
    walk_leaves(root, "", out);
  }
  return out;
}

const ResolvedLayerPlan* PlanResolution::find(const Layer& leaf) const {
  const auto it = by_layer_.find(&leaf);
  return it == by_layer_.end() ? nullptr : it->second;
}

bool PlanResolution::override_mode(const Layer& leaf, ExecMode mode) {
  if (mode == ExecMode::kCalibrate)
    throw std::invalid_argument("PlanResolution::override_mode: kCalibrate is not a valid mode");
  for (auto& e : entries_) {
    if (e.layer != &leaf) continue;
    e.plan.mode = mode;
    return true;
  }
  return false;
}

void PlanResolution::require_approximable() const {
  std::ostringstream os;
  bool bad = false;
  for (const auto& e : entries_) {
    const bool exempt =
        e.plan.mode && (*e.plan.mode == ExecMode::kFloat || *e.plan.mode == ExecMode::kQuantExact);
    if (e.mul == nullptr && !exempt) {
      if (!bad) os << "PlanResolution: leaves without a multiplier (and no exact/float mode):";
      bad = true;
      os << "\n  " << e.path;
    }
  }
  if (bad) throw std::invalid_argument(os.str());
}

void PlanResolution::require_bit_widths() const {
  for (const auto& e : entries_) {
    int wgt = 0, act = 0;
    if (auto* conv = dynamic_cast<Conv2d*>(e.layer)) {
      wgt = conv->weight_bits();
      act = conv->activation_bits();
    } else if (auto* lin = dynamic_cast<Linear*>(e.layer)) {
      wgt = lin->weight_bits();
      act = lin->activation_bits();
    }
    if (wgt != e.plan.weight_bits || act != e.plan.activation_bits)
      throw std::invalid_argument(
          "PlanResolution: plan bit-widths at '" + e.path + "' (" +
          std::to_string(e.plan.weight_bits) + "W/" + std::to_string(e.plan.activation_bits) +
          "A) differ from the calibrated widths (" + std::to_string(wgt) + "W/" +
          std::to_string(act) + "A); apply_bit_widths + recalibrate first");
  }
}

NetPlan& NetPlan::set(std::string path, LayerPlan plan) {
  if (path.empty()) throw std::invalid_argument("NetPlan::set: empty path");
  overrides_[std::move(path)] = std::move(plan);
  return *this;
}

const LayerPlan& NetPlan::match(const std::string& path) const {
  const LayerPlan* best = nullptr;
  size_t best_len = 0;
  for (const auto& [key, plan] : overrides_) {
    if (!path_matches(key, path)) continue;
    if (best == nullptr || key.size() >= best_len) {
      best = &plan;
      best_len = key.size();
    }
  }
  return best != nullptr ? *best : uniform_;
}

NetPlan NetPlan::parse(const std::string& text) {
  NetPlan plan;
  std::string rest = text;
  while (!rest.empty()) {
    const auto semi = rest.find(';');
    const std::string entry = trim(rest.substr(0, semi));
    rest = semi == std::string::npos ? "" : rest.substr(semi + 1);
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("NetPlan::parse: entry '" + entry + "' has no '='");
    const std::string key = trim(entry.substr(0, eq));
    const LayerPlan lp = parse_spec(entry.substr(eq + 1));
    if (key == "default")
      plan.uniform_ = lp;
    else
      plan.set(key, lp);
  }
  return plan;
}

std::string NetPlan::to_string() const {
  std::string s = "default=" + spec_to_string(uniform_);
  for (const auto& [key, plan] : overrides_) s += "; " + key + "=" + spec_to_string(plan);
  return s;
}

void NetPlan::apply_bit_widths(Layer& root) const {
  const auto leaves = enumerate_gemm_leaves(root);
  check_overrides_matched(overrides_, leaves, "NetPlan::apply_bit_widths");
  for (const auto& leaf : leaves) {
    const LayerPlan& lp = match(leaf.path);
    if (auto* conv = dynamic_cast<Conv2d*>(leaf.layer))
      conv->set_bit_widths(lp.weight_bits, lp.activation_bits);
    else if (auto* lin = dynamic_cast<Linear*>(leaf.layer))
      lin->set_bit_widths(lp.weight_bits, lp.activation_bits);
  }
}

PlanResolution NetPlan::resolve(Layer& root, const ResolveOptions& opt) const {
  const auto leaves = enumerate_gemm_leaves(root);
  check_overrides_matched(overrides_, leaves, "NetPlan::resolve");

  PlanResolution res;
  res.entries_.reserve(leaves.size());
  for (const auto& leaf : leaves) {
    const LayerPlan& lp = match(leaf.path);
    if (lp.mode && *lp.mode == ExecMode::kCalibrate)
      throw std::invalid_argument("NetPlan::resolve: kCalibrate mode override at " + leaf.path);
    ResolvedLayerPlan e;
    e.path = leaf.path;
    e.plan = lp;
    e.layer = leaf.layer;
    e.dot_length = leaf.dot_length;
    if (!lp.multiplier.empty()) {
      auto it = res.tables_.find(lp.multiplier);
      if (it == res.tables_.end())
        it = res.tables_
                 .emplace(lp.multiplier, approx::SignedMulTable(axmul::make_lut(lp.multiplier)))
                 .first;
      e.mul = &it->second;
    }
    if (!lp.adder.empty()) {
      auto it = res.adders_.find(lp.adder);
      if (it == res.adders_.end())
        it = res.adders_.emplace(lp.adder, axmul::make_adder(lp.adder)).first;
      e.adder = it->second.get();
    }
    res.entries_.push_back(std::move(e));
  }

  // Second pass, after entries_ stopped growing: fits point into the
  // registry's node-stable maps, by_layer_ points into entries_.
  for (auto& e : res.entries_) {
    const bool forced_off = e.plan.mode && *e.plan.mode != ExecMode::kQuantApprox;
    if (opt.fit_ge && e.plan.use_ge && e.mul != nullptr && !forced_off) {
      const ge::ErrorFit& fit =
          res.fits_.fit_for_shape(*e.mul, e.plan.multiplier, e.dot_length, opt.mc);
      res.fits_.register_path(e.path, &fit);
      e.fit = &fit;
    }
    res.by_layer_.emplace(e.layer, &e);
  }
  return res;
}

LeafExec plan_leaf_exec(const ExecContext& ctx, const Layer& leaf) {
  LeafExec ex{ctx.mode, ctx.mul, ctx.ge_fit, ctx.adder};
  if (ctx.plan == nullptr || !ctx.quantized()) return ex;
  const ResolvedLayerPlan* rp = ctx.plan->find(leaf);
  if (rp == nullptr) return ex;
  if (rp->plan.mode) ex.mode = *rp->plan.mode;
  if (rp->mul != nullptr) ex.mul = rp->mul;
  if (rp->adder != nullptr) ex.adder = rp->adder;
  // Per-layer fits drive the (1 + K) backward scale; like the uniform flow,
  // only training contexts carry them (evaluation stays pure STE-free).
  if (rp->fit != nullptr && ctx.training) ex.fit = rp->fit;
  return ex;
}

}  // namespace axnn::nn
