#include "axnn/nn/sequential.hpp"

#include <stdexcept>

#include "axnn/nn/batchnorm.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/nn/plan.hpp"
#include "axnn/obs/telemetry.hpp"

namespace axnn::nn {

Tensor Sequential::forward(const Tensor& x, const ExecContext& ctx) {
  // Root-of-pass detection: the first Sequential to see an injector-carrying
  // context begins the pass and marks the context copy it hands down, so the
  // (pass, site) sequence is identical to the old driver-called contract.
  if (ctx.faults != nullptr && !ctx.fault_pass_begun) {
    ctx.faults->begin_pass();
    ExecContext inner = ctx;
    inner.fault_pass_begun = true;
    return forward(x, inner);
  }
  if (obs::enabled()) {
    // Telemetry pass: scope each child under its plan-path segment so leaf
    // metrics aggregate per plan-addressable path. Same computation as the
    // plain loop below — the scopes only touch a thread-local string.
    const auto segs = child_path_segments(*this);
    Tensor h = x;
    for (size_t i = 0; i < layers_.size(); ++i) {
      obs::ScopedPath scope(segs[i]);
      h = layers_[i]->forward(h, ctx);
      if (ctx.faults != nullptr) ctx.faults->corrupt(h);
    }
    return h;
  }
  Tensor h = x;
  for (auto& l : layers_) {
    h = l->forward(h, ctx);
    // Resilience: bit flips in the activations flowing between layers
    // (nested Sequentials inject between their own children too).
    if (ctx.faults != nullptr) ctx.faults->corrupt(h);
  }
  return h;
}

void Sequential::fold_batchnorms() {
  for (size_t i = 0; i + 1 < layers_.size();) {
    auto* conv = dynamic_cast<Conv2d*>(layers_[i].get());
    auto* bn = dynamic_cast<BatchNorm2d*>(layers_[i + 1].get());
    if (conv != nullptr && bn != nullptr) {
      bn->fold_into(*conv);
      layers_.erase(layers_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      // Re-check the same position: the next layer could be another BN only
      // in malformed graphs, but the re-check is harmless.
    } else {
      ++i;
    }
  }
  for (auto& l : layers_) l->fold_batchnorms();
}

std::vector<Param*> collect_params(Layer& root) {
  std::vector<Param*> out;
  for (Param* p : root.params()) out.push_back(p);
  for (Layer* c : root.children()) {
    const auto sub = collect_params(*c);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<Tensor*> collect_buffers(Layer& root) {
  std::vector<Tensor*> out;
  for (Tensor* b : root.buffers()) out.push_back(b);
  for (Layer* c : root.children()) {
    const auto sub = collect_buffers(*c);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

int64_t count_parameters(Layer& root) {
  int64_t n = 0;
  for (Param* p : collect_params(root)) n += p->value.numel();
  return n;
}

void copy_state(Layer& src, Layer& dst) {
  const auto ps = collect_params(src), pd = collect_params(dst);
  if (ps.size() != pd.size()) throw std::invalid_argument("copy_state: parameter count mismatch");
  for (size_t i = 0; i < ps.size(); ++i) {
    if (!ps[i]->value.same_shape(pd[i]->value))
      throw std::invalid_argument("copy_state: parameter shape mismatch");
    pd[i]->value = ps[i]->value;
  }
  const auto bs = collect_buffers(src), bd = collect_buffers(dst);
  if (bs.size() != bd.size()) throw std::invalid_argument("copy_state: buffer count mismatch");
  for (size_t i = 0; i < bs.size(); ++i) {
    if (!bs[i]->same_shape(*bd[i]))
      throw std::invalid_argument("copy_state: buffer shape mismatch");
    *bd[i] = *bs[i];
  }
}

int64_t collect_mac_count(Layer& root) {
  int64_t macs = root.last_mac_count();
  for (Layer* c : root.children()) macs += collect_mac_count(*c);
  return macs;
}

void finalize_calibration_recursive(Layer& root, quant::Calibration method) {
  root.finalize_calibration(method);
  for (Layer* c : root.children()) finalize_calibration_recursive(*c, method);
}

void set_bit_widths_recursive(Layer& root, int weight_bits, int activation_bits) {
  NetPlan plan;
  plan.uniform().weight_bits = weight_bits;
  plan.uniform().activation_bits = activation_bits;
  plan.apply_bit_widths(root);
}

}  // namespace axnn::nn
