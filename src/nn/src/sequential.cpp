#include "axnn/nn/sequential.hpp"

#include <stdexcept>

#include "axnn/nn/batchnorm.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/nn/linear.hpp"

namespace axnn::nn {

void Sequential::fold_batchnorms() {
  for (size_t i = 0; i + 1 < layers_.size();) {
    auto* conv = dynamic_cast<Conv2d*>(layers_[i].get());
    auto* bn = dynamic_cast<BatchNorm2d*>(layers_[i + 1].get());
    if (conv != nullptr && bn != nullptr) {
      bn->fold_into(*conv);
      layers_.erase(layers_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      // Re-check the same position: the next layer could be another BN only
      // in malformed graphs, but the re-check is harmless.
    } else {
      ++i;
    }
  }
  for (auto& l : layers_) l->fold_batchnorms();
}

std::vector<Param*> collect_params(Layer& root) {
  std::vector<Param*> out;
  for (Param* p : root.params()) out.push_back(p);
  for (Layer* c : root.children()) {
    const auto sub = collect_params(*c);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<Tensor*> collect_buffers(Layer& root) {
  std::vector<Tensor*> out;
  for (Tensor* b : root.buffers()) out.push_back(b);
  for (Layer* c : root.children()) {
    const auto sub = collect_buffers(*c);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

int64_t count_parameters(Layer& root) {
  int64_t n = 0;
  for (Param* p : collect_params(root)) n += p->value.numel();
  return n;
}

void copy_state(Layer& src, Layer& dst) {
  const auto ps = collect_params(src), pd = collect_params(dst);
  if (ps.size() != pd.size()) throw std::invalid_argument("copy_state: parameter count mismatch");
  for (size_t i = 0; i < ps.size(); ++i) {
    if (!ps[i]->value.same_shape(pd[i]->value))
      throw std::invalid_argument("copy_state: parameter shape mismatch");
    pd[i]->value = ps[i]->value;
  }
  const auto bs = collect_buffers(src), bd = collect_buffers(dst);
  if (bs.size() != bd.size()) throw std::invalid_argument("copy_state: buffer count mismatch");
  for (size_t i = 0; i < bs.size(); ++i) {
    if (!bs[i]->same_shape(*bd[i]))
      throw std::invalid_argument("copy_state: buffer shape mismatch");
    *bd[i] = *bs[i];
  }
}

int64_t collect_mac_count(Layer& root) {
  int64_t macs = root.last_mac_count();
  for (Layer* c : root.children()) macs += collect_mac_count(*c);
  return macs;
}

void finalize_calibration_recursive(Layer& root, quant::Calibration method) {
  root.finalize_calibration(method);
  for (Layer* c : root.children()) finalize_calibration_recursive(*c, method);
}

void set_bit_widths_recursive(Layer& root, int weight_bits, int activation_bits) {
  if (auto* conv = dynamic_cast<Conv2d*>(&root)) {
    conv->set_bit_widths(weight_bits, activation_bits);
  } else if (auto* lin = dynamic_cast<Linear*>(&root)) {
    lin->set_bit_widths(weight_bits, activation_bits);
  }
  for (Layer* c : root.children()) set_bit_widths_recursive(*c, weight_bits, activation_bits);
}

}  // namespace axnn::nn
