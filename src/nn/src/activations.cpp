#include "axnn/nn/activations.hpp"

#include <stdexcept>

namespace axnn::nn {

Tensor ReLU::forward(const Tensor& x, const ExecContext&) {
  Tensor y(x.shape());
  mask_ = Tensor(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    const bool pos = x[i] > 0.0f;
    y[i] = pos ? x[i] : 0.0f;
    mask_[i] = pos ? 1.0f : 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& dy) {
  if (dy.shape() != mask_.shape()) throw std::invalid_argument("ReLU::backward: shape mismatch");
  Tensor dx(dy.shape());
  for (int64_t i = 0; i < dy.numel(); ++i) dx[i] = dy[i] * mask_[i];
  return dx;
}

Tensor ReLU6::forward(const Tensor& x, const ExecContext&) {
  Tensor y(x.shape());
  mask_ = Tensor(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    const bool open = x[i] > 0.0f && x[i] < 6.0f;
    y[i] = x[i] <= 0.0f ? 0.0f : (x[i] >= 6.0f ? 6.0f : x[i]);
    mask_[i] = open ? 1.0f : 0.0f;
  }
  return y;
}

Tensor ReLU6::backward(const Tensor& dy) {
  if (dy.shape() != mask_.shape()) throw std::invalid_argument("ReLU6::backward: shape mismatch");
  Tensor dx(dy.shape());
  for (int64_t i = 0; i < dy.numel(); ++i) dx[i] = dy[i] * mask_[i];
  return dx;
}

}  // namespace axnn::nn
