#include "axnn/nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

namespace axnn::nn {

BatchNorm2d::BatchNorm2d(int64_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(Tensor(Shape{channels}, 1.0f)),
      beta_(Tensor(Shape{channels}, 0.0f)),
      running_mean_(Shape{channels}, 0.0f),
      running_var_(Shape{channels}, 1.0f) {
  if (channels <= 0) throw std::invalid_argument("BatchNorm2d: channels must be positive");
}

std::string BatchNorm2d::name() const { return "bn_" + std::to_string(channels_); }

Tensor BatchNorm2d::forward(const Tensor& x, const ExecContext& ctx) {
  if (x.shape().rank() != 4 || x.shape()[1] != channels_)
    throw std::invalid_argument("BatchNorm2d::forward: bad input shape");
  const int64_t n = x.shape()[0], h = x.shape()[2], w = x.shape()[3];
  const int64_t m = n * h * w;  // samples per channel
  const int64_t hw = h * w;

  cached_training_ = ctx.training;
  cached_x_ = x;
  cached_mean_ = Tensor(Shape{channels_});
  cached_invstd_ = Tensor(Shape{channels_});

  if (ctx.training) {
    for (int64_t c = 0; c < channels_; ++c) {
      double mean = 0.0;
      for (int64_t b = 0; b < n; ++b) {
        const float* p = x.data() + (b * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) mean += p[i];
      }
      mean /= static_cast<double>(m);
      double var = 0.0;
      for (int64_t b = 0; b < n; ++b) {
        const float* p = x.data() + (b * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) {
          const double d = p[i] - mean;
          var += d * d;
        }
      }
      var /= static_cast<double>(m);
      cached_mean_[c] = static_cast<float>(mean);
      cached_invstd_[c] = static_cast<float>(1.0 / std::sqrt(var + eps_));
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] +
                         momentum_ * static_cast<float>(mean);
      running_var_[c] = (1.0f - momentum_) * running_var_[c] + momentum_ * static_cast<float>(var);
    }
  } else {
    for (int64_t c = 0; c < channels_; ++c) {
      cached_mean_[c] = running_mean_[c];
      cached_invstd_[c] = 1.0f / std::sqrt(running_var_[c] + eps_);
    }
  }

  Tensor y(x.shape());
  cached_xhat_ = Tensor(x.shape());
  for (int64_t b = 0; b < n; ++b)
    for (int64_t c = 0; c < channels_; ++c) {
      const float mu = cached_mean_[c], is = cached_invstd_[c];
      const float g = gamma_.value[c], be = beta_.value[c];
      const float* px = x.data() + (b * channels_ + c) * hw;
      float* ph = cached_xhat_.data() + (b * channels_ + c) * hw;
      float* py = y.data() + (b * channels_ + c) * hw;
      for (int64_t i = 0; i < hw; ++i) {
        ph[i] = (px[i] - mu) * is;
        py[i] = g * ph[i] + be;
      }
    }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& dy) {
  if (dy.shape() != cached_x_.shape())
    throw std::invalid_argument("BatchNorm2d::backward: dy shape mismatch");
  const int64_t n = dy.shape()[0], h = dy.shape()[2], w = dy.shape()[3];
  const int64_t hw = h * w;
  const int64_t m = n * hw;

  Tensor dx(dy.shape());
  for (int64_t c = 0; c < channels_; ++c) {
    const float g = gamma_.value[c], is = cached_invstd_[c];
    // Accumulate dgamma/dbeta and the train-mode correction sums.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int64_t b = 0; b < n; ++b) {
      const float* pdy = dy.data() + (b * channels_ + c) * hw;
      const float* ph = cached_xhat_.data() + (b * channels_ + c) * hw;
      for (int64_t i = 0; i < hw; ++i) {
        sum_dy += pdy[i];
        sum_dy_xhat += static_cast<double>(pdy[i]) * ph[i];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);

    if (cached_training_) {
      const double inv_m = 1.0 / static_cast<double>(m);
      for (int64_t b = 0; b < n; ++b) {
        const float* pdy = dy.data() + (b * channels_ + c) * hw;
        const float* ph = cached_xhat_.data() + (b * channels_ + c) * hw;
        float* pdx = dx.data() + (b * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) {
          const double t = static_cast<double>(pdy[i]) - inv_m * sum_dy -
                           inv_m * sum_dy_xhat * ph[i];
          pdx[i] = static_cast<float>(g * is * t);
        }
      }
    } else {
      for (int64_t b = 0; b < n; ++b) {
        const float* pdy = dy.data() + (b * channels_ + c) * hw;
        float* pdx = dx.data() + (b * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) pdx[i] = g * is * pdy[i];
      }
    }
  }
  return dx;
}

void BatchNorm2d::fold_into(Conv2d& conv) const {
  if (conv.config().out_channels != channels_)
    throw std::invalid_argument("fold_into: channel mismatch");
  std::vector<float> scale(static_cast<size_t>(channels_));
  std::vector<float> shift(static_cast<size_t>(channels_));
  for (int64_t c = 0; c < channels_; ++c) {
    const float is = 1.0f / std::sqrt(running_var_[c] + eps_);
    scale[static_cast<size_t>(c)] = gamma_.value[c] * is;
    shift[static_cast<size_t>(c)] = beta_.value[c] - running_mean_[c] * gamma_.value[c] * is;
  }
  conv.fold_scale_shift(scale, shift);
}

}  // namespace axnn::nn
