#include "axnn/kernels/isa.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace axnn::kernels {

namespace {

Isa probe_isa() {
#if defined(AXNN_HAVE_NEON_TU)
  return Isa::kNeon;
#elif defined(AXNN_HAVE_AVX2_TU) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  return Isa::kScalar;
#else
  return Isa::kScalar;
#endif
}

Isa clamp_to_detected(Isa want) {
  const Isa have = detected_isa();
  if (want == Isa::kScalar) return Isa::kScalar;
  return want == have ? want : have == Isa::kScalar ? Isa::kScalar : have;
}

Isa isa_from_env(Isa detected) {
  const char* env = std::getenv("AXNN_SIMD");
  if (env == nullptr) return detected;
  if (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "off") == 0)
    return Isa::kScalar;
  if (std::strcmp(env, "avx2") == 0) return clamp_to_detected(Isa::kAvx2);
  if (std::strcmp(env, "neon") == 0) return clamp_to_detected(Isa::kNeon);
  return detected;
}

std::atomic<Isa>& active_slot() {
  static std::atomic<Isa> slot{isa_from_env(probe_isa())};
  return slot;
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
    default:
      return "scalar";
  }
}

Isa detected_isa() {
  static const Isa detected = probe_isa();
  return detected;
}

Isa active_isa() { return active_slot().load(std::memory_order_relaxed); }

void set_isa(Isa isa) {
  active_slot().store(clamp_to_detected(isa), std::memory_order_relaxed);
}

}  // namespace axnn::kernels
