#include "axnn/kernels/plan.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <list>
#include <mutex>
#include <new>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "axnn/kernels/scratch.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/tensor/threadpool.hpp"
#include "internal.hpp"

namespace axnn::kernels {

const char* op_kind_name(OpKind op) {
  switch (op) {
    case OpKind::kApprox:
      return "approx";
    case OpKind::kExactInt:
      return "exact_int";
    default:
      return "f32";
  }
}

// ---------------------------------------------------------------------------
// PlanKey
// ---------------------------------------------------------------------------

bool PlanKey::operator==(const PlanKey& o) const {
  return op == o.op && trans_a == o.trans_a && trans_b == o.trans_b &&
         accumulate == o.accumulate && backend == o.backend && isa == o.isa &&
         m == o.m && k == o.k && n == o.n && lut_fp == o.lut_fp &&
         weight_bits == o.weight_bits && activation_bits == o.activation_bits &&
         multiplier == o.multiplier;
}

std::string PlanKey::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s[%lldx%lldx%lld] %s/%s", op_kind_name(op),
                static_cast<long long>(m), static_cast<long long>(k),
                static_cast<long long>(n), backend_name(backend), isa_name(isa));
  std::string s(buf);
  if (trans_a) s += " tA";
  if (trans_b) s += " tB";
  if (accumulate) s += " acc";
  if (op == OpKind::kApprox) {
    std::snprintf(buf, sizeof(buf), " mul=%s fp=%04x",
                  multiplier.empty() ? "?" : multiplier.c_str(),
                  static_cast<unsigned>(lut_fp & 0xFFFF));
    s += buf;
  }
  if (op != OpKind::kF32) {
    std::snprintf(buf, sizeof(buf), " w%da%d", weight_bits, activation_bits);
    s += buf;
  }
  return s;
}

size_t PlanKeyHash::operator()(const PlanKey& k) const {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(static_cast<uint64_t>(k.op));
  mix((k.trans_a ? 1u : 0u) | (k.trans_b ? 2u : 0u) | (k.accumulate ? 4u : 0u));
  mix(static_cast<uint64_t>(k.backend));
  mix(static_cast<uint64_t>(k.isa));
  mix(static_cast<uint64_t>(k.m));
  mix(static_cast<uint64_t>(k.k));
  mix(static_cast<uint64_t>(k.n));
  mix(k.lut_fp);
  mix(static_cast<uint64_t>(k.weight_bits) << 8 | static_cast<uint64_t>(k.activation_bits));
  for (const char c : k.multiplier) mix(static_cast<uint8_t>(c));
  return static_cast<size_t>(h);
}

PlanKey make_f32_key(const GemmDesc& desc, int64_t m, int64_t k, int64_t n,
                     Backend backend) {
  PlanKey key;
  key.op = OpKind::kF32;
  key.trans_a = desc.trans_a;
  key.trans_b = desc.trans_b;
  key.accumulate = desc.accumulate;
  key.backend = backend;
  key.isa = Isa::kScalar;  // float kernels are ISA-independent (scalar numerics)
  key.m = m;
  key.k = k;
  key.n = n;
  return key;
}

PlanKey make_int_key(OpKind op, const GemmDesc& desc, int64_t m, int64_t k, int64_t n,
                     Backend backend, const approx::SignedMulTable* tab,
                     int weight_bits, int activation_bits) {
  PlanKey key;
  key.op = op;
  key.trans_a = desc.trans_a;
  key.trans_b = desc.trans_b;
  key.accumulate = desc.accumulate;
  key.backend = backend;
  key.isa = active_isa();
  key.m = m;
  key.k = k;
  key.n = n;
  key.weight_bits = weight_bits;
  key.activation_bits = activation_bits;
  if (op == OpKind::kApprox) {
    if (tab == nullptr)
      throw std::invalid_argument("kernels::make_int_key: approx key needs a table");
    key.multiplier = tab->name();
    key.lut_fp = tab->fingerprint();
  }
  return key;
}

// ---------------------------------------------------------------------------
// GemmPlan
// ---------------------------------------------------------------------------

namespace {

int32_t* alloc_lut(size_t elems) {
  return static_cast<int32_t*>(
      ::operator new(elems * sizeof(int32_t), std::align_val_t{64}));
}

void free_lut(int32_t* p) {
  if (p != nullptr) ::operator delete(p, std::align_val_t{64});
}

}  // namespace

GemmPlan::GemmPlan(const PlanKey& key, const approx::SignedMulTable* tab) : key_(key) {
  if (key_.op == OpKind::kF32) {
    tile_ = Tile{4, 8, 64, 256, 256, 0};
    return;
  }
  tile_ = Tile{4, detail::kStrip, 0, 0, 512, detail::kFuse};
  if (key_.op == OpKind::kApprox) {
    if (tab == nullptr)
      throw std::invalid_argument("kernels::GemmPlan: approx plan needs a table");
    // Two bakes of the multiplier table, nibble-0 forced to zero in both so
    // the zero-weight skip of the naive kernel is exactly an add of 0:
    //   slices_[wn*256 + a] — per-nibble slices, scalar kernel;
    //   lines_[a*16 + wn]   — per-activation lines (one 64B cache line
    //                         each), vector kernels.
    const int32_t* t = tab->data();
    slices_ = alloc_lut(16 * 256);
    lines_ = alloc_lut(256 * 16);
    for (size_t a = 0; a < 256; ++a)
      for (size_t wn = 0; wn < 16; ++wn) {
        const int32_t v = wn == 0 ? 0 : t[(a << 4) | wn];
        slices_[wn * 256 + a] = v;
        lines_[a * 16 + wn] = v;
      }
  }
}

GemmPlan::~GemmPlan() {
  free_lut(slices_);
  free_lut(lines_);
}

void GemmPlan::run(const float* a, const float* b, float* c, ThreadPool* pool) const {
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();
  const GemmDesc desc{key_.trans_a, key_.trans_b, key_.accumulate};
  detail::blocked_f32(desc, a, b, c, key_.m, key_.k, key_.n, p);
}

size_t GemmPlan::packed_weights_size() const {
  if (key_.op == OpKind::kF32) return 0;
  return static_cast<size_t>(key_.m) * static_cast<size_t>(key_.k);
}

void GemmPlan::pack_weights(const int8_t* w, uint8_t* dst) const {
  const int64_t m = key_.m, k = key_.k;
  const int64_t kf = tile_.kf > 0 ? tile_.kf : 1;
  const bool nibble = key_.op == OpKind::kApprox;
  int64_t kk = 0;
  // Full groups: column-major panels of kf consecutive k-steps, so a row's
  // kf weights for one fused pass are one contiguous kf-byte read.
  for (; kk + kf <= k; kk += kf) {
    uint8_t* group = dst + kk * m;
    for (int64_t i = 0; i < m; ++i) {
      const int8_t* wrow = w + i * k + kk;
      uint8_t* out = group + i * kf;
      for (int64_t f = 0; f < kf; ++f)
        out[f] = nibble ? static_cast<uint8_t>(wrow[f]) & 0xF
                        : static_cast<uint8_t>(wrow[f]);
    }
  }
  // Remainder k-steps: flat column-major, dst[kk*m + i].
  for (; kk < k; ++kk) {
    uint8_t* col = dst + kk * m;
    for (int64_t i = 0; i < m; ++i)
      col[i] = nibble ? static_cast<uint8_t>(w[i * k + kk]) & 0xF
                      : static_cast<uint8_t>(w[i * k + kk]);
  }
}

void GemmPlan::run_int(const int8_t* w, const int8_t* x, int32_t* c,
                       ThreadPool* pool) const {
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();
  const int64_t m = key_.m, k = key_.k, n = key_.n;
  const bool acc = key_.accumulate;
  if (key_.isa == Isa::kScalar) {
    // Scalar kernels consume the row-major weights directly — no packing.
    if (key_.op == OpKind::kApprox)
      detail::blocked_approx_scalar(w, x, c, m, k, n, slices_, acc, p);
    else
      detail::blocked_exact_scalar(w, x, c, m, k, n, acc, p);
    return;
  }
  // Vector kernels: pack the weights once (per-thread arena, no heap), then
  // partition output columns over strips. Column-strip partitioning keeps
  // every output element's full reduction inside one task, so results are
  // bit-identical across thread counts.
  uint8_t* wq = scratch<uint8_t>(ScratchSlot::kWeights, packed_weights_size());
  pack_weights(w, wq);
  const int64_t nstrips = (n + detail::kStrip - 1) / detail::kStrip;
  p.parallel_for(
      nstrips,
      [&](int64_t s0, int64_t s1) {
        const int64_t j0 = s0 * detail::kStrip;
        const int64_t j1 = std::min(n, s1 * detail::kStrip);
#if defined(AXNN_HAVE_AVX2_TU)
        if (key_.isa == Isa::kAvx2) {
          if (key_.op == OpKind::kApprox)
            detail::avx2_approx_cols(wq, x, c, m, k, n, lines_, acc, j0, j1);
          else
            detail::avx2_exact_cols(wq, x, c, m, k, n, acc, j0, j1);
          return;
        }
#endif
#if defined(AXNN_HAVE_NEON_TU)
        if (key_.isa == Isa::kNeon) {
          if (key_.op == OpKind::kApprox)
            detail::neon_approx_cols(wq, x, c, m, k, n, lines_, acc, j0, j1);
          else
            detail::neon_exact_cols(wq, x, c, m, k, n, acc, j0, j1);
          return;
        }
#endif
        // Unreachable when keys are built via make_int_key (isa is clamped
        // to what this binary carries); degrade to a scalar column walk on a
        // hand-built key rather than crash.
        const bool lut = key_.op == OpKind::kApprox;
        for (int64_t j = j0; j < j1; ++j)
          for (int64_t i = 0; i < m; ++i) {
            int32_t sum = acc ? c[i * n + j] : 0;
            for (int64_t kk = 0; kk < k; ++kk) {
              const int8_t qw = w[i * k + kk];
              if (qw == 0) continue;
              const size_t ua = static_cast<size_t>(static_cast<uint8_t>(x[kk * n + j]));
              sum += lut ? slices_[(static_cast<size_t>(qw) & 0xF) * 256 + ua]
                         : static_cast<int32_t>(qw) * x[kk * n + j];
            }
            c[i * n + j] = sum;
          }
      },
      detail::strip_grain(m, k));
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

namespace {

void count_cache_event(const char* metric) {
  if (obs::enabled()) obs::collector()->add("kernels", metric, 1.0);
}

}  // namespace

struct PlanCache::Impl {
  mutable std::mutex mu;
  size_t capacity;
  /// Front = most recently used. The map holds iterators into the list.
  std::list<std::pair<PlanKey, PlanHandle>> lru;
  std::unordered_map<PlanKey, std::list<std::pair<PlanKey, PlanHandle>>::iterator,
                     PlanKeyHash>
      map;
  int64_t hits = 0, misses = 0, evictions = 0;
  /// PlanMemo front-side hits, folded into stats().hits (relaxed: counters
  /// only — no ordering requirement against the map).
  std::atomic<int64_t> memo_hits{0};

  void evict_over_capacity() {
    while (lru.size() > capacity) {
      map.erase(lru.back().first);
      lru.pop_back();
      ++evictions;
      count_cache_event("plan_cache.evict");
    }
  }
};

PlanCache::PlanCache(size_t capacity) : impl_(new Impl) {
  impl_->capacity = capacity > 0 ? capacity : 1;
}

PlanCache::~PlanCache() = default;

PlanCache& PlanCache::global() {
  static PlanCache cache;
  return cache;
}

PlanHandle PlanCache::acquire(const PlanKey& key, const approx::SignedMulTable* tab) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  const auto it = impl_->map.find(key);
  if (it != impl_->map.end()) {
    impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
    ++impl_->hits;
    count_cache_event("plan_cache.hit");
    return it->second->second;
  }
  ++impl_->misses;
  count_cache_event("plan_cache.miss");
  PlanHandle handle(new GemmPlan(key, tab));
  impl_->lru.emplace_front(key, handle);
  impl_->map.emplace(key, impl_->lru.begin());
  impl_->evict_over_capacity();
  return handle;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  PlanCacheStats s;
  s.hits = impl_->hits + impl_->memo_hits.load(std::memory_order_relaxed);
  s.misses = impl_->misses;
  s.evictions = impl_->evictions;
  s.size = static_cast<int64_t>(impl_->lru.size());
  s.capacity = static_cast<int64_t>(impl_->capacity);
  return s;
}

void PlanCache::reset_stats() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->hits = impl_->misses = impl_->evictions = 0;
  impl_->memo_hits.store(0, std::memory_order_relaxed);
}

void PlanCache::note_memo_hit() {
  impl_->memo_hits.fetch_add(1, std::memory_order_relaxed);
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->map.clear();
  impl_->lru.clear();
}

void PlanCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->capacity = capacity > 0 ? capacity : 1;
  impl_->evict_over_capacity();
}

// ---------------------------------------------------------------------------
// PlanMemo
// ---------------------------------------------------------------------------

const PlanHandle& PlanMemo::find_or_acquire(const PlanKey& key,
                                            const approx::SignedMulTable* tab) {
  for (Entry& e : slots_)
    if (e.handle != nullptr && e.key == key) {
      PlanCache::global().note_memo_hit();
      return e.handle;
    }
  Entry& e = slots_[next_];
  next_ = (next_ + 1) % kSlots;
  e.handle = PlanCache::global().acquire(key, tab);
  e.key = key;
  return e.handle;
}

void PlanMemo::clear() {
  for (Entry& e : slots_) {
    e.handle.reset();
    e.key = PlanKey{};
  }
  next_ = 0;
}

std::vector<PlanKey> PlanMemo::keys() const {
  std::vector<PlanKey> out;
  // Walk in fill order: oldest surviving slot first, most recent last.
  for (size_t i = 0; i < kSlots; ++i) {
    const Entry& e = slots_[(next_ + i) % kSlots];
    if (e.handle != nullptr) out.push_back(e.key);
  }
  return out;
}

}  // namespace axnn::kernels
