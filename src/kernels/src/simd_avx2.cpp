// axnn — AVX2 int GEMM kernels. This TU is compiled with -mavx2 and must
// only be *called* after a runtime CPU check (Isa::kAvx2 active).
//
// Bit-identity contract: every output element accumulates exactly the same
// multiset of int32 terms as the naive reference kernel. int32 addition is
// associative and commutative (wrap-around), so reordering is bit-exact; the
// zero-weight skip of the naive kernel is reproduced by zeroing the nibble-0
// column of the transposed LUT (approx) / multiplying by literal 0 (exact).
//
// The approx kernel avoids vpgatherdd entirely (slow on the virtualized
// cores we target): the plan stores the LUT transposed as 256 activation
// lines of 16 int32 — one 64-byte cache line each — so a k-step's 16-entry
// nibble→product register file R is built from plain aligned loads plus
// in-register 8×8 int32 transposes.
#include "internal.hpp"

#if defined(AXNN_HAVE_AVX2_TU)

#include <immintrin.h>

#include <cstring>

namespace axnn::kernels::detail {

bool avx2_runtime_ok() {
#if defined(__GNUC__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

namespace {

/// Transpose 8 rows of 8 int32 held in r[0..7], in registers.
inline void transpose8(__m256i r[8]) {
  __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
  __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
  __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
  __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
  __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
  __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
  __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
  __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);
  __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
  __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
  __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
  __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
  __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
  __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
  __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
  __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
  r[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
  r[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
  r[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
  r[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
  r[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
  r[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
  r[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
  r[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

/// Build R[16][8] — per-nibble product vectors for 8 activation bytes — from
/// the transposed LUT: 16 aligned line loads + two 8×8 transposes, no
/// gathers. `lines` is 64-byte aligned, line a = products of activation a
/// against nibbles 0..15 (nibble 0 zeroed).
inline void build_r8(const int32_t* lines, const int8_t* xr, int32_t* rout) {
  __m256i lo[8], hi[8];
  for (int j = 0; j < 8; ++j) {
    const int32_t* line = lines + static_cast<size_t>(static_cast<uint8_t>(xr[j])) * 16;
    lo[j] = _mm256_load_si256(reinterpret_cast<const __m256i*>(line));
    hi[j] = _mm256_load_si256(reinterpret_cast<const __m256i*>(line + 8));
  }
  transpose8(lo);
  transpose8(hi);
  for (int wn = 0; wn < 8; ++wn) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(rout + wn * 8), lo[wn]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(rout + (wn + 8) * 8), hi[wn]);
  }
}

constexpr int64_t F = kFuse;
static_assert(kStrip == 16, "strip geometry baked into the kernels below");

}  // namespace

void avx2_approx_cols(const uint8_t* wq, const int8_t* x, int32_t* c, int64_t m,
                      int64_t k, int64_t n, const int32_t* lines, bool accumulate,
                      int64_t j0, int64_t j1) {
  alignas(64) int32_t R[F][16 * 16];  // [f][wn*8 .. | 16*8 + wn*8 ..] lo/hi halves
  const int64_t kmain = k - k % F;
  int64_t jj = j0;
  // --- 16-column strips ---
  for (; jj + 16 <= j1; jj += 16) {
    if (!accumulate)
      for (int64_t i = 0; i < m; ++i) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + i * n + jj),
                            _mm256_setzero_si256());
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + i * n + jj + 8),
                            _mm256_setzero_si256());
      }
    int64_t kk = 0;
    for (; kk < kmain; kk += F) {
      for (int64_t f = 0; f < F; ++f) {
        build_r8(lines, x + (kk + f) * n + jj, R[f]);
        build_r8(lines, x + (kk + f) * n + jj + 8, R[f] + 16 * 8);
      }
      const uint8_t* wg = wq + kk * m;  // F-group base: groups are contiguous
      for (int64_t i = 0; i < m; ++i) {
        const uint8_t* wn = wg + i * F;
        int32_t* cr = c + i * n + jj;
        __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cr));
        __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cr + 8));
        for (int64_t f = 0; f < F; ++f) {
          const size_t o = static_cast<size_t>(wn[f]) * 8;
          a0 = _mm256_add_epi32(
              a0, _mm256_load_si256(reinterpret_cast<const __m256i*>(R[f] + o)));
          a1 = _mm256_add_epi32(
              a1, _mm256_load_si256(reinterpret_cast<const __m256i*>(R[f] + 16 * 8 + o)));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(cr), a0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(cr + 8), a1);
      }
    }
    for (; kk < k; ++kk) {  // k remainder: flat column layout wq[kk*m + i]
      build_r8(lines, x + kk * n + jj, R[0]);
      build_r8(lines, x + kk * n + jj + 8, R[0] + 16 * 8);
      const uint8_t* wcol = wq + kk * m;
      for (int64_t i = 0; i < m; ++i) {
        int32_t* cr = c + i * n + jj;
        const size_t o = static_cast<size_t>(wcol[i]) * 8;
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(cr),
            _mm256_add_epi32(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(cr)),
                             _mm256_load_si256(reinterpret_cast<const __m256i*>(R[0] + o))));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(cr + 8),
            _mm256_add_epi32(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cr + 8)),
                _mm256_load_si256(reinterpret_cast<const __m256i*>(R[0] + 16 * 8 + o))));
      }
    }
  }
  // --- one 8-column strip if at least 8 columns remain ---
  if (jj + 8 <= j1) {
    if (!accumulate)
      for (int64_t i = 0; i < m; ++i)
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + i * n + jj),
                            _mm256_setzero_si256());
    int64_t kk = 0;
    for (; kk < kmain; kk += F) {
      for (int64_t f = 0; f < F; ++f) build_r8(lines, x + (kk + f) * n + jj, R[f]);
      const uint8_t* wg = wq + kk * m;
      for (int64_t i = 0; i < m; ++i) {
        const uint8_t* wn = wg + i * F;
        int32_t* cr = c + i * n + jj;
        __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cr));
        for (int64_t f = 0; f < F; ++f)
          acc = _mm256_add_epi32(acc, _mm256_load_si256(reinterpret_cast<const __m256i*>(
                                          R[f] + static_cast<size_t>(wn[f]) * 8)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(cr), acc);
      }
    }
    for (; kk < k; ++kk) {
      build_r8(lines, x + kk * n + jj, R[0]);
      const uint8_t* wcol = wq + kk * m;
      for (int64_t i = 0; i < m; ++i) {
        int32_t* cr = c + i * n + jj;
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(cr),
            _mm256_add_epi32(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(cr)),
                             _mm256_load_si256(reinterpret_cast<const __m256i*>(
                                 R[0] + static_cast<size_t>(wcol[i]) * 8))));
      }
    }
    jj += 8;
  }
  // --- scalar tail (< 8 columns) ---
  for (; jj < j1; ++jj) {
    for (int64_t i = 0; i < m; ++i) {
      int32_t acc = accumulate ? c[i * n + jj] : 0;
      int64_t kk = 0;
      for (; kk < kmain; kk += F) {
        const uint8_t* wn = wq + kk * m + i * F;
        for (int64_t f = 0; f < F; ++f)
          acc += lines[static_cast<size_t>(static_cast<uint8_t>(x[(kk + f) * n + jj])) * 16 +
                       wn[f]];
      }
      for (; kk < k; ++kk)
        acc += lines[static_cast<size_t>(static_cast<uint8_t>(x[kk * n + jj])) * 16 +
                     wq[kk * m + i]];
      c[i * n + jj] = acc;
    }
  }
}

void avx2_exact_cols(const uint8_t* wq, const int8_t* x, int32_t* c, int64_t m,
                     int64_t k, int64_t n, bool accumulate, int64_t j0, int64_t j1) {
  // Packed weights hold raw int8 bytes in the same F-group layout. Per fused
  // pass the 16-column activation strip is sign-extended once into XS, then
  // each row broadcasts its F weights and runs mullo+add — products are the
  // same int32 values the naive kernel computes (|w|,|x| ≤ 2^7 so no wrap in
  // the multiply itself), and a zero weight contributes exactly 0.
  alignas(64) int32_t XS[F][16];
  const int64_t kmain = k - k % F;
  int64_t jj = j0;
  for (; jj + 16 <= j1; jj += 16) {
    if (!accumulate)
      for (int64_t i = 0; i < m; ++i) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + i * n + jj),
                            _mm256_setzero_si256());
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + i * n + jj + 8),
                            _mm256_setzero_si256());
      }
    int64_t kk = 0;
    for (; kk < kmain; kk += F) {
      for (int64_t f = 0; f < F; ++f) {
        const __m128i bytes =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + (kk + f) * n + jj));
        _mm256_store_si256(reinterpret_cast<__m256i*>(XS[f]),
                           _mm256_cvtepi8_epi32(bytes));
        _mm256_store_si256(reinterpret_cast<__m256i*>(XS[f] + 8),
                           _mm256_cvtepi8_epi32(_mm_srli_si128(bytes, 8)));
      }
      const uint8_t* wg = wq + kk * m;
      for (int64_t i = 0; i < m; ++i) {
        const uint8_t* wn = wg + i * F;
        int32_t* cr = c + i * n + jj;
        __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cr));
        __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cr + 8));
        for (int64_t f = 0; f < F; ++f) {
          const __m256i wv = _mm256_set1_epi32(static_cast<int8_t>(wn[f]));
          a0 = _mm256_add_epi32(
              a0, _mm256_mullo_epi32(
                      wv, _mm256_load_si256(reinterpret_cast<const __m256i*>(XS[f]))));
          a1 = _mm256_add_epi32(
              a1, _mm256_mullo_epi32(
                      wv, _mm256_load_si256(reinterpret_cast<const __m256i*>(XS[f] + 8))));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(cr), a0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(cr + 8), a1);
      }
    }
    for (; kk < k; ++kk) {
      const __m128i bytes =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + kk * n + jj));
      const __m256i x0 = _mm256_cvtepi8_epi32(bytes);
      const __m256i x1 = _mm256_cvtepi8_epi32(_mm_srli_si128(bytes, 8));
      const uint8_t* wcol = wq + kk * m;
      for (int64_t i = 0; i < m; ++i) {
        int32_t* cr = c + i * n + jj;
        const __m256i wv = _mm256_set1_epi32(static_cast<int8_t>(wcol[i]));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(cr),
            _mm256_add_epi32(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(cr)),
                             _mm256_mullo_epi32(wv, x0)));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(cr + 8),
            _mm256_add_epi32(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(cr + 8)),
                             _mm256_mullo_epi32(wv, x1)));
      }
    }
  }
  // --- scalar tail (< 16 columns) ---
  for (; jj < j1; ++jj) {
    for (int64_t i = 0; i < m; ++i) {
      int32_t acc = accumulate ? c[i * n + jj] : 0;
      int64_t kk = 0;
      for (; kk < kmain; kk += F) {
        const uint8_t* wn = wq + kk * m + i * F;
        for (int64_t f = 0; f < F; ++f)
          acc += static_cast<int32_t>(static_cast<int8_t>(wn[f])) * x[(kk + f) * n + jj];
      }
      for (; kk < k; ++kk)
        acc += static_cast<int32_t>(static_cast<int8_t>(wq[kk * m + i])) * x[kk * n + jj];
      c[i * n + jj] = acc;
    }
  }
}

}  // namespace axnn::kernels::detail

#endif  // AXNN_HAVE_AVX2_TU
