#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "axnn/kernels/int_gemm.hpp"
#include "axnn/kernels/plan.hpp"
#include "axnn/kernels/scratch.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/tensor/threadpool.hpp"
#include "internal.hpp"

namespace axnn::kernels {

namespace {

void check_desc(const GemmDesc& desc, const char* fn) {
  if (desc.trans_a || desc.trans_b)
    throw std::invalid_argument(std::string(fn) +
                                ": transposed operands are not supported on the int path");
}

ThreadPool& resolve_pool(ThreadPool* pool) {
  return pool != nullptr ? *pool : ThreadPool::global();
}

/// Handles the degenerate dims shared by every int kernel; returns true when
/// there is nothing left to compute.
bool handle_trivial(bool accumulate, int32_t* c, int64_t m, int64_t k, int64_t n) {
  if (m <= 0 || n <= 0) return true;
  if (k <= 0) {
    if (!accumulate) std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(int32_t));
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Naive backend (golden reference — the original loops).
// ---------------------------------------------------------------------------

void naive_approx(const int8_t* w, const int8_t* x, int32_t* c, int64_t m, int64_t k,
                  int64_t n, const approx::SignedMulTable& tab, bool accumulate,
                  ThreadPool& pool) {
  const int32_t* t = tab.data();
  pool.parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          int32_t* crow = c + i * n;
          if (!accumulate) std::memset(crow, 0, static_cast<size_t>(n) * sizeof(int32_t));
          const int8_t* wrow = w + i * k;
          for (int64_t kk = 0; kk < k; ++kk) {
            const int8_t qw = wrow[kk];
            if (qw == 0) continue;  // zero weight contributes exactly 0 in all models
            // Slice of the table for this weight nibble: index by activation byte.
            const int32_t* tw = t + (static_cast<size_t>(qw) & 0xF);
            const int8_t* xrow = x + kk * n;
            for (int64_t j = 0; j < n; ++j)
              crow[j] += tw[static_cast<size_t>(static_cast<uint8_t>(xrow[j])) << 4];
          }
        }
      },
      row_grain(k, n));
}

void naive_exact(const int8_t* w, const int8_t* x, int32_t* c, int64_t m, int64_t k,
                 int64_t n, bool accumulate, ThreadPool& pool) {
  pool.parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          int32_t* crow = c + i * n;
          if (!accumulate) std::memset(crow, 0, static_cast<size_t>(n) * sizeof(int32_t));
          const int8_t* wrow = w + i * k;
          for (int64_t kk = 0; kk < k; ++kk) {
            const int32_t qw = wrow[kk];
            if (qw == 0) continue;
            const int8_t* xrow = x + kk * n;
            for (int64_t j = 0; j < n; ++j) crow[j] += qw * xrow[j];
          }
        }
      },
      row_grain(k, n));
}

}  // namespace

// ---------------------------------------------------------------------------
// Scalar blocked kernels (detail) — the pre-plan blocked backend, now fed
// the packed LUT slices from the plan instead of re-packing per call.
// Register tiling processes MR_I weight rows per pass so every activation
// byte is loaded once and looked up MR_I times; the nibble-0 slice is zero,
// mirroring the naive kernel's zero-weight skip bit-for-bit.
// ---------------------------------------------------------------------------

namespace detail {

namespace {
constexpr int64_t MR_I = 4;    // weight rows per pass
constexpr int64_t NC_I = 512;  // output columns per block (2 KiB of C per row)
}  // namespace

void blocked_approx_scalar(const int8_t* w, const int8_t* x, int32_t* c, int64_t m,
                           int64_t k, int64_t n, const int32_t* slices,
                           bool accumulate, ThreadPool& pool) {
  const int32_t* t0 = slices;
  const uint8_t* xu = reinterpret_cast<const uint8_t*>(x);
  pool.parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t jc = 0; jc < n; jc += NC_I) {
          const int64_t nc = std::min(NC_I, n - jc);
          int64_t i = r0;
          for (; i + MR_I <= r1; i += MR_I) {
            int32_t* c0 = c + (i + 0) * n + jc;
            int32_t* c1 = c + (i + 1) * n + jc;
            int32_t* c2 = c + (i + 2) * n + jc;
            int32_t* c3 = c + (i + 3) * n + jc;
            if (!accumulate) {
              std::memset(c0, 0, static_cast<size_t>(nc) * sizeof(int32_t));
              std::memset(c1, 0, static_cast<size_t>(nc) * sizeof(int32_t));
              std::memset(c2, 0, static_cast<size_t>(nc) * sizeof(int32_t));
              std::memset(c3, 0, static_cast<size_t>(nc) * sizeof(int32_t));
            }
            for (int64_t kk = 0; kk < k; ++kk) {
              const size_t n0 = static_cast<size_t>(w[(i + 0) * k + kk]) & 0xF;
              const size_t n1 = static_cast<size_t>(w[(i + 1) * k + kk]) & 0xF;
              const size_t n2 = static_cast<size_t>(w[(i + 2) * k + kk]) & 0xF;
              const size_t n3 = static_cast<size_t>(w[(i + 3) * k + kk]) & 0xF;
              if ((n0 | n1 | n2 | n3) == 0) continue;  // all-zero weights add 0
              const int32_t* t_0 = t0 + n0 * 256;
              const int32_t* t_1 = t0 + n1 * 256;
              const int32_t* t_2 = t0 + n2 * 256;
              const int32_t* t_3 = t0 + n3 * 256;
              const uint8_t* xrow = xu + kk * n + jc;
              for (int64_t j = 0; j < nc; ++j) {
                const uint8_t ua = xrow[j];
                c0[j] += t_0[ua];
                c1[j] += t_1[ua];
                c2[j] += t_2[ua];
                c3[j] += t_3[ua];
              }
            }
          }
          for (; i < r1; ++i) {  // remainder rows, one at a time
            int32_t* crow = c + i * n + jc;
            if (!accumulate) std::memset(crow, 0, static_cast<size_t>(nc) * sizeof(int32_t));
            for (int64_t kk = 0; kk < k; ++kk) {
              const size_t wn = static_cast<size_t>(w[i * k + kk]) & 0xF;
              if (wn == 0) continue;
              const int32_t* tw = t0 + wn * 256;
              const uint8_t* xrow = xu + kk * n + jc;
              for (int64_t j = 0; j < nc; ++j) crow[j] += tw[xrow[j]];
            }
          }
        }
      },
      std::max<int64_t>(row_grain(k, n), MR_I));
}

void blocked_exact_scalar(const int8_t* w, const int8_t* x, int32_t* c, int64_t m,
                          int64_t k, int64_t n, bool accumulate, ThreadPool& pool) {
  pool.parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t jc = 0; jc < n; jc += NC_I) {
          const int64_t nc = std::min(NC_I, n - jc);
          int64_t i = r0;
          for (; i + MR_I <= r1; i += MR_I) {
            int32_t* c0 = c + (i + 0) * n + jc;
            int32_t* c1 = c + (i + 1) * n + jc;
            int32_t* c2 = c + (i + 2) * n + jc;
            int32_t* c3 = c + (i + 3) * n + jc;
            if (!accumulate) {
              std::memset(c0, 0, static_cast<size_t>(nc) * sizeof(int32_t));
              std::memset(c1, 0, static_cast<size_t>(nc) * sizeof(int32_t));
              std::memset(c2, 0, static_cast<size_t>(nc) * sizeof(int32_t));
              std::memset(c3, 0, static_cast<size_t>(nc) * sizeof(int32_t));
            }
            for (int64_t kk = 0; kk < k; ++kk) {
              const int32_t w0 = w[(i + 0) * k + kk];
              const int32_t w1 = w[(i + 1) * k + kk];
              const int32_t w2 = w[(i + 2) * k + kk];
              const int32_t w3 = w[(i + 3) * k + kk];
              if ((w0 | w1 | w2 | w3) == 0) continue;
              const int8_t* xrow = x + kk * n + jc;
              for (int64_t j = 0; j < nc; ++j) {
                const int32_t xv = xrow[j];
                c0[j] += w0 * xv;
                c1[j] += w1 * xv;
                c2[j] += w2 * xv;
                c3[j] += w3 * xv;
              }
            }
          }
          for (; i < r1; ++i) {
            int32_t* crow = c + i * n + jc;
            if (!accumulate) std::memset(crow, 0, static_cast<size_t>(nc) * sizeof(int32_t));
            for (int64_t kk = 0; kk < k; ++kk) {
              const int32_t qw = w[i * k + kk];
              if (qw == 0) continue;
              const int8_t* xrow = x + kk * n + jc;
              for (int64_t j = 0; j < nc; ++j) crow[j] += qw * xrow[j];
            }
          }
        }
      },
      std::max<int64_t>(row_grain(k, n), MR_I));
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Dispatch entries. kBlocked runs through a prepared plan from the global
// PlanCache; kNaive stays plan-free so the golden reference has no moving
// parts.
// ---------------------------------------------------------------------------

void gemm_approx(const GemmDesc& desc, const int8_t* w, const int8_t* x, int32_t* c,
                 int64_t m, int64_t k, int64_t n, const approx::SignedMulTable& tab,
                 Backend backend, ThreadPool* pool, PlanMemo* memo) {
  check_desc(desc, "kernels::gemm_approx");
  if (handle_trivial(desc.accumulate, c, m, k, n)) return;
  ThreadPool& p = resolve_pool(pool);
  const bool obs_on = obs::enabled();
  const bool obs_time = obs_on && obs::collector()->config().timing;
  const int64_t t0 = obs_time ? obs::now_ns() : 0;
  if (backend == Backend::kBlocked) {
    const PlanKey key = make_int_key(OpKind::kApprox, desc, m, k, n, backend, &tab);
    const PlanHandle plan = memo != nullptr ? memo->find_or_acquire(key, &tab)
                                            : PlanCache::global().acquire(key, &tab);
    plan->run_int(w, x, c, &p);
  } else {
    naive_approx(w, x, c, m, k, n, tab, desc.accumulate, p);
  }
  if (obs_on) obs::record_gemm("gemm_approx", m * k * n, obs_time ? obs::now_ns() - t0 : -1);
}

void gemm_exact(const GemmDesc& desc, const int8_t* w, const int8_t* x, int32_t* c,
                int64_t m, int64_t k, int64_t n, Backend backend, ThreadPool* pool,
                PlanMemo* memo) {
  check_desc(desc, "kernels::gemm_exact");
  if (handle_trivial(desc.accumulate, c, m, k, n)) return;
  ThreadPool& p = resolve_pool(pool);
  const bool obs_on = obs::enabled();
  const bool obs_time = obs_on && obs::collector()->config().timing;
  const int64_t t0 = obs_time ? obs::now_ns() : 0;
  if (backend == Backend::kBlocked) {
    const PlanKey key = make_int_key(OpKind::kExactInt, desc, m, k, n, backend, nullptr);
    const PlanHandle plan = memo != nullptr ? memo->find_or_acquire(key)
                                            : PlanCache::global().acquire(key);
    plan->run_int(w, x, c, &p);
  } else {
    naive_exact(w, x, c, m, k, n, desc.accumulate, p);
  }
  if (obs_on) obs::record_gemm("gemm_exact", m * k * n, obs_time ? obs::now_ns() - t0 : -1);
}

void gemm_approx_accum(const GemmDesc& desc, const int8_t* w, const int8_t* x, int32_t* c,
                       int64_t m, int64_t k, int64_t n, const approx::SignedMulTable& tab,
                       const axmul::Adder& adder, Backend backend, ThreadPool* pool) {
  check_desc(desc, "kernels::gemm_approx_accum");
  if (handle_trivial(desc.accumulate, c, m, k, n)) return;
  (void)backend;  // the adder chain fixes the reduction order; one impl serves both
  const bool obs_on = obs::enabled();
  const bool obs_time = obs_on && obs::collector()->config().timing;
  const int64_t t0 = obs_time ? obs::now_ns() : 0;
  const int32_t* t = tab.data();
  resolve_pool(pool).parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          int32_t* crow = c + i * n;
          const int8_t* wrow = w + i * k;
          // Accumulate column-wise per output element so the adder sees the
          // same reduction order as the hardware MAC chain.
          for (int64_t j = 0; j < n; ++j) {
            int32_t acc = desc.accumulate ? crow[j] : 0;
            for (int64_t kk = 0; kk < k; ++kk) {
              const int8_t qw = wrow[kk];
              if (qw == 0) continue;
              const int32_t p =
                  t[(static_cast<size_t>(static_cast<uint8_t>(x[kk * n + j])) << 4) |
                    (static_cast<size_t>(qw) & 0xF)];
              acc = adder.add(acc, p);
            }
            crow[j] = acc;
          }
        }
      },
      row_grain(k, n));
  if (obs_on)
    obs::record_gemm("gemm_approx_accum", m * k * n, obs_time ? obs::now_ns() - t0 : -1);
}

namespace {

void abft_from_wsum(const int8_t* x, const int32_t* c, int64_t m, int64_t k, int64_t n,
                    const int64_t* ws, int64_t* actual, int64_t* predicted) {
  for (int64_t j = 0; j < n; ++j) {
    int64_t a = 0;
    for (int64_t i = 0; i < m; ++i) a += c[i * n + j];
    actual[j] = a;
    int64_t p = 0;
    for (int64_t kk = 0; kk < k; ++kk) p += ws[kk] * x[kk * n + j];
    predicted[j] = p;
  }
}

}  // namespace

void abft_column_sums(const int8_t* w, const int8_t* x, const int32_t* c, int64_t m,
                      int64_t k, int64_t n, int64_t* actual, int64_t* predicted,
                      int64_t* wsum) {
  int64_t* ws = wsum != nullptr
                    ? wsum
                    : scratch<int64_t>(ScratchSlot::kAbft, static_cast<size_t>(k));
  for (int64_t kk = 0; kk < k; ++kk) {
    int64_t s = 0;
    for (int64_t i = 0; i < m; ++i) s += w[i * k + kk];
    ws[kk] = s;
  }
  abft_from_wsum(x, c, m, k, n, ws, actual, predicted);
}

void abft_column_sums(const GemmPlan& plan, const int8_t* w, const int8_t* x,
                      const int32_t* c, int64_t m, int64_t k, int64_t n,
                      int64_t* actual, int64_t* predicted, int64_t* wsum) {
  const size_t panel = plan.packed_weights_size();
  if (panel == 0 || plan.key().m != m || plan.key().k != k || plan.key().n != n) {
    abft_column_sums(w, x, c, m, k, n, actual, predicted, wsum);
    return;
  }
  // Column sums over the plan's column-major nibble panel: each k-group is a
  // contiguous [m][kf] block, so the inner walk is unit-stride and the kf
  // per-column accumulators live in registers.
  const int64_t kf = std::max<int64_t>(1, plan.tile().kf);
  uint8_t* wq = scratch<uint8_t>(ScratchSlot::kWeights, panel);
  plan.pack_weights(w, wq);
  const bool nibble = plan.key().op == OpKind::kApprox;
  int64_t* ws = wsum != nullptr
                    ? wsum
                    : scratch<int64_t>(ScratchSlot::kAbft, static_cast<size_t>(k));
  int64_t kk = 0;
  for (; kk + kf <= k; kk += kf) {
    const uint8_t* group = wq + kk * m;
    int64_t sums[detail::kFuse] = {};
    for (int64_t i = 0; i < m; ++i) {
      const uint8_t* row = group + i * kf;
      for (int64_t f = 0; f < kf; ++f) {
        const int64_t v = nibble ? (static_cast<int64_t>(row[f] ^ 8u) - 8)
                                 : static_cast<int64_t>(static_cast<int8_t>(row[f]));
        sums[f] += v;
      }
    }
    for (int64_t f = 0; f < kf; ++f) ws[kk + f] = sums[f];
  }
  for (; kk < k; ++kk) {
    const uint8_t* col = wq + kk * m;
    int64_t s = 0;
    for (int64_t i = 0; i < m; ++i)
      s += nibble ? (static_cast<int64_t>(col[i] ^ 8u) - 8)
                  : static_cast<int64_t>(static_cast<int8_t>(col[i]));
    ws[kk] = s;
  }
  abft_from_wsum(x, c, m, k, n, ws, actual, predicted);
}

}  // namespace axnn::kernels
