// axnn — NEON int GEMM kernels (aarch64). Same contract as the AVX2 TU:
// bit-identical to the naive reference (same int32 term multiset per output
// element), packed-weight layout shared with GemmPlan::pack_weights, LUT
// consumed in its transposed 256×16 line form.
//
// The geometry mirrors the AVX2 design at NEON width: 4-column strips, the
// per-k nibble→product register file R[16][4] built from 4 aligned line
// loads plus 4×4 in-register transposes — no per-element table walks in the
// inner loop.
#include "internal.hpp"

#if defined(AXNN_HAVE_NEON_TU)

#include <arm_neon.h>

namespace axnn::kernels::detail {

namespace {

constexpr int64_t F = kFuse;

/// Transpose a 4×4 int32 tile held in r[0..3].
inline void transpose4(int32x4_t r[4]) {
  const int32x4x2_t t0 = vtrnq_s32(r[0], r[1]);
  const int32x4x2_t t1 = vtrnq_s32(r[2], r[3]);
  r[0] = vcombine_s32(vget_low_s32(t0.val[0]), vget_low_s32(t1.val[0]));
  r[1] = vcombine_s32(vget_low_s32(t0.val[1]), vget_low_s32(t1.val[1]));
  r[2] = vcombine_s32(vget_high_s32(t0.val[0]), vget_high_s32(t1.val[0]));
  r[3] = vcombine_s32(vget_high_s32(t0.val[1]), vget_high_s32(t1.val[1]));
}

/// Build R[16][4] for 4 activation bytes: 16 line-quarter loads + 4
/// transposes. R[wn] = products of the 4 activations against nibble wn.
inline void build_r4(const int32_t* lines, const int8_t* xr, int32_t* rout) {
  const int32_t* l0 = lines + static_cast<size_t>(static_cast<uint8_t>(xr[0])) * 16;
  const int32_t* l1 = lines + static_cast<size_t>(static_cast<uint8_t>(xr[1])) * 16;
  const int32_t* l2 = lines + static_cast<size_t>(static_cast<uint8_t>(xr[2])) * 16;
  const int32_t* l3 = lines + static_cast<size_t>(static_cast<uint8_t>(xr[3])) * 16;
  for (int c = 0; c < 4; ++c) {  // nibble chunk 4c..4c+3
    int32x4_t r[4] = {vld1q_s32(l0 + 4 * c), vld1q_s32(l1 + 4 * c),
                      vld1q_s32(l2 + 4 * c), vld1q_s32(l3 + 4 * c)};
    transpose4(r);
    vst1q_s32(rout + (4 * c + 0) * 4, r[0]);
    vst1q_s32(rout + (4 * c + 1) * 4, r[1]);
    vst1q_s32(rout + (4 * c + 2) * 4, r[2]);
    vst1q_s32(rout + (4 * c + 3) * 4, r[3]);
  }
}

}  // namespace

void neon_approx_cols(const uint8_t* wq, const int8_t* x, int32_t* c, int64_t m,
                      int64_t k, int64_t n, const int32_t* lines, bool accumulate,
                      int64_t j0, int64_t j1) {
  alignas(64) int32_t R[F][16 * 4];
  const int64_t kmain = k - k % F;
  int64_t jj = j0;
  for (; jj + 4 <= j1; jj += 4) {
    if (!accumulate)
      for (int64_t i = 0; i < m; ++i) vst1q_s32(c + i * n + jj, vdupq_n_s32(0));
    int64_t kk = 0;
    for (; kk < kmain; kk += F) {
      for (int64_t f = 0; f < F; ++f) build_r4(lines, x + (kk + f) * n + jj, R[f]);
      const uint8_t* wg = wq + kk * m;
      for (int64_t i = 0; i < m; ++i) {
        const uint8_t* wn = wg + i * F;
        int32_t* cr = c + i * n + jj;
        int32x4_t acc = vld1q_s32(cr);
        for (int64_t f = 0; f < F; ++f)
          acc = vaddq_s32(acc, vld1q_s32(R[f] + static_cast<size_t>(wn[f]) * 4));
        vst1q_s32(cr, acc);
      }
    }
    for (; kk < k; ++kk) {  // k remainder: flat column layout wq[kk*m + i]
      build_r4(lines, x + kk * n + jj, R[0]);
      const uint8_t* wcol = wq + kk * m;
      for (int64_t i = 0; i < m; ++i) {
        int32_t* cr = c + i * n + jj;
        vst1q_s32(cr, vaddq_s32(vld1q_s32(cr),
                                vld1q_s32(R[0] + static_cast<size_t>(wcol[i]) * 4)));
      }
    }
  }
  for (; jj < j1; ++jj) {  // scalar tail (< 4 columns)
    for (int64_t i = 0; i < m; ++i) {
      int32_t acc = accumulate ? c[i * n + jj] : 0;
      int64_t kk = 0;
      for (; kk < kmain; kk += F) {
        const uint8_t* wn = wq + kk * m + i * F;
        for (int64_t f = 0; f < F; ++f)
          acc += lines[static_cast<size_t>(static_cast<uint8_t>(x[(kk + f) * n + jj])) * 16 +
                       wn[f]];
      }
      for (; kk < k; ++kk)
        acc += lines[static_cast<size_t>(static_cast<uint8_t>(x[kk * n + jj])) * 16 +
                     wq[kk * m + i]];
      c[i * n + jj] = acc;
    }
  }
}

void neon_exact_cols(const uint8_t* wq, const int8_t* x, int32_t* c, int64_t m,
                     int64_t k, int64_t n, bool accumulate, int64_t j0, int64_t j1) {
  alignas(64) int32_t XS[F][4];
  const int64_t kmain = k - k % F;
  int64_t jj = j0;
  for (; jj + 4 <= j1; jj += 4) {
    if (!accumulate)
      for (int64_t i = 0; i < m; ++i) vst1q_s32(c + i * n + jj, vdupq_n_s32(0));
    int64_t kk = 0;
    for (; kk < kmain; kk += F) {
      for (int64_t f = 0; f < F; ++f) {
        const int8_t* xr = x + (kk + f) * n + jj;
        const int32_t xs[4] = {xr[0], xr[1], xr[2], xr[3]};
        vst1q_s32(XS[f], vld1q_s32(xs));
      }
      const uint8_t* wg = wq + kk * m;
      for (int64_t i = 0; i < m; ++i) {
        const uint8_t* wn = wg + i * F;
        int32_t* cr = c + i * n + jj;
        int32x4_t acc = vld1q_s32(cr);
        for (int64_t f = 0; f < F; ++f)
          acc = vmlaq_n_s32(acc, vld1q_s32(XS[f]),
                            static_cast<int32_t>(static_cast<int8_t>(wn[f])));
        vst1q_s32(cr, acc);
      }
    }
    for (; kk < k; ++kk) {
      const int8_t* xr = x + kk * n + jj;
      const int32_t xs[4] = {xr[0], xr[1], xr[2], xr[3]};
      const int32x4_t xv = vld1q_s32(xs);
      const uint8_t* wcol = wq + kk * m;
      for (int64_t i = 0; i < m; ++i) {
        int32_t* cr = c + i * n + jj;
        vst1q_s32(cr, vmlaq_n_s32(vld1q_s32(cr), xv,
                                  static_cast<int32_t>(static_cast<int8_t>(wcol[i]))));
      }
    }
  }
  for (; jj < j1; ++jj) {
    for (int64_t i = 0; i < m; ++i) {
      int32_t acc = accumulate ? c[i * n + jj] : 0;
      int64_t kk = 0;
      for (; kk < kmain; kk += F) {
        const uint8_t* wn = wq + kk * m + i * F;
        for (int64_t f = 0; f < F; ++f)
          acc += static_cast<int32_t>(static_cast<int8_t>(wn[f])) * x[(kk + f) * n + jj];
      }
      for (; kk < k; ++kk)
        acc += static_cast<int32_t>(static_cast<int8_t>(wq[kk * m + i])) * x[kk * n + jj];
      c[i * n + jj] = acc;
    }
  }
}

}  // namespace axnn::kernels::detail

#endif  // AXNN_HAVE_NEON_TU
