#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "axnn/kernels/gemm.hpp"
#include "axnn/kernels/plan.hpp"
#include "axnn/kernels/scratch.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/tensor/threadpool.hpp"
#include "internal.hpp"

namespace axnn::kernels {

namespace {

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

Backend backend_from_env() {
  const char* env = std::getenv("AXNN_GEMM_BACKEND");
  if (env != nullptr) {
    const std::string v(env);
    if (v == "naive") return Backend::kNaive;
    if (v == "blocked") return Backend::kBlocked;
  }
  return Backend::kBlocked;
}

std::atomic<Backend>& default_backend_slot() {
  static std::atomic<Backend> slot{backend_from_env()};
  return slot;
}

// ---------------------------------------------------------------------------
// Naive backend — the original triple-loop kernels, golden reference.
// ---------------------------------------------------------------------------

void naive_nn(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
              bool accumulate, ThreadPool& pool) {
  pool.parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* arow = a + i * k;
          float* crow = c + i * n;
          if (!accumulate) std::memset(crow, 0, static_cast<size_t>(n) * sizeof(float));
          for (int64_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f) continue;
            const float* brow = b + kk * n;
            for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      row_grain(k, n));
}

void naive_nt(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
              bool accumulate, ThreadPool& pool) {
  pool.parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* arow = a + i * k;
          float* crow = c + i * n;
          for (int64_t j = 0; j < n; ++j) {
            const float* brow = b + j * k;
            double acc = 0.0;
            for (int64_t kk = 0; kk < k; ++kk) acc += static_cast<double>(arow[kk]) * brow[kk];
            if (accumulate)
              crow[j] += static_cast<float>(acc);
            else
              crow[j] = static_cast<float>(acc);
          }
        }
      },
      row_grain(k, n));
}

void naive_tn(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
              bool accumulate, ThreadPool& pool) {
  // C[M,N] (+)= Aᵀ·B with A:[K,M], B:[K,N]; output row i gathers column i of A.
  pool.parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float* crow = c + i * n;
          if (!accumulate) std::memset(crow, 0, static_cast<size_t>(n) * sizeof(float));
          for (int64_t kk = 0; kk < k; ++kk) {
            const float av = a[kk * m + i];
            if (av == 0.0f) continue;
            const float* brow = b + kk * n;
            for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      row_grain(k, n));
}

void naive_tt(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
              bool accumulate, ThreadPool& pool) {
  pool.parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float* crow = c + i * n;
          for (int64_t j = 0; j < n; ++j) {
            const float* bcol = b + j * k;
            double acc = 0.0;
            for (int64_t kk = 0; kk < k; ++kk)
              acc += static_cast<double>(a[kk * m + i]) * bcol[kk];
            if (accumulate)
              crow[j] += static_cast<float>(acc);
            else
              crow[j] = static_cast<float>(acc);
          }
        }
      },
      row_grain(k, n));
}

// ---------------------------------------------------------------------------
// Blocked backend — MC/KC/NC cache blocking, MR×NR register tiling, packed
// panels in per-thread scratch arenas. Transposes are absorbed by the
// packing, so one micro-kernel serves all four layout combinations.
// ---------------------------------------------------------------------------

constexpr int64_t MR = 4;   // rows per register tile
constexpr int64_t NR = 8;   // cols per register tile (4×8 accumulators fit 16 SSE regs)
constexpr int64_t MC = 64;  // rows per packed A block
constexpr int64_t KC = 256;  // k-depth per packed panel pair
constexpr int64_t NC = 256;  // cols per packed B block

/// apack: ceil(mc/MR) strips, each [kc][MR]; rows beyond mc zero-padded.
void pack_a(float* dst, const float* a, bool trans, int64_t m, int64_t k, int64_t i0,
            int64_t mc, int64_t kb, int64_t kc) {
  for (int64_t s = 0; s < mc; s += MR) {
    for (int64_t kk = 0; kk < kc; ++kk) {
      for (int64_t r = 0; r < MR; ++r) {
        const int64_t i = i0 + s + r;
        *dst++ = (s + r < mc) ? (trans ? a[(kb + kk) * m + i] : a[i * k + kb + kk]) : 0.0f;
      }
    }
  }
}

/// bpack: ceil(nc/NR) strips, each [kc][NR]; cols beyond nc zero-padded.
void pack_b(float* dst, const float* b, bool trans, int64_t k, int64_t n, int64_t kb,
            int64_t kc, int64_t jc, int64_t nc) {
  for (int64_t t = 0; t < nc; t += NR) {
    for (int64_t kk = 0; kk < kc; ++kk) {
      for (int64_t jj = 0; jj < NR; ++jj) {
        const int64_t j = jc + t + jj;
        *dst++ = (t + jj < nc) ? (trans ? b[j * k + kb + kk] : b[(kb + kk) * n + j]) : 0.0f;
      }
    }
  }
}

/// out[MR][NR] = Σ_kk apack_strip[kk][·] ⊗ bpack_strip[kk][·]. The local
/// accumulator array never escapes, so it stays in vector registers.
void micro_kernel(const float* __restrict ap, const float* __restrict bp, int64_t kc,
                  float* __restrict out) {
  float acc[MR * NR] = {};
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* av = ap + kk * MR;
    const float* bv = bp + kk * NR;
    for (int64_t r = 0; r < MR; ++r) {
      const float a = av[r];
      float* arow = acc + r * NR;
      for (int64_t j = 0; j < NR; ++j) arow[j] += a * bv[j];
    }
  }
  for (int64_t x = 0; x < MR * NR; ++x) out[x] = acc[x];
}

}  // namespace

namespace detail {

void blocked_f32(const GemmDesc& desc, const float* a, const float* b, float* c,
                 int64_t m, int64_t k, int64_t n, ThreadPool& pool) {
  // Whole zero-padded strips: round the block edge up to MR/NR.
  constexpr size_t kApackElems = static_cast<size_t>((MC + MR - 1) / MR * MR) * KC;
  constexpr size_t kBpackElems = static_cast<size_t>((NC + NR - 1) / NR * NR) * KC;
  pool.parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        float* apack = scratch<float>(ScratchSlot::kPackA, kApackElems);
        float* bpack = scratch<float>(ScratchSlot::kPackB, kBpackElems);
        float acc[MR * NR];
        for (int64_t jc = 0; jc < n; jc += NC) {
          const int64_t nc = std::min(NC, n - jc);
          for (int64_t kb = 0; kb < k; kb += KC) {
            const int64_t kc = std::min(KC, k - kb);
            pack_b(bpack, b, desc.trans_b, k, n, kb, kc, jc, nc);
            const bool store = (kb == 0) && !desc.accumulate;
            for (int64_t i0 = r0; i0 < r1; i0 += MC) {
              const int64_t mc = std::min(MC, r1 - i0);
              pack_a(apack, a, desc.trans_a, m, k, i0, mc, kb, kc);
              for (int64_t s = 0; s < mc; s += MR) {
                const int64_t mr = std::min(MR, mc - s);
                const float* ap = apack + (s / MR) * kc * MR;
                for (int64_t t = 0; t < nc; t += NR) {
                  const int64_t nr = std::min(NR, nc - t);
                  micro_kernel(ap, bpack + (t / NR) * kc * NR, kc, acc);
                  for (int64_t r = 0; r < mr; ++r) {
                    float* crow = c + (i0 + s + r) * n + jc + t;
                    const float* arow = acc + r * NR;
                    if (store)
                      for (int64_t j = 0; j < nr; ++j) crow[j] = arow[j];
                    else
                      for (int64_t j = 0; j < nr; ++j) crow[j] += arow[j];
                  }
                }
              }
            }
          }
        }
      },
      std::max<int64_t>(row_grain(k, n), MR));
}

}  // namespace detail

const char* backend_name(Backend b) {
  return b == Backend::kNaive ? "naive" : "blocked";
}

Backend default_backend() { return default_backend_slot().load(); }

void set_default_backend(Backend b) { default_backend_slot().store(b); }

Backend auto_backend(int64_t m, int64_t k, int64_t n) {
  if (default_backend() == Backend::kNaive) return Backend::kNaive;
  // Cutover tuned so packing + per-call panel buffers stay under a few
  // percent of the MAC count: need enough rows to fill register tiles and
  // enough total work to amortise the B panel pack (whose cost is ~k·n, i.e.
  // 1/m of the GEMM).
  if (m < 2 * 4 || n < 16 || m * k * n < (int64_t{1} << 16)) return Backend::kNaive;
  return Backend::kBlocked;
}

int64_t row_grain(int64_t k, int64_t n) {
  // ~32k MACs per task keeps dispatch overhead under ~1% on small matrices
  // while still splitting anything worth splitting.
  constexpr int64_t kMinMacsPerTask = 1 << 15;
  const int64_t per_row = std::max<int64_t>(1, k * n);
  return std::clamp<int64_t>(kMinMacsPerTask / per_row, 1, 1 << 20);
}

void gemm(const GemmDesc& desc, const float* a, const float* b, float* c, int64_t m,
          int64_t k, int64_t n, Backend backend, ThreadPool* pool, PlanMemo* memo) {
  if (m <= 0 || n <= 0) return;
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();
  if (k <= 0) {
    if (!desc.accumulate) std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
    return;
  }
  const bool obs_on = obs::enabled();
  const bool obs_time = obs_on && obs::collector()->config().timing;
  const int64_t t0 = obs_time ? obs::now_ns() : 0;
  if (backend == Backend::kBlocked) {
    const PlanKey key = make_f32_key(desc, m, k, n, backend);
    const PlanHandle plan =
        memo != nullptr ? memo->find_or_acquire(key) : PlanCache::global().acquire(key);
    plan->run(a, b, c, &p);
  } else if (!desc.trans_a && !desc.trans_b) {
    naive_nn(a, b, c, m, k, n, desc.accumulate, p);
  } else if (!desc.trans_a && desc.trans_b) {
    naive_nt(a, b, c, m, k, n, desc.accumulate, p);
  } else if (desc.trans_a && !desc.trans_b) {
    naive_tn(a, b, c, m, k, n, desc.accumulate, p);
  } else {
    naive_tt(a, b, c, m, k, n, desc.accumulate, p);
  }
  if (obs_on) obs::record_gemm("gemm_f32", m * k * n, obs_time ? obs::now_ns() - t0 : -1);
}

}  // namespace axnn::kernels
