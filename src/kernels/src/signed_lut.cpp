#include "axnn/kernels/signed_lut.hpp"

#include <algorithm>
#include <cstdlib>

namespace axnn::approx {

SignedMulTable::SignedMulTable() : SignedMulTable(axmul::MultiplierLut{}) {}

SignedMulTable::SignedMulTable(const axmul::MultiplierLut& lut) : name_(lut.name()) {
  for (int qa = -128; qa <= 127; ++qa) {
    for (int qw = -8; qw <= 7; ++qw) {
      // Sign-magnitude wrapping. |qa|=128 and |qw|=8 exceed the unsigned
      // operand domain; symmetric quantization never produces them (ranges
      // are [-127,127] / [-7,7]), but the table stays total by saturating
      // the magnitude.
      const uint32_t ua = static_cast<uint32_t>(std::min(std::abs(qa), 255));
      const uint32_t uw = static_cast<uint32_t>(std::min(std::abs(qw), 15));
      const int32_t p = lut(static_cast<uint8_t>(ua), static_cast<uint8_t>(uw));
      tab_[index(qa, qw)] = ((qa < 0) != (qw < 0)) ? -p : p;
    }
  }
}

uint64_t SignedMulTable::fingerprint() const {
  if (!tainted_) {
    const uint64_t cached = fp_state_.load(std::memory_order_relaxed);
    if (cached != 0) return cached;
  }
  // FNV-1a over the table contents, forced odd so 0 stays the "not computed"
  // sentinel and distinct tables can never collide with it.
  uint64_t h = 0xcbf29ce484222325ull;
  for (const int32_t v : tab_) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(v));
    h *= 0x100000001b3ull;
  }
  h |= 1;
  if (!tainted_) fp_state_.store(h, std::memory_order_relaxed);
  return h;
}

}  // namespace axnn::approx
