// axnn — kernels-module internal interfaces shared between the dispatch
// TUs (gemm_f32.cpp, int_gemm.cpp, plan.cpp) and the per-ISA kernel TUs
// (simd_avx2.cpp, simd_neon.cpp), which are compiled with ISA-specific
// flags and must stay behind a C++-level firewall: nothing in this header
// may require vector intrinsics to declare.
#pragma once

#include <cstdint>

namespace axnn {
class ThreadPool;
}

namespace axnn::kernels {
struct GemmDesc;
}

namespace axnn::kernels::detail {

// Cache-blocked float kernel (scalar arithmetic, packs into per-thread
// scratch arenas). Called through GemmPlan::run.
void blocked_f32(const GemmDesc& desc, const float* a, const float* b, float* c,
                 int64_t m, int64_t k, int64_t n, ThreadPool& pool);

// Geometry of the vectorized int kernels. Columns are processed in strips
// of kStrip with kFuse k-steps fused per pass; the weight operand is packed
// column-major in groups of kFuse so each output row reads one contiguous
// kFuse-byte group per pass. Packing (GemmPlan::pack_weights) and the ABFT
// probes share these constants.
constexpr int64_t kStrip = 16;
constexpr int64_t kFuse = 8;

// ~32k MACs per parallel task (mirrors row_grain, but for column-strip
// partitioned kernels).
inline int64_t strip_grain(int64_t m, int64_t k) {
  const int64_t macs_per_strip = m * k * kStrip;
  if (macs_per_strip <= 0) return 1;
  const int64_t g = (int64_t{1} << 15) / macs_per_strip;
  return g < 1 ? 1 : g;
}

// Scalar blocked int kernels (moved verbatim from the pre-plan dispatch,
// except the packed LUT slices now arrive from the plan instead of being
// rebuilt per call). Partition rows over `pool` internally.
void blocked_approx_scalar(const int8_t* w, const int8_t* x, int32_t* c, int64_t m,
                           int64_t k, int64_t n, const int32_t* slices,
                           bool accumulate, ThreadPool& pool);
void blocked_exact_scalar(const int8_t* w, const int8_t* x, int32_t* c, int64_t m,
                          int64_t k, int64_t n, bool accumulate, ThreadPool& pool);

// Vectorized kernels: compute output columns [j0, j1) for every row. The
// weight operand arrives packed (GemmPlan::pack_weights layout: column-major
// in kFuse groups); `lines` is the transposed LUT (256 activation lines of
// 16 nibble products, 64-byte aligned, nibble-0 column zeroed). Bit-identical
// to the naive reference: same int32 product set per output element.
#if defined(AXNN_HAVE_AVX2_TU)
bool avx2_runtime_ok();
void avx2_approx_cols(const uint8_t* wq, const int8_t* x, int32_t* c, int64_t m,
                      int64_t k, int64_t n, const int32_t* lines, bool accumulate,
                      int64_t j0, int64_t j1);
void avx2_exact_cols(const uint8_t* wq, const int8_t* x, int32_t* c, int64_t m,
                     int64_t k, int64_t n, bool accumulate, int64_t j0, int64_t j1);
#endif
#if defined(AXNN_HAVE_NEON_TU)
void neon_approx_cols(const uint8_t* wq, const int8_t* x, int32_t* c, int64_t m,
                      int64_t k, int64_t n, const int32_t* lines, bool accumulate,
                      int64_t j0, int64_t j1);
void neon_exact_cols(const uint8_t* wq, const int8_t* x, int32_t* c, int64_t m,
                     int64_t k, int64_t n, bool accumulate, int64_t j0, int64_t j1);
#endif

}  // namespace axnn::kernels::detail
