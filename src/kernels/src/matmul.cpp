// Tensor-level matmul/transpose conveniences. Declared in
// axnn/tensor/gemm.hpp for source compatibility; defined here because they
// dispatch into axnn::kernels, which the tensor module must not depend on.
#include <stdexcept>

#include "axnn/kernels/gemm.hpp"
#include "axnn/tensor/gemm.hpp"

namespace axnn {

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2)
    throw std::invalid_argument("matmul: expected 2-D tensors");
  const int64_t m = a.shape()[0], k = a.shape()[1];
  if (b.shape()[0] != k) throw std::invalid_argument("matmul: inner dimension mismatch");
  const int64_t n = b.shape()[1];
  Tensor c(Shape{m, n});
  kernels::gemm({}, a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor transpose(const Tensor& a) {
  if (a.shape().rank() != 2) throw std::invalid_argument("transpose: expected 2-D tensor");
  const int64_t m = a.shape()[0], n = a.shape()[1];
  Tensor t(Shape{n, m});
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) t(j, i) = a(i, j);
  return t;
}

}  // namespace axnn
