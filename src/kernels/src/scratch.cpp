#include "axnn/kernels/scratch.hpp"

#include <cstdlib>
#include <new>

namespace axnn::kernels {

namespace {

struct Arena {
  void* p = nullptr;
  size_t cap = 0;
  ~Arena() {
    if (p != nullptr) ::operator delete(p, std::align_val_t{64});
  }
};

}  // namespace

void* scratch_bytes(ScratchSlot slot, size_t bytes) {
  thread_local Arena arenas[static_cast<size_t>(ScratchSlot::kSlotCount)];
  Arena& a = arenas[static_cast<size_t>(slot)];
  if (a.cap < bytes) {
    // Grow-once geometric: double past the request so a slowly increasing
    // batch size settles after a couple of rounds.
    size_t want = a.cap < 1024 ? 1024 : a.cap;
    while (want < bytes) want *= 2;
    if (a.p != nullptr) ::operator delete(a.p, std::align_val_t{64});
    a.p = ::operator new(want, std::align_val_t{64});
    a.cap = want;
  }
  return a.p;
}

}  // namespace axnn::kernels
