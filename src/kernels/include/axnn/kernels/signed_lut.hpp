// axnn — signed multiplication table.
//
// The hardware models in axnn::axmul are unsigned 8x4 units; symmetric
// quantization produces signed operands (int8 activations in [-127,127],
// int4 weights in [-7,7]). SignedMulTable folds the sign-magnitude wrapper
// into a single 256x16 table indexed directly by the two's-complement
// operand bit patterns, so the inner GEMM loop is one load and one add.
//
// Lives in the kernels module (historically axnn/approx/signed_lut.hpp,
// which now forwards here) because prepared GEMM plans bake re-laid-out
// copies of the table; the namespace stays axnn::approx for source
// compatibility.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "axnn/axmul/multiplier.hpp"

namespace axnn::approx {

class SignedMulTable {
public:
  /// Exact products.
  SignedMulTable();
  /// Products of the given hardware model with sign-magnitude wrapping.
  explicit SignedMulTable(const axmul::MultiplierLut& lut);
  explicit SignedMulTable(const axmul::Multiplier& m)
      : SignedMulTable(axmul::MultiplierLut(m)) {}

  SignedMulTable(const SignedMulTable& o)
      : tab_(o.tab_), name_(o.name_), tainted_(o.tainted_) {}
  SignedMulTable& operator=(const SignedMulTable& o) {
    tab_ = o.tab_;
    name_ = o.name_;
    tainted_ = o.tainted_;
    fp_state_.store(0, std::memory_order_relaxed);
    return *this;
  }

  const std::string& name() const { return name_; }

  /// Signed product; qa in [-128,127], qw in [-8,7].
  int32_t operator()(int32_t qa, int32_t qw) const {
    return tab_[index(qa, qw)];
  }

  static size_t index(int32_t qa, int32_t qw) {
    return (static_cast<size_t>(static_cast<uint8_t>(qa)) << 4) |
           (static_cast<size_t>(qw) & 0xF);
  }

  const int32_t* data() const { return tab_.data(); }

  /// Mutable entry access for fault-injection experiments (resilience
  /// module): lets a copy of the table model stuck-at/transient defects in
  /// the hardware's product LUT. Marks the table tainted: plan-cache keys
  /// re-hash its contents on every acquire from then on, so a corrupted copy
  /// can never alias the clean table's cached plans.
  int32_t* mutable_data() {
    tainted_ = true;
    fp_state_.store(0, std::memory_order_relaxed);
    return tab_.data();
  }

  bool tainted() const { return tainted_; }

  /// Content hash used in plan-cache keys. Memoized after the first call for
  /// pristine tables; recomputed every call once mutable_data() has been
  /// handed out (the caller may mutate entries at any time afterwards).
  uint64_t fingerprint() const;

private:
  std::array<int32_t, axmul::kLutSize> tab_{};
  std::string name_;
  /// 0 = not computed; otherwise the cached fingerprint (never 0 itself —
  /// the hash is forced odd). Atomic so concurrent plan acquires may race to
  /// fill it without a data race; all writers store the same value.
  mutable std::atomic<uint64_t> fp_state_{0};
  bool tainted_ = false;
};

}  // namespace axnn::approx
