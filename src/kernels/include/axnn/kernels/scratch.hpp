// axnn — per-thread grow-once scratch arenas for kernel packing buffers.
//
// Every blocked kernel needs transient buffers whose size depends only on
// the plan (packed A/B panels, weight-nibble panels, ABFT probe vectors).
// Allocating them per call is exactly the steady-state churn the plan
// refactor removes: each thread instead owns one arena per slot that grows
// to the high-water mark and is reused forever after. A serving process
// reaches its peak scratch footprint during warm-up and never allocates on
// the forward path again.
//
// Buffers are 64-byte aligned. Contents are unspecified on return. The slot
// enum exists because one kernel invocation may need several live regions at
// once (e.g. packed A and packed B); nested parallel_for chunks run on
// distinct threads, so per-thread slots never alias across a running kernel.
#pragma once

#include <cstddef>

namespace axnn::kernels {

enum class ScratchSlot {
  kPackA = 0,
  kPackB,
  kWeights,
  kAbft,
  kSlotCount,
};

/// Pointer to this thread's arena for `slot`, grown to at least `bytes`.
/// Valid until the next scratch_bytes call on the same thread+slot with a
/// larger size (the arena may move when it grows).
void* scratch_bytes(ScratchSlot slot, size_t bytes);

template <typename T>
inline T* scratch(ScratchSlot slot, size_t count) {
  return static_cast<T*>(scratch_bytes(slot, count * sizeof(T)));
}

}  // namespace axnn::kernels
