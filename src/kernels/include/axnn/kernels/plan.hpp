// axnn — prepared GEMM plans and the process-wide PlanCache.
//
// A GemmPlan is everything about executing one GEMM configuration that does
// not depend on the operand *values*: tile geometry, the micro-kernel chosen
// for the active ISA, scratch sizes, and (for the approximate path) the
// re-laid-out LUT sub-tables. Executing a plan packs operands into pooled
// scratch and runs the micro-kernels — no per-call derivation, no heap
// allocation in steady state.
//
// Plans are immutable once built and shared by handle
// (shared_ptr<const GemmPlan>), so lanes, sessions and threads can execute
// the same plan concurrently. The PlanCache memoizes them under a PlanKey
// (op kind, GemmDesc flags, dims, backend, ISA, multiplier identity +
// content fingerprint, operand bit-widths) with LRU eviction at a bounded
// capacity; hit/miss/evict counters feed axnn::obs when telemetry is on.
//
// Poplibs' convolution plan cache is the architectural reference: derive
// once per (shape, config), execute many times, key on everything that
// changes codegen. The LUT fingerprint in the key is what keeps
// fault-injection experiments honest — a corrupted copy of a multiplier
// table can never alias the clean table's plans (SignedMulTable marks
// itself tainted on mutable_data() and is re-hashed per acquire).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "axnn/kernels/gemm.hpp"
#include "axnn/kernels/isa.hpp"
#include "axnn/kernels/signed_lut.hpp"

namespace axnn::kernels {

enum class OpKind : uint8_t { kF32, kApprox, kExactInt };

const char* op_kind_name(OpKind op);

struct PlanKey {
  OpKind op = OpKind::kF32;
  bool trans_a = false;
  bool trans_b = false;
  bool accumulate = false;
  Backend backend = Backend::kBlocked;
  Isa isa = Isa::kScalar;
  int64_t m = 0, k = 0, n = 0;
  /// Multiplier identity for kApprox: registry name + content fingerprint.
  /// Empty / 0 for kF32 and kExactInt.
  std::string multiplier;
  uint64_t lut_fp = 0;
  /// Operand bit-widths (int paths; 0 for kF32). Part of the key because
  /// per-layer plans may quantize the same shape at different widths.
  int weight_bits = 0;
  int activation_bits = 0;

  bool operator==(const PlanKey& o) const;
  /// Stable human-readable form, e.g.
  /// "approx[64x576x1024] blocked/avx2 mul=mul8s_1KV8 fp=9f3a w4a8" —
  /// what `axnn_cli inspect` prints per leaf.
  std::string to_string() const;
};

struct PlanKeyHash {
  size_t operator()(const PlanKey& k) const;
};

/// Convenience key builders. The int builder hashes the table (memoized
/// unless tainted) and records its registry name.
PlanKey make_f32_key(const GemmDesc& desc, int64_t m, int64_t k, int64_t n,
                     Backend backend);
PlanKey make_int_key(OpKind op, const GemmDesc& desc, int64_t m, int64_t k, int64_t n,
                     Backend backend, const approx::SignedMulTable* tab,
                     int weight_bits = 4, int activation_bits = 8);

class GemmPlan {
public:
  struct Tile {
    int64_t mr = 0, nr = 0;  ///< register tile (float) / row group (int)
    int64_t mc = 0, kc = 0, nc = 0;  ///< cache block sizes
    int64_t kf = 0;  ///< fused k-steps per pass (vector int kernels)
  };

  ~GemmPlan();
  GemmPlan(const GemmPlan&) = delete;
  GemmPlan& operator=(const GemmPlan&) = delete;

  const PlanKey& key() const { return key_; }
  const Tile& tile() const { return tile_; }
  /// ISA the bound micro-kernels actually use (== key().isa).
  Isa isa() const { return key_.isa; }

  /// Execute the plan. Operand pointers follow the conventions of
  /// kernels::gemm / gemm_approx / gemm_exact for the plan's op kind; dims
  /// are fixed by the key. run() is const and thread-safe — scratch lives in
  /// per-thread arenas, never in the plan.
  void run(const float* a, const float* b, float* c, ThreadPool* pool = nullptr) const;
  void run_int(const int8_t* w, const int8_t* x, int32_t* c,
               ThreadPool* pool = nullptr) const;

  /// Pack the weight operand into `dst` in the plan's column-major
  /// nibble-panel layout (int plans; size = packed_weights_size()). The
  /// sentinel's ABFT probes walk this layout for unit-stride column sums.
  size_t packed_weights_size() const;
  void pack_weights(const int8_t* w, uint8_t* dst) const;

private:
  friend class PlanCache;
  explicit GemmPlan(const PlanKey& key, const approx::SignedMulTable* tab);

  PlanKey key_;
  Tile tile_;
  /// Approx plans: LUT re-laid-out twice. `slices_` = 16 per-nibble slices of
  /// 256 (scalar kernel); `lines_` = 256 activation lines of 16 (vector
  /// kernels, one 64-byte cache line per activation byte). Nibble 0 is
  /// forced to zero in both so the zero-weight skip of the naive kernel is
  /// reproduced bit-for-bit.
  int32_t* slices_ = nullptr;
  int32_t* lines_ = nullptr;
};

using PlanHandle = std::shared_ptr<const GemmPlan>;

struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t size = 0;
  int64_t capacity = 0;
  double hit_rate() const {
    const int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

/// Bounded, thread-safe, LRU-evicting plan memoizer. acquire() is the only
/// lookup path; handles keep evicted plans alive until their last user drops
/// them, so eviction is never use-after-free.
class PlanCache {
public:
  explicit PlanCache(size_t capacity = kDefaultCapacity);
  ~PlanCache();
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  static constexpr size_t kDefaultCapacity = 256;

  /// Process-wide cache shared by every lane/session/thread.
  static PlanCache& global();

  /// Return the plan for `key`, building it on miss. `tab` must be non-null
  /// for kApprox keys (the table the key was built from).
  PlanHandle acquire(const PlanKey& key, const approx::SignedMulTable* tab = nullptr);

  PlanCacheStats stats() const;
  /// Zero the hit/miss/evict counters (bench warm-up boundaries).
  void reset_stats();
  /// Count a PlanMemo hit as a cache hit (relaxed atomic, no mutex) — memos
  /// are a front-side cache of this cache, so stats().hit_rate() reflects
  /// every plan lookup, not only the ones that reached the mutex.
  void note_memo_hit();
  /// Drop every cached plan (cold-plan benchmarking). Live handles survive.
  void clear();
  void set_capacity(size_t capacity);

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Small per-call-site memo so hot leaves (conv2d/linear) skip the global
/// cache's mutex on every forward: remembers the last few (key → handle)
/// pairs this site acquired. Not thread-safe — embed one per layer instance
/// (layers are confined to one lane/thread at a time by the serving design).
class PlanMemo {
public:
  /// Handle for `key`, consulting the global cache only when this site has
  /// not seen the key recently.
  const PlanHandle& find_or_acquire(const PlanKey& key,
                                    const approx::SignedMulTable* tab = nullptr);
  void clear();

  /// Keys currently memoized at this site, most-recently-filled last —
  /// `axnn_cli inspect` walks these to print each leaf's resolved plans.
  std::vector<PlanKey> keys() const;

private:
  static constexpr size_t kSlots = 8;
  struct Entry {
    PlanKey key;
    PlanHandle handle;
  };
  Entry slots_[kSlots];
  size_t next_ = 0;
};

}  // namespace axnn::kernels
