// axnn — runtime ISA selection for the vectorized kernels.
//
// The instruction set is probed once at startup (first query) and every
// blocked kernel dispatches through the result, so the choice costs nothing
// on the hot path and the whole process runs one consistent set of
// micro-kernels. The environment variable AXNN_SIMD ("scalar" | "avx2" |
// "neon", read at first query) and set_isa() (the CLI `--no-simd` escape
// hatch) can force a downgrade; requesting an ISA the machine lacks falls
// back to the detected one.
//
// Bit-identity contract: the vectorized int kernels add exactly the same
// int32 LUT products as the scalar reference, so switching ISA never changes
// results on the int paths. The float blocked kernels keep the scalar
// kernel's per-element operation order (multiply then add, no FMA
// contraction), so they too are bit-stable across ISAs.
#pragma once

namespace axnn::kernels {

enum class Isa { kScalar, kAvx2, kNeon };

const char* isa_name(Isa isa);

/// Best ISA the running CPU supports (ignores overrides).
Isa detected_isa();

/// ISA the blocked kernels actually run: detected, unless downgraded via
/// AXNN_SIMD or set_isa().
Isa active_isa();

/// Force the active ISA (clamped to what the CPU supports). Plans are keyed
/// by ISA, so changing it mid-run is safe — already-cached plans for the old
/// ISA keep working, new acquisitions build kernels for the new one.
void set_isa(Isa isa);

}  // namespace axnn::kernels
