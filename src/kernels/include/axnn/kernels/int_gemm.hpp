// axnn — integer GEMM kernels behind the unified axnn::kernels dispatch.
//
// Shares GemmDesc/Backend with the float API (axnn/kernels/gemm.hpp).
// Operand layout is fixed for the int path — W:[M,K] int8 (int4-range
// weights), X:[K,N] int8 activations, C:[M,N] int32 accumulators — so the
// transpose flags of GemmDesc must be false (std::invalid_argument
// otherwise); `accumulate` is honoured.
//
// The kBlocked path runs through a prepared GemmPlan (axnn/kernels/plan.hpp)
// acquired from the global PlanCache: the plan owns the re-laid-out LUT
// (per-weight-nibble slices for the scalar kernel, a transposed
// 64-byte-per-activation layout for the vector kernels) and the tile
// geometry, so per-call work is just operand packing into pooled scratch.
// Integer addition is exact and order-free, so every backend/ISA combination
// is bit-identical to the naive reference.
#pragma once

#include <cstdint>

#include "axnn/axmul/adder.hpp"
#include "axnn/kernels/gemm.hpp"
#include "axnn/kernels/signed_lut.hpp"

namespace axnn::kernels {

class GemmPlan;
class PlanMemo;

/// C[M,N] (=|+=) W ·~ X through the multiplier LUT (paper Eq. 4). `memo`,
/// when given, is a per-call-site PlanMemo that resolves the plan without
/// touching the global cache's mutex on repeat shapes (layers pass their
/// own; one memo must not be shared across threads).
void gemm_approx(const GemmDesc& desc, const int8_t* w, const int8_t* x, int32_t* c,
                 int64_t m, int64_t k, int64_t n, const approx::SignedMulTable& tab,
                 Backend backend, ThreadPool* pool = nullptr, PlanMemo* memo = nullptr);
inline void gemm_approx(const GemmDesc& desc, const int8_t* w, const int8_t* x,
                        int32_t* c, int64_t m, int64_t k, int64_t n,
                        const approx::SignedMulTable& tab) {
  gemm_approx(desc, w, x, c, m, k, n, tab, auto_backend(m, k, n), nullptr);
}

/// C[M,N] (=|+=) W · X with exact int arithmetic (error-measurement baseline).
void gemm_exact(const GemmDesc& desc, const int8_t* w, const int8_t* x, int32_t* c,
                int64_t m, int64_t k, int64_t n, Backend backend,
                ThreadPool* pool = nullptr, PlanMemo* memo = nullptr);
inline void gemm_exact(const GemmDesc& desc, const int8_t* w, const int8_t* x, int32_t* c,
                       int64_t m, int64_t k, int64_t n) {
  gemm_exact(desc, w, x, c, m, k, n, auto_backend(m, k, n), nullptr);
}

/// Approximate GEMM whose partial sums are combined through an adder model
/// (paper outlook: multiple approximation techniques). The adder chain fixes
/// the per-element reduction order, so both backends run the same
/// column-ordered loop; the backend argument only exists for dispatch
/// uniformity. One virtual call per MAC — evaluation passes only.
void gemm_approx_accum(const GemmDesc& desc, const int8_t* w, const int8_t* x,
                       int32_t* c, int64_t m, int64_t k, int64_t n,
                       const approx::SignedMulTable& tab, const axmul::Adder& adder,
                       Backend backend, ThreadPool* pool = nullptr);
inline void gemm_approx_accum(const GemmDesc& desc, const int8_t* w, const int8_t* x,
                              int32_t* c, int64_t m, int64_t k, int64_t n,
                              const approx::SignedMulTable& tab,
                              const axmul::Adder& adder) {
  gemm_approx_accum(desc, w, x, c, m, k, n, tab, adder, default_backend(), nullptr);
}

/// ABFT column-sum probes over an already-computed int GEMM C[M,N] = W · X
/// (sentinel subsystem, DESIGN.md §5f). Writes, per output column n:
///
///   actual[n]    = Σ_m C[m,n]                       (what the kernel produced)
///   predicted[n] = Σ_k (Σ_m W[m,k]) · X[k,n]        (what exact math implies)
///
/// For the exact kernel the two are equal; for the LUT kernel they differ by
/// the accumulated approximation error of the column, which the caller
/// bounds with a calibrated tolerance. `wsum` (optional, length K) receives
/// the weight column sums Σ_m W[m,k] — the caller compares them against a
/// golden copy to detect corrupted weight operands, which a checksum over
/// self-consistent corrupted operands cannot see. int64 accumulation: with
/// int8×int4 operands the probes cannot overflow for any realistic shape.
/// Scratch comes from the kernels arena, so steady-state calls allocate
/// nothing.
void abft_column_sums(const int8_t* w, const int8_t* x, const int32_t* c, int64_t m,
                      int64_t k, int64_t n, int64_t* actual, int64_t* predicted,
                      int64_t* wsum = nullptr);

/// Plan-aware ABFT: identical output, but `plan` (an int-path plan for the
/// same [M,K]×[K,N] problem) supplies the column-major weight-nibble panel
/// already packed for the vector kernels, letting the weight column sums
/// walk unit-stride memory instead of striding the row-major W. Falls back
/// to the plain path when the plan does not carry a packed panel.
void abft_column_sums(const GemmPlan& plan, const int8_t* w, const int8_t* x,
                      const int32_t* c, int64_t m, int64_t k, int64_t n,
                      int64_t* actual, int64_t* predicted, int64_t* wsum = nullptr);

}  // namespace axnn::kernels
