// axnn — unified GEMM kernel dispatch (axnn::kernels).
//
// Every GEMM in the repo — float forward/backward, approximate LUT,
// quantized-exact — goes through this API. A GemmDesc names the operation
// (operand layouts + accumulate), a Backend names the implementation:
//
//   kNaive   — the original triple-loop kernels, kept verbatim as the golden
//              reference for tests and debugging.
//   kBlocked — prepared-plan execution: cache-blocked, register-tiled
//              kernels behind kernels::PlanCache, vectorized for the ISA
//              selected at startup (axnn/kernels/isa.hpp). Default.
//
// The process-wide default backend is kBlocked; override it with
// set_default_backend() or the environment variable AXNN_GEMM_BACKEND
// ("naive" | "blocked", read once at first use).
//
// Determinism: for a fixed backend, results are bit-identical across thread
// counts — work is partitioned over output rows (float) or column strips
// (int), and each output element's reduction order is fixed by the blocking,
// not the partition. The vectorized int kernels are additionally
// bit-identical to kNaive: int32 accumulation is exact and order-free, so
// any kernel that adds the same set of LUT products produces the same bits.
//
// Integer kernel overloads (approximate LUT / exact int8) live in
// axnn/kernels/int_gemm.hpp and share GemmDesc/Backend from here.
#pragma once

#include <cstdint>

namespace axnn {
class ThreadPool;
}

namespace axnn::kernels {

enum class Backend { kNaive, kBlocked };

const char* backend_name(Backend b);

/// Process-wide backend used when a call site doesn't pass one. Initialised
/// from AXNN_GEMM_BACKEND on first query (defaults to kBlocked).
Backend default_backend();
void set_default_backend(Backend b);

/// Backend the no-backend overloads actually run for an m×k×n problem:
/// kBlocked only pays for its packing once the problem is big enough, so
/// tiny GEMMs (depthwise-conv groups, single-row batches) cut over to
/// kNaive. A kNaive default is always honoured; an explicitly passed
/// backend bypasses this heuristic entirely.
Backend auto_backend(int64_t m, int64_t k, int64_t n);

/// Describes C = op(A)·op(B) (or += with accumulate). All matrices are
/// row-major; `m, k, n` are the *logical* GEMM dimensions, so A holds m×k
/// values stored as [M,K] (trans_a=false) or [K,M] (trans_a=true), and B
/// holds k×n values stored as [K,N] (trans_b=false) or [N,K] (trans_b=true).
struct GemmDesc {
  bool trans_a = false;
  bool trans_b = false;
  bool accumulate = false;
};

class PlanMemo;

/// Float GEMM: C[M,N] (=|+=) op(A)·op(B). `pool` selects the thread pool
/// (nullptr = the global pool); passing an explicit pool is how tests pin a
/// thread count without touching process-wide state. `memo`, when given, is
/// a per-call-site PlanMemo (axnn/kernels/plan.hpp) that resolves the plan
/// without the global cache's mutex on repeat shapes.
void gemm(const GemmDesc& desc, const float* a, const float* b, float* c, int64_t m,
          int64_t k, int64_t n, Backend backend, ThreadPool* pool = nullptr,
          PlanMemo* memo = nullptr);

inline void gemm(const GemmDesc& desc, const float* a, const float* b, float* c,
                 int64_t m, int64_t k, int64_t n) {
  gemm(desc, a, b, c, m, k, n, auto_backend(m, k, n), nullptr);
}

/// Rows-per-task grain so each parallel_for task carries enough MACs
/// (~32k · rows worth of k·n work) to amortise pool dispatch. Replaces the
/// old hardcoded grain constants.
int64_t row_grain(int64_t k, int64_t n);

}  // namespace axnn::kernels
