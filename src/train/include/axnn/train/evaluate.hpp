// axnn — batched model evaluation and calibration drivers.
#pragma once

#include <cstdint>

#include "axnn/data/dataset.hpp"
#include "axnn/nn/sequential.hpp"

namespace axnn::train {

/// Top-1 accuracy of `model` on `ds` under the given execution context
/// (the context's `training` flag is forced off).
double evaluate_accuracy(nn::Layer& model, const data::Dataset& ds, nn::ExecContext ctx,
                         int64_t batch_size = 256);

/// Forward the whole dataset and return the [N, C] logits.
Tensor predict_logits(nn::Layer& model, const data::Dataset& ds, nn::ExecContext ctx,
                      int64_t batch_size = 256);

/// Run kCalibrate passes over up to `num_samples` of `ds` and finalize the
/// quantization parameters of every layer with the chosen calibrator.
void calibrate_model(nn::Layer& model, const data::Dataset& ds, int64_t num_samples,
                     int64_t batch_size, quant::Calibration method);

}  // namespace axnn::train
