// axnn — full-precision pre-training (produces the paper's "FP model", the
// starting point and teacher of the whole flow).
#pragma once

#include <vector>

#include "axnn/data/dataset.hpp"
#include "axnn/nn/sequential.hpp"
#include "axnn/resilience/fault.hpp"
#include "axnn/resilience/guard.hpp"

namespace axnn::train {

struct EpochStat {
  int epoch = 0;
  double train_loss = 0.0;
  double test_acc = 0.0;
  double seconds = 0.0;
};

struct TrainConfig {
  int epochs = 30;
  int64_t batch_size = 128;
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  float lr_decay = 0.1f;
  int decay_every = 20;
  uint64_t seed = 3;
  bool eval_every_epoch = true;
  bool verbose = false;
  /// Self-healing policy: on NaN/Inf loss (or exploding gradient norm, if
  /// grad_norm_limit > 0) roll back to the last good epoch snapshot, halve
  /// the learning rate and retry, up to guard.max_rollbacks times.
  resilience::GuardConfig guard;
  /// Optional fault injector: training forwards run under activation bit
  /// flips (evaluation stays clean). Must outlive the run.
  const resilience::FaultInjector* faults = nullptr;
};

struct TrainResult {
  std::vector<EpochStat> history;
  double final_acc = 0.0;
  double seconds = 0.0;
  /// Rollback/divergence log of the run; health.gave_up marks a run that
  /// exhausted the rollback budget and stopped early.
  resilience::DivergenceReport health;
};

/// SGD training of `model` in full precision with hard cross-entropy.
TrainResult train_fp(nn::Layer& model, const data::Dataset& train_ds,
                     const data::Dataset& test_ds, const TrainConfig& cfg);

}  // namespace axnn::train
