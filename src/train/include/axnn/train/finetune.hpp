// axnn — fine-tuning of quantized and approximate CNNs (paper Algorithm 1).
//
// Two stages:
//   * quantization_stage  — fine-tune the 8A4W model with hard CE or with
//     KD from the frozen FP teacher (C_s1, temperature T1).
//   * approximation_stage — fine-tune the approximated model with one of
//     five methods:
//       kNormal      passive retraining (hard CE, plain STE)       [4]
//       kGE          hard CE + gradient estimation (1 + K)         (ours)
//       kAlpha       hard CE + alpha-regularization                [5]
//       kApproxKD    C_s2 distillation from the quantized teacher  (ours)
//       kApproxKD_GE C_s2 + gradient estimation                    (ours)
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "axnn/approx/signed_lut.hpp"
#include "axnn/data/dataset.hpp"
#include "axnn/ge/error_fit.hpp"
#include "axnn/nn/plan.hpp"
#include "axnn/nn/sequential.hpp"
#include "axnn/train/trainer.hpp"

namespace axnn::train {

enum class Method { kNormal, kGE, kAlpha, kApproxKD, kApproxKD_GE };

std::string to_string(Method m);

/// True when the method distills from a teacher.
bool uses_kd(Method m);
/// True when the method applies the gradient-estimation scale.
bool uses_ge(Method m);

struct FineTuneConfig {
  int epochs = 30;
  int64_t batch_size = 128;
  float lr = 1e-4f;
  float momentum = 0.9f;
  float lr_decay = 0.1f;
  int decay_every = 15;
  float temperature = 1.0f;  ///< T1 (quantization stage) or T2 (approx stage)
  double alpha = 1e-11;      ///< alpha-regularization strength (kAlpha only)
  uint64_t seed = 7;
  bool eval_every_epoch = true;
  int64_t eval_batch = 256;
  bool verbose = false;
  /// Self-healing policy (see TrainConfig::guard): rollback + lr halving on
  /// NaN/Inf loss or exploding gradients, bounded retries.
  resilience::GuardConfig guard;
  /// Optional fault injector for the student's training forwards (teacher
  /// and evaluation passes stay clean). Must outlive the run.
  const resilience::FaultInjector* faults = nullptr;
};

struct FineTuneResult {
  double initial_acc = 0.0;  ///< accuracy before any update
  double final_acc = 0.0;    ///< accuracy after the last epoch
  double best_acc = 0.0;     ///< best epoch accuracy observed
  std::vector<EpochStat> history;
  double seconds = 0.0;      ///< total fine-tuning wall-clock
  /// Rollback/divergence log; health.gave_up marks an early stop.
  resilience::DivergenceReport health;
};

/// Quantization stage (Algorithm 1, first loop). `model` must already be
/// calibrated (see calibrate_model). `teacher_fp` is the frozen FP snapshot
/// used for KD; pass nullptr for plain ("normal") fine-tuning.
FineTuneResult quantization_stage(nn::Layer& model, nn::Layer* teacher_fp,
                                  const data::Dataset& train_ds, const data::Dataset& test_ds,
                                  const FineTuneConfig& cfg);

/// Everything the approximation stage needs besides the model.
struct ApproxStageSetup {
  /// Uniform multiplier table. Required unless `plan` supplies per-layer
  /// tables; with a plan it remains the fallback for leaves whose plan entry
  /// has no multiplier of its own.
  const approx::SignedMulTable* mul = nullptr;
  Method method = Method::kNormal;
  /// Uniform error fit for GE methods (ignored otherwise; a constant fit
  /// silently degrades GE to the plain STE, as in the paper). With a plan
  /// carrying per-layer fits this is the fallback for un-fitted leaves.
  const ge::ErrorFit* fit = nullptr;
  /// Frozen quantized teacher (runs in kQuantExact) for KD / alpha methods.
  nn::Layer* teacher_q = nullptr;
  /// Optional resolved per-layer plan (heterogeneous multipliers, adders,
  /// mode overrides, per-layer GE fits). Must be resolved against `model`
  /// and outlive the run. The teacher always runs plan-free.
  const nn::PlanResolution* plan = nullptr;
};

/// Approximation stage (Algorithm 1, second loop). `model` must be
/// calibrated; it is evaluated and fine-tuned in kQuantApprox mode.
FineTuneResult approximation_stage(nn::Layer& model, const ApproxStageSetup& setup,
                                   const data::Dataset& train_ds, const data::Dataset& test_ds,
                                   const FineTuneConfig& cfg);

}  // namespace axnn::train
