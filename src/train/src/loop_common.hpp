// axnn — internal helper shared by train_fp and the fine-tuning loops:
// divergence-guard bookkeeping around one SGD training loop.
//
// Usage pattern (see trainer.cpp / finetune.cpp):
//
//   detail::GuardedLoop gl(cfg.guard, sgd, params, tag);
//   for each epoch (while !gl.aborted()):
//     retry-loop:
//       for each batch: forward/backward; if (!gl.step_ok(...)) restart or stop
//     gl.epoch_done();
//   result.health = gl.report();
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "axnn/nn/layer.hpp"
#include "axnn/nn/sgd.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/resilience/guard.hpp"
#include "axnn/train/trainer.hpp"

namespace axnn::train::detail {

/// Telemetry: one "epoch" event + per-stage aggregates under the
/// "train/<tag>" path. Caller guards on obs::enabled().
inline void record_epoch_event(const char* tag, const EpochStat& st) {
  obs::Collector* c = obs::collector();
  if (c == nullptr) return;
  obs::Json ev = obs::Json::object();
  ev["type"] = "epoch";
  ev["stage"] = tag;
  ev["epoch"] = st.epoch;
  ev["train_loss"] = st.train_loss;
  ev["test_acc"] = st.test_acc;
  ev["seconds"] = st.seconds;
  c->event(std::move(ev));
  const std::string path = std::string("train/") + tag;
  c->add(path, "epoch.loss", st.train_loss);
  c->add(path, "epoch.seconds", st.seconds);
}

class GuardedLoop {
public:
  GuardedLoop(const resilience::GuardConfig& cfg, nn::Sgd& sgd,
              const std::vector<nn::Param*>& params, const char* tag)
      : guard_(cfg, watched_state(sgd, params)), sgd_(sgd), tag_(tag) {
    for (nn::Param* p : params) grads_.push_back(&p->grad);
    guard_.commit();
  }

  /// Classify one batch after backward and *before* sgd.step(), so a
  /// diverged batch never writes NaN into the weights. Returns true when
  /// the step may be applied. On false, check aborted(): either the epoch
  /// must restart from the restored snapshot (lr already halved), or the
  /// rollback budget is exhausted and the run must stop.
  bool step_ok(double loss, int epoch, int64_t batch) {
    if (!guard_.enabled()) return true;
    const double gn = guard_.wants_grad_norm() ? resilience::l2_norm(grads_) : 0.0;
    const auto action = guard_.observe(loss, gn, epoch, batch, sgd_.lr());
    if (action == resilience::DivergenceGuard::Action::kContinue) return true;
    const auto& ev = guard_.report().events.back();
    if (action == resilience::DivergenceGuard::Action::kRollback) {
      sgd_.set_lr(ev.lr_after);
      std::fprintf(stderr,
                   "[%s] warning: %s at epoch %d batch %lld (loss %g, |g| %g); "
                   "rolled back, lr %g -> %g\n",
                   tag_, ev.cause.c_str(), epoch, static_cast<long long>(batch), loss, gn,
                   ev.lr_before, ev.lr_after);
    } else {
      aborted_ = true;
      std::fprintf(stderr, "[%s] error: %s at epoch %d batch %lld after %d rollbacks; giving up\n",
                   tag_, ev.cause.c_str(), epoch, static_cast<long long>(batch),
                   guard_.report().rollbacks);
    }
    return false;
  }

  /// Commit the epoch's weights/velocity as the new last-known-good state.
  void epoch_done() { guard_.commit(); }

  bool aborted() const { return aborted_; }
  const resilience::DivergenceReport& report() const { return guard_.report(); }

private:
  static std::vector<Tensor*> watched_state(nn::Sgd& sgd,
                                            const std::vector<nn::Param*>& params) {
    std::vector<Tensor*> watched;
    watched.reserve(params.size() + sgd.velocity().size());
    for (nn::Param* p : params) watched.push_back(&p->value);
    for (Tensor& v : sgd.velocity()) watched.push_back(&v);
    return watched;
  }

  resilience::DivergenceGuard guard_;
  nn::Sgd& sgd_;
  std::vector<Tensor*> grads_;
  const char* tag_;
  bool aborted_ = false;
};

}  // namespace axnn::train::detail
