#include "axnn/train/finetune.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "axnn/kd/distill.hpp"
#include "axnn/nn/loss.hpp"
#include "axnn/nn/sgd.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/tensor/ops.hpp"
#include "axnn/train/evaluate.hpp"
#include "loop_common.hpp"

namespace axnn::train {

std::string to_string(Method m) {
  switch (m) {
    case Method::kNormal: return "normal";
    case Method::kGE: return "ge";
    case Method::kAlpha: return "alpha";
    case Method::kApproxKD: return "approxkd";
    case Method::kApproxKD_GE: return "approxkd+ge";
  }
  return "?";
}

bool uses_kd(Method m) { return m == Method::kApproxKD || m == Method::kApproxKD_GE; }
bool uses_ge(Method m) { return m == Method::kGE || m == Method::kApproxKD_GE; }

namespace {

using Clock = std::chrono::steady_clock;

struct LoopHooks {
  /// Student forward context for training batches.
  nn::ExecContext student_ctx;
  /// Evaluation context (same mode, not training).
  nn::ExecContext eval_ctx;
  /// Compute loss value + logit gradient for one batch.
  std::function<nn::LossResult(const Tensor& images, const Tensor& student_logits,
                               const std::vector<int>& labels)>
      loss_fn;
};

FineTuneResult run_finetune_loop(nn::Layer& model, const data::Dataset& train_ds,
                                 const data::Dataset& test_ds, const FineTuneConfig& cfg,
                                 const LoopHooks& hooks, const char* tag) {
  const auto t0 = Clock::now();
  FineTuneResult result;
  result.initial_acc = evaluate_accuracy(model, test_ds, hooks.eval_ctx, cfg.eval_batch);
  result.best_acc = result.initial_acc;
  result.final_acc = result.initial_acc;

  const auto params = nn::collect_params(model);
  nn::Sgd sgd(params,
              {cfg.lr, cfg.momentum, /*weight_decay=*/0.0f, cfg.lr_decay, cfg.decay_every});
  Rng rng(cfg.seed);
  data::BatchIterator iter(train_ds, cfg.batch_size, rng);

  nn::ExecContext student_ctx = hooks.student_ctx;
  if (cfg.faults != nullptr) student_ctx = student_ctx.with_faults(*cfg.faults);
  detail::GuardedLoop gl(cfg.guard, sgd, params, tag);

  for (int epoch = 0; epoch < cfg.epochs && !gl.aborted(); ++epoch) {
    const auto e0 = Clock::now();
    Tensor images;
    std::vector<int> labels;
    double loss_sum = 0.0;
    int64_t batches = 0;
    // Rollback restores the last epoch snapshot with a halved lr and
    // restarts the epoch; abort ends the run with the report set.
    bool retry = true;
    while (retry && !gl.aborted()) {
      retry = false;
      iter.reset();
      loss_sum = 0.0;
      batches = 0;
      while (iter.next(images, labels)) {
        model.zero_grad();
        const Tensor logits = model.forward(images, student_ctx);
        const nn::LossResult loss = hooks.loss_fn(images, logits, labels);
        (void)model.backward(loss.grad);
        if (!gl.step_ok(loss.value, epoch, batches)) {
          retry = !gl.aborted();
          break;
        }
        sgd.step();
        loss_sum += loss.value;
        ++batches;
      }
    }
    if (gl.aborted()) break;
    gl.epoch_done();
    sgd.on_epoch_end();

    EpochStat st;
    st.epoch = epoch;
    st.train_loss = batches ? loss_sum / static_cast<double>(batches) : 0.0;
    if (cfg.eval_every_epoch || epoch == cfg.epochs - 1) {
      st.test_acc = evaluate_accuracy(model, test_ds, hooks.eval_ctx, cfg.eval_batch);
      result.best_acc = std::max(result.best_acc, st.test_acc);
      result.final_acc = st.test_acc;
    }
    st.seconds = std::chrono::duration<double>(Clock::now() - e0).count();
    if (cfg.verbose)
      std::printf("[%s] epoch %d loss %.4f acc %.2f%% (%.1fs)\n", tag, epoch, st.train_loss,
                  100.0 * st.test_acc, st.seconds);
    result.history.push_back(st);
    if (obs::enabled()) detail::record_epoch_event(tag, st);
  }
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.health = gl.report();
  return result;
}

}  // namespace

FineTuneResult quantization_stage(nn::Layer& model, nn::Layer* teacher_fp,
                                  const data::Dataset& train_ds, const data::Dataset& test_ds,
                                  const FineTuneConfig& cfg) {
  LoopHooks hooks;
  hooks.student_ctx = nn::ExecContext::quant_exact(/*training=*/true);
  hooks.eval_ctx = nn::ExecContext::quant_exact();
  if (teacher_fp != nullptr) {
    hooks.loss_fn = [teacher_fp, t = cfg.temperature](const Tensor& images,
                                                      const Tensor& student_logits,
                                                      const std::vector<int>& labels) {
      const Tensor teacher_logits = teacher_fp->forward(images, nn::ExecContext::fp());
      return kd::distillation_loss(student_logits, teacher_logits, labels, t);
    };
  } else {
    hooks.loss_fn = [](const Tensor&, const Tensor& student_logits,
                       const std::vector<int>& labels) {
      return nn::cross_entropy(student_logits, labels);
    };
  }
  return run_finetune_loop(model, train_ds, test_ds, cfg, hooks,
                           teacher_fp ? "quant/kd" : "quant/normal");
}

FineTuneResult approximation_stage(nn::Layer& model, const ApproxStageSetup& setup,
                                   const data::Dataset& train_ds, const data::Dataset& test_ds,
                                   const FineTuneConfig& cfg) {
  if (setup.mul == nullptr && setup.plan == nullptr)
    throw std::invalid_argument(
        "approximation_stage: a multiplier table or a resolved plan is required");
  if (uses_kd(setup.method) && setup.teacher_q == nullptr)
    throw std::invalid_argument("approximation_stage: KD method requires a quantized teacher");
  if (setup.method == Method::kAlpha && setup.teacher_q == nullptr)
    throw std::invalid_argument("approximation_stage: alpha method requires a quantized teacher");
  if (uses_ge(setup.method) && setup.fit == nullptr &&
      (setup.plan == nullptr || !setup.plan->has_fits()))
    throw std::invalid_argument("approximation_stage: GE method requires an error fit "
                                "(uniform, or per-layer fits in the plan)");

  const ge::ErrorFit* fit = uses_ge(setup.method) ? setup.fit : nullptr;

  LoopHooks hooks;
  hooks.student_ctx = {.mode = nn::ExecMode::kQuantApprox, .mul = setup.mul, .ge_fit = fit,
                       .training = true, .plan = setup.plan};
  hooks.eval_ctx = {.mode = nn::ExecMode::kQuantApprox, .mul = setup.mul, .plan = setup.plan};

  nn::Layer* teacher = setup.teacher_q;
  switch (setup.method) {
    case Method::kNormal:
    case Method::kGE:
      hooks.loss_fn = [](const Tensor&, const Tensor& student_logits,
                         const std::vector<int>& labels) {
        return nn::cross_entropy(student_logits, labels);
      };
      break;
    case Method::kAlpha:
      // Best-effort reimplementation of alpha-regularization [5]: hard CE
      // plus alpha * || y_approx - y_q ||^2 against the frozen quantized
      // teacher's logits (see DESIGN.md §2).
      hooks.loss_fn = [teacher, alpha = cfg.alpha](const Tensor& images,
                                                   const Tensor& student_logits,
                                                   const std::vector<int>& labels) {
        nn::LossResult loss = nn::cross_entropy(student_logits, labels);
        const Tensor yq = teacher->forward(images, nn::ExecContext::quant_exact());
        const nn::LossResult reg = nn::mse_loss(student_logits, yq);
        loss.value += alpha * reg.value;
        ops::axpy_inplace(loss.grad, static_cast<float>(alpha), reg.grad);
        return loss;
      };
      break;
    case Method::kApproxKD:
    case Method::kApproxKD_GE:
      hooks.loss_fn = [teacher, t = cfg.temperature](const Tensor& images,
                                                     const Tensor& student_logits,
                                                     const std::vector<int>& labels) {
        const Tensor yq = teacher->forward(images, nn::ExecContext::quant_exact());
        return kd::distillation_loss(student_logits, yq, labels, t);
      };
      break;
  }
  return run_finetune_loop(model, train_ds, test_ds, cfg, hooks,
                           to_string(setup.method).c_str());
}

}  // namespace axnn::train
