#include "axnn/train/evaluate.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "axnn/tensor/ops.hpp"

namespace axnn::train {

Tensor predict_logits(nn::Layer& model, const data::Dataset& ds, nn::ExecContext ctx,
                      int64_t batch_size) {
  ctx.training = false;
  Tensor all;
  int64_t written = 0;
  for (int64_t begin = 0; begin < ds.size(); begin += batch_size) {
    const int64_t count = std::min(batch_size, ds.size() - begin);
    auto [images, labels] = ds.slice(begin, count);
    (void)labels;
    const Tensor logits = model.forward(images, ctx);
    if (all.empty()) all = Tensor(Shape{ds.size(), logits.shape()[1]});
    std::memcpy(all.data() + written * logits.shape()[1], logits.data(),
                static_cast<size_t>(logits.numel()) * sizeof(float));
    written += count;
  }
  return all;
}

double evaluate_accuracy(nn::Layer& model, const data::Dataset& ds, nn::ExecContext ctx,
                         int64_t batch_size) {
  ctx.training = false;
  int64_t correct = 0;
  for (int64_t begin = 0; begin < ds.size(); begin += batch_size) {
    const int64_t count = std::min(batch_size, ds.size() - begin);
    auto [images, labels] = ds.slice(begin, count);
    const Tensor logits = model.forward(images, ctx);
    const auto pred = ops::argmax_rows(logits);
    for (int64_t i = 0; i < count; ++i)
      correct += (pred[static_cast<size_t>(i)] == labels[static_cast<size_t>(i)]);
  }
  return ds.size() ? static_cast<double>(correct) / static_cast<double>(ds.size()) : 0.0;
}

void calibrate_model(nn::Layer& model, const data::Dataset& ds, int64_t num_samples,
                     int64_t batch_size, quant::Calibration method) {
  const int64_t limit = std::min(num_samples, ds.size());
  if (limit <= 0) throw std::invalid_argument("calibrate_model: empty calibration set");
  for (int64_t begin = 0; begin < limit; begin += batch_size) {
    const int64_t count = std::min(batch_size, limit - begin);
    auto [images, labels] = ds.slice(begin, count);
    (void)labels;
    (void)model.forward(images, nn::ExecContext::calibrate());
  }
  nn::finalize_calibration_recursive(model, method);
}

}  // namespace axnn::train
