#include "axnn/train/trainer.hpp"

#include <chrono>
#include <cstdio>

#include "axnn/nn/loss.hpp"
#include "axnn/nn/sgd.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/train/evaluate.hpp"
#include "loop_common.hpp"

namespace axnn::train {

TrainResult train_fp(nn::Layer& model, const data::Dataset& train_ds,
                     const data::Dataset& test_ds, const TrainConfig& cfg) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();

  const auto params = nn::collect_params(model);
  nn::Sgd sgd(params, {cfg.lr, cfg.momentum, cfg.weight_decay, cfg.lr_decay, cfg.decay_every});
  Rng rng(cfg.seed);
  data::BatchIterator iter(train_ds, cfg.batch_size, rng);

  nn::ExecContext train_ctx = nn::ExecContext::fp(/*training=*/true);
  if (cfg.faults != nullptr) train_ctx = train_ctx.with_faults(*cfg.faults);
  detail::GuardedLoop gl(cfg.guard, sgd, params, "fp");

  TrainResult result;
  for (int epoch = 0; epoch < cfg.epochs && !gl.aborted(); ++epoch) {
    const auto e0 = Clock::now();
    Tensor images;
    std::vector<int> labels;
    double loss_sum = 0.0;
    int64_t batches = 0;
    // A divergence rollback restores the last epoch snapshot (with a halved
    // lr) and restarts the epoch; abort stops the run with the report set.
    bool retry = true;
    while (retry && !gl.aborted()) {
      retry = false;
      iter.reset();
      loss_sum = 0.0;
      batches = 0;
      while (iter.next(images, labels)) {
        model.zero_grad();
        const Tensor logits = model.forward(images, train_ctx);
        const nn::LossResult loss = nn::cross_entropy(logits, labels);
        (void)model.backward(loss.grad);
        if (!gl.step_ok(loss.value, epoch, batches)) {
          retry = !gl.aborted();
          break;
        }
        sgd.step();
        loss_sum += loss.value;
        ++batches;
      }
    }
    if (gl.aborted()) break;
    gl.epoch_done();
    sgd.on_epoch_end();

    EpochStat st;
    st.epoch = epoch;
    st.train_loss = batches ? loss_sum / static_cast<double>(batches) : 0.0;
    if (cfg.eval_every_epoch || epoch == cfg.epochs - 1)
      st.test_acc = evaluate_accuracy(model, test_ds, nn::ExecContext::fp());
    st.seconds = std::chrono::duration<double>(Clock::now() - e0).count();
    if (cfg.verbose)
      std::printf("[fp] epoch %d loss %.4f acc %.2f%% (%.1fs)\n", epoch, st.train_loss,
                  100.0 * st.test_acc, st.seconds);
    result.history.push_back(st);
    if (obs::enabled()) detail::record_epoch_event("fp", st);
  }
  result.final_acc = result.history.empty() ? 0.0 : result.history.back().test_acc;
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.health = gl.report();
  return result;
}

}  // namespace axnn::train
