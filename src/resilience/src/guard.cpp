#include "axnn/resilience/guard.hpp"

#include <cmath>
#include <sstream>

#include "axnn/obs/telemetry.hpp"

namespace axnn::resilience {

std::string DivergenceReport::summary() const {
  if (events.empty()) return "clean";
  std::ostringstream os;
  os << rollbacks << " rollback" << (rollbacks == 1 ? "" : "s") << " (";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i) os << ", ";
    os << events[i].cause << "@e" << events[i].epoch << "b" << events[i].batch;
  }
  os << "), " << (gave_up ? "gave up" : "recovered");
  return os.str();
}

DivergenceGuard::DivergenceGuard(GuardConfig cfg, std::vector<Tensor*> watched)
    : cfg_(cfg), watched_(std::move(watched)) {}

void DivergenceGuard::commit() {
  if (!cfg_.enabled) return;
  good_.resize(watched_.size());
  for (size_t i = 0; i < watched_.size(); ++i) good_[i] = *watched_[i];
}

DivergenceGuard::Action DivergenceGuard::observe(double loss, double grad_norm, int epoch,
                                                 int64_t batch, float lr) {
  if (!cfg_.enabled) return Action::kContinue;

  const char* cause = nullptr;
  if (!std::isfinite(loss)) cause = "nan-loss";
  else if (cfg_.loss_limit > 0.0 && loss > cfg_.loss_limit) cause = "loss-explosion";
  else if (cfg_.grad_norm_limit > 0.0 &&
           (!std::isfinite(grad_norm) || grad_norm > cfg_.grad_norm_limit))
    cause = "grad-explosion";
  if (cause == nullptr) return Action::kContinue;

  DivergenceEvent ev;
  ev.epoch = epoch;
  ev.batch = batch;
  ev.cause = cause;
  ev.loss = loss;
  ev.grad_norm = grad_norm;
  ev.lr_before = lr;
  ev.lr_after = lr * cfg_.lr_factor;
  if (obs::enabled()) {
    obs::Collector* c = obs::collector();
    obs::Json jev = obs::Json::object();
    jev["type"] = "divergence";
    jev["cause"] = ev.cause;
    jev["epoch"] = ev.epoch;
    jev["batch"] = ev.batch;
    jev["loss"] = ev.loss;
    jev["grad_norm"] = ev.grad_norm;
    jev["lr_before"] = static_cast<double>(ev.lr_before);
    jev["lr_after"] = static_cast<double>(ev.lr_after);
    jev["will_abort"] = report_.rollbacks >= cfg_.max_rollbacks;
    c->event(std::move(jev));
    c->add("train/guard", report_.rollbacks >= cfg_.max_rollbacks ? "aborts" : "rollbacks", 1.0);
    c->add("train/guard", "lr_halvings", 1.0);
  }
  report_.events.push_back(std::move(ev));

  // Restore the last committed state in both outcomes — an aborting run must
  // leave the watched tensors at the last-known-good snapshot, not at the
  // diverged values that triggered the event. A guard that never committed
  // has nothing to restore (good_ empty) but still reports the event.
  for (size_t i = 0; i < good_.size(); ++i) *watched_[i] = good_[i];
  if (report_.rollbacks >= cfg_.max_rollbacks) {
    report_.gave_up = true;
    return Action::kAbort;
  }
  ++report_.rollbacks;
  return Action::kRollback;
}

double l2_norm(const std::vector<Tensor*>& tensors) {
  double sq = 0.0;
  for (const Tensor* t : tensors)
    for (int64_t i = 0; i < t->numel(); ++i) {
      const double v = (*t)[i];
      sq += v * v;
    }
  return std::sqrt(sq);
}

}  // namespace axnn::resilience
