#include "axnn/resilience/fault.hpp"

#include <algorithm>
#include <cstring>

#include "axnn/approx/signed_lut.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/tensor/rng.hpp"

namespace axnn::resilience {

namespace {

uint32_t apply_fault(uint32_t word, uint32_t mask, FaultKind kind, bool stuck_value) {
  if (kind == FaultKind::kTransient) return word ^ mask;
  return stuck_value ? (word | mask) : (word & ~mask);
}

}  // namespace

FaultInjector::FaultInjector(FaultSpec spec) : spec_(spec) {
  spec_.bit_lo = std::clamp(spec_.bit_lo, 0, 31);
  spec_.bit_hi = std::clamp(spec_.bit_hi, spec_.bit_lo + 1, 32);
  if (spec_.rate > 0.0) {
    const double clamped = std::min(spec_.rate, 1.0);
    // Map the probability onto the full u64 range; a hash below the
    // threshold marks the element as faulty this pass.
    threshold_ = clamped >= 1.0
                     ? ~uint64_t{0}
                     : static_cast<uint64_t>(clamped * 18446744073709551616.0);
    if (threshold_ == 0) threshold_ = 1;  // tiny but non-zero rates stay live
  }
}

bool FaultInjector::active() const {
  if (!enabled()) return false;
  const int64_t p = pass_.load(std::memory_order_relaxed);
  return p >= spec_.first_pass && p < spec_.last_pass;
}

void FaultInjector::begin_pass() const {
  pass_.fetch_add(1, std::memory_order_relaxed);
  site_.store(0, std::memory_order_relaxed);
}

template <typename T>
void FaultInjector::corrupt_impl(T* data, int64_t n, uint64_t site) const {
  static_assert(sizeof(T) == sizeof(uint32_t));
  if (!active() || n <= 0) return;
  const int span = spec_.bit_hi - spec_.bit_lo;
  // Transient faults re-sample per pass; stuck-at faults ignore the pass so
  // the same elements/bits are hit every time.
  const uint64_t salt = spec_.kind == FaultKind::kTransient
                            ? static_cast<uint64_t>(pass_.load(std::memory_order_relaxed))
                            : 0;
  const uint64_t stream = hash_mix(spec_.seed, hash_mix(site, salt));
  int64_t local_flips = 0;
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t h = hash_mix(stream, static_cast<uint64_t>(i));
    if (h >= threshold_) continue;
    const int bit = spec_.bit_lo + static_cast<int>((h >> 33) % static_cast<uint64_t>(span));
    const uint32_t mask = uint32_t{1} << bit;
    const bool stuck_value = ((h >> 32) & 1) != 0;
    uint32_t word;
    std::memcpy(&word, &data[i], sizeof(word));
    const uint32_t faulty = apply_fault(word, mask, spec_.kind, stuck_value);
    if (faulty != word) {
      std::memcpy(&data[i], &faulty, sizeof(faulty));
      ++local_flips;
    }
  }
  if (local_flips) {
    flips_.fetch_add(local_flips, std::memory_order_relaxed);
    if (obs::enabled())
      obs::collector()->add("faults", "bit_flips", static_cast<double>(local_flips));
  }
}

void FaultInjector::corrupt(float* data, int64_t n, uint64_t site) const {
  corrupt_impl(data, n, site);
}

void FaultInjector::corrupt(int32_t* data, int64_t n, uint64_t site) const {
  corrupt_impl(data, n, site);
}

void FaultInjector::corrupt(Tensor& t) const {
  if (!active()) return;
  corrupt(t.data(), t.numel(), site_.fetch_add(1, std::memory_order_relaxed));
}

void corrupt_tensors(const std::vector<Tensor*>& tensors, const FaultInjector& inj) {
  uint64_t site = 0;
  for (Tensor* t : tensors) inj.corrupt(t->data(), t->numel(), site++);
}

void corrupt_lut(approx::SignedMulTable& table, const FaultInjector& inj) {
  inj.corrupt(table.mutable_data(), static_cast<int64_t>(axmul::kLutSize), /*site=*/0);
}

}  // namespace axnn::resilience
