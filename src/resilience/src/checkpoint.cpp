#include "axnn/resilience/checkpoint.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <utility>

namespace axnn::resilience {

namespace fs = std::filesystem;

void CheckpointConfig::validate() const {
  if (dir.empty()) throw std::invalid_argument("CheckpointConfig: dir must be non-empty");
  if (stem.empty()) throw std::invalid_argument("CheckpointConfig: stem must be non-empty");
  if (keep < 1) throw std::invalid_argument("CheckpointConfig: keep must be >= 1");
}

CheckpointSet::CheckpointSet(CheckpointConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
}

namespace {

/// Parse "<stem>-<gen>.axnp" -> gen, or -1 when the name does not match.
int64_t parse_generation(const std::string& filename, const std::string& stem) {
  const std::string prefix = stem + "-";
  const std::string suffix = ".axnp";
  if (filename.size() <= prefix.size() + suffix.size()) return -1;
  if (filename.compare(0, prefix.size(), prefix) != 0) return -1;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(), suffix) != 0) return -1;
  const std::string digits =
      filename.substr(prefix.size(), filename.size() - prefix.size() - suffix.size());
  if (digits.empty()) return -1;
  for (char c : digits)
    if (c < '0' || c > '9') return -1;
  char* end = nullptr;
  const long long gen = std::strtoll(digits.c_str(), &end, 10);
  return (end && *end == '\0' && gen >= 0) ? static_cast<int64_t>(gen) : -1;
}

/// (generation, path) pairs sorted newest first.
std::vector<std::pair<int64_t, std::string>> list_generations(const CheckpointConfig& cfg) {
  std::vector<std::pair<int64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cfg.dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const int64_t gen = parse_generation(entry.path().filename().string(), cfg.stem);
    if (gen >= 0) out.emplace_back(gen, entry.path().string());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

}  // namespace

std::string CheckpointSet::save(const std::function<void(const std::string&)>& writer) {
  if (!writer) throw std::invalid_argument("CheckpointSet::save: null writer");
  fs::create_directories(cfg_.dir);
  const int64_t gen = latest_generation() + 1;
  const std::string path =
      (fs::path(cfg_.dir) / (cfg_.stem + "-" + std::to_string(gen) + ".axnp")).string();
  writer(path);  // a throw here leaves the set unchanged
  // Prune: keep the newest `keep` generations, delete the rest. Deletion
  // failures are non-fatal — a stale generation is wasted disk, not a
  // correctness problem.
  const auto gens = list_generations(cfg_);
  for (size_t i = static_cast<size_t>(cfg_.keep); i < gens.size(); ++i) {
    std::error_code ec;
    fs::remove(gens[i].second, ec);
  }
  return path;
}

std::vector<std::string> CheckpointSet::generations() const {
  std::vector<std::string> out;
  for (const auto& [gen, path] : list_generations(cfg_)) out.push_back(path);
  return out;
}

int64_t CheckpointSet::latest_generation() const {
  const auto gens = list_generations(cfg_);
  return gens.empty() ? -1 : gens.front().first;
}

std::string CheckpointSet::load_latest(
    const std::function<void(const std::string&)>& loader) const {
  if (!loader) throw std::invalid_argument("CheckpointSet::load_latest: null loader");
  const auto gens = list_generations(cfg_);
  std::string errors;
  for (const auto& [gen, path] : gens) {
    try {
      loader(path);
      return path;
    } catch (const std::exception& ex) {
      errors += "\n  gen " + std::to_string(gen) + " (" + path + "): " + ex.what();
    }
  }
  throw std::runtime_error("CheckpointSet::load_latest: no loadable generation in '" +
                           cfg_.dir + "'" + (errors.empty() ? " (empty set)" : errors));
}

}  // namespace axnn::resilience
