// axnn — divergence detection and rollback for self-healing training loops.
//
// A DivergenceGuard watches a set of tensors (model parameters plus
// optimizer velocity) and classifies each optimizer step: a NaN/Inf loss or
// an exploding gradient norm triggers a rollback to the last committed
// snapshot. The driving loop then halves its learning rate and retries the
// epoch; after a bounded number of rollbacks the guard gives up and the
// loop fails loudly with the structured DivergenceReport attached to its
// result instead of silently burning the remaining epochs.
//
// Policy split: the guard owns detection, snapshotting, restoration and the
// report; the training loop owns the learning-rate change and the control
// flow (restart epoch vs stop), because only it can reach its optimizer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "axnn/tensor/tensor.hpp"

namespace axnn::resilience {

struct GuardConfig {
  /// Master switch. Disabled guards never snapshot and observe() is a no-op
  /// returning kContinue, so the default-on guard costs nothing extra beyond
  /// one isfinite() per batch.
  bool enabled = true;
  /// Gradient L2-norm above this value counts as divergence; 0 restricts
  /// detection to NaN/Inf loss (and skips the norm computation entirely).
  double grad_norm_limit = 0.0;
  /// Loss above this value counts as divergence even while finite; 0
  /// disables the check. Useful under quantized execution, where corrupted
  /// activations are clamped to huge-but-finite values that never reach NaN.
  double loss_limit = 0.0;
  /// Total rollbacks tolerated before the guard gives up.
  int max_rollbacks = 3;
  /// Learning-rate multiplier the loop applies after each rollback.
  float lr_factor = 0.5f;
};

struct DivergenceEvent {
  int epoch = 0;
  int64_t batch = 0;
  std::string cause;  ///< "nan-loss" | "loss-explosion" | "grad-explosion"
  double loss = 0.0;
  double grad_norm = 0.0;
  float lr_before = 0.0f;
  float lr_after = 0.0f;
};

struct DivergenceReport {
  std::vector<DivergenceEvent> events;
  int rollbacks = 0;
  bool gave_up = false;  ///< rollback budget exhausted; training stopped early

  bool clean() const { return events.empty(); }
  /// One-line human summary ("2 rollbacks (nan-loss@e1b3, ...), recovered").
  std::string summary() const;
};

class DivergenceGuard {
public:
  enum class Action {
    kContinue,  ///< step is healthy
    kRollback,  ///< watched tensors restored; halve lr and restart the epoch
    kAbort,     ///< budget exhausted; watched tensors restored, stop training
  };

  /// `watched` are the tensors snapshotted by commit() and restored on
  /// rollback; they must outlive the guard.
  DivergenceGuard(GuardConfig cfg, std::vector<Tensor*> watched);

  const GuardConfig& config() const { return cfg_; }
  bool enabled() const { return cfg_.enabled; }
  /// True when observe() needs a gradient norm (avoids the O(n) reduction
  /// when the norm check is off).
  bool wants_grad_norm() const { return cfg_.enabled && cfg_.grad_norm_limit > 0.0; }

  /// Snapshot the watched tensors as the last-known-good state. Call after
  /// every healthy epoch (and once before training starts).
  void commit();

  /// Classify one optimizer step *before* it is applied. `lr` is the loop's
  /// current learning rate; on rollback the event records lr and
  /// lr * lr_factor as before/after.
  Action observe(double loss, double grad_norm, int epoch, int64_t batch, float lr);

  const DivergenceReport& report() const { return report_; }

private:
  GuardConfig cfg_;
  std::vector<Tensor*> watched_;
  std::vector<Tensor> good_;  ///< last committed values (parallel to watched_)
  DivergenceReport report_;
};

/// L2 norm over a list of tensors (the global gradient norm when passed the
/// gradient tensors of every parameter).
double l2_norm(const std::vector<Tensor*>& tensors);

}  // namespace axnn::resilience
