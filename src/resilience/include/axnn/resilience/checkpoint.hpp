// axnn — crash-safe checkpoint rotation (keep-N generations with fallback).
//
// A CheckpointSet manages a directory of numbered checkpoint generations
// (`<stem>-<gen>.axnp`). save() hands the writer a fresh generation path
// (the writer is expected to write atomically — nn::save_params already
// does tmp+rename with a CRC32 footer) and prunes to the newest `keep`
// generations. load_latest() walks generations newest-first and returns the
// first one the caller's loader accepts; a corrupt or truncated newest file
// (detected by the loader — the AXNP CRC check throws) falls back to the
// previous generation instead of taking the deployment down.
//
// The rotation is deliberately format-agnostic (callbacks, not nn types):
// resilience sits *below* nn in the dependency order, and the same rotation
// serves any artifact with an atomic writer and a validating loader.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace axnn::resilience {

struct CheckpointConfig {
  std::string dir;           ///< directory (created on first save)
  std::string stem = "model";
  int keep = 3;              ///< generations retained after each save

  void validate() const;  ///< throws std::invalid_argument on nonsense
};

class CheckpointSet {
public:
  explicit CheckpointSet(CheckpointConfig cfg);

  const CheckpointConfig& config() const { return cfg_; }

  /// Write the next generation: calls `writer(path)` with the new file's
  /// path (the writer must create it atomically and may throw — a failed
  /// write leaves the set unchanged), then prunes old generations down to
  /// `keep`. Returns the path written.
  std::string save(const std::function<void(const std::string& path)>& writer);

  /// Existing generation paths, newest first.
  std::vector<std::string> generations() const;
  /// The newest generation number on disk (-1 when none).
  int64_t latest_generation() const;

  /// Walk generations newest-first and return the path of the first one
  /// `loader(path)` accepts (loader throws to reject — e.g. the AXNP CRC
  /// or shape check). Older generations are the fallback for a corrupt
  /// newest file. Throws std::runtime_error when no generation loads,
  /// with every per-generation failure in the message.
  std::string load_latest(const std::function<void(const std::string& path)>& loader) const;

private:
  CheckpointConfig cfg_;
};

}  // namespace axnn::resilience
