// axnn — seeded fault injection for weights, activations and multiplier LUTs.
//
// The paper argues approximate networks must stay accurate when their
// arithmetic is wrong; this module makes "wrong" a first-class, reproducible
// experiment axis. A FaultInjector flips bits in float tensors (weights,
// inter-layer activations) or int32 LUT entries (multiplier tables) at a
// configurable rate, deterministically from a seed:
//
//   * kTransient faults re-sample on every pass (soft errors / SEUs): the
//     same element may be hit in one forward and clean in the next.
//   * kStuckAt faults force the same bits of the same elements to a fixed
//     hash-derived value on every pass (hard defects).
//
// Determinism contract: given (seed, kind, rate, bit range) and the same
// sequence of begin_pass()/corrupt() calls, the exact same bits are flipped.
// The root Sequential::forward calls begin_pass() once per model forward
// (nested containers see ExecContext::fault_pass_begun and never re-call
// it) and corrupts the activations flowing between its children whenever
// ExecContext.faults is set; drivers only attach the injector via
// with_faults. Code corrupting raw tensors directly (weight sweeps, LUT
// faults) still calls begin_pass() itself.
//
// The injector is cheap when disabled (rate 0 => every call is a no-op) and
// O(n) hashing when enabled. Pass/site counters are atomics so a shared
// injector tolerates concurrent readers, but the intended use is one
// injector per experiment thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "axnn/tensor/tensor.hpp"

namespace axnn::approx {
class SignedMulTable;
}

namespace axnn::resilience {

enum class FaultKind {
  kTransient,  ///< re-sampled every pass (soft errors)
  kStuckAt,    ///< same elements/bits forced to the same value every pass
};

struct FaultSpec {
  /// Per-element fault probability per pass. 0 disables the injector.
  double rate = 0.0;
  FaultKind kind = FaultKind::kTransient;
  /// Eligible bit positions [bit_lo, bit_hi): floats use the IEEE-754 bit
  /// layout (0 = mantissa LSB, 30 = top exponent bit, 31 = sign), int32 LUT
  /// entries their two's-complement bits. Clamped to [0, 32).
  int bit_lo = 0;
  int bit_hi = 32;
  uint64_t seed = 0xFA17;
  /// Faults only fire while first_pass <= pass < last_pass, where the pass
  /// index starts at 0 and each begin_pass() call advances it. Lets tests
  /// and benches model transient bursts that the training loop must survive.
  int64_t first_pass = 0;
  int64_t last_pass = std::numeric_limits<int64_t>::max();
};

class FaultInjector {
public:
  FaultInjector() = default;
  explicit FaultInjector(FaultSpec spec);

  const FaultSpec& spec() const { return spec_; }

  /// True when the spec can ever flip a bit (rate > 0 and non-empty range).
  bool enabled() const { return threshold_ != 0; }

  /// True when faults fire for the current pass.
  bool active() const;

  /// Advance to the next pass and reset the per-pass site counter. The root
  /// Sequential calls this once per model forward; call it directly only
  /// when corrupting tensors outside a forward pass. Const so a const
  /// ExecContext can carry the injector.
  void begin_pass() const;

  /// Pass index the injector is currently in (0 before any begin_pass).
  int64_t pass() const { return pass_.load(std::memory_order_relaxed); }

  /// Total bits altered since construction (telemetry).
  int64_t flips() const { return flips_.load(std::memory_order_relaxed); }

  /// Corrupt a raw span. `site` distinguishes tensors within a pass so the
  /// same element index in different tensors draws independent faults.
  void corrupt(float* data, int64_t n, uint64_t site) const;
  void corrupt(int32_t* data, int64_t n, uint64_t site) const;

  /// Corrupt a tensor using the injector's running per-pass site counter
  /// (what Sequential::forward uses between layers).
  void corrupt(Tensor& t) const;

private:
  template <typename T>
  void corrupt_impl(T* data, int64_t n, uint64_t site) const;

  FaultSpec spec_;
  uint64_t threshold_ = 0;  ///< rate mapped onto the full u64 range
  mutable std::atomic<int64_t> pass_{0};
  mutable std::atomic<uint64_t> site_{0};
  mutable std::atomic<int64_t> flips_{0};
};

/// Flip bits in every tensor of the list (e.g. the collected parameter
/// values of a model) under one injector pass.
void corrupt_tensors(const std::vector<Tensor*>& tensors, const FaultInjector& inj);

/// Corrupt multiplier LUT entries in place (stuck-at faults in the
/// hardware's product table).
void corrupt_lut(approx::SignedMulTable& table, const FaultInjector& inj);

}  // namespace axnn::resilience
