// axnn — CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by the AXNP v3 checkpoint footer so a truncated or bit-flipped weight
// cache is rejected at load time instead of silently corrupting a model.
#pragma once

#include <cstddef>
#include <cstdint>

namespace axnn::resilience {

/// CRC32 of `n` bytes. Pass a previous result as `crc` to checksum a stream
/// incrementally: crc32(b, nb, crc32(a, na)) == crc32(concat(a, b)).
uint32_t crc32(const void* data, size_t n, uint32_t crc = 0);

}  // namespace axnn::resilience
