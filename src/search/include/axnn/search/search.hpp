// axnn — automated per-layer multiplier search (DESIGN.md §5j).
//
// Closes the loop the paper leaves open: PR 3 made heterogeneous plans
// *expressible* (NetPlan per-layer overrides), this module makes them
// *discoverable*. Given a stage-1 (quantized, fine-tuned) Workbench, the
// search explores the multiplier registry × bit-width space per layer and
// emits a Pareto front of accuracy-vs-energy plans as a QoS ladder that
// qos::parse_points / `axnn_cli serve --qos` consume unmodified.
//
// Three stages, in the spirit of FAMES (arXiv 2411.18055) with the cheap
// architectural error proxy of arXiv 2408.12836:
//
//   1. sensitivity profiling — per (layer, candidate) proxies combining the
//      layer's MAC share and accumulation length, the candidate's measured
//      MRE, the GE error fit magnitude at the layer's shape (FitRegistry),
//      and observed quantizer clip rates (obs telemetry); calibrated
//      against reality with a few one-shot holdout-delta probes.
//   2. search driver — greedy downgrade in sensitivity order under a series
//      of energy budgets, local pairwise-swap refinement, and an optional
//      seeded evolutionary pass; accuracy is *measured* on the holdout for
//      every emitted plan, estimates only steer the combinatorial part.
//   3. Pareto emission — the non-dominated measured plans (uniform
//      baselines included, so the front weakly dominates every uniform by
//      construction), serialized through core::plan_io.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "axnn/core/pipeline.hpp"
#include "axnn/data/dataset.hpp"
#include "axnn/ge/fit_registry.hpp"
#include "axnn/nn/sequential.hpp"
#include "axnn/obs/json.hpp"
#include "axnn/quant/quantizer.hpp"

namespace axnn::search {

/// Everything one search run needs — designated-initializer style, like
/// core::ApproxStageSetup / serve::ModelSpec, so searches are drivable from
/// C++ and tests without string argv.
struct SearchSpec {
  /// Candidate multiplier registry ids. Empty = {trunc2..trunc5}.
  std::vector<std::string> multipliers{};
  /// Extra (weight_bits, activation_bits) pairs to search per layer beyond
  /// the calibrated widths. Every width pair other than the calibrated one
  /// costs a clone + recalibration per distinct width signature, and plans
  /// using them cannot be served against weights calibrated at the default
  /// widths — leave empty (the default) for servable ladders.
  std::vector<std::pair<int, int>> widths{};
  /// Drop emitted points with holdout accuracy below this ([0,1]; 0 = off).
  double accuracy_floor = 0.0;
  /// Drop emitted points with modeled energy per sample above this
  /// (estimate_mixed units; 0 = off).
  double energy_cap = 0.0;
  /// Total holdout-evaluation budget (baseline + uniforms + probes + final
  /// candidates). The search never runs more evaluations than this.
  int budget_evals = 32;
  /// Holdout size: the tail of the test split (disjoint from the head
  /// samples used for MAC/clip profiling), same convention as serve::Engine.
  int holdout = 96;
  /// Seed for the evolutionary pass; a fixed seed makes the whole search
  /// deterministic (tested).
  uint64_t seed = 0x5EA12C4;
  /// Pairwise-swap refinement rounds after each greedy assignment.
  int swap_rounds = 2;
  /// Evolutionary generations per energy budget (0 = greedy + swap only).
  int evolution_generations = 0;
  int population = 12;  ///< evolutionary population size
  /// Maximum emitted ladder points (<= plan_io::kMaxLadderPoints). The
  /// thinning is dominance-safe: every uniform baseline stays weakly
  /// dominated by some emitted point.
  int max_points = 8;
  bool verbose = false;
};

/// One per-layer assignment option: a multiplier (empty = exact mode) at a
/// bit-width pair.
struct Candidate {
  std::string multiplier{};
  int weight_bits = quant::kWeightBits;
  int activation_bits = quant::kActivationBits;

  bool exact() const { return multiplier.empty(); }
};

/// Per-layer profile: the facts the proxy combines, reported for
/// inspection (`sensitivity` in the JSON report).
struct LayerSensitivity {
  std::string path;
  int64_t dot_length = 0;  ///< accumulation length (Monte-Carlo shape)
  int64_t macs = 0;        ///< MACs per sample (profiled forward)
  double mac_share = 0.0;  ///< fraction of network MACs
  double clip_rate = 0.0;  ///< observed quantizer clip rate, [0,1]
  double max_proxy = 0.0;  ///< worst-case candidate proxy (ranking key)
};

/// The profiled proxy model: layers plus a proxy value per
/// (layer, candidate) pair. proxy[i][c] estimates the accuracy loss of
/// moving layer i (alone) to candidate c; 0 for exact candidates.
struct SensitivityModel {
  std::vector<LayerSensitivity> layers;
  std::vector<std::vector<double>> proxy;
};

/// Profile `model` (stage-1 weights, calibrated): one instrumented forward
/// of `sample` collects per-layer MAC counts and clip rates; FitRegistry
/// supplies a GE error fit per (candidate, accumulation length). `sample`
/// should be a few head samples of the test split — the holdout tail must
/// stay unseen.
SensitivityModel profile_sensitivity(nn::Sequential& model, const data::Dataset& sample,
                                     const std::vector<Candidate>& candidates,
                                     ge::FitRegistry& fits);

/// One measured point of the search: a concrete plan with its holdout
/// accuracy and modeled energy.
struct SearchPoint {
  std::string name;       ///< ladder point name (front points only)
  std::string plan_text;  ///< NetPlan text (parseable, servable)
  double holdout_acc = 0.0;
  double energy_per_sample = 0.0;  ///< estimate_mixed units (1.0/exact MAC)
  double energy_savings_pct = 0.0;
  bool uniform = false;  ///< a uniform single-multiplier baseline

  obs::Json to_json() const;
};

struct SearchResult {
  double baseline_acc = 0.0;  ///< all-exact plan on the same holdout
  double exact_energy = 0.0;  ///< all-exact energy per sample (= MACs)
  int evals_used = 0;         ///< holdout evaluations actually run
  std::vector<LayerSensitivity> sensitivity;
  /// Non-dominated measured plans, best accuracy first (ladder order).
  std::vector<SearchPoint> front;
  /// Measured uniform baselines (one per candidate multiplier at the
  /// calibrated widths) — each is weakly dominated by some front point.
  std::vector<SearchPoint> uniform_baselines;

  /// The front as a QoS ladder ("point <name> = <plan>" lines) via
  /// core::plan_io — loads unmodified through qos::parse_points and
  /// `axnn_cli serve --qos`.
  std::string to_ladder_text() const;
  obs::Json to_json() const;
};

/// Run the search against `wb`'s stage-1 model (run_quantization_stage
/// first; throws std::logic_error otherwise). The Workbench itself is
/// never mutated — evaluation happens on clones.
SearchResult run_search(core::Workbench& wb, const SearchSpec& spec);

}  // namespace axnn::search
