// axnn — Pareto-dominance utilities for the plan search (DESIGN.md §5j).
//
// The search optimizes two objectives per candidate plan: holdout accuracy
// (maximize) and modeled energy per sample (minimize). These helpers are
// deliberately tiny and exactly specified so the search driver, the bench
// dominance gate and the tests all share one definition of "better".
#pragma once

#include <cstddef>
#include <vector>

namespace axnn::search {

/// One point in the objective plane: accuracy is maximized, energy is
/// minimized (energy::estimate_mixed units — 1.0 per exact MAC).
struct Objective {
  double accuracy = 0.0;
  double energy = 0.0;

  friend bool operator==(const Objective& x, const Objective& y) {
    return x.accuracy == y.accuracy && x.energy == y.energy;
  }
};

/// Strict (Pareto) dominance: `a` is at least as good as `b` in both
/// objectives and strictly better in at least one. dominates(a, a) is false.
bool dominates(const Objective& a, const Objective& b);

/// Non-strict dominance: `a` is at least as good as `b` in both objectives.
/// weakly_dominates(a, a) is true; equal points weakly dominate each other.
bool weakly_dominates(const Objective& a, const Objective& b);

/// Indices of the non-dominated points, in their original (stable) order.
/// Tie handling: of several points with identical objectives, only the
/// first survives — a front never carries duplicate objective pairs.
/// Guarantee: every input point is weakly dominated by some front member.
std::vector<size_t> pareto_front(const std::vector<Objective>& points);

}  // namespace axnn::search
