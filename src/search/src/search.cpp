#include "axnn/search/search.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>

#include "axnn/axmul/registry.hpp"
#include "axnn/core/plan_io.hpp"
#include "axnn/energy/energy.hpp"
#include "axnn/search/pareto.hpp"
#include "axnn/tensor/rng.hpp"
#include "axnn/train/evaluate.hpp"

namespace axnn::search {

namespace {

using Assignment = std::vector<int>;  ///< candidate index per leaf

const std::vector<std::string>& default_multipliers() {
  static const std::vector<std::string> kDefault = {"trunc2", "trunc3", "trunc4", "trunc5"};
  return kDefault;
}

double width_scale(const Candidate& c) {
  return static_cast<double>(c.weight_bits * c.activation_bits) /
         static_cast<double>(quant::kWeightBits * quant::kActivationBits);
}

nn::LayerPlan candidate_layer_plan(const Candidate& c) {
  nn::LayerPlan lp;
  lp.multiplier = c.multiplier;
  lp.weight_bits = c.weight_bits;
  lp.activation_bits = c.activation_bits;
  if (c.exact()) lp.mode = nn::ExecMode::kQuantExact;
  return lp;
}

/// Holdout evaluation with a per-width-signature clone cache: plans at the
/// calibrated widths run on the stage-1 clone directly; plans asking for
/// other widths get a clone with apply_bit_widths + recalibration, keyed by
/// the width signature so repeated evaluations share the calibration cost.
class HoldoutEvaluator {
public:
  HoldoutEvaluator(core::Workbench& wb, const SearchSpec& spec) : wb_(wb) {
    const auto& test = wb.data().test;
    const int64_t h = std::min<int64_t>(spec.holdout, test.size());
    if (h <= 0) throw std::invalid_argument("run_search: holdout must be > 0");
    auto sl = test.slice(test.size() - h, h);
    holdout_.images = sl.first;
    holdout_.labels = std::move(sl.second);
    base_ = wb.clone();
  }

  nn::Sequential& base_model() { return *base_; }
  const data::Dataset& holdout() const { return holdout_; }
  int evals_used() const { return evals_; }

  double accuracy(const nn::NetPlan& plan) {
    nn::Sequential& m = model_for(plan);
    const nn::PlanResolution res = plan.resolve(m);
    res.require_approximable();
    res.require_bit_widths();
    const nn::ExecContext ctx{.mode = nn::ExecMode::kQuantApprox, .plan = &res};
    ++evals_;
    return train::evaluate_accuracy(m, holdout_, ctx, 32);
  }

private:
  nn::Sequential& model_for(const nn::NetPlan& plan) {
    std::string sig;
    bool all_default = true;
    const auto leaves = nn::enumerate_gemm_leaves(*base_);
    for (const auto& leaf : leaves) {
      const nn::LayerPlan& lp = plan.match(leaf.path);
      if (lp.weight_bits != quant::kWeightBits || lp.activation_bits != quant::kActivationBits)
        all_default = false;
      sig += std::to_string(lp.weight_bits) + "." + std::to_string(lp.activation_bits) + "/";
    }
    if (all_default) return *base_;
    auto it = by_widths_.find(sig);
    if (it == by_widths_.end()) {
      auto clone = wb_.clone();
      plan.apply_bit_widths(*clone);
      train::calibrate_model(*clone, wb_.data().train, wb_.config().calib_samples, 32,
                             wb_.config().calibration);
      it = by_widths_.emplace(sig, std::move(clone)).first;
    }
    return *it->second;
  }

  core::Workbench& wb_;
  data::Dataset holdout_;
  std::unique_ptr<nn::Sequential> base_;
  std::map<std::string, std::unique_ptr<nn::Sequential>> by_widths_;
  int evals_ = 0;
};

/// Energy bookkeeping: per-leaf MAC counts crossed with candidate specs.
/// Bit-widths scale a leaf's approximate energy linearly with the bit
/// product (a first-order MAC-energy proxy; the multiplier-level figures
/// stay energy::estimate's).
class EnergyModel {
public:
  EnergyModel(const std::vector<LayerSensitivity>& layers,
              const std::vector<Candidate>& cands)
      : exact_spec_(axmul::find_spec("exact").value()) {
    leaf_energy_.assign(layers.size(), std::vector<double>(cands.size(), 0.0));
    exact_total_ = 0.0;
    for (size_t li = 0; li < layers.size(); ++li) {
      exact_total_ += static_cast<double>(layers[li].macs);
      for (size_t ci = 0; ci < cands.size(); ++ci) {
        const Candidate& c = cands[ci];
        const axmul::MultiplierSpec spec =
            c.exact() ? exact_spec_ : axmul::find_spec(c.multiplier).value();
        leaf_energy_[li][ci] =
            energy::estimate(layers[li].macs, spec).approx_energy * width_scale(c);
      }
    }
  }

  double exact_total() const { return exact_total_; }
  double leaf(size_t li, int ci) const { return leaf_energy_[li][static_cast<size_t>(ci)]; }
  double total(const Assignment& a) const {
    double e = 0.0;
    for (size_t li = 0; li < a.size(); ++li) e += leaf(li, a[li]);
    return e;
  }
  double savings_pct(double e) const {
    return exact_total_ > 0.0 ? (1.0 - e / exact_total_) * 100.0 : 0.0;
  }

private:
  axmul::MultiplierSpec exact_spec_;
  std::vector<std::vector<double>> leaf_energy_;
  double exact_total_ = 0.0;
};

/// Build the NetPlan for an assignment: the modal candidate becomes the
/// uniform default (shortest text), every other leaf gets an override.
nn::NetPlan assignment_plan(const std::vector<LayerSensitivity>& layers,
                            const std::vector<Candidate>& cands, const Assignment& a) {
  std::map<int, int> votes;
  for (int ci : a) ++votes[ci];
  int modal = a.empty() ? 0 : a.front();
  for (const auto& [ci, n] : votes)
    if (n > votes[modal]) modal = ci;
  nn::NetPlan plan(candidate_layer_plan(cands[static_cast<size_t>(modal)]));
  for (size_t li = 0; li < a.size(); ++li)
    if (a[li] != modal)
      plan.set(layers[li].path, candidate_layer_plan(cands[static_cast<size_t>(a[li])]));
  return plan;
}

/// Estimated accuracy loss of an assignment under the additive per-layer
/// delta model.
double est_loss(const std::vector<std::vector<double>>& delta, const Assignment& a) {
  double l = 0.0;
  for (size_t li = 0; li < a.size(); ++li) l += delta[li][static_cast<size_t>(a[li])];
  return l;
}

/// Greedy downgrade: start all-exact, repeatedly take the move with the
/// best (estimated loss increase) / (energy saved) ratio until the budget
/// holds. Deterministic: ties break toward larger savings, then lower
/// (layer, candidate) index.
Assignment greedy_assign(const EnergyModel& em, const std::vector<std::vector<double>>& delta,
                         size_t num_layers, size_t num_cands, double budget) {
  Assignment a(num_layers, 0);
  double energy = em.total(a);
  while (energy > budget + 1e-9) {
    int best_li = -1, best_ci = -1;
    double best_ratio = std::numeric_limits<double>::infinity(), best_de = 0.0;
    for (size_t li = 0; li < num_layers; ++li) {
      const double e_cur = em.leaf(li, a[li]);
      const double d_cur = delta[li][static_cast<size_t>(a[li])];
      for (size_t ci = 0; ci < num_cands; ++ci) {
        const double de = e_cur - em.leaf(li, static_cast<int>(ci));
        if (de <= 1e-12) continue;  // not a downgrade
        const double dl = std::max(0.0, delta[li][ci] - d_cur);
        const double ratio = dl / de;
        const bool better = ratio < best_ratio - 1e-15 ||
                            (std::abs(ratio - best_ratio) <= 1e-15 && de > best_de + 1e-12);
        if (better) {
          best_ratio = ratio;
          best_de = de;
          best_li = static_cast<int>(li);
          best_ci = static_cast<int>(ci);
        }
      }
    }
    if (best_li < 0) break;  // already as cheap as the space allows
    a[static_cast<size_t>(best_li)] = best_ci;
    energy -= best_de;
  }
  return a;
}

/// Local refinement under the budget: single-candidate moves and pairwise
/// assignment exchanges that lower the estimated loss.
void swap_refine(const EnergyModel& em, const std::vector<std::vector<double>>& delta,
                 double budget, int rounds, Assignment& a) {
  const size_t n = a.size();
  const size_t nc = delta.empty() ? 0 : delta.front().size();
  double energy = em.total(a);
  for (int r = 0; r < rounds; ++r) {
    bool improved = false;
    for (size_t li = 0; li < n; ++li) {
      for (size_t ci = 0; ci < nc; ++ci) {
        if (static_cast<int>(ci) == a[li]) continue;
        const double ne = energy - em.leaf(li, a[li]) + em.leaf(li, static_cast<int>(ci));
        if (ne > budget + 1e-9) continue;
        if (delta[li][ci] < delta[li][static_cast<size_t>(a[li])] - 1e-15) {
          a[li] = static_cast<int>(ci);
          energy = ne;
          improved = true;
        }
      }
    }
    for (size_t i = 0; i + 1 < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (a[i] == a[j]) continue;
        const double ne = energy - em.leaf(i, a[i]) - em.leaf(j, a[j]) + em.leaf(i, a[j]) +
                          em.leaf(j, a[i]);
        if (ne > budget + 1e-9) continue;
        const double cur = delta[i][static_cast<size_t>(a[i])] + delta[j][static_cast<size_t>(a[j])];
        const double swapped =
            delta[i][static_cast<size_t>(a[j])] + delta[j][static_cast<size_t>(a[i])];
        if (swapped < cur - 1e-15) {
          std::swap(a[i], a[j]);
          energy = ne;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
}

/// Downgrade random layers until the budget holds (evolutionary repair).
void repair(const EnergyModel& em, size_t num_cands, double budget, Rng& rng, Assignment& a) {
  double energy = em.total(a);
  int guard = 0;
  while (energy > budget + 1e-9 && guard++ < 4096) {
    const size_t li = static_cast<size_t>(rng.uniform_int(static_cast<int64_t>(a.size())));
    int cheapest = a[li];
    for (size_t ci = 0; ci < num_cands; ++ci)
      if (em.leaf(li, static_cast<int>(ci)) < em.leaf(li, cheapest))
        cheapest = static_cast<int>(ci);
    if (cheapest == a[li]) continue;
    energy += em.leaf(li, cheapest) - em.leaf(li, a[li]);
    a[li] = cheapest;
  }
}

/// Seeded evolutionary pass around a greedy seed: elitist (top half
/// survives), uniform crossover, single-gene mutation, repair to the
/// budget. Fully deterministic given the Rng.
Assignment evolve(const EnergyModel& em, const std::vector<std::vector<double>>& delta,
                  double budget, const SearchSpec& spec, const Assignment& seed, Rng& rng) {
  const size_t n = seed.size();
  const size_t nc = delta.empty() ? 0 : delta.front().size();
  const int pop_n = std::max(4, spec.population);
  std::vector<Assignment> pop;
  pop.push_back(seed);
  while (static_cast<int>(pop.size()) < pop_n) {
    Assignment a = seed;
    const size_t li = static_cast<size_t>(rng.uniform_int(static_cast<int64_t>(n)));
    a[li] = static_cast<int>(rng.uniform_int(static_cast<int64_t>(nc)));
    repair(em, nc, budget, rng, a);
    pop.push_back(std::move(a));
  }
  auto fitness = [&](const Assignment& a) { return est_loss(delta, a); };
  for (int g = 0; g < spec.evolution_generations; ++g) {
    std::stable_sort(pop.begin(), pop.end(),
                     [&](const Assignment& x, const Assignment& y) {
                       return fitness(x) < fitness(y);
                     });
    const size_t keep = pop.size() / 2;
    for (size_t k = keep; k < pop.size(); ++k) {
      const Assignment& pa = pop[static_cast<size_t>(rng.uniform_int(static_cast<int64_t>(keep)))];
      const Assignment& pb = pop[static_cast<size_t>(rng.uniform_int(static_cast<int64_t>(keep)))];
      Assignment child(n);
      for (size_t li = 0; li < n; ++li) child[li] = rng.uniform() < 0.5 ? pa[li] : pb[li];
      const size_t li = static_cast<size_t>(rng.uniform_int(static_cast<int64_t>(n)));
      child[li] = static_cast<int>(rng.uniform_int(static_cast<int64_t>(nc)));
      repair(em, nc, budget, rng, child);
      pop[k] = std::move(child);
    }
  }
  Assignment best = pop.front();
  for (const auto& a : pop)
    if (fitness(a) < fitness(best)) best = a;
  return best;
}

/// Ladder point name: rank plus the measured coordinates, using only
/// characters the ladder-name grammar admits ([A-Za-z0-9_.-]).
std::string point_name(size_t rank, const SearchPoint& p) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "p%zu-acc%.1f-sav%.1f", rank, 100.0 * p.holdout_acc,
                p.energy_savings_pct);
  return buf;
}

}  // namespace

obs::Json SearchPoint::to_json() const {
  obs::Json j = obs::Json::object();
  j["name"] = name;
  j["plan"] = plan_text;
  j["holdout_acc"] = holdout_acc;
  j["energy_per_sample"] = energy_per_sample;
  j["energy_savings_pct"] = energy_savings_pct;
  j["uniform"] = uniform;
  return j;
}

std::string SearchResult::to_ladder_text() const {
  std::vector<core::plan_io::NamedPlan> named;
  named.reserve(front.size());
  for (const auto& p : front) named.push_back({p.name, p.plan_text});
  return core::plan_io::to_text(named);
}

obs::Json SearchResult::to_json() const {
  obs::Json j = obs::Json::object();
  j["baseline_acc"] = baseline_acc;
  j["exact_energy"] = exact_energy;
  j["evals_used"] = static_cast<int64_t>(evals_used);
  j["front_size"] = static_cast<int64_t>(front.size());
  obs::Json sens = obs::Json::array();
  for (const auto& s : sensitivity) {
    obs::Json e = obs::Json::object();
    e["path"] = s.path;
    e["dot_length"] = s.dot_length;
    e["macs"] = s.macs;
    e["mac_share"] = s.mac_share;
    e["clip_rate"] = s.clip_rate;
    e["max_proxy"] = s.max_proxy;
    sens.push_back(std::move(e));
  }
  j["sensitivity"] = std::move(sens);
  obs::Json fr = obs::Json::array();
  for (const auto& p : front) fr.push_back(p.to_json());
  j["front"] = std::move(fr);
  obs::Json un = obs::Json::array();
  for (const auto& p : uniform_baselines) un.push_back(p.to_json());
  j["uniform_baselines"] = std::move(un);
  return j;
}

SearchResult run_search(core::Workbench& wb, const SearchSpec& spec) {
  const std::vector<std::string>& mults =
      spec.multipliers.empty() ? default_multipliers() : spec.multipliers;
  for (const auto& id : mults)
    if (!axmul::find_spec(id))
      throw std::invalid_argument("run_search: unknown multiplier '" + id + "'");
  for (const auto& [w, a] : spec.widths)
    if (w < 2 || w > 8 || a < 2 || a > 8)
      throw std::invalid_argument("run_search: bit-widths must be in [2,8]");
  if (spec.max_points < 1 || spec.max_points > core::plan_io::kMaxLadderPoints)
    throw std::invalid_argument("run_search: max_points must be in [1, " +
                                std::to_string(core::plan_io::kMaxLadderPoints) + "]");

  // Candidate set: exact first (index 0), then each multiplier at the
  // calibrated widths and at every extra width pair.
  std::vector<Candidate> cands;
  cands.push_back(Candidate{});  // exact
  for (const auto& id : mults) {
    cands.push_back(Candidate{.multiplier = id});
    for (const auto& [w, a] : spec.widths)
      if (w != quant::kWeightBits || a != quant::kActivationBits)
        cands.push_back(Candidate{.multiplier = id, .weight_bits = w, .activation_bits = a});
  }

  const int min_budget = 2 + static_cast<int>(mults.size());
  if (spec.budget_evals < min_budget)
    throw std::invalid_argument("run_search: budget_evals must be >= " +
                                std::to_string(min_budget) +
                                " (baseline + uniforms + one searched point)");

  HoldoutEvaluator ev(wb, spec);

  // Sensitivity profiling on a few head samples (the holdout is the tail).
  const auto& test = wb.data().test;
  const int64_t profile_n = std::min<int64_t>(4, std::max<int64_t>(1, test.size() - spec.holdout));
  data::Dataset sample;
  {
    auto sl = test.slice(0, profile_n);
    sample.images = sl.first;
    sample.labels = std::move(sl.second);
  }
  ge::FitRegistry fits;
  SensitivityModel sens = profile_sensitivity(ev.base_model(), sample, cands, fits);
  const size_t nl = sens.layers.size();
  const size_t nc = cands.size();

  EnergyModel em(sens.layers, cands);

  SearchResult result;
  result.sensitivity = sens.layers;
  result.exact_energy = em.exact_total();

  // Measured-point archive. Every entry carries a *measured* holdout
  // accuracy; the emitted front is computed over these only.
  struct Entry {
    SearchPoint point;
  };
  std::vector<Entry> archive;
  std::set<std::string> seen_plans;
  auto measure = [&](const nn::NetPlan& plan, bool uniform) -> const SearchPoint* {
    const std::string text = plan.to_string();
    if (!seen_plans.insert(text).second) return nullptr;
    if (ev.evals_used() >= spec.budget_evals) return nullptr;
    SearchPoint p;
    p.plan_text = text;
    p.uniform = uniform;
    p.holdout_acc = ev.accuracy(plan);
    // Energy from the resolved per-leaf assignment implied by the plan.
    double e = 0.0;
    for (size_t li = 0; li < nl; ++li) {
      const nn::LayerPlan& lp = plan.match(sens.layers[li].path);
      Candidate c{.multiplier = lp.mode && *lp.mode != nn::ExecMode::kQuantApprox
                                    ? std::string{}
                                    : lp.multiplier,
                  .weight_bits = lp.weight_bits,
                  .activation_bits = lp.activation_bits};
      const axmul::MultiplierSpec cspec = c.exact()
                                              ? axmul::find_spec("exact").value()
                                              : axmul::find_spec(c.multiplier).value();
      e += energy::estimate(sens.layers[li].macs, cspec).approx_energy * width_scale(c);
    }
    p.energy_per_sample = e;
    p.energy_savings_pct = em.savings_pct(e);
    archive.push_back(Entry{std::move(p)});
    return &archive.back().point;
  };

  // 1. Baseline: the all-exact plan.
  nn::NetPlan exact_plan(candidate_layer_plan(Candidate{}));
  const SearchPoint* base = measure(exact_plan, /*uniform=*/false);
  result.baseline_acc = base != nullptr ? base->holdout_acc : 0.0;

  // 2. Uniform baselines, one per multiplier at the calibrated widths —
  //    the plans bench_mixed_multipliers compares against.
  for (const auto& id : mults) {
    nn::NetPlan up(candidate_layer_plan(Candidate{.multiplier = id}));
    if (const SearchPoint* p = measure(up, /*uniform=*/true)) {
      result.uniform_baselines.push_back(*p);
      result.uniform_baselines.back().name = "uniform-" + id;
    }
  }

  // 3. One-shot holdout-delta probes, most-damaging (by proxy) first, to
  //    calibrate the proxy scale. Reserve evaluations for the final
  //    searched plans; spend the rest here.
  std::vector<std::pair<size_t, size_t>> pairs;  // (layer, candidate)
  for (size_t li = 0; li < nl; ++li)
    for (size_t ci = 1; ci < nc; ++ci) pairs.emplace_back(li, ci);
  std::stable_sort(pairs.begin(), pairs.end(), [&](const auto& x, const auto& y) {
    return sens.proxy[x.first][x.second] > sens.proxy[y.first][y.second];
  });
  const int reserved = std::min(spec.max_points, 4) + (spec.evolution_generations > 0 ? 2 : 0);
  const int probe_budget =
      std::max(0, spec.budget_evals - ev.evals_used() - reserved);
  std::vector<std::vector<double>> measured(nl, std::vector<double>(nc, -1.0));
  double sum_dp = 0.0, sum_pp = 0.0;
  int probes = 0;
  for (const auto& [li, ci] : pairs) {
    if (probes >= probe_budget) break;
    nn::NetPlan probe(candidate_layer_plan(Candidate{}));
    probe.set(sens.layers[li].path, candidate_layer_plan(cands[ci]));
    const SearchPoint* p = measure(probe, /*uniform=*/false);
    if (p == nullptr) break;
    ++probes;
    const double d = std::max(0.0, result.baseline_acc - p->holdout_acc);
    measured[li][ci] = d;
    sum_dp += d * sens.proxy[li][ci];
    sum_pp += sens.proxy[li][ci] * sens.proxy[li][ci];
  }
  const double alpha = sum_pp > 0.0 ? std::max(0.0, sum_dp / sum_pp) : 1.0;

  // Per-(layer, candidate) estimated accuracy deltas: measured where
  // probed, proxy-scaled everywhere else (additivity assumption).
  std::vector<std::vector<double>> delta(nl, std::vector<double>(nc, 0.0));
  for (size_t li = 0; li < nl; ++li)
    for (size_t ci = 1; ci < nc; ++ci)
      delta[li][ci] = measured[li][ci] >= 0.0 ? measured[li][ci] : alpha * sens.proxy[li][ci];

  // 4. Energy budgets: the uniform candidate energies anchor the sweep
  //    (each asks "beat this uniform at its own energy"), plus the explicit
  //    cap when one is set.
  std::vector<double> budgets;
  for (size_t ci = 1; ci < nc; ++ci) {
    Assignment u(nl, static_cast<int>(ci));
    budgets.push_back(em.total(u));
  }
  if (spec.energy_cap > 0.0) budgets.push_back(spec.energy_cap);
  std::sort(budgets.begin(), budgets.end(), std::greater<double>());
  budgets.erase(std::unique(budgets.begin(), budgets.end(),
                            [](double x, double y) { return std::abs(x - y) < 1e-9; }),
                budgets.end());
  if (static_cast<int>(budgets.size()) > spec.max_points) {
    std::vector<double> thinned;
    const size_t den = static_cast<size_t>(std::max(1, spec.max_points - 1));
    for (int k = 0; k < spec.max_points; ++k)
      thinned.push_back(budgets[static_cast<size_t>(k) * (budgets.size() - 1) / den]);
    budgets = std::move(thinned);
  }

  // 5. Greedy + swap refinement (+ optional evolution) per budget; every
  //    resulting plan is measured for real.
  Rng rng(spec.seed);
  for (size_t bi = 0; bi < budgets.size(); ++bi) {
    Assignment a = greedy_assign(em, delta, nl, nc, budgets[bi]);
    swap_refine(em, delta, budgets[bi], spec.swap_rounds, a);
    if (spec.verbose)
      std::printf("search: budget %.0f -> est loss %.4f energy %.0f\n", budgets[bi],
                  est_loss(delta, a), em.total(a));
    (void)measure(assignment_plan(sens.layers, cands, a), /*uniform=*/false);
    if (spec.evolution_generations > 0) {
      Rng child(spec.seed ^ (0x9E3779B97F4A7C15ull * (bi + 1)));
      Assignment e = evolve(em, delta, budgets[bi], spec, a, child);
      if (e != a) (void)measure(assignment_plan(sens.layers, cands, e), /*uniform=*/false);
    }
  }
  result.evals_used = ev.evals_used();

  // 6. Pareto front over the measured archive, constraint filtering,
  //    dominance-safe thinning, ladder ordering and naming.
  std::vector<Objective> objs;
  objs.reserve(archive.size());
  for (const auto& e : archive) objs.push_back({e.point.holdout_acc, e.point.energy_per_sample});
  std::vector<size_t> front_idx = pareto_front(objs);

  // Constraint filtering (never below one surviving point).
  {
    std::vector<size_t> kept;
    for (size_t i : front_idx) {
      if (spec.energy_cap > 0.0 && objs[i].energy > spec.energy_cap + 1e-9) continue;
      if (spec.accuracy_floor > 0.0 && objs[i].accuracy < spec.accuracy_floor - 1e-12) continue;
      kept.push_back(i);
    }
    if (!kept.empty()) front_idx = std::move(kept);
  }

  // Ladder order: best accuracy first; ties toward lower energy.
  std::stable_sort(front_idx.begin(), front_idx.end(), [&](size_t x, size_t y) {
    if (objs[x].accuracy != objs[y].accuracy) return objs[x].accuracy > objs[y].accuracy;
    return objs[x].energy < objs[y].energy;
  });

  // Thin to max_points, keeping (a) for every uniform baseline one point
  // that weakly dominates it, (b) the accuracy/energy extremes, (c) an
  // even spread of the rest.
  if (static_cast<int>(front_idx.size()) > spec.max_points) {
    std::set<size_t> keep;
    for (const auto& ub : result.uniform_baselines) {
      const Objective u{ub.holdout_acc, ub.energy_per_sample};
      for (size_t i : front_idx)
        if (weakly_dominates(objs[i], u)) {
          keep.insert(i);
          break;
        }
    }
    keep.insert(front_idx.front());
    keep.insert(front_idx.back());
    const size_t den = static_cast<size_t>(std::max(1, spec.max_points - 1));
    for (int s = 0; s < spec.max_points && static_cast<int>(keep.size()) < spec.max_points; ++s)
      keep.insert(front_idx[static_cast<size_t>(s) * (front_idx.size() - 1) / den]);
    std::vector<size_t> thinned;
    for (size_t i : front_idx)
      if (keep.count(i)) thinned.push_back(i);
    front_idx = std::move(thinned);
  }

  for (size_t k = 0; k < front_idx.size(); ++k) {
    SearchPoint p = archive[front_idx[k]].point;
    p.name = point_name(k, p);
    result.front.push_back(std::move(p));
  }
  return result;
}

}  // namespace axnn::search
