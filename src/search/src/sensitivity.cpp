#include <algorithm>
#include <cmath>
#include <map>

#include "axnn/axmul/registry.hpp"
#include "axnn/axmul/stats.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/search/search.hpp"

namespace axnn::search {

namespace {

/// Observed clip rate for a leaf: the larger of the real-quantize and
/// fake-quantize rates recorded under the leaf's path (whichever the
/// profiled exec mode exercised).
double leaf_clip_rate(const obs::Collector& col, const std::string& path) {
  const auto q = col.stat(path, "quantize.clip_rate");
  const auto fq = col.stat(path, "fake_quantize.clip_rate");
  double r = 0.0;
  if (q.count > 0) r = std::max(r, q.mean());
  if (fq.count > 0) r = std::max(r, fq.mean());
  return r;
}

}  // namespace

SensitivityModel profile_sensitivity(nn::Sequential& model, const data::Dataset& sample,
                                     const std::vector<Candidate>& candidates,
                                     ge::FitRegistry& fits) {
  SensitivityModel out;
  const auto leaves = nn::enumerate_gemm_leaves(model);
  if (leaves.empty()) throw std::invalid_argument("profile_sensitivity: model has no GEMM leaves");
  if (sample.size() <= 0) throw std::invalid_argument("profile_sensitivity: empty sample");

  // One instrumented exact forward: fills every leaf's MAC counter and
  // records quantizer clip rates under the leaf paths.
  obs::Collector col;
  {
    obs::ScopedCollector attach(col);
    (void)model.forward(sample.images, nn::ExecContext::quant_exact());
  }

  int64_t total_macs = 0;
  for (const auto& leaf : leaves) total_macs += leaf.layer->last_mac_count();
  if (total_macs <= 0) throw std::logic_error("profile_sensitivity: no MACs recorded");

  out.layers.reserve(leaves.size());
  for (const auto& leaf : leaves) {
    LayerSensitivity s;
    s.path = leaf.path;
    s.dot_length = leaf.dot_length;
    s.macs = leaf.layer->last_mac_count() / sample.size();
    s.mac_share = static_cast<double>(leaf.layer->last_mac_count()) /
                  static_cast<double>(total_macs);
    s.clip_rate = leaf_clip_rate(col, leaf.path);
    out.layers.push_back(std::move(s));
  }

  // Per-candidate ingredients shared across layers: the LUT (for the GE
  // fits) and its measured MRE. Memoized by multiplier id — width variants
  // of one multiplier share both.
  std::map<std::string, approx::SignedMulTable> tables;
  std::map<std::string, double> mre;
  for (const auto& c : candidates) {
    if (c.exact() || tables.count(c.multiplier)) continue;
    auto lut = axmul::make_lut(c.multiplier);
    mre[c.multiplier] = axmul::compute_error_stats(lut).mre;
    tables.emplace(c.multiplier, approx::SignedMulTable(std::move(lut)));
  }

  // proxy(layer, candidate): MAC share × candidate MRE × clip inflation ×
  // fit inflation × width inflation. The absolute scale is irrelevant (the
  // greedy driver only compares proxies and calibrates against measured
  // holdout deltas); what matters is monotonicity — bigger layers, noisier
  // multipliers, clippier activations and narrower widths all rank as more
  // damaging.
  out.proxy.assign(out.layers.size(), std::vector<double>(candidates.size(), 0.0));
  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    const Candidate& c = candidates[ci];
    if (c.exact()) continue;
    const double width_infl =
        static_cast<double>(quant::kWeightBits * quant::kActivationBits) /
        static_cast<double>(std::max(1, c.weight_bits * c.activation_bits));
    for (size_t li = 0; li < out.layers.size(); ++li) {
      const LayerSensitivity& s = out.layers[li];
      // Accumulated-error magnitude at a typical dot-product scale: the GE
      // fit f(y) evaluated at ±y_typ, normalized so it contributes a
      // dimensionless inflation factor.
      const auto& fit =
          fits.fit_for_shape(tables.at(c.multiplier), c.multiplier, s.dot_length);
      const double y_typ = 32.0 * static_cast<double>(std::max<int64_t>(1, s.dot_length));
      const double fit_err = std::abs(fit.eval(y_typ)) + std::abs(fit.eval(-y_typ));
      const double fit_infl = 1.0 + fit_err / (2.0 * y_typ);
      out.proxy[li][ci] = s.mac_share * mre.at(c.multiplier) * (1.0 + s.clip_rate) *
                          fit_infl * width_infl;
    }
  }

  for (size_t li = 0; li < out.layers.size(); ++li)
    out.layers[li].max_proxy =
        *std::max_element(out.proxy[li].begin(), out.proxy[li].end());
  return out;
}

}  // namespace axnn::search
