#include "axnn/search/pareto.hpp"

namespace axnn::search {

bool weakly_dominates(const Objective& a, const Objective& b) {
  return a.accuracy >= b.accuracy && a.energy <= b.energy;
}

bool dominates(const Objective& a, const Objective& b) {
  return weakly_dominates(a, b) && (a.accuracy > b.accuracy || a.energy < b.energy);
}

std::vector<size_t> pareto_front(const std::vector<Objective>& points) {
  std::vector<size_t> front;
  for (size_t i = 0; i < points.size(); ++i) {
    bool keep = true;
    for (size_t j = 0; j < points.size() && keep; ++j) {
      if (j == i) continue;
      if (dominates(points[j], points[i])) keep = false;
      // Duplicate objectives: the earliest occurrence represents the tie.
      if (j < i && points[j] == points[i]) keep = false;
    }
    if (keep) front.push_back(i);
  }
  return front;
}

}  // namespace axnn::search
