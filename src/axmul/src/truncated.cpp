#include "axnn/axmul/truncated.hpp"

#include <stdexcept>

namespace axnn::axmul {

TruncatedMultiplier::TruncatedMultiplier(int truncated_lsbs) : t_(truncated_lsbs) {
  if (t_ < 0 || t_ >= kActBits + kWgtBits)
    throw std::invalid_argument("TruncatedMultiplier: truncated_lsbs out of range");
}

std::string TruncatedMultiplier::name() const { return "trunc" + std::to_string(t_); }

int32_t TruncatedMultiplier::multiply(uint8_t a, uint8_t w) const {
  // Sum the partial-product array keeping only columns with weight >= 2^t:
  //   P = sum_{i<8, j<4, i+j>=t} a_i * w_j * 2^(i+j)
  int32_t p = 0;
  for (int j = 0; j < kWgtBits; ++j) {
    if (!((w >> j) & 1)) continue;
    for (int i = 0; i < kActBits; ++i) {
      if (!((a >> i) & 1)) continue;
      if (i + j >= t_) p += 1 << (i + j);
    }
  }
  return p;
}

}  // namespace axnn::axmul
