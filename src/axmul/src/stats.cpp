#include "axnn/axmul/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace axnn::axmul {

namespace {

template <typename ProductFn>
ErrorStats stats_impl(ProductFn&& product) {
  ErrorStats s;
  double acc_mre = 0.0, acc_err = 0.0, acc_sq = 0.0;
  int64_t zero_err = 0;
  for (int a = 0; a < kActValues; ++a) {
    for (int w = 0; w < kWgtValues; ++w) {
      const int32_t y = Multiplier::exact(static_cast<uint8_t>(a), static_cast<uint8_t>(w));
      const int32_t yt = product(static_cast<uint8_t>(a), static_cast<uint8_t>(w));
      const double e = static_cast<double>(yt) - y;
      acc_mre += std::abs(e) / std::max<double>(y, 1.0);
      acc_err += e;
      acc_sq += e * e;
      s.max_abs_error = std::max(s.max_abs_error, std::abs(e));
      zero_err += (e == 0.0);
    }
  }
  const double n = static_cast<double>(kLutSize);
  s.mre = acc_mre / n;
  s.mean_error = acc_err / n;
  s.rms_error = std::sqrt(acc_sq / n);
  s.zero_error_fraction = static_cast<double>(zero_err) / n;
  return s;
}

}  // namespace

ErrorStats compute_error_stats(const Multiplier& m) {
  return stats_impl([&](uint8_t a, uint8_t w) { return m.multiply(a, w); });
}

ErrorStats compute_error_stats(const MultiplierLut& lut) {
  return stats_impl([&](uint8_t a, uint8_t w) { return lut(a, w); });
}

std::vector<ErrorBin> error_profile(const MultiplierLut& lut, int bins) {
  const double y_max = static_cast<double>((kActValues - 1) * (kWgtValues - 1));
  std::vector<ErrorBin> out(static_cast<size_t>(bins));
  for (int b = 0; b < bins; ++b) {
    out[static_cast<size_t>(b)].y_center = (b + 0.5) * y_max / bins;
    out[static_cast<size_t>(b)].min_eps = std::numeric_limits<double>::infinity();
    out[static_cast<size_t>(b)].max_eps = -std::numeric_limits<double>::infinity();
  }
  for (int a = 0; a < kActValues; ++a) {
    for (int w = 0; w < kWgtValues; ++w) {
      const int32_t y = Multiplier::exact(static_cast<uint8_t>(a), static_cast<uint8_t>(w));
      const double e = static_cast<double>(lut(static_cast<uint8_t>(a), static_cast<uint8_t>(w))) - y;
      int b = static_cast<int>(static_cast<double>(y) / y_max * bins);
      b = std::clamp(b, 0, bins - 1);
      auto& bin = out[static_cast<size_t>(b)];
      bin.mean_eps += e;
      bin.min_eps = std::min(bin.min_eps, e);
      bin.max_eps = std::max(bin.max_eps, e);
      ++bin.count;
    }
  }
  for (auto& bin : out) {
    if (bin.count > 0) {
      bin.mean_eps /= static_cast<double>(bin.count);
    } else {
      bin.min_eps = bin.max_eps = 0.0;
    }
  }
  return out;
}

}  // namespace axnn::axmul
