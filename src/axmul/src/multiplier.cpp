#include "axnn/axmul/multiplier.hpp"

namespace axnn::axmul {

MultiplierLut::MultiplierLut() : MultiplierLut(ExactMultiplier{}) {}

MultiplierLut::MultiplierLut(const Multiplier& m) : name_(m.name()) {
  for (int a = 0; a < kActValues; ++a)
    for (int w = 0; w < kWgtValues; ++w)
      lut_[(static_cast<size_t>(a) << kWgtBits) | static_cast<size_t>(w)] =
          m.multiply(static_cast<uint8_t>(a), static_cast<uint8_t>(w));
}

}  // namespace axnn::axmul
