#include "axnn/axmul/adder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "axnn/tensor/rng.hpp"

namespace axnn::axmul {

namespace {
void check_bits(int k) {
  if (k < 0 || k > 24) throw std::invalid_argument("adder: lower-bit count out of [0, 24]");
}
}  // namespace

TruncatedAdder::TruncatedAdder(int truncated_lsbs) : k_(truncated_lsbs) {
  check_bits(k_);
  mask_ = ~((1 << k_) - 1);
}

std::string TruncatedAdder::name() const { return "truncadd" + std::to_string(k_); }

int32_t TruncatedAdder::add(int32_t a, int32_t b) const {
  // Masking two's complement LSBs rounds both operands toward -inf.
  return (a & mask_) + (b & mask_);
}

LoaAdder::LoaAdder(int lower_bits) : k_(lower_bits) {
  check_bits(k_);
  low_mask_ = (1 << k_) - 1;
}

std::string LoaAdder::name() const { return "loa" + std::to_string(k_); }

int32_t LoaAdder::add(int32_t a, int32_t b) const {
  const int32_t low = (a | b) & low_mask_;
  const int32_t high = (a & ~low_mask_) + (b & ~low_mask_);
  return high | low;
}

AdderStats compute_adder_stats(const Adder& adder, int32_t operand_range, int64_t samples,
                               uint64_t seed) {
  if (operand_range <= 0) throw std::invalid_argument("compute_adder_stats: bad range");
  Rng rng(seed);
  AdderStats s;
  double acc_err = 0.0, acc_sq = 0.0, acc_mre = 0.0;
  for (int64_t i = 0; i < samples; ++i) {
    const int32_t a =
        static_cast<int32_t>(rng.uniform_int(2 * operand_range + 1)) - operand_range;
    const int32_t b =
        static_cast<int32_t>(rng.uniform_int(2 * operand_range + 1)) - operand_range;
    const double e = static_cast<double>(adder.add(a, b)) - Adder::exact(a, b);
    acc_err += e;
    acc_sq += e * e;
    s.max_abs_error = std::max(s.max_abs_error, std::abs(e));
    acc_mre += std::abs(e) / std::max(1.0, std::abs(static_cast<double>(a) + b));
  }
  const double n = static_cast<double>(samples);
  s.mean_error = acc_err / n;
  s.rms_error = std::sqrt(acc_sq / n);
  s.mre = acc_mre / n;
  return s;
}

std::unique_ptr<Adder> make_adder(const std::string& id) {
  if (id == "exact_add") return std::make_unique<ExactAdder>();
  if (id.rfind("truncadd", 0) == 0)
    return std::make_unique<TruncatedAdder>(std::stoi(id.substr(8)));
  if (id.rfind("loa", 0) == 0) return std::make_unique<LoaAdder>(std::stoi(id.substr(3)));
  throw std::invalid_argument("make_adder: unknown adder id: " + id);
}

}  // namespace axnn::axmul
