#include "axnn/axmul/registry.hpp"

#include <stdexcept>

#include "axnn/axmul/evoapprox_like.hpp"
#include "axnn/axmul/truncated.hpp"

namespace axnn::axmul {

const std::vector<MultiplierSpec>& paper_multipliers() {
  // MRE / savings from Table V (Table III values used where V omits them).
  static const std::vector<MultiplierSpec> specs = {
      {"exact", MultiplierKind::kExact, 0, 0.0, 0.0},
      {"trunc1", MultiplierKind::kTruncated, 1, 0.005, 2.0},
      {"trunc2", MultiplierKind::kTruncated, 2, 0.021, 8.0},
      {"trunc3", MultiplierKind::kTruncated, 3, 0.055, 16.0},
      {"trunc4", MultiplierKind::kTruncated, 4, 0.110, 28.0},
      {"trunc5", MultiplierKind::kTruncated, 5, 0.198, 38.0},
      {"evoa470", MultiplierKind::kEvoApproxLike, 470, 0.021, 1.0},
      {"evoa29", MultiplierKind::kEvoApproxLike, 29, 0.079, 9.0},
      {"evoa111", MultiplierKind::kEvoApproxLike, 111, 0.116, 12.0},
      {"evoa104", MultiplierKind::kEvoApproxLike, 104, 0.192, 18.0},
      {"evoa469", MultiplierKind::kEvoApproxLike, 469, 0.205, 18.0},
      {"evoa228", MultiplierKind::kEvoApproxLike, 228, 0.189, 19.0},
      {"evoa145", MultiplierKind::kEvoApproxLike, 145, 0.205, 21.0},
      {"evoa249", MultiplierKind::kEvoApproxLike, 249, 0.488, 61.0},
  };
  return specs;
}

std::optional<MultiplierSpec> find_spec(const std::string& id) {
  for (const auto& s : paper_multipliers())
    if (s.id == id) return s;
  // Extension multipliers outside the paper's tables: deeper truncation.
  if (id.rfind("trunc", 0) == 0) {
    const int t = std::stoi(id.substr(5));
    if (t >= 0 && t < kActBits + kWgtBits) {
      MultiplierSpec s;
      s.id = id;
      s.kind = MultiplierKind::kTruncated;
      s.param = t;
      s.paper_mre = 0.0;  // not published
      // Rough linear extrapolation of [21]'s savings trend (~10%/column).
      s.energy_savings_pct = 38.0 + 10.0 * (t - 5);
      return s;
    }
  }
  return std::nullopt;
}

std::unique_ptr<Multiplier> make_multiplier(const MultiplierSpec& spec) {
  switch (spec.kind) {
    case MultiplierKind::kExact:
      return std::make_unique<ExactMultiplier>();
    case MultiplierKind::kTruncated:
      return std::make_unique<TruncatedMultiplier>(spec.param);
    case MultiplierKind::kEvoApproxLike:
      return std::make_unique<EvoApproxLikeMultiplier>(spec.param, spec.paper_mre);
  }
  throw std::logic_error("make_multiplier: unknown kind");
}

std::unique_ptr<Multiplier> make_multiplier(const std::string& id) {
  const auto spec = find_spec(id);
  if (!spec) throw std::invalid_argument("make_multiplier: unknown multiplier id: " + id);
  return make_multiplier(*spec);
}

MultiplierLut make_lut(const std::string& id) {
  const auto m = make_multiplier(id);
  return MultiplierLut(*m);
}

}  // namespace axnn::axmul
