#include "axnn/axmul/evoapprox_like.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "axnn/tensor/rng.hpp"

namespace axnn::axmul {

namespace {
// Product range of an unsigned 8x4 multiplier: outputs are clamped into the
// representable 12-bit result bus.
constexpr int32_t kMaxProduct = (kActValues - 1) * (kWgtValues - 1);
}  // namespace

EvoApproxLikeMultiplier::EvoApproxLikeMultiplier(int variant_id, double target_mre)
    : id_(variant_id), target_mre_(target_mre) {
  if (target_mre < 0.0 || target_mre >= 1.0)
    throw std::invalid_argument("EvoApproxLikeMultiplier: target_mre out of [0,1)");
  if (target_mre == 0.0) {
    scale_ = 0.0;
    return;
  }
  // MRE is monotone non-decreasing in the relative scale s; bisect s over a
  // generous bracket. The clamp and rounding make MRE(s) slightly sub-linear,
  // so the upper bracket grows until it encloses the target.
  double lo = 0.0, hi = 2.0 * target_mre + 0.01;
  while (mre_at_scale(hi) < target_mre && hi < 16.0) hi *= 2.0;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (mre_at_scale(mid) < target_mre)
      lo = mid;
    else
      hi = mid;
  }
  scale_ = 0.5 * (lo + hi);
}

std::string EvoApproxLikeMultiplier::name() const { return "evoalike" + std::to_string(id_); }

double EvoApproxLikeMultiplier::unit_error(uint8_t a, uint8_t w) const {
  // Deterministic hash of (variant, a, w) -> u in [-1, 1). Pairing the
  // domain with its complement guarantees an exactly zero-mean surface:
  // u(a, w) for the "lower half" of hash space mirrors to -u.
  const uint64_t h = hash_mix(static_cast<uint64_t>(id_) * 0x10001ull + a,
                              0xA5A5A5A5ull + w);
  // 53-bit mantissa -> [0, 1), then shift to [-1, 1).
  const double u01 = static_cast<double>(h >> 11) * 0x1.0p-53;
  return 2.0 * u01 - 1.0;
}

int32_t EvoApproxLikeMultiplier::product_at_scale(uint8_t a, uint8_t w, double s) const {
  const int32_t y = exact(a, w);
  const double base = std::max(y, 1);
  const double e = std::round(s * base * unit_error(a, w));
  const double p = std::clamp(static_cast<double>(y) + e, 0.0, static_cast<double>(kMaxProduct));
  return static_cast<int32_t>(p);
}

double EvoApproxLikeMultiplier::mre_at_scale(double s) const {
  // Eq. 14 over the full operand domain.
  double acc = 0.0;
  for (int a = 0; a < kActValues; ++a) {
    for (int w = 0; w < kWgtValues; ++w) {
      const int32_t y = exact(static_cast<uint8_t>(a), static_cast<uint8_t>(w));
      const int32_t yt = product_at_scale(static_cast<uint8_t>(a), static_cast<uint8_t>(w), s);
      acc += std::abs(y - yt) / std::max<double>(y, 1.0);
    }
  }
  return acc / static_cast<double>(kLutSize);
}

int32_t EvoApproxLikeMultiplier::multiply(uint8_t a, uint8_t w) const {
  return product_at_scale(a, w, scale_);
}

}  // namespace axnn::axmul
