// axnn — approximate multiplier behavioural models.
//
// All hardware multipliers in this library are unsigned 8x4 units, matching
// the paper's configuration (8-bit activations x 4-bit weights, "adapted for
// 8x4 bit multiplication"). Signed operands are handled by the GEMM layer
// with a sign-magnitude wrapper: magnitudes are multiplied by the hardware
// model and the product sign is reapplied. This mirrors how AxDNN
// accelerators deploy unsigned EvoApprox cores.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

namespace axnn::axmul {

/// Operand domain of the behavioural models.
inline constexpr int kActBits = 8;   ///< unsigned activation magnitude bits
inline constexpr int kWgtBits = 4;   ///< unsigned weight magnitude bits
inline constexpr int kActValues = 1 << kActBits;  ///< 256
inline constexpr int kWgtValues = 1 << kWgtBits;  ///< 16
inline constexpr int kLutSize = kActValues * kWgtValues;  ///< 4096

/// Behavioural model of an unsigned AxB multiplier.
///
/// Implementations must be pure functions of (a, w): the same operands always
/// produce the same product. This is what makes LUT compilation valid.
class Multiplier {
public:
  virtual ~Multiplier() = default;

  /// Human-readable identifier, e.g. "trunc5" or "evoalike228".
  virtual std::string name() const = 0;

  /// Approximate product of a in [0, 256) and w in [0, 16).
  virtual int32_t multiply(uint8_t a, uint8_t w) const = 0;

  /// Exact product (for error computations).
  static int32_t exact(uint8_t a, uint8_t w) {
    return static_cast<int32_t>(a) * static_cast<int32_t>(w);
  }
};

/// The accurate multiplier — reference and "approximation off" mode.
class ExactMultiplier final : public Multiplier {
public:
  std::string name() const override { return "exact"; }
  int32_t multiply(uint8_t a, uint8_t w) const override { return exact(a, w); }
};

/// Fully-enumerated lookup table for a multiplier, the execution form used by
/// the approximate GEMM kernels (one load replaces the hardware model).
class MultiplierLut {
public:
  MultiplierLut();  ///< exact multiplier LUT
  explicit MultiplierLut(const Multiplier& m);

  const std::string& name() const { return name_; }

  /// Unsigned product lookup.
  int32_t operator()(uint8_t a, uint8_t w) const {
    return lut_[(static_cast<size_t>(a) << kWgtBits) | w];
  }

  /// Signed product via sign-magnitude wrapping. |a| must fit 8 bits and
  /// |w| must fit 4 bits.
  int32_t signed_mul(int32_t a, int32_t w) const {
    const uint32_t ua = static_cast<uint32_t>(a < 0 ? -a : a);
    const uint32_t uw = static_cast<uint32_t>(w < 0 ? -w : w);
    const int32_t p = lut_[(ua << kWgtBits) | uw];
    return ((a < 0) != (w < 0)) ? -p : p;
  }

  /// Raw table (row-major over a, then w) for kernels that index directly.
  const int32_t* data() const { return lut_.data(); }

private:
  std::array<int32_t, kLutSize> lut_;
  std::string name_;
};

}  // namespace axnn::axmul
