// axnn — error statistics of approximate multipliers (Eq. 14 and the error
// surfaces behind Figs. 2/3 of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "axnn/axmul/multiplier.hpp"

namespace axnn::axmul {

/// Full-domain error statistics of a multiplier vs the exact product.
struct ErrorStats {
  double mre = 0.0;        ///< Mean Relative Error, Eq. 14
  double mean_error = 0.0; ///< E[g~ - g] over the domain (signed; bias)
  double max_abs_error = 0.0;
  double rms_error = 0.0;
  double zero_error_fraction = 0.0;  ///< fraction of exact products
};

/// Exhaustive sweep over the 256x16 operand domain.
ErrorStats compute_error_stats(const Multiplier& m);
ErrorStats compute_error_stats(const MultiplierLut& lut);

/// One bin of the conditional error profile E[eps | y in bin].
struct ErrorBin {
  double y_center = 0.0;   ///< mid-point of the exact-product bin
  double mean_eps = 0.0;   ///< mean signed error of products in the bin
  double min_eps = 0.0;
  double max_eps = 0.0;
  int64_t count = 0;
};

/// Conditional error profile eps(y) = g~ - g binned over the exact product
/// range, computed over the full operand domain. This is the raw material
/// for the piecewise-linear error fit (paper Sec. III-B, Figs. 2-3).
std::vector<ErrorBin> error_profile(const MultiplierLut& lut, int bins = 32);

}  // namespace axnn::axmul
