// axnn — registry of the multipliers evaluated in the paper, with their
// published metadata (MRE target, estimated energy savings).
//
// Energy-savings percentages are the per-MAC estimates the paper carries
// from the EvoApprox8b library [20] and Kidambi et al. [21] (Tables III/V).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "axnn/axmul/multiplier.hpp"

namespace axnn::axmul {

enum class MultiplierKind { kExact, kTruncated, kEvoApproxLike };

/// Static description of one registry entry.
struct MultiplierSpec {
  std::string id;             ///< canonical name, e.g. "trunc5", "evoa228"
  MultiplierKind kind = MultiplierKind::kExact;
  int param = 0;              ///< truncated LSBs, or EvoApprox variant number
  double paper_mre = 0.0;     ///< MRE reported in the paper (fraction)
  double energy_savings_pct = 0.0;  ///< per-MAC energy savings vs exact [%]
};

/// All multipliers used in the paper's evaluation, in table order:
/// trunc1..trunc5, then EvoApprox-like 470, 29, 111, 104, 469, 228, 145, 249.
const std::vector<MultiplierSpec>& paper_multipliers();

/// Look up a spec by id ("exact", "truncN", "evoaNNN"). Truncated variants
/// beyond the paper's range (trunc6..trunc8) are synthesised on demand.
std::optional<MultiplierSpec> find_spec(const std::string& id);

/// Instantiate the behavioural model for a spec.
std::unique_ptr<Multiplier> make_multiplier(const MultiplierSpec& spec);

/// Convenience: instantiate by id; throws std::invalid_argument if unknown.
std::unique_ptr<Multiplier> make_multiplier(const std::string& id);

/// Compile a LUT by id (throws on unknown id).
MultiplierLut make_lut(const std::string& id);

}  // namespace axnn::axmul
