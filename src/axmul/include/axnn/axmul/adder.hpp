// axnn — approximate adder behavioural models.
//
// The paper's outlook names "the incorporation of more than one
// approximation technique into the CNN computation"; the EvoApprox8b
// library it draws multipliers from is a combined adder+multiplier library.
// This module provides behavioural models of the classic low-power adder
// approximations applied to the GEMM accumulation path:
//
//   * TruncatedAdder  — the k LSBs of both operands are dropped (their sum
//     contributes nothing): cheapest, biased toward zero.
//   * LoaAdder        — Lower-part-OR Adder (Mahdiani et al.): the k LSBs
//     are OR-ed instead of added (no carry chain in the lower part), the
//     upper part adds exactly. Error is bounded by 2^k and mildly biased.
//
// Models operate on 32-bit two's-complement accumulators; the approximation
// acts on the low k bits of the binary representation, exactly as the
// hardware would.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace axnn::axmul {

class Adder {
public:
  virtual ~Adder() = default;

  virtual std::string name() const = 0;

  /// Approximate sum of two accumulator values.
  virtual int32_t add(int32_t a, int32_t b) const = 0;

  static int32_t exact(int32_t a, int32_t b) { return a + b; }
};

/// Exact reference adder ("approximation off").
class ExactAdder final : public Adder {
public:
  std::string name() const override { return "exact_add"; }
  int32_t add(int32_t a, int32_t b) const override { return a + b; }
};

/// Drops the k least-significant bits of both operands before adding.
class TruncatedAdder final : public Adder {
public:
  explicit TruncatedAdder(int truncated_lsbs);
  std::string name() const override;
  int32_t add(int32_t a, int32_t b) const override;
  int truncated_lsbs() const { return k_; }

private:
  int32_t mask_;
  int k_;
};

/// Lower-part-OR Adder: low k bits are OR-ed (no carry), upper bits add
/// exactly with no carry-in from the lower part.
class LoaAdder final : public Adder {
public:
  explicit LoaAdder(int lower_bits);
  std::string name() const override;
  int32_t add(int32_t a, int32_t b) const override;
  int lower_bits() const { return k_; }

private:
  int32_t low_mask_;
  int k_;
};

/// Adder statistics over random accumulation workloads (adders cannot be
/// swept exhaustively like 8x4 multipliers).
struct AdderStats {
  double mean_error = 0.0;     ///< signed bias per addition
  double rms_error = 0.0;
  double max_abs_error = 0.0;
  double mre = 0.0;            ///< |err| / max(|exact|, 1), averaged
};

/// Monte-Carlo sweep with operands drawn uniformly from [-range, range].
AdderStats compute_adder_stats(const Adder& adder, int32_t operand_range = 1 << 12,
                               int64_t samples = 200000, uint64_t seed = 0xADD5EED);

/// Factory by id: "exact_add", "truncaddK", "loaK" (K = bits).
std::unique_ptr<Adder> make_adder(const std::string& id);

}  // namespace axnn::axmul
