// axnn — truncated array multipliers (Kidambi et al., TCAS-II 1996).
//
// A truncated multiplier drops the `t` least-significant columns of the
// partial-product array and applies no correction term, saving the adder
// cells of those columns. The resulting error is *biased*: the true product
// is always under-estimated, and the expected error grows with the number of
// active partial products — which is exactly the structure the paper's
// gradient-estimation method (Sec. III-B, Fig. 2) exploits.
#pragma once

#include "axnn/axmul/multiplier.hpp"

namespace axnn::axmul {

class TruncatedMultiplier final : public Multiplier {
public:
  /// `truncated_lsbs` = number of least-significant product columns dropped.
  /// Valid range [0, kActBits + kWgtBits); 0 is the exact multiplier.
  explicit TruncatedMultiplier(int truncated_lsbs);

  std::string name() const override;
  int32_t multiply(uint8_t a, uint8_t w) const override;

  int truncated_lsbs() const { return t_; }

private:
  int t_;
};

}  // namespace axnn::axmul
