// axnn — EvoApprox-like behavioural multipliers.
//
// The paper uses multipliers from the EvoApprox8b library (mul8u_470, _29,
// _111, _104, _469, _228, _145, _249) adapted to 8x4-bit operands. The exact
// evolved netlists are not available offline, so this module synthesises
// behavioural equivalents that preserve the two properties the paper's
// results depend on (see DESIGN.md §2):
//
//   1. The Mean Relative Error over the full operand domain (Eq. 14) matches
//      the published value — calibrated by bisection over the 256x16 table.
//   2. The error is (approximately) *unbiased* as a function of the exact
//      product y: E[eps | y] ≈ 0. This is the property that makes the
//      paper's gradient-estimation fit a constant for EvoApprox multipliers
//      (Fig. 3), collapsing GE to a plain STE for this family.
//
// Construction: g~(a, w) = clamp(a*w + e(a, w)) with
//   e(a, w) = round(s * max(a*w, 1) * u(a, w)),
// where u(a, w) in [-1, 1) is a deterministic hash of (a, w, id) with zero
// mean, and s is the calibrated relative-error scale.
#pragma once

#include <array>
#include <cstdint>

#include "axnn/axmul/multiplier.hpp"

namespace axnn::axmul {

class EvoApproxLikeMultiplier final : public Multiplier {
public:
  /// `variant_id` selects the (deterministic) error surface; `target_mre`
  /// is the Eq.-14 MRE to calibrate to, in [0, 1).
  EvoApproxLikeMultiplier(int variant_id, double target_mre);

  std::string name() const override;
  int32_t multiply(uint8_t a, uint8_t w) const override;

  int variant_id() const { return id_; }
  double target_mre() const { return target_mre_; }
  /// Relative-error scale found by calibration.
  double calibrated_scale() const { return scale_; }

private:
  /// Zero-mean deterministic relative perturbation in [-1, 1).
  double unit_error(uint8_t a, uint8_t w) const;
  /// Eq.-14 MRE of the surface at relative scale s.
  double mre_at_scale(double s) const;
  int32_t product_at_scale(uint8_t a, uint8_t w, double s) const;

  int id_;
  double target_mre_;
  double scale_ = 0.0;
};

}  // namespace axnn::axmul
