#include "axnn/ge/monte_carlo.hpp"

#include <algorithm>
#include <cmath>

#include "axnn/tensor/rng.hpp"

namespace axnn::ge {

std::vector<std::pair<double, double>> sample_accumulated_error(const approx::SignedMulTable& tab,
                                                                const McConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<std::pair<double, double>> samples;
  samples.reserve(static_cast<size_t>(cfg.num_sims) * cfg.outputs_per_sim);

  std::vector<int8_t> w(static_cast<size_t>(cfg.dot_length));
  std::vector<int8_t> x(static_cast<size_t>(cfg.dot_length));

  for (int s = 0; s < cfg.num_sims; ++s) {
    // One simulated convolution = one weight vector reused across outputs,
    // like a conv filter sliding over a feature map.
    for (auto& qw : w) {
      const int v = static_cast<int>(std::lround(rng.normal(0.0, cfg.wgt_sigma)));
      qw = static_cast<int8_t>(std::clamp(v, -7, 7));
    }
    for (int o = 0; o < cfg.outputs_per_sim; ++o) {
      for (auto& qa : x) {
        int v = static_cast<int>(std::lround(rng.normal(0.0, cfg.act_sigma)));
        if (!cfg.signed_activations) v = std::abs(v);
        qa = static_cast<int8_t>(std::clamp(v, cfg.signed_activations ? -127 : 0, 127));
      }
      int64_t y = 0, yt = 0;
      for (int i = 0; i < cfg.dot_length; ++i) {
        y += static_cast<int64_t>(w[static_cast<size_t>(i)]) * x[static_cast<size_t>(i)];
        yt += tab(x[static_cast<size_t>(i)], w[static_cast<size_t>(i)]);
      }
      samples.emplace_back(static_cast<double>(y), static_cast<double>(yt - y));
    }
  }
  return samples;
}

ErrorFit fit_multiplier_error(const approx::SignedMulTable& tab, const McConfig& cfg) {
  return fit_piecewise_linear(sample_accumulated_error(tab, cfg));
}

}  // namespace axnn::ge
