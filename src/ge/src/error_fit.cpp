#include "axnn/ge/error_fit.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace axnn::ge {

std::string ErrorFit::to_string() const {
  std::ostringstream os;
  os << "f(y) = min(" << a << ", max(" << k << "*y + " << c << ", " << b << "))";
  return os.str();
}

ErrorFit fit_piecewise_linear(const std::vector<std::pair<double, double>>& samples,
                              double slope_significance) {
  if (samples.size() < 2)
    throw std::invalid_argument("fit_piecewise_linear: need at least 2 samples");

  const double n = static_cast<double>(samples.size());
  double sy = 0.0, se = 0.0, syy = 0.0, sye = 0.0;
  for (const auto& [y, e] : samples) {
    sy += y;
    se += e;
    syy += y * y;
    sye += y * e;
  }
  const double denom = n * syy - sy * sy;

  ErrorFit fit;
  if (std::abs(denom) < 1e-12) {
    // Degenerate y spread: constant fit.
    fit.k = 0.0;
    fit.c = se / n;
  } else {
    fit.k = (n * sye - sy * se) / denom;
    fit.c = (se - fit.k * sy) / n;
  }

  // Residual spread and y-range for the significance test.
  double ss_res = 0.0;
  double y_lo = samples.front().first, y_hi = y_lo;
  for (const auto& [y, e] : samples) {
    const double r = e - (fit.k * y + fit.c);
    ss_res += r * r;
    y_lo = std::min(y_lo, y);
    y_hi = std::max(y_hi, y);
  }
  const double resid_sd = std::sqrt(ss_res / n);
  const double slope_effect = std::abs(fit.k) * (y_hi - y_lo);
  if (slope_effect < slope_significance * std::max(resid_sd, 1e-12)) {
    // Unbiased (EvoApprox-like) error: the line explains nothing beyond the
    // constant -> GE collapses to STE.
    fit.k = 0.0;
    fit.c = se / n;
  }

  // Clamp levels from the 2.5 / 97.5 percentiles of the observed error.
  std::vector<double> eps;
  eps.reserve(samples.size());
  for (const auto& [y, e] : samples) eps.push_back(e);
  std::sort(eps.begin(), eps.end());
  const auto pct = [&](double q) {
    const double idx = q * (static_cast<double>(eps.size()) - 1.0);
    const size_t i0 = static_cast<size_t>(idx);
    const size_t i1 = std::min(i0 + 1, eps.size() - 1);
    const double frac = idx - static_cast<double>(i0);
    return eps[i0] * (1.0 - frac) + eps[i1] * frac;
  };
  fit.b = pct(0.025);
  fit.a = pct(0.975);
  if (fit.a < fit.b) std::swap(fit.a, fit.b);
  // Ensure the constant fit's level stays inside the clamps.
  if (fit.k == 0.0) fit.c = std::clamp(fit.c, fit.b, fit.a);
  return fit;
}

}  // namespace axnn::ge
