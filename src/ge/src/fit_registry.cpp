#include "axnn/ge/fit_registry.hpp"

#include <stdexcept>

namespace axnn::ge {

const ErrorFit& FitRegistry::fit_for_shape(const approx::SignedMulTable& tab,
                                           const std::string& mul_id, int64_t dot_length,
                                           const McConfig& base) {
  if (dot_length <= 0)
    throw std::invalid_argument("FitRegistry::fit_for_shape: dot_length must be positive");
  const auto key = std::make_pair(mul_id, dot_length);
  const auto it = by_shape_.find(key);
  if (it != by_shape_.end()) return it->second;
  McConfig mc = base;
  mc.dot_length = static_cast<int>(dot_length);
  return by_shape_.emplace(key, fit_multiplier_error(tab, mc)).first->second;
}

void FitRegistry::register_path(const std::string& path, const ErrorFit* fit) {
  if (fit == nullptr)
    throw std::invalid_argument("FitRegistry::register_path: null fit for " + path);
  by_path_[path] = fit;
}

const ErrorFit* FitRegistry::find(const std::string& path) const {
  const auto it = by_path_.find(path);
  return it == by_path_.end() ? nullptr : it->second;
}

}  // namespace axnn::ge
