// axnn — per-layer gradient-estimation fit registry.
//
// The paper fits the accumulated-error function f(y) per convolution
// (Sec. III-B): the Monte-Carlo simulation draws dot products of the
// layer's actual accumulation length, so two layers with different GEMM
// shapes get different fits. This registry owns those fits and exposes two
// views:
//
//   * by shape  — (multiplier id, dot length) -> ErrorFit. Layers that share
//     a multiplier and an accumulation length share one fit, so a ResNet's
//     many identical 3x3 convolutions cost a single Monte-Carlo run.
//   * by path   — layer path -> ErrorFit*. Built by NetPlan::resolve so the
//     fit each layer trains with can be inspected and reported.
//
// Fits are stored in node-stable maps: pointers handed out stay valid for
// the registry's lifetime, including after it is moved.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "axnn/ge/monte_carlo.hpp"

namespace axnn::ge {

class FitRegistry {
public:
  /// Fit (or reuse the memoized fit) for a multiplier at the given
  /// accumulation length. `base` supplies every Monte-Carlo knob except
  /// dot_length, which is overridden by the layer's own shape.
  const ErrorFit& fit_for_shape(const approx::SignedMulTable& tab, const std::string& mul_id,
                                int64_t dot_length, const McConfig& base = {});

  /// Associate a layer path with a fit owned by this registry.
  void register_path(const std::string& path, const ErrorFit* fit);

  /// Fit registered for a layer path; nullptr when the path has none.
  const ErrorFit* find(const std::string& path) const;

  /// Distinct Monte-Carlo fits computed (one per (multiplier, shape) pair).
  size_t num_fits() const { return by_shape_.size(); }
  /// Layer paths with a registered fit.
  size_t num_paths() const { return by_path_.size(); }

  const std::map<std::string, const ErrorFit*>& paths() const { return by_path_; }

private:
  std::map<std::pair<std::string, int64_t>, ErrorFit> by_shape_;
  std::map<std::string, const ErrorFit*> by_path_;
};

}  // namespace axnn::ge
