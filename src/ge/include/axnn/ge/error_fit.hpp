// axnn — piecewise-linear model of the accumulated approximation error
// (paper Sec. III-B, Eq. 11-13).
//
// The accumulated error of an approximate GEMM output, eps = y~ - y, is
// modelled as a clamped line in the exact accumulator value y:
//
//     f(y) = min(a, max(k*y + c, b)),   a >= b
//
// Its derivative is k inside the linear region and 0 in the clamped regions;
// the backward pass scales the weight gradient by (1 + K) elementwise
// (Eq. 12). A fit with k == 0 makes GE identical to the plain STE — the
// paper observes exactly this for the (unbiased) EvoApprox multipliers.
//
// Units: y and eps are in integer accumulator units (products of quantized
// operands). The derivative k is dimensionless, so the same K applies
// unchanged to gradients in real units.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace axnn::ge {

struct ErrorFit {
  double a = 0.0;  ///< upper clamp of f
  double b = 0.0;  ///< lower clamp of f
  double k = 0.0;  ///< slope of the linear region
  double c = 0.0;  ///< intercept of the linear region

  /// f(y) = min(a, max(k*y + c, b)).
  double eval(double y) const {
    const double lin = k * y + c;
    return lin > a ? a : (lin < b ? b : lin);
  }

  /// df/dy: k in the linear region, 0 where clamped (Eq. 13).
  double derivative(double y) const {
    const double lin = k * y + c;
    return (lin < a && lin > b) ? k : 0.0;
  }

  /// True when the fitted error carries no usable slope; GE then degenerates
  /// to the straight-through estimator (paper Sec. III-C).
  bool is_constant() const { return k == 0.0; }

  std::string to_string() const;
};

/// Ordinary least squares + quantile clamps over (y, eps) samples.
/// `slope_significance` collapses the fit to a constant when the slope's
/// total effect across the sampled y-range is below that fraction of the
/// residual spread — this is what detects unbiased (EvoApprox-like) errors.
ErrorFit fit_piecewise_linear(const std::vector<std::pair<double, double>>& samples,
                              double slope_significance = 0.25);

}  // namespace axnn::ge
