// axnn — Monte-Carlo estimation of the accumulated approximation error
// (paper Sec. IV-B: "f(y_q) was estimated using 50 MonteCarlo simulations of
// a single convolution with values drawn from normal distributions, within
// the corresponding quantization ranges").
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "axnn/approx/signed_lut.hpp"
#include "axnn/ge/error_fit.hpp"

namespace axnn::ge {

struct McConfig {
  int num_sims = 50;        ///< independent simulated convolutions
  int outputs_per_sim = 64; ///< dot products sampled per simulation
  int dot_length = 72;      ///< accumulation length (C*kH*kW of a typical conv)
  /// Operand distributions: weights ~ N(0, wgt_sigma) clamped to [-7, 7];
  /// activations ~ |N(0, act_sigma)| clamped to [0, 127] (post-ReLU shape).
  double wgt_sigma = 2.5;
  double act_sigma = 42.0;
  bool signed_activations = false;  ///< draw signed activations instead
  uint64_t seed = 0xC0FFEE;
};

/// Sample (y_exact, eps = y_approx - y_exact) pairs in integer accumulator
/// units by simulating convolutions through the given multiplier table.
std::vector<std::pair<double, double>> sample_accumulated_error(const approx::SignedMulTable& tab,
                                                                const McConfig& cfg = {});

/// End-to-end: sample and fit the piecewise-linear error model.
ErrorFit fit_multiplier_error(const approx::SignedMulTable& tab, const McConfig& cfg = {});

}  // namespace axnn::ge
