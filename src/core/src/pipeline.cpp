#include "axnn/core/pipeline.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "axnn/axmul/registry.hpp"
#include "axnn/models/mobilenetv2.hpp"
#include "axnn/models/resnet.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/nn/linear.hpp"
#include "axnn/nn/serialize.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/train/evaluate.hpp"
#include "axnn/train/trainer.hpp"

namespace axnn::core {

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kResNet20: return "resnet20";
    case ModelKind::kResNet32: return "resnet32";
    case ModelKind::kMobileNetV2: return "mobilenetv2";
  }
  return "?";
}

void copy_quant_state(nn::Layer& src, nn::Layer& dst) {
  if (auto* cs = dynamic_cast<nn::Conv2d*>(&src)) {
    auto* cd = dynamic_cast<nn::Conv2d*>(&dst);
    if (cd == nullptr) throw std::invalid_argument("copy_quant_state: structure mismatch");
    if (cs->calibrated()) cd->set_qparams(cs->weight_qparams(), cs->act_qparams());
  } else if (auto* ls = dynamic_cast<nn::Linear*>(&src)) {
    auto* ld = dynamic_cast<nn::Linear*>(&dst);
    if (ld == nullptr) throw std::invalid_argument("copy_quant_state: structure mismatch");
    if (ls->calibrated()) ld->set_qparams(ls->weight_qparams(), ls->act_qparams());
  }
  const auto cs = src.children();
  const auto cd = dst.children();
  if (cs.size() != cd.size()) throw std::invalid_argument("copy_quant_state: child count");
  for (size_t i = 0; i < cs.size(); ++i) copy_quant_state(*cs[i], *cd[i]);
}

namespace {

/// Load cached parameters into `target`, treating every failure mode (bad
/// magic, unsupported version, CRC mismatch, truncation, count/shape
/// mismatch) as a cache miss: log a warning and return false so the caller
/// retrains instead of crashing on a stale or corrupt cache file. `target`
/// may be partially overwritten on failure — only pass scratch models.
bool try_load_cache(nn::Layer& target, const std::string& path, const char* what) {
  if (!nn::is_param_file(path)) return false;
  try {
    nn::load_params(target, path);
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[workbench] warning: unusable %s cache, retraining (%s)\n", what,
                 e.what());
    return false;
  }
}

}  // namespace

Workbench::Workbench(WorkbenchConfig cfg) : cfg_(std::move(cfg)) {
  data::SyntheticConfig dc;
  dc.image_size = cfg_.profile.image_size;
  dc.train_size = cfg_.profile.train_size;
  dc.test_size = cfg_.profile.test_size;
  dc.seed = cfg_.data_seed;
  data_ = data::make_synthetic_cifar(dc);
  prepare_fp_model();
}

std::unique_ptr<nn::Sequential> Workbench::build_model() const {
  switch (cfg_.model) {
    case ModelKind::kResNet20:
      return models::make_resnet20(cfg_.profile.resnet_width, cfg_.model_seed);
    case ModelKind::kResNet32:
      return models::make_resnet32(cfg_.profile.resnet_width, cfg_.model_seed);
    case ModelKind::kMobileNetV2:
      return models::make_mobilenet_v2(
          {cfg_.profile.mobilenet_width, 10, /*small_preset=*/!cfg_.profile.full,
           cfg_.model_seed});
  }
  throw std::logic_error("Workbench: unknown model kind");
}

std::string Workbench::fp_cache_path() const {
  std::ostringstream os;
  os << cfg_.profile.cache_dir << "/fp_" << to_string(cfg_.model) << "_is"
     << cfg_.profile.image_size << "_n" << cfg_.profile.train_size << "_rw"
     << cfg_.profile.resnet_width << "_mw" << cfg_.profile.mobilenet_width << "_e"
     << cfg_.profile.fp_epochs << "_ds" << cfg_.data_seed << "_ms" << cfg_.model_seed
     << ".axnp";
  return os.str();
}

std::string Workbench::stage1_cache_path(bool use_kd, float t1) const {
  std::ostringstream os;
  os << cfg_.profile.cache_dir << "/s1_" << to_string(cfg_.model) << "_is"
     << cfg_.profile.image_size << "_n" << cfg_.profile.train_size << "_rw"
     << cfg_.profile.resnet_width << "_mw" << cfg_.profile.mobilenet_width << "_e"
     << cfg_.profile.fp_epochs << "_qe" << cfg_.profile.quant_epochs << "_kd" << use_kd
     << "_t" << t1 << "_ds" << cfg_.data_seed << "_ms" << cfg_.model_seed << ".axnp";
  return os.str();
}

void Workbench::prepare_fp_model() {
  model_ = build_model();
  const std::string path = fp_cache_path();
  bool loaded = false;
  if (cfg_.use_cache) {
    // Load into a scratch model first: a corrupt cache must not leave the
    // working model half-overwritten before the retrain.
    auto scratch = build_model();
    if (try_load_cache(*scratch, path, "FP")) {
      model_ = std::move(scratch);
      loaded = true;
      if (cfg_.verbose) std::printf("[workbench] loaded FP model from %s\n", path.c_str());
    }
  }
  if (!loaded) {
    train::TrainConfig tc;
    tc.epochs = cfg_.profile.fp_epochs;
    tc.decay_every = std::max(1, cfg_.profile.fp_epochs * 2 / 3);
    tc.verbose = cfg_.verbose;
    tc.eval_every_epoch = cfg_.verbose;
    (void)train::train_fp(*model_, data_.train, data_.test, tc);
    if (cfg_.use_cache) {
      std::filesystem::create_directories(cfg_.profile.cache_dir);
      nn::save_params(*model_, path);
    }
  }
  fp_acc_ = train::evaluate_accuracy(*model_, data_.test, nn::ExecContext::fp());

  // The paper folds all BN layers in the ResNets before quantization;
  // MobileNetV2 keeps them to avoid a large accuracy drop.
  if (cfg_.model != ModelKind::kMobileNetV2) {
    model_->fold_batchnorms();
    folded_ = true;
  }
}

models::ModelInfo Workbench::info() {
  auto inf = models::inspect_model(*model_, 3, cfg_.profile.image_size, cfg_.profile.image_size);
  inf.name = to_string(cfg_.model);
  return inf;
}

std::unique_ptr<nn::Sequential> Workbench::clone() {
  auto copy = build_model();
  if (folded_) copy->fold_batchnorms();
  nn::copy_state(*model_, *copy);
  copy_quant_state(*model_, *copy);
  return copy;
}

void Workbench::calibrate_once() {
  if (calibrated_) return;
  train::calibrate_model(*model_, data_.train, cfg_.calib_samples,
                         std::min<int64_t>(cfg_.calib_samples, 128), cfg_.calibration);
  calibrated_ = true;
}

train::FineTuneConfig Workbench::default_ft_config() const {
  train::FineTuneConfig fc;
  fc.epochs = cfg_.profile.ft_epochs;
  fc.batch_size = cfg_.profile.ft_batch;
  fc.decay_every = cfg_.profile.decay_every;
  // Paper: lr in {1e-4, 1e-5}. The fast profile compresses 30 epochs into a
  // handful, so it uses a proportionally larger step.
  fc.lr = cfg_.profile.full ? 1e-4f : 2e-4f;
  fc.verbose = cfg_.verbose;
  return fc;
}

train::FineTuneResult Workbench::run_quantization_stage(bool use_kd, float t1) {
  calibrate_once();
  quant_acc_before_ft_ =
      train::evaluate_accuracy(*model_, data_.test, nn::ExecContext::quant_exact());

  train::FineTuneConfig fc = default_ft_config();
  fc.epochs = cfg_.profile.quant_epochs;
  fc.lr = 5e-4f;  // the quantization stage recovers from a larger gap
  fc.temperature = t1;

  const std::string path = stage1_cache_path(use_kd, t1);
  train::FineTuneResult result;
  bool loaded = false;
  if (cfg_.use_cache) {
    // Load into a scratch clone (same structure + quant state) so a corrupt
    // cache cannot poison the calibrated working model before the retrain.
    auto scratch = clone();
    if (try_load_cache(*scratch, path, "stage-1")) {
      nn::copy_state(*scratch, *model_);
      loaded = true;
      result.initial_acc = quant_acc_before_ft_;
      result.final_acc =
          train::evaluate_accuracy(*model_, data_.test, nn::ExecContext::quant_exact());
      result.best_acc = result.final_acc;
      if (cfg_.verbose) std::printf("[workbench] loaded stage-1 model from %s\n", path.c_str());
    }
  }
  if (!loaded) {
    std::unique_ptr<nn::Sequential> teacher_fp;
    if (use_kd) teacher_fp = clone();
    result = train::quantization_stage(*model_, teacher_fp.get(), data_.train, data_.test, fc);
    if (cfg_.use_cache) {
      std::filesystem::create_directories(cfg_.profile.cache_dir);
      nn::save_params(*model_, path);
    }
  }

  stage1_ = clone();
  teacher_q_ = clone();
  return result;
}

ge::ErrorFit Workbench::fit_error(const std::string& multiplier_id) const {
  const approx::SignedMulTable tab(axmul::make_lut(multiplier_id));
  ge::McConfig mc;  // 50 simulations, paper defaults
  return ge::fit_multiplier_error(tab, mc);
}

double Workbench::approx_initial_accuracy(const std::string& multiplier_id) {
  if (!stage1_) throw std::logic_error("Workbench: run_quantization_stage first");
  const approx::SignedMulTable tab(axmul::make_lut(multiplier_id));
  return train::evaluate_accuracy(*stage1_, data_.test, nn::ExecContext::quant_approx(tab));
}

double Workbench::approx_initial_accuracy(const nn::NetPlan& plan) {
  if (!stage1_) throw std::logic_error("Workbench: run_quantization_stage first");
  const nn::PlanResolution res = plan.resolve(*stage1_);
  res.require_approximable();
  res.require_bit_widths();
  const nn::ExecContext ctx{.mode = nn::ExecMode::kQuantApprox, .plan = &res};
  return train::evaluate_accuracy(*stage1_, data_.test, ctx);
}

ApproxStageSetup ApproxStageSetup::uniform(std::string multiplier_id, train::Method method,
                                           float t2) {
  ApproxStageSetup s;
  s.plan = nn::NetPlan(nn::LayerPlan{.multiplier = std::move(multiplier_id)});
  s.method = method;
  s.t2 = t2;
  s.ge_fits = GeFitScope::kUniform;
  return s;
}

ApproxStageSetup ApproxStageSetup::with_plan(nn::NetPlan plan, train::Method method, float t2) {
  ApproxStageSetup s;
  s.plan = std::move(plan);
  s.method = method;
  s.t2 = t2;
  return s;
}

Workbench::ApproxRun Workbench::run_approximation_stage(const ApproxStageSetup& setup) {
  if (!stage1_) throw std::logic_error("Workbench: run_quantization_stage first");

  // Each experiment starts from the same stage-1 weights.
  nn::copy_state(*stage1_, *model_);

  const bool uniform_only = setup.plan.overrides().empty();
  ApproxRun run;
  run.multiplier = uniform_only ? setup.plan.uniform().multiplier : setup.plan.to_string();
  run.method = setup.method;
  run.t2 = setup.t2;

  const bool ge = train::uses_ge(setup.method);
  const bool per_layer_fits = ge && setup.ge_fits == ApproxStageSetup::GeFitScope::kPerLayer;

  nn::ResolveOptions ro;
  ro.fit_ge = per_layer_fits;  // per-layer fits from each layer's GEMM shape
  const nn::PlanResolution res = setup.plan.resolve(*model_, ro);
  res.require_approximable();
  res.require_bit_widths();
  run.plan_fits = res.fits().num_fits();

  // Uniform fit scope: one network-wide Monte-Carlo fit for the uniform
  // multiplier, carried by the context (plan entries without their own fit
  // fall back to it) — the paper's flow, bit-identical to the legacy
  // uniform path.
  if (ge && !per_layer_fits) {
    if (setup.plan.uniform().multiplier.empty())
      throw std::invalid_argument(
          "Workbench: GeFitScope::kUniform needs a uniform plan multiplier to fit");
    run.fit = fit_error(setup.plan.uniform().multiplier);
  }

  train::FineTuneConfig fc = setup.finetune ? *setup.finetune : default_ft_config();
  fc.temperature = setup.t2;

  train::ApproxStageSetup ts;
  ts.method = setup.method;
  ts.fit = (ge && !per_layer_fits) ? &run.fit : nullptr;
  ts.teacher_q = teacher_q_.get();
  ts.plan = &res;

  run.result = train::approximation_stage(*model_, ts, data_.train, data_.test, fc);
  run.initial_acc = run.result.initial_acc;

  if (obs::enabled()) {
    obs::Json ev = obs::Json::object();
    ev["type"] = "approx_run";
    ev["multiplier"] = run.multiplier;
    ev["method"] = train::to_string(run.method);
    ev["t2"] = run.t2;
    ev["initial_acc"] = run.initial_acc;
    ev["final_acc"] = run.result.final_acc;
    ev["plan_fits"] = static_cast<int64_t>(run.plan_fits);
    obs::collector()->event(std::move(ev));
  }
  return run;
}

}  // namespace axnn::core
