#include "axnn/core/plan_io.hpp"

#include <stdexcept>

namespace axnn::core::plan_io {

namespace {

std::string trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  const size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool valid_name(const std::string& n) {
  if (n.empty() || n.size() > 64) return false;
  for (char c : n) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

[[noreturn]] void fail(const char* who, int line, const std::string& what) {
  throw std::invalid_argument(std::string(who) + ": line " + std::to_string(line) + ": " + what);
}

/// One significant (non-blank, non-comment) line with its 1-based number.
struct Line {
  int number = 0;
  std::string text;
};

std::vector<Line> significant_lines(const std::string& text) {
  std::vector<Line> out;
  size_t pos = 0;
  int lineno = 0;
  while (pos <= text.size()) {
    const size_t nl = text.find('\n', pos);
    const std::string raw =
        text.substr(pos, nl == std::string::npos ? std::string::npos : nl - pos);
    pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++lineno;
    std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    out.push_back({lineno, std::move(line)});
  }
  return out;
}

bool is_ladder_line(const std::string& line) {
  return line.rfind("point", 0) == 0 && line.size() > 5 && (line[5] == ' ' || line[5] == '\t');
}

NamedPlan parse_point_line(const Line& ln, const std::vector<NamedPlan>& so_far,
                           const char* who) {
  if (!is_ladder_line(ln.text)) fail(who, ln.number, "expected 'point <name> = <plan>'");
  const size_t eq = ln.text.find('=', 6);
  if (eq == std::string::npos) fail(who, ln.number, "missing '=' after point name");
  const std::string name = trim(ln.text.substr(6, eq - 6));
  const std::string plan = trim(ln.text.substr(eq + 1));
  if (!valid_name(name))
    fail(who, ln.number, "invalid point name '" + name + "' (want [A-Za-z0-9_.-]{1,64})");
  for (const auto& p : so_far)
    if (p.name == name) fail(who, ln.number, "duplicate point name '" + name + "'");
  if (plan.empty()) fail(who, ln.number, "empty plan for point '" + name + "'");
  try {
    (void)nn::NetPlan::parse(plan);
  } catch (const std::exception& e) {
    fail(who, ln.number, "point '" + name + "': " + e.what());
  }
  if (static_cast<int>(so_far.size()) == kMaxLadderPoints)
    fail(who, ln.number, "more than " + std::to_string(kMaxLadderPoints) + " points");
  return NamedPlan{name, plan};
}

/// Join significant plan lines with "; " after validating each one
/// individually (every line is itself a valid entry list, so a syntax error
/// blames the line that introduced it, not the whole file).
std::string join_plan_lines(const std::vector<Line>& lines, const char* who) {
  std::string joined;
  for (const auto& ln : lines) {
    if (is_ladder_line(ln.text))
      fail(who, ln.number, "'point' line in a plan file (mixed grammars)");
    try {
      (void)nn::NetPlan::parse(ln.text);
    } catch (const std::exception& e) {
      fail(who, ln.number, e.what());
    }
    if (!joined.empty()) joined += "; ";
    joined += ln.text;
  }
  // Entries accumulated across lines can interact (e.g. a later `default=`
  // replacing an earlier one) — validate the joined form too.
  try {
    (void)nn::NetPlan::parse(joined);
  } catch (const std::exception& e) {
    fail(who, lines.back().number, e.what());
  }
  return joined;
}

}  // namespace

PlanDocument parse(const std::string& text) {
  static constexpr const char* kWho = "plan_io::parse";
  const auto lines = significant_lines(text);
  if (lines.empty()) throw std::invalid_argument("plan_io::parse: empty plan-spec document");
  PlanDocument doc;
  doc.ladder = is_ladder_line(lines.front().text);
  if (doc.ladder) {
    for (const auto& ln : lines) doc.entries.push_back(parse_point_line(ln, doc.entries, kWho));
  } else {
    doc.entries.push_back(NamedPlan{"", join_plan_lines(lines, kWho)});
  }
  return doc;
}

nn::NetPlan parse_plan(const std::string& text) {
  static constexpr const char* kWho = "plan_io::parse_plan";
  const auto lines = significant_lines(text);
  if (lines.empty()) throw std::invalid_argument("plan_io::parse_plan: empty plan");
  return nn::NetPlan::parse(join_plan_lines(lines, kWho));
}

std::vector<NamedPlan> parse_ladder(const std::string& text, const char* who) {
  std::vector<NamedPlan> out;
  for (const auto& ln : significant_lines(text)) out.push_back(parse_point_line(ln, out, who));
  if (out.empty())
    throw std::invalid_argument(std::string(who) + ": no operating points defined");
  return out;
}

std::string to_text(const std::vector<NamedPlan>& points) {
  std::string out;
  for (const auto& p : points) {
    out += "point ";
    out += p.name;
    out += " = ";
    out += p.plan_text;
    out += '\n';
  }
  return out;
}

std::string to_text(const PlanDocument& doc) {
  if (doc.ladder) return to_text(doc.entries);
  std::string out;
  for (const auto& e : doc.entries) {
    out += e.plan_text;
    out += '\n';
  }
  return out;
}

}  // namespace axnn::core::plan_io
