#include "axnn/core/profile.hpp"

#include <cstdlib>

#include "axnn/tensor/threadpool.hpp"

namespace axnn::core {

BenchProfile BenchProfile::from_env() {
  BenchProfile p;
  const char* full = std::getenv("AXNN_REPRO_FULL");
  p.full = (full != nullptr && full[0] != '\0' && full[0] != '0');
  if (p.full) {
    // Paper-scale schedules (CIFAR-sized inputs, 30 fine-tuning epochs with
    // decay every 15, 60-epoch ablation).
    p.image_size = 32;
    p.train_size = 8192;
    p.test_size = 2048;
    p.resnet_width = 1.0f;
    p.mobilenet_width = 1.0f;
    p.fp_epochs = 40;
    p.ft_epochs = 30;
    p.ft_batch = 128;
    p.quant_epochs = 10;
    p.ablation_epochs = 60;
    p.decay_every = 15;
  }
  if (const char* cache = std::getenv("AXNN_CACHE_DIR"); cache != nullptr && cache[0] != '\0')
    p.cache_dir = cache;
  if (const char* threads = std::getenv("AXNN_THREADS"); threads != nullptr)
    p.threads = std::atoi(threads);
  return p;
}

void BenchProfile::apply() const {
  if (threads > 0) ThreadPool::set_global_threads(threads);
}

}  // namespace axnn::core
