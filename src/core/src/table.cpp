#include "axnn/core/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace axnn::core {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      os << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) os << std::string(width[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string Table::to_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  return num(100.0 * fraction, precision);
}

}  // namespace axnn::core
