#include "axnn/core/report_adapters.hpp"

namespace axnn::core {

using obs::Json;

Json to_json(const train::EpochStat& st) {
  Json j = Json::object();
  j["epoch"] = st.epoch;
  j["train_loss"] = st.train_loss;
  j["test_acc"] = st.test_acc;
  j["seconds"] = st.seconds;
  return j;
}

namespace {
Json history_to_json(const std::vector<train::EpochStat>& history) {
  Json arr = Json::array();
  for (const auto& st : history) arr.push_back(to_json(st));
  return arr;
}
}  // namespace

Json to_json(const train::TrainResult& r) {
  Json j = Json::object();
  j["final_acc"] = r.final_acc;
  j["seconds"] = r.seconds;
  j["history"] = history_to_json(r.history);
  j["health"] = to_json(r.health);
  return j;
}

Json to_json(const train::FineTuneResult& r) {
  Json j = Json::object();
  j["initial_acc"] = r.initial_acc;
  j["final_acc"] = r.final_acc;
  j["best_acc"] = r.best_acc;
  j["seconds"] = r.seconds;
  j["history"] = history_to_json(r.history);
  j["health"] = to_json(r.health);
  return j;
}

Json to_json(const resilience::DivergenceEvent& ev) {
  Json j = Json::object();
  j["epoch"] = ev.epoch;
  j["batch"] = ev.batch;
  j["cause"] = ev.cause;
  j["loss"] = ev.loss;
  j["grad_norm"] = ev.grad_norm;
  j["lr_before"] = static_cast<double>(ev.lr_before);
  j["lr_after"] = static_cast<double>(ev.lr_after);
  return j;
}

Json to_json(const resilience::DivergenceReport& rep) {
  Json j = Json::object();
  j["rollbacks"] = rep.rollbacks;
  j["gave_up"] = rep.gave_up;
  Json evs = Json::array();
  for (const auto& ev : rep.events) evs.push_back(to_json(ev));
  j["events"] = std::move(evs);
  return j;
}

Json to_json(const energy::EnergyEstimate& e) {
  Json j = Json::object();
  j["macs"] = e.macs;
  j["exact_energy"] = e.exact_energy;
  j["approx_energy"] = e.approx_energy;
  j["savings_pct"] = e.savings_pct;
  return j;
}

Json to_json(const ge::ErrorFit& fit) {
  Json j = Json::object();
  j["a"] = fit.a;
  j["b"] = fit.b;
  j["k"] = fit.k;
  j["c"] = fit.c;
  j["constant"] = fit.is_constant();
  return j;
}

Json to_json(const sentinel::LeafStats& st) {
  Json j = Json::object();
  j["path"] = st.path;
  j["gemm_checks"] = st.gemm_checks;
  j["range_checks"] = st.range_checks;
  j["abft_violations"] = st.abft_violations;
  j["weight_violations"] = st.weight_violations;
  j["range_violations"] = st.range_violations;
  j["reexecs"] = st.reexecs;
  j["degraded"] = st.degraded;
  j["max_rel_dev"] = st.max_rel_dev;
  return j;
}

Json to_json(const sentinel::SentinelReport& rep) {
  Json j = Json::object();
  j["total_checks"] = rep.total_checks();
  j["total_violations"] = rep.total_violations();
  j["total_reexecs"] = rep.total_reexecs();
  j["degraded_leaves"] = rep.degraded_leaves();
  j["violation_rate"] = rep.violation_rate();
  j["summary"] = rep.summary();
  Json leaves = Json::array();
  for (const auto& l : rep.leaves) leaves.push_back(to_json(l));
  j["leaves"] = std::move(leaves);
  return j;
}

Json to_json(const BenchProfile& p) {
  Json j = Json::object();
  j["full"] = p.full;
  j["image_size"] = p.image_size;
  j["train_size"] = p.train_size;
  j["test_size"] = p.test_size;
  j["resnet_width"] = static_cast<double>(p.resnet_width);
  j["mobilenet_width"] = static_cast<double>(p.mobilenet_width);
  j["fp_epochs"] = p.fp_epochs;
  j["ft_epochs"] = p.ft_epochs;
  j["ft_batch"] = p.ft_batch;
  j["quant_epochs"] = p.quant_epochs;
  j["ablation_epochs"] = p.ablation_epochs;
  j["decay_every"] = p.decay_every;
  j["threads"] = p.threads;
  return j;
}

Json to_json(const Table& t) {
  Json j = Json::object();
  Json headers = Json::array();
  for (const auto& h : t.headers()) headers.push_back(Json(h));
  j["headers"] = std::move(headers);
  Json rows = Json::array();
  for (const auto& row : t.rows()) {
    Json r = Json::array();
    for (const auto& cell : row) r.push_back(Json(cell));
    rows.push_back(std::move(r));
  }
  j["rows"] = std::move(rows);
  return j;
}

Json to_json(const Workbench::ApproxRun& run) {
  Json j = Json::object();
  j["multiplier"] = run.multiplier;
  j["method"] = train::to_string(run.method);
  j["t2"] = static_cast<double>(run.t2);
  j["initial_acc"] = run.initial_acc;
  j["fit"] = to_json(run.fit);
  j["plan_fits"] = static_cast<int64_t>(run.plan_fits);
  j["result"] = to_json(run.result);
  return j;
}

}  // namespace axnn::core
