// axnn — unified plan-spec I/O (DESIGN.md §5j).
//
// One parser/serializer entry point for the two on-disk plan grammars:
//
//   plan file    — a NetPlan ("default=<spec>; <path>=<spec>; ...") written
//                  over one or more lines; '#' lines are comments. Entries
//                  accumulate across lines, so long heterogeneous plans can
//                  be written one override per line.
//   ladder file  — a QoS operating-point set: "point <name> = <netplan>"
//                  lines (the format qos::parse_points historically owned).
//
// parse() auto-detects the grammar from the first significant line (a
// leading "point " keyword means ladder), so every consumer — the CLI, the
// serving engine, the search driver — reads any plan-spec file through one
// call. Errors are std::invalid_argument carrying the 1-based line number.
//
// Round-trip guarantees (fuzzed by tools/fuzz/fuzz_plan_io):
//   parse(to_text(doc))   == doc   for every successfully parsed document
//   parse_ladder(to_text(points)) == points
// Entry plan text is preserved byte-for-byte (trimmed, inner whitespace
// intact), never canonicalized — what the user wrote is what serializes.
//
// Spec-level grammar (attributes of one "<key>=<spec>" entry) stays owned
// by nn::NetPlan::parse; this module owns the document level: line
// splitting, comments, the ladder keyword grammar, names, limits and line
// blaming. qos::parse_points / qos::to_text delegate here.
#pragma once

#include <string>
#include <vector>

#include "axnn/nn/plan.hpp"

namespace axnn::core::plan_io {

/// One ladder entry: a point name and the NetPlan text it serves.
struct NamedPlan {
  std::string name;       ///< [A-Za-z0-9_.-]{1,64}, unique within a ladder
  std::string plan_text;  ///< NetPlan grammar, validated at parse

  friend bool operator==(const NamedPlan& a, const NamedPlan& b) {
    return a.name == b.name && a.plan_text == b.plan_text;
  }
};

/// Ladders larger than this are rejected at parse time (mirrors
/// qos::kMaxOperatingPoints — a governor stepping one point per dwell
/// cannot usefully exploit more).
inline constexpr int kMaxLadderPoints = 32;

/// A parsed plan-spec document of either grammar.
struct PlanDocument {
  bool ladder = false;
  /// Ladder: one entry per point, in file order. Plan: exactly one entry
  /// with an empty name whose plan_text joins the file's significant lines
  /// with "; " (still valid single-line NetPlan grammar).
  std::vector<NamedPlan> entries;

  friend bool operator==(const PlanDocument& a, const PlanDocument& b) {
    return a.ladder == b.ladder && a.entries == b.entries;
  }
};

/// Parse either grammar, auto-detected from the first significant line.
/// Throws std::invalid_argument with a 1-based line number on any error
/// (including an empty document).
PlanDocument parse(const std::string& text);

/// Parse a (possibly multi-line) plan file into a NetPlan. Blank lines and
/// '#' comments are ignored; entries accumulate across lines. Throws
/// std::invalid_argument naming the offending line.
nn::NetPlan parse_plan(const std::string& text);

/// Parse a ladder file. `who` prefixes error messages (defaults to this
/// module; qos::parse_points passes its own name to keep legacy messages
/// stable). Throws std::invalid_argument on syntax errors, invalid or
/// duplicate names, invalid plans, an empty set, or more than
/// kMaxLadderPoints entries.
std::vector<NamedPlan> parse_ladder(const std::string& text,
                                    const char* who = "plan_io::parse_ladder");

/// Canonical ladder text: one "point <name> = <plan>" line per entry.
/// parse_ladder(to_text(p)) == p.
std::string to_text(const std::vector<NamedPlan>& points);

/// Canonical document text: ladder text for ladders, the plan line plus a
/// trailing newline otherwise. parse(to_text(doc)) == doc.
std::string to_text(const PlanDocument& doc);

}  // namespace axnn::core::plan_io
