// axnn — experiment pipeline glue (the public façade used by the examples
// and by every bench).
//
// A Workbench owns one model + dataset instance and drives the paper's
// optimization flow (Algorithm 1):
//
//   FP pre-training  ->  (BN folding for ResNets)  ->  8A4W calibration
//   -> quantization-stage fine-tuning (normal or KD, T1)
//   -> per-multiplier approximation-stage fine-tuning
//      (normal / GE / alpha / ApproxKD / ApproxKD+GE, T2)
//
// Trained FP and stage-1 weights are cached on disk keyed by the full
// configuration, so bench binaries share work across runs.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "axnn/core/profile.hpp"
#include "axnn/data/synthetic.hpp"
#include "axnn/ge/monte_carlo.hpp"
#include "axnn/models/model_info.hpp"
#include "axnn/train/finetune.hpp"

namespace axnn::core {

enum class ModelKind { kResNet20, kResNet32, kMobileNetV2 };

std::string to_string(ModelKind kind);

struct WorkbenchConfig {
  ModelKind model = ModelKind::kResNet20;
  BenchProfile profile;
  uint64_t data_seed = 0x51CA7;
  uint64_t model_seed = 42;
  quant::Calibration calibration = quant::Calibration::kMinPropQE;
  int64_t calib_samples = 256;
  bool use_cache = true;
  bool verbose = false;
};

/// Copy the quantization parameters of every conv/FC layer from one layer
/// tree to a structurally identical one.
void copy_quant_state(nn::Layer& src, nn::Layer& dst);

/// Everything one approximation-stage experiment needs, NetPlan-first: the
/// plan describes what every leaf runs (a uniform plan is just a plan with
/// no overrides), and the fit scope picks between the paper's single
/// network-wide Monte-Carlo error fit and per-layer shape-aware fits.
/// This is the single entry point's argument — the former string / NetPlan
/// overload pair of Workbench::run_approximation_stage collapses into it.
/// (train::ApproxStageSetup is the lower-level resolved form the training
/// loop consumes; this struct is what users describe experiments with.)
struct ApproxStageSetup {
  /// Where GE error fits come from (GE methods only; ignored otherwise).
  enum class GeFitScope {
    kPerLayer,  ///< fit each leaf from its actual GEMM shape (FitRegistry)
    kUniform,   ///< one network-wide fit for the uniform multiplier
                ///< (paper Sec. IV-B; bit-identical to the legacy flow)
  };

  nn::NetPlan plan;
  train::Method method = train::Method::kNormal;
  float t2 = 1.0f;  ///< distillation temperature T2 (KD methods)
  /// Fine-tuning schedule; Workbench::default_ft_config() when unset.
  std::optional<train::FineTuneConfig> finetune;
  GeFitScope ge_fits = GeFitScope::kPerLayer;

  /// Paper-faithful uniform run: one multiplier for the whole network and —
  /// for GE methods — a single network-wide error fit.
  static ApproxStageSetup uniform(std::string multiplier_id, train::Method method,
                                  float t2 = 1.0f);

  /// Heterogeneous run: per-layer multipliers / adders / mode overrides
  /// from `plan`, GE fits per leaf shape.
  static ApproxStageSetup with_plan(nn::NetPlan plan, train::Method method, float t2 = 1.0f);
};

class Workbench {
public:
  explicit Workbench(WorkbenchConfig cfg);

  const WorkbenchConfig& config() const { return cfg_; }
  const data::SyntheticCifar& data() const { return data_; }
  nn::Sequential& model() { return *model_; }

  /// FP test accuracy of the pre-trained model.
  double fp_accuracy() const { return fp_acc_; }

  /// Parameter / MAC summary of the working model (Table I).
  models::ModelInfo info();

  /// Structurally identical copy of the working model with parameters,
  /// buffers and quantization parameters copied.
  std::unique_ptr<nn::Sequential> clone();

  /// Calibrate (once) and run the quantization stage. `use_kd` selects
  /// C_s1 distillation from the frozen FP teacher vs plain fine-tuning.
  /// Call once per Workbench (a second call would continue from the stage-1
  /// weights); use separate Workbench instances to compare stage-1 variants.
  /// Results are cached on disk keyed by the full configuration.
  train::FineTuneResult run_quantization_stage(bool use_kd, float t1 = 1.0f);

  /// 8A4W accuracy right after calibration, before any fine-tuning
  /// (valid after run_quantization_stage).
  double quant_acc_before_ft() const { return quant_acc_before_ft_; }

  /// One approximation-stage experiment.
  struct ApproxRun {
    std::string multiplier;     ///< multiplier id, or the plan text for plan runs
    train::Method method = train::Method::kNormal;
    float t2 = 1.0f;
    double initial_acc = 0.0;   ///< approximate accuracy before fine-tuning
    ge::ErrorFit fit;           ///< uniform error fit used (GE methods, uniform runs)
    size_t plan_fits = 0;       ///< distinct per-layer fits (plan runs with GE)
    train::FineTuneResult result;
  };

  /// Fine-tune the approximate model as described by `setup`, starting from
  /// the stage-1 weights (restores them first, so runs are independent).
  /// Requires run_quantization_stage() to have been called. Every leaf must
  /// be runnable from the plan alone (a multiplier or an exact/float mode
  /// override); the plan's bit-widths must match the calibrated widths (the
  /// Workbench calibrates once, see DESIGN.md §5d).
  ApproxRun run_approximation_stage(const ApproxStageSetup& setup);

  /// Approximate accuracy of the stage-1 model under a multiplier, without
  /// any fine-tuning ("Initial Acc." columns).
  double approx_initial_accuracy(const std::string& multiplier_id);

  /// Approximate accuracy of the stage-1 model under a per-layer plan.
  double approx_initial_accuracy(const nn::NetPlan& plan);

  /// Default fine-tuning schedule from the profile (lr 1e-4, decay 0.1).
  train::FineTuneConfig default_ft_config() const;

  /// Monte-Carlo error fit for a multiplier (50 sims, paper Sec. IV-B).
  ge::ErrorFit fit_error(const std::string& multiplier_id) const;

private:
  std::unique_ptr<nn::Sequential> build_model() const;
  void prepare_fp_model();
  void calibrate_once();
  std::string fp_cache_path() const;
  std::string stage1_cache_path(bool use_kd, float t1) const;

  WorkbenchConfig cfg_;
  data::SyntheticCifar data_;
  std::unique_ptr<nn::Sequential> model_;       ///< working model
  std::unique_ptr<nn::Sequential> stage1_;      ///< frozen stage-1 snapshot
  std::unique_ptr<nn::Sequential> teacher_q_;   ///< frozen quantized teacher
  double fp_acc_ = 0.0;
  double quant_acc_before_ft_ = 0.0;
  bool calibrated_ = false;
  bool folded_ = false;
};

}  // namespace axnn::core
