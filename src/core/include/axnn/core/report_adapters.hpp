// axnn — obs::Json adapters for the result structs the pipeline produces.
//
// One to_json overload per struct, so the CLI, benches and tests serialize
// results into RunReports without hand-rolling field lists at every call
// site. The adapters live in core (the topmost library) because they span
// train/resilience/energy/ge types; the obs library itself stays
// dependency-free.
#pragma once

#include "axnn/core/pipeline.hpp"
#include "axnn/core/profile.hpp"
#include "axnn/core/table.hpp"
#include "axnn/energy/energy.hpp"
#include "axnn/ge/error_fit.hpp"
#include "axnn/obs/json.hpp"
#include "axnn/resilience/guard.hpp"
#include "axnn/sentinel/sentinel.hpp"
#include "axnn/train/finetune.hpp"
#include "axnn/train/trainer.hpp"

namespace axnn::core {

obs::Json to_json(const train::EpochStat& st);
obs::Json to_json(const train::TrainResult& r);
obs::Json to_json(const train::FineTuneResult& r);
obs::Json to_json(const resilience::DivergenceEvent& ev);
obs::Json to_json(const resilience::DivergenceReport& rep);
obs::Json to_json(const energy::EnergyEstimate& e);
obs::Json to_json(const ge::ErrorFit& fit);
obs::Json to_json(const sentinel::LeafStats& st);
obs::Json to_json(const sentinel::SentinelReport& rep);
obs::Json to_json(const BenchProfile& p);
obs::Json to_json(const Table& t);
obs::Json to_json(const Workbench::ApproxRun& run);

}  // namespace axnn::core
