// axnn — bench execution profiles.
//
// The benches default to a fast profile so the full suite stays tractable
// on CPU; AXNN_REPRO_FULL=1 switches to paper-scale epochs and sweeps (see
// DESIGN.md §2). AXNN_THREADS pins the compute thread pool.
#pragma once

#include <cstdint>
#include <string>

namespace axnn::core {

struct BenchProfile {
  bool full = false;

  // Dataset scale.
  int64_t image_size = 16;
  int64_t train_size = 1024;
  int64_t test_size = 512;

  // Model scale.
  float resnet_width = 0.25f;
  float mobilenet_width = 0.25f;

  // Schedules. The fast profile compensates for the small dataset with
  // smaller minibatches (more SGD steps per epoch) — recovery from drastic
  // approximation needs step count, not wall-clock (see DESIGN.md §2).
  int fp_epochs = 15;
  int ft_epochs = 8;          ///< approximation-stage fine-tuning epochs
  int64_t ft_batch = 32;      ///< approximation/quantization-stage batch size
  int quant_epochs = 4;       ///< quantization-stage fine-tuning epochs
  int ablation_epochs = 5;    ///< Table III temperature sweep
  int decay_every = 4;        ///< lr step-decay interval (15 in the paper)

  /// Where cached trained models are stored.
  std::string cache_dir = ".axnn_cache";

  /// Thread-pool size to pin via apply(); 0 keeps the pool's own default.
  int threads = 0;

  /// Reads AXNN_REPRO_FULL / AXNN_THREADS / AXNN_CACHE_DIR. Pure: the
  /// profile is only described here — call apply() to act on it.
  static BenchProfile from_env();

  /// Act on the profile's process-wide settings (currently: pin the global
  /// thread pool to `threads` when set). Split from from_env() so reading
  /// the environment has no side effects; the bench runner and the CLI call
  /// this once at startup.
  void apply() const;
};

}  // namespace axnn::core
