// axnn — plain-text table emission for benches and examples.
#pragma once

#include <string>
#include <vector>

namespace axnn::core {

/// Column-aligned table with a markdown-style header rule. Cells are
/// strings; numeric helpers format with fixed precision.
class Table {
public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with padded columns: `| a | b |` rows plus a `---` rule.
  std::string to_string() const;

  /// Print to stdout.
  void print() const;

  /// Render as CSV (for plotting Fig. data series).
  std::string to_csv() const;

  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 2);  ///< 0.905 -> "90.50"

  /// Structured access (report serialization).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace axnn::core
