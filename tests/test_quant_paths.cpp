// Property tests of the quantized execution paths across layer
// configurations: the approximate integer conv must equal a scalar
// reference that quantizes, multiplies through the behavioural model and
// accumulates — for every conv geometry (stride/padding/groups/kernel).
#include <gtest/gtest.h>

#include <cmath>

#include "axnn/approx/signed_lut.hpp"
#include "axnn/axmul/registry.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/nn/linear.hpp"
#include "axnn/nn/qutils.hpp"
#include "axnn/quant/calibration.hpp"
#include "axnn/tensor/ops.hpp"

namespace axnn::nn {
namespace {

/// Scalar reference of the quantized-approximate convolution (Eq. 4):
/// quantize input and weights with the layer's params, slide the window,
/// multiply through the table, accumulate exactly, rescale, add bias.
Tensor reference_approx_conv(const Tensor& x, Conv2d& conv,
                             const approx::SignedMulTable& tab) {
  const auto& cfg = conv.config();
  const TensorI8 qx = quantize_i8(x, conv.act_qparams());
  const TensorI8 qw = quantize_i8(conv.weight().value, conv.weight_qparams());
  const float scale = conv.act_qparams().step * conv.weight_qparams().step;

  const int64_t n = x.shape()[0], h = x.shape()[2], w = x.shape()[3];
  const int64_t k = cfg.kernel, s = cfg.stride, p = cfg.padding;
  const int64_t cg = cfg.in_channels / cfg.groups;
  const int64_t og = cfg.out_channels / cfg.groups;
  const int64_t oh = (h + 2 * p - k) / s + 1;
  const int64_t ow = (w + 2 * p - k) / s + 1;

  Tensor y(Shape{n, cfg.out_channels, oh, ow});
  for (int64_t b = 0; b < n; ++b)
    for (int64_t oc = 0; oc < cfg.out_channels; ++oc) {
      const int64_t g = oc / og;
      const float bias = conv.has_bias() ? conv.bias_param().value[oc] : 0.0f;
      for (int64_t i = 0; i < oh; ++i)
        for (int64_t j = 0; j < ow; ++j) {
          int64_t acc = 0;
          for (int64_t ic = 0; ic < cg; ++ic)
            for (int64_t kh = 0; kh < k; ++kh)
              for (int64_t kw = 0; kw < k; ++kw) {
                const int64_t ih = i * s - p + kh;
                const int64_t iw = j * s - p + kw;
                if (ih < 0 || ih >= h || iw < 0 || iw >= w) continue;
                const int8_t qa = qx(b, g * cg + ic, ih, iw);
                // weight tensor is [O, Cg, k, k]
                const int8_t qq =
                    qw[((oc * cg + ic) * k + kh) * k + kw];
                acc += tab(qa, qq);
              }
          y(b, oc, i, j) = static_cast<float>(acc) * scale + bias;
        }
    }
  return y;
}

struct PathCase {
  int64_t in_ch, out_ch, kernel, stride, pad, groups, hw;
  const char* mult;
};

class ApproxConvPathSweep : public ::testing::TestWithParam<PathCase> {};

TEST_P(ApproxConvPathSweep, LayerMatchesScalarReference) {
  const PathCase pc = GetParam();
  Rng rng(static_cast<uint64_t>(pc.in_ch * 1000 + pc.out_ch * 100 + pc.hw));
  Conv2d conv({pc.in_ch, pc.out_ch, pc.kernel, pc.stride, pc.pad, pc.groups, true}, rng);
  for (int64_t i = 0; i < pc.out_ch; ++i)
    conv.bias_param().value[i] = 0.05f * static_cast<float>(i);
  const Tensor x = randn(Shape{2, pc.in_ch, pc.hw, pc.hw}, rng, 0.2f, 0.4f);
  (void)conv.forward(x, ExecContext::calibrate());
  conv.finalize_calibration(quant::Calibration::kMinPropQE);

  const approx::SignedMulTable tab(axmul::make_lut(pc.mult));
  const Tensor y = conv.forward(x, ExecContext::quant_approx(tab));
  const Tensor ref = reference_approx_conv(x, conv, tab);
  ASSERT_EQ(y.shape(), ref.shape());
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], ref[i], 1e-3f) << "elem " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ApproxConvPathSweep,
    ::testing::Values(PathCase{3, 4, 3, 1, 1, 1, 6, "trunc3"},
                      PathCase{3, 4, 3, 1, 1, 1, 6, "trunc5"},
                      PathCase{3, 4, 3, 1, 1, 1, 6, "evoa228"},
                      PathCase{4, 6, 3, 2, 1, 1, 7, "trunc4"},
                      PathCase{4, 4, 3, 1, 1, 4, 6, "trunc4"},   // depthwise
                      PathCase{4, 8, 1, 1, 0, 2, 5, "evoa29"},   // grouped 1x1
                      PathCase{2, 3, 5, 2, 2, 1, 9, "trunc2"},   // 5x5 strided
                      PathCase{1, 1, 1, 1, 0, 1, 3, "trunc1"})); // degenerate

TEST(ApproxLinearPath, MatchesScalarReference) {
  Rng rng(77);
  Linear lin(11, 5, rng);
  const Tensor x = randn(Shape{4, 11}, rng, 0.2f, 0.4f);
  (void)lin.forward(x, ExecContext::calibrate());
  lin.finalize_calibration(quant::Calibration::kMinPropQE);

  const approx::SignedMulTable tab(axmul::make_lut("trunc4"));
  const Tensor y = lin.forward(x, ExecContext::quant_approx(tab));

  const TensorI8 qx = quantize_i8(x, lin.act_qparams());
  const TensorI8 qw = quantize_i8(lin.weight().value, lin.weight_qparams());
  const float scale = lin.act_qparams().step * lin.weight_qparams().step;
  for (int64_t i = 0; i < 4; ++i)
    for (int64_t j = 0; j < 5; ++j) {
      int64_t acc = 0;
      for (int64_t f = 0; f < 11; ++f) acc += tab(qx(i, f), qw(j, f));
      const float ref = static_cast<float>(acc) * scale + lin.bias_param().value[j];
      EXPECT_NEAR(y(i, j), ref, 1e-3f);
    }
}

TEST(QuantExactPath, MoreSevereMultiplierMoreOutputError) {
  // Monotonicity across the truncated family at the layer level.
  Rng rng(88);
  Conv2d conv({3, 8, 3, 1, 1, 1, false}, rng);
  Tensor x = randn(Shape{2, 3, 8, 8}, rng, 0.4f, 0.3f);
  for (int64_t i = 0; i < x.numel(); ++i) x[i] = std::max(0.0f, x[i]);
  (void)conv.forward(x, ExecContext::calibrate());
  conv.finalize_calibration(quant::Calibration::kMinPropQE);
  const Tensor ref = conv.forward(x, ExecContext::quant_exact());

  double prev = -1.0;
  for (int t = 1; t <= 5; ++t) {
    const approx::SignedMulTable tab(axmul::make_lut("trunc" + std::to_string(t)));
    const Tensor y = conv.forward(x, ExecContext::quant_approx(tab));
    const double err = ops::mse(y, ref);
    EXPECT_GE(err, prev - 1e-9) << "t=" << t;
    prev = err;
  }
}

TEST(QuantExactPath, RepeatedForwardIsDeterministic) {
  Rng rng(99);
  Conv2d conv({2, 3, 3, 1, 1, 1, true}, rng);
  const Tensor x = randn(Shape{2, 2, 6, 6}, rng, 0.0f, 0.5f);
  (void)conv.forward(x, ExecContext::calibrate());
  conv.finalize_calibration(quant::Calibration::kMinPropQE);
  const approx::SignedMulTable tab(axmul::make_lut("evoa228"));
  const Tensor y1 = conv.forward(x, ExecContext::quant_approx(tab));
  const Tensor y2 = conv.forward(x, ExecContext::quant_approx(tab));
  for (int64_t i = 0; i < y1.numel(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

TEST(QuantExactPath, PowerOfTwoStepsEverywhere) {
  // The paper's constraint: every calibrated step is a power of two.
  Rng rng(111);
  Conv2d conv({3, 4, 3, 1, 1, 1, true}, rng);
  const Tensor x = randn(Shape{2, 3, 6, 6}, rng, 0.0f, 0.7f);
  (void)conv.forward(x, ExecContext::calibrate());
  conv.finalize_calibration(quant::Calibration::kMinPropQE);
  for (const float step : {conv.weight_qparams().step, conv.act_qparams().step}) {
    const float l = std::log2f(step);
    EXPECT_FLOAT_EQ(l, std::round(l));
  }
}

}  // namespace
}  // namespace axnn::nn
