// QoS subsystem tests (DESIGN.md §5h): operating-point-set parsing, the
// pure hysteretic Governor state machine under synthetic signals, and the
// serving engine's ladder integration — batch-atomic point swaps (every
// response's logits bitwise-match a single-point forward under the point it
// was stamped with) and structured load/open_session failures.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "axnn/axnn.hpp"

namespace axnn::qos {
namespace {

// --- Operating-point-set parsing -----------------------------------------

TEST(OperatingPoints, ParsesNamedLadder) {
  const auto pts = parse_points(
      "# ladder comment\n"
      "\n"
      "point accurate   = default=trunc5\n"
      "point balanced   = default=trunc5; stack2=trunc5:mode=exact\n"
      "point throughput = default=trunc5:mode=exact\n");
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].name, "accurate");
  EXPECT_EQ(pts[0].plan_text, "default=trunc5");
  EXPECT_EQ(pts[1].name, "balanced");
  EXPECT_EQ(pts[1].plan_text, "default=trunc5; stack2=trunc5:mode=exact");
  EXPECT_EQ(pts[2].name, "throughput");
}

TEST(OperatingPoints, RoundTripsThroughText) {
  const std::vector<OperatingPointSpec> pts = {
      {"hi", "default=trunc5"},
      {"lo-energy.v2", "default=trunc2:noge; fc=trunc5:mode=exact"}};
  const auto again = parse_points(to_text(pts));
  ASSERT_EQ(again.size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(again[i].name, pts[i].name);
    EXPECT_EQ(again[i].plan_text, pts[i].plan_text);
  }
}

TEST(OperatingPoints, RejectsMalformedSets) {
  EXPECT_THROW(parse_points(""), std::invalid_argument);             // empty set
  EXPECT_THROW(parse_points("# only comments\n"), std::invalid_argument);
  EXPECT_THROW(parse_points("point a default=trunc5\n"), std::invalid_argument);  // no '='
  EXPECT_THROW(parse_points("point = default=trunc5\n"), std::invalid_argument);  // no name
  EXPECT_THROW(parse_points("point a =\n"), std::invalid_argument);  // empty plan
  EXPECT_THROW(parse_points("point bad name = default=trunc5\n"), std::invalid_argument);
  EXPECT_THROW(parse_points("point a = default=no_such_mul\n"), std::invalid_argument);
  EXPECT_THROW(parse_points("point a = default=trunc5\npoint a = default=trunc4\n"),
               std::invalid_argument);  // duplicate name
  std::string too_many;
  for (int i = 0; i <= kMaxOperatingPoints; ++i)
    too_many += "point p" + std::to_string(i) + " = default=trunc5\n";
  EXPECT_THROW(parse_points(too_many), std::invalid_argument);
}

TEST(OperatingPoints, ParseErrorsNameTheLine) {
  try {
    parse_points("point ok = default=trunc5\npoint broken = default=no_such_mul\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

// --- Pure governor state machine ------------------------------------------

constexpr int64_t kMs = 1'000'000;

std::vector<OperatingPoint> ladder3(double e0 = 100.0, double e1 = 50.0, double e2 = 25.0) {
  OperatingPoint a{"hi", "default=trunc5", 0.9, e0, 0.0, 4.0};
  OperatingPoint b{"mid", "default=trunc4", 0.85, e1, 50.0, 3.0};
  OperatingPoint c{"lo", "default=trunc2", 0.7, e2, 75.0, 2.0};
  return {a, b, c};
}

GovernorConfig quick_cfg() {
  GovernorConfig cfg;
  cfg.tick_interval_ms = 10;
  cfg.dwell_ms = 100;
  cfg.recover_ms = 300;
  cfg.p95_high_ms = 20.0;
  cfg.react_to_backpressure = true;
  return cfg;
}

GovernorSignals at(int64_t t_ms, double p95 = 0.0) {
  GovernorSignals s;
  s.now_ns = t_ms * kMs;
  s.p95_ms = p95;
  return s;
}

TEST(Governor, ValidatesConfigAndLadder) {
  GovernorConfig bad = quick_cfg();
  bad.tick_interval_ms = 0;
  EXPECT_THROW(Governor(bad, ladder3()), std::invalid_argument);
  bad = quick_cfg();
  bad.p95_recover_frac = 0.0;
  EXPECT_THROW(Governor(bad, ladder3()), std::invalid_argument);
  bad = quick_cfg();
  bad.p95_high_ms = -1.0;
  EXPECT_THROW(Governor(bad, ladder3()), std::invalid_argument);
  EXPECT_THROW(Governor(quick_cfg(), {}), std::invalid_argument);
  EXPECT_THROW(Governor(quick_cfg(), ladder3(), 3), std::invalid_argument);
  EXPECT_THROW(Governor(quick_cfg(), ladder3(), -1), std::invalid_argument);
}

TEST(Governor, StepsDownOnePointPerDwell) {
  Governor g(quick_cfg(), ladder3());
  // Sustained pressure: p95 far beyond the threshold on every tick.
  int64_t t = 0;
  std::vector<Transition> moves;
  for (; t <= 500; t += 10)
    if (auto m = g.update(at(t, 80.0))) moves.push_back(*m);
  // 0 -> 1 -> 2, one step at a time, each at least dwell apart; then the
  // ladder floor holds.
  ASSERT_EQ(moves.size(), 2u);
  for (const auto& m : moves) {
    EXPECT_EQ(m.to, m.from + 1);
    EXPECT_EQ(m.cause, Cause::kLoad);
  }
  EXPECT_GE(moves[1].t_ns - moves[0].t_ns, 100 * kMs);
  EXPECT_EQ(g.active(), 2);
}

TEST(Governor, OscillatingSignalCannotFlap) {
  // p95 alternates above/below the threshold every tick — the worst case
  // for a naive controller. Dwell + the continuous-calm recovery window
  // bound the transition count: calm never accumulates recover_ms, so the
  // governor only ever walks down, at most once per dwell.
  Governor g(quick_cfg(), ladder3());
  int64_t t = 0;
  for (int i = 0; t <= 2000; t += 10, ++i) (void)g.update(at(t, i % 2 == 0 ? 80.0 : 1.0));
  EXPECT_LE(g.transitions().size(), 1 + 2000u / 100u);
  for (const auto& m : g.transitions()) EXPECT_EQ(m.to, m.from + 1);  // never stepped up
}

TEST(Governor, RecoveryRequiresContinuousCalmAndMargin) {
  Governor g(quick_cfg(), ladder3());
  (void)g.update(at(0, 0.0));
  ASSERT_TRUE(g.update(at(150, 80.0)).has_value());  // down after dwell
  EXPECT_EQ(g.active(), 1);

  // Calm, but short of recover_ms: no move.
  for (int64_t t = 160; t < 150 + 300; t += 10) EXPECT_FALSE(g.update(at(t, 1.0)).has_value());
  // One pressured tick resets the calm window...
  (void)g.update(at(460, 80.0));  // (dwell not elapsed since 150? it is; but
  EXPECT_EQ(g.active(), 2);       // pressure steps further down instead)
  // ...so recovery needs a fresh full window from here.
  for (int64_t t = 470; t < 460 + 300; t += 10) EXPECT_FALSE(g.update(at(t, 1.0)).has_value());
  auto up = g.update(at(770, 1.0));
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->cause, Cause::kRecovery);
  EXPECT_EQ(up->to, 1);

  // Calm in wall-clock but p95 above the recovery margin (0.5 * 20ms):
  // no step up even after the window.
  for (int64_t t = 780; t <= 780 + 600; t += 10)
    EXPECT_FALSE(g.update(at(t, 15.0)).has_value()) << "t=" << t;
  EXPECT_EQ(g.active(), 1);
}

TEST(Governor, SignalPriorityHealthOverLoad) {
  GovernorConfig cfg = quick_cfg();
  cfg.violation_rate_high = 0.01;
  Governor g(cfg, ladder3());
  (void)g.update(at(0));
  GovernorSignals s = at(200, 80.0);  // load pressure AND health pressure
  s.violation_rate = 0.5;
  auto m = g.update(s);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->cause, Cause::kHealth);

  GovernorSignals d = at(400);
  d.new_degraded = 2;
  m = g.update(d);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->cause, Cause::kHealth);
  EXPECT_NE(m->detail.find("degraded"), std::string::npos);
}

TEST(Governor, QuarantinedLanesAreHealthPressure) {
  // A quarantined serving lane shrinks capacity: the watchdog gauge feeds
  // the governor as sustained health pressure until readmission.
  Governor g(quick_cfg(), ladder3());
  (void)g.update(at(0));
  GovernorSignals s = at(200);
  s.lanes_quarantined = 1;
  auto m = g.update(s);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->cause, Cause::kHealth);
  EXPECT_NE(m->detail.find("1 lanes quarantined"), std::string::npos) << m->detail;

  // Still quarantined after the dwell: keeps walking down the ladder.
  s = at(400);
  s.lanes_quarantined = 1;
  m = g.update(s);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(g.active(), 2);

  // Readmission clears the pressure; a full calm window steps back up.
  for (int64_t t = 410; t < 400 + 300; t += 10) EXPECT_FALSE(g.update(at(t)).has_value());
  auto up = g.update(at(710));
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->cause, Cause::kRecovery);

  // The knob can be disabled.
  GovernorConfig off = quick_cfg();
  off.step_down_on_quarantine = false;
  Governor g2(off, ladder3());
  (void)g2.update(at(0));
  GovernorSignals q = at(200);
  q.lanes_quarantined = 2;
  EXPECT_FALSE(g2.update(q).has_value());
}

TEST(Governor, BackpressureAndQueueDepthAreLoadSignals) {
  GovernorConfig cfg = quick_cfg();
  cfg.queue_high = 8;
  Governor g(cfg, ladder3());
  (void)g.update(at(0));
  GovernorSignals s = at(200);
  s.queue_depth = 8;
  auto m = g.update(s);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->cause, Cause::kLoad);
  EXPECT_NE(m->detail.find("queue depth"), std::string::npos);

  GovernorSignals b = at(400);
  b.queue_full_waits = 3;
  m = g.update(b);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->cause, Cause::kLoad);
  EXPECT_NE(m->detail.find("backpressure"), std::string::npos);
}

TEST(Governor, EnergyCapStepsDownMonotoneLadderOnly) {
  GovernorConfig cfg = quick_cfg();
  cfg.p95_high_ms = 0.0;  // isolate the energy trigger
  cfg.energy_cap_per_s = 1000.0;
  Governor g(cfg, ladder3(100.0, 50.0, 25.0));
  (void)g.update(at(0));
  GovernorSignals s = at(200);
  s.energy_rate = 5000.0;
  auto m = g.update(s);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->cause, Cause::kEnergy);
  EXPECT_EQ(m->to, 1);

  // Recovery projects the rate at the upper point: rate * (e0/e1) must be
  // under energy_recover_frac * cap. 300/s at point 1 projects to 600/s at
  // point 0 <= 0.8 * 1000 — recovers once the calm window (armed at the
  // first calm tick, 210) reaches recover_ms.
  for (int64_t t = 210; t < 510; t += 10) {
    GovernorSignals calmer = at(t);
    calmer.energy_rate = 300.0;
    EXPECT_FALSE(g.update(calmer).has_value()) << "t=" << t;
  }
  GovernorSignals calm = at(510);
  calm.energy_rate = 300.0;
  auto up = g.update(calm);
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->cause, Cause::kRecovery);

  // A latency-oriented ladder where down-ladder is NOT cheaper: the energy
  // trigger must never fire (shedding accuracy would not help the cap).
  Governor flat(cfg, ladder3(100.0, 100.0, 120.0));
  (void)flat.update(at(0));
  for (int64_t tt = 200; tt <= 1000; tt += 10) {
    GovernorSignals hot = at(tt);
    hot.energy_rate = 5000.0;
    EXPECT_FALSE(flat.update(hot).has_value());
  }
  EXPECT_EQ(flat.active(), 0);
}

TEST(Governor, ForceValidatesAndRecords) {
  Governor g(quick_cfg(), ladder3());
  EXPECT_THROW(g.force(3, 0), std::invalid_argument);
  EXPECT_THROW(g.force(-1, 0), std::invalid_argument);
  const Transition t = g.force(2, 100 * kMs);
  EXPECT_EQ(t.cause, Cause::kManual);
  EXPECT_EQ(t.to, 2);
  EXPECT_EQ(g.active(), 2);
  // Same-point force is a no-op: nothing recorded.
  (void)g.force(2, 200 * kMs);
  EXPECT_EQ(g.transitions().size(), 1u);
  const auto spent = g.time_in_point_ms(300 * kMs);
  ASSERT_EQ(spent.size(), 3u);
  EXPECT_DOUBLE_EQ(spent[0], 0.0);  // entered point 2 at the first event
  EXPECT_DOUBLE_EQ(spent[2], 200.0);
}

}  // namespace
}  // namespace axnn::qos

// --- Engine ladder integration --------------------------------------------

namespace axnn::serve {
namespace {

constexpr const char* kLadder =
    "point accurate   = default=trunc5\n"
    "point throughput = default=trunc5:mode=exact\n";

ModelSpec qos_micro_spec() {
  ModelSpec spec;
  spec.model = core::ModelKind::kResNet20;
  spec.profile.image_size = 8;
  spec.profile.train_size = 160;
  spec.profile.test_size = 80;
  spec.profile.resnet_width = 0.25f;
  spec.profile.fp_epochs = 4;
  spec.profile.ft_epochs = 2;
  spec.profile.ft_batch = 40;
  spec.profile.quant_epochs = 1;
  spec.profile.decay_every = 2;
  spec.profile.cache_dir =
      (std::filesystem::temp_directory_path() / "axnn_qos_cache").string();
  spec.use_cache = false;
  spec.finetune = false;
  spec.qos_points = kLadder;
  spec.qos_holdout = 48;
  spec.qos_latency_probes = 2;
  // Inert governor: every trigger off, so only manual flips move the
  // session — the tests control the epoch flips.
  spec.governor.react_to_backpressure = false;
  spec.batching.max_batch = 4;
  spec.batching.max_delay_us = 20000;
  spec.batching.queue_capacity = 16;
  return spec;
}

class QosEngineFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() { engine_ = Engine::load(qos_micro_spec()).release(); }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }
  static Engine* engine_;
};

Engine* QosEngineFixture::engine_ = nullptr;

TEST_F(QosEngineFixture, LadderMetadataIsCalibrated) {
  ASSERT_TRUE(engine_->qos_enabled());
  const auto& pts = engine_->operating_points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].name, "accurate");
  EXPECT_EQ(pts[1].name, "throughput");
  for (const auto& p : pts) {
    EXPECT_GT(p.latency_est_ms, 0.0) << p.name;
    EXPECT_GT(p.energy_per_req, 0.0) << p.name;
    EXPECT_GE(p.holdout_acc, 0.0) << p.name;
    EXPECT_LE(p.holdout_acc, 1.0) << p.name;
  }
  // This ladder trades latency, not energy: exact MACs cost 1.0 unit while
  // trunc5 MACs are cheaper, so the throughput point is MORE expensive per
  // request — exactly the shape the governor's energy guard must refuse to
  // descend (Governor.EnergyCapStepsDownMonotoneLadderOnly).
  EXPECT_GT(pts[1].energy_per_req, pts[0].energy_per_req);
  EXPECT_GT(pts[0].energy_savings_pct, pts[1].energy_savings_pct);

  Session& s = engine_->session();
  EXPECT_TRUE(s.governed());
  EXPECT_EQ(s.num_points(), 2);
  EXPECT_EQ(s.point_name(0), "accurate");
  EXPECT_EQ(s.point_name(1), "throughput");
  EXPECT_EQ(s.active_point(), 0);
}

TEST_F(QosEngineFixture, ManualFlipAppliesToLaterBatches) {
  Session& s = engine_->session();
  const data::Dataset& test = engine_->data().test;
  ASSERT_EQ(s.active_point(), 0);

  const Ticket t0 = s.submit(test.slice(0, 1).first);
  const Result r0 = s.await(t0);
  EXPECT_EQ(r0.point, 0);
  EXPECT_EQ(r0.point_name, "accurate");

  engine_->drain();
  s.set_active_point(1);
  const Result r1 = s.await(s.submit(test.slice(0, 1).first));
  EXPECT_EQ(r1.point, 1);
  EXPECT_EQ(r1.point_name, "throughput");

  // The two points genuinely serve different arithmetic on the same image.
  bool differs = false;
  for (int64_t j = 0; j < r0.logits.numel() && !differs; ++j)
    differs = r0.logits[j] != r1.logits[j];
  EXPECT_TRUE(differs);
  s.set_active_point(0);
  engine_->drain();
}

TEST_F(QosEngineFixture, BatchAtomicSwapsAreBitTransparent) {
  Session& s = engine_->session();
  const data::Dataset& test = engine_->data().test;
  constexpr int kRequests = 48;

  // Clients hammer the session while the main thread flips the active
  // point. Every batch must execute entirely under the point it was
  // gathered with — proved by bitwise-matching each response against a
  // single-sample forward under the point stamped into it.
  std::vector<Result> results;
  results.reserve(kRequests);
  std::thread client([&] {
    for (int i = 0; i < kRequests; ++i)
      results.push_back(s.await(s.submit(test.slice(i % test.size(), 1).first)));
  });
  for (int flip = 0; flip < 10; ++flip) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    s.set_active_point(flip % 2 == 0 ? 1 : 0);
  }
  client.join();
  engine_->drain();

  for (int i = 0; i < kRequests; ++i) {
    const Result& r = results[static_cast<size_t>(i)];
    ASSERT_GE(r.point, 0);
    ASSERT_LT(r.point, s.num_points());
    const Tensor ref = engine_->model(0).forward(test.slice(i % test.size(), 1).first,
                                                 s.exec_context(0, r.point));
    ASSERT_EQ(ref.numel(), r.logits.numel());
    for (int64_t j = 0; j < ref.numel(); ++j)
      ASSERT_EQ(ref[j], r.logits[j]) << "request " << i << " under point " << r.point_name;
  }
  s.set_active_point(0);
  engine_->drain();
}

TEST_F(QosEngineFixture, QosReportAccountsAllTraffic) {
  // Serve a little traffic on each side of the ladder ourselves — each
  // test must hold alone (ctest runs them in separate processes).
  Session& s = engine_->session();
  const data::Dataset& test = engine_->data().test;
  ASSERT_EQ(s.active_point(), 0);
  for (int i = 0; i < 3; ++i) (void)s.await(s.submit(test.slice(i, 1).first));
  engine_->drain();
  s.set_active_point(1);
  for (int i = 0; i < 2; ++i) (void)s.await(s.submit(test.slice(i, 1).first));
  engine_->drain();
  s.set_active_point(0);
  engine_->drain();

  const qos::QosReport rep = engine_->qos_report();
  ASSERT_EQ(rep.points.size(), 2u);
  ASSERT_EQ(rep.sessions.size(), 1u);  // only the governed default session
  const qos::SessionQos& sq = rep.sessions.front();
  EXPECT_EQ(sq.session, "default");
  ASSERT_EQ(sq.requests_per_point.size(), 2u);
  int64_t total = 0;
  for (const int64_t n : sq.requests_per_point) total += n;
  EXPECT_EQ(total, engine_->stats().requests);
  // Both sides of the ladder served traffic and every move was recorded.
  EXPECT_GT(sq.requests_per_point[0], 0);
  EXPECT_GT(sq.requests_per_point[1], 0);
  EXPECT_EQ(static_cast<int64_t>(sq.transitions.size()), engine_->stats().qos_transitions);
  for (const auto& t : sq.transitions) EXPECT_EQ(t.cause, qos::Cause::kManual);
  const obs::Json j = rep.to_json();
  ASSERT_NE(j.find("points"), nullptr);
  ASSERT_NE(j.find("sessions"), nullptr);
}

TEST_F(QosEngineFixture, SetActivePointValidates) {
  Session& s = engine_->session();
  EXPECT_THROW(s.set_active_point(2), std::out_of_range);
  EXPECT_THROW(s.set_active_point(-1), std::out_of_range);

  // A tenant with an explicit plan is ungoverned: exactly one point, and
  // manual flips are a logic error.
  Session& pinned = engine_->open_session("pinned", "default=trunc5");
  EXPECT_FALSE(pinned.governed());
  EXPECT_EQ(pinned.num_points(), 1);
  EXPECT_EQ(pinned.active_point(), 0);
  EXPECT_THROW(pinned.set_active_point(0), std::logic_error);
}

TEST_F(QosEngineFixture, OpenSessionFailuresNameLanePointAndStage) {
  try {
    engine_->open_session("bad-widths", "default=trunc5:w3");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("session 'bad-widths'"), std::string::npos) << what;
    EXPECT_NE(what.find("lane 0"), std::string::npos) << what;
    EXPECT_NE(what.find("validate"), std::string::npos) << what;
  }
  // The failed open leaked nothing: the name is free for a valid plan.
  Session& ok = engine_->open_session("bad-widths", "default=trunc5");
  EXPECT_EQ(ok.num_points(), 1);
}

TEST(QosEngine, LoadRejectsBadLadderBeforeTraining) {
  ModelSpec bad = qos_micro_spec();
  bad.qos_points = "point a = default=no_such_mul\n";
  // Ladder validation happens before any training work: this must fail
  // fast (the suite would time out if a model were trained first).
  EXPECT_THROW(Engine::load(bad), std::invalid_argument);

  ModelSpec badcfg = qos_micro_spec();
  badcfg.governor.tick_interval_ms = 0;
  EXPECT_THROW(Engine::load(badcfg), std::invalid_argument);

  ModelSpec badprobe = qos_micro_spec();
  badprobe.qos_latency_probes = 0;
  EXPECT_THROW(Engine::load(badprobe), std::invalid_argument);
}

}  // namespace
}  // namespace axnn::serve
