// Tests for the resilience subsystem: seeded fault injection (weights,
// activations, multiplier LUTs), CRC32, and the divergence guard.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "axnn/approx/signed_lut.hpp"
#include "axnn/axmul/registry.hpp"
#include "axnn/resilience/crc32.hpp"
#include "axnn/resilience/fault.hpp"
#include "axnn/resilience/guard.hpp"
#include "axnn/tensor/rng.hpp"

namespace axnn::resilience {
namespace {

Tensor ramp_tensor(int64_t n, float base = 1.0f) {
  Tensor t(Shape{n});
  for (int64_t i = 0; i < n; ++i) t[i] = base + 0.001f * static_cast<float>(i);
  return t;
}

/// Bit-pattern equality: corrupted floats are frequently NaN, where
/// operator== is always false even for identical words.
bool bits_equal(float x, float y) {
  uint32_t a, b;
  std::memcpy(&a, &x, sizeof(a));
  std::memcpy(&b, &y, sizeof(b));
  return a == b;
}

FaultSpec heavy_spec(double rate = 0.2, uint64_t seed = 7) {
  FaultSpec fs;
  fs.rate = rate;
  fs.seed = seed;
  return fs;
}

TEST(FaultInjector, DisabledByDefaultAndAtRateZero) {
  const FaultInjector def;
  EXPECT_FALSE(def.enabled());

  FaultSpec fs;
  fs.rate = 0.0;
  const FaultInjector inj(fs);
  EXPECT_FALSE(inj.enabled());

  Tensor t = ramp_tensor(256);
  const Tensor orig = t;
  inj.corrupt(t);
  inj.begin_pass();
  inj.corrupt(t.data(), t.numel(), /*site=*/0);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], orig[i]);
  EXPECT_EQ(inj.flips(), 0);
}

TEST(FaultInjector, DeterministicForSameSeedAndPass) {
  Tensor a = ramp_tensor(1024);
  Tensor b = a;
  const FaultInjector i1(heavy_spec());
  const FaultInjector i2(heavy_spec());
  i1.begin_pass();
  i2.begin_pass();
  i1.corrupt(a.data(), a.numel(), /*site=*/3);
  i2.corrupt(b.data(), b.numel(), /*site=*/3);
  EXPECT_GT(i1.flips(), 0);
  EXPECT_EQ(i1.flips(), i2.flips());
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_TRUE(bits_equal(a[i], b[i])) << i;
}

TEST(FaultInjector, DifferentSeedsOrSitesDiffer) {
  const Tensor orig = ramp_tensor(4096);
  Tensor a = orig, b = orig, c = orig;
  const FaultInjector i1(heavy_spec(0.1, 7));
  const FaultInjector i2(heavy_spec(0.1, 8));
  i1.corrupt(a.data(), a.numel(), 0);
  i2.corrupt(b.data(), b.numel(), 0);
  i1.corrupt(c.data(), c.numel(), 1);  // same injector, other site
  const auto differs = [&](const Tensor& x, const Tensor& y) {
    for (int64_t i = 0; i < x.numel(); ++i)
      if (!bits_equal(x[i], y[i])) return true;
    return false;
  };
  EXPECT_TRUE(differs(a, b));
  EXPECT_TRUE(differs(a, c));
}

TEST(FaultInjector, TransientResamplesAcrossPasses) {
  const Tensor orig = ramp_tensor(4096);
  Tensor p0 = orig, p1 = orig;
  const FaultInjector inj(heavy_spec(0.05));
  inj.corrupt(p0.data(), p0.numel(), 0);  // pass 0
  inj.begin_pass();
  inj.corrupt(p1.data(), p1.numel(), 0);  // pass 1
  bool differs = false;
  for (int64_t i = 0; i < orig.numel() && !differs; ++i) differs = !bits_equal(p0[i], p1[i]);
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, StuckAtIsStableAcrossPasses) {
  FaultSpec fs = heavy_spec(0.05);
  fs.kind = FaultKind::kStuckAt;
  const FaultInjector inj(fs);
  const Tensor orig = ramp_tensor(4096);
  Tensor p0 = orig, p1 = orig;
  inj.corrupt(p0.data(), p0.numel(), 0);
  inj.begin_pass();
  inj.corrupt(p1.data(), p1.numel(), 0);
  for (int64_t i = 0; i < orig.numel(); ++i) EXPECT_TRUE(bits_equal(p0[i], p1[i])) << i;
  // And re-corrupting an already-faulty buffer is idempotent (bits are
  // forced, not toggled).
  Tensor again = p0;
  inj.begin_pass();
  inj.corrupt(again.data(), again.numel(), 0);
  for (int64_t i = 0; i < orig.numel(); ++i) EXPECT_TRUE(bits_equal(again[i], p0[i])) << i;
}

TEST(FaultInjector, HonorsBitRange) {
  FaultSpec fs = heavy_spec(1.0);  // hit every element
  fs.bit_lo = 31;                  // sign bit only
  fs.bit_hi = 32;
  const FaultInjector inj(fs);
  Tensor t = ramp_tensor(128, 2.0f);
  const Tensor orig = t;
  inj.corrupt(t.data(), t.numel(), 0);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(std::fabs(t[i]), orig[i]) << i;  // magnitude untouched
  }
  EXPECT_EQ(inj.flips(), t.numel());
}

TEST(FaultInjector, PassWindowGatesActivity) {
  FaultSpec fs = heavy_spec(1.0);
  fs.first_pass = 1;
  fs.last_pass = 2;
  const FaultInjector inj(fs);
  EXPECT_TRUE(inj.enabled());

  Tensor t = ramp_tensor(64);
  const Tensor orig = t;
  EXPECT_FALSE(inj.active());  // pass 0
  inj.corrupt(t);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], orig[i]);

  inj.begin_pass();  // pass 1: inside the window
  EXPECT_TRUE(inj.active());
  inj.corrupt(t);
  EXPECT_GT(inj.flips(), 0);

  Tensor u = ramp_tensor(64);
  inj.begin_pass();  // pass 2: window closed again
  EXPECT_FALSE(inj.active());
  const int64_t flips_before = inj.flips();
  inj.corrupt(u);
  EXPECT_EQ(inj.flips(), flips_before);
}

TEST(FaultInjector, CorruptTensorsHitsEveryTensor) {
  Tensor a = ramp_tensor(512), b = ramp_tensor(512);
  const Tensor oa = a, ob = b;
  const FaultInjector inj(heavy_spec(0.5));
  corrupt_tensors({&a, &b}, inj);
  const auto count_diffs = [](const Tensor& x, const Tensor& y) {
    int64_t n = 0;
    for (int64_t i = 0; i < x.numel(); ++i) n += !bits_equal(x[i], y[i]);
    return n;
  };
  EXPECT_GT(count_diffs(a, oa), 0);
  EXPECT_GT(count_diffs(b, ob), 0);
  // Distinct per-tensor sites: the two tensors must not share a fault map.
  bool same_map = true;
  for (int64_t i = 0; i < a.numel() && same_map; ++i)
    same_map = bits_equal(a[i], oa[i]) == bits_equal(b[i], ob[i]);
  EXPECT_FALSE(same_map);
}

TEST(FaultInjector, CorruptLutChangesProducts) {
  approx::SignedMulTable clean(axmul::make_lut("trunc5"));
  approx::SignedMulTable faulty = clean;
  FaultSpec fs = heavy_spec(0.05);
  fs.kind = FaultKind::kStuckAt;
  fs.bit_hi = 12;
  const FaultInjector inj(fs);
  corrupt_lut(faulty, inj);
  EXPECT_GT(inj.flips(), 0);
  int64_t diffs = 0;
  for (int32_t qa = -128; qa <= 127; ++qa)
    for (int32_t qw = -8; qw <= 7; ++qw) diffs += clean(qa, qw) != faulty(qa, qw);
  EXPECT_GT(diffs, 0);
}

TEST(Crc32, KnownVectorAndIncremental) {
  // IEEE 802.3 check value for "123456789".
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Incremental == one-shot.
  const uint32_t part = crc32(s, 4);
  EXPECT_EQ(crc32(s + 4, 5, part), crc32(s, 9));
  // Single bit flip changes the checksum.
  char buf[9];
  std::memcpy(buf, s, 9);
  buf[3] ^= 0x10;
  EXPECT_NE(crc32(buf, 9), crc32(s, 9));
}

TEST(Guard, L2Norm) {
  Tensor a(Shape{3});
  a[0] = 3.0f;
  a[1] = 0.0f;
  a[2] = 0.0f;
  Tensor b(Shape{1});
  b[0] = 4.0f;
  EXPECT_DOUBLE_EQ(l2_norm({&a, &b}), 5.0);
  EXPECT_DOUBLE_EQ(l2_norm({}), 0.0);
}

TEST(Guard, DisabledGuardNeverActs) {
  GuardConfig gc;
  gc.enabled = false;
  Tensor w = ramp_tensor(8);
  DivergenceGuard guard(gc, {&w});
  EXPECT_FALSE(guard.wants_grad_norm());
  const auto nan = std::nan("");
  EXPECT_EQ(guard.observe(nan, 1e30, 0, 0, 0.1f), DivergenceGuard::Action::kContinue);
  EXPECT_TRUE(guard.report().clean());
}

TEST(Guard, NanLossRollsBackToCommittedState) {
  Tensor w = ramp_tensor(16);
  const Tensor good = w;
  DivergenceGuard guard(GuardConfig{}, {&w});
  guard.commit();

  w.fill(777.0f);  // diverged weights the rollback must undo
  const auto act = guard.observe(std::nan(""), 0.0, /*epoch=*/2, /*batch=*/5, 0.1f);
  EXPECT_EQ(act, DivergenceGuard::Action::kRollback);
  for (int64_t i = 0; i < w.numel(); ++i) EXPECT_EQ(w[i], good[i]) << i;

  const auto& rep = guard.report();
  ASSERT_EQ(rep.events.size(), 1u);
  EXPECT_EQ(rep.rollbacks, 1);
  EXPECT_EQ(rep.events[0].cause, "nan-loss");
  EXPECT_EQ(rep.events[0].epoch, 2);
  EXPECT_EQ(rep.events[0].batch, 5);
  EXPECT_FLOAT_EQ(rep.events[0].lr_before, 0.1f);
  EXPECT_FLOAT_EQ(rep.events[0].lr_after, 0.05f);
  EXPECT_FALSE(rep.gave_up);
  EXPECT_NE(rep.summary().find("nan-loss"), std::string::npos);
}

TEST(Guard, GradExplosionDetectedOnlyWithLimit) {
  Tensor w = ramp_tensor(4);
  {
    DivergenceGuard guard(GuardConfig{}, {&w});  // limit 0: norm check off
    EXPECT_FALSE(guard.wants_grad_norm());
    EXPECT_EQ(guard.observe(0.5, 1e30, 0, 0, 0.1f), DivergenceGuard::Action::kContinue);
  }
  GuardConfig gc;
  gc.grad_norm_limit = 100.0;
  DivergenceGuard guard(gc, {&w});
  guard.commit();
  EXPECT_TRUE(guard.wants_grad_norm());
  EXPECT_EQ(guard.observe(0.5, 99.0, 0, 0, 0.1f), DivergenceGuard::Action::kContinue);
  EXPECT_EQ(guard.observe(0.5, 101.0, 0, 1, 0.1f), DivergenceGuard::Action::kRollback);
  EXPECT_EQ(guard.report().events[0].cause, "grad-explosion");
  // Non-finite norms count as explosions too.
  EXPECT_EQ(guard.observe(0.5, std::numeric_limits<double>::infinity(), 0, 2, 0.05f),
            DivergenceGuard::Action::kRollback);
}

TEST(Guard, FiniteLossExplosionDetectedWithLimit) {
  Tensor w = ramp_tensor(4);
  GuardConfig gc;
  gc.loss_limit = 1e6;
  DivergenceGuard guard(gc, {&w});
  guard.commit();
  EXPECT_EQ(guard.observe(2.5, 0.0, 0, 0, 0.1f), DivergenceGuard::Action::kContinue);
  EXPECT_EQ(guard.observe(1e30, 0.0, 0, 1, 0.1f), DivergenceGuard::Action::kRollback);
  EXPECT_EQ(guard.report().events[0].cause, "loss-explosion");
}

TEST(Guard, AbortsAfterRollbackBudget) {
  GuardConfig gc;
  gc.max_rollbacks = 2;
  Tensor w = ramp_tensor(4);
  const Tensor committed = w;
  DivergenceGuard guard(gc, {&w});
  guard.commit();
  w.fill(100.0f);  // diverged values the guard must roll back
  EXPECT_EQ(guard.observe(std::nan(""), 0.0, 0, 0, 0.1f), DivergenceGuard::Action::kRollback);
  w.fill(200.0f);
  EXPECT_EQ(guard.observe(std::nan(""), 0.0, 0, 0, 0.05f), DivergenceGuard::Action::kRollback);
  w.fill(300.0f);
  EXPECT_EQ(guard.observe(std::nan(""), 0.0, 0, 0, 0.025f), DivergenceGuard::Action::kAbort);
  EXPECT_TRUE(guard.report().gave_up);
  EXPECT_EQ(guard.report().rollbacks, 2);
  EXPECT_NE(guard.report().summary().find("gave up"), std::string::npos);
  // The abort restores the watched tensors too: an exhausted run must end at
  // the last committed snapshot, not at the diverged values.
  for (int64_t i = 0; i < w.numel(); ++i) EXPECT_EQ(w[i], committed[i]);
}

TEST(Guard, CommitAdvancesTheRollbackTarget) {
  Tensor w = ramp_tensor(8);
  DivergenceGuard guard(GuardConfig{}, {&w});
  guard.commit();
  w.fill(2.0f);
  guard.commit();  // 2.0 is now the good state
  w.fill(999.0f);
  (void)guard.observe(std::nan(""), 0.0, 1, 0, 0.1f);
  for (int64_t i = 0; i < w.numel(); ++i) EXPECT_EQ(w[i], 2.0f);
}

}  // namespace
}  // namespace axnn::resilience
