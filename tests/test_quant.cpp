// Tests for symmetric power-of-two quantization and calibration.
#include <gtest/gtest.h>

#include <cmath>

#include "axnn/quant/calibration.hpp"
#include "axnn/quant/quantizer.hpp"
#include "axnn/tensor/ops.hpp"

namespace axnn::quant {
namespace {

TEST(QuantParams, SymmetricBounds) {
  QuantParams p{1.0f, 8};
  EXPECT_EQ(p.qmax(), 127);
  EXPECT_EQ(p.qmin(), -127);
  QuantParams w{1.0f, 4};
  EXPECT_EQ(w.qmax(), 7);
  EXPECT_EQ(w.qmin(), -7);
}

TEST(RoundToPow2, SnapsToNearestPower) {
  EXPECT_FLOAT_EQ(round_to_pow2(1.0f), 1.0f);
  EXPECT_FLOAT_EQ(round_to_pow2(0.9f), 1.0f);
  EXPECT_FLOAT_EQ(round_to_pow2(1.3f), 1.0f);
  EXPECT_FLOAT_EQ(round_to_pow2(3.0f), 4.0f);
  EXPECT_FLOAT_EQ(round_to_pow2(0.02f), 0.015625f);
  EXPECT_THROW(round_to_pow2(0.0f), std::invalid_argument);
}

TEST(ParamsForMaxAbs, StepIsPow2AndCovers) {
  for (float ma : {0.1f, 0.73f, 1.0f, 5.3f, 100.0f}) {
    for (int bits : {4, 8}) {
      const QuantParams p = params_for_max_abs(ma, bits);
      // Power of two: log2 is integral.
      const float l = std::log2f(p.step);
      EXPECT_FLOAT_EQ(l, std::round(l));
      EXPECT_GE(p.range(), ma * 0.999f);
      // Not wastefully large: halving the step would fail to cover.
      EXPECT_LT(p.step * 0.5f * static_cast<float>(p.qmax()), ma);
    }
  }
}

TEST(ParamsForMaxAbs, DegenerateZeroTensor) {
  const QuantParams p = params_for_max_abs(0.0f, 8);
  EXPECT_GT(p.step, 0.0f);
}

TEST(Quantize, RoundTripWithinHalfStep) {
  Rng rng(1);
  const Tensor x = randn(Shape{1000}, rng, 0.0f, 0.3f);
  const QuantParams p = calibrate_max_abs(x, 8);
  const TensorI32 q = quantize(x, p);
  const Tensor xd = dequantize(q, p);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(xd[i], x[i], 0.5f * p.step + 1e-6f);
}

TEST(Quantize, ClampsToRange) {
  Tensor x(Shape{3});
  x[0] = 100.0f; x[1] = -100.0f; x[2] = 0.0f;
  const QuantParams p{0.1f, 4};
  const TensorI32 q = quantize(x, p);
  EXPECT_EQ(q[0], 7);
  EXPECT_EQ(q[1], -7);
  EXPECT_EQ(q[2], 0);
}

TEST(FakeQuantize, MatchesQuantizeDequantize) {
  Rng rng(2);
  const Tensor x = randn(Shape{500}, rng);
  const QuantParams p = calibrate_max_abs(x, 4);
  const Tensor fq = fake_quantize(x, p);
  const Tensor qd = dequantize(quantize(x, p), p);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(fq[i], qd[i], 1e-6f);
}

TEST(FakeQuantize, IsIdempotent) {
  Rng rng(3);
  const Tensor x = randn(Shape{200}, rng);
  const QuantParams p = calibrate_max_abs(x, 8);
  const Tensor once = fake_quantize(x, p);
  const Tensor twice = fake_quantize(once, p);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(once[i], twice[i]);
}

TEST(SteMask, BlocksSaturatedValues) {
  Tensor x(Shape{3});
  const QuantParams p{0.1f, 4};  // range 0.7
  x[0] = 0.5f; x[1] = 0.71f; x[2] = -2.0f;
  const Tensor m = ste_mask(x, p);
  EXPECT_FLOAT_EQ(m[0], 1.0f);
  EXPECT_FLOAT_EQ(m[1], 0.0f);
  EXPECT_FLOAT_EQ(m[2], 0.0f);
}

TEST(QuantizationMse, ZeroForRepresentableValues) {
  Tensor x(Shape{4});
  const QuantParams p{0.25f, 8};
  x[0] = 0.25f; x[1] = -0.5f; x[2] = 0.0f; x[3] = 1.75f;
  EXPECT_NEAR(quantization_mse(x, p), 0.0, 1e-12);
}

class BitWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitWidthSweep, MoreBitsNeverWorse) {
  const int bits = GetParam();
  Rng rng(42);
  const Tensor x = randn(Shape{2000}, rng);
  const QuantParams lo = calibrate_max_abs(x, bits);
  const QuantParams hi = calibrate_max_abs(x, bits + 1);
  EXPECT_LE(quantization_mse(x, hi), quantization_mse(x, lo) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Bits, BitWidthSweep, ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(Calibration, MinMseNeverWorseThanMaxAbs) {
  Rng rng(5);
  // Heavy-tailed data: min-MSE should saturate the outlier and win. The
  // bulk needs enough spread that covering the outlier (and crushing the
  // bulk into the rounding floor) costs more than clipping it.
  Tensor x = randn(Shape{4000}, rng, 0.0f, 0.5f);
  x[0] = 16.0f;  // one extreme outlier
  const QuantParams pm = calibrate_max_abs(x, 4);
  const QuantParams pq = calibrate_min_mse(x, 4);
  EXPECT_LE(quantization_mse(x, pq), quantization_mse(x, pm) + 1e-12);
  EXPECT_LT(pq.step, pm.step);  // the outlier gets clipped
}

TEST(Calibration, MinPropQEUsesFunctional) {
  Rng rng(6);
  const Tensor x = randn(Shape{100}, rng);
  // A functional that prefers the largest candidate step.
  int calls = 0;
  const QuantParams p = calibrate_min_prop_qe(x, 4, [&](const QuantParams& q) {
    ++calls;
    return -static_cast<double>(q.step);
  });
  EXPECT_GT(calls, 1);
  // Largest candidate = one doubling above max-abs.
  const QuantParams base = calibrate_max_abs(x, 4);
  EXPECT_FLOAT_EQ(p.step, base.step * 2.0f);
  EXPECT_THROW(calibrate_min_prop_qe(x, 4, nullptr), std::invalid_argument);
}

TEST(Calibration, CandidateStepsArePow2Ladder) {
  const auto cands = candidate_steps(1.0f, 8, 3, 2);
  ASSERT_EQ(cands.size(), 6u);
  for (size_t i = 1; i < cands.size(); ++i)
    EXPECT_FLOAT_EQ(cands[i].step, cands[i - 1].step * 2.0f);
}

TEST(RangeObserver, TracksMaxAbs) {
  RangeObserver obs;
  EXPECT_FALSE(obs.seen());
  Tensor x(Shape{3});
  x[0] = 0.5f; x[1] = -2.5f; x[2] = 1.0f;
  obs.observe(x);
  EXPECT_TRUE(obs.seen());
  EXPECT_FLOAT_EQ(obs.max_abs(), 2.5f);
  obs.observe_value(-3.0f);
  EXPECT_FLOAT_EQ(obs.max_abs(), 3.0f);
  obs.reset();
  EXPECT_FALSE(obs.seen());
  EXPECT_FLOAT_EQ(obs.max_abs(), 0.0f);
}

TEST(RangeObserver, MinMseSaturatesOutliers) {
  RangeObserver obs;
  Rng rng(7);
  Tensor x = randn(Shape{5000}, rng, 0.0f, 0.05f);
  x[0] = 8.0f;
  obs.observe(x);
  const QuantParams worst_case = obs.params(8);
  const QuantParams dist_aware = obs.params_min_mse(8);
  EXPECT_LT(dist_aware.step, worst_case.step);
}

TEST(RangeObserver, ReservoirDecimationKeepsWorking) {
  RangeObserver obs(64);  // tiny reservoir forces several decimations
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) obs.observe_value(static_cast<float>(rng.normal()));
  const QuantParams p = obs.params_min_mse(8);
  EXPECT_GT(p.step, 0.0f);
}

}  // namespace
}  // namespace axnn::quant
