// Tests for the runtime sentinel (DESIGN.md §5f): ABFT checksum detection
// with GE-fit-calibrated tolerances, golden-weight repair, range guards, and
// the degradation policy — including the acceptance-criterion proof that a
// fault-free exact forward is bit-identical with the sentinel attached.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "axnn/approx/signed_lut.hpp"
#include "axnn/axmul/registry.hpp"
#include "axnn/core/report_adapters.hpp"
#include "axnn/data/synthetic.hpp"
#include "axnn/nn/activations.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/nn/linear.hpp"
#include "axnn/nn/plan.hpp"
#include "axnn/nn/pooling.hpp"
#include "axnn/nn/sequential.hpp"
#include "axnn/resilience/fault.hpp"
#include "axnn/sentinel/sentinel.hpp"
#include "axnn/train/evaluate.hpp"

namespace axnn::sentinel {
namespace {

data::SyntheticCifar micro_data() {
  data::SyntheticConfig cfg;
  cfg.image_size = 8;
  cfg.train_size = 120;
  cfg.test_size = 60;
  cfg.noise_sigma = 0.35f;
  cfg.bleed_prob = 0.2f;
  return data::make_synthetic_cifar(cfg);
}

std::unique_ptr<nn::Sequential> micro_net(uint64_t seed = 3) {
  Rng rng(seed);
  auto net = std::make_unique<nn::Sequential>("micro");
  net->emplace<nn::Conv2d>(nn::Conv2dConfig{3, 8, 3, 1, 1, 1, true}, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Conv2d>(nn::Conv2dConfig{8, 8, 3, 2, 1, 1, true}, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::GlobalAvgPool>();
  net->emplace<nn::Linear>(8, 10, rng);
  return net;
}

void expect_bit_identical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]) << "element " << i;
}

bool any_element_differs(const Tensor& a, const Tensor& b) {
  for (int64_t i = 0; i < a.numel(); ++i)
    if (a[i] != b[i]) return true;
  return false;
}

/// Calibrated micro model, a test batch, and fast Monte-Carlo knobs.
class SentinelFixture : public ::testing::Test {
protected:
  void SetUp() override {
    data_ = micro_data();
    net_ = micro_net();
    train::calibrate_model(*net_, data_.train, 60, 30, quant::Calibration::kMinPropQE);
    batch_ = data_.test.slice(0, 24).first;
  }

  SentinelConfig fast_cfg() const {
    SentinelConfig cfg;
    cfg.mc.num_sims = 20;  // fast fits; the micro shapes are tiny
    cfg.mc.outputs_per_sim = 32;
    return cfg;
  }

  data::SyntheticCifar data_;
  std::unique_ptr<nn::Sequential> net_;
  Tensor batch_;
};

TEST_F(SentinelFixture, FaultFreeExactForwardBitIdentical) {
  const approx::SignedMulTable tab(axmul::make_lut("exact"));
  Sentinel s(fast_cfg());
  s.calibrate_uniform(*net_, tab, "exact");

  // Approximate context with the exact multiplier: the monitored forward
  // must reproduce the unmonitored one bit for bit, with zero violations.
  const auto ctx = nn::ExecContext::quant_approx(tab);
  const Tensor y0 = net_->forward(batch_, ctx);
  const Tensor y1 = net_->forward(batch_, ctx.with_monitor(s));
  expect_bit_identical(y0, y1);

  const SentinelReport rep = s.report();
  EXPECT_EQ(rep.total_violations(), 0);
  EXPECT_GT(rep.total_checks(), 0);
  EXPECT_EQ(rep.degraded_leaves(), 0);

  // Same guarantee on the plain quantized-exact path (range guards only).
  s.reset_counters();
  const Tensor e0 = net_->forward(batch_, nn::ExecContext::quant_exact());
  const Tensor e1 = net_->forward(batch_, nn::ExecContext::quant_exact().with_monitor(s));
  expect_bit_identical(e0, e1);
  const SentinelReport rep2 = s.report();
  EXPECT_EQ(rep2.total_violations(), 0);
  ASSERT_EQ(rep2.leaves.size(), 3u);
  for (const auto& l : rep2.leaves) EXPECT_GT(l.range_checks, 0);
}

TEST_F(SentinelFixture, CleanApproximateRunHasNoFalsePositives) {
  const approx::SignedMulTable tab(axmul::make_lut("trunc5"));
  Sentinel s(fast_cfg());
  s.calibrate_uniform(*net_, tab, "trunc5");

  // Several fault-free approximate batches: the calibrated tolerance must
  // absorb the genuine approximation error without a single violation.
  const auto ctx = nn::ExecContext::quant_approx(tab).with_monitor(s);
  for (int64_t off = 0; off + 20 <= 60; off += 20)
    (void)net_->forward(data_.test.slice(off, 20).first, ctx);

  const SentinelReport rep = s.report();
  EXPECT_EQ(rep.total_violations(), 0) << rep.summary();
  EXPECT_GT(rep.total_checks(), 0);
  for (const auto& l : rep.leaves) EXPECT_LT(l.max_rel_dev, 1.0) << l.path;
}

TEST_F(SentinelFixture, LutFaultsDetectedRepairedAndDegraded) {
  const approx::SignedMulTable clean(axmul::make_lut("trunc5"));
  auto cfg = fast_cfg();
  cfg.policy.degrade_after = 1;  // degrade on the first checksum violation
  Sentinel s(cfg);
  s.calibrate_uniform(*net_, clean, "trunc5");

  // Heavy stuck-at corruption in a copy of the table (calibration saw the
  // clean one, as a deployment would).
  approx::SignedMulTable bad(axmul::make_lut("trunc5"));
  resilience::FaultSpec spec;
  spec.rate = 0.3;
  spec.kind = resilience::FaultKind::kStuckAt;
  spec.bit_lo = 8;
  spec.bit_hi = 16;
  spec.seed = 99;
  resilience::FaultInjector inj(spec);
  resilience::corrupt_lut(bad, inj);

  const Tensor y1 = net_->forward(batch_, nn::ExecContext::quant_approx(bad).with_monitor(s));
  const SentinelReport rep = s.report();
  EXPECT_GT(rep.total_violations(), 0);
  EXPECT_GT(rep.total_reexecs(), 0);
  ASSERT_EQ(rep.degraded_leaves(), 3) << rep.summary();  // every leaf tripped

  // Every leaf now recomputes from golden state (default kGoldenTable
  // repair), so passes through the corrupted table are bit-identical to a
  // clean trunc5 forward — the faulty LUT is never consulted again, and
  // the model keeps the approximate semantics it was calibrated for.
  const Tensor want = net_->forward(batch_, nn::ExecContext::quant_approx(clean));
  const Tensor y2 = net_->forward(batch_, nn::ExecContext::quant_approx(bad).with_monitor(s));
  expect_bit_identical(want, y2);

  // The degraded pass skips verification: violations did not keep growing.
  const SentinelReport rep2 = s.report();
  EXPECT_EQ(rep2.total_violations(), rep.total_violations());
}

TEST_F(SentinelFixture, ExactRepairModeDegradesToExactKernel) {
  const approx::SignedMulTable clean(axmul::make_lut("trunc5"));
  auto cfg = fast_cfg();
  cfg.policy.degrade_after = 1;
  cfg.policy.repair = DegradationPolicy::RepairMode::kExact;
  Sentinel s(cfg);
  s.calibrate_uniform(*net_, clean, "trunc5");

  approx::SignedMulTable bad(axmul::make_lut("trunc5"));
  resilience::FaultSpec spec;
  spec.rate = 0.3;
  spec.kind = resilience::FaultKind::kStuckAt;
  spec.bit_lo = 8;
  spec.bit_hi = 16;
  spec.seed = 99;
  resilience::FaultInjector inj(spec);
  resilience::corrupt_lut(bad, inj);

  (void)net_->forward(batch_, nn::ExecContext::quant_approx(bad).with_monitor(s));
  ASSERT_EQ(s.report().degraded_leaves(), 3) << s.report().summary();

  // kExact degradation forces the leaves through the exact integer kernel:
  // the second pass is bit-identical to an exact-multiplier forward.
  const approx::SignedMulTable exact(axmul::make_lut("exact"));
  const Tensor want = net_->forward(batch_, nn::ExecContext::quant_approx(exact));
  const Tensor y2 = net_->forward(batch_, nn::ExecContext::quant_approx(bad).with_monitor(s));
  expect_bit_identical(want, y2);
}

TEST_F(SentinelFixture, WeightFaultsRepairedFromGoldenCopy) {
  const approx::SignedMulTable tab(axmul::make_lut("exact"));
  auto cfg = fast_cfg();
  cfg.policy.degrade_after = 1000000;  // repair every pass, never degrade
  Sentinel s(cfg);
  s.calibrate_uniform(*net_, tab, "exact");

  const auto ctx = nn::ExecContext::quant_approx(tab);
  const Tensor clean = net_->forward(batch_, ctx);

  // Flip exponent bits in every GEMM weight tensor (biases untouched so the
  // golden repair can restore the output exactly). bit_hi=30 keeps the top
  // exponent bit and the sign intact — corrupted but finite weights.
  std::vector<Tensor*> weights;
  for (const auto& leaf : nn::enumerate_gemm_leaves(*net_)) {
    if (auto* c = dynamic_cast<nn::Conv2d*>(leaf.layer)) weights.push_back(&c->weight().value);
    if (auto* l = dynamic_cast<nn::Linear*>(leaf.layer)) weights.push_back(&l->weight().value);
  }
  ASSERT_EQ(weights.size(), 3u);
  resilience::FaultSpec spec;
  spec.rate = 0.05;
  spec.bit_lo = 23;
  spec.bit_hi = 30;
  spec.seed = 7;
  resilience::FaultInjector inj(spec);
  resilience::corrupt_tensors(weights, inj);

  const Tensor broken = net_->forward(batch_, ctx);
  ASSERT_TRUE(any_element_differs(clean, broken));  // the faults really bite

  // The monitored forward detects the weight checksum mismatch and re-runs
  // each GEMM with the golden quantized weights captured at calibration.
  const Tensor repaired = net_->forward(batch_, ctx.with_monitor(s));
  expect_bit_identical(clean, repaired);
  const SentinelReport rep = s.report();
  EXPECT_GT(rep.total_reexecs(), 0);
  EXPECT_EQ(rep.degraded_leaves(), 0);
  int64_t weight_violations = 0;
  for (const auto& l : rep.leaves) weight_violations += l.weight_violations;
  EXPECT_GT(weight_violations, 0);
}

TEST_F(SentinelFixture, RangeGuardFlagsOutOfRangeActivations) {
  const approx::SignedMulTable tab(axmul::make_lut("exact"));
  Sentinel s(fast_cfg());
  s.calibrate_uniform(*net_, tab, "exact");

  Tensor blown = batch_;
  for (int64_t i = 0; i < blown.numel(); ++i) blown[i] *= 1000.0f;
  (void)net_->forward(blown, nn::ExecContext::quant_exact().with_monitor(s));

  const SentinelReport rep = s.report();
  int64_t range_violations = 0;
  for (const auto& l : rep.leaves) range_violations += l.range_violations;
  EXPECT_GT(range_violations, 0);
  // Range guards warn; they never degrade a leaf on their own.
  EXPECT_EQ(rep.degraded_leaves(), 0);
}

TEST_F(SentinelFixture, PlanRewriteDemotesDegradedLeavesToExactMode) {
  nn::LayerPlan uniform;
  uniform.multiplier = "trunc5";
  nn::NetPlan plan(uniform);
  nn::PlanResolution res = plan.resolve(*net_);

  auto cfg = fast_cfg();
  cfg.policy.degrade_after = 1;
  cfg.policy.repair = DegradationPolicy::RepairMode::kExact;  // plan rewrite mode
  Sentinel s(cfg);
  s.calibrate_plan(*net_, res);

  // Weight corruption on the first conv only: exactly one leaf must degrade
  // and have its plan entry rewritten to the exact quantized mode.
  auto leaves = nn::enumerate_gemm_leaves(*net_);
  ASSERT_EQ(leaves.size(), 3u);
  auto* conv0 = dynamic_cast<nn::Conv2d*>(leaves[0].layer);
  ASSERT_NE(conv0, nullptr);
  resilience::FaultSpec spec;
  spec.rate = 0.1;
  spec.bit_lo = 23;
  spec.bit_hi = 30;
  spec.seed = 21;
  resilience::FaultInjector inj(spec);
  resilience::corrupt_tensors({&conv0->weight().value}, inj);

  const approx::SignedMulTable fallback(axmul::make_lut("exact"));
  const auto ctx = nn::ExecContext::quant_approx(fallback).with_plan(res).with_monitor(s);
  (void)net_->forward(batch_, ctx);

  const SentinelReport rep = s.report();
  EXPECT_EQ(rep.degraded_leaves(), 1) << rep.summary();
  const nn::ResolvedLayerPlan* entry = res.find(*leaves[0].layer);
  ASSERT_NE(entry, nullptr);
  ASSERT_TRUE(entry->plan.mode.has_value());
  EXPECT_EQ(*entry->plan.mode, nn::ExecMode::kQuantExact);
  // The healthy leaves keep their approximate plan.
  for (size_t i = 1; i < leaves.size(); ++i) {
    const nn::ResolvedLayerPlan* e = res.find(*leaves[i].layer);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->plan.mode.has_value()) << leaves[i].path;
  }

  // A later pass runs the rewritten plan without further violations: the
  // demoted leaf takes the exact fake-quant path and is no longer checked.
  const Tensor y = net_->forward(batch_, ctx);
  for (int64_t i = 0; i < y.numel(); ++i) ASSERT_TRUE(std::isfinite(y[i]));
  EXPECT_EQ(s.report().total_violations(), rep.total_violations());
}

TEST_F(SentinelFixture, ReportSummaryJsonAndReset) {
  const approx::SignedMulTable tab(axmul::make_lut("exact"));
  Sentinel s(fast_cfg());
  s.calibrate_uniform(*net_, tab, "exact");
  (void)net_->forward(batch_, nn::ExecContext::quant_approx(tab).with_monitor(s));

  const SentinelReport rep = s.report();
  EXPECT_NE(rep.summary().find("leaves"), std::string::npos);
  const std::string json = core::to_json(rep).dump();
  EXPECT_NE(json.find("violation_rate"), std::string::npos);
  EXPECT_NE(json.find("leaves"), std::string::npos);
  EXPECT_NE(json.find("gemm_checks"), std::string::npos);

  s.reset_counters();
  const SentinelReport zero = s.report();
  EXPECT_EQ(zero.total_checks(), 0);
  EXPECT_EQ(zero.total_violations(), 0);
  ASSERT_EQ(zero.leaves.size(), rep.leaves.size());  // calibration survives
}

TEST(SentinelCalibration, UncalibratedModelThrows) {
  auto net = micro_net();
  const approx::SignedMulTable tab(axmul::make_lut("exact"));
  Sentinel s;
  EXPECT_THROW(s.calibrate_uniform(*net, tab, "exact"), std::logic_error);
}

// --- SentinelReport::merge edge cases --------------------------------------
// The serving engine folds one report per (point, lane) into a session-level
// view; these pin down the fold's semantics on the shapes the engine
// produces.

namespace {

LeafStats leaf(const std::string& path, int64_t checks, int64_t viols, bool degraded = false,
               double max_rel_dev = 0.0) {
  LeafStats st;
  st.path = path;
  st.gemm_checks = checks;
  st.abft_violations = viols;
  st.degraded = degraded;
  st.max_rel_dev = max_rel_dev;
  return st;
}

}  // namespace

TEST(SentinelReportMerge, EmptyReportsAreIdentity) {
  SentinelReport empty;
  SentinelReport some;
  some.leaves.push_back(leaf("conv1", 10, 2));

  // empty.merge(some): adopts the other side's rows.
  SentinelReport a = empty;
  a.merge(some);
  ASSERT_EQ(a.leaves.size(), 1u);
  EXPECT_EQ(a.leaves[0].gemm_checks, 10);

  // some.merge(empty): unchanged.
  SentinelReport b = some;
  b.merge(empty);
  ASSERT_EQ(b.leaves.size(), 1u);
  EXPECT_EQ(b.total_checks(), some.total_checks());

  SentinelReport c;
  c.merge(SentinelReport{});
  EXPECT_TRUE(c.leaves.empty());
  EXPECT_EQ(c.total_checks(), 0);
  EXPECT_DOUBLE_EQ(c.violation_rate(), 0.0);
}

TEST(SentinelReportMerge, DisjointLeafSetsAppendInOrder) {
  SentinelReport a;
  a.leaves.push_back(leaf("conv1", 4, 1));
  a.leaves.push_back(leaf("conv2", 6, 0));
  SentinelReport b;
  b.leaves.push_back(leaf("fc", 8, 2));
  b.leaves.push_back(leaf("conv9", 2, 0));

  a.merge(b);
  ASSERT_EQ(a.leaves.size(), 4u);
  // Own rows keep their order; unknown paths append in the other report's
  // order — the engine's per-point reports stay readable after the fold.
  EXPECT_EQ(a.leaves[0].path, "conv1");
  EXPECT_EQ(a.leaves[1].path, "conv2");
  EXPECT_EQ(a.leaves[2].path, "fc");
  EXPECT_EQ(a.leaves[3].path, "conv9");
  EXPECT_EQ(a.total_checks(), 4 + 6 + 8 + 2);
  EXPECT_EQ(a.total_violations(), 1 + 2);
}

TEST(SentinelReportMerge, OverlappingPathsSumOrAndMax) {
  SentinelReport a;
  a.leaves.push_back(leaf("conv1", 4, 1, /*degraded=*/false, 0.5));
  SentinelReport b;
  LeafStats other = leaf("conv1", 6, 2, /*degraded=*/true, 0.25);
  other.range_checks = 3;
  other.weight_violations = 1;
  other.reexecs = 2;
  b.leaves.push_back(other);

  a.merge(b);
  ASSERT_EQ(a.leaves.size(), 1u);
  const LeafStats& m = a.leaves[0];
  EXPECT_EQ(m.gemm_checks, 10);
  EXPECT_EQ(m.range_checks, 3);
  EXPECT_EQ(m.abft_violations, 3);
  EXPECT_EQ(m.weight_violations, 1);
  EXPECT_EQ(m.reexecs, 2);
  EXPECT_TRUE(m.degraded);              // OR: degraded anywhere is degraded
  EXPECT_DOUBLE_EQ(m.max_rel_dev, 0.5);  // max across replicas
}

TEST(SentinelReportMerge, CountersSaturateInsteadOfWrapping) {
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  SentinelReport a;
  a.leaves.push_back(leaf("conv1", kMax - 5, kMax - 5));
  SentinelReport b;
  b.leaves.push_back(leaf("conv1", 100, 100));

  a.merge(b);
  // Adding past INT64_MAX must clamp, not overflow into UB / negatives.
  EXPECT_EQ(a.leaves[0].gemm_checks, kMax);
  EXPECT_EQ(a.leaves[0].abft_violations, kMax);
  EXPECT_GE(a.total_violations(), 0);

  // Repeated merges stay pinned at the ceiling.
  a.merge(b);
  EXPECT_EQ(a.leaves[0].gemm_checks, kMax);
}

}  // namespace
}  // namespace axnn::sentinel
