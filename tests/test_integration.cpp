// End-to-end integration tests: the Workbench pipeline (Algorithm 1) on a
// micro profile, table/profile utilities.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "axnn/core/pipeline.hpp"
#include "axnn/core/profile.hpp"
#include "axnn/core/table.hpp"
#include "axnn/train/evaluate.hpp"

namespace axnn::core {
namespace {

BenchProfile micro_profile() {
  BenchProfile p;
  p.image_size = 8;
  p.train_size = 160;
  p.test_size = 80;
  p.resnet_width = 0.25f;
  p.mobilenet_width = 0.25f;
  p.fp_epochs = 4;
  p.ft_epochs = 2;
  p.ft_batch = 40;
  p.quant_epochs = 1;
  p.decay_every = 2;
  p.cache_dir = (std::filesystem::temp_directory_path() / "axnn_itest_cache").string();
  return p;
}

WorkbenchConfig micro_config(ModelKind kind = ModelKind::kResNet20) {
  WorkbenchConfig cfg;
  cfg.model = kind;
  cfg.profile = micro_profile();
  cfg.calib_samples = 80;
  cfg.use_cache = false;
  return cfg;
}

TEST(Table, RenderAndCsv) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4  |"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "a,bb\n1,2\n333,4\n");
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::pct(0.905, 1), "90.5");
}

TEST(Profile, EnvControlsFullMode) {
  ::unsetenv("AXNN_REPRO_FULL");
  EXPECT_FALSE(BenchProfile::from_env().full);
  ::setenv("AXNN_REPRO_FULL", "1", 1);
  const auto p = BenchProfile::from_env();
  EXPECT_TRUE(p.full);
  EXPECT_EQ(p.ft_epochs, 30);
  EXPECT_EQ(p.decay_every, 15);
  ::unsetenv("AXNN_REPRO_FULL");
}

TEST(Pipeline, ModelKindNames) {
  EXPECT_EQ(to_string(ModelKind::kResNet20), "resnet20");
  EXPECT_EQ(to_string(ModelKind::kResNet32), "resnet32");
  EXPECT_EQ(to_string(ModelKind::kMobileNetV2), "mobilenetv2");
}

TEST(Pipeline, EndToEndResNetFlow) {
  Workbench wb(micro_config());
  EXPECT_GT(wb.fp_accuracy(), 0.1);  // learned something even at micro scale

  const auto info = wb.info();
  EXPECT_GT(info.parameters, 0);
  EXPECT_GT(info.macs_per_sample, 0);

  const auto s1 = wb.run_quantization_stage(/*use_kd=*/true);
  EXPECT_GE(wb.quant_acc_before_ft(), 0.0);
  EXPECT_EQ(s1.history.size(), 1u);

  // Approximation with the exact multiplier changes nothing.
  const double exact_acc = wb.approx_initial_accuracy("exact");
  const double quant_acc = train::evaluate_accuracy(
      wb.model(), wb.data().test, nn::ExecContext::quant_exact());
  EXPECT_NEAR(exact_acc, quant_acc, 1e-9);

  const auto run = wb.run_approximation_stage(
      ApproxStageSetup::uniform("trunc3", train::Method::kApproxKD_GE, 5.0f));
  EXPECT_EQ(run.result.history.size(), 2u);
  EXPECT_EQ(run.multiplier, "trunc3");
  EXPECT_FALSE(run.fit.is_constant());  // truncated -> sloped fit
}

TEST(Pipeline, ApproxRunsAreIndependent) {
  Workbench wb(micro_config());
  (void)wb.run_quantization_stage(false);
  const auto setup = ApproxStageSetup::uniform("trunc3", train::Method::kNormal, 1.0f);
  const auto r1 = wb.run_approximation_stage(setup);
  const auto r2 = wb.run_approximation_stage(setup);
  // Restarting from stage-1 weights with the same seed reproduces the run.
  ASSERT_EQ(r1.result.history.size(), r2.result.history.size());
  EXPECT_DOUBLE_EQ(r1.initial_acc, r2.initial_acc);
  EXPECT_DOUBLE_EQ(r1.result.final_acc, r2.result.final_acc);
}

TEST(Pipeline, RequiresQuantizationStageFirst) {
  Workbench wb(micro_config());
  EXPECT_THROW(wb.run_approximation_stage(
                   ApproxStageSetup::uniform("trunc3", train::Method::kNormal, 1.0f)),
               std::logic_error);
  EXPECT_THROW(wb.approx_initial_accuracy("trunc3"), std::logic_error);
}

TEST(Pipeline, CloneMatchesOriginal) {
  Workbench wb(micro_config());
  (void)wb.run_quantization_stage(false);
  auto copy = wb.clone();
  const auto batch = wb.data().test.slice(0, 16);
  const Tensor y1 = wb.model().forward(batch.first, nn::ExecContext::quant_exact());
  const Tensor y2 = copy->forward(batch.first, nn::ExecContext::quant_exact());
  for (int64_t i = 0; i < y1.numel(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

TEST(Pipeline, CacheRoundTrip) {
  auto cfg = micro_config();
  cfg.use_cache = true;
  cfg.profile.cache_dir =
      (std::filesystem::temp_directory_path() / "axnn_itest_cache2").string();
  std::filesystem::remove_all(cfg.profile.cache_dir);

  Workbench first(cfg);
  const double fp1 = first.fp_accuracy();
  (void)first.run_quantization_stage(true);

  // Second workbench must load both cached artifacts and agree exactly.
  Workbench second(cfg);
  const double fp2 = second.fp_accuracy();
  EXPECT_DOUBLE_EQ(fp1, fp2);
  const auto s1b = second.run_quantization_stage(true);
  const double quant_acc = train::evaluate_accuracy(
      second.model(), second.data().test, nn::ExecContext::quant_exact());
  EXPECT_DOUBLE_EQ(s1b.final_acc, quant_acc);
  std::filesystem::remove_all(cfg.profile.cache_dir);
}

TEST(Pipeline, MobileNetKeepsBatchNorm) {
  Workbench wb(micro_config(ModelKind::kMobileNetV2));
  // BN buffers survive (not folded) for MobileNetV2, per the paper.
  EXPECT_FALSE(nn::collect_buffers(wb.model()).empty());
  (void)wb.run_quantization_stage(true);
  const auto run = wb.run_approximation_stage(
      ApproxStageSetup::uniform("trunc2", train::Method::kApproxKD_GE, 6.0f));
  EXPECT_EQ(run.result.history.size(), 2u);
}

TEST(Pipeline, ResNetBatchNormFolded) {
  Workbench wb(micro_config(ModelKind::kResNet20));
  EXPECT_TRUE(nn::collect_buffers(wb.model()).empty());
}

TEST(Pipeline, ErrorFitMatchesMultiplierFamily) {
  Workbench wb(micro_config());
  EXPECT_FALSE(wb.fit_error("trunc5").is_constant());
  EXPECT_TRUE(wb.fit_error("evoa228").is_constant());
}

}  // namespace
}  // namespace axnn::core
