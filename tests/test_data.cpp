// Tests for the dataset container and the synthetic CIFAR10-like generator.
#include <gtest/gtest.h>

#include <set>

#include "axnn/data/dataset.hpp"
#include "axnn/data/synthetic.hpp"
#include "axnn/tensor/ops.hpp"

namespace axnn::data {
namespace {

SyntheticConfig small_cfg() {
  SyntheticConfig cfg;
  cfg.image_size = 8;
  cfg.train_size = 100;
  cfg.test_size = 50;
  return cfg;
}

TEST(Synthetic, ShapesAndLabelRanges) {
  const auto ds = make_synthetic_cifar(small_cfg());
  EXPECT_EQ(ds.train.images.shape(), (Shape{100, 3, 8, 8}));
  EXPECT_EQ(ds.test.images.shape(), (Shape{50, 3, 8, 8}));
  EXPECT_EQ(ds.train.size(), 100);
  for (int lab : ds.train.labels) {
    EXPECT_GE(lab, 0);
    EXPECT_LT(lab, 10);
  }
}

TEST(Synthetic, DeterministicForSameSeed) {
  const auto a = make_synthetic_cifar(small_cfg());
  const auto b = make_synthetic_cifar(small_cfg());
  for (int64_t i = 0; i < a.train.images.numel(); ++i)
    ASSERT_FLOAT_EQ(a.train.images[i], b.train.images[i]);
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  auto cfg = small_cfg();
  const auto a = make_synthetic_cifar(cfg);
  cfg.seed = 999;
  const auto b = make_synthetic_cifar(cfg);
  double diff = 0.0;
  for (int64_t i = 0; i < a.train.images.numel(); ++i)
    diff += std::abs(a.train.images[i] - b.train.images[i]);
  EXPECT_GT(diff, 1.0);
}

TEST(Synthetic, ClassesAreBalanced) {
  const auto ds = make_synthetic_cifar(small_cfg());
  std::vector<int> counts(10, 0);
  for (int lab : ds.train.labels) ++counts[static_cast<size_t>(lab)];
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(Synthetic, TrainAndTestSplitsDiffer) {
  const auto ds = make_synthetic_cifar(small_cfg());
  // Same label at index 0; images must not be identical.
  double diff = 0.0;
  const int64_t stride = 3 * 8 * 8;
  for (int64_t i = 0; i < stride; ++i)
    diff += std::abs(ds.train.images[i] - ds.test.images[i]);
  EXPECT_GT(diff, 0.1);
}

TEST(Synthetic, ValuesClampedToRange) {
  const auto ds = make_synthetic_cifar(small_cfg());
  EXPECT_LE(ops::max_abs(ds.train.images), 2.0f);
}

TEST(Synthetic, ClassesAreSeparableInPixelSpace) {
  // Nearest-class-mean classification on clean prototypes should beat chance
  // by a wide margin — guarantees the task is learnable.
  auto cfg = small_cfg();
  cfg.train_size = 500;
  cfg.test_size = 200;
  const auto ds = make_synthetic_cifar(cfg);
  const int64_t stride = ds.train.channels() * ds.train.height() * ds.train.width();
  std::vector<std::vector<double>> means(10, std::vector<double>(static_cast<size_t>(stride), 0.0));
  std::vector<int> counts(10, 0);
  for (int64_t i = 0; i < ds.train.size(); ++i) {
    const int lab = ds.train.labels[static_cast<size_t>(i)];
    ++counts[static_cast<size_t>(lab)];
    for (int64_t j = 0; j < stride; ++j)
      means[static_cast<size_t>(lab)][static_cast<size_t>(j)] += ds.train.images[i * stride + j];
  }
  for (int c = 0; c < 10; ++c)
    for (auto& v : means[static_cast<size_t>(c)]) v /= counts[static_cast<size_t>(c)];

  int correct = 0;
  for (int64_t i = 0; i < ds.test.size(); ++i) {
    double best = 1e300;
    int best_c = -1;
    for (int c = 0; c < 10; ++c) {
      double d = 0.0;
      for (int64_t j = 0; j < stride; ++j) {
        const double dd = ds.test.images[i * stride + j] - means[static_cast<size_t>(c)][static_cast<size_t>(j)];
        d += dd * dd;
      }
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    correct += (best_c == ds.test.labels[static_cast<size_t>(i)]);
  }
  // Note: the nearest-mean classifier ignores the translation invariance of
  // textures, so it is far from the CNN ceiling — but it must beat chance.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(ds.test.size()), 0.2);
}

TEST(Dataset, GatherAndSlice) {
  const auto ds = make_synthetic_cifar(small_cfg());
  auto [imgs, labs] = ds.train.slice(10, 5);
  EXPECT_EQ(imgs.shape()[0], 5);
  EXPECT_EQ(labs.size(), 5u);
  EXPECT_EQ(labs[0], ds.train.labels[10]);
  const int64_t stride = 3 * 8 * 8;
  for (int64_t i = 0; i < stride; ++i)
    EXPECT_FLOAT_EQ(imgs[i], ds.train.images[10 * stride + i]);

  EXPECT_THROW(ds.train.slice(99, 5), std::out_of_range);
}

TEST(BatchIterator, CoversEpochExactlyOnce) {
  const auto ds = make_synthetic_cifar(small_cfg());
  Rng rng(1);
  BatchIterator iter(ds.train, 32, rng);
  Tensor imgs;
  std::vector<int> labs;
  int64_t total = 0;
  int batches = 0;
  while (iter.next(imgs, labs)) {
    total += imgs.shape()[0];
    ++batches;
  }
  EXPECT_EQ(total, 100);
  EXPECT_EQ(batches, 4);  // 32+32+32+4
  EXPECT_EQ(iter.batches_per_epoch(), 4);
}

TEST(BatchIterator, ShuffleChangesOrderAcrossEpochs) {
  const auto ds = make_synthetic_cifar(small_cfg());
  Rng rng(2);
  BatchIterator iter(ds.train, 100, rng);
  Tensor imgs;
  std::vector<int> labs1, labs2;
  iter.next(imgs, labs1);
  iter.reset();
  iter.next(imgs, labs2);
  EXPECT_NE(labs1, labs2);
}

TEST(BatchIterator, NoShuffleIsSequential) {
  const auto ds = make_synthetic_cifar(small_cfg());
  Rng rng(3);
  BatchIterator iter(ds.train, 10, rng, /*shuffle=*/false);
  Tensor imgs;
  std::vector<int> labs;
  iter.next(imgs, labs);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(labs[static_cast<size_t>(i)], ds.train.labels[static_cast<size_t>(i)]);
}

TEST(BatchIterator, RejectsBadBatchSize) {
  const auto ds = make_synthetic_cifar(small_cfg());
  Rng rng(4);
  EXPECT_THROW(BatchIterator(ds.train, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace axnn::data
