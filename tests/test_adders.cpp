// Tests for approximate adders and the approximate-accumulation GEMM path.
#include <gtest/gtest.h>

#include <cmath>

#include "axnn/approx/kernels.hpp"
#include "axnn/axmul/adder.hpp"
#include "axnn/axmul/registry.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/quant/calibration.hpp"
#include "axnn/tensor/ops.hpp"

namespace axnn::axmul {
namespace {

TEST(ExactAdder, IsExact) {
  ExactAdder a;
  EXPECT_EQ(a.add(3, 4), 7);
  EXPECT_EQ(a.add(-1000, 999), -1);
  EXPECT_EQ(a.name(), "exact_add");
}

TEST(TruncatedAdder, ZeroBitsIsExact) {
  TruncatedAdder a(0);
  for (int32_t x : {-100, -1, 0, 1, 12345})
    for (int32_t y : {-7, 0, 99}) EXPECT_EQ(a.add(x, y), x + y);
}

TEST(TruncatedAdder, DropsLowBits) {
  TruncatedAdder a(4);
  EXPECT_EQ(a.add(0x13, 0x25), 0x30);  // 0x10 + 0x20
  EXPECT_EQ(a.add(0xF, 0xF), 0);       // both fully truncated
  EXPECT_EQ(a.add(0x100, 0x200), 0x300);  // aligned operands exact
}

TEST(TruncatedAdder, ErrorBounded) {
  TruncatedAdder a(6);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const int32_t x = static_cast<int32_t>(rng.uniform_int(1 << 16)) - (1 << 15);
    const int32_t y = static_cast<int32_t>(rng.uniform_int(1 << 16)) - (1 << 15);
    const int32_t err = a.add(x, y) - (x + y);
    EXPECT_LE(std::abs(err), 2 * 63 + 1);
  }
}

TEST(LoaAdder, ZeroBitsIsExact) {
  LoaAdder a(0);
  EXPECT_EQ(a.add(123, -45), 78);
}

TEST(LoaAdder, OrLowerBits) {
  LoaAdder a(4);
  // low(a|b) = 0x3 | 0x5 = 0x7; high = 0x10 + 0x20 = 0x30.
  EXPECT_EQ(a.add(0x13, 0x25), 0x37);
}

TEST(LoaAdder, ErrorBoundedByLowerPart) {
  LoaAdder a(5);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const int32_t x = static_cast<int32_t>(rng.uniform_int(1 << 14));
    const int32_t y = static_cast<int32_t>(rng.uniform_int(1 << 14));
    const int32_t err = a.add(x, y) - (x + y);
    EXPECT_LE(std::abs(err), 1 << 5);
  }
}

TEST(Adders, Validation) {
  EXPECT_THROW(TruncatedAdder(-1), std::invalid_argument);
  EXPECT_THROW(TruncatedAdder(30), std::invalid_argument);
  EXPECT_THROW(LoaAdder(25), std::invalid_argument);
}

TEST(Adders, FactoryRoundTrip) {
  EXPECT_EQ(make_adder("exact_add")->name(), "exact_add");
  EXPECT_EQ(make_adder("truncadd6")->name(), "truncadd6");
  EXPECT_EQ(make_adder("loa8")->name(), "loa8");
  EXPECT_THROW(make_adder("mystery"), std::invalid_argument);
}

class AdderSeveritySweep : public ::testing::TestWithParam<int> {};

TEST_P(AdderSeveritySweep, MoreBitsMoreError) {
  const int k = GetParam();
  const auto lo = compute_adder_stats(LoaAdder(k));
  const auto hi = compute_adder_stats(LoaAdder(k + 2));
  EXPECT_LE(lo.rms_error, hi.rms_error + 1e-9);
  const auto tlo = compute_adder_stats(TruncatedAdder(k));
  const auto thi = compute_adder_stats(TruncatedAdder(k + 2));
  EXPECT_LE(tlo.rms_error, thi.rms_error + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Bits, AdderSeveritySweep, ::testing::Values(1, 2, 4, 6, 8));

TEST(Adders, ExactStatsAreZero) {
  const auto s = compute_adder_stats(ExactAdder{});
  EXPECT_DOUBLE_EQ(s.rms_error, 0.0);
  EXPECT_DOUBLE_EQ(s.mre, 0.0);
}

TEST(AccumGemm, ExactAdderMatchesFastPath) {
  Rng rng(3);
  TensorI8 w(Shape{4, 19}), x(Shape{19, 7});
  for (int64_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<int8_t>(rng.uniform_int(15) - 7);
  for (int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<int8_t>(rng.uniform_int(255) - 127);
  const approx::SignedMulTable tab(make_lut("trunc3"));

  TensorI32 fast(Shape{4, 7}), accum(Shape{4, 7});
  kernels::gemm_approx({}, w.data(), x.data(), fast.data(), 4, 19, 7, tab);
  const ExactAdder exact_add;
  kernels::gemm_approx_accum({}, w.data(), x.data(), accum.data(), 4, 19, 7, tab,
                             exact_add);
  for (int64_t i = 0; i < fast.numel(); ++i) EXPECT_EQ(fast[i], accum[i]);
}

TEST(AccumGemm, ApproximateAdderPerturbsResult) {
  Rng rng(4);
  TensorI8 w(Shape{3, 40}), x(Shape{40, 5});
  for (int64_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<int8_t>(rng.uniform_int(15) - 7);
  for (int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<int8_t>(rng.uniform_int(128));
  const approx::SignedMulTable tab;  // exact multiplier, approximate adder

  TensorI32 ref(Shape{3, 5}), out(Shape{3, 5});
  kernels::gemm_exact({}, w.data(), x.data(), ref.data(), 3, 40, 5);
  const TruncatedAdder trunc(6);
  kernels::gemm_approx_accum({}, w.data(), x.data(), out.data(), 3, 40, 5, tab, trunc);
  int64_t diff = 0;
  for (int64_t i = 0; i < ref.numel(); ++i) diff += (ref[i] != out[i]);
  EXPECT_GT(diff, 0);
  // Error per output is bounded by k additions x per-add bound.
  for (int64_t i = 0; i < ref.numel(); ++i)
    EXPECT_LE(std::abs(ref[i] - out[i]), 40 * 2 * 63 + 64);
}

TEST(AccumGemm, ConvLayerHonoursContextAdder) {
  Rng rng(5);
  nn::Conv2d conv({2, 3, 3, 1, 1, 1, true}, rng);
  const Tensor input = randn(Shape{1, 2, 6, 6}, rng, 0.4f, 0.3f);
  (void)conv.forward(input, nn::ExecContext::calibrate());
  conv.finalize_calibration(quant::Calibration::kMinPropQE);

  const approx::SignedMulTable tab;  // exact multiplier isolates the adder
  nn::ExecContext ctx = nn::ExecContext::quant_approx(tab);
  const Tensor ref = conv.forward(input, ctx);

  const TruncatedAdder trunc(7);
  const Tensor approx_out = conv.forward(input, ctx.with_adder(trunc));
  EXPECT_GT(ops::mse(ref, approx_out), 0.0);

  const ExactAdder exact_add;
  const Tensor same = conv.forward(input, ctx.with_adder(exact_add));
  for (int64_t i = 0; i < ref.numel(); ++i) EXPECT_FLOAT_EQ(same[i], ref[i]);
}

}  // namespace
}  // namespace axnn::axmul
