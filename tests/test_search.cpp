// Plan-search tests: Pareto-dominance utilities (strict/non-strict, tie
// handling), plan-spec round trips through core::plan_io for both grammars,
// spec validation, and end-to-end search determinism under a fixed seed on
// a micro Workbench (one stage-1 training shared by the whole suite).
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "axnn/axnn.hpp"

namespace axnn {
namespace {

using search::Objective;

// --- Pareto utilities ------------------------------------------------------

TEST(Pareto, StrictAndWeakDominance) {
  const Objective better{0.9, 100.0}, worse{0.8, 200.0};
  EXPECT_TRUE(search::dominates(better, worse));
  EXPECT_FALSE(search::dominates(worse, better));
  EXPECT_TRUE(search::weakly_dominates(better, worse));

  // Equal points: weak dominance both ways, strict neither way.
  EXPECT_TRUE(search::weakly_dominates(better, better));
  EXPECT_FALSE(search::dominates(better, better));

  // One objective better, one worse: incomparable.
  const Objective cheap{0.8, 50.0};
  EXPECT_FALSE(search::dominates(better, cheap));
  EXPECT_FALSE(search::dominates(cheap, better));
  EXPECT_FALSE(search::weakly_dominates(cheap, better));

  // Equal on one axis, better on the other: strict.
  const Objective same_acc_cheaper{0.9, 50.0};
  EXPECT_TRUE(search::dominates(same_acc_cheaper, better));
  EXPECT_FALSE(search::dominates(better, same_acc_cheaper));
}

TEST(Pareto, FrontFiltersDominatedAndKeepsFirstOfTies) {
  const std::vector<Objective> pts = {
      {0.90, 100.0},  // front
      {0.80, 200.0},  // dominated by 0
      {0.85, 50.0},   // front
      {0.90, 100.0},  // duplicate of 0 — dropped (first survives)
      {0.95, 300.0},  // front (best accuracy)
      {0.85, 50.0},   // duplicate of 2 — dropped
  };
  const auto front = search::pareto_front(pts);
  EXPECT_EQ(front, (std::vector<size_t>{0, 2, 4}));

  // Guarantee: every point is weakly dominated by some front member.
  for (size_t i = 0; i < pts.size(); ++i) {
    bool covered = false;
    for (size_t f : front) covered = covered || search::weakly_dominates(pts[f], pts[i]);
    EXPECT_TRUE(covered) << "point " << i << " not covered by the front";
  }
}

TEST(Pareto, EmptyAndSingleton) {
  EXPECT_TRUE(search::pareto_front({}).empty());
  EXPECT_EQ(search::pareto_front({{0.5, 1.0}}), std::vector<size_t>{0});
}

// --- plan_io: unified plan-spec parsing ------------------------------------

TEST(PlanIo, MultiLinePlanParsesAndRoundTrips) {
  const std::string text =
      "# heterogeneous plan, one override per line\n"
      "default=trunc5\n"
      "\n"
      "fc=trunc2:noge\n";
  const nn::NetPlan plan = core::plan_io::parse_plan(text);
  EXPECT_EQ(plan.uniform().multiplier, "trunc5");
  ASSERT_EQ(plan.overrides().size(), 1u);
  EXPECT_EQ(plan.overrides().at("fc").multiplier, "trunc2");
  EXPECT_FALSE(plan.overrides().at("fc").use_ge);

  const auto doc = core::plan_io::parse(text);
  EXPECT_FALSE(doc.ladder);
  ASSERT_EQ(doc.entries.size(), 1u);
  EXPECT_EQ(doc.entries[0].plan_text, "default=trunc5; fc=trunc2:noge");
  EXPECT_EQ(core::plan_io::parse(core::plan_io::to_text(doc)), doc);
}

TEST(PlanIo, PlanErrorsNameTheLine) {
  try {
    (void)core::plan_io::parse_plan("default=trunc5\n# fine\nfc=nosuchmul\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
  // A 'point' line inside a plan file is a grammar mix, named by line.
  try {
    (void)core::plan_io::parse("default=trunc5\npoint fast = default=trunc2\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(PlanIo, LadderParsesRoundTripsAndMatchesQos) {
  const std::string text =
      "# ladder\n"
      "point hi = default=trunc2\n"
      "point lo = default=trunc5:mode=exact; fc=trunc5\n";
  const auto ladder = core::plan_io::parse_ladder(text);
  ASSERT_EQ(ladder.size(), 2u);
  EXPECT_EQ(ladder[0].name, "hi");
  EXPECT_EQ(ladder[1].plan_text, "default=trunc5:mode=exact; fc=trunc5");
  EXPECT_EQ(core::plan_io::parse_ladder(core::plan_io::to_text(ladder)), ladder);

  // The qos entry point is a thin wrapper over the same parser.
  const auto qos_pts = qos::parse_points(text);
  ASSERT_EQ(qos_pts.size(), ladder.size());
  for (size_t i = 0; i < ladder.size(); ++i) {
    EXPECT_EQ(qos_pts[i].name, ladder[i].name);
    EXPECT_EQ(qos_pts[i].plan_text, ladder[i].plan_text);
  }

  const auto doc = core::plan_io::parse(text);
  EXPECT_TRUE(doc.ladder);
  ASSERT_EQ(doc.entries.size(), 2u);
  EXPECT_EQ(core::plan_io::parse(core::plan_io::to_text(doc)), doc);
}

TEST(PlanIo, LadderErrorsNameTheLineAndCaller) {
  try {
    (void)core::plan_io::parse_ladder("point a = default=trunc5\npoint a = default=trunc5\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate"), std::string::npos) << what;
  }
  // The qos wrapper keeps its historical error prefix.
  try {
    (void)qos::parse_points("point bad! = default=trunc5\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("qos::parse_points: line 1"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)core::plan_io::parse_ladder("# nothing\n"), std::invalid_argument);
  EXPECT_THROW((void)core::plan_io::parse(""), std::invalid_argument);
}

// --- run_search on a micro Workbench ---------------------------------------

core::WorkbenchConfig micro_config() {
  core::WorkbenchConfig cfg;
  cfg.model = core::ModelKind::kResNet20;
  cfg.profile.image_size = 8;
  cfg.profile.train_size = 160;
  cfg.profile.test_size = 80;
  cfg.profile.resnet_width = 0.25f;
  cfg.profile.fp_epochs = 4;
  cfg.profile.ft_epochs = 2;
  cfg.profile.ft_batch = 40;
  cfg.profile.quant_epochs = 1;
  cfg.profile.decay_every = 2;
  cfg.profile.cache_dir =
      (std::filesystem::temp_directory_path() / "axnn_search_cache").string();
  cfg.use_cache = false;
  return cfg;
}

search::SearchSpec micro_search_spec() {
  search::SearchSpec spec;
  spec.multipliers = {"trunc2", "trunc5"};
  spec.budget_evals = 12;
  spec.holdout = 40;
  spec.seed = 7;
  spec.evolution_generations = 2;
  spec.population = 6;
  return spec;
}

class SearchFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    wb_ = new core::Workbench(micro_config());
    (void)wb_->run_quantization_stage(/*use_kd=*/true);
  }
  static void TearDownTestSuite() {
    delete wb_;
    wb_ = nullptr;
  }

  static core::Workbench* wb_;
};

core::Workbench* SearchFixture::wb_ = nullptr;

TEST_F(SearchFixture, RejectsBadSpecs) {
  search::SearchSpec spec = micro_search_spec();
  spec.multipliers = {"nosuchmul"};
  EXPECT_THROW((void)search::run_search(*wb_, spec), std::invalid_argument);

  spec = micro_search_spec();
  spec.budget_evals = 2;  // cannot even measure baseline + uniforms + 1
  EXPECT_THROW((void)search::run_search(*wb_, spec), std::invalid_argument);

  spec = micro_search_spec();
  spec.max_points = 0;
  EXPECT_THROW((void)search::run_search(*wb_, spec), std::invalid_argument);

  spec = micro_search_spec();
  spec.widths = {{1, 8}};  // below the supported range
  EXPECT_THROW((void)search::run_search(*wb_, spec), std::invalid_argument);
}

TEST_F(SearchFixture, DeterministicAndDominatesUniforms) {
  const search::SearchSpec spec = micro_search_spec();
  const search::SearchResult a = search::run_search(*wb_, spec);
  const search::SearchResult b = search::run_search(*wb_, spec);

  // Determinism under a fixed seed: identical fronts, point for point.
  ASSERT_EQ(a.front.size(), b.front.size());
  for (size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i].name, b.front[i].name);
    EXPECT_EQ(a.front[i].plan_text, b.front[i].plan_text);
    EXPECT_DOUBLE_EQ(a.front[i].holdout_acc, b.front[i].holdout_acc);
    EXPECT_DOUBLE_EQ(a.front[i].energy_per_sample, b.front[i].energy_per_sample);
  }
  EXPECT_EQ(a.to_ladder_text(), b.to_ladder_text());
  EXPECT_EQ(a.evals_used, b.evals_used);

  // Budget respected; front present and ladder-ordered (accuracy desc).
  ASSERT_FALSE(a.front.empty());
  EXPECT_LE(a.evals_used, spec.budget_evals);
  EXPECT_LE(static_cast<int>(a.front.size()), spec.max_points);
  for (size_t i = 1; i < a.front.size(); ++i)
    EXPECT_GE(a.front[i - 1].holdout_acc, a.front[i].holdout_acc);

  // Every uniform baseline is weakly dominated by some front point.
  ASSERT_EQ(a.uniform_baselines.size(), spec.multipliers.size());
  for (const auto& ub : a.uniform_baselines) {
    bool covered = false;
    for (const auto& fp : a.front)
      covered = covered || search::weakly_dominates({fp.holdout_acc, fp.energy_per_sample},
                                                    {ub.holdout_acc, ub.energy_per_sample});
    EXPECT_TRUE(covered) << ub.name << " not dominated by the front";
  }

  // The emitted ladder is directly consumable by the QoS machinery.
  const auto pts = qos::parse_points(a.to_ladder_text());
  ASSERT_EQ(pts.size(), a.front.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].name, a.front[i].name);
    EXPECT_EQ(pts[i].plan_text, a.front[i].plan_text);
  }

  // Sensitivity profile covers every GEMM leaf, shares sum to ~1.
  EXPECT_FALSE(a.sensitivity.empty());
  double share = 0.0;
  for (const auto& s : a.sensitivity) share += s.mac_share;
  EXPECT_NEAR(share, 1.0, 1e-9);
}

}  // namespace
}  // namespace axnn
