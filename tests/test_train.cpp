// Tests for evaluation, calibration drivers, FP training and the
// fine-tuning stages (Algorithm 1 machinery) on micro-scale configurations.
#include <gtest/gtest.h>

#include <cmath>

#include "axnn/approx/signed_lut.hpp"
#include "axnn/axmul/registry.hpp"
#include "axnn/data/synthetic.hpp"
#include "axnn/models/resnet.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/nn/linear.hpp"
#include "axnn/nn/pooling.hpp"
#include "axnn/nn/activations.hpp"
#include "axnn/train/evaluate.hpp"
#include "axnn/train/finetune.hpp"
#include "axnn/train/trainer.hpp"

namespace axnn::train {
namespace {

data::SyntheticCifar micro_data() {
  data::SyntheticConfig cfg;
  cfg.image_size = 8;
  cfg.train_size = 120;
  cfg.test_size = 60;
  // The default difficulty targets paper-like FP accuracy at bench scale;
  // the micro fixtures only need a learnable signal.
  cfg.noise_sigma = 0.35f;
  cfg.bleed_prob = 0.2f;
  return data::make_synthetic_cifar(cfg);
}

std::unique_ptr<nn::Sequential> micro_net(uint64_t seed = 3) {
  Rng rng(seed);
  auto net = std::make_unique<nn::Sequential>("micro");
  net->emplace<nn::Conv2d>(nn::Conv2dConfig{3, 8, 3, 1, 1, 1, true}, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Conv2d>(nn::Conv2dConfig{8, 8, 3, 2, 1, 1, true}, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::GlobalAvgPool>();
  net->emplace<nn::Linear>(8, 10, rng);
  return net;
}

TEST(Evaluate, AccuracyOfUntrainedModelNearChance) {
  const auto data = micro_data();
  auto net = micro_net();
  const double acc = evaluate_accuracy(*net, data.test, nn::ExecContext::fp());
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 0.45);  // untrained: near 10% chance, generous bound
}

TEST(Evaluate, PredictLogitsShape) {
  const auto data = micro_data();
  auto net = micro_net();
  const Tensor logits = predict_logits(*net, data.test, nn::ExecContext::fp(), 32);
  EXPECT_EQ(logits.shape(), (Shape{60, 10}));
}

TEST(Evaluate, BatchedAndUnbatchedAgree) {
  const auto data = micro_data();
  auto net = micro_net();
  const double a1 = evaluate_accuracy(*net, data.test, nn::ExecContext::fp(), 7);
  const double a2 = evaluate_accuracy(*net, data.test, nn::ExecContext::fp(), 60);
  EXPECT_DOUBLE_EQ(a1, a2);
}

TEST(TrainFp, LossDecreasesAndAccuracyAboveChance) {
  const auto data = micro_data();
  auto net = micro_net();
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 30;
  cfg.lr = 0.05f;
  const auto result = train_fp(*net, data.train, data.test, cfg);
  ASSERT_EQ(result.history.size(), 8u);
  EXPECT_LT(result.history.back().train_loss, result.history.front().train_loss);
  EXPECT_GT(result.final_acc, 0.2);  // well above 10% chance
}

TEST(Calibrate, MakesAllGemmLayersQuantizable) {
  const auto data = micro_data();
  auto net = micro_net();
  calibrate_model(*net, data.train, 60, 30, quant::Calibration::kMinPropQE);
  // Quantized forward now works and is finite.
  const auto batch = data.test.slice(0, 16);
  const Tensor y = net->forward(batch.first, nn::ExecContext::quant_exact());
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_TRUE(std::isfinite(y[i]));
}

TEST(Calibrate, EmptySetThrows) {
  auto net = micro_net();
  data::Dataset empty;
  empty.images = Tensor(Shape{0, 3, 8, 8});
  EXPECT_THROW(calibrate_model(*net, empty, 10, 10, quant::Calibration::kMinPropQE),
               std::invalid_argument);
}

TEST(Methods, StringsAndPredicates) {
  EXPECT_EQ(to_string(Method::kNormal), "normal");
  EXPECT_EQ(to_string(Method::kApproxKD_GE), "approxkd+ge");
  EXPECT_FALSE(uses_kd(Method::kNormal));
  EXPECT_FALSE(uses_kd(Method::kGE));
  EXPECT_FALSE(uses_kd(Method::kAlpha));
  EXPECT_TRUE(uses_kd(Method::kApproxKD));
  EXPECT_TRUE(uses_kd(Method::kApproxKD_GE));
  EXPECT_TRUE(uses_ge(Method::kGE));
  EXPECT_TRUE(uses_ge(Method::kApproxKD_GE));
  EXPECT_FALSE(uses_ge(Method::kApproxKD));
}

class StageFixture : public ::testing::Test {
protected:
  void SetUp() override {
    data_ = micro_data();
    net_ = micro_net();
    TrainConfig cfg;
    cfg.epochs = 6;
    cfg.batch_size = 30;
    cfg.eval_every_epoch = false;
    (void)train_fp(*net_, data_.train, data_.test, cfg);
    calibrate_model(*net_, data_.train, 60, 30, quant::Calibration::kMinPropQE);
  }

  FineTuneConfig micro_ft(int epochs = 2) const {
    FineTuneConfig fc;
    fc.epochs = epochs;
    fc.batch_size = 30;
    fc.lr = 1e-3f;
    fc.eval_every_epoch = true;
    return fc;
  }

  data::SyntheticCifar data_;
  std::unique_ptr<nn::Sequential> net_;
};

TEST_F(StageFixture, QuantizationStagePlainRuns) {
  const auto result = quantization_stage(*net_, nullptr, data_.train, data_.test, micro_ft());
  EXPECT_EQ(result.history.size(), 2u);
  EXPECT_GE(result.best_acc, result.initial_acc - 0.05);
}

TEST_F(StageFixture, QuantizationStageWithKdTeacher) {
  auto teacher = micro_net();
  nn::copy_state(*net_, *teacher);
  auto fc = micro_ft();
  fc.temperature = 1.0f;
  const auto result = quantization_stage(*net_, teacher.get(), data_.train, data_.test, fc);
  EXPECT_EQ(result.history.size(), 2u);
}

TEST_F(StageFixture, ApproximationStageValidatesSetup) {
  ApproxStageSetup setup;  // missing multiplier
  EXPECT_THROW(approximation_stage(*net_, setup, data_.train, data_.test, micro_ft()),
               std::invalid_argument);

  const approx::SignedMulTable tab(axmul::make_lut("trunc3"));
  setup.mul = &tab;
  setup.method = Method::kApproxKD;  // KD without teacher
  EXPECT_THROW(approximation_stage(*net_, setup, data_.train, data_.test, micro_ft()),
               std::invalid_argument);

  setup.method = Method::kGE;  // GE without fit
  EXPECT_THROW(approximation_stage(*net_, setup, data_.train, data_.test, micro_ft()),
               std::invalid_argument);
}

TEST_F(StageFixture, ApproximationStageNormalRuns) {
  const approx::SignedMulTable tab(axmul::make_lut("trunc3"));
  ApproxStageSetup setup;
  setup.mul = &tab;
  setup.method = Method::kNormal;
  const auto result = approximation_stage(*net_, setup, data_.train, data_.test, micro_ft());
  EXPECT_EQ(result.history.size(), 2u);
  EXPECT_GT(result.seconds, 0.0);
}

TEST_F(StageFixture, ApproximationStageAllMethodsRun) {
  const approx::SignedMulTable tab(axmul::make_lut("trunc3"));
  auto teacher = micro_net();
  nn::copy_state(*net_, *teacher);
  // Teacher must be calibrated for quant_exact execution.
  calibrate_model(*teacher, data_.train, 60, 30, quant::Calibration::kMinPropQE);
  ge::ErrorFit fit;
  fit.k = -0.1;
  fit.a = 100.0;
  fit.b = -100.0;

  for (const Method m : {Method::kNormal, Method::kGE, Method::kAlpha, Method::kApproxKD,
                         Method::kApproxKD_GE}) {
    ApproxStageSetup setup;
    setup.mul = &tab;
    setup.method = m;
    setup.fit = &fit;
    setup.teacher_q = teacher.get();
    auto fc = micro_ft(1);
    fc.temperature = 5.0f;
    const auto result = approximation_stage(*net_, setup, data_.train, data_.test, fc);
    EXPECT_EQ(result.history.size(), 1u) << to_string(m);
  }
}

TEST(TrainFp, RecoversFromTransientFaultBurst) {
  const auto data = micro_data();
  auto net = micro_net();
  // Activation faults fire only during passes [2, 4): with 120/30 = 4 batches
  // per epoch the burst hits epoch 0, every element's top exponent bit flips,
  // and the loss (or the gradient norm backstop) must trip the guard. The
  // epoch retry then runs past the window, so training finishes normally.
  resilience::FaultSpec fs;
  fs.rate = 1.0;
  fs.bit_lo = 30;
  fs.bit_hi = 31;
  fs.first_pass = 2;
  fs.last_pass = 4;
  const resilience::FaultInjector inj(fs);

  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 30;
  cfg.lr = 0.05f;
  cfg.faults = &inj;
  cfg.guard.max_rollbacks = 6;
  cfg.guard.loss_limit = 1e6;       // backstop when the burst stays finite
  cfg.guard.grad_norm_limit = 1e6;
  const auto result = train_fp(*net, data.train, data.test, cfg);

  EXPECT_GT(inj.flips(), 0);  // the burst actually corrupted activations
  ASSERT_GE(result.health.rollbacks, 1);
  EXPECT_FALSE(result.health.gave_up);
  ASSERT_EQ(result.history.size(), 6u);  // run completed despite the burst
  for (const auto& ev : result.health.events) {
    EXPECT_FLOAT_EQ(ev.lr_after, 0.5f * ev.lr_before);
  }
  // Weights stayed usable: post-burst training still learns (the halved lr
  // makes convergence slower than the clean 8-epoch fixture, so the bar is
  // "clearly above the 10% chance level", not the clean-run accuracy).
  EXPECT_GT(result.final_acc, 0.15);
}

TEST(TrainFp, GuardGivesUpAfterRollbackBudget) {
  const auto data = micro_data();
  auto net = micro_net();
  // Every step diverges, so the last good rollback point is the pre-run
  // state the loop commits before the first batch.
  std::vector<Tensor> before;
  for (nn::Param* p : nn::collect_params(*net)) before.push_back(p->value);
  TrainConfig cfg;
  cfg.epochs = 5;
  cfg.batch_size = 30;
  cfg.guard.max_rollbacks = 2;
  cfg.guard.grad_norm_limit = 1e-12;  // every step counts as an explosion
  const auto result = train_fp(*net, data.train, data.test, cfg);
  EXPECT_TRUE(result.health.gave_up);
  EXPECT_EQ(result.health.rollbacks, 2);
  EXPECT_LT(result.history.size(), 5u);  // aborted early instead of burning epochs
  EXPECT_FALSE(result.health.summary().empty());
  // Exhaustion ends at the committed snapshot, not at the diverged values.
  const auto after = nn::collect_params(*net);
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i)
    for (int64_t j = 0; j < after[i]->value.numel(); ++j)
      EXPECT_EQ(after[i]->value[j], before[i][j]) << "param " << i << "[" << j << "]";
}

TEST_F(StageFixture, FineTuningImprovesApproximateAccuracy) {
  const approx::SignedMulTable tab(axmul::make_lut("trunc4"));
  ApproxStageSetup setup;
  setup.mul = &tab;
  setup.method = Method::kNormal;
  auto fc = micro_ft(4);
  const auto result = approximation_stage(*net_, setup, data_.train, data_.test, fc);
  EXPECT_GE(result.best_acc, result.initial_acc);
}

TEST_F(StageFixture, FineTuneGuardExhaustionStopsAndRestores) {
  const approx::SignedMulTable tab(axmul::make_lut("trunc4"));
  ApproxStageSetup setup;
  setup.mul = &tab;
  setup.method = Method::kNormal;
  std::vector<Tensor> before;
  for (nn::Param* p : nn::collect_params(*net_)) before.push_back(p->value);

  auto fc = micro_ft(5);
  fc.guard.max_rollbacks = 2;
  fc.guard.grad_norm_limit = 1e-12;  // every step counts as an explosion
  const auto result = approximation_stage(*net_, setup, data_.train, data_.test, fc);

  // Bounded retries actually stop: the run is marked unhealthy and ends
  // before burning the epoch budget.
  EXPECT_TRUE(result.health.gave_up);
  EXPECT_EQ(result.health.rollbacks, 2);
  EXPECT_LT(result.history.size(), 5u);

  // The parameters come back at the last good rollback point — here the
  // pre-fine-tune commit, since no step was ever accepted.
  const auto after = nn::collect_params(*net_);
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i)
    for (int64_t j = 0; j < after[i]->value.numel(); ++j)
      EXPECT_EQ(after[i]->value[j], before[i][j]) << "param " << i << "[" << j << "]";
}

TEST_F(StageFixture, ApproximationStageSurvivesFaultBurst) {
  const approx::SignedMulTable tab(axmul::make_lut("trunc3"));
  ApproxStageSetup setup;
  setup.mul = &tab;
  setup.method = Method::kNormal;

  resilience::FaultSpec fs;
  fs.rate = 1.0;
  fs.bit_lo = 30;
  fs.bit_hi = 31;
  fs.first_pass = 2;
  fs.last_pass = 3;
  const resilience::FaultInjector inj(fs);

  auto fc = micro_ft(2);
  fc.faults = &inj;
  fc.guard.max_rollbacks = 6;
  // Quantized execution clamps corrupted activations to finite garbage, so
  // a NaN loss is not guaranteed; the loss/grad limits catch the finite
  // blow-up (top-exponent flips push some logit towards ~1e38).
  fc.guard.loss_limit = 1e6;
  fc.guard.grad_norm_limit = 1e6;
  const auto result = approximation_stage(*net_, setup, data_.train, data_.test, fc);
  EXPECT_GT(inj.flips(), 0);
  EXPECT_GE(result.health.rollbacks, 1);
  EXPECT_FALSE(result.health.gave_up);
  EXPECT_EQ(result.history.size(), 2u);
}

}  // namespace
}  // namespace axnn::train
