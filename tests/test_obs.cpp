// Observability layer tests: Json round-trips, collector aggregation,
// per-layer path telemetry on a real (nested) model, bit-identical forwards
// with collection off vs on, and the GE residual golden check.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <set>

#include "axnn/axmul/registry.hpp"
#include "axnn/core/pipeline.hpp"
#include "axnn/core/profile.hpp"
#include "axnn/nn/plan.hpp"
#include "axnn/obs/json.hpp"
#include "axnn/obs/report.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/train/evaluate.hpp"

namespace axnn {
namespace {

using core::ApproxStageSetup;
using core::BenchProfile;
using core::ModelKind;
using core::Workbench;
using core::WorkbenchConfig;
using obs::Json;

BenchProfile micro_profile() {
  BenchProfile p;
  p.image_size = 8;
  p.train_size = 160;
  p.test_size = 80;
  p.resnet_width = 0.25f;
  p.mobilenet_width = 0.25f;
  p.fp_epochs = 4;
  p.ft_epochs = 2;
  p.ft_batch = 40;
  p.quant_epochs = 1;
  p.decay_every = 2;
  p.cache_dir = (std::filesystem::temp_directory_path() / "axnn_obs_cache").string();
  return p;
}

WorkbenchConfig micro_config(ModelKind kind = ModelKind::kResNet20) {
  WorkbenchConfig cfg;
  cfg.model = kind;
  cfg.profile = micro_profile();
  cfg.calib_samples = 80;
  cfg.use_cache = false;
  return cfg;
}

TEST(Json, DumpParseRoundTrip) {
  Json j = Json::object();
  j["s"] = "he\"llo\nworld";
  j["n"] = 1.5;
  j["i"] = int64_t{42};
  j["b"] = true;
  j["nul"] = Json();
  Json arr = Json::array();
  arr.push_back(1.0);
  arr.push_back("two");
  Json nested = Json::object();
  nested["k"] = -3.25;
  arr.push_back(std::move(nested));
  j["arr"] = std::move(arr);

  const Json back = Json::parse(j.dump(2));
  EXPECT_EQ(back.dump(), j.dump());
  EXPECT_EQ(back.find("s")->str(), "he\"llo\nworld");
  EXPECT_DOUBLE_EQ(back.find("arr")->items()[2].find("k")->number(), -3.25);
  EXPECT_TRUE(back.find("nul")->is_null());
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  Json j = Json::object();
  j["nan"] = std::nan("");
  j["inf"] = HUGE_VAL;
  const Json back = Json::parse(j.dump());
  EXPECT_TRUE(back.find("nan")->is_null());
  EXPECT_TRUE(back.find("inf")->is_null());
}

TEST(Telemetry, CollectorAggregatesAndScopesRestore) {
  EXPECT_FALSE(obs::enabled());
  obs::Collector outer;
  {
    obs::ScopedCollector attach(outer);
    EXPECT_TRUE(obs::enabled());
    obs::collector()->add("a/b", "m", 1.0);
    obs::collector()->add("a/b", "m", 3.0);
    obs::Collector inner;
    {
      obs::ScopedCollector attach2(inner);
      obs::collector()->add("x", "m", 7.0);
    }
    EXPECT_EQ(obs::collector(), &outer);  // previous collector restored
  }
  EXPECT_FALSE(obs::enabled());
  const auto st = outer.stat("a/b", "m");
  EXPECT_EQ(st.count, 2);
  EXPECT_DOUBLE_EQ(st.sum, 4.0);
  EXPECT_DOUBLE_EQ(st.min, 1.0);
  EXPECT_DOUBLE_EQ(st.max, 3.0);
  EXPECT_DOUBLE_EQ(st.mean(), 2.0);
  EXPECT_EQ(outer.stat("x", "m").count, 0);  // inner scope didn't leak
}

TEST(Telemetry, ScopedPathBuildsSlashJoinedPaths) {
  EXPECT_EQ(obs::current_path(), "");
  obs::Collector c;
  obs::ScopedCollector attach(c);
  obs::ScopedPath a("block");
  {
    obs::ScopedPath b("conv#0");
    EXPECT_EQ(obs::current_path(), "block/conv#0");
  }
  EXPECT_EQ(obs::current_path(), "block");
}

TEST(Report, RoundTripThroughParser) {
  obs::RunReport report("unit", "Unit-test report");
  report.metric("acc", 0.75);
  report.add_table("t", {"a", "b"}, {{"1", "2"}, {"3", "4"}});
  Json ev = Json::object();
  ev["type"] = "epoch";
  ev["n"] = 1;
  report.add_event(std::move(ev));

  obs::Collector c;
  c.add("layer/conv", "forward.macs", 100.0);
  report.merge_telemetry(c);

  const Json back = Json::parse(report.to_string());
  EXPECT_EQ(back.find("schema_version")->number(), obs::kReportSchemaVersion);
  EXPECT_EQ(back.find("name")->str(), "unit");
  EXPECT_DOUBLE_EQ(back.find("metrics")->find("acc")->number(), 0.75);
  const Json* table = back.find("tables")->find("t");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->find("rows")->items()[1].items()[0].str(), "3");
  const Json* stat = back.find("telemetry")->find("layer/conv")->find("forward.macs");
  ASSERT_NE(stat, nullptr);
  EXPECT_DOUBLE_EQ(stat->find("sum")->number(), 100.0);
  EXPECT_EQ(stat->find("count")->number(), 1.0);
  EXPECT_EQ(report.events().size(), 1u);
}

TEST(TelemetryModel, ForwardIsBitIdenticalWithCollectorOnOrOff) {
  // MobileNetV2 included so ge_residual's exact re-GEMM covers grouped /
  // depthwise convolutions, not just dense ResNet ones.
  for (const ModelKind kind : {ModelKind::kResNet20, ModelKind::kMobileNetV2}) {
    Workbench wb(micro_config(kind));
    (void)wb.run_quantization_stage(/*use_kd=*/false);
    const auto batch = wb.data().test.slice(0, 16);
    const approx::SignedMulTable tab(axmul::make_lut("trunc3"));

    for (const nn::ExecContext& ctx :
         {nn::ExecContext::fp(), nn::ExecContext::quant_exact(),
          nn::ExecContext::quant_approx(tab)}) {
      const Tensor off = wb.model().forward(batch.first, ctx);
      obs::Collector c({.timing = true, .ge_residual = true});
      Tensor on;
      {
        obs::ScopedCollector attach(c);
        on = wb.model().forward(batch.first, ctx);
      }
      const Tensor off2 = wb.model().forward(batch.first, ctx);
      ASSERT_EQ(off.numel(), on.numel());
      EXPECT_EQ(std::memcmp(off.data(), on.data(), sizeof(float) * off.numel()), 0);
      EXPECT_EQ(std::memcmp(off.data(), off2.data(), sizeof(float) * off.numel()), 0);
    }
  }
}

TEST(TelemetryModel, PerLayerPathsMatchPlanAddressableLeaves) {
  Workbench wb(micro_config());
  (void)wb.run_quantization_stage(/*use_kd=*/false);
  const auto batch = wb.data().test.slice(0, 8);

  obs::Collector c;
  {
    obs::ScopedCollector attach(c);
    (void)wb.model().forward(batch.first, nn::ExecContext::quant_exact());
  }

  // Every plan-addressable GEMM leaf (nested ResNet blocks included, with
  // their '#k' sibling disambiguators) must have recorded one forward under
  // exactly its NetPlan path.
  const auto metrics = c.metrics();
  for (const auto& leaf : nn::enumerate_gemm_leaves(wb.model())) {
    const auto it = metrics.find(leaf.path);
    ASSERT_NE(it, metrics.end()) << "no telemetry under path " << leaf.path;
    const auto calls = it->second.find("forward.calls");
    ASSERT_NE(calls, it->second.end()) << leaf.path;
    EXPECT_EQ(calls->second.count, 1) << leaf.path;
    EXPECT_GT(it->second.at("forward.macs").sum, 0.0) << leaf.path;
  }
  // And nesting really occurred: at least one path has depth >= 3 segments.
  bool nested = false;
  for (const auto& [path, unused] : metrics) {
    (void)unused;
    if (std::count(path.begin(), path.end(), '/') >= 2) nested = true;
  }
  EXPECT_TRUE(nested);
}

TEST(TelemetryModel, GeResidualIsZeroForExactMultiplier) {
  Workbench wb(micro_config());
  (void)wb.run_quantization_stage(/*use_kd=*/false);

  obs::Collector c({.timing = false, .ge_residual = true});
  {
    obs::ScopedCollector attach(c);
    (void)wb.run_approximation_stage(
        ApproxStageSetup::uniform("exact", train::Method::kApproxKD_GE, 1.0f));
  }

  // Golden check: with the exact multiplier the observed per-accumulator
  // error ε (approx − exact re-run) is identically zero, and any recorded
  // fit residual |f(y) − ε| is zero too.
  bool saw_eps = false;
  for (const auto& [path, metrics] : c.metrics()) {
    const auto eps = metrics.find("ge.eps_abs");
    if (eps != metrics.end()) {
      saw_eps = true;
      EXPECT_EQ(eps->second.max, 0.0) << path;
    }
    const auto res = metrics.find("ge.fit_residual");
    if (res != metrics.end()) {
      EXPECT_NEAR(res->second.max, 0.0, 1e-9) << path;
    }
  }
  EXPECT_TRUE(saw_eps);
}

}  // namespace
}  // namespace axnn
