// Numerical gradient checks for every differentiable layer, plus algebraic
// checks of the STE and GE backward paths (which are not differentiable and
// therefore verified against their defining equations instead).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "axnn/approx/signed_lut.hpp"
#include "axnn/axmul/registry.hpp"
#include "axnn/kd/distill.hpp"
#include "axnn/models/blocks.hpp"
#include "axnn/nn/activations.hpp"
#include "axnn/nn/batchnorm.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/nn/linear.hpp"
#include "axnn/nn/loss.hpp"
#include "axnn/nn/pooling.hpp"
#include "axnn/nn/sequential.hpp"
#include "axnn/tensor/ops.hpp"

namespace axnn::nn {
namespace {

const ExecContext kFp = ExecContext::fp();
const ExecContext kFpTrain = ExecContext::fp(/*training=*/true);

/// Loss functional: L = sum(forward(x) * r) for a fixed random projection r.
/// Checks dL/dx (returned by backward(r)) and dL/dtheta (accumulated in
/// param grads) against central differences.
void gradcheck_layer(Layer& layer, const Tensor& x0, const ExecContext& ctx,
                     float tol = 2e-2f, int max_checks = 24) {
  Rng rng(4242);
  Tensor x = x0;
  Tensor y = layer.forward(x, ctx);
  const Tensor r = randn(y.shape(), rng);

  layer.zero_grad();
  y = layer.forward(x, ctx);
  const Tensor dx = layer.backward(r);

  const auto loss_at = [&]() {
    const Tensor yy = layer.forward(x, ctx);
    double s = 0.0;
    for (int64_t i = 0; i < yy.numel(); ++i) s += static_cast<double>(yy[i]) * r[i];
    return s;
  };

  const float eps = 1e-3f;
  // Input gradient.
  const int64_t stride_x = std::max<int64_t>(1, x.numel() / max_checks);
  for (int64_t i = 0; i < x.numel(); i += stride_x) {
    const float orig = x[i];
    x[i] = orig + eps;
    const double lp = loss_at();
    x[i] = orig - eps;
    const double lm = loss_at();
    x[i] = orig;
    const double num = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(dx[i], num, tol * std::max(1.0, std::abs(num))) << "input element " << i;
  }
  // Parameter gradients.
  for (Param* p : collect_params(layer)) {
    const int64_t stride_p = std::max<int64_t>(1, p->value.numel() / max_checks);
    for (int64_t i = 0; i < p->value.numel(); i += stride_p) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const double lp = loss_at();
      p->value[i] = orig - eps;
      const double lm = loss_at();
      p->value[i] = orig;
      const double num = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], num, tol * std::max(1.0, std::abs(num)))
          << "param element " << i;
    }
  }
}

TEST(GradCheck, Conv2dStandard) {
  Rng rng(1);
  Conv2d conv({3, 4, 3, 1, 1, 1, true}, rng);
  gradcheck_layer(conv, randn(Shape{2, 3, 5, 5}, rng), kFp);
}

TEST(GradCheck, Conv2dStridedNoBias) {
  Rng rng(2);
  Conv2d conv({2, 3, 3, 2, 1, 1, false}, rng);
  gradcheck_layer(conv, randn(Shape{2, 2, 6, 6}, rng), kFp);
}

TEST(GradCheck, Conv2dDepthwise) {
  Rng rng(3);
  Conv2d conv({4, 4, 3, 1, 1, 4, true}, rng);
  gradcheck_layer(conv, randn(Shape{2, 4, 5, 5}, rng), kFp);
}

TEST(GradCheck, Conv2dGrouped1x1) {
  Rng rng(4);
  Conv2d conv({4, 6, 1, 1, 0, 2, true}, rng);
  gradcheck_layer(conv, randn(Shape{2, 4, 4, 4}, rng), kFp);
}

TEST(GradCheck, Linear) {
  Rng rng(5);
  Linear lin(7, 4, rng);
  gradcheck_layer(lin, randn(Shape{3, 7}, rng), kFp);
}

TEST(GradCheck, BatchNormTraining) {
  Rng rng(6);
  BatchNorm2d bn(3);
  bn.gamma().value[1] = 1.4f;
  bn.beta().value[2] = -0.3f;
  // Slightly loose tolerance: the batch statistics couple all elements.
  gradcheck_layer(bn, randn(Shape{3, 3, 4, 4}, rng), kFpTrain, 4e-2f);
}

TEST(GradCheck, BatchNormEval) {
  Rng rng(7);
  BatchNorm2d bn(2);
  for (int i = 0; i < 10; ++i) (void)bn.forward(randn(Shape{4, 2, 4, 4}, rng), kFpTrain);
  gradcheck_layer(bn, randn(Shape{2, 2, 4, 4}, rng), kFp);
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(8);
  GlobalAvgPool pool;
  gradcheck_layer(pool, randn(Shape{2, 3, 4, 4}, rng), kFp);
}

TEST(GradCheck, AvgPool2x2) {
  Rng rng(9);
  AvgPool2x2 pool;
  gradcheck_layer(pool, randn(Shape{2, 2, 4, 4}, rng), kFp);
}

TEST(GradCheck, SequentialComposition) {
  Rng rng(10);
  Sequential net;
  net.emplace<Conv2d>(Conv2dConfig{2, 3, 3, 1, 1, 1, true}, rng);
  net.emplace<ReLU>();
  net.emplace<GlobalAvgPool>();
  net.emplace<Linear>(3, 2, rng);
  // ReLU kinks break central differences at 0; shift inputs away from 0.
  gradcheck_layer(net, randn(Shape{2, 2, 5, 5}, rng, 0.5f, 1.0f), kFp, 4e-2f);
}

// Residual blocks contain BatchNorm; in training mode a single-element
// perturbation shifts the whole channel's batch statistics, which in turn
// moves every downstream ReLU relative to its kink — central differences
// become unreliable. Blocks are therefore checked in eval mode with warmed
// running statistics (the BN train-mode backward is covered by
// GradCheck.BatchNormTraining).
template <typename Block>
void warm_and_gradcheck(Block& block, const Tensor& x, Rng& rng, float tol) {
  for (int i = 0; i < 20; ++i)
    (void)block.forward(randn(x.shape(), rng, 0.2f, 0.8f), kFpTrain);
  gradcheck_layer(block, x, kFp, tol, 12);
}

TEST(GradCheck, BasicBlockResidual) {
  Rng rng(11);
  models::BasicBlock block(3, 3, 1, rng);
  warm_and_gradcheck(block, randn(Shape{2, 3, 4, 4}, rng, 0.3f, 1.0f), rng, 6e-2f);
}

TEST(GradCheck, BasicBlockDownsample) {
  Rng rng(12);
  models::BasicBlock block(2, 4, 2, rng);
  warm_and_gradcheck(block, randn(Shape{2, 2, 6, 6}, rng, 0.3f, 1.0f), rng, 6e-2f);
}

TEST(GradCheck, InvertedResidualWithSkip) {
  Rng rng(13);
  models::InvertedResidual block(4, 4, 1, 2, rng);
  EXPECT_TRUE(block.has_skip());
  warm_and_gradcheck(block, randn(Shape{2, 4, 4, 4}, rng, 0.3f, 0.7f), rng, 8e-2f);
}

TEST(GradCheck, InvertedResidualNoSkip) {
  Rng rng(14);
  models::InvertedResidual block(3, 5, 2, 2, rng);
  EXPECT_FALSE(block.has_skip());
  warm_and_gradcheck(block, randn(Shape{2, 3, 6, 6}, rng, 0.3f, 0.7f), rng, 8e-2f);
}

// ---- loss gradient checks (scalar losses, full finite differences) ----

void gradcheck_loss(const std::function<LossResult(const Tensor&)>& loss_fn, Tensor logits,
                    float tol = 1e-3f) {
  const LossResult r = loss_fn(logits);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + eps;
    const double lp = loss_fn(logits).value;
    logits[i] = orig - eps;
    const double lm = loss_fn(logits).value;
    logits[i] = orig;
    const double num = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(r.grad[i], num, tol * std::max(1.0, std::abs(num))) << "logit " << i;
  }
}

TEST(GradCheck, CrossEntropyLoss) {
  Rng rng(15);
  const std::vector<int> labels = {1, 0, 2};
  gradcheck_loss([&](const Tensor& y) { return cross_entropy(y, labels); },
                 randn(Shape{3, 3}, rng, 0.0f, 2.0f));
}

TEST(GradCheck, SoftCrossEntropyAllTemperatures) {
  Rng rng(16);
  const Tensor teacher = randn(Shape{2, 5}, rng, 0.0f, 2.0f);
  for (float t : {1.0f, 2.0f, 5.0f, 10.0f}) {
    gradcheck_loss(
        [&](const Tensor& y) { return kd::soft_cross_entropy(y, teacher, t); },
        randn(Shape{2, 5}, rng, 0.0f, 2.0f), 2e-3f);
  }
}

TEST(GradCheck, DistillationLoss) {
  Rng rng(17);
  const Tensor teacher = randn(Shape{3, 4}, rng, 0.0f, 2.0f);
  const std::vector<int> labels = {0, 3, 1};
  gradcheck_loss(
      [&](const Tensor& y) { return kd::distillation_loss(y, teacher, labels, 5.0f); },
      randn(Shape{3, 4}, rng, 0.0f, 2.0f), 2e-3f);
}

TEST(GradCheck, MseLoss) {
  Rng rng(18);
  const Tensor target = randn(Shape{4}, rng);
  gradcheck_loss([&](const Tensor& y) { return mse_loss(y, target); },
                 randn(Shape{4}, rng));
}

// ---- STE / GE backward (algebraic checks; quant forward is a staircase) ----

TEST(SteBackward, QuantExactGradMatchesFakeQuantReference) {
  // Eq. 5: the backward of the quantized layer is the exact-GEMM gradient
  // evaluated at the fake-quantized operands.
  Rng rng(19);
  Conv2d conv({2, 3, 3, 1, 1, 1, false}, rng);
  const Tensor x = randn(Shape{2, 2, 5, 5}, rng, 0.0f, 0.5f);
  (void)conv.forward(x, ExecContext::calibrate());
  conv.finalize_calibration(quant::Calibration::kMinPropQE);

  Tensor y = conv.forward(x, ExecContext::quant_exact());
  const Tensor r = randn(y.shape(), rng);
  conv.zero_grad();
  y = conv.forward(x, ExecContext::quant_exact());
  (void)conv.backward(r);
  const Tensor dw_quant = conv.weight().grad;

  // Reference: a float conv whose weights/input are pre-fake-quantized.
  Conv2d ref({2, 3, 3, 1, 1, 1, false}, rng);
  ref.weight().value = quant::fake_quantize(conv.weight().value, conv.weight_qparams());
  const Tensor xq = quant::fake_quantize(x, conv.act_qparams());
  (void)ref.forward(xq, kFp);
  ref.zero_grad();
  (void)ref.forward(xq, kFp);
  (void)ref.backward(r);
  for (int64_t i = 0; i < dw_quant.numel(); ++i)
    EXPECT_NEAR(dw_quant[i], ref.weight().grad[i], 1e-3f);
}

TEST(GeBackward, WeightGradScaledByOnePlusK) {
  // Eq. 12: with an error fit of slope k whose linear region covers every
  // accumulator, the GE weight gradient is exactly (1+k) times the STE one.
  Rng rng(20);
  Conv2d conv({2, 3, 3, 1, 1, 1, false}, rng);
  const Tensor x = randn(Shape{2, 2, 5, 5}, rng, 0.0f, 0.5f);
  (void)conv.forward(x, ExecContext::calibrate());
  conv.finalize_calibration(quant::Calibration::kMinPropQE);

  const approx::SignedMulTable tab(axmul::make_lut("trunc4"));
  Tensor y = conv.forward(x, ExecContext::quant_approx(tab));
  const Tensor r = randn(y.shape(), rng);

  conv.zero_grad();
  (void)conv.forward(x, ExecContext::quant_approx(tab));
  (void)conv.backward(r);
  const Tensor dw_ste = conv.weight().grad;

  ge::ErrorFit fit;
  fit.k = -0.25;
  fit.c = 0.0;
  fit.a = 1e9;   // linear region covers everything
  fit.b = -1e9;
  conv.zero_grad();
  (void)conv.forward(x, ExecContext::quant_approx(tab, &fit));
  (void)conv.backward(r);
  const Tensor dw_ge = conv.weight().grad;

  for (int64_t i = 0; i < dw_ste.numel(); ++i)
    EXPECT_NEAR(dw_ge[i], 0.75f * dw_ste[i], 1e-4f + 1e-4f * std::fabs(dw_ste[i]));
}

TEST(GeBackward, ConstantFitIsExactlySTE) {
  // Paper Sec. III-C: if df/dy == 0, GE backward == STE backward.
  Rng rng(21);
  Linear lin(6, 3, rng);
  const Tensor x = randn(Shape{4, 6}, rng, 0.0f, 0.5f);
  (void)lin.forward(x, ExecContext::calibrate());
  lin.finalize_calibration(quant::Calibration::kMinPropQE);

  const approx::SignedMulTable tab(axmul::make_lut("evoa228"));
  Tensor y = lin.forward(x, ExecContext::quant_approx(tab));
  const Tensor r = randn(y.shape(), rng);

  lin.zero_grad();
  (void)lin.forward(x, ExecContext::quant_approx(tab));
  (void)lin.backward(r);
  const Tensor dw_ste = lin.weight().grad;

  ge::ErrorFit fit;  // k == 0 -> constant
  fit.c = 42.0;
  fit.a = 100.0;
  fit.b = -100.0;
  lin.zero_grad();
  (void)lin.forward(x, ExecContext::quant_approx(tab, &fit));
  (void)lin.backward(r);
  for (int64_t i = 0; i < dw_ste.numel(); ++i)
    EXPECT_FLOAT_EQ(lin.weight().grad[i], dw_ste[i]);
}

TEST(GeBackward, ClampedRegionsGetNoScaling) {
  // Elements whose accumulator falls in the clamped region keep the plain
  // STE gradient (K = 0 there, Eq. 13).
  Rng rng(22);
  Linear lin(4, 2, rng);
  const Tensor x = randn(Shape{2, 4}, rng, 0.0f, 0.5f);
  (void)lin.forward(x, ExecContext::calibrate());
  lin.finalize_calibration(quant::Calibration::kMinPropQE);

  const approx::SignedMulTable tab(axmul::make_lut("trunc3"));
  Tensor y = lin.forward(x, ExecContext::quant_approx(tab));
  const Tensor r(y.shape(), 1.0f);

  ge::ErrorFit fit;
  fit.k = -0.5;
  fit.c = 1e12;  // linear value always above a -> always clamped
  fit.a = 1.0;
  fit.b = -1.0;
  lin.zero_grad();
  (void)lin.forward(x, ExecContext::quant_approx(tab, &fit));
  (void)lin.backward(r);
  const Tensor dw_clamped = lin.weight().grad;

  lin.zero_grad();
  (void)lin.forward(x, ExecContext::quant_approx(tab));
  (void)lin.backward(r);
  for (int64_t i = 0; i < dw_clamped.numel(); ++i)
    EXPECT_FLOAT_EQ(dw_clamped[i], lin.weight().grad[i]);
}

}  // namespace
}  // namespace axnn::nn
