// Tests for per-layer execution plans: path enumeration on nested models,
// uniform-plan <-> legacy-context golden equivalence (bit-identical in all
// four exec modes), the per-shape GE fit registry, path stability across
// BatchNorm folding, root-only fault-pass bookkeeping, and the NetPlan text
// form.
#include <gtest/gtest.h>

#include <algorithm>

#include "axnn/axmul/registry.hpp"
#include "axnn/data/dataset.hpp"
#include "axnn/ge/fit_registry.hpp"
#include "axnn/models/blocks.hpp"
#include "axnn/models/resnet.hpp"
#include "axnn/nn/activations.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/nn/linear.hpp"
#include "axnn/nn/plan.hpp"
#include "axnn/nn/pooling.hpp"
#include "axnn/nn/sequential.hpp"
#include "axnn/quant/calibration.hpp"
#include "axnn/resilience/fault.hpp"
#include "axnn/train/evaluate.hpp"

namespace axnn::nn {
namespace {

std::vector<std::string> paths_of(Layer& root) {
  std::vector<std::string> out;
  for (const auto& leaf : enumerate_gemm_leaves(root)) out.push_back(leaf.path);
  return out;
}

/// Small calibrated conv-relu-conv-pool-linear stack for golden comparisons.
std::unique_ptr<Sequential> make_calibrated_net(Rng& rng, const Tensor& x) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(Conv2dConfig{2, 4, 3, 1, 1, 1, true}, rng);
  net->emplace<ReLU>();
  net->emplace<Conv2d>(Conv2dConfig{4, 4, 3, 1, 1, 1, true}, rng);
  net->emplace<GlobalAvgPool>();
  net->emplace<Linear>(4, 3, rng);
  (void)net->forward(x, ExecContext::calibrate());
  finalize_calibration_recursive(*net, quant::Calibration::kMinPropQE);
  return net;
}

void expect_bit_identical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]) << "element " << i;
}

TEST(PlanPaths, Resnet20NestedBlocksGetStablePaths) {
  auto net = models::make_resnet20();
  const auto paths = paths_of(*net);

  // Stem + 9 basic blocks x 2 convs + 2 projection shortcuts + classifier.
  EXPECT_EQ(paths.size(), 22u);
  const auto has = [&](const std::string& p) {
    return std::find(paths.begin(), paths.end(), p) != paths.end();
  };
  // Unique sibling names carry no "#k" suffix...
  EXPECT_TRUE(has("conv3x3_3->16"));
  EXPECT_TRUE(has("linear_64->10"));
  // ...repeated siblings are occurrence-indexed: nine "basic_block" children
  // of the root, and two same-shape convs inside each block's main path.
  EXPECT_TRUE(has("basic_block#0/basic_block_main/conv3x3_16->16#0"));
  EXPECT_TRUE(has("basic_block#0/basic_block_main/conv3x3_16->16#1"));
  EXPECT_TRUE(has("basic_block#8/basic_block_main/conv3x3_64->64#0"));
  // Stage transitions have distinctly-shaped convs (no suffix) and a
  // projection shortcut.
  EXPECT_TRUE(has("basic_block#3/basic_block_main/conv3x3_16->32"));
  EXPECT_TRUE(has("basic_block#3/basic_block_shortcut/conv1x1_16->32"));

  // All paths unique.
  auto sorted = paths;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(PlanPaths, FoldBatchnormsPreservesPlanKeys) {
  auto net = models::make_resnet20();
  const auto before = paths_of(*net);
  // Fold needs calibration-independent BN stats only; fold directly.
  net->fold_batchnorms();
  EXPECT_EQ(paths_of(*net), before);
}

TEST(PlanGolden, UniformPlanBitIdenticalToLegacyContextInAllModes) {
  Rng rng(3);
  const Tensor x = randn(Shape{2, 2, 6, 6}, rng, 0.3f, 0.4f);
  auto net = make_calibrated_net(rng, x);

  const approx::SignedMulTable trunc3(axmul::make_lut("trunc3"));
  NetPlan plan(LayerPlan{.multiplier = "trunc3"});
  ResolveOptions ro;
  ro.fit_ge = true;  // fits must not perturb any forward
  const PlanResolution res = plan.resolve(*net, ro);
  EXPECT_TRUE(res.has_fits());

  const ExecContext legacy[] = {
      ExecContext::fp(),
      ExecContext::calibrate(),
      ExecContext::quant_exact(),
      ExecContext::quant_approx(trunc3),
  };
  for (const ExecContext& ctx : legacy) {
    const Tensor y_legacy = net->forward(x, ctx);
    const Tensor y_plan = net->forward(x, ctx.with_plan(res));
    expect_bit_identical(y_legacy, y_plan);
  }

  // Training contexts (the ones that would consume the per-layer fits)
  // produce the same logits too — fits only shape the backward pass.
  ExecContext student = ExecContext::quant_approx(trunc3, nullptr, /*training=*/true);
  expect_bit_identical(net->forward(x, student), net->forward(x, student.with_plan(res)));
}

TEST(PlanGolden, UniformPlanWithAdderMatchesContextAdder) {
  Rng rng(4);
  const Tensor x = randn(Shape{2, 2, 6, 6}, rng, 0.3f, 0.4f);
  auto net = make_calibrated_net(rng, x);

  const approx::SignedMulTable trunc3(axmul::make_lut("trunc3"));
  const auto loa4 = axmul::make_adder("loa4");
  NetPlan plan(LayerPlan{.multiplier = "trunc3", .adder = "loa4"});
  const PlanResolution res = plan.resolve(*net);

  const Tensor y_legacy = net->forward(x, ExecContext::quant_approx(trunc3).with_adder(*loa4));
  const Tensor y_plan = net->forward(x, ExecContext::quant_approx(trunc3).with_plan(res));
  expect_bit_identical(y_legacy, y_plan);
}

TEST(PlanModes, PerLayerModeOverrideKeepsALayerExact) {
  Rng rng(5);
  const Tensor x = randn(Shape{2, 2, 6, 6}, rng, 0.3f, 0.4f);
  auto net = make_calibrated_net(rng, x);
  const approx::SignedMulTable trunc5(axmul::make_lut("trunc5"));

  // Everything exact except... nothing: mode=exact everywhere reproduces the
  // quant-exact output even under a kQuantApprox context.
  NetPlan all_exact(LayerPlan{.mode = ExecMode::kQuantExact});
  const PlanResolution res = all_exact.resolve(*net);
  res.require_approximable();  // exact-mode leaves need no multiplier
  const Tensor y_exact = net->forward(x, ExecContext::quant_exact());
  const Tensor y_plan = net->forward(x, ExecContext::quant_approx(trunc5).with_plan(res));
  expect_bit_identical(y_exact, y_plan);
}

TEST(FitRegistry, DistinctShapesGetDistinctFitsAndMemoizationHolds) {
  const approx::SignedMulTable trunc5(axmul::make_lut("trunc5"));
  ge::FitRegistry reg;
  const ge::ErrorFit& small = reg.fit_for_shape(trunc5, "trunc5", 9);
  const ge::ErrorFit& large = reg.fit_for_shape(trunc5, "trunc5", 576);
  EXPECT_EQ(reg.num_fits(), 2u);
  // trunc5's error is biased: both fits carry slope, and the accumulated
  // error scales with the accumulation length, so the fits differ.
  EXPECT_FALSE(small.is_constant());
  EXPECT_FALSE(large.is_constant());
  EXPECT_NE(small.eval(1000.0), large.eval(1000.0));

  // Same (multiplier, shape) -> the same fit object, no re-simulation.
  const ge::ErrorFit& again = reg.fit_for_shape(trunc5, "trunc5", 9);
  EXPECT_EQ(&again, &small);
  EXPECT_EQ(reg.num_fits(), 2u);
}

TEST(FitRegistry, ResolveSharesFitsAcrossSameShapeLayers) {
  auto net = models::make_resnet20();
  NetPlan plan(LayerPlan{.multiplier = "trunc4"});
  ResolveOptions ro;
  ro.fit_ge = true;
  ro.mc.num_sims = 4;  // keep the test fast; fit quality is irrelevant here
  ro.mc.outputs_per_sim = 8;
  const PlanResolution res = plan.resolve(*net, ro);
  // 22 leaves but far fewer distinct accumulation lengths (3x3 convs at 3
  // channel widths, 1x1 shortcuts, stem, FC).
  EXPECT_EQ(res.fits().num_paths(), 22u);
  EXPECT_LT(res.fits().num_fits(), 10u);
  EXPECT_GT(res.fits().num_fits(), 2u);
  // Same-shape layers literally share the fit object.
  const ResolvedLayerPlan* a = nullptr;
  const ResolvedLayerPlan* b = nullptr;
  for (const auto& e : res.entries()) {
    if (e.path == "basic_block#0/basic_block_main/conv3x3_16->16#0") a = &e;
    if (e.path == "basic_block#1/basic_block_main/conv3x3_16->16#1") b = &e;
  }
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->fit, b->fit);
  ASSERT_NE(a->fit, nullptr);
}

TEST(PlanText, ParseToStringRoundTrips) {
  const std::string text =
      "default=trunc5; basic_block#0=trunc2:w3:a6:add=loa4:noge; "
      "linear_64->10=:mode=exact";
  const NetPlan plan = NetPlan::parse(text);
  EXPECT_EQ(plan.uniform().multiplier, "trunc5");
  const LayerPlan& blk = plan.overrides().at("basic_block#0");
  EXPECT_EQ(blk.multiplier, "trunc2");
  EXPECT_EQ(blk.weight_bits, 3);
  EXPECT_EQ(blk.activation_bits, 6);
  EXPECT_EQ(blk.adder, "loa4");
  EXPECT_FALSE(blk.use_ge);
  const LayerPlan& fc = plan.overrides().at("linear_64->10");
  EXPECT_TRUE(fc.multiplier.empty());
  ASSERT_TRUE(fc.mode.has_value());
  EXPECT_EQ(*fc.mode, ExecMode::kQuantExact);

  const NetPlan reparsed = NetPlan::parse(plan.to_string());
  EXPECT_EQ(reparsed.to_string(), plan.to_string());
}

TEST(PlanText, ParseRejectsUnknownIdsAndModes) {
  EXPECT_THROW(NetPlan::parse("default=nosuchmul"), std::invalid_argument);
  EXPECT_THROW(NetPlan::parse("default=trunc3:add=nosuchadd"), std::invalid_argument);
  EXPECT_THROW(NetPlan::parse("default=trunc3:mode=calibrate"), std::invalid_argument);
  EXPECT_THROW(NetPlan::parse("default=trunc3:frobnicate"), std::invalid_argument);
}

TEST(PlanResolveErrors, UnmatchedOverrideThrowsWithLeafList) {
  auto net = models::make_resnet20();
  NetPlan plan(LayerPlan{.multiplier = "trunc3"});
  plan.set("basic_block#42", LayerPlan{.multiplier = "trunc2"});
  try {
    (void)plan.resolve(*net);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("basic_block#42"), std::string::npos);
    // The error lists the real leaf paths so typos are easy to fix.
    EXPECT_NE(msg.find("linear_64->10"), std::string::npos);
  }
}

TEST(PlanResolveErrors, RequireApproximableFlagsPlanlessLeaves) {
  Rng rng(6);
  const Tensor x = randn(Shape{1, 2, 5, 5}, rng, 0.3f, 0.4f);
  auto net = make_calibrated_net(rng, x);
  NetPlan plan;  // uniform plan with no multiplier and no mode override
  const PlanResolution res = plan.resolve(*net);
  EXPECT_THROW(res.require_approximable(), std::invalid_argument);
}

TEST(FaultPass, RootSequentialBeginsExactlyOnePassPerForward) {
  Rng rng(7);
  const Tensor x = randn(Shape{2, 2, 6, 6}, rng, 0.3f, 0.4f);
  // Nested container: the inner Sequential must not re-begin the pass.
  Sequential net;
  auto& inner = net.emplace<Sequential>("inner");
  inner.emplace<Conv2d>(Conv2dConfig{2, 3, 3, 1, 1, 1, true}, rng);
  inner.emplace<ReLU>();
  net.emplace<GlobalAvgPool>();
  net.emplace<Linear>(3, 2, rng);

  resilience::FaultSpec fs;
  fs.rate = 1e-3;
  const resilience::FaultInjector inj(fs);
  const ExecContext ctx = ExecContext::fp().with_faults(inj);
  EXPECT_EQ(inj.pass(), 0);
  (void)net.forward(x, ctx);
  EXPECT_EQ(inj.pass(), 1);
  (void)net.forward(x, ctx);
  EXPECT_EQ(inj.pass(), 2);
}

TEST(FaultPass, EvaluateAccuracyAdvancesOnePassPerBatch) {
  Rng rng(8);
  Sequential net;
  net.emplace<Conv2d>(Conv2dConfig{2, 3, 3, 1, 1, 1, true}, rng);
  net.emplace<GlobalAvgPool>();
  net.emplace<Linear>(3, 2, rng);

  data::Dataset ds;
  ds.images = randn(Shape{8, 2, 6, 6}, rng, 0.3f, 0.4f);
  ds.labels = {0, 1, 0, 1, 0, 1, 0, 1};

  resilience::FaultSpec fs;
  fs.rate = 1e-3;
  const resilience::FaultInjector inj(fs);
  (void)train::evaluate_accuracy(net, ds, ExecContext::fp().with_faults(inj),
                                 /*batch=*/4);
  EXPECT_EQ(inj.pass(), 2);  // 8 samples / batch 4, one pass each
}

}  // namespace
}  // namespace axnn::nn
