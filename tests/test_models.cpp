// Tests for the model zoo: ResNet20/32, MobileNetV2, blocks, BN folding,
// parameter/MAC accounting.
#include <gtest/gtest.h>

#include "axnn/models/blocks.hpp"
#include "axnn/nn/loss.hpp"
#include "axnn/nn/sgd.hpp"
#include "axnn/models/mobilenetv2.hpp"
#include "axnn/models/model_info.hpp"
#include "axnn/models/resnet.hpp"
#include "axnn/tensor/ops.hpp"

namespace axnn::models {
namespace {

const nn::ExecContext kFp = nn::ExecContext::fp();
const nn::ExecContext kFpTrain = nn::ExecContext::fp(/*training=*/true);

TEST(ResNet, OutputShapeAndDeterminism) {
  auto net = make_resnet20(0.25f, 7);
  Rng rng(1);
  const Tensor x = randn(Shape{2, 3, 16, 16}, rng);
  const Tensor y = net->forward(x, kFp);
  EXPECT_EQ(y.shape(), (Shape{2, 10}));
  // Same seed -> identical weights -> identical outputs.
  auto net2 = make_resnet20(0.25f, 7);
  const Tensor y2 = net2->forward(x, kFp);
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], y2[i]);
}

TEST(ResNet, DepthsDiffer) {
  auto r20 = make_resnet20(0.25f);
  auto r32 = make_resnet32(0.25f);
  // ResNet32 has 6*5+2 = 32 conv-equivalent depth vs 20; more params.
  EXPECT_GT(nn::count_parameters(*r32), nn::count_parameters(*r20));
}

TEST(ResNet, FullWidthParameterCountNearPaper) {
  // Paper Table I: ResNet20 has ~0.3M params (CIFAR10 variant ~0.27M).
  auto net = make_resnet20(1.0f);
  const int64_t params = nn::count_parameters(*net);
  EXPECT_GT(params, 250000);
  EXPECT_LT(params, 350000);
  auto net32 = make_resnet32(1.0f);
  const int64_t params32 = nn::count_parameters(*net32);
  EXPECT_GT(params32, 430000);  // paper: ~0.5M
  EXPECT_LT(params32, 570000);
}

TEST(ResNet, MacCountScalesWithInputArea) {
  auto net = make_resnet20(0.25f);
  const auto i16 = inspect_model(*net, 3, 16, 16);
  const auto i32 = inspect_model(*net, 3, 32, 32);
  EXPECT_NEAR(static_cast<double>(i32.macs_per_sample) / static_cast<double>(i16.macs_per_sample),
              4.0, 0.3);
}

TEST(ResNet, FullWidthMacsNearPaper) {
  // Paper Table I: ResNet20 = 0.041 GMACs on 32x32 inputs.
  auto net = make_resnet20(1.0f);
  const auto info = inspect_model(*net, 3, 32, 32);
  EXPECT_GT(info.macs_per_sample, 30000000);
  EXPECT_LT(info.macs_per_sample, 50000000);
}

TEST(ResNet, TrainingReducesLoss) {
  // One SGD step on a fixed batch should reduce the loss (sanity of the full
  // backward path through residual blocks).
  auto net = make_resnet20(0.25f, 3);
  Rng rng(5);
  const Tensor x = randn(Shape{8, 3, 16, 16}, rng);
  const std::vector<int> labels = {0, 1, 2, 3, 4, 5, 6, 7};
  nn::Sgd sgd(nn::collect_params(*net), {0.05f, 0.0f, 0.0f, 0.1f, 0});
  const Tensor y0 = net->forward(x, kFpTrain);
  const double loss0 = nn::cross_entropy(y0, labels).value;
  double loss = loss0;
  for (int i = 0; i < 5; ++i) {
    net->zero_grad();
    const Tensor y = net->forward(x, kFpTrain);
    const auto l = nn::cross_entropy(y, labels);
    (void)net->backward(l.grad);
    sgd.step();
    loss = l.value;
  }
  EXPECT_LT(loss, loss0);
}

TEST(ResNet, FoldBatchnormsPreservesEvalOutput) {
  auto net = make_resnet20(0.25f, 11);
  Rng rng(6);
  // Realistic running stats before folding.
  for (int i = 0; i < 10; ++i) (void)net->forward(randn(Shape{8, 3, 16, 16}, rng), kFpTrain);
  const Tensor x = randn(Shape{4, 3, 16, 16}, rng);
  const Tensor ref = net->forward(x, kFp);
  const int64_t params_before = nn::count_parameters(*net);
  net->fold_batchnorms();
  const Tensor folded = net->forward(x, kFp);
  for (int64_t i = 0; i < ref.numel(); ++i) EXPECT_NEAR(folded[i], ref[i], 2e-2f);
  // BN gamma/beta disappear; conv biases appear.
  EXPECT_NE(nn::count_parameters(*net), params_before);
  EXPECT_TRUE(nn::collect_buffers(*net).empty());
}

TEST(MobileNetV2, OutputShapeSmallPreset) {
  auto net = make_mobilenet_v2({0.25f, 10, true, 3});
  Rng rng(7);
  const Tensor x = randn(Shape{2, 3, 16, 16}, rng);
  const Tensor y = net->forward(x, kFpTrain);
  EXPECT_EQ(y.shape(), (Shape{2, 10}));
}

TEST(MobileNetV2, FullPresetBiggerThanSmall) {
  auto small = make_mobilenet_v2({0.5f, 10, true, 3});
  auto full = make_mobilenet_v2({0.5f, 10, false, 3});
  EXPECT_GT(nn::count_parameters(*full), nn::count_parameters(*small));
}

TEST(MobileNetV2, FullWidthParamsNearPaper) {
  // Paper Table I: MobileNetV2 = 2.2M params.
  auto net = make_mobilenet_v2({1.0f, 10, /*small_preset=*/false, 3});
  const int64_t params = nn::count_parameters(*net);
  EXPECT_GT(params, 1700000);
  EXPECT_LT(params, 2700000);
}

TEST(MobileNetV2, BackwardRunsThroughInvertedResiduals) {
  auto net = make_mobilenet_v2({0.25f, 10, true, 3});
  Rng rng(8);
  const Tensor x = randn(Shape{2, 3, 16, 16}, rng);
  const std::vector<int> labels = {1, 2};
  net->zero_grad();
  const Tensor y = net->forward(x, kFpTrain);
  const auto l = nn::cross_entropy(y, labels);
  EXPECT_NO_THROW((void)net->backward(l.grad));
  // Every parameter receives some gradient signal.
  int64_t touched = 0;
  for (auto* p : nn::collect_params(*net))
    for (int64_t i = 0; i < p->grad.numel(); ++i) touched += (p->grad[i] != 0.0f);
  EXPECT_GT(touched, 0);
}

TEST(BasicBlock, IdentityShortcutShape) {
  Rng rng(9);
  BasicBlock block(4, 4, 1, rng);
  const Tensor x = randn(Shape{2, 4, 8, 8}, rng);
  EXPECT_EQ(block.forward(x, kFpTrain).shape(), x.shape());
  EXPECT_EQ(block.children().size(), 1u);  // no shortcut sequential
}

TEST(BasicBlock, DownsampleShortcutShape) {
  Rng rng(10);
  BasicBlock block(4, 8, 2, rng);
  const Tensor x = randn(Shape{2, 4, 8, 8}, rng);
  EXPECT_EQ(block.forward(x, kFpTrain).shape(), (Shape{2, 8, 4, 4}));
  EXPECT_EQ(block.children().size(), 2u);
}

TEST(BasicBlock, OutputIsNonNegative) {
  Rng rng(11);
  BasicBlock block(3, 3, 1, rng);
  const Tensor y = block.forward(randn(Shape{2, 3, 6, 6}, rng), kFpTrain);
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_GE(y[i], 0.0f);
}

TEST(InvertedResidual, SkipOnlyWhenShapePreserved) {
  Rng rng(12);
  EXPECT_TRUE(InvertedResidual(8, 8, 1, 6, rng).has_skip());
  EXPECT_FALSE(InvertedResidual(8, 16, 1, 6, rng).has_skip());
  EXPECT_FALSE(InvertedResidual(8, 8, 2, 6, rng).has_skip());
}

TEST(InvertedResidual, ExpandRatioOneSkipsExpansion) {
  Rng rng(13);
  InvertedResidual b1(8, 8, 1, 1, rng);
  InvertedResidual b6(8, 8, 1, 6, rng);
  EXPECT_LT(nn::count_parameters(b1), nn::count_parameters(b6));
  const Tensor x = randn(Shape{1, 8, 4, 4}, rng);
  EXPECT_EQ(b1.forward(x, kFpTrain).shape(), x.shape());
}

TEST(InvertedResidual, RejectsBadExpandRatio) {
  Rng rng(14);
  EXPECT_THROW(InvertedResidual(4, 4, 1, 0, rng), std::invalid_argument);
}

TEST(ModelInfo, InspectCountsBoth) {
  auto net = make_resnet20(0.25f);
  const auto info = inspect_model(*net, 3, 16, 16);
  EXPECT_GT(info.parameters, 0);
  EXPECT_GT(info.macs_per_sample, 0);
  EXPECT_EQ(info.parameters, nn::count_parameters(*net));
}

}  // namespace
}  // namespace axnn::models
