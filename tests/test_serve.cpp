// Serving runtime tests: batched-vs-sequential bit-identity on the exact and
// approximate paths, deadline-driven partial flushes, multi-tenant isolation
// under concurrent submits, allocation-free submit path, and the load
// generator. One engine (micro profile) is shared by the whole suite —
// loading trains a model, which dominates the suite's runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <thread>
#include <vector>

#include "axnn/axnn.hpp"

// --- Global allocation counter -------------------------------------------
// Counts operator-new calls made by the *calling thread* while armed, so the
// dispatcher thread's batch-assembly allocations (which are allowed) never
// leak into the measurement.
namespace {
thread_local bool t_count_allocs = false;
thread_local int64_t t_alloc_count = 0;
}  // namespace

void* operator new(std::size_t n) {
  if (t_count_allocs) ++t_alloc_count;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace axnn::serve {
namespace {

constexpr int kMaxBatch = 4;
constexpr int kQueueCapacity = 16;
constexpr const char* kApproxPlan = "default=trunc5";
constexpr const char* kExactPlan = "default=trunc5:mode=exact";

ModelSpec micro_spec() {
  ModelSpec spec;
  spec.model = core::ModelKind::kResNet20;
  spec.profile.image_size = 8;
  spec.profile.train_size = 160;
  spec.profile.test_size = 80;
  spec.profile.resnet_width = 0.25f;
  spec.profile.fp_epochs = 4;
  spec.profile.ft_epochs = 2;
  spec.profile.ft_batch = 40;
  spec.profile.quant_epochs = 1;
  spec.profile.decay_every = 2;
  spec.profile.cache_dir =
      (std::filesystem::temp_directory_path() / "axnn_serve_cache").string();
  spec.use_cache = false;
  spec.plan = kApproxPlan;
  spec.finetune = false;
  spec.batching.max_batch = kMaxBatch;
  spec.batching.max_delay_us = 20000;
  spec.batching.queue_capacity = kQueueCapacity;
  return spec;
}

class ServeFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    engine_ = Engine::load(micro_spec()).release();
    exact_ = &engine_->open_session("exact", kExactPlan);
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    exact_ = nullptr;
  }

  static Engine* engine_;
  static Session* exact_;  ///< tenant serving the exact-mode plan
};

Engine* ServeFixture::engine_ = nullptr;
Session* ServeFixture::exact_ = nullptr;

/// Reference logits: a direct single-sample forward of lane 0 under the
/// session's own context. Only valid while no requests are in flight (lane
/// forward caches are single-flight).
Tensor reference_logits(Engine& e, Session& s, const Tensor& sample) {
  return e.model(0).forward(sample, s.exec_context(0));
}

TEST_F(ServeFixture, LoadValidatesSpec) {
  ModelSpec bad = micro_spec();
  bad.batching.queue_capacity = 2;  // < max_batch
  EXPECT_THROW(Engine::load(bad), std::invalid_argument);
  EXPECT_THROW(engine_->open_session("default", kApproxPlan), std::invalid_argument);
  EXPECT_THROW(engine_->open_session("bad-plan", "default=no_such_mul"),
               std::invalid_argument);
  // Bit-width changes require recalibration; the engine refuses the tenant.
  EXPECT_THROW(engine_->open_session("bad-widths", "default=trunc5:w3"),
               std::invalid_argument);
}

TEST_F(ServeFixture, BatchedMatchesSequentialExactAndApprox) {
  const data::Dataset& test = engine_->data().test;
  for (Session* s : {&engine_->session(), exact_}) {
    std::vector<Ticket> tickets;
    for (int i = 0; i < kMaxBatch; ++i)
      tickets.push_back(s->submit(test.slice(i, 1).first));
    std::vector<Result> results;
    for (const Ticket& t : tickets) results.push_back(s->await(t));
    engine_->drain();

    for (int i = 0; i < kMaxBatch; ++i) {
      // All four requests ride one full-batch flush...
      EXPECT_EQ(results[static_cast<size_t>(i)].batch_size, kMaxBatch);
      // ...yet every sample's logits are bit-identical to its own
      // single-sample forward.
      const Tensor ref = reference_logits(*engine_, *s, test.slice(i, 1).first);
      ASSERT_EQ(ref.numel(), results[static_cast<size_t>(i)].logits.numel());
      for (int64_t j = 0; j < ref.numel(); ++j)
        ASSERT_EQ(ref[j], results[static_cast<size_t>(i)].logits[j])
            << "session " << s->name() << " sample " << i << " logit " << j;
    }
  }
  // The two plans genuinely serve different arithmetic.
  const Tensor a = reference_logits(*engine_, engine_->session(), test.slice(0, 1).first);
  const Tensor b = reference_logits(*engine_, *exact_, test.slice(0, 1).first);
  bool differs = false;
  for (int64_t j = 0; j < a.numel() && !differs; ++j) differs = a[j] != b[j];
  EXPECT_TRUE(differs);
}

TEST_F(ServeFixture, DeadlineExpiryFlushesPartialBatch) {
  const EngineStats before = engine_->stats();
  // One lone request with a 1 ms deadline: the batcher must not hold it for
  // the 20 ms delay budget waiting for batch-mates.
  const Ticket t =
      engine_->session().submit(engine_->data().test.slice(0, 1).first, /*deadline_us=*/1000);
  const Result r = engine_->session().await(t);
  EXPECT_EQ(r.batch_size, 1);
  EXPECT_LT(r.latency_ms, 20.0);
  const EngineStats after = engine_->stats();
  EXPECT_EQ(after.flush_timer, before.flush_timer + 1);
  EXPECT_EQ(after.requests, before.requests + 1);
}

TEST_F(ServeFixture, MultiTenantIsolationUnderConcurrentSubmits) {
  const data::Dataset& test = engine_->data().test;
  constexpr int kRequests = 40;  // > queue_capacity: exercises backpressure
  std::atomic<int> mismatches{0};

  auto client = [&](Session* s, std::vector<Result>* out) {
    for (int i = 0; i < kRequests; ++i)
      out->push_back(s->await(s->submit(test.slice(i % test.size(), 1).first)));
  };
  std::vector<Result> approx_results, exact_results;
  std::thread ta(client, &engine_->session(), &approx_results);
  std::thread tb(client, exact_, &exact_results);
  ta.join();
  tb.join();
  engine_->drain();

  // Every result matches its own session's reference — concurrent tenants
  // never leak each other's plan (tables, mode overrides) into a batch.
  for (int i = 0; i < kRequests; ++i) {
    const Tensor sample = test.slice(i % test.size(), 1).first;
    const Tensor ra = reference_logits(*engine_, engine_->session(), sample);
    const Tensor re = reference_logits(*engine_, *exact_, sample);
    for (int64_t j = 0; j < ra.numel(); ++j) {
      if (approx_results[static_cast<size_t>(i)].logits[j] != ra[j]) ++mismatches;
      if (exact_results[static_cast<size_t>(i)].logits[j] != re[j]) ++mismatches;
    }
  }
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ServeFixture, SubmitIsAllocationFreeAfterWarmup) {
  Session& s = engine_->session();
  const Tensor sample = engine_->data().test.slice(0, 1).first;
  // Warmup: every slot has been through one submit/await cycle.
  for (int round = 0; round < 2; ++round) {
    std::vector<Ticket> warm;
    for (int i = 0; i < kQueueCapacity; ++i) warm.push_back(s.submit(sample));
    for (const Ticket& t : warm) (void)s.await(t);
  }
  engine_->drain();

  Ticket tickets[kQueueCapacity];
  t_alloc_count = 0;
  t_count_allocs = true;
  for (int i = 0; i < kQueueCapacity; ++i) tickets[i] = s.submit(sample);
  t_count_allocs = false;
  EXPECT_EQ(t_alloc_count, 0) << "submit path allocated on the steady state";
  for (const Ticket& t : tickets) (void)s.await(t);
}

TEST_F(ServeFixture, BatchedForwardIsAllocationFreeAfterWarmup) {
  // The full batched conv forward — the call the dispatcher makes per flush —
  // must not touch the heap on the steady state: activation/im2col tensors
  // recycle through the buffer pool, GEMMs resolve prepared plans via each
  // layer's memo, parallel_for dispatch uses the pre-sized task ring, and the
  // sentinel's ABFT scratch is pooled too. Run it on this thread (the
  // allocation counter is thread-local) under the session's own monitored
  // approx context.
  Session& s = engine_->session();
  engine_->drain();
  const Tensor batch = engine_->data().test.slice(0, kMaxBatch).first;
  const nn::ExecContext ctx = s.exec_context(0);
  // Warmup: first pass builds plans and populates pool freelists; a couple
  // more let every transient block class reach its steady-state population.
  for (int i = 0; i < 3; ++i) (void)engine_->model(0).forward(batch, ctx);

  t_alloc_count = 0;
  t_count_allocs = true;
  const Tensor logits = engine_->model(0).forward(batch, ctx);
  t_count_allocs = false;
  EXPECT_EQ(logits.shape()[0], kMaxBatch);
  EXPECT_EQ(t_alloc_count, 0) << "batched forward allocated on the steady state";
}

TEST_F(ServeFixture, DoubleAwaitThrows) {
  Session& s = engine_->session();
  const Ticket t = s.submit(engine_->data().test.slice(0, 1).first);
  (void)s.await(t);
  EXPECT_THROW(s.await(t), std::logic_error);
  EXPECT_THROW(s.await(Ticket{}), std::logic_error);
  EXPECT_THROW(s.submit(Tensor(Shape{3})), std::invalid_argument);
}

TEST_F(ServeFixture, EvaluateAccuracyMatchesDirect) {
  constexpr int64_t kSamples = 48;
  const double served = engine_->evaluate_accuracy(engine_->session(), kSamples);
  const data::Dataset& test = engine_->data().test;
  data::Dataset subset;
  auto [images, labels] = test.slice(0, kSamples);
  subset.images = std::move(images);
  subset.labels = std::move(labels);
  const double direct = train::evaluate_accuracy(engine_->model(0), subset,
                                                 engine_->session().exec_context(0));
  EXPECT_DOUBLE_EQ(served, direct);
}

TEST_F(ServeFixture, LoadGeneratorScenarios) {
  const data::Dataset& pool = engine_->data().test;
  for (const Arrival arrival : {Arrival::kClosed, Arrival::kPoisson, Arrival::kBurst}) {
    LoadSpec spec;
    spec.arrival = arrival;
    spec.requests = 24;
    spec.clients = 4;
    spec.rate_rps = 2000.0;
    spec.burst = 8;
    spec.deadline_us = 5000;
    const LoadReport r = run_load(*engine_, engine_->session(), pool, spec);
    EXPECT_EQ(r.scenario, to_string(arrival));
    EXPECT_EQ(r.requests, 24);
    EXPECT_GT(r.batches, 0);
    EXPECT_GT(r.throughput_rps, 0.0);
    EXPECT_LE(r.latency.p50, r.latency.p95);
    EXPECT_LE(r.latency.p95, r.latency.p99);
    EXPECT_LE(r.latency.p99, r.latency.max);
    EXPECT_GE(r.mean_batch, 1.0);
    const obs::Json j = r.to_json();
    EXPECT_NE(j.find("p99_ms"), nullptr);
  }
  const EngineStats stats = engine_->stats();
  EXPECT_GT(stats.batches, 0);
  EXPECT_GE(stats.max_batch, 1);
}

}  // namespace
}  // namespace axnn::serve
